// Command catchbench runs the simulator throughput benchmarks and
// maintains the committed benchmark baseline.
//
// Usage:
//
//	catchbench -out BENCH_sim.json              # record a new baseline
//	catchbench -compare BENCH_sim.json          # gate: fail on regression
//	catchbench -compare BENCH_sim.json -tol 0.2 # looser gate
//	catchbench -bench 'SimCATCH' -out /tmp/b.json
//	catchbench -chaos                           # seeded fault-injection suite
//
// It shells out to `go test -bench -benchmem` for the Sim* benchmarks
// (bench_test.go at the repo root), parses the output into a
// machine-readable report, and either writes it (-out) or compares it
// against a committed baseline (-compare), exiting non-zero when any
// benchmark's throughput dropped by more than -tol. With -count > 1 the
// samples are collapsed to per-metric medians before reporting, which
// is how `make benchcmp` (-count 5) keeps the gate stable on noisy
// machines; compare mode also prints the per-benchmark throughput
// delta against the baseline. `make bench` and `make benchcmp` wrap
// the two modes.
//
// The compare gate is drift-robust by default: every benchmark's
// throughput is divided by the -ref benchmark's throughput from the
// same run before comparing, so a uniformly slower or faster machine
// (different CI host, throttling) moves nothing, while a code change
// that slows one path relative to the reference still fails. Pass
// -ref "" for the old absolute comparison.
//
// -chaos instead runs the deterministic chaos suite (`go test -run
// Chaos` over the runner and fault packages): seeded fault schedules —
// disk errors, corrupt cache entries, panics, hangs, a kill/resume
// cycle — over real small sweeps, asserting byte-identical output vs
// the fault-free run. `make chaos` wraps it.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"

	"catch/internal/perf"
)

func main() {
	var (
		benchRe   = flag.String("bench", "Sim(Baseline|CATCH|MP|Batch|Scalar8|Sampled)$", "benchmark regexp passed to go test -bench")
		benchTime = flag.String("benchtime", "2s", "go test -benchtime")
		count     = flag.Int("count", 1, "go test -count (with count > 1 the report carries per-metric medians)")
		out       = flag.String("out", "", "write the parsed report as JSON to this path")
		compare   = flag.String("compare", "", "baseline JSON to compare the fresh run against")
		tol       = flag.Float64("tol", 0.10, "tolerated fractional throughput drop before failing")
		ref       = flag.String("ref", "BenchmarkSimBaseline", "reference benchmark for the drift-robust gate: throughputs are compared as ratios to it, so machine-speed changes cancel (empty = absolute comparison)")
		verbose   = flag.Bool("v", false, "echo raw go test output")
		chaos     = flag.Bool("chaos", false, "run the seeded chaos suite instead of benchmarks")
	)
	flag.Parse()
	if *chaos {
		if err := runChaos(); err != nil {
			fmt.Fprintln(os.Stderr, "catchbench:", err)
			os.Exit(1)
		}
		fmt.Println("ok: chaos suite passed (deterministic output under injected faults)")
		return
	}
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "catchbench: need -out and/or -compare (or -chaos)")
		flag.Usage()
		os.Exit(2)
	}

	rep, err := run(*benchRe, *benchTime, *count, *verbose)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catchbench:", err)
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(os.Stderr, "catchbench: no benchmarks matched %q\n", *benchRe)
		os.Exit(1)
	}
	if *count > 1 {
		// Collapse the -count samples to per-benchmark medians so one
		// noisy sample neither fails the gate nor lands in the baseline.
		rep = rep.Medians()
	}
	for _, r := range rep.Results {
		if r.InstrsPerSec > 0 {
			fmt.Printf("%-24s %12.0f ns/op %12.0f instrs/s %8.0f allocs/op\n",
				r.Name, r.NsPerOp, r.InstrsPerSec, r.AllocsPerOp)
		} else {
			fmt.Printf("%-24s %12.0f ns/op %8.0f allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchbench:", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *compare != "" {
		base, err := perf.Load(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchbench:", err)
			os.Exit(1)
		}
		for _, d := range perf.Deltas(base, rep) {
			fmt.Println("  delta", d)
		}
		var regs []perf.Regression
		gate := "absolute throughput"
		if *ref != "" {
			gate = "throughput normalized to " + *ref
			regs, err = perf.CompareNormalized(base, rep, *ref, *tol)
			if err != nil {
				fmt.Fprintln(os.Stderr, "catchbench:", err)
				os.Exit(1)
			}
		} else {
			regs = perf.Compare(base, rep, *tol)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "catchbench: %d regression(s) beyond %.0f%% in %s vs %s:\n",
				len(regs), *tol*100, gate, *compare)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("ok: no regression beyond %.0f%% in %s vs %s\n", *tol*100, gate, *compare)
	}
}

// runChaos executes the chaos-suite tests (TestChaos* in the runner
// package) exactly once, bypassing the test cache so every invocation
// re-proves determinism under the injected fault schedules.
func runChaos() error {
	args := []string{
		"test", "-run", "Chaos", "-count", "1", "-v",
		"./internal/runner",
	}
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %v: %w", args, err)
	}
	return nil
}

// run executes the benchmarks in the current module and parses the
// output. Stdout is captured for parsing; with -v it is also echoed.
func run(benchRe, benchTime string, count int, verbose bool) (perf.Report, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", benchRe,
		"-benchmem",
		"-benchtime", benchTime,
		"-count", fmt.Sprint(count),
		".",
	}
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	if verbose {
		cmd.Stdout = io.MultiWriter(&buf, os.Stdout)
	} else {
		cmd.Stdout = &buf
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return perf.Report{}, fmt.Errorf("go %v: %w", args, err)
	}
	return perf.Parse(&buf)
}
