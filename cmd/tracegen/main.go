// Command tracegen inspects the synthetic workload traces: instruction
// mix, data/code footprint, branch behaviour, and a sample of the
// stream. Useful when adding or calibrating workloads.
//
//	tracegen -workload mcf -n 100000
//	tracegen -workload mcf -dump 40
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"catch/internal/trace"
	"catch/internal/workloads"
)

func main() {
	var (
		name = flag.String("workload", "mcf", "workload name")
		n    = flag.Int("n", 100_000, "instructions to analyze")
		dump = flag.Int("dump", 0, "also print the first N instructions")
	)
	flag.Parse()

	w, ok := workloads.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *name)
		os.Exit(1)
	}
	g := w.NewGen()

	var (
		in        trace.Inst
		opCounts  [trace.NumOps]int
		dataLines = map[uint64]bool{}
		codeLines = map[uint64]bool{}
		branches  int
		mispreds  int
	)
	for i := 0; i < *n; i++ {
		g.Next(&in)
		opCounts[in.Op]++
		codeLines[in.PC&^63] = true
		if in.IsMem() {
			dataLines[in.Addr&^63] = true
		}
		if in.Op == trace.OpBranch {
			branches++
			if in.Mispred {
				mispreds++
			}
		}
		if i < *dump {
			fmt.Printf("%6d  pc=%#08x %-6s dst=%2d src=%2d,%2d addr=%#x\n",
				i, in.PC, in.Op, in.Dst, in.Src1, in.Src2, in.Addr)
		}
	}

	fmt.Printf("workload        %s (%s), seed %#x\n", w.WName, w.WCategory, w.Seed)
	fmt.Printf("instructions    %d\n", *n)
	fmt.Println("instruction mix:")
	type opn struct {
		op trace.Op
		n  int
	}
	var mix []opn
	for op, c := range opCounts {
		if c > 0 {
			mix = append(mix, opn{trace.Op(op), c})
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].n > mix[j].n })
	for _, m := range mix {
		fmt.Printf("  %-8s %8d (%5.1f%%)\n", m.op, m.n, 100*float64(m.n)/float64(*n))
	}
	fmt.Printf("data footprint  %d lines (%.1f KB)\n", len(dataLines), float64(len(dataLines))*64/1024)
	fmt.Printf("code footprint  %d lines (%.1f KB)\n", len(codeLines), float64(len(codeLines))*64/1024)
	if branches > 0 {
		fmt.Printf("branches        %d (%.2f%% mispredicted)\n", branches, 100*float64(mispreds)/float64(branches))
	}
	if pw, ok := g.(trace.Prewarmer); ok {
		var total uint64
		for _, r := range pw.PrewarmRegions() {
			total += r.Size
		}
		fmt.Printf("prewarm regions %d (%.1f KB declared resident)\n",
			len(pw.PrewarmRegions()), float64(total)/1024)
	}
}
