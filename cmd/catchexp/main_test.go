package main

import (
	"strings"
	"testing"

	"catch/internal/experiments"
)

func validOptions() options {
	return options{exp: "fig10", insts: 10_000, warmup: 1_000, mixes: 4, parallel: 2}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; must name the offending flag
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"all experiments", func(o *options) { o.exp = "all" }, ""},
		{"zero workloads means all", func(o *options) { o.nwl = 0 }, ""},
		{"unknown experiment", func(o *options) { o.exp = "fig99" }, `-exp: unknown experiment "fig99"`},
		{"zero insts", func(o *options) { o.insts = 0 }, "-insts must be positive"},
		{"negative warmup", func(o *options) { o.warmup = -1 }, "-warmup must be >= 0"},
		{"negative workloads", func(o *options) { o.nwl = -1 }, "-workloads must be >= 0"},
		{"negative mixes", func(o *options) { o.mixes = -1 }, "-mixes must be >= 0"},
		{"zero parallel", func(o *options) { o.parallel = 0 }, "-parallel must be >= 1"},
		{"sample passes", func(o *options) { o.sample = true }, ""},
		{"sample tuned passes", func(o *options) {
			o.sample, o.sampleIv, o.sampleK = true, 1_000, 3
		}, ""},
		{"sample-interval without sample", func(o *options) {
			o.sampleIv = 1_000
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"sample-k without sample", func(o *options) {
			o.sampleK = 4
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"negative sample-interval", func(o *options) {
			o.sample, o.sampleIv = true, -1
		}, "-sample-interval must be >= 0"},
		{"negative sample-k", func(o *options) {
			o.sample, o.sampleK = true, -2
		}, "-sample-k must be >= 0"},
		{"indivisible sample-interval", func(o *options) {
			o.sample, o.sampleIv = true, 3_000 // insts = 10_000
		}, "must divide -insts"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validOptions()
			tt.mutate(&o)
			err := validate(&o)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tt.wantErr)
			}
		})
	}
}

// TestValidateResolvesIDs pins the id resolution: a single experiment
// resolves to itself, "all" to the full registry.
func TestValidateResolvesIDs(t *testing.T) {
	o := validOptions()
	if err := validate(&o); err != nil {
		t.Fatal(err)
	}
	if len(o.ids) != 1 || o.ids[0] != "fig10" {
		t.Fatalf("ids = %v, want [fig10]", o.ids)
	}

	o = validOptions()
	o.exp = "all"
	if err := validate(&o); err != nil {
		t.Fatal(err)
	}
	if len(o.ids) != len(experiments.IDs()) {
		t.Fatalf("ids = %v, want all %d experiment ids", o.ids, len(experiments.IDs()))
	}
}

// TestResumeCommand pins the exact command an interrupted journaled run
// prints: it must reconstruct every flag the job keys depend on, so
// pasting it resumes the same sweep against the same journal.
func TestResumeCommand(t *testing.T) {
	o := validOptions()
	got := resumeCommand(&o, "", "run.journal", false, false)
	want := `catchexp -exp fig10 -insts 10000 -warmup 1000 -workloads 0 -mixes 4 -parallel 2 -journal "run.journal"`
	if got != want {
		t.Fatalf("resumeCommand =\n  %s\nwant\n  %s", got, want)
	}

	got = resumeCommand(&o, "/tmp/cache dir", "j.journal", true, true)
	for _, part := range []string{`-cache "/tmp/cache dir"`, "-json", `-journal "j.journal"`, "-batch"} {
		if !strings.Contains(got, part) {
			t.Fatalf("resumeCommand %q lacks %q", got, part)
		}
	}

	// Sampling flags are part of the job keys, so the resume command
	// must carry them too.
	o = validOptions()
	o.sample, o.sampleIv, o.sampleK = true, 1_000, 3
	got = resumeCommand(&o, "", "j.journal", false, false)
	for _, part := range []string{"-sample ", "-sample-interval 1000", "-sample-k 3"} {
		if !strings.Contains(got+" ", part) {
			t.Fatalf("resumeCommand %q lacks %q", got, part)
		}
	}
}
