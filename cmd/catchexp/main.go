// Command catchexp regenerates the paper's tables and figures.
//
// Usage:
//
//	catchexp -exp fig10                 # one experiment
//	catchexp -exp all                   # the full evaluation
//	catchexp -exp fig1 -insts 500000    # custom budget
//	catchexp -list
package main

import (
	"flag"
	"fmt"
	"os"

	"catch/internal/experiments"
)

func main() {
	var (
		exp    = flag.String("exp", "fig10", "experiment id, or 'all'")
		insts  = flag.Int64("insts", 300_000, "measured instructions per workload")
		warmup = flag.Int64("warmup", 150_000, "warmup instructions per workload")
		nwl    = flag.Int("workloads", 0, "restrict to N workloads (0 = all 70)")
		mixes  = flag.Int("mixes", 16, "number of MP mixes for fig14 (0 = all 60)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	b := experiments.Budget{Insts: *insts, Warmup: *warmup, Workloads: *nwl, Mixes: *mixes}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		tables, err := experiments.Run(id, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			fmt.Println(t.Print())
		}
	}
}
