// Command catchexp regenerates the paper's tables and figures.
//
// Usage:
//
//	catchexp -exp fig10                 # one experiment
//	catchexp -exp all                   # the full evaluation
//	catchexp -exp fig1 -insts 500000    # custom budget
//	catchexp -exp fig13 -parallel 8     # shard the sweep over 8 workers
//	catchexp -exp all -cache /tmp/catch # persist results across runs
//	catchexp -exp fig10 -json           # machine-readable tables
//	catchexp -exp all -cache /tmp/catch -journal /tmp/catch/exp.journal
//	catchexp -exp fig13 -batch          # lock-step batch kernel
//	catchexp -exp fig13 -sample         # representative-interval sampling
//	catchexp -list
//
// Simulations run through the parallel execution engine: jobs shard
// across -parallel workers and identical jobs (the shared baseline
// runs, or anything already in the -cache directory) are served from
// the content-addressed result cache. Wall-clock and cache counters
// are reported on stderr.
//
// -journal checkpoints every completed job key so an interrupted
// evaluation, re-run with the same flags, skips straight to the jobs
// it has not finished (the journal here is manifest-less: it is a done
// set over the content-addressed keys, so it composes across
// experiments). Pair it with -cache, which holds the actual results.
// An interrupted journaled run — Ctrl-C included — prints the exact
// command that continues it, mirroring catchsim's -resume hint.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"slices"
	"strings"
	"syscall"
	"time"

	"catch/internal/experiments"
	"catch/internal/runner"
)

// options collects the parsed command line. validate checks it and
// resolves the experiment id list; every validation error names the
// offending flag and makes main exit with status 2.
type options struct {
	exp      string
	insts    int64
	warmup   int64
	nwl      int
	mixes    int
	parallel int
	sample   bool
	sampleIv int64
	sampleK  int

	ids []string // resolved by validate
}

// validate checks flag values and combinations.
func validate(o *options) error {
	if o.insts <= 0 {
		return fmt.Errorf("-insts must be positive (got %d)", o.insts)
	}
	if o.warmup < 0 {
		return fmt.Errorf("-warmup must be >= 0 (got %d)", o.warmup)
	}
	if o.nwl < 0 {
		return fmt.Errorf("-workloads must be >= 0 (0 = all; got %d)", o.nwl)
	}
	if o.mixes < 0 {
		return fmt.Errorf("-mixes must be >= 0 (0 = all; got %d)", o.mixes)
	}
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", o.parallel)
	}
	if !o.sample && (o.sampleIv != 0 || o.sampleK != 0) {
		return errors.New("-sample-interval/-sample-k only apply with -sample")
	}
	if o.sampleIv < 0 {
		return fmt.Errorf("-sample-interval must be >= 0 (0 derives %d intervals; got %d)",
			runner.DefaultSampleIntervals, o.sampleIv)
	}
	if o.sampleK < 0 {
		return fmt.Errorf("-sample-k must be >= 0 (0 defaults to %d; got %d)",
			runner.DefaultSampleK, o.sampleK)
	}
	if o.sample && o.sampleIv > 0 && o.insts%o.sampleIv != 0 {
		return fmt.Errorf("-sample-interval %d must divide -insts %d", o.sampleIv, o.insts)
	}
	switch {
	case o.exp == "all":
		o.ids = experiments.IDs()
	case slices.Contains(experiments.IDs(), o.exp):
		o.ids = []string{o.exp}
	default:
		return fmt.Errorf("-exp: unknown experiment %q (valid: %s, all)",
			o.exp, strings.Join(experiments.IDs(), ", "))
	}
	return nil
}

// runExperiment runs one experiment, converting the drivers' panic
// path (they construct jobs from a static registry, so they panic on
// failure rather than threading errors) back into an error the CLI can
// report — a canceled sweep must end with the resume hint, not a stack
// trace.
func runExperiment(id string, b experiments.Budget) (tables []experiments.Table, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s: %v", id, p)
		}
	}()
	return experiments.Run(id, b)
}

// resumeCommand reconstructs the exact invocation that continues an
// interrupted evaluation: same experiment, same budget (keys depend on
// it), same journal and cache.
func resumeCommand(o *options, cacheDir, journal string, jsonOut, batch bool) string {
	cmd := fmt.Sprintf("catchexp -exp %s -insts %d -warmup %d -workloads %d -mixes %d -parallel %d -journal %q",
		o.exp, o.insts, o.warmup, o.nwl, o.mixes, o.parallel, journal)
	if cacheDir != "" {
		cmd += fmt.Sprintf(" -cache %q", cacheDir)
	}
	if jsonOut {
		cmd += " -json"
	}
	if batch {
		cmd += " -batch"
	}
	if o.sample {
		cmd += " -sample"
		if o.sampleIv > 0 {
			cmd += fmt.Sprintf(" -sample-interval %d", o.sampleIv)
		}
		if o.sampleK > 0 {
			cmd += fmt.Sprintf(" -sample-k %d", o.sampleK)
		}
	}
	return cmd
}

func main() {
	var (
		exp      = flag.String("exp", "fig10", "experiment id, or 'all'")
		insts    = flag.Int64("insts", 300_000, "measured instructions per workload")
		warmup   = flag.Int64("warmup", 150_000, "warmup instructions per workload")
		nwl      = flag.Int("workloads", 0, "restrict to N workloads (0 = all 70)")
		mixes    = flag.Int("mixes", 16, "number of MP mixes for fig14 (0 = all 60)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker goroutines")
		jsonOut  = flag.Bool("json", false, "emit tables as JSON instead of text")
		cacheDir = flag.String("cache", "", "result cache directory (empty = in-memory only)")
		journal  = flag.String("journal", "", "checkpoint completed job keys to this file; a re-run resumes (use with -cache)")
		batch    = flag.Bool("batch", false, "lock-step configurations sharing a workload through one memoized trace (results are byte-identical to scalar)")

		sampleOn = flag.Bool("sample", false, "representative-interval sampling: measure only clustered representatives from warm snapshots (approximate results with error bars)")
		sampleIv = flag.Int64("sample-interval", 0, "sampling interval length in instructions (0 derives -insts/16; must divide -insts)")
		sampleK  = flag.Int("sample-k", 0, "representative intervals to measure per job (0 defaults to 4)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	opts := options{
		exp: *exp, insts: *insts, warmup: *warmup, nwl: *nwl, mixes: *mixes, parallel: *parallel,
		sample: *sampleOn, sampleIv: *sampleIv, sampleK: *sampleK,
	}
	if err := validate(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "catchexp:", err)
		os.Exit(2)
	}

	var jl *runner.Journal
	if *journal != "" {
		if *cacheDir == "" {
			fmt.Fprintln(os.Stderr, "catchexp: warning: -journal without -cache resumes nothing (results only survive in the disk cache)")
		}
		var err error
		if jl, err = runner.OpenJournal(*journal, nil, 0); err != nil {
			fmt.Fprintln(os.Stderr, "catchexp:", err)
			os.Exit(1)
		}
		if n := jl.DoneCount(); n > 0 {
			fmt.Fprintf(os.Stderr, "catchexp: journal %s already records %d completed jobs\n", *journal, n)
		}
		defer func() {
			if err := jl.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "catchexp:", err)
			}
		}()
	}
	eng := runner.New(runner.Options{
		Workers:        *parallel,
		Cache:          runner.NewCache(*cacheDir),
		Journal:        jl,
		Batch:          *batch,
		Sample:         *sampleOn,
		SampleInterval: *sampleIv,
		SampleK:        *sampleK,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "catchexp: "+format+"\n", args...)
		},
	})
	experiments.UseEngine(eng)

	// A cancelable context lets Ctrl-C stop the evaluation cleanly:
	// finished jobs are already journaled, undone ones come back
	// Canceled, and an identical re-run resumes exactly the remainder.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	experiments.UseContext(ctx)

	b := experiments.Budget{Insts: *insts, Warmup: *warmup, Workloads: *nwl, Mixes: *mixes}
	ids := opts.ids
	start := time.Now()
	var all []experiments.Table
	for _, id := range ids {
		tables, err := runExperiment(id, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchexp:", err)
			if ctx.Err() != nil && jl != nil {
				fmt.Fprintf(os.Stderr, "catchexp: interrupted; continue with %s\n",
					resumeCommand(&opts, *cacheDir, *journal, *jsonOut, *batch))
			}
			os.Exit(1)
		}
		if *jsonOut {
			all = append(all, tables...)
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Print())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "catchexp: %v elapsed, %d workers, %d simulations, %d batched, cache: %s\n",
		time.Since(start).Round(time.Millisecond), eng.Workers(), eng.Executed(),
		eng.Batched(), eng.Cache().Stats())
	if *sampleOn {
		fmt.Fprintf(os.Stderr, "catchexp: %d jobs sampled, %d fell back to full simulation\n",
			eng.Sampled(), eng.SampleFallbacks())
	}
}
