// Command catchexp regenerates the paper's tables and figures.
//
// Usage:
//
//	catchexp -exp fig10                 # one experiment
//	catchexp -exp all                   # the full evaluation
//	catchexp -exp fig1 -insts 500000    # custom budget
//	catchexp -exp fig13 -parallel 8     # shard the sweep over 8 workers
//	catchexp -exp all -cache /tmp/catch # persist results across runs
//	catchexp -exp fig10 -json           # machine-readable tables
//	catchexp -list
//
// Simulations run through the parallel execution engine: jobs shard
// across -parallel workers and identical jobs (the shared baseline
// runs, or anything already in the -cache directory) are served from
// the content-addressed result cache. Wall-clock and cache counters
// are reported on stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"slices"
	"strings"
	"time"

	"catch/internal/experiments"
	"catch/internal/runner"
)

func main() {
	var (
		exp      = flag.String("exp", "fig10", "experiment id, or 'all'")
		insts    = flag.Int64("insts", 300_000, "measured instructions per workload")
		warmup   = flag.Int64("warmup", 150_000, "warmup instructions per workload")
		nwl      = flag.Int("workloads", 0, "restrict to N workloads (0 = all 70)")
		mixes    = flag.Int("mixes", 16, "number of MP mixes for fig14 (0 = all 60)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker goroutines")
		jsonOut  = flag.Bool("json", false, "emit tables as JSON instead of text")
		cacheDir = flag.String("cache", "", "result cache directory (empty = in-memory only)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	eng := runner.New(runner.Options{
		Workers: *parallel,
		Cache:   runner.NewCache(*cacheDir),
	})
	experiments.UseEngine(eng)

	b := experiments.Budget{Insts: *insts, Warmup: *warmup, Workloads: *nwl, Mixes: *mixes}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	} else if !slices.Contains(experiments.IDs(), *exp) {
		fmt.Fprintf(os.Stderr, "catchexp: unknown experiment %q\nvalid experiments: %s, all\n",
			*exp, strings.Join(experiments.IDs(), ", "))
		os.Exit(1)
	}
	start := time.Now()
	var all []experiments.Table
	for _, id := range ids {
		tables, err := experiments.Run(id, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			all = append(all, tables...)
			continue
		}
		for _, t := range tables {
			fmt.Println(t.Print())
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "catchexp: %v elapsed, %d workers, %d simulations, cache: %s\n",
		time.Since(start).Round(time.Millisecond), eng.Workers(), eng.Executed(),
		eng.Cache().Stats())
}
