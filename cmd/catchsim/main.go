// Command catchsim runs workloads on system configurations and prints
// detailed statistics.
//
// Usage:
//
//	catchsim -workload mcf -config catch -n 300000 -warmup 50000
//	catchsim -workload mcf,hmmer -config catch,baseline-excl -parallel 4
//	catchsim -workload mcf -config catch -json
//	catchsim -list            # list workloads
//	catchsim -configs         # list configurations
//
// Comma-separated workload/config lists expand into a grid that runs
// through the parallel execution engine; -json emits the engine's
// JobResult records (content-address key, timing, full Result structs)
// instead of the human-readable report.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/experiments"
	"catch/internal/runner"
	"catch/internal/stats"
	"catch/internal/workloads"
)

func main() {
	var (
		workload = flag.String("workload", "mcf", "workload name(s), comma-separated (see -list)")
		cfgName  = flag.String("config", "baseline-excl", "configuration name(s), comma-separated (see -configs)")
		n        = flag.Int64("n", 300_000, "instructions to measure")
		warmup   = flag.Int64("warmup", 60_000, "warmup instructions")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker goroutines")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON results")
		list     = flag.Bool("list", false, "list workloads and exit")
		configs  = flag.Bool("configs", false, "list configurations and exit")
	)
	flag.Parse()

	if *list {
		byCat := workloads.ByCategory()
		cats := make([]string, 0, len(byCat))
		for c := range byCat {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			fmt.Printf("%s:\n", c)
			for _, w := range byCat[c] {
				fmt.Printf("  %s\n", w.WName)
			}
		}
		return
	}
	if *configs {
		for _, name := range experiments.ConfigNames() {
			fmt.Println(name)
		}
		return
	}

	var cfgs []config.SystemConfig
	for _, name := range strings.Split(*cfgName, ",") {
		cfg, ok := experiments.ConfigByName(strings.TrimSpace(name))
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown config %q (try -configs)\n", name)
			os.Exit(1)
		}
		cfgs = append(cfgs, cfg)
	}
	var wls []string
	for _, name := range strings.Split(*workload, ",") {
		name = strings.TrimSpace(name)
		if _, ok := workloads.ByName(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q (try -list)\n", name)
			os.Exit(1)
		}
		wls = append(wls, name)
	}

	grid := runner.Grid{Configs: cfgs, Workloads: wls, Insts: *n, Warmup: *warmup}
	eng := runner.New(runner.Options{Workers: *parallel, Cache: runner.NewCache("")})
	jrs := eng.Run(context.Background(), grid.Jobs())
	if err := runner.FirstError(jrs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jrs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for i := range jrs {
		if i > 0 {
			fmt.Println()
		}
		for j := range jrs[i].Results {
			printResult(&jrs[i].Results[j])
		}
	}
}

func printResult(r *core.Result) {
	fmt.Printf("workload      %s (%s)\n", r.Workload, r.Category)
	fmt.Printf("config        %s\n", r.Config)
	fmt.Printf("instructions  %d\n", r.Insts)
	fmt.Printf("cycles        %d\n", r.Cycles)
	fmt.Printf("IPC           %.4f\n", r.IPC)
	fmt.Printf("mispredicts   %d\n", r.Mispredicts)
	fmt.Printf("code stalls   %d\n", r.CodeStalls)
	fmt.Println()
	h := &r.Hier
	fmt.Printf("loads         %d  (L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  mem %.1f%%)\n",
		h.Loads,
		100*stats.Ratio(h.LoadL1, h.Loads), 100*stats.Ratio(h.LoadL2, h.Loads),
		100*stats.Ratio(h.LoadLLC, h.Loads), 100*stats.Ratio(h.LoadMem, h.Loads))
	fmt.Printf("fetch lines   %d  (L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  mem %.1f%%)\n",
		h.Fetches,
		100*stats.Ratio(h.FetchL1, h.Fetches), 100*stats.Ratio(h.FetchL2, h.Fetches),
		100*stats.Ratio(h.FetchLLC, h.Fetches), 100*stats.Ratio(h.FetchMem, h.Fetches))
	fmt.Printf("stores        %d  (L1 hit %.1f%%)\n", h.Stores, 100*stats.Ratio(h.StoreL1Hit, h.Stores))
	fmt.Printf("load MPKI     %.2f\n", r.LoadMPKI())
	fmt.Printf("DRAM          reads %d  writes %d  row-hit %.1f%%  avg lat %.0f cyc\n",
		r.DRAM.Reads, r.DRAM.Writes,
		100*stats.Ratio(r.DRAM.RowHits, r.DRAM.RowHits+r.DRAM.RowMisses+r.DRAM.RowConflicts),
		avg(r.DRAM.TotalReadLat, r.DRAM.Reads))
	fmt.Println()
	if r.Crit.Walks > 0 {
		fmt.Printf("criticality   walks %d  path-loads %d  recorded %d  criticalPCs %d\n",
			r.Crit.Walks, r.Crit.PathLoads, r.Crit.RecordedLoads, r.CriticalPCs)
	}
	t := &r.Tact
	if h.TactIssued > 0 || t.CodeIssued > 0 || r.CodePfIssued > 0 {
		fmt.Printf("TACT issued   %d  (filled from L2 %d, LLC %d; dropped present %d, miss %d)\n",
			h.TactIssued, h.TactFilledL2, h.TactFilledLLC, h.TactDropPresent, h.TactDropMiss)
		fmt.Printf("TACT compnts  dist1 %d  deep %d  cross %d  feeder %d  (trained: cross %d feeder %d)\n",
			t.Dist1Issued, t.DeepIssued, t.CrossIssued, t.FeederIssued, t.CrossTrained, t.FeederTrained)
		fmt.Printf("TACT used     %d\n", h.TactUsed)
		if hist := h.TactTimeliness; hist != nil && hist.Total > 0 {
			fmt.Printf("timeliness    <10%% saved: %.1f%%   10-80%%: %.1f%%   >80%%: %.1f%%\n",
				100*hist.Fraction(0), 100*hist.Fraction(1), 100*hist.Fraction(2))
		}
		fmt.Printf("code prefetch learned %d  issued %d\n", r.CodePfLearned, r.CodePfIssued)
	}
	if r.ConvertedLoads > 0 {
		fmt.Printf("converted     %d loads (%.1f%%)\n", r.ConvertedLoads, 100*r.ConvertedFrac())
	}
}

func avg(total, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
