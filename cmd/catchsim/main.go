// Command catchsim runs workloads on system configurations and prints
// detailed statistics.
//
// Usage:
//
//	catchsim -workload mcf -config catch -n 300000 -warmup 50000
//	catchsim -workload mcf,hmmer -config catch,baseline-excl -parallel 4
//	catchsim -workload mcf -config catch -json
//	catchsim -workload mcf -config catch -trace out.json   # Chrome/Perfetto trace
//	catchsim -workload mcf -config catch -dump-critpath    # critical-path table
//	catchsim -workload mcf,hmmer -config catch -cache /tmp/cc -journal sweep.journal
//	catchsim -resume sweep.journal -cache /tmp/cc          # continue an interrupted sweep
//	catchsim -workload mcf -config catch,baseline-excl,nol2-6.5 -batch
//	catchsim -workload mcf -config catch -sample -sample-interval 1000 -sample-k 3
//	catchsim -list            # list workloads
//	catchsim -configs         # list configurations
//
// Comma-separated workload/config lists expand into a grid that runs
// through the parallel execution engine; -json emits the engine's
// JobResult records (content-address key, timing, full Result structs)
// instead of the human-readable report. -trace and -dump-critpath
// attach the telemetry tracer and therefore run a single
// (config, workload) job in-process.
//
// -journal checkpoints every completed job (and the sweep's manifest)
// to an append-only file; an interrupted run — Ctrl-C included — can
// be continued with -resume, which reads the job list back from the
// journal and executes only what is missing. Pair both with -cache so
// completed results survive the process.
//
// -batch executes single-thread jobs sharing a (workload, -n, -warmup)
// key through the lock-step batch kernel: the instruction trace is
// generated once per workload and every configuration steps through the
// shared recording. Results, cache keys and journal records are
// byte-identical to the scalar path — batching is purely an execution
// strategy.
//
// -sample resolves eligible jobs by representative-interval sampling:
// the workload is profiled once, intervals cluster into -sample-k
// groups, and only one representative per group is simulated (restored
// from a warm microarchitectural snapshot) before extrapolating the
// full-run statistics. Sampled results are approximate — they carry a
// SampleMeta block with per-metric error estimates — and cache under
// different keys than exact ones. Any sampling failure falls back to
// full simulation of the same job.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/experiments"
	"catch/internal/runner"
	"catch/internal/stats"
	"catch/internal/telemetry"
	"catch/internal/workloads"
)

// options collects the parsed command line. validate checks values
// and combinations before any simulation starts and resolves the
// configuration names; every validation error names the offending
// flag and makes main exit with status 2.
type options struct {
	workloads   []string
	configs     []string
	n           int64
	warmup      int64
	parallel    int
	traceOut    string
	traceSample uint64
	traceBuf    int
	dumpCrit    bool
	cacheDir    string
	journal     string
	resume      string
	batch       bool
	sample      bool
	sampleIv    int64
	sampleK     int

	cfgs []config.SystemConfig // resolved by validate
}

// validate checks flag values and combinations.
func validate(o *options) error {
	if len(o.configs) == 0 {
		return errors.New("-config must name at least one configuration")
	}
	if len(o.workloads) == 0 {
		return errors.New("-workload must name at least one workload")
	}
	if o.n <= 0 {
		return fmt.Errorf("-n must be positive (got %d)", o.n)
	}
	if o.warmup < 0 {
		return fmt.Errorf("-warmup must be >= 0 (got %d)", o.warmup)
	}
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", o.parallel)
	}
	if o.traceSample == 0 {
		return errors.New("-trace-sample must be >= 1 (1 records every event)")
	}
	if o.traceBuf < 1 {
		return fmt.Errorf("-trace-buf must be >= 1 (got %d)", o.traceBuf)
	}
	o.cfgs = o.cfgs[:0]
	for _, name := range o.configs {
		cfg, ok := experiments.ConfigByName(name)
		if !ok {
			return fmt.Errorf("-config: unknown configuration %q (valid: %s)",
				name, strings.Join(experiments.ConfigNames(), ", "))
		}
		o.cfgs = append(o.cfgs, cfg)
	}
	for _, name := range o.workloads {
		if _, ok := workloads.ByName(name); !ok {
			return fmt.Errorf("-workload: unknown workload %q (valid: %s)",
				name, strings.Join(workloadNames(), ", "))
		}
	}
	if (o.traceOut != "" || o.dumpCrit) && (len(o.configs) != 1 || len(o.workloads) != 1) {
		return fmt.Errorf("-trace/-dump-critpath run a single job; got %d configs x %d workloads",
			len(o.configs), len(o.workloads))
	}
	if o.journal != "" && o.resume != "" {
		return errors.New("-journal and -resume are mutually exclusive (-resume reuses the journal's stored manifest)")
	}
	if (o.traceOut != "" || o.dumpCrit) && (o.journal != "" || o.resume != "") {
		return errors.New("-trace/-dump-critpath run in-process and cannot be combined with -journal/-resume")
	}
	if o.batch && (o.traceOut != "" || o.dumpCrit) {
		return errors.New("-batch runs through the engine and cannot be combined with -trace/-dump-critpath")
	}
	if o.sample && (o.traceOut != "" || o.dumpCrit) {
		return errors.New("-sample runs through the engine and cannot be combined with -trace/-dump-critpath")
	}
	if !o.sample && (o.sampleIv != 0 || o.sampleK != 0) {
		return errors.New("-sample-interval/-sample-k only apply with -sample")
	}
	if o.sampleIv < 0 {
		return fmt.Errorf("-sample-interval must be >= 0 (0 derives %d intervals; got %d)",
			runner.DefaultSampleIntervals, o.sampleIv)
	}
	if o.sampleK < 0 {
		return fmt.Errorf("-sample-k must be >= 0 (0 defaults to %d; got %d)",
			runner.DefaultSampleK, o.sampleK)
	}
	if o.sample && o.sampleIv > 0 && o.n%o.sampleIv != 0 {
		return fmt.Errorf("-sample-interval %d must divide -n %d", o.sampleIv, o.n)
	}
	return nil
}

// splitList splits a comma-separated flag value, trimming whitespace
// and dropping empty entries.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func main() {
	var (
		workload = flag.String("workload", "mcf", "workload name(s), comma-separated (see -list)")
		cfgName  = flag.String("config", "baseline-excl", "configuration name(s), comma-separated (see -configs)")
		n        = flag.Int64("n", 300_000, "instructions to measure")
		warmup   = flag.Int64("warmup", 60_000, "warmup instructions")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker goroutines")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON results")
		list     = flag.Bool("list", false, "list workloads and exit")
		configs  = flag.Bool("configs", false, "list configurations and exit")

		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON file (load in Perfetto); single job only")
		traceSample = flag.Uint64("trace-sample", 64, "record 1-in-N of the high-frequency trace events (instructions, cache accesses)")
		traceBuf    = flag.Int("trace-buf", 1<<20, "trace ring capacity in events (oldest events drop on overflow)")
		dumpCrit    = flag.Bool("dump-critpath", false, "print the recorded critical-path walks as a table; single job only")

		cacheDir = flag.String("cache", "", "result cache directory (empty = in-memory only)")
		journal  = flag.String("journal", "", "checkpoint completed jobs to this file; continue later with -resume")
		resume   = flag.String("resume", "", "resume the sweep stored in this journal (the job grid comes from its manifest)")
		batch    = flag.Bool("batch", false, "lock-step configurations sharing a workload through one memoized trace (results are byte-identical to scalar)")

		sampleOn = flag.Bool("sample", false, "representative-interval sampling: profile, cluster, simulate only representatives from warm snapshots (extrapolated results carry error bars)")
		sampleIv = flag.Int64("sample-interval", 0, "sampling interval length in instructions (0 derives -n/16; must divide -n)")
		sampleK  = flag.Int("sample-k", 0, "representative intervals to measure per job (0 defaults to 4)")
	)
	flag.Parse()

	if *list {
		byCat := workloads.ByCategory()
		cats := make([]string, 0, len(byCat))
		for c := range byCat {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			fmt.Printf("%s:\n", c)
			for _, w := range byCat[c] {
				fmt.Printf("  %s\n", w.WName)
			}
		}
		return
	}
	if *configs {
		for _, name := range experiments.ConfigNames() {
			fmt.Println(name)
		}
		return
	}

	opts := options{
		workloads:   splitList(*workload),
		configs:     splitList(*cfgName),
		n:           *n,
		warmup:      *warmup,
		parallel:    *parallel,
		traceOut:    *traceOut,
		traceSample: *traceSample,
		traceBuf:    *traceBuf,
		dumpCrit:    *dumpCrit,
		cacheDir:    *cacheDir,
		journal:     *journal,
		resume:      *resume,
		batch:       *batch,
		sample:      *sampleOn,
		sampleIv:    *sampleIv,
		sampleK:     *sampleK,
	}
	if err := validate(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "catchsim:", err)
		os.Exit(2)
	}
	cfgs, wls := opts.cfgs, opts.workloads

	if *traceOut != "" || *dumpCrit {
		if err := runTraced(cfgs, wls, *n, *warmup, *traceOut, *traceSample, *traceBuf, *dumpCrit, *jsonOut); err != nil {
			fmt.Fprintln(os.Stderr, "catchsim:", err)
			os.Exit(1)
		}
		return
	}

	// A cancelable context lets Ctrl-C stop the sweep cleanly: finished
	// jobs are already journaled, undone ones come back Canceled, and a
	// later -resume picks up exactly the remainder.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var (
		jl   *runner.Journal
		jobs []runner.Job
		err  error
	)
	switch {
	case opts.resume != "":
		if jl, err = runner.OpenJournal(opts.resume, nil, 0); err == nil && len(jl.Jobs()) == 0 {
			err = fmt.Errorf("%s holds no job manifest; start the sweep with -journal", opts.resume)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchsim:", err)
			os.Exit(1)
		}
		jobs = jl.Jobs()
		if opts.cacheDir == "" {
			fmt.Fprintln(os.Stderr, "catchsim: warning: -resume without -cache recomputes every job (journaled results only live in the disk cache)")
		}
		fmt.Fprintf(os.Stderr, "catchsim: resuming %s: %d/%d jobs already done\n",
			opts.resume, jl.DoneCount(), len(jobs))
	default:
		grid := runner.Grid{Configs: cfgs, Workloads: wls, Insts: *n, Warmup: *warmup}
		jobs = grid.Jobs()
		if opts.journal != "" {
			if jl, err = runner.OpenJournal(opts.journal, jobs, 0); err != nil {
				fmt.Fprintln(os.Stderr, "catchsim:", err)
				os.Exit(1)
			}
		}
	}

	eng := runner.New(runner.Options{
		Workers:        *parallel,
		Cache:          runner.NewCache(opts.cacheDir),
		Journal:        jl,
		Batch:          opts.batch,
		Sample:         opts.sample,
		SampleInterval: opts.sampleIv,
		SampleK:        opts.sampleK,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "catchsim: "+format+"\n", args...)
		},
	})
	jrs := eng.Run(ctx, jobs)
	if opts.sample {
		fmt.Fprintf(os.Stderr, "catchsim: %d jobs sampled, %d fell back to full simulation\n",
			eng.Sampled(), eng.SampleFallbacks())
	}
	if cerr := jl.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "catchsim:", cerr)
	}
	if err := runner.FirstError(jrs); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if ctx.Err() != nil && jl != nil {
			fmt.Fprintf(os.Stderr, "catchsim: interrupted; continue with -resume %s -cache %q\n",
				jl.Path(), opts.cacheDir)
		}
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jrs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	for i := range jrs {
		if i > 0 {
			fmt.Println()
		}
		for j := range jrs[i].Results {
			printResult(&jrs[i].Results[j])
		}
	}
}

// workloadNames returns all workload names in listing order.
func workloadNames() []string {
	var names []string
	for _, w := range workloads.All() {
		names = append(names, w.WName)
	}
	sort.Strings(names)
	return names
}

// runTraced executes one job in-process with the telemetry tracer
// attached, then writes the Chrome trace and/or the critical-path
// table. Tracing needs a handle on the live System, so it bypasses the
// engine (and its cache: a traced run is always executed fresh).
func runTraced(cfgs []config.SystemConfig, wls []string, insts, warmup int64,
	traceOut string, sample uint64, bufEvents int, dumpCrit, jsonOut bool) error {
	if len(cfgs) != 1 || len(wls) != 1 {
		return fmt.Errorf("-trace/-dump-critpath run a single job; got %d configs × %d workloads",
			len(cfgs), len(wls))
	}
	tc := telemetry.TracerConfig{BufferEvents: bufEvents, SampleEvery: sample}
	if traceOut == "" {
		// Table-only mode: record just the critical-path walks so the
		// ring holds as many of them as possible.
		tc.Categories = telemetry.CatCritPath.Bit()
	}
	tr := telemetry.NewTracer(tc)

	w, _ := workloads.ByName(wls[0])
	sys := core.NewSystem(cfgs[0])
	sys.AttachTracer(tr)
	res := sys.RunST(w.NewGen(), insts, warmup)

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode([]core.Result{res}); err != nil {
			return err
		}
	} else {
		printResult(&res)
		fmt.Println()
	}

	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "catchsim: wrote %d trace events to %s (%d dropped); load it at https://ui.perfetto.dev\n",
			tr.Len(), traceOut, tr.Dropped())
	}
	if dumpCrit {
		if err := telemetry.WriteCritPathTable(os.Stdout, tr.Events()); err != nil {
			return err
		}
	}
	return nil
}

func printResult(r *core.Result) {
	fmt.Printf("workload      %s (%s)\n", r.Workload, r.Category)
	fmt.Printf("config        %s\n", r.Config)
	fmt.Printf("instructions  %d\n", r.Insts)
	if s := r.Sample; s != nil {
		fmt.Printf("sampled       %d of %d insts measured (k=%d x %d)  est rel err: IPC %.2f%%  L1D miss %.2f%%  mem loads %.2f%%\n",
			s.MeasuredInsts, s.TotalInsts, s.K, s.Interval,
			100*s.RelErrIPC, 100*s.RelErrL1DMiss, 100*s.RelErrMemLoads)
	}
	fmt.Printf("cycles        %d\n", r.Cycles)
	fmt.Printf("IPC           %.4f\n", r.IPC)
	fmt.Printf("mispredicts   %d\n", r.Mispredicts)
	fmt.Printf("code stalls   %d\n", r.CodeStalls)
	fmt.Println()
	h := &r.Hier
	fmt.Printf("loads         %d  (L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  mem %.1f%%)\n",
		h.Loads,
		100*stats.Ratio(h.LoadL1, h.Loads), 100*stats.Ratio(h.LoadL2, h.Loads),
		100*stats.Ratio(h.LoadLLC, h.Loads), 100*stats.Ratio(h.LoadMem, h.Loads))
	fmt.Printf("fetch lines   %d  (L1 %.1f%%  L2 %.1f%%  LLC %.1f%%  mem %.1f%%)\n",
		h.Fetches,
		100*stats.Ratio(h.FetchL1, h.Fetches), 100*stats.Ratio(h.FetchL2, h.Fetches),
		100*stats.Ratio(h.FetchLLC, h.Fetches), 100*stats.Ratio(h.FetchMem, h.Fetches))
	fmt.Printf("stores        %d  (L1 hit %.1f%%)\n", h.Stores, 100*stats.Ratio(h.StoreL1Hit, h.Stores))
	fmt.Printf("load MPKI     %.2f\n", r.LoadMPKI())
	fmt.Printf("DRAM          reads %d  writes %d  row-hit %.1f%%  avg lat %.0f cyc\n",
		r.DRAM.Reads, r.DRAM.Writes,
		100*stats.Ratio(r.DRAM.RowHits, r.DRAM.RowHits+r.DRAM.RowMisses+r.DRAM.RowConflicts),
		avg(r.DRAM.TotalReadLat, r.DRAM.Reads))
	fmt.Println()
	if r.Crit.Walks > 0 {
		fmt.Printf("criticality   walks %d  path-loads %d  recorded %d  criticalPCs %d\n",
			r.Crit.Walks, r.Crit.PathLoads, r.Crit.RecordedLoads, r.CriticalPCs)
	}
	t := &r.Tact
	if h.TactIssued > 0 || t.CodeIssued > 0 || r.CodePfIssued > 0 {
		fmt.Printf("TACT issued   %d  (filled from L2 %d, LLC %d; dropped present %d, miss %d)\n",
			h.TactIssued, h.TactFilledL2, h.TactFilledLLC, h.TactDropPresent, h.TactDropMiss)
		fmt.Printf("TACT compnts  dist1 %d  deep %d  cross %d  feeder %d  (trained: cross %d feeder %d)\n",
			t.Dist1Issued, t.DeepIssued, t.CrossIssued, t.FeederIssued, t.CrossTrained, t.FeederTrained)
		fmt.Printf("TACT used     %d\n", h.TactUsed)
		if hist := h.TactTimeliness; hist != nil && hist.Total > 0 {
			fmt.Printf("timeliness    <10%% saved: %.1f%%   10-80%%: %.1f%%   >80%%: %.1f%%\n",
				100*hist.Fraction(0), 100*hist.Fraction(1), 100*hist.Fraction(2))
		}
		fmt.Printf("code prefetch learned %d  issued %d\n", r.CodePfLearned, r.CodePfIssued)
	}
	if r.ConvertedLoads > 0 {
		fmt.Printf("converted     %d loads (%.1f%%)\n", r.ConvertedLoads, 100*r.ConvertedFrac())
	}
}

func avg(total, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(total) / float64(n)
}
