package main

import (
	"strings"
	"testing"
)

// validOptions is a command line that passes validation; each case
// mutates one flag from here.
func validOptions() options {
	return options{
		workloads:   []string{"mcf"},
		configs:     []string{"catch"},
		n:           10_000,
		warmup:      1_000,
		parallel:    2,
		traceSample: 64,
		traceBuf:    1 << 10,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; must name the offending flag
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"grid passes", func(o *options) {
			o.workloads = []string{"mcf", "hmmer"}
			o.configs = []string{"baseline-excl", "catch"}
		}, ""},
		{"trace single job passes", func(o *options) { o.traceOut = "t.json" }, ""},
		{"no config", func(o *options) { o.configs = nil }, "-config"},
		{"no workload", func(o *options) { o.workloads = nil }, "-workload"},
		{"unknown config", func(o *options) { o.configs = []string{"no-such-config"} }, `-config: unknown configuration "no-such-config"`},
		{"unknown workload", func(o *options) { o.workloads = []string{"no-such-workload"} }, `-workload: unknown workload "no-such-workload"`},
		{"zero n", func(o *options) { o.n = 0 }, "-n must be positive"},
		{"negative n", func(o *options) { o.n = -5 }, "-n must be positive"},
		{"negative warmup", func(o *options) { o.warmup = -1 }, "-warmup must be >= 0"},
		{"zero parallel", func(o *options) { o.parallel = 0 }, "-parallel must be >= 1"},
		{"zero trace sample", func(o *options) { o.traceSample = 0 }, "-trace-sample must be >= 1"},
		{"zero trace buf", func(o *options) { o.traceBuf = 0 }, "-trace-buf must be >= 1"},
		{"trace with grid", func(o *options) {
			o.traceOut = "t.json"
			o.workloads = []string{"mcf", "hmmer"}
		}, "-trace/-dump-critpath run a single job"},
		{"critpath with grid", func(o *options) {
			o.dumpCrit = true
			o.configs = []string{"baseline-excl", "catch"}
		}, "-trace/-dump-critpath run a single job"},
		{"journal passes", func(o *options) { o.journal = "sweep.journal" }, ""},
		{"resume passes", func(o *options) { o.resume = "sweep.journal"; o.cacheDir = "/tmp/cc" }, ""},
		{"journal with resume", func(o *options) {
			o.journal, o.resume = "a.journal", "b.journal"
		}, "-journal and -resume are mutually exclusive"},
		{"trace with journal", func(o *options) {
			o.traceOut, o.journal = "t.json", "sweep.journal"
		}, "cannot be combined with -journal/-resume"},
		{"critpath with resume", func(o *options) {
			o.dumpCrit, o.resume = true, "sweep.journal"
		}, "cannot be combined with -journal/-resume"},
		{"batch grid passes", func(o *options) {
			o.batch = true
			o.configs = []string{"baseline-excl", "catch"}
		}, ""},
		{"batch with journal passes", func(o *options) { o.batch, o.journal = true, "sweep.journal" }, ""},
		{"batch with trace", func(o *options) {
			o.batch, o.traceOut = true, "t.json"
		}, "-batch runs through the engine"},
		{"batch with critpath", func(o *options) {
			o.batch, o.dumpCrit = true, true
		}, "-batch runs through the engine"},
		{"sample passes", func(o *options) { o.sample = true }, ""},
		{"sample tuned passes", func(o *options) {
			o.sample, o.sampleIv, o.sampleK = true, 1_000, 3
		}, ""},
		{"sample with journal passes", func(o *options) { o.sample, o.journal = true, "sweep.journal" }, ""},
		{"sample with trace", func(o *options) {
			o.sample, o.traceOut = true, "t.json"
		}, "-sample runs through the engine"},
		{"sample with critpath", func(o *options) {
			o.sample, o.dumpCrit = true, true
		}, "-sample runs through the engine"},
		{"sample-interval without sample", func(o *options) {
			o.sampleIv = 1_000
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"sample-k without sample", func(o *options) {
			o.sampleK = 4
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"negative sample-interval", func(o *options) {
			o.sample, o.sampleIv = true, -1
		}, "-sample-interval must be >= 0"},
		{"negative sample-k", func(o *options) {
			o.sample, o.sampleK = true, -2
		}, "-sample-k must be >= 0"},
		{"indivisible sample-interval", func(o *options) {
			o.sample, o.sampleIv = true, 3_000 // n = 10_000
		}, "must divide -n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validOptions()
			tt.mutate(&o)
			err := validate(&o)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				if len(o.cfgs) != len(o.configs) {
					t.Fatalf("validate resolved %d configs, want %d", len(o.cfgs), len(o.configs))
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tt.wantErr)
			}
		})
	}
}

func TestSplitList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"mcf", []string{"mcf"}},
		{"mcf,hmmer", []string{"mcf", "hmmer"}},
		{" mcf , hmmer ", []string{"mcf", "hmmer"}},
		{"mcf,,hmmer,", []string{"mcf", "hmmer"}},
		{"", nil},
		{" , ", nil},
	}
	for _, tt := range tests {
		got := splitList(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("splitList(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("splitList(%q) = %v, want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}
