package main

import (
	"strings"
	"testing"
	"time"
)

func validOptions() options {
	return options{
		addr: ":8080", parallel: 4, inflight: 8, timeout: time.Minute, retries: 1,
		shedAfter: 16, reqTimeout: time.Minute, backoff: 100 * time.Millisecond,
		brThresh: 5, brCooldown: 32, inject: "seed=1,disk-read=0.5:2,slow=0.1@2ms",
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*options)
		wantErr string // substring; must name the offending flag
	}{
		{"defaults pass", func(o *options) {}, ""},
		{"zero means auto", func(o *options) {
			o.parallel, o.inflight, o.timeout, o.retries = 0, 0, 0, 0
			o.shedAfter, o.reqTimeout, o.backoff, o.brThresh, o.brCooldown, o.inject =
				0, 0, 0, 0, 0, ""
		}, ""},
		{"empty addr", func(o *options) { o.addr = "" }, "-addr must not be empty"},
		{"negative parallel", func(o *options) { o.parallel = -1 }, "-parallel must be >= 0"},
		{"negative inflight", func(o *options) { o.inflight = -2 }, "-max-inflight must be >= 0"},
		{"negative timeout", func(o *options) { o.timeout = -time.Second }, "-job-timeout must be >= 0"},
		{"negative retries", func(o *options) { o.retries = -1 }, "-retries must be >= 0"},
		{"negative shed-after", func(o *options) { o.shedAfter = -1 }, "-shed-after must be >= 0"},
		{"negative request-timeout", func(o *options) { o.reqTimeout = -time.Second }, "-request-timeout must be >= 0"},
		{"negative retry-backoff", func(o *options) { o.backoff = -time.Second }, "-retry-backoff must be >= 0"},
		{"negative breaker-threshold", func(o *options) { o.brThresh = -1 }, "-breaker-threshold must be >= 0"},
		{"negative breaker-cooldown", func(o *options) { o.brCooldown = -1 }, "-breaker-cooldown must be >= 0"},
		{"malformed inject plan", func(o *options) { o.inject = "panic=2.5" }, "-inject"},
		{"unknown inject kind", func(o *options) { o.inject = "frobnicate=0.5" }, "-inject"},
		{"cluster pair passes", func(o *options) {
			o.peers = "http://a:8080, http://b:8080"
			o.self = "http://a:8080"
		}, ""},
		{"peers without self", func(o *options) { o.peers = "http://a:8080,http://b:8080" }, "-peers needs -self"},
		{"self not in peers", func(o *options) {
			o.peers = "http://a:8080,http://b:8080"
			o.self = "http://c:8080"
		}, "-self"},
		{"self without peers", func(o *options) { o.self = "http://a:8080" }, "-self without -peers"},
		{"peer not a base URL", func(o *options) {
			o.peers = "http://a:8080,b:8080"
			o.self = "http://a:8080"
		}, "-peers"},
		{"negative vnodes", func(o *options) { o.vnodes = -1 }, "-vnodes must be >= 0"},
		{"negative steal-interval", func(o *options) { o.stealInterval = -time.Second }, "-steal-interval must be >= 0"},
		{"negative lent-deadline", func(o *options) { o.lentDeadline = -time.Second }, "-lent-deadline must be >= 0"},
		{"negative result-max-age", func(o *options) { o.resultMaxAge = -time.Second }, "-result-max-age must be >= 0"},
		{"sample passes", func(o *options) { o.sample = true }, ""},
		{"sample tuned passes", func(o *options) {
			o.sample, o.sampleIv, o.sampleK = true, 1_000, 3
		}, ""},
		{"sample-interval without sample", func(o *options) {
			o.sampleIv = 1_000
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"sample-k without sample", func(o *options) {
			o.sampleK = 4
		}, "-sample-interval/-sample-k only apply with -sample"},
		{"negative sample-interval", func(o *options) {
			o.sample, o.sampleIv = true, -1
		}, "-sample-interval must be >= 0"},
		{"negative sample-k", func(o *options) {
			o.sample, o.sampleK = true, -2
		}, "-sample-k must be >= 0"},
		{"replicated cluster passes", func(o *options) {
			o.peers = "http://a:8080,http://b:8080,http://c:8080"
			o.self = "http://a:8080"
			o.replicas = 2
		}, ""},
		{"negative replicas", func(o *options) { o.replicas = -1 }, "-replicas must be >= 0"},
		{"replicas without peers", func(o *options) { o.replicas = 2 }, "-replicas without -peers"},
		{"replicas exceed cluster", func(o *options) {
			o.peers = "http://a:8080,http://b:8080"
			o.self = "http://a:8080"
			o.replicas = 3
		}, "-replicas 3 exceeds the 2-member cluster"},
		{"negative probe-interval", func(o *options) { o.probeInterval = -time.Second }, "-probe-interval must be >= 0"},
		{"negative repair-interval", func(o *options) { o.repairInterval = -time.Second }, "-repair-interval must be >= 0"},
		{"negative hint-cap", func(o *options) { o.hintCap = -1 }, "-hint-cap must be >= 0"},
		{"negative peer-timeout", func(o *options) { o.peerTimeout = -time.Second }, "-peer-timeout must be >= 0"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := validOptions()
			tt.mutate(&o)
			err := validate(&o)
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tt.wantErr)
			}
		})
	}
}
