// Command catchd serves simulations over HTTP: single jobs, grid
// sweeps and cached results, backed by the parallel execution engine
// and its content-addressed result cache.
//
// Usage:
//
//	catchd -addr :8080 -parallel 8 -cache /tmp/catch-cache
//
// Endpoints:
//
//	POST /v1/run           {"config":"catch","workload":"mcf","insts":300000,"warmup":150000}
//	POST /v1/sweep         {"configs":["baseline-excl","catch"],"workloads":["mcf","hmmer"]}
//	POST /v1/drain         stop accepting work, finish in-flight jobs
//	GET  /v1/results/{key} cached result by content address
//	GET  /healthz          liveness, build info and counters
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/pprof/*    runtime profiles (with -pprof)
//
// Duplicate concurrent requests for the same job are coalesced onto
// one simulation; identical jobs after that are served from the cache.
// A disk-cache circuit breaker degrades to memory-only caching when the
// cache directory misbehaves, -shed-after bounds the request wait queue
// (overflow gets 503 + Retry-After), and sweeps POSTed with
// "resumable": true are journaled under -journal-dir so an interrupted
// sweep resumes from its last completed job. SIGINT/SIGTERM drain
// in-flight requests and exit cleanly. -inject enables the
// deterministic chaos layer (never in production).
//
// -sample resolves eligible jobs by representative-interval sampling
// (profile → cluster → measure representatives from warm snapshots →
// extrapolate); -snap-dir persists the warm-state snapshots so
// repeated sweeps over the same workloads restore instead of
// re-warming. Sampled results are approximate, carry error estimates,
// and cache under different keys than exact results; sampling failures
// fall back to full simulation and are counted in /healthz and
// /metrics.
//
// -peers turns a set of catchd processes into a peer cluster:
//
//	catchd -addr :8080 -peers http://a:8080,http://b:8080 -self http://a:8080
//
// Sweep jobs shard across the members by consistent hashing on their
// content-addressed keys, GET /v1/results resolves through a tiered
// read path (local memory → local disk → the key's replica peers),
// idle members steal queued jobs from loaded ones (-steal-interval),
// and GET /v1/cluster/status reports ring membership, tier traffic,
// per-peer breaker state and the health/replication view. A dead
// peer's shards reroute along the ring; because jobs are pure
// functions of their key, an N-node sweep is byte-identical to the
// single-node run.
//
// -replicas R makes the cluster self-healing: each completed result
// is pushed to its R ring owners, a seeded prober (-probe-interval)
// tracks peers through live/suspect/down, fills owed to an
// unreachable replica queue as hints (bounded by -hint-cap, journaled
// under -journal-dir) and drain when it returns, and an anti-entropy
// pass (-repair-interval) diffs peer manifests to close remaining
// gaps. Killing any single node then loses no results and recomputes
// nothing; a partitioned minority keeps computing, reports the owed
// keys as "unreplicated" in /v1/cluster/status, and reconciles on
// heal. -peer-timeout bounds each control-plane peer call (shard
// dispatch is never client-bounded; the probe deadline stays tight).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"catch/internal/cluster"
	"catch/internal/experiments"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/sample"
	"catch/internal/telemetry"
)

// version identifies the build in /healthz; release builds may
// override it via -ldflags "-X main.version=...".
var version = "dev"

// options collects the parsed command line. validate checks it before
// the engine or listener starts; every validation error names the
// offending flag and makes main exit with status 2.
type options struct {
	addr       string
	parallel   int
	inflight   int
	timeout    time.Duration
	retries    int
	shedAfter  int
	reqTimeout time.Duration
	backoff    time.Duration
	brThresh   int
	brCooldown int
	inject     string
	sample     bool
	sampleIv   int64
	sampleK    int

	// Cluster mode (all optional; empty peers = single node).
	peers          string
	self           string
	vnodes         int
	stealInterval  time.Duration
	lentDeadline   time.Duration
	resultMaxAge   time.Duration
	replicas       int
	probeInterval  time.Duration
	repairInterval time.Duration
	hintCap        int
	peerTimeout    time.Duration

	peerList []string // resolved by validate
}

// splitPeers parses the comma-separated -peers list, trimming blanks.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// validate checks flag values and combinations.
func validate(o *options) error {
	if o.addr == "" {
		return errors.New("-addr must not be empty (e.g. :8080)")
	}
	if o.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS; got %d)", o.parallel)
	}
	if o.inflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0 (0 = 2x workers; got %d)", o.inflight)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 = none; got %v)", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", o.retries)
	}
	if o.shedAfter < 0 {
		return fmt.Errorf("-shed-after must be >= 0 (0 = unbounded queue; got %d)", o.shedAfter)
	}
	if o.reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be >= 0 (0 = none; got %v)", o.reqTimeout)
	}
	if o.backoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0 (0 = immediate retries; got %v)", o.backoff)
	}
	if o.brThresh < 0 {
		return fmt.Errorf("-breaker-threshold must be >= 0 (0 = breaker off; got %d)", o.brThresh)
	}
	if o.brCooldown < 0 {
		return fmt.Errorf("-breaker-cooldown must be >= 0 (got %d)", o.brCooldown)
	}
	if _, err := fault.ParsePlan(o.inject); err != nil {
		return fmt.Errorf("-inject: %v", err)
	}
	if !o.sample && (o.sampleIv != 0 || o.sampleK != 0) {
		return errors.New("-sample-interval/-sample-k only apply with -sample")
	}
	if o.sampleIv < 0 {
		return fmt.Errorf("-sample-interval must be >= 0 (0 derives %d intervals per job; got %d)",
			runner.DefaultSampleIntervals, o.sampleIv)
	}
	if o.sampleK < 0 {
		return fmt.Errorf("-sample-k must be >= 0 (0 defaults to %d; got %d)",
			runner.DefaultSampleK, o.sampleK)
	}
	o.peerList = splitPeers(o.peers)
	if len(o.peerList) > 0 {
		if o.self == "" {
			return errors.New("-peers needs -self, this node's own base URL from the list")
		}
		found := false
		for _, p := range o.peerList {
			if p == o.self {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("-self %q must appear in -peers %q", o.self, o.peers)
		}
		for _, p := range o.peerList {
			u, err := url.Parse(p)
			if err != nil || u.Scheme == "" || u.Host == "" {
				return fmt.Errorf("-peers: %q is not a base URL (want e.g. http://host:8080)", p)
			}
		}
	} else if o.self != "" {
		return errors.New("-self without -peers does nothing; list the cluster membership")
	}
	if o.vnodes < 0 {
		return fmt.Errorf("-vnodes must be >= 0 (0 = default %d; got %d)", cluster.DefaultVNodes, o.vnodes)
	}
	if o.stealInterval < 0 {
		return fmt.Errorf("-steal-interval must be >= 0 (0 = background stealing off; got %v)", o.stealInterval)
	}
	if o.lentDeadline < 0 {
		return fmt.Errorf("-lent-deadline must be >= 0 (0 = default 30s; got %v)", o.lentDeadline)
	}
	if o.resultMaxAge < 0 {
		return fmt.Errorf("-result-max-age must be >= 0 (0 = default; got %v)", o.resultMaxAge)
	}
	if o.replicas < 0 {
		return fmt.Errorf("-replicas must be >= 0 (0 = owner only; got %d)", o.replicas)
	}
	if o.replicas > 1 && len(o.peerList) == 0 {
		return errors.New("-replicas without -peers does nothing; list the cluster membership")
	}
	if n := len(o.peerList); n > 0 && o.replicas > n {
		return fmt.Errorf("-replicas %d exceeds the %d-member cluster", o.replicas, n)
	}
	if o.probeInterval < 0 {
		return fmt.Errorf("-probe-interval must be >= 0 (0 = failure detection off; got %v)", o.probeInterval)
	}
	if o.repairInterval < 0 {
		return fmt.Errorf("-repair-interval must be >= 0 (0 = anti-entropy repair off; got %v)", o.repairInterval)
	}
	if o.hintCap < 0 {
		return fmt.Errorf("-hint-cap must be >= 0 (0 = default %d; got %d)", cluster.DefaultHintCap, o.hintCap)
	}
	if o.peerTimeout < 0 {
		return fmt.Errorf("-peer-timeout must be >= 0 (0 = per-op defaults; got %v)", o.peerTimeout)
	}
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		parallel    = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache", "", "result cache directory (empty = in-memory only)")
		inflight    = flag.Int("max-inflight", 0, "max concurrently served run/sweep requests (0 = 2x workers)")
		timeout     = flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
		retries     = flag.Int("retries", 1, "extra attempts for a failed or timed-out job")
		shedAfter   = flag.Int("shed-after", 0, "max queued requests before shedding with 503 (0 = unbounded)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline; exceeded runs return 504 (0 = none)")
		backoff     = flag.Duration("retry-backoff", 0, "base retry pause, doubled per attempt with seeded jitter (0 = immediate)")
		brThresh    = flag.Int("breaker-threshold", 5, "consecutive disk-cache failures that trip the breaker to memory-only mode (0 = off)")
		brCooldown  = flag.Int("breaker-cooldown", 32, "denied cache probes before a tripped breaker half-opens")
		journalDir  = flag.String("journal-dir", "", "directory for resumable-sweep journals (empty = resumable sweeps rejected)")
		inject      = flag.String("inject", "", "deterministic fault plan, e.g. seed=42,disk-read=0.5,panic=0.1 (chaos testing only)")
		enablePprof = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")

		sampleOn = flag.Bool("sample", false, "resolve eligible jobs by representative-interval sampling (approximate results with error bars; failures fall back to full simulation)")
		sampleIv = flag.Int64("sample-interval", 0, "sampling interval length in instructions (0 derives insts/16 per job)")
		sampleK  = flag.Int("sample-k", 0, "representative intervals to measure per job (0 defaults to 4)")
		snapDir  = flag.String("snap-dir", "", "warm-snapshot store directory for -sample (empty = in-memory only)")

		peers         = flag.String("peers", "", "comma-separated base URLs of every cluster member, self included (empty = single node)")
		self          = flag.String("self", "", "this node's own base URL from -peers")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per peer on the consistent-hash ring (0 = default)")
		stealInterval = flag.Duration("steal-interval", 2*time.Second, "pace of the background work-steal loop (0 = off)")
		lentDeadline  = flag.Duration("lent-deadline", 0, "how long a shard waits for stolen jobs before reclaiming them (0 = 30s)")
		resultMaxAge  = flag.Duration("result-max-age", 0, "Cache-Control max-age for GET /v1/results (0 = default 1 year; results are immutable)")

		replicas       = flag.Int("replicas", 0, "cluster members holding each completed result (0 = owner only)")
		probeInterval  = flag.Duration("probe-interval", time.Second, "pace of the health prober driving live/suspect/down membership (0 = off)")
		repairInterval = flag.Duration("repair-interval", 30*time.Second, "pace of the anti-entropy repair pass re-filling replica gaps (0 = off)")
		hintCap        = flag.Int("hint-cap", 0, "max queued hinted-handoff fills; overflow drops oldest for repair to re-discover (0 = default)")
		peerTimeout    = flag.Duration("peer-timeout", 0, "deadline for each control-plane peer call; shard dispatch is never bounded by it (0 = per-op defaults)")
	)
	flag.Parse()

	opts := options{
		addr: *addr, parallel: *parallel, inflight: *inflight, timeout: *timeout,
		retries: *retries, shedAfter: *shedAfter, reqTimeout: *reqTimeout,
		backoff: *backoff, brThresh: *brThresh, brCooldown: *brCooldown, inject: *inject,
		sample: *sampleOn, sampleIv: *sampleIv, sampleK: *sampleK,
		peers: *peers, self: *self, vnodes: *vnodes,
		stealInterval: *stealInterval, lentDeadline: *lentDeadline, resultMaxAge: *resultMaxAge,
		replicas: *replicas, probeInterval: *probeInterval, repairInterval: *repairInterval,
		hintCap: *hintCap, peerTimeout: *peerTimeout,
	}
	if err := validate(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(2)
	}

	plan, _ := fault.ParsePlan(*inject) // validated above
	inj := fault.NewInjector(plan)
	if inj != nil {
		fmt.Fprintf(os.Stderr, "catchd: CHAOS MODE: injecting faults (%s)\n", plan)
	}
	var fs fault.FS = fault.OS{}
	if inj != nil {
		fs = fault.InjectFS{FS: fs, Inj: inj}
	}
	var breaker *fault.Breaker
	if *brThresh > 0 {
		breaker = fault.NewBreaker(*brThresh, *brCooldown)
	}

	reg := telemetry.NewRegistry()
	var snaps *sample.Store
	if *sampleOn && *snapDir != "" {
		snaps = sample.NewStore(*snapDir)
	}
	eng := runner.New(runner.Options{
		Workers:        *parallel,
		Cache:          runner.NewCacheOpts(runner.CacheOptions{Dir: *cacheDir, FS: fs, Breaker: breaker}),
		Timeout:        *timeout,
		Retries:        *retries,
		Backoff:        fault.Backoff{Base: *backoff, Seed: plan.Seed},
		Fault:          inj,
		Sample:         *sampleOn,
		SampleInterval: *sampleIv,
		SampleK:        *sampleK,
		Snapshots:      snaps,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "catchd: "+format+"\n", args...)
		},
		Metrics: reg,
	})
	srv := &runner.Server{
		Engine:         eng,
		Resolve:        experiments.ConfigByName,
		MaxInflight:    *inflight,
		ShedAfter:      *shedAfter,
		RequestTimeout: *reqTimeout,
		JournalDir:     *journalDir,
		ResultMaxAge:   *resultMaxAge,
		Metrics:        reg,
		Version:        version,
		EnablePprof:    *enablePprof,
	}
	handler := srv.Handler()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Cluster mode wraps the single-node handler: sweeps shard across
	// the ring, results resolve through the tiered read path, and the
	// background steal loop helps drained peers.
	if len(opts.peerList) > 0 {
		hintPath := ""
		if *journalDir != "" {
			// Hints ride the journal directory: both are "redo this after
			// a restart" state, and a node without one simply re-earns
			// replication through anti-entropy repair.
			hintPath = filepath.Join(*journalDir, "hints.log")
		}
		node, err := cluster.NewNode(cluster.Options{
			Self:             opts.self,
			Peers:            opts.peerList,
			VNodes:           opts.vnodes,
			Engine:           eng,
			StealInterval:    opts.stealInterval,
			LentDeadline:     opts.lentDeadline,
			BreakerThreshold: opts.brThresh,
			BreakerCooldown:  opts.brCooldown,
			Replicas:         opts.replicas,
			ProbeInterval:    opts.probeInterval,
			RepairInterval:   opts.repairInterval,
			HintCap:          opts.hintCap,
			HintPath:         hintPath,
			Seed:             plan.Seed,
			Timeouts:         cluster.OpTimeouts{}.WithDefault(opts.peerTimeout),
			Fault:            inj,
			Metrics:          reg,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "catchd: "+format+"\n", args...)
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "catchd:", err)
			os.Exit(2)
		}
		srv.ClusterInfo = node.HealthSummary
		handler = (&cluster.Server{
			Node:         node,
			Resolve:      experiments.ConfigByName,
			Inner:        handler,
			JournalDir:   *journalDir,
			ResultMaxAge: *resultMaxAge,
			Version:      version,
		}).Handler()
		node.Start(ctx)
		fmt.Fprintf(os.Stderr, "catchd: cluster of %d (self %s, %d vnodes, %d replicas)\n",
			len(opts.peerList), opts.self, node.Ring().VNodes(), node.Replicas())
	}
	hs := &http.Server{Addr: *addr, Handler: handler}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "catchd: listening on %s (%d workers, cache %q)\n",
		*addr, eng.Workers(), *cacheDir)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Flip into drain mode before closing the listener: queued requests
	// shed immediately and the engine stops feeding sweep jobs, so the
	// 30s shutdown budget goes to finishing (and journaling) in-flight
	// work rather than starting more.
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "catchd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "catchd: drained, bye")
}
