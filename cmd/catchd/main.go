// Command catchd serves simulations over HTTP: single jobs, grid
// sweeps and cached results, backed by the parallel execution engine
// and its content-addressed result cache.
//
// Usage:
//
//	catchd -addr :8080 -parallel 8 -cache /tmp/catch-cache
//
// Endpoints:
//
//	POST /v1/run           {"config":"catch","workload":"mcf","insts":300000,"warmup":150000}
//	POST /v1/sweep         {"configs":["baseline-excl","catch"],"workloads":["mcf","hmmer"]}
//	GET  /v1/results/{key} cached result by content address
//	GET  /healthz          liveness, build info and counters
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/pprof/*    runtime profiles (with -pprof)
//
// Duplicate concurrent requests for the same job are coalesced onto
// one simulation; identical jobs after that are served from the cache.
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catch/internal/experiments"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// version identifies the build in /healthz; release builds may
// override it via -ldflags "-X main.version=...".
var version = "dev"

// options collects the parsed command line. validate checks it before
// the engine or listener starts; every validation error names the
// offending flag and makes main exit with status 2.
type options struct {
	addr     string
	parallel int
	inflight int
	timeout  time.Duration
	retries  int
}

// validate checks flag values and combinations.
func validate(o *options) error {
	if o.addr == "" {
		return errors.New("-addr must not be empty (e.g. :8080)")
	}
	if o.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS; got %d)", o.parallel)
	}
	if o.inflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0 (0 = 2x workers; got %d)", o.inflight)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 = none; got %v)", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", o.retries)
	}
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		parallel    = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache", "", "result cache directory (empty = in-memory only)")
		inflight    = flag.Int("max-inflight", 0, "max concurrently served run/sweep requests (0 = 2x workers)")
		timeout     = flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
		retries     = flag.Int("retries", 1, "extra attempts for a failed or timed-out job")
		enablePprof = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
	)
	flag.Parse()

	opts := options{addr: *addr, parallel: *parallel, inflight: *inflight, timeout: *timeout, retries: *retries}
	if err := validate(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(2)
	}

	reg := telemetry.NewRegistry()
	eng := runner.New(runner.Options{
		Workers: *parallel,
		Cache:   runner.NewCache(*cacheDir),
		Timeout: *timeout,
		Retries: *retries,
		Metrics: reg,
	})
	srv := &runner.Server{
		Engine:      eng,
		Resolve:     experiments.ConfigByName,
		MaxInflight: *inflight,
		Metrics:     reg,
		Version:     version,
		EnablePprof: *enablePprof,
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "catchd: listening on %s (%d workers, cache %q)\n",
		*addr, eng.Workers(), *cacheDir)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "catchd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "catchd: drained, bye")
}
