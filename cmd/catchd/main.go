// Command catchd serves simulations over HTTP: single jobs, grid
// sweeps and cached results, backed by the parallel execution engine
// and its content-addressed result cache.
//
// Usage:
//
//	catchd -addr :8080 -parallel 8 -cache /tmp/catch-cache
//
// Endpoints:
//
//	POST /v1/run           {"config":"catch","workload":"mcf","insts":300000,"warmup":150000}
//	POST /v1/sweep         {"configs":["baseline-excl","catch"],"workloads":["mcf","hmmer"]}
//	POST /v1/drain         stop accepting work, finish in-flight jobs
//	GET  /v1/results/{key} cached result by content address
//	GET  /healthz          liveness, build info and counters
//	GET  /metrics          Prometheus text exposition
//	GET  /debug/pprof/*    runtime profiles (with -pprof)
//
// Duplicate concurrent requests for the same job are coalesced onto
// one simulation; identical jobs after that are served from the cache.
// A disk-cache circuit breaker degrades to memory-only caching when the
// cache directory misbehaves, -shed-after bounds the request wait queue
// (overflow gets 503 + Retry-After), and sweeps POSTed with
// "resumable": true are journaled under -journal-dir so an interrupted
// sweep resumes from its last completed job. SIGINT/SIGTERM drain
// in-flight requests and exit cleanly. -inject enables the
// deterministic chaos layer (never in production).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"catch/internal/experiments"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// version identifies the build in /healthz; release builds may
// override it via -ldflags "-X main.version=...".
var version = "dev"

// options collects the parsed command line. validate checks it before
// the engine or listener starts; every validation error names the
// offending flag and makes main exit with status 2.
type options struct {
	addr       string
	parallel   int
	inflight   int
	timeout    time.Duration
	retries    int
	shedAfter  int
	reqTimeout time.Duration
	backoff    time.Duration
	brThresh   int
	brCooldown int
	inject     string
}

// validate checks flag values and combinations.
func validate(o *options) error {
	if o.addr == "" {
		return errors.New("-addr must not be empty (e.g. :8080)")
	}
	if o.parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 = GOMAXPROCS; got %d)", o.parallel)
	}
	if o.inflight < 0 {
		return fmt.Errorf("-max-inflight must be >= 0 (0 = 2x workers; got %d)", o.inflight)
	}
	if o.timeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 = none; got %v)", o.timeout)
	}
	if o.retries < 0 {
		return fmt.Errorf("-retries must be >= 0 (got %d)", o.retries)
	}
	if o.shedAfter < 0 {
		return fmt.Errorf("-shed-after must be >= 0 (0 = unbounded queue; got %d)", o.shedAfter)
	}
	if o.reqTimeout < 0 {
		return fmt.Errorf("-request-timeout must be >= 0 (0 = none; got %v)", o.reqTimeout)
	}
	if o.backoff < 0 {
		return fmt.Errorf("-retry-backoff must be >= 0 (0 = immediate retries; got %v)", o.backoff)
	}
	if o.brThresh < 0 {
		return fmt.Errorf("-breaker-threshold must be >= 0 (0 = breaker off; got %d)", o.brThresh)
	}
	if o.brCooldown < 0 {
		return fmt.Errorf("-breaker-cooldown must be >= 0 (got %d)", o.brCooldown)
	}
	if _, err := fault.ParsePlan(o.inject); err != nil {
		return fmt.Errorf("-inject: %v", err)
	}
	return nil
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		parallel    = flag.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS)")
		cacheDir    = flag.String("cache", "", "result cache directory (empty = in-memory only)")
		inflight    = flag.Int("max-inflight", 0, "max concurrently served run/sweep requests (0 = 2x workers)")
		timeout     = flag.Duration("job-timeout", 10*time.Minute, "per-job execution timeout (0 = none)")
		retries     = flag.Int("retries", 1, "extra attempts for a failed or timed-out job")
		shedAfter   = flag.Int("shed-after", 0, "max queued requests before shedding with 503 (0 = unbounded)")
		reqTimeout  = flag.Duration("request-timeout", 0, "per-request deadline; exceeded runs return 504 (0 = none)")
		backoff     = flag.Duration("retry-backoff", 0, "base retry pause, doubled per attempt with seeded jitter (0 = immediate)")
		brThresh    = flag.Int("breaker-threshold", 5, "consecutive disk-cache failures that trip the breaker to memory-only mode (0 = off)")
		brCooldown  = flag.Int("breaker-cooldown", 32, "denied cache probes before a tripped breaker half-opens")
		journalDir  = flag.String("journal-dir", "", "directory for resumable-sweep journals (empty = resumable sweeps rejected)")
		inject      = flag.String("inject", "", "deterministic fault plan, e.g. seed=42,disk-read=0.5,panic=0.1 (chaos testing only)")
		enablePprof = flag.Bool("pprof", false, "serve runtime profiles under /debug/pprof/")
	)
	flag.Parse()

	opts := options{
		addr: *addr, parallel: *parallel, inflight: *inflight, timeout: *timeout,
		retries: *retries, shedAfter: *shedAfter, reqTimeout: *reqTimeout,
		backoff: *backoff, brThresh: *brThresh, brCooldown: *brCooldown, inject: *inject,
	}
	if err := validate(&opts); err != nil {
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(2)
	}

	plan, _ := fault.ParsePlan(*inject) // validated above
	inj := fault.NewInjector(plan)
	if inj != nil {
		fmt.Fprintf(os.Stderr, "catchd: CHAOS MODE: injecting faults (%s)\n", plan)
	}
	var fs fault.FS = fault.OS{}
	if inj != nil {
		fs = fault.InjectFS{FS: fs, Inj: inj}
	}
	var breaker *fault.Breaker
	if *brThresh > 0 {
		breaker = fault.NewBreaker(*brThresh, *brCooldown)
	}

	reg := telemetry.NewRegistry()
	eng := runner.New(runner.Options{
		Workers: *parallel,
		Cache:   runner.NewCacheOpts(runner.CacheOptions{Dir: *cacheDir, FS: fs, Breaker: breaker}),
		Timeout: *timeout,
		Retries: *retries,
		Backoff: fault.Backoff{Base: *backoff, Seed: plan.Seed},
		Fault:   inj,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "catchd: "+format+"\n", args...)
		},
		Metrics: reg,
	})
	srv := &runner.Server{
		Engine:         eng,
		Resolve:        experiments.ConfigByName,
		MaxInflight:    *inflight,
		ShedAfter:      *shedAfter,
		RequestTimeout: *reqTimeout,
		JournalDir:     *journalDir,
		Metrics:        reg,
		Version:        version,
		EnablePprof:    *enablePprof,
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "catchd: listening on %s (%d workers, cache %q)\n",
		*addr, eng.Workers(), *cacheDir)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "catchd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	// Flip into drain mode before closing the listener: queued requests
	// shed immediately and the engine stops feeding sweep jobs, so the
	// 30s shutdown budget goes to finishing (and journaling) in-flight
	// work rather than starting more.
	srv.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "catchd: shutdown:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "catchd: drained, bye")
}
