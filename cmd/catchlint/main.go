// Command catchlint runs the repository's custom static analyzers
// (internal/lint) over the whole module and prints vet-style
// diagnostics.
//
// Usage:
//
//	catchlint            # analyze the module containing the cwd
//	catchlint -C path    # analyze the module rooted at (or above) path
//	catchlint -list      # list analyzers and the invariant each guards
//	catchlint -json      # emit findings as a JSON array
//	catchlint -github    # emit GitHub Actions ::error annotations
//
// Exit status: 0 when the tree is clean, 1 when findings exist, 2 on
// usage or load errors. Findings are suppressed per line and per
// analyzer with `//catchlint:ignore <analyzer> <reason>`; stale
// suppressions are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"catch/internal/lint"
)

func main() {
	var (
		dir    = flag.String("C", ".", "directory whose enclosing module to analyze")
		list   = flag.Bool("list", false, "list analyzers and exit")
		asJSON = flag.Bool("json", false, "emit findings as a JSON array")
		gitHub = flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catchlint: -C:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(root, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "catchlint:", err)
		os.Exit(2)
	}
	for i := range diags {
		if r, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			diags[i].Pos.Filename = filepath.ToSlash(r)
		}
	}

	switch {
	case *asJSON:
		findings := make([]lint.Finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, d.Finding())
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "catchlint: encode:", err)
			os.Exit(2)
		}
	case *gitHub:
		for _, d := range diags {
			f := d.Finding()
			fmt.Printf("::error file=%s,line=%d,col=%d,title=catchlint %s::%s\n",
				ghProperty(f.File), f.Line, f.Col, ghProperty(f.Analyzer), ghData(f.Message))
		}
	default:
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "catchlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// ghData escapes a workflow-command message per the GitHub Actions
// protocol: %, CR and LF would otherwise terminate or corrupt the
// command.
func ghData(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// ghProperty escapes a workflow-command property value, which
// additionally reserves ':' and ','.
func ghProperty(s string) string {
	s = ghData(s)
	s = strings.ReplaceAll(s, ":", "%3A")
	s = strings.ReplaceAll(s, ",", "%2C")
	return s
}

// findModuleRoot walks from dir upward to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for p := abs; ; {
		if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
			return p, nil
		}
		parent := filepath.Dir(p)
		if parent == p {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		p = parent
	}
}
