// Command catchlint runs the repository's custom static analyzers
// (internal/lint) over the whole module and prints vet-style
// diagnostics.
//
// Usage:
//
//	catchlint            # analyze the module containing the cwd
//	catchlint -C path    # analyze the module rooted at (or above) path
//	catchlint -list      # list analyzers and the invariant each guards
//
// Exit status: 0 when the tree is clean, 1 when findings exist, 2 on
// usage or load errors. Findings are suppressed per line and per
// analyzer with `//catchlint:ignore <analyzer> <reason>`; stale
// suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"catch/internal/lint"
)

func main() {
	var (
		dir  = flag.String("C", ".", "directory whose enclosing module to analyze")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-22s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "catchlint: -C:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(root, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "catchlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		rel := d
		if r, err := filepath.Rel(root, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			rel.Pos.Filename = r
		}
		fmt.Println(rel)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "catchlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks from dir upward to the nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for p := abs; ; {
		if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
			return p, nil
		}
		parent := filepath.Dir(p)
		if parent == p {
			return "", fmt.Errorf("no go.mod at or above %s", abs)
		}
		p = parent
	}
}
