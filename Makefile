GO ?= go

.PHONY: check build vet test race bench benchcmp benchall

# check gates a change: build + vet + the full test suite under the
# race detector (this includes internal/telemetry's concurrent
# counter/histogram/tracer tests and the runner's /metrics tests).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench re-records the committed simulator-throughput baseline.
bench:
	$(GO) run ./cmd/catchbench -out BENCH_sim.json

# benchcmp runs the Sim* benchmarks fresh and fails if any throughput
# dropped more than 10% against the committed baseline.
benchcmp:
	$(GO) run ./cmd/catchbench -compare BENCH_sim.json

# benchall regenerates every table/figure benchmark (slow).
benchall:
	$(GO) test -bench=. -benchmem
