GO ?= go

.PHONY: check build vet test race lint fmtcheck bench benchcmp benchall chaos cluster-smoke batch-smoke sample-smoke partition-smoke

# check gates a change: build + formatting + vet + catchlint + the
# full test suite under the race detector (this includes
# internal/telemetry's concurrent counter/histogram/tracer tests and
# the runner's /metrics tests) + the seeded chaos suite + the
# cluster determinism smoke + the batch-kernel determinism smoke +
# the sampling accuracy smoke + the self-healing partition smoke.
check: build fmtcheck vet lint race chaos cluster-smoke batch-smoke sample-smoke partition-smoke

# partition-smoke proves the self-healing layer: with -replicas 2,
# killing any single peer yields a byte-identical sweep with zero
# recomputation (kill-one-peer variant), hinted handoff restores full
# replication when the peer returns, and a split-brain 3-node cluster
# (seeded fault schedule severing one node) keeps computing on both
# sides, then converges every key to its full replica set on heal.
# Bypasses the go test cache so it always re-proves.
partition-smoke:
	$(GO) test -run 'TestClusterReplicationSurvivesKill|TestClusterHintedHandoffDrain|TestClusterPartitionTolerance' -count=1 ./internal/cluster

# sample-smoke proves representative-interval sampling stays honest:
# the fig13 grid run through a sampling engine must reproduce every
# per-workload normalized performance ratio within 2% of the exact run
# while measuring at least 10x fewer instructions, with zero fallbacks
# to full simulation. Bypasses the go test cache so it always re-proves.
sample-smoke:
	$(GO) test -run 'TestSampleSmokeFig13' -count=1 ./internal/experiments

# batch-smoke proves the lock-step batch kernel preserves determinism:
# the fig13 experiment run through a batching engine must hash to the
# same committed golden value as the scalar run, while actually taking
# the batch path. Bypasses the go test cache so it always re-proves.
batch-smoke:
	$(GO) test -run 'TestBatchSmokeFig13' -count=1 ./internal/experiments

# cluster-smoke proves the distribution layer preserves determinism: a
# 3-node in-memory cluster shards a sweep over the ring and the
# Flattened output must be byte-identical to the single-node run, with
# the chaos variants (dead peer, injected peer faults) alongside.
# Bypasses the go test cache so it always re-proves.
cluster-smoke:
	$(GO) test -run 'TestClusterSmoke|TestClusterKillOnePeer|TestClusterPeerFaultInjection' -count=1 ./internal/cluster

# chaos re-proves determinism under injected faults: seeded fault
# schedules (disk errors, corrupt cache entries, panics, hangs, a
# kill/resume cycle) over real small sweeps must produce byte-identical
# results vs the fault-free run. Bypasses the go test cache; ~1s.
chaos:
	$(GO) run ./cmd/catchbench -chaos

# lint runs the in-repo static-analysis suite (see DESIGN.md,
# "Static analysis"): determinism, hotpath-noalloc,
# atomic-consistency, telemetry-discipline and error-hygiene.
lint:
	$(GO) run ./cmd/catchlint

# fmtcheck fails if any file is not gofmt-clean (gofmt -l prints the
# offenders; grep . fails the target when the list is non-empty).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs everything under the race detector; internal/cluster and
# internal/sample run twice because their interleavings (work stealing,
# concurrent snapshot-store access) differ run to run.
race:
	$(GO) test -race ./...
	$(GO) test -race -count=2 ./internal/cluster
	$(GO) test -race -count=2 ./internal/sample

# bench re-records the committed simulator-throughput baseline from the
# per-metric medians of 5 samples per benchmark.
bench:
	$(GO) run ./cmd/catchbench -count 5 -out BENCH_sim.json

# benchcmp runs the Sim* benchmarks fresh (5 samples each, compared by
# median so one noisy sample cannot fail the gate), prints the
# per-benchmark throughput deltas, and fails if any benchmark's
# throughput normalized to BenchmarkSimBaseline (measured in the same
# run, so machine-speed drift cancels in the ratio) dropped more than
# 10% against the committed baseline. Re-record with `make bench` only
# after an intentional performance change.
benchcmp:
	$(GO) run ./cmd/catchbench -count 5 -compare BENCH_sim.json

# benchall regenerates every table/figure benchmark (slow).
benchall:
	$(GO) test -bench=. -benchmem
