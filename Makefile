GO ?= go

.PHONY: check build vet test race lint fmtcheck bench benchcmp benchall chaos

# check gates a change: build + formatting + vet + catchlint + the
# full test suite under the race detector (this includes
# internal/telemetry's concurrent counter/histogram/tracer tests and
# the runner's /metrics tests) + the seeded chaos suite.
check: build fmtcheck vet lint race chaos

# chaos re-proves determinism under injected faults: seeded fault
# schedules (disk errors, corrupt cache entries, panics, hangs, a
# kill/resume cycle) over real small sweeps must produce byte-identical
# results vs the fault-free run. Bypasses the go test cache; ~1s.
chaos:
	$(GO) run ./cmd/catchbench -chaos

# lint runs the in-repo static-analysis suite (see DESIGN.md,
# "Static analysis"): determinism, hotpath-noalloc,
# atomic-consistency, telemetry-discipline and error-hygiene.
lint:
	$(GO) run ./cmd/catchlint

# fmtcheck fails if any file is not gofmt-clean (gofmt -l prints the
# offenders; grep . fails the target when the list is non-empty).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench re-records the committed simulator-throughput baseline.
bench:
	$(GO) run ./cmd/catchbench -out BENCH_sim.json

# benchcmp runs the Sim* benchmarks fresh and fails if any throughput
# dropped more than 10% against the committed baseline.
benchcmp:
	$(GO) run ./cmd/catchbench -compare BENCH_sim.json

# benchall regenerates every table/figure benchmark (slow).
benchall:
	$(GO) test -bench=. -benchmem
