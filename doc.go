// Package catch is a reproduction of "Criticality Aware Tiered Cache
// Hierarchy: A Fundamental Relook at Multi-level Cache Hierarchies"
// (Nori, Gaur, Rai, Subramoney, Wang — ISCA 2018).
//
// The library lives under internal/: an out-of-order core timing model
// (internal/cpu), a multi-level cache hierarchy with inclusive and
// exclusive LLCs (internal/cache), DRAM and ring models
// (internal/memory, internal/interconnect), baseline stride/stream
// prefetchers (internal/prefetch), the paper's hardware criticality
// detector (internal/criticality) and TACT prefetchers (internal/tact),
// the synthetic workload suite (internal/trace, internal/workloads),
// and the per-figure experiment drivers (internal/experiments).
//
// Entry points: cmd/catchsim (single run), cmd/catchexp (regenerate the
// paper's tables and figures), cmd/tracegen (workload inspection), and
// the runnable examples under examples/.
//
// The benchmarks in bench_test.go regenerate every evaluated table and
// figure; see EXPERIMENTS.md for paper-versus-measured numbers.
package catch
