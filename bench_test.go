// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment driver
// on a calibrated budget and logs the table it produced, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation (the bench output of a run is
// recorded in EXPERIMENTS.md against the paper's numbers). Single-run
// simulator throughput benchmarks are at the bottom.
package catch_test

import (
	"fmt"
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/experiments"
	"catch/internal/sample"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// benchBudget is the per-figure budget used by the benchmarks: all 70
// workloads at a reduced instruction count, so each figure completes in
// tens of seconds while preserving the published shape.
func benchBudget() experiments.Budget {
	return experiments.Budget{Insts: 200_000, Warmup: 100_000, Mixes: 8}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, benchBudget())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s", t.Print())
			}
		}
	}
}

// BenchmarkFig1RemoveL2 regenerates Figure 1: the performance impact of
// removing the L2 at iso-capacity and iso-area (paper: -7.8% / -5.1%).
func BenchmarkFig1RemoveL2(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig3LatencySensitivity regenerates Figure 3: +1/2/3-cycle
// latency sensitivity per cache level (paper: L1 -2.4/-4.8/-7.2%).
func BenchmarkFig3LatencySensitivity(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFig4CriticalityOracle regenerates Figure 4: converting ALL
// vs only non-critical hits at each level to the next level's latency.
func BenchmarkFig4CriticalityOracle(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5OraclePrefetch regenerates Figure 5: the zero-time
// oracle prefetcher versus tracked critical PC count (32…2048, All,
// noL2+2048).
func BenchmarkFig5OraclePrefetch(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig10CATCHExclusive regenerates Figure 10: CATCH on the
// large-L2 exclusive baseline (the headline +8.4% / two-level results).
func BenchmarkFig10CATCHExclusive(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Timeliness regenerates Figure 11: TACT prefetch source
// and latency-saved buckets (paper: ~88% from LLC, >85% saving >80%).
func BenchmarkFig11Timeliness(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12PerWorkload regenerates Figure 12: per-workload
// performance ratios for the noL2 and CATCH configurations.
func BenchmarkFig12PerWorkload(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13TACTComponents regenerates Figure 13: the cumulative
// Code → +Cross → +Deep → +Feeder component breakdown over noL2.
func BenchmarkFig13TACTComponents(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Multiprogrammed regenerates Figure 14: 4-way MP
// weighted speedups (paper: noL2 -4.1%, noL2+CATCH +8.5%, CATCH +9.0%).
func BenchmarkFig14Multiprogrammed(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkFig15LLCLatency regenerates Figure 15: sensitivity of noL2
// and two-level CATCH to +6/+12 LLC cycles.
func BenchmarkFig15LLCLatency(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkFig16Energy regenerates Figure 16: energy savings of the
// two-level CATCH hierarchy (paper: ~11% average).
func BenchmarkFig16Energy(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkFig17Inclusive regenerates Figure 17: CATCH on the
// small-L2 inclusive baseline (paper: noL2 -5.7% … CATCH +10.3%).
func BenchmarkFig17Inclusive(b *testing.B) { runExperiment(b, "fig17") }

// BenchmarkTable1Area regenerates Table I / Fig 9: the hardware budget
// of the detector graph (~3KB) and TACT structures (~1.2KB).
func BenchmarkTable1Area(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkAreaPerfTradeoff runs the extension experiment: chip-level
// cache area versus performance across hierarchy designs (§VI-E).
func BenchmarkAreaPerfTradeoff(b *testing.B) { runExperiment(b, "area") }

// --- raw simulator throughput ---------------------------------------------

func benchSim(b *testing.B, cfgName, workload string) {
	b.Helper()
	cfg, ok := experiments.ConfigByName(cfgName)
	if !ok {
		b.Fatalf("config %s", cfgName)
	}
	w, ok := workloads.ByName(workload)
	if !ok {
		b.Fatalf("workload %s", workload)
	}
	const insts = 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(cfg)
		res := sys.RunST(w.NewGen(), insts, 20_000)
		if res.IPC <= 0 {
			b.Fatal("no progress")
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimBaseline measures raw simulation speed of the baseline.
func BenchmarkSimBaseline(b *testing.B) { benchSim(b, "baseline-excl", "hmmer") }

// BenchmarkSimCATCH measures simulation speed with the detector and
// TACT active (the extra cost of the CATCH hardware models).
func BenchmarkSimCATCH(b *testing.B) { benchSim(b, "catch", "hmmer") }

// BenchmarkSimMP measures 4-core multi-programmed simulation speed.
func BenchmarkSimMP(b *testing.B) {
	cfg, _ := experiments.ConfigByName("baseline-excl")
	cfg.Cores = 4
	mix := workloads.Mixes()[0]
	for i := 0; i < b.N; i++ {
		sys := core.NewSystem(cfg)
		sys.RunMP(mix.Gens(), 30_000, 10_000)
	}
}

// batchBenchConfigs is the 8-configuration LLC-latency grid used to
// compare the lock-step batch kernel against independent scalar runs.
func batchBenchConfigs(b *testing.B) []config.SystemConfig {
	b.Helper()
	base, ok := experiments.ConfigByName("baseline-excl")
	if !ok {
		b.Fatal("config baseline-excl")
	}
	cfgs := make([]config.SystemConfig, 8)
	for i := range cfgs {
		cfgs[i] = config.WithLatencyDelta(base, cache.HitLLC, int64(i),
			fmt.Sprintf("baseline-excl+llc%d", i))
	}
	return cfgs
}

const (
	batchBenchInsts  = 100_000
	batchBenchWarmup = 20_000
)

// BenchmarkSimBatch measures the lock-step kernel: 8 configurations
// stepped through one memoized hmmer trace via core.RunBatch. The
// instrs/s metric aggregates all 8 systems, so it is directly
// comparable to BenchmarkSimScalar8 below — the ratio of the two is
// the batch speedup.
func BenchmarkSimBatch(b *testing.B) {
	cfgs := batchBenchConfigs(b)
	w, _ := workloads.ByName("hmmer")
	m, err := trace.NewStore("").Materialize(&w, batchBenchInsts+batchBenchWarmup)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := core.RunBatch(m, cfgs, batchBenchInsts, batchBenchWarmup)
		if err != nil {
			b.Fatal(err)
		}
		if rs[0].IPC <= 0 {
			b.Fatal("no progress")
		}
	}
	b.ReportMetric(float64(len(cfgs))*batchBenchInsts*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimScalar8 runs the same 8-configuration grid as
// BenchmarkSimBatch through independent scalar RunST calls (each with
// its own generated trace) — the pre-batch execution model and the
// denominator of the batch speedup.
func BenchmarkSimScalar8(b *testing.B) {
	cfgs := batchBenchConfigs(b)
	w, _ := workloads.ByName("hmmer")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			sys := core.NewSystem(cfg)
			res := sys.RunST(w.NewGen(), batchBenchInsts, batchBenchWarmup)
			if res.IPC <= 0 {
				b.Fatal("no progress")
			}
		}
	}
	b.ReportMetric(float64(len(cfgs))*batchBenchInsts*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSimSampled measures the representative-interval sampling
// path in its steady-state sweep regime: the planner's profile and
// warm-snapshot caches are primed, so each iteration restores warm
// state, steps the gaps and measures only the representative windows.
// The instrs/s metric counts the full budget each run estimates
// (effective simulated instructions per second); the ratio against
// BenchmarkSimCATCH is the end-to-end sampled speedup.
func BenchmarkSimSampled(b *testing.B) {
	cfg, ok := experiments.ConfigByName("catch")
	if !ok {
		b.Fatal("config catch")
	}
	w, ok := workloads.ByName("hmmer")
	if !ok {
		b.Fatal("workload hmmer")
	}
	const insts, warmup = 100_000, 20_000
	spec := sample.Spec{Interval: 2_000, K: 5}
	p := sample.NewPlanner(trace.NewStore(""), sample.NewStore(""))
	if _, err := p.Run(cfg, &w, insts, warmup, spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run(cfg, &w, insts, warmup, spec)
		if err != nil {
			b.Fatal(err)
		}
		if res.IPC <= 0 {
			b.Fatal("no progress")
		}
	}
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkSystemConstruction measures system build cost (cache
// allocation dominates).
func BenchmarkSystemConstruction(b *testing.B) {
	cfg := config.BaselineExclusive()
	for i := 0; i < b.N; i++ {
		core.NewSystem(cfg)
	}
}

// --- extension experiments -------------------------------------------------

// BenchmarkExtTableSize sweeps the critical-load table size (§VI-D2).
func BenchmarkExtTableSize(b *testing.B) { runExperiment(b, "ext-tablesize") }

// BenchmarkExtMSHR ablates the demand-miss fill-buffer count.
func BenchmarkExtMSHR(b *testing.B) { runExperiment(b, "ext-mshr") }

// BenchmarkExtDeepDistance ablates the deep-self distance cap.
func BenchmarkExtDeepDistance(b *testing.B) { runExperiment(b, "ext-deepdist") }

// BenchmarkExtReplacement checks CATCH orthogonality to LLC replacement.
func BenchmarkExtReplacement(b *testing.B) { runExperiment(b, "ext-replacement") }

// BenchmarkExtHeuristics compares criticality sources driving CATCH.
func BenchmarkExtHeuristics(b *testing.B) { runExperiment(b, "ext-heuristics") }

// BenchmarkExtBranchPred swaps trace-flagged speculation for a gshare
// predictor and checks the CATCH conclusion survives.
func BenchmarkExtBranchPred(b *testing.B) { runExperiment(b, "ext-branchpred") }

// BenchmarkExtSharedCode quantifies code replication vs sharing (§II).
func BenchmarkExtSharedCode(b *testing.B) { runExperiment(b, "ext-sharedcode") }
