// Multi-programmed example: run a 4-way mix on the shared-LLC system
// (paper §VI-C) and report per-core IPC and weighted speedup for the
// baseline and the CATCH hierarchy.
//
//	go run ./examples/mp_workloads [mix-index]
package main

import (
	"fmt"
	"os"
	"strconv"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/workloads"
)

func main() {
	const (
		insts  = 80_000
		warmup = 40_000
	)
	idx := 31 // first random mix
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			idx = v
		}
	}
	mixes := workloads.Mixes()
	if idx < 0 || idx >= len(mixes) {
		fmt.Fprintf(os.Stderr, "mix index out of range (0..%d)\n", len(mixes)-1)
		os.Exit(1)
	}
	mix := mixes[idx]
	fmt.Printf("mix %s: %s, %s, %s, %s\n\n", mix.Name,
		mix.Parts[0].WName, mix.Parts[1].WName, mix.Parts[2].WName, mix.Parts[3].WName)

	for _, variant := range []struct {
		label string
		cfg   config.SystemConfig
	}{
		{"baseline", config.BaselineExclusive()},
		{"CATCH", config.WithCATCH(config.BaselineExclusive(), "catch")},
	} {
		cfg := variant.cfg
		cfg.Cores = 4

		// Weighted speedup needs each part's IPC running alone.
		alone := map[string]float64{}
		for _, p := range mix.Parts {
			if _, ok := alone[p.WName]; ok {
				continue
			}
			r := core.NewSystem(cfg).RunST(p.NewGen(), insts, warmup)
			alone[p.WName] = r.IPC
		}

		rs := core.NewSystem(cfg).RunMP(mix.Gens(), insts, warmup)
		ws := 0.0
		fmt.Printf("— %s —\n", variant.label)
		for i, r := range rs {
			rel := r.IPC / alone[mix.Parts[i].WName]
			ws += rel
			fmt.Printf("  core %d %-16s IPC %.3f (%.0f%% of solo)\n",
				i, r.Workload, r.IPC, rel*100)
		}
		fmt.Printf("  weighted speedup: %.3f / 4\n\n", ws)
	}
}
