// TACT playground: runs each TACT prefetcher against the access
// pattern it was designed for (paper Fig 7), in isolation, and shows
// what it learned and saved. A compact demonstration of the library's
// lower-level APIs (trace kernels + single-component TACT configs).
//
//	go run ./examples/tact_playground
package main

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/tact"
	"catch/internal/trace"
)

// scenario pairs a workload pattern with the TACT component that
// should cover it.
type scenario struct {
	name      string
	component string
	build     trace.BuildFunc
	enable    func(*tact.Config)
}

func main() {
	const (
		insts  = 150_000
		warmup = 80_000
	)

	scenarios := []scenario{
		{
			name:      "strided walk over an L2-resident set",
			component: "Deep-Self",
			build: func(b *trace.Builder) {
				k := &trace.StridedHotKernel{
					Code: b.Space.Code(256), Data: b.Space.Data(512 << 10),
					R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 16, Work: 4, Serial: true,
				}
				b.MarkPrewarm(k.Data)
				b.Add(1, k)
			},
			enable: func(c *tact.Config) { c.EnableDeep = true },
		},
		{
			name:      "header→payload pairs at a fixed intra-page delta",
			component: "Cross",
			build: func(b *trace.Builder) {
				k := &trace.CrossPairKernel{
					Code: b.Space.Code(512), Data: b.Space.Data(768 << 10),
					R: [4]int8{0, 1, 2, 3}, Delta: 640, Gap: 10, Work: 5, Block: 3,
					Seed: 7,
				}
				b.MarkPrewarm(k.Data)
				b.Add(1, k)
			},
			enable: func(c *tact.Config) { c.EnableCross = true },
		},
		{
			name:      "a[idx[i]] gather through an index array",
			component: "Feeder",
			build: func(b *trace.Builder) {
				k := &trace.IndexedGatherKernel{
					Code: b.Space.Code(384), Index: b.Space.Data(512 << 10),
					Target: b.Space.Data(768 << 10),
					R:      [4]int8{0, 1, 2, 3}, Block: 12, Work: 4, MispredP: 0.12,
					SeedVal: 3,
				}
				b.AddValues(k.Values())
				b.MarkPrewarm(k.Index)
				b.MarkPrewarm(k.Target)
				b.Add(1, k)
			},
			enable: func(c *tact.Config) { c.EnableFeeder = true },
		},
	}

	for _, sc := range scenarios {
		w := trace.Workload{WName: "playground", WCategory: "demo", Seed: 42, Build: sc.build}

		// Plain baseline vs CATCH with only this component enabled.
		base := config.BaselineExclusive()
		plain := core.NewSystem(base).RunST(w.NewGen(), insts, warmup)

		cfg := config.WithCATCH(base, "catch-"+sc.component)
		cfg.Tact = tact.Config{Targets: 32, MaxDeepDistance: 16, FeederDistance: 4, CodeDepth: 8}
		sc.enable(&cfg.Tact)
		catch := core.NewSystem(cfg).RunST(w.NewGen(), insts, warmup)

		fmt.Printf("— TACT-%s: %s —\n", sc.component, sc.name)
		fmt.Printf("  IPC %.3f → %.3f (%+.1f%%)\n",
			plain.IPC, catch.IPC, (catch.IPC/plain.IPC-1)*100)
		fmt.Printf("  prefetches issued: dist1 %d, deep %d, cross %d, feeder %d\n",
			catch.Tact.Dist1Issued, catch.Tact.DeepIssued,
			catch.Tact.CrossIssued, catch.Tact.FeederIssued)
		fmt.Printf("  trained: cross %d, feeder %d;  used by demand loads: %d\n",
			catch.Tact.CrossTrained, catch.Tact.FeederTrained, catch.Hier.TactUsed)
		if h := catch.Hier.TactTimeliness; h != nil && h.Total > 0 {
			fmt.Printf("  timeliness: %.0f%% of used prefetches saved >80%% of the source latency\n",
				100*h.Fraction(2))
		}
		fmt.Println()
	}
}
