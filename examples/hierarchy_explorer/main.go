// Hierarchy explorer: the paper's §VI-E claim is that CATCH is a
// framework for chip-level area/performance/power trade-offs. This
// example sweeps hierarchy designs — the three-level baseline, CATCH on
// top of it, and two-level CATCH designs at several LLC sizes — and
// prints area, performance and energy for each so the trade-off frontier
// is visible.
//
//	go run ./examples/hierarchy_explorer
package main

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/power"
	"catch/internal/stats"
	"catch/internal/workloads"
)

func main() {
	const (
		insts  = 100_000
		warmup = 60_000
		nWork  = 20 // spread across categories
	)

	type design struct {
		name string
		cfg  config.SystemConfig
	}
	base := config.BaselineExclusive()
	designs := []design{
		{"3-level baseline (1MB L2 + 5.5MB LLC)", base},
		{"3-level + CATCH", config.WithCATCH(base, "catch")},
		{"2-level CATCH, 5.5MB LLC", config.WithCATCH(config.NoL2(base, 5632*config.KB, 11, ""), "c55")},
		{"2-level CATCH, 6.5MB LLC", config.WithCATCH(config.NoL2(base, 6656*config.KB, 13, ""), "c65")},
		{"2-level CATCH, 9.5MB LLC (iso-area)", config.WithCATCH(config.NoL2(base, 9728*config.KB, 19, ""), "c95")},
	}

	wls := workloads.StudyList(nWork)
	am := power.DefaultAreaModel()
	em := power.DefaultEnergyModel()

	type row struct {
		name   string
		area   float64
		ipc    float64
		energy float64
	}
	var rows []row
	for _, d := range designs {
		var ipcs []float64
		var energy float64
		for _, w := range wls {
			r := core.NewSystem(d.cfg).RunST(w.NewGen(), insts, warmup)
			ipcs = append(ipcs, r.IPC)
			energy += em.Energy(&d.cfg, &r).TotalUJ
		}
		fourCore := d.cfg
		fourCore.Cores = 4
		rows = append(rows, row{
			name:   d.name,
			area:   am.CacheAreaMM2(&fourCore),
			ipc:    stats.Geomean(ipcs),
			energy: energy,
		})
	}

	baseRow := rows[0]
	fmt.Printf("%-40s %12s %12s %12s\n", "design", "area (mm²)", "perf", "energy")
	for _, r := range rows {
		fmt.Printf("%-40s %12.1f %+11.1f%% %+11.1f%%\n",
			r.name, r.area,
			(r.ipc/baseRow.ipc-1)*100,
			(r.energy/baseRow.energy-1)*100)
	}
	fmt.Println("\narea is 4-core cache area; perf is geomean IPC vs the baseline;")
	fmt.Println("energy is total cache+ring+DRAM energy vs the baseline.")
}
