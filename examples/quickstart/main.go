// Quickstart: build the paper's baseline system and the CATCH system,
// run one workload on each, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/workloads"
)

func main() {
	const (
		insts  = 200_000
		warmup = 100_000
	)

	w, ok := workloads.ByName("mcf")
	if !ok {
		panic("workload missing")
	}

	// The paper's baseline: 1MB L2 + 5.5MB exclusive LLC per 4 cores.
	baseline := config.BaselineExclusive()
	base := core.NewSystem(baseline).RunST(w.NewGen(), insts, warmup)

	// The same hierarchy with CATCH: hardware criticality detection
	// driving the TACT inter-cache prefetchers.
	catch := core.NewSystem(config.WithCATCH(baseline, "catch")).
		RunST(w.NewGen(), insts, warmup)

	fmt.Printf("workload: %s (%s)\n\n", base.Workload, base.Category)
	fmt.Printf("%-22s %10s %10s\n", "", "baseline", "CATCH")
	fmt.Printf("%-22s %10.3f %10.3f\n", "IPC", base.IPC, catch.IPC)
	fmt.Printf("%-22s %9.1f%% %9.1f%%\n", "L1 load hit rate",
		100*base.L1LoadHitRate(), 100*catch.L1LoadHitRate())
	fmt.Printf("%-22s %10d %10d\n", "critical PCs tracked", base.CriticalPCs, catch.CriticalPCs)
	fmt.Printf("%-22s %10d %10d\n", "TACT prefetches", base.Hier.TactIssued, catch.Hier.TactIssued)
	fmt.Printf("%-22s %10d %10d\n", "TACT used by demand", base.Hier.TactUsed, catch.Hier.TactUsed)
	fmt.Printf("\nCATCH speedup: %+.2f%%\n", (catch.IPC/base.IPC-1)*100)
}
