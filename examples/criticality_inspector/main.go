// Criticality inspector: runs a workload through the hardware
// criticality detector (§IV-A) and dumps what it learned — the DDG walk
// statistics, the critical load PCs, and where those loads were served
// from — illustrating the paper's Figure 2/6 machinery on live traffic.
//
//	go run ./examples/criticality_inspector [workload]
package main

import (
	"fmt"
	"os"
	"sort"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/criticality"
	"catch/internal/workloads"
)

func main() {
	name := "xalancbmk"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	w, ok := workloads.ByName(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", name)
		os.Exit(1)
	}

	cfg := config.WithCATCH(config.BaselineExclusive(), "catch")
	sys := core.NewSystem(cfg)
	res := sys.RunST(w.NewGen(), 200_000, 100_000)
	det := sys.Sims[0].Crit.(*criticality.Detector)

	fmt.Printf("workload %s: IPC %.3f over %d cycles\n\n", name, res.IPC, res.Cycles)

	fmt.Println("— DDG detector activity —")
	fmt.Printf("graph walks            %d (every 2×ROB retired instructions)\n", res.Crit.Walks)
	fmt.Printf("nodes on critical path %d (avg %.1f per walk)\n",
		res.Crit.PathNodes, float64(res.Crit.PathNodes)/float64(max(res.Crit.Walks, 1)))
	fmt.Printf("loads on critical path %d\n", res.Crit.PathLoads)
	fmt.Printf("recorded (L2/LLC hits) %d\n", res.Crit.RecordedLoads)

	pcs := det.Table.CriticalPCs()
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	fmt.Printf("\n— critical load PCs (%d marked) —\n", len(pcs))
	for _, pc := range pcs {
		fmt.Printf("  pc %#x\n", pc)
	}

	fmt.Println("\n— what TACT did with them —")
	fmt.Printf("cross-trained %d   feeder-trained %d\n", res.Tact.CrossTrained, res.Tact.FeederTrained)
	fmt.Printf("prefetches: dist1 %d  deep %d  cross %d  feeder %d\n",
		res.Tact.Dist1Issued, res.Tact.DeepIssued, res.Tact.CrossIssued, res.Tact.FeederIssued)
	fmt.Printf("filled into L1: from L2 %d, from LLC %d (dropped: present %d, off-die %d)\n",
		res.Hier.TactFilledL2, res.Hier.TactFilledLLC, res.Hier.TactDropPresent, res.Hier.TactDropMiss)

	area := criticality.ComputeArea(cfg.CPU.ROB, 2.5, cfg.CritTable.Entries)
	fmt.Printf("\n— hardware budget (paper Table I) —\n")
	fmt.Printf("graph buffer %dB + hashed PCs %dB + table %dB = %dB (~3KB)\n",
		area.GraphBytes, area.PCBytes, area.TableBytes, area.TotalBytes)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
