package cpu

import (
	"catch/internal/snap"
	"catch/internal/trace"
)

// Snapshot codecs for the timing model: every field Reset clears —
// the sequence counter, the dispatch/commit rings, front-end state,
// register scoreboard, store set and retirement counters — plus the
// branch predictor's history and counter table. The retirement scratch
// record is excluded: it is fully overwritten before every OnRetire.

// SnapshotTo appends the core's full mutable state.
func (c *Core) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(c.dRing)))
	w.U64(uint64(len(c.cRingROB)))
	w.I64(c.seq)
	for _, v := range c.dRing {
		w.I64(v)
	}
	for _, v := range c.cRingROB {
		w.I64(v)
	}
	for _, v := range c.cRingW {
		w.I64(v)
	}
	w.Int(c.wIdx)
	w.Int(c.rIdx)
	w.I64(c.lastD)
	w.I64(c.lastC)
	w.I64(c.fetchReady)
	w.I64(c.redirectAt)
	w.U64(c.curLine)
	for i := 0; i < trace.NumArchRegs; i++ {
		w.I64(c.regReady[i])
		w.I64(c.regSeq[i])
	}
	for i := range c.stores {
		w.U64(c.stores[i].addr)
		w.I64(c.stores[i].done)
		w.I64(c.stores[i].seq)
	}
	w.I64(c.Insts)
	w.I64(c.Loads)
	w.I64(c.Branches)
	w.I64(c.Mispredicts)
	w.I64(c.CodeStalls)
}

// RestoreFrom restores state serialized by SnapshotTo into a core
// built with the same parameters.
func (c *Core) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(c.dRing)), "core width")
	r.Expect(uint64(len(c.cRingROB)), "core ROB size")
	c.seq = r.I64()
	for i := range c.dRing {
		c.dRing[i] = r.I64()
	}
	for i := range c.cRingROB {
		c.cRingROB[i] = r.I64()
	}
	for i := range c.cRingW {
		c.cRingW[i] = r.I64()
	}
	c.wIdx = r.Int()
	c.rIdx = r.Int()
	c.lastD = r.I64()
	c.lastC = r.I64()
	c.fetchReady = r.I64()
	c.redirectAt = r.I64()
	c.curLine = r.U64()
	for i := 0; i < trace.NumArchRegs; i++ {
		c.regReady[i] = r.I64()
		c.regSeq[i] = r.I64()
	}
	for i := range c.stores {
		c.stores[i].addr = r.U64()
		c.stores[i].done = r.I64()
		c.stores[i].seq = r.I64()
	}
	c.Insts = r.I64()
	c.Loads = r.I64()
	c.Branches = r.I64()
	c.Mispredicts = r.I64()
	c.CodeStalls = r.I64()
	return r.Err()
}

// SnapshotTo appends the predictor's history register, counter table
// and accuracy counters.
func (g *Gshare) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(g.table)))
	w.U64(g.hist)
	w.Raw(g.table)
	w.U64(g.Predicts)
	w.U64(g.Mispredicts)
}

// RestoreFrom restores predictor state serialized by SnapshotTo.
func (g *Gshare) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(g.table)), "gshare table size")
	g.hist = r.U64()
	for i := range g.table {
		g.table[i] = r.U8()
	}
	g.Predicts = r.U64()
	g.Mispredicts = r.U64()
	return r.Err()
}
