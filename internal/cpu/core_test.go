package cpu

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/trace"
)

// fixedLoad wires a constant load latency.
func fixedLoad(lat int64, lvl cache.HitLevel) func(*trace.Inst, int64) (int64, cache.HitLevel) {
	return func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		return lat, lvl
	}
}

func newTestCore(loadLat int64) *Core {
	c := New(DefaultParams())
	c.Ports.Load = fixedLoad(loadLat, cache.HitL1)
	return c
}

func alu(pc uint64, dst, s1 int8) trace.Inst {
	return trace.Inst{PC: pc, Op: trace.OpALU, Dst: dst, Src1: s1, Src2: trace.NoReg}
}

func TestWidthBoundsIPC(t *testing.T) {
	c := newTestCore(5)
	// Independent ALU ops: IPC must approach (and never exceed) width.
	for i := 0; i < 10000; i++ {
		in := alu(0x1000, int8(i%4), trace.NoReg)
		c.Step(&in)
	}
	ipc := c.IPC()
	if ipc > 4.0 {
		t.Fatalf("IPC %v exceeds machine width", ipc)
	}
	if ipc < 3.5 {
		t.Fatalf("independent ALU IPC %v far below width", ipc)
	}
}

func TestDependencyChainBoundsIPC(t *testing.T) {
	c := newTestCore(5)
	// A serial chain of 1-cycle ALUs: one instruction per cycle.
	for i := 0; i < 10000; i++ {
		in := alu(0x1000, 1, 1)
		c.Step(&in)
	}
	ipc := c.IPC()
	if ipc > 1.05 || ipc < 0.9 {
		t.Fatalf("serial chain IPC %v, want ≈1", ipc)
	}
}

func TestLoadLatencyOnChain(t *testing.T) {
	// Serial loads (address depends on previous load) expose latency.
	run := func(lat int64) int64 {
		c := newTestCore(lat)
		for i := 0; i < 2000; i++ {
			in := trace.Inst{PC: 0x1000, Op: trace.OpLoad, Dst: 1, Src1: 1,
				Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
			c.Step(&in)
		}
		return c.Cycles()
	}
	c5, c40 := run(5), run(40)
	ratio := float64(c40) / float64(c5)
	if ratio < 5 {
		t.Fatalf("40-cycle chained loads only %.2fx slower than 5-cycle", ratio)
	}
}

func TestIndependentLoadsHideLatency(t *testing.T) {
	// Loads with no consumers are absorbed by the OOO window.
	c := newTestCore(40)
	for i := 0; i < 10000; i++ {
		in := trace.Inst{PC: 0x1000, Op: trace.OpLoad, Dst: int8(i % 4),
			Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
		c.Step(&in)
	}
	if ipc := c.IPC(); ipc < 3 {
		t.Fatalf("independent 40-cycle loads IPC %v, want near width", ipc)
	}
}

func TestMispredictPenalty(t *testing.T) {
	run := func(mispred bool) int64 {
		c := newTestCore(5)
		for i := 0; i < 2000; i++ {
			in := alu(0x1000, int8(i%4), trace.NoReg)
			c.Step(&in)
			br := trace.Inst{PC: 0x1010, Op: trace.OpBranch, Dst: trace.NoReg,
				Src1: int8(i % 4), Src2: trace.NoReg, Taken: true, Mispred: mispred}
			c.Step(&br)
		}
		return c.Cycles()
	}
	good, bad := run(false), run(true)
	if bad < good*5 {
		t.Fatalf("mispredicted branches barely slower: %d vs %d", bad, good)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// One very long latency load followed by independent work: the ROB
	// must stall dispatch after ~ROB instructions.
	c := New(DefaultParams())
	first := true
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		if first {
			first = false
			return 100000, cache.HitMem
		}
		return 5, cache.HitL1
	}
	ld := trace.Inst{PC: 0x1000, Op: trace.OpLoad, Dst: 1, Src1: trace.NoReg, Src2: trace.NoReg, Addr: 64}
	c.Step(&ld)
	for i := 0; i < 1000; i++ {
		in := alu(0x2000, 2, trace.NoReg)
		c.Step(&in)
	}
	// The 225th+ instruction cannot dispatch before the load commits.
	if c.Cycles() < 100000 {
		t.Fatalf("ROB did not stall behind long-latency load: cycles=%d", c.Cycles())
	}
}

func TestStoreLoadForwardingDependency(t *testing.T) {
	c := newTestCore(5)
	var lastLoadReady int64
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		lastLoadReady = ready
		return 5, cache.HitL1
	}
	// A slow producer feeds a store; a dependent load from the same
	// address must wait for the store's data.
	div := trace.Inst{PC: 0x1000, Op: trace.OpIDiv, Dst: 1, Src1: 1, Src2: trace.NoReg}
	c.Step(&div)
	st := trace.Inst{PC: 0x1004, Op: trace.OpStore, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg, Addr: 0x8000}
	c.Step(&st)
	ld := trace.Inst{PC: 0x1008, Op: trace.OpLoad, Dst: 2, Src1: trace.NoReg, Src2: trace.NoReg, Addr: 0x8000}
	c.Step(&ld)
	if lastLoadReady < 18 {
		t.Fatalf("load did not wait for store data: ready at %d", lastLoadReady)
	}
}

func TestCodeMissStallsFrontEnd(t *testing.T) {
	run := func(codeLat int64) int64 {
		c := New(DefaultParams())
		c.Ports.Load = fixedLoad(5, cache.HitL1)
		c.Ports.FetchLine = func(line uint64, now int64) int64 { return codeLat }
		for i := 0; i < 4000; i++ {
			// March through code so every 16th instruction crosses a line.
			in := alu(uint64(0x10000+i*4), int8(i%4), trace.NoReg)
			c.Step(&in)
		}
		return c.Cycles()
	}
	fast, slow := run(5), run(200)
	if slow < fast*2 {
		t.Fatalf("code misses did not stall: %d vs %d", slow, fast)
	}
}

func TestFetchHideAbsorbsL2CodeLatency(t *testing.T) {
	p := DefaultParams()
	run := func(codeLat int64) int64 {
		c := New(p)
		c.Ports.Load = fixedLoad(5, cache.HitL1)
		c.Ports.FetchLine = func(line uint64, now int64) int64 { return codeLat }
		for i := 0; i < 4000; i++ {
			in := alu(uint64(0x10000+i*4), int8(i%4), trace.NoReg)
			c.Step(&in)
		}
		return c.Cycles()
	}
	l1 := run(p.L1IHitLat)
	hidden := run(p.L1IHitLat + p.FetchHide)
	if hidden > l1+l1/10 {
		t.Fatalf("fetch queue did not hide small code latency: %d vs %d", hidden, l1)
	}
}

func TestRetireCallbackOrderAndTimes(t *testing.T) {
	c := newTestCore(5)
	var retired []Retired
	c.Ports.OnRetire = func(r *Retired) { retired = append(retired, *r) }
	for i := 0; i < 100; i++ {
		in := alu(0x1000, 1, 1)
		c.Step(&in)
	}
	if len(retired) != 100 {
		t.Fatalf("retired %d, want 100", len(retired))
	}
	for i := 1; i < len(retired); i++ {
		r, p := &retired[i], &retired[i-1]
		if r.Seq != p.Seq+1 {
			t.Fatal("retire order broken")
		}
		if r.C < p.C {
			t.Fatal("commit times not monotonic")
		}
		if r.E < r.D || r.W < r.E || r.C < r.W {
			t.Fatalf("node times out of order: %+v", r)
		}
		if r.Dep[0] != p.Seq {
			t.Fatalf("dependency sequence wrong: %+v", r)
		}
	}
}

func TestDispatchCallback(t *testing.T) {
	c := newTestCore(5)
	n := 0
	c.Ports.OnDispatch = func(in *trace.Inst, d int64, seq int64) {
		if seq != int64(n) {
			t.Fatalf("dispatch seq %d, want %d", seq, n)
		}
		n++
	}
	for i := 0; i < 50; i++ {
		in := alu(0x1000, 1, trace.NoReg)
		c.Step(&in)
	}
	if n != 50 {
		t.Fatalf("dispatch callback fired %d times", n)
	}
}

func TestStoreCommitCallback(t *testing.T) {
	c := newTestCore(5)
	stores := 0
	c.Ports.StoreCommit = func(in *trace.Inst, commit int64) { stores++ }
	st := trace.Inst{PC: 0x1000, Op: trace.OpStore, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg, Addr: 0x40}
	c.Step(&st)
	if stores != 1 {
		t.Fatal("store commit callback not fired")
	}
}

func TestResetClearsState(t *testing.T) {
	c := newTestCore(5)
	for i := 0; i < 100; i++ {
		in := alu(0x1000, 1, 1)
		c.Step(&in)
	}
	c.Reset()
	if c.Insts != 0 || c.Cycles() != 0 {
		t.Fatal("Reset left state")
	}
}

func TestCounters(t *testing.T) {
	c := newTestCore(5)
	ld := trace.Inst{PC: 0x1000, Op: trace.OpLoad, Dst: 1, Src1: trace.NoReg, Src2: trace.NoReg, Addr: 0x40}
	c.Step(&ld)
	br := trace.Inst{PC: 0x1004, Op: trace.OpBranch, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg, Mispred: true}
	c.Step(&br)
	if c.Loads != 1 || c.Branches != 1 || c.Mispredicts != 1 {
		t.Fatalf("counters wrong: loads=%d branches=%d mispredicts=%d", c.Loads, c.Branches, c.Mispredicts)
	}
}
