// Package cpu implements the out-of-order core timing model. It is a
// constrained evaluation of the Fields et al. data-dependency graph
// (the same graph the paper's §II-A analysis and §IV-A hardware
// detector are built on): in-order dispatch bounded by machine width,
// a reorder-buffer depth constraint, data-dependency edges through the
// 16 architectural registers and through memory (store→load), branch
// misprediction re-steer edges, and in-order commit. Load execution
// latency is supplied by the cache hierarchy, so IPC emerges from the
// interaction of the program's critical path with the memory system.
package cpu

import "catch/internal/trace"

// Params configures the core, defaulting to the paper's Skylake-like
// machine: four-wide, 224-entry ROB, 3.2GHz.
type Params struct {
	Width             int   // dispatch and commit width
	ROB               int   // reorder buffer entries
	RenameLat         int64 // allocation → earliest dispatch
	MispredictPenalty int64 // branch execute → front-end re-steer
	L1IHitLat         int64 // code fetch latency hidden by the pipeline
	// FetchHide is the extra code-miss latency the decoupled fetch
	// queue absorbs before the front end actually stalls (an L2 code
	// hit is mostly hidden; LLC and memory code misses stall).
	FetchHide int64
}

// DefaultParams returns the paper's core configuration.
func DefaultParams() Params {
	return Params{
		Width:             4,
		ROB:               224,
		RenameLat:         2,
		MispredictPenalty: 15,
		L1IHitLat:         5,
		FetchHide:         6,
	}
}

// ExecLatency is the base execution latency of each op class; loads are
// overridden by the hierarchy, stores complete locally in one cycle.
var ExecLatency = [trace.NumOps]int64{
	trace.OpALU:    1,
	trace.OpIMul:   3,
	trace.OpIDiv:   18,
	trace.OpFAdd:   3,
	trace.OpFMul:   4,
	trace.OpFDiv:   20,
	trace.OpLoad:   5, // placeholder; replaced by hierarchy latency
	trace.OpStore:  1,
	trace.OpBranch: 1,
	trace.OpNop:    1,
}
