package cpu

// BranchPredictor is consulted by the core for conditional branch
// outcomes. When nil, the trace's own misprediction flags are used
// (the default: workloads encode per-site predictability directly).
// Installing a predictor makes mispredictions an emergent property of
// the actual outcome stream instead (ext-branchpred study).
type BranchPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved direction.
	Update(pc uint64, taken bool)
}

// Gshare is the classic global-history-XOR-PC two-bit-counter
// predictor.
type Gshare struct {
	hist  uint64
	mask  uint64  //catch:nosnap derived from len(table) at construction
	table []uint8 // 2-bit saturating counters, initialized weakly taken

	BPStats
}

// BPStats counts predictor outcomes; embedded so the warmup-boundary
// reset can overwrite it wholesale.
type BPStats struct {
	Predicts    uint64
	Mispredicts uint64
}

// NewGshare builds a gshare predictor with 2^bits counters.
func NewGshare(bits int) *Gshare {
	if bits < 4 {
		bits = 4
	}
	if bits > 24 {
		bits = 24
	}
	n := 1 << bits
	g := &Gshare{mask: uint64(n - 1), table: make([]uint8, n)}
	for i := range g.table {
		g.table[i] = 2 // weakly taken
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	return ((pc >> 2) ^ g.hist) & g.mask
}

// Predict implements BranchPredictor.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update implements BranchPredictor.
func (g *Gshare) Update(pc uint64, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else {
		if g.table[i] > 0 {
			g.table[i]--
		}
	}
	g.hist = (g.hist << 1) | b2u(taken)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// MispredictRate returns the observed misprediction rate.
func (g *Gshare) MispredictRate() float64 {
	if g.Predicts == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Predicts)
}
