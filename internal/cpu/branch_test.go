package cpu

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/trace"
)

func TestGshareLearnsBias(t *testing.T) {
	g := NewGshare(12)
	pc := uint64(0x1000)
	// Always-taken branch: after warmup the predictor must be right.
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Fatal("gshare did not learn an always-taken branch")
	}
}

func TestGshareLearnsAlternation(t *testing.T) {
	g := NewGshare(12)
	pc := uint64(0x2000)
	// T,N,T,N... is captured by global history after warmup.
	taken := true
	for i := 0; i < 2000; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 180 {
		t.Fatalf("gshare got only %d/200 on a strict alternation", correct)
	}
}

func TestGshareRandomIsHard(t *testing.T) {
	g := NewGshare(12)
	rng := trace.NewRNG(5)
	pc := uint64(0x3000)
	wrong := 0
	for i := 0; i < 10000; i++ {
		taken := rng.Bool(0.5)
		if g.Predict(pc) != taken {
			wrong++
		}
		g.Update(pc, taken)
	}
	rate := float64(wrong) / 10000
	if rate < 0.35 || rate > 0.65 {
		t.Fatalf("random stream misprediction rate %.2f implausible", rate)
	}
}

func TestGshareBitsClamped(t *testing.T) {
	small := NewGshare(0)
	big := NewGshare(40)
	if len(small.table) != 1<<4 || len(big.table) != 1<<24 {
		t.Fatalf("bits not clamped: %d, %d", len(small.table), len(big.table))
	}
}

func TestCoreWithPredictorOverridesTraceFlags(t *testing.T) {
	c := New(DefaultParams())
	c.BP = NewGshare(12)
	c.Ports.Load = fixedLoad(5, cache.HitL1)
	// A well-behaved loop branch flagged "mispredicted" in the trace:
	// with a real predictor the flag must be ignored once learned.
	for i := 0; i < 4000; i++ {
		in := trace.Inst{PC: 0x1000, Op: trace.OpBranch, Dst: trace.NoReg,
			Src1: trace.NoReg, Src2: trace.NoReg, Taken: true, Mispred: true}
		c.Step(&in)
	}
	rate := float64(c.Mispredicts) / float64(c.Branches)
	if rate > 0.05 {
		t.Fatalf("predictor did not override trace flags: mispredict rate %.3f", rate)
	}
	g := c.BP.(*Gshare)
	if g.Predicts == 0 {
		t.Fatal("gshare stats not tracked")
	}
}
