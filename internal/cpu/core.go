package cpu

import (
	"catch/internal/cache"
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// Retired describes one committed instruction, in program order, with
// the timing and dependency information the criticality detector
// consumes (§IV-A: the OOO provides data/memory dependencies and bad
// speculation information at retirement).
type Retired struct {
	Inst     trace.Inst
	Seq      int64 // global instruction index
	D        int64 // allocation (dispatch into the OOO)
	E        int64 // dispatch to execution (operands ready)
	W        int64 // write-back (E + execution latency)
	C        int64 // commit
	Lat      int64 // execution latency
	HitLevel cache.HitLevel
	// Producer sequence numbers: Src1, Src2 register producers and the
	// forwarding store (-1 when absent).
	Dep [3]int64
}

// Ports connects the core to the rest of the system. All hooks are
// optional except Load.
type Ports struct {
	// Load returns the load-to-use latency and serving level for a
	// demand load whose address is ready at the given cycle.
	Load func(in *trace.Inst, ready int64) (int64, cache.HitLevel)
	// StoreCommit is invoked when a store commits.
	StoreCommit func(in *trace.Inst, commit int64)
	// FetchLine is consulted when the front end crosses into a new
	// 64B code line; it returns the fetch latency (a latency equal to
	// the L1I hit latency is fully pipelined and causes no stall).
	FetchLine func(lineAddr uint64, now int64) int64
	// OnDispatch fires for each instruction at its dispatch time
	// (drives TACT training and trigger prefetches).
	OnDispatch func(in *trace.Inst, dispatch int64, seq int64)
	// OnRetire fires in order at commit (drives the criticality
	// detector). The pointed-to Retired is scratch reused for the next
	// instruction: consumers must copy anything they keep.
	OnRetire func(r *Retired)
}

const storeSetSize = 512

type storeSlot struct {
	addr uint64
	done int64
	seq  int64
}

// Core is the timing model state.
type Core struct {
	P     Params //catch:nosnap construction-time configuration, not warm state
	Ports Ports  //catch:nosnap callback wiring installed at construction

	// BP, when non-nil, replaces the trace's misprediction flags with
	// an actual branch predictor's outcomes.
	BP BranchPredictor

	// Trace, when attached and enabled, receives sampled per-
	// instruction pipeline events (D→C spans, mispredicts, code
	// stalls). Nil or disabled costs one branch per instruction.
	Trace    *telemetry.Tracer //catch:nosnap observability wiring, not simulated state
	TraceTID uint8             //catch:nosnap observability wiring, not simulated state

	seq        int64
	dRing      []int64 // D of the last Width instructions
	cRingROB   []int64 // C of the last ROB instructions
	cRingW     []int64 // C of the last Width instructions
	wIdx       int     // rolling index into the Width rings (seq % Width)
	rIdx       int     // rolling index into the ROB ring (seq % ROB)
	lastD      int64
	lastC      int64
	fetchReady int64
	redirectAt int64
	curLine    uint64

	regReady [trace.NumArchRegs]int64
	regSeq   [trace.NumArchRegs]int64

	stores [storeSetSize]storeSlot

	// retired is the per-instruction scratch handed to Ports.OnRetire.
	// Reusing it keeps Step allocation-free: a stack-local struct would
	// escape through the hook and cost one heap allocation per
	// simulated instruction.
	retired Retired //catch:nosnap per-instruction scratch, dead between instructions

	CoreStats
}

// CoreStats counts retired-stream events. It is an embedded struct so
// the warmup-boundary reset can overwrite it wholesale and
// reset-coverage can prove no counter is forgotten.
type CoreStats struct {
	Insts       int64
	Loads       int64
	Branches    int64
	Mispredicts int64
	CodeStalls  int64
}

// New builds a core with the given parameters.
func New(p Params) *Core {
	c := &Core{P: p}
	c.Reset()
	return c
}

// Reset clears all timing state.
func (c *Core) Reset() {
	c.seq = 0
	c.dRing = make([]int64, c.P.Width)
	c.cRingROB = make([]int64, c.P.ROB)
	c.cRingW = make([]int64, c.P.Width)
	c.wIdx, c.rIdx = 0, 0
	c.lastD, c.lastC = 0, 0
	c.fetchReady, c.redirectAt = 0, 0
	c.curLine = ^uint64(0)
	for i := range c.regReady {
		c.regReady[i] = 0
		c.regSeq[i] = -1
	}
	for i := range c.stores {
		c.stores[i] = storeSlot{seq: -1}
	}
	c.CoreStats = CoreStats{}
}

// Cycles returns the cycle of the last commit (total elapsed cycles).
func (c *Core) Cycles() int64 { return c.lastC }

// IPC returns retired instructions per cycle so far.
func (c *Core) IPC() float64 {
	if c.lastC == 0 {
		return 0
	}
	return float64(c.Insts) / float64(c.lastC)
}

// Step advances the model by one instruction. This is the RunST
// inner loop: one call per simulated instruction.
//
//catch:hotpath
func (c *Core) Step(in *trace.Inst) {
	seq := c.seq
	c.seq++
	c.Insts++

	// ----- Front end: code-line crossing.
	line := in.PC &^ 63
	if line != c.curLine {
		c.curLine = line
		t := c.lastD
		if t < c.redirectAt {
			t = c.redirectAt
		}
		if c.Ports.FetchLine != nil {
			lat := c.Ports.FetchLine(line, t)
			if stall := lat - c.P.L1IHitLat - c.P.FetchHide; stall > 0 {
				c.CodeStalls++
				if c.Trace.Enabled() {
					c.Trace.Emit(telemetry.Event{Cat: telemetry.CatPipeline, Type: telemetry.EvCodeStall,
						TID: c.TraceTID, TS: t, Dur: stall, A1: line})
				}
				if fr := t + c.P.L1IHitLat + stall; fr > c.fetchReady {
					c.fetchReady = fr
				}
			}
		}
	}

	// ----- D node: in-order allocation. The ring cursors advance by one
	// each instruction (cheaper than a modulo per instruction).
	wIdx, rIdx := c.wIdx, c.rIdx
	if c.wIdx++; c.wIdx == c.P.Width {
		c.wIdx = 0
	}
	if c.rIdx++; c.rIdx == c.P.ROB {
		c.rIdx = 0
	}
	D := c.dRing[wIdx] + 1 // D[i-W] + 1 cycle (width constraint)
	if D < c.lastD {
		D = c.lastD // in-order allocation
	}
	if D < c.fetchReady {
		D = c.fetchReady
	}
	if D < c.redirectAt {
		D = c.redirectAt // E-D edge from a mispredicted branch
	}
	if seq >= int64(c.P.ROB) && D < c.cRingROB[rIdx] {
		D = c.cRingROB[rIdx] // C-D edge: ROB depth
	}

	if c.Ports.OnDispatch != nil {
		c.Ports.OnDispatch(in, D, seq)
	}

	// ----- E node: operands ready.
	E := D + c.P.RenameLat
	var dep [3]int64
	dep[0], dep[1], dep[2] = -1, -1, -1
	if s := in.Src1; s >= 0 {
		if t := c.regReady[s]; t > E {
			E = t
		}
		dep[0] = c.regSeq[s]
	}
	if s := in.Src2; s >= 0 {
		if t := c.regReady[s]; t > E {
			E = t
		}
		dep[1] = c.regSeq[s]
	}

	var lat int64
	lvl := cache.HitNone
	switch in.Op {
	case trace.OpLoad:
		c.Loads++
		// Memory dependency: forward from an in-flight store.
		slot := &c.stores[(in.Addr>>3)%storeSetSize]
		if slot.seq >= 0 && slot.addr == in.Addr {
			if slot.done > E {
				E = slot.done
			}
			dep[2] = slot.seq
		}
		lat, lvl = c.Ports.Load(in, E)
	case trace.OpStore:
		lat = ExecLatency[trace.OpStore]
	default:
		lat = ExecLatency[in.Op]
	}
	W := E + lat

	// ----- C node: in-order commit.
	C := W
	if C < c.lastC {
		C = c.lastC
	}
	if cw := c.cRingW[wIdx] + 1; C < cw {
		C = cw
	}

	// ----- Side effects.
	if in.Op == trace.OpBranch {
		c.Branches++
		if c.BP != nil {
			// Emergent misprediction: compare the prediction with the
			// trace's actual outcome.
			in.Mispred = c.BP.Predict(in.PC) != in.Taken
			c.BP.Update(in.PC, in.Taken)
			if g, ok := c.BP.(*Gshare); ok {
				g.Predicts++
				if in.Mispred {
					g.Mispredicts++
				}
			}
		}
		if in.Mispred {
			c.Mispredicts++
			if ra := W + c.P.MispredictPenalty; ra > c.redirectAt {
				c.redirectAt = ra
			}
			if c.Trace.Enabled() {
				c.Trace.Emit(telemetry.Event{Cat: telemetry.CatPipeline, Type: telemetry.EvMispredict,
					TID: c.TraceTID, TS: W, A1: in.PC})
			}
		}
	}
	if in.Op == trace.OpStore {
		c.stores[(in.Addr>>3)%storeSetSize] = storeSlot{addr: in.Addr, done: W, seq: seq}
		if c.Ports.StoreCommit != nil {
			c.Ports.StoreCommit(in, C)
		}
	}
	if d := in.Dst; d >= 0 {
		c.regReady[d] = W
		c.regSeq[d] = seq
	}

	c.dRing[wIdx] = D
	c.cRingROB[rIdx] = C
	c.cRingW[wIdx] = C
	c.lastD = D
	c.lastC = C

	if t := c.Trace; t.Enabled() && t.Sampled() {
		t.Emit(telemetry.Event{Cat: telemetry.CatPipeline, Type: telemetry.EvInstr,
			TID: c.TraceTID, TS: D, Dur: C - D, A1: in.PC, A2: uint64(seq),
			A3: telemetry.PackInstr(uint8(in.Op), uint8(lvl), E-D, W-E)})
	}

	if c.Ports.OnRetire != nil {
		r := &c.retired
		r.Inst, r.Seq = *in, seq
		r.D, r.E, r.W, r.C = D, E, W, C
		r.Lat, r.HitLevel, r.Dep = lat, lvl, dep
		c.Ports.OnRetire(r)
	}
}
