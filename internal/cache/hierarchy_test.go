package cache

import (
	"testing"

	"catch/internal/interconnect"
	"catch/internal/memory"
)

// newTestHier builds a small hierarchy; withL2 selects three-level.
func newTestHier(withL2, inclusive bool) *Hierarchy {
	h := &Hierarchy{
		L1I:       New(Config{Name: "L1I", Size: 4096, Ways: 4, HitLat: 5}),
		L1D:       New(Config{Name: "L1D", Size: 4096, Ways: 4, HitLat: 5}),
		LLC:       New(Config{Name: "LLC", Size: 64 * 1024, Ways: 8, HitLat: 40}),
		Mem:       memory.New(memory.DDR4_2400()),
		Ring:      interconnect.New(4, 2),
		Inclusive: inclusive,
	}
	if withL2 {
		h.L2 = New(Config{Name: "L2", Size: 16 * 1024, Ways: 8, HitLat: 15})
	}
	h.BackInval = func(addr uint64, now int64) { h.InvalidatePrivate(addr, now) }
	return h
}

func TestLoadMissGoesToMemory(t *testing.T) {
	h := newTestHier(true, false)
	lat, lvl := h.Load(0x10000, 0)
	if lvl != HitMem {
		t.Fatalf("cold load served from %v", lvl)
	}
	if lat < 40 {
		t.Fatalf("memory latency %d implausibly low", lat)
	}
	if h.Stats.LoadMem != 1 {
		t.Fatalf("stats: %+v", h.Stats)
	}
}

func TestLoadFillsAllLevels(t *testing.T) {
	h := newTestHier(true, false)
	h.Load(0x10000, 0)
	// Second access at a much later time must hit L1.
	lat, lvl := h.Load(0x10000, 10000)
	if lvl != HitL1 || lat != 5 {
		t.Fatalf("second load: lat=%d lvl=%v", lat, lvl)
	}
	// The L2 holds it too (fill on miss path).
	if h.L2.Probe(0x10000) == nil {
		t.Fatal("L2 not filled on memory load")
	}
}

func TestExclusiveLLCHoldsOnlyVictims(t *testing.T) {
	h := newTestHier(true, false)
	h.Load(0x10000, 0)
	// Exclusive: a memory fill goes to L2+L1, not the LLC.
	if h.LLC.Probe(0x10000) != nil {
		t.Fatal("exclusive LLC allocated on memory fill")
	}
	// Evict it from L2 by filling conflicting lines; victims land in LLC.
	set := uint64(0x10000) >> 6 % uint64(h.L2.Sets)
	for i := 1; i <= h.L2.Cfg.Ways; i++ {
		conflict := (set + uint64(i*h.L2.Sets)) << 6
		h.Load(conflict, int64(i*1000))
	}
	if h.LLC.Probe(0x10000) == nil {
		t.Fatal("L2 victim did not land in exclusive LLC")
	}
}

func TestExclusiveLLCHitMovesLineUp(t *testing.T) {
	h := newTestHier(true, false)
	// Plant a line in the LLC directly.
	h.LLC.Fill(0x20000, 0, 0, false, PfNone)
	_, lvl := h.Load(0x20000, 100)
	if lvl != HitLLC {
		t.Fatalf("load served from %v, want LLC", lvl)
	}
	if h.LLC.Probe(0x20000) != nil {
		t.Fatal("exclusive LLC kept the line after a hit")
	}
	if h.L2.Probe(0x20000) == nil {
		t.Fatal("LLC hit did not fill L2")
	}
}

func TestInclusiveLLCKeepsLine(t *testing.T) {
	h := newTestHier(true, true)
	h.Load(0x30000, 0)
	if h.LLC.Probe(0x30000) == nil {
		t.Fatal("inclusive LLC not filled on memory load")
	}
	h.Load(0x30000, 10000)
	if h.LLC.Probe(0x30000) == nil {
		t.Fatal("inclusive LLC dropped line on hit")
	}
}

func TestInclusiveBackInvalidation(t *testing.T) {
	h := newTestHier(true, true)
	h.Load(0x40000, 0)
	if h.L1D.Probe(0x40000) == nil {
		t.Fatal("setup: line not in L1")
	}
	// Force the LLC set to evict 0x40000 by filling conflicting lines.
	sets := uint64(h.LLC.Sets)
	for i := 1; i <= h.LLC.Cfg.Ways+1; i++ {
		conflict := uint64(0x40000) + uint64(i)*sets*64
		h.LLC.Fill(conflict, 0, 0, false, PfNone)
		if h.LLC.Probe(0x40000) == nil {
			break
		}
	}
	// The private copies must be gone (inclusion).
	// Note: fillLLC drives BackInval only through Hierarchy fills; here
	// we emulate by calling the hook for the evicted line.
	if h.LLC.Probe(0x40000) == nil {
		h.BackInval(0x40000, 0)
		if h.L1D.Probe(0x40000) != nil {
			t.Fatal("back-invalidation left L1 copy")
		}
	}
}

func TestInclusiveEvictionViaDemandStream(t *testing.T) {
	h := newTestHier(true, true)
	h.Load(0x50000, 0)
	// Stream enough distinct lines through the same LLC set to evict it.
	sets := uint64(h.LLC.Sets)
	for i := 1; i <= h.LLC.Cfg.Ways+2; i++ {
		h.Load(uint64(0x50000)+uint64(i)*sets*64, int64(i)*500)
	}
	if h.LLC.Probe(0x50000) == nil && h.L1D.Probe(0x50000) != nil {
		t.Fatal("demand-driven LLC eviction did not back-invalidate L1")
	}
}

func TestTwoLevelExclusiveSpillsCleanVictims(t *testing.T) {
	h := newTestHier(false, false)
	h.Load(0x60000, 0)
	if h.LLC.Probe(0x60000) != nil {
		t.Fatal("two-level exclusive: LLC allocated on fill")
	}
	// Evict from L1 by conflicting lines; clean victim must go to LLC.
	sets := uint64(h.L1D.Sets)
	for i := 1; i <= h.L1D.Cfg.Ways+1; i++ {
		h.Load(uint64(0x60000)+uint64(i)*sets*64, int64(i)*500)
	}
	if h.L1D.Probe(0x60000) == nil && h.LLC.Probe(0x60000) == nil {
		t.Fatal("clean L1 victim lost from the on-die hierarchy")
	}
}

func TestStoreMarksDirtyAndWritesBack(t *testing.T) {
	h := newTestHier(true, false)
	h.Store(0x70000, 0)
	l := h.L1D.Probe(0x70000)
	if l == nil || !l.Dirty {
		t.Fatal("store did not allocate dirty line in L1")
	}
	if h.Stats.StoreMiss != 1 {
		t.Fatalf("store miss not counted: %+v", h.Stats)
	}
	h.Store(0x70000, 100)
	if h.Stats.StoreL1Hit != 1 {
		t.Fatalf("store hit not counted: %+v", h.Stats)
	}
}

func TestInFlightFillLatency(t *testing.T) {
	h := newTestHier(true, false)
	h.L2.Fill(0x80000, 0, 0, false, PfNone)
	// Demand at t=0 makes an L2 hit filling L1 at t=15.
	lat1, lvl := h.Load(0x80000, 0)
	if lvl != HitL2 || lat1 != 15 {
		t.Fatalf("L2 hit lat=%d lvl=%v", lat1, lvl)
	}
	// A second access at t=5 must wait for the in-flight fill (~t=15),
	// not get a full 5-cycle L1 hit.
	lat2, lvl2 := h.Load(0x80000, 5)
	if lvl2 != HitL1 {
		t.Fatalf("second access lvl=%v", lvl2)
	}
	if lat2 <= 5 || lat2 > 15 {
		t.Fatalf("in-flight hit latency = %d, want in (5,15]", lat2)
	}
}

func TestPrefetchDataDropsOnMiss(t *testing.T) {
	h := newTestHier(true, false)
	lvl := h.PrefetchData(0x90000, 0)
	if lvl != HitMem {
		t.Fatalf("prefetch of absent line reported %v", lvl)
	}
	if h.L1D.Probe(0x90000) != nil {
		t.Fatal("TACT prefetch fetched from memory")
	}
	if h.Stats.TactDropMiss != 1 {
		t.Fatalf("drop not counted: %+v", h.Stats)
	}
}

func TestPrefetchDataFromL2(t *testing.T) {
	h := newTestHier(true, false)
	h.L2.Fill(0xA0000, 0, 0, false, PfNone)
	lvl := h.PrefetchData(0xA0000, 100)
	if lvl != HitL2 {
		t.Fatalf("prefetch served from %v", lvl)
	}
	l := h.L1D.Probe(0xA0000)
	if l == nil || l.Prefetch != PfTACT {
		t.Fatal("prefetch did not install TACT-marked line in L1")
	}
	if l.FillTime != 115 {
		t.Fatalf("prefetch fill time = %d, want 115", l.FillTime)
	}
}

func TestPrefetchTimelinessRecorded(t *testing.T) {
	h := newTestHier(true, false)
	h.L2.Fill(0xB0000, 0, 0, false, PfNone)
	h.PrefetchData(0xB0000, 0) // fills L1 at t=15
	// Demand long after: full latency saved (>80% bucket).
	h.Load(0xB0000, 1000)
	hist := h.Stats.TactTimeliness
	if hist == nil || hist.Total != 1 {
		t.Fatal("timeliness not recorded")
	}
	if hist.Counts[2] != 1 {
		t.Fatalf(">80%% bucket empty: %+v", hist.Counts)
	}
	if h.Stats.TactUsed != 1 {
		t.Fatal("TactUsed not counted")
	}
}

func TestPrefetchTimelinessLateArrival(t *testing.T) {
	h := newTestHier(true, false)
	h.LLC.Fill(0xC0000, 0, 0, false, PfNone)
	h.PrefetchData(0xC0000, 0) // arrives at t=40
	// Demand immediately after issue waits the whole latency: ≤10% saved.
	h.Load(0xC0000, 0)
	hist := h.Stats.TactTimeliness
	if hist == nil || hist.Counts[0] != 1 {
		t.Fatalf("late prefetch not in <10%% bucket: %+v", hist)
	}
}

func TestOraclePromote(t *testing.T) {
	h := newTestHier(true, false)
	h.L2.Fill(0xD0000, 0, 0, false, PfNone)
	if !h.OraclePromoteData(0xD0000, 50) {
		t.Fatal("oracle promote failed on L2-resident line")
	}
	lat, lvl := h.Load(0xD0000, 50)
	if lvl != HitL1 || lat != 5 {
		t.Fatalf("post-promote load: lat=%d lvl=%v", lat, lvl)
	}
	if h.OraclePromoteData(0xD0000, 60) {
		t.Fatal("promote of L1-resident line reported success")
	}
	if h.OraclePromoteData(0xFF0000, 60) {
		t.Fatal("promote of absent line reported success")
	}
}

func TestMSHRLimitsConcurrency(t *testing.T) {
	h := newTestHier(true, false)
	h.SetMSHRs(2)
	// Plant lines in the LLC so misses take 40 cycles each.
	for i := 0; i < 6; i++ {
		h.LLC.Fill(uint64(0x100000+i*64), 0, 0, false, PfNone)
	}
	var last int64
	for i := 0; i < 6; i++ {
		lat, _ := h.Load(uint64(0x100000+i*64), 0)
		last = lat
	}
	// With 2 MSHRs, the 6th miss waits for two full generations.
	if last < 80 {
		t.Fatalf("MSHR backpressure missing: 6th miss latency %d", last)
	}
	if h.Stats.MSHRStallCycles == 0 {
		t.Fatal("MSHR stall cycles not recorded")
	}
}

func TestMSHRDisabled(t *testing.T) {
	h := newTestHier(true, false)
	h.SetMSHRs(0)
	for i := 0; i < 6; i++ {
		h.LLC.Fill(uint64(0x100000+i*64), 0, 0, false, PfNone)
	}
	for i := 0; i < 6; i++ {
		lat, _ := h.Load(uint64(0x100000+i*64), 0)
		if lat != 40 {
			t.Fatalf("unlimited MSHRs: latency %d, want 40", lat)
		}
	}
}

func TestFetchUsesL1I(t *testing.T) {
	h := newTestHier(true, false)
	h.Fetch(0x200000, 0)
	if h.L1I.Probe(0x200000) == nil {
		t.Fatal("fetch did not fill L1I")
	}
	if h.L1D.Probe(0x200000) != nil {
		t.Fatal("fetch polluted L1D")
	}
	_, lvl := h.Fetch(0x200000, 10000)
	if lvl != HitL1 {
		t.Fatalf("refetch served from %v", lvl)
	}
}

func TestPrewarmLine(t *testing.T) {
	h := newTestHier(true, false)
	h.PrewarmLine(0x300000)
	if h.LLC.Probe(0x300000) == nil {
		t.Fatal("prewarm did not fill LLC")
	}
	_, lvl := h.Load(0x300000, 0)
	if lvl != HitLLC {
		t.Fatalf("prewarmed line served from %v", lvl)
	}
	// Prewarm of a present line is a no-op.
	h.PrewarmLine(0x300000 + 32) // same line
}

func TestProbeLevel(t *testing.T) {
	h := newTestHier(true, false)
	if h.ProbeLevel(0x400000) != HitMem {
		t.Fatal("absent line not reported at memory")
	}
	h.LLC.Fill(0x400000, 0, 0, false, PfNone)
	if h.ProbeLevel(0x400000) != HitLLC {
		t.Fatal("LLC residency not reported")
	}
	h.L2.Fill(0x400040, 0, 0, false, PfNone)
	if h.ProbeLevel(0x400040) != HitL2 {
		t.Fatal("L2 residency not reported")
	}
	h.L1D.Fill(0x400080, 0, 0, false, PfNone)
	if h.ProbeLevel(0x400080) != HitL1 {
		t.Fatal("L1 residency not reported")
	}
}

func TestRingTrafficCounted(t *testing.T) {
	h := newTestHier(true, false)
	before := h.Ring.TotalMessages()
	h.Load(0x500000, 0) // miss to memory -> LLC round trip on the ring
	if h.Ring.TotalMessages() == before {
		t.Fatal("LLC access generated no ring traffic")
	}
}

func TestHitLevelString(t *testing.T) {
	for lvl, want := range map[HitLevel]string{
		HitL1: "L1", HitL2: "L2", HitLLC: "LLC", HitMem: "MEM", HitNone: "none",
	} {
		if lvl.String() != want {
			t.Errorf("HitLevel(%d).String() = %q", lvl, lvl.String())
		}
	}
}
