package cache

import (
	"testing"
	"testing/quick"
)

func newTestCache(size uint64, ways int) *Cache {
	return New(Config{Name: "t", Size: size, Ways: ways, HitLat: 5})
}

func TestCacheGeometry(t *testing.T) {
	c := newTestCache(32*1024, 8)
	if c.Sets != 64 {
		t.Fatalf("32KB 8-way: sets = %d, want 64", c.Sets)
	}
	c = newTestCache(5632*1024, 11)
	if c.Sets != 8192 {
		t.Fatalf("5.5MB 11-way: sets = %d, want 8192", c.Sets)
	}
}

func TestCacheMissThenHit(t *testing.T) {
	c := newTestCache(4096, 4)
	if _, hit := c.Lookup(0x1000); hit {
		t.Fatal("cold cache hit")
	}
	c.Fill(0x1000, 10, 0, false, PfNone)
	l, hit := c.Lookup(0x1000)
	if !hit {
		t.Fatal("fill then lookup missed")
	}
	if l.FillTime != 10 {
		t.Fatalf("fill time = %d", l.FillTime)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats wrong: %+v", c.Stats)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0x1000, 0, 0, false, PfNone)
	if _, hit := c.Lookup(0x1020); !hit {
		t.Fatal("same-line offset missed")
	}
	if _, hit := c.Lookup(0x1040); hit {
		t.Fatal("next line hit spuriously")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newTestCache(4*64, 4)                   // one set, 4 ways
	addrs := []uint64{0, 64 * 1, 64 * 2, 64 * 3} // all map to set 0... need same set
	// With 1 set every line maps to set 0.
	for _, a := range addrs {
		c.Fill(a, 0, 0, false, PfNone)
	}
	// Touch addr 0 to make it MRU; fill a 5th line -> victim must be 64.
	c.Lookup(0)
	v := c.Fill(64*9, 0, 0, false, PfNone)
	if !v.Valid || v.Addr != 64 {
		t.Fatalf("LRU victim = %+v, want addr 64", v)
	}
	if _, hit := c.Lookup(0); !hit {
		t.Fatal("MRU line evicted")
	}
}

func TestCacheDirtyVictim(t *testing.T) {
	c := newTestCache(64, 1) // one line
	c.Fill(0, 0, 0, true, PfNone)
	v := c.Fill(64, 0, 0, false, PfNone)
	if !v.Valid || !v.Dirty || v.Addr != 0 {
		t.Fatalf("dirty victim wrong: %+v", v)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Fatalf("dirty eviction not counted: %+v", c.Stats)
	}
}

func TestCacheRefillMergesDirty(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0x1000, 0, 0, true, PfNone)
	v := c.Fill(0x1000, 5, 0, false, PfNone)
	if v.Valid {
		t.Fatalf("refill of present line produced victim %+v", v)
	}
	l := c.Probe(0x1000)
	if l == nil || !l.Dirty {
		t.Fatal("refill dropped dirty bit")
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := newTestCache(4096, 4)
	if c.MarkDirty(0x2000) {
		t.Fatal("MarkDirty hit on absent line")
	}
	c.Fill(0x2000, 0, 0, false, PfNone)
	if !c.MarkDirty(0x2000) {
		t.Fatal("MarkDirty missed present line")
	}
	if !c.Probe(0x2000).Dirty {
		t.Fatal("dirty bit not set")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0x3000, 0, 0, true, PfNone)
	present, dirty := c.Invalidate(0x3000)
	if !present || !dirty {
		t.Fatalf("invalidate returned %v %v", present, dirty)
	}
	if _, hit := c.Lookup(0x3000); hit {
		t.Fatal("line survived invalidation")
	}
	if p, _ := c.Invalidate(0x3000); p {
		t.Fatal("double invalidate reported present")
	}
}

func TestCacheProbeNoSideEffects(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0x1000, 0, 0, false, PfNone)
	before := c.Stats
	c.Probe(0x1000)
	c.Probe(0x9999000)
	if c.Stats != before {
		t.Fatal("Probe changed statistics")
	}
}

func TestCachePrefetchAccounting(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0x1000, 0, 40, false, PfTACT)
	if c.Stats.PrefetchFills != 1 {
		t.Fatal("prefetch fill not counted")
	}
	l, _ := c.Lookup(0x1000)
	c.NoteDemandUse(l)
	if c.Stats.PrefetchUsed != 1 || l.Prefetch != PfNone {
		t.Fatal("demand use of prefetched line not credited")
	}
	c.NoteDemandUse(l)
	if c.Stats.PrefetchUsed != 1 {
		t.Fatal("double-credited prefetch use")
	}
}

func TestCacheUnusedPrefetchEvictionCounted(t *testing.T) {
	c := newTestCache(64, 1)
	c.Fill(0, 0, 40, false, PfTACT)
	c.Fill(64, 0, 0, false, PfNone)
	if c.Stats.PrefetchEvictedUnused != 1 {
		t.Fatalf("unused prefetch eviction not counted: %+v", c.Stats)
	}
}

func TestCacheHitRate(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Fill(0, 0, 0, false, PfNone)
	c.Lookup(0)
	c.Lookup(64)
	if hr := c.HitRate(); hr != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", hr)
	}
}

// Property: a filled line is always findable until evicted, and fills
// never exceed capacity.
func TestCacheOccupancyProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := newTestCache(8192, 4)
		resident := make(map[uint64]bool)
		for _, a32 := range addrs {
			a := uint64(a32) &^ 63
			v := c.Fill(a, 0, 0, false, PfNone)
			resident[a] = true
			if v.Valid {
				delete(resident, v.Addr)
			}
		}
		if len(resident) > 8192/64 {
			return false
		}
		for a := range resident {
			if c.Probe(a) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	c := newTestCache(4096, 4)
	c.Lookup(0)
	c.ResetStats()
	if c.Stats != (Stats{}) {
		t.Fatal("ResetStats left counters")
	}
}
