package cache

// Policy abstracts the replacement policy of a cache set. Lines carry a
// small per-line metadata byte (Line.Meta) that belongs to the policy.
//
// LRU is the default everywhere (the paper's configuration); RRIP-class
// policies [Jaleel et al., ISCA'10 — the paper's reference 18] are
// provided for the ext-replacement study, since the paper positions
// CATCH as orthogonal to LLC replacement research.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// OnHit updates state when way is hit.
	OnHit(set []Line, way int)
	// OnFill updates state when way is (re)filled.
	OnFill(set []Line, way int, setIdx int)
	// Victim picks the way to replace (invalid ways are chosen by the
	// cache before the policy is consulted).
	Victim(set []Line, setIdx int) int
}

// rrpv constants for 2-bit RRIP.
const (
	rrpvMax  = 3 // distant re-reference
	rrpvLong = 2 // long re-reference (SRRIP insertion)
	rrpvNear = 0 // near-immediate (promotion on hit)
)

// SRRIP is static RRIP: insert at "long", promote to "near" on hit,
// evict the first line predicted "distant", aging the set as needed.
type SRRIP struct{}

// Name implements Policy.
func (SRRIP) Name() string { return "srrip" }

// OnHit implements Policy.
func (SRRIP) OnHit(set []Line, way int) { set[way].Meta = rrpvNear }

// OnFill implements Policy.
func (SRRIP) OnFill(set []Line, way int, _ int) { set[way].Meta = rrpvLong }

// Victim implements Policy.
func (SRRIP) Victim(set []Line, _ int) int {
	for {
		for i := range set {
			if set[i].Meta >= rrpvMax {
				return i
			}
		}
		for i := range set {
			set[i].Meta++
		}
	}
}

// BRRIP is bimodal RRIP: inserts at "distant" most of the time and at
// "long" with low probability, protecting the cache from thrashing
// access patterns.
type BRRIP struct {
	ctr uint32
}

// Name implements Policy.
func (*BRRIP) Name() string { return "brrip" }

// OnHit implements Policy.
func (*BRRIP) OnHit(set []Line, way int) { set[way].Meta = rrpvNear }

// OnFill implements Policy.
func (b *BRRIP) OnFill(set []Line, way int, _ int) {
	b.ctr++
	if b.ctr%32 == 0 {
		set[way].Meta = rrpvLong
	} else {
		set[way].Meta = rrpvMax
	}
}

// Victim implements Policy.
func (*BRRIP) Victim(set []Line, _ int) int { return SRRIP{}.Victim(set, 0) }

// DRRIP set-duels SRRIP against BRRIP: a few leader sets are dedicated
// to each policy; misses in leader sets steer a saturating selector
// that the follower sets obey.
type DRRIP struct {
	sets    int //catch:nosnap construction-time geometry
	psel    int // >=0: SRRIP, <0: BRRIP
	pselMax int //catch:nosnap saturation bound fixed at construction
	brrip   BRRIP
}

// NewDRRIP builds a DRRIP policy for a cache with the given set count.
func NewDRRIP(sets int) *DRRIP {
	return &DRRIP{sets: sets, pselMax: 512}
}

// leader returns +1 for SRRIP leader sets, -1 for BRRIP leaders, 0 for
// followers (every 32nd set alternates).
func (d *DRRIP) leader(setIdx int) int {
	if setIdx%32 == 0 {
		return +1
	}
	if setIdx%32 == 16 {
		return -1
	}
	return 0
}

// Name implements Policy.
func (d *DRRIP) Name() string { return "drrip" }

// OnHit implements Policy.
func (d *DRRIP) OnHit(set []Line, way int) { set[way].Meta = rrpvNear }

// OnFill implements Policy. Fills into leader sets update the duel.
func (d *DRRIP) OnFill(set []Line, way int, setIdx int) {
	switch d.leader(setIdx) {
	case +1: // SRRIP leader: a fill here means an SRRIP-set miss
		if d.psel > -d.pselMax {
			d.psel--
		}
		SRRIP{}.OnFill(set, way, setIdx)
	case -1:
		if d.psel < d.pselMax {
			d.psel++
		}
		d.brrip.OnFill(set, way, setIdx)
	default:
		if d.psel >= 0 {
			SRRIP{}.OnFill(set, way, setIdx)
		} else {
			d.brrip.OnFill(set, way, setIdx)
		}
	}
}

// Victim implements Policy.
func (d *DRRIP) Victim(set []Line, _ int) int { return SRRIP{}.Victim(set, 0) }

// PolicyByName constructs a replacement policy ("lru" returns nil: the
// cache's built-in LRU).
func PolicyByName(name string, sets int) Policy {
	switch name {
	case "", "lru":
		return nil
	case "srrip":
		return SRRIP{}
	case "brrip":
		return &BRRIP{}
	case "drrip":
		return NewDRRIP(sets)
	}
	return nil
}
