package cache

import "testing"

// TestLookupFillAllocFree guards the cache hot path: once a cache is
// built, Lookup (hit and miss), Fill (with and without eviction),
// Probe and MarkDirty perform zero heap allocations.
func TestLookupFillAllocFree(t *testing.T) {
	c := New(Config{Name: "L1D", Size: 32 << 10, Ways: 8, HitLat: 5})
	for a := uint64(0); a < 64<<10; a += 64 {
		c.Fill(a, 0, 5, false, PfNone)
	}
	addr := uint64(0)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Lookup(addr)                              // one hit or miss
		c.Lookup(addr + (1 << 30))                  // guaranteed miss
		c.Fill(addr+(2<<20), 0, 5, false, PfStride) // eviction path
		c.Probe(addr)
		c.MarkDirty(addr)
		addr += 64
	}); allocs != 0 {
		t.Errorf("cache hot path: %v allocs per op batch, want 0", allocs)
	}
}

// TestLookupAllocFreeNonPow2Sets covers the modulo set-index fallback
// (e.g. the 6.5MB iso-area LLC), which must be just as allocation-free.
func TestLookupAllocFreeNonPow2Sets(t *testing.T) {
	c := New(Config{Name: "LLC", Size: 6656 * 1024, Ways: 16, HitLat: 44})
	if c.Sets&(c.Sets-1) == 0 {
		t.Fatalf("test wants a non-power-of-two set count, got %d", c.Sets)
	}
	addr := uint64(0)
	if allocs := testing.AllocsPerRun(100, func() {
		c.Fill(addr, 0, 44, false, PfNone)
		c.Lookup(addr)
		addr += 64
	}); allocs != 0 {
		t.Errorf("non-pow2 cache hot path: %v allocs, want 0", allocs)
	}
}
