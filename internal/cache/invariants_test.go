package cache

import (
	"testing"

	"catch/internal/trace"
)

// driveRandom pushes a pseudo-random mix of loads and stores through a
// hierarchy.
func driveRandom(h *Hierarchy, n int, seed uint64, span uint64) {
	rng := trace.NewRNG(seed)
	now := int64(0)
	for i := 0; i < n; i++ {
		addr := (rng.Uint64() % span) &^ 63
		now += int64(rng.Intn(20))
		if rng.Bool(0.25) {
			h.Store(addr, now)
		} else {
			h.Load(addr, now)
		}
	}
}

// forEachValid visits every valid line of a cache.
func forEachValid(c *Cache, f func(addrLine uint64, l *Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			f(c.lines[i].Tag<<6, &c.lines[i])
		}
	}
}

func TestInclusionInvariant(t *testing.T) {
	h := newTestHier(true, true)
	driveRandom(h, 20000, 42, 1<<20)
	// Inclusive LLC: every line in a private cache is also in the LLC.
	violations := 0
	for _, c := range []*Cache{h.L1D, h.L1I, h.L2} {
		forEachValid(c, func(addr uint64, l *Line) {
			if h.LLC.Probe(addr) == nil {
				violations++
			}
		})
	}
	if violations > 0 {
		t.Fatalf("%d private lines missing from the inclusive LLC", violations)
	}
}

func TestExclusionInvariant(t *testing.T) {
	h := newTestHier(true, false)
	driveRandom(h, 20000, 43, 1<<20)
	// Exclusive LLC: no line is simultaneously in the L2 and the LLC.
	violations := 0
	forEachValid(h.L2, func(addr uint64, l *Line) {
		if h.LLC.Probe(addr) != nil {
			violations++
		}
	})
	if violations > 0 {
		t.Fatalf("%d lines duplicated in L2 and exclusive LLC", violations)
	}
}

func TestNoDirtyDataLost(t *testing.T) {
	// Write to a set of addresses, then stream over a large span to
	// force evictions everywhere; re-reading each written address must
	// not be served at zero latency from nowhere (state machine sanity:
	// reads always succeed with positive latency and come from a level).
	for _, inclusive := range []bool{true, false} {
		h := newTestHier(true, inclusive)
		var writes []uint64
		for i := 0; i < 64; i++ {
			a := uint64(0x7000000 + i*64)
			h.Store(a, int64(i))
			writes = append(writes, a)
		}
		driveRandom(h, 30000, 44, 1<<21)
		for _, a := range writes {
			lat, lvl := h.Load(a, 1<<40)
			if lat <= 0 || lvl == HitNone {
				t.Fatalf("inclusive=%v: lost track of written line %#x", inclusive, a)
			}
		}
	}
}

func TestStatsConservation(t *testing.T) {
	h := newTestHier(true, false)
	driveRandom(h, 10000, 45, 1<<20)
	s := &h.Stats
	if s.Loads != s.LoadL1+s.LoadL2+s.LoadLLC+s.LoadMem {
		t.Fatalf("load level counts don't sum: %+v", s)
	}
	if s.Stores != s.StoreL1Hit+s.StoreMiss {
		t.Fatalf("store counts don't sum: %+v", s)
	}
}

func TestLatencyMonotoneByLevel(t *testing.T) {
	h := newTestHier(true, false)
	// Prime one line per level.
	h.L1D.Fill(0x1000, 0, 0, false, PfNone)
	h.L2.Fill(0x2000, 0, 0, false, PfNone)
	h.LLC.Fill(0x3000, 0, 0, false, PfNone)
	l1, _ := h.Load(0x1000, 1000)
	l2, _ := h.Load(0x2000, 1000)
	l3, _ := h.Load(0x3000, 1000)
	lm, _ := h.Load(0x4000, 1000)
	if !(l1 < l2 && l2 < l3 && l3 < lm) {
		t.Fatalf("latencies not ordered: L1=%d L2=%d LLC=%d mem=%d", l1, l2, l3, lm)
	}
}

func TestMSHRStallsGrowWithPressure(t *testing.T) {
	mk := func(mshrs int) uint64 {
		h := newTestHier(true, false)
		h.SetMSHRs(mshrs)
		driveRandom(h, 20000, 46, 1<<22)
		return h.Stats.MSHRStallCycles
	}
	few, many := mk(2), mk(64)
	if few <= many {
		t.Fatalf("2 MSHRs stalled %d cycles, 64 MSHRs %d", few, many)
	}
}
