package cache

import (
	"catch/internal/interconnect"
	"catch/internal/memory"
	"catch/internal/stats"
	"catch/internal/telemetry"
)

// HitLevel identifies where an access was served from.
type HitLevel uint8

// Hit levels.
const (
	HitNone HitLevel = iota
	HitL1
	HitL2
	HitLLC
	HitMem
)

// String names the hit level.
func (h HitLevel) String() string {
	switch h {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	case HitLLC:
		return "LLC"
	case HitMem:
		return "MEM"
	}
	return "none"
}

// HierStats aggregates per-core hierarchy events.
type HierStats struct {
	Loads, LoadL1, LoadL2, LoadLLC, LoadMem       uint64
	Stores, StoreL1Hit, StoreMiss                 uint64
	Fetches, FetchL1, FetchL2, FetchLLC, FetchMem uint64
	WBToL2, WBToLLC, WBToMem                      uint64

	TactIssued, TactFilledL2, TactFilledLLC uint64
	TactDropPresent, TactDropMiss           uint64
	TactUsed                                uint64
	CodePfIssued, CodePfFilled              uint64
	StridePfIssued                          uint64
	StreamPfIssued                          uint64
	OraclePromotions                        uint64
	MSHRStallCycles                         uint64

	// TactTimeliness buckets the fraction of the source latency saved
	// by TACT prefetches on their first demand use:
	// bucket 0: ≤10% saved, bucket 1: 10–80%, bucket 2: >80% (Fig 11).
	TactTimeliness *stats.Histogram
}

// Hierarchy is one core's view of the cache system: private L1I/L1D,
// optional private L2, a shared LLC, the ring and main memory.
type Hierarchy struct {
	L1I, L1D *Cache
	L2       *Cache             // nil in two-level (noL2) configurations
	LLC      *Cache             //catch:nosnap shared resource; the System codec snapshots it once
	Mem      *memory.DRAM       //catch:nosnap shared resource; the System codec snapshots it once
	Ring     *interconnect.Ring //catch:nosnap shared resource; the System codec snapshots it once

	Inclusive bool //catch:nosnap construction-time configuration, not warm state
	CoreID    int  //catch:nosnap identity wiring fixed at construction
	LLCStop   int  //catch:nosnap ring topology fixed at construction

	// BackInval is invoked when an inclusive LLC evicts a line; the
	// system wires it to invalidate the line in every private cache.
	BackInval func(addr uint64, now int64)

	// Trace, when attached and enabled, receives cache events (sampled
	// demand accesses, every TACT prefetch/timeliness record). Nil or
	// disabled costs one branch per access.
	Trace *telemetry.Tracer //catch:nosnap observability wiring, not simulated state

	// mshrs bounds the number of demand L1 misses in flight (fill
	// buffers). Prefetches bypass it: TACT's point is precisely that
	// prefetched lines leave the demand-miss path.
	mshrs []int64

	Stats HierStats
}

// SetMSHRs sizes the demand-miss fill-buffer file (0 disables the
// limit).
func (h *Hierarchy) SetMSHRs(n int) {
	if n <= 0 {
		h.mshrs = nil
		return
	}
	h.mshrs = make([]int64, n)
}

// mshrStart returns the cycle at which a new demand miss can begin
// (waiting for the oldest in-flight miss if the file is full).
func (h *Hierarchy) mshrStart(now int64) (int64, int) {
	if len(h.mshrs) == 0 {
		return now, -1
	}
	slot, min := 0, h.mshrs[0]
	for i := 1; i < len(h.mshrs); i++ {
		if h.mshrs[i] < min {
			slot, min = i, h.mshrs[i]
		}
	}
	if min > now {
		h.Stats.MSHRStallCycles += uint64(min - now)
		now = min
	}
	return now, slot
}

func (h *Hierarchy) mshrFinish(slot int, done int64) {
	if slot >= 0 {
		h.mshrs[slot] = done
	}
}

type accessKind uint8

const (
	accLoad accessKind = iota
	accStore
	accFetch
	accPfTact
	accPfCode
	accPfStride
)

// Load performs a demand data load at cycle now and returns its
// latency and serving level.
//
//catch:hotpath
func (h *Hierarchy) Load(addr uint64, now int64) (int64, HitLevel) {
	h.Stats.Loads++
	lat, lvl := h.access(addr, now, accLoad, PfNone, true)
	switch lvl {
	case HitL1:
		h.Stats.LoadL1++
	case HitL2:
		h.Stats.LoadL2++
	case HitLLC:
		h.Stats.LoadLLC++
	case HitMem:
		h.Stats.LoadMem++
	}
	if t := h.Trace; t.Enabled() && t.Sampled() {
		t.Emit(telemetry.Event{Cat: telemetry.CatCache, Type: telemetry.EvLoad,
			TID: uint8(h.CoreID), TS: now, Dur: lat, A1: addr, A2: uint64(lvl)})
	}
	return lat, lvl
}

// Store performs a demand store (write-allocate, write-back). Its
// latency is not modelled on the critical path; the call exists for
// state and traffic accounting.
//
//catch:hotpath
func (h *Hierarchy) Store(addr uint64, now int64) {
	h.Stats.Stores++
	if h.L1D.MarkDirty(LineAddr(addr)) {
		h.Stats.StoreL1Hit++
		if t := h.Trace; t.Enabled() && t.Sampled() {
			t.Emit(telemetry.Event{Cat: telemetry.CatCache, Type: telemetry.EvStore,
				TID: uint8(h.CoreID), TS: now, A1: addr, A2: 1})
		}
		return
	}
	h.Stats.StoreMiss++
	h.access(addr, now, accStore, PfNone, true)
	h.L1D.MarkDirty(LineAddr(addr))
	if t := h.Trace; t.Enabled() && t.Sampled() {
		t.Emit(telemetry.Event{Cat: telemetry.CatCache, Type: telemetry.EvStore,
			TID: uint8(h.CoreID), TS: now, A1: addr})
	}
}

// Fetch performs a demand code fetch through the L1 instruction cache.
//
//catch:hotpath
func (h *Hierarchy) Fetch(addr uint64, now int64) (int64, HitLevel) {
	h.Stats.Fetches++
	lat, lvl := h.access(addr, now, accFetch, PfNone, true)
	switch lvl {
	case HitL1:
		h.Stats.FetchL1++
	case HitL2:
		h.Stats.FetchL2++
	case HitLLC:
		h.Stats.FetchLLC++
	case HitMem:
		h.Stats.FetchMem++
	}
	if t := h.Trace; t.Enabled() && t.Sampled() {
		t.Emit(telemetry.Event{Cat: telemetry.CatCache, Type: telemetry.EvFetch,
			TID: uint8(h.CoreID), TS: now, Dur: lat, A1: addr, A2: uint64(lvl)})
	}
	return lat, lvl
}

// PrefetchData issues a TACT inter-cache prefetch of addr into the L1
// data cache. Lines not present in L2/LLC are dropped: TACT hides
// on-die latency, it does not fetch from memory.
func (h *Hierarchy) PrefetchData(addr uint64, now int64) HitLevel {
	h.Stats.TactIssued++
	_, lvl := h.access(addr, now, accPfTact, PfTACT, false)
	switch lvl {
	case HitL1:
		h.Stats.TactDropPresent++
	case HitL2:
		h.Stats.TactFilledL2++
	case HitLLC:
		h.Stats.TactFilledLLC++
	default:
		h.Stats.TactDropMiss++
	}
	if t := h.Trace; t.Enabled() {
		t.Emit(telemetry.Event{Cat: telemetry.CatTact, Type: telemetry.EvTactPrefetch,
			TID: uint8(h.CoreID), TS: now, A1: addr, A2: uint64(lvl)})
	}
	return lvl
}

// PrefetchCode issues a TACT code run-ahead prefetch into the L1I.
func (h *Hierarchy) PrefetchCode(addr uint64, now int64) HitLevel {
	h.Stats.CodePfIssued++
	_, lvl := h.access(addr, now, accPfCode, PfCode, true)
	if lvl == HitL2 || lvl == HitLLC || lvl == HitMem {
		h.Stats.CodePfFilled++
	}
	return lvl
}

// PrefetchStrideL1 issues a baseline L1 stride prefetch (distance 1);
// it may fetch from memory, like the hardware it models.
func (h *Hierarchy) PrefetchStrideL1(addr uint64, now int64) {
	h.Stats.StridePfIssued++
	h.access(addr, now, accPfStride, PfStride, true)
}

// PrefetchStream issues a baseline multi-stream prefetch into the L2
// (or the LLC in noL2 configurations), fetching from memory on an
// on-die miss.
func (h *Hierarchy) PrefetchStream(addr uint64, now int64) {
	la := LineAddr(addr)
	h.Stats.StreamPfIssued++
	// Prefetch filter: lines already on die (including ones a demand
	// hit just moved into the L1, leaving no LLC copy in exclusive
	// hierarchies) must not be refetched from memory.
	if h.L1D.Probe(la) != nil {
		return
	}
	if h.L2 != nil {
		if h.L2.Probe(la) != nil {
			return
		}
		if l := h.LLC.Probe(la); l != nil {
			h.Ring.RoundTrip(h.CoreID, h.LLCStop)
			dirty := l.Dirty
			if !h.Inclusive {
				h.LLC.Invalidate(la)
			}
			h.fillL2(la, now+h.LLC.Cfg.HitLat, dirty, PfStream)
			return
		}
		h.Ring.RoundTrip(h.CoreID, h.LLCStop)
		mlat := h.Mem.Read(la, now+h.LLC.Cfg.HitLat/2)
		if h.Inclusive {
			h.fillLLC(la, now+mlat, false, PfStream)
		}
		h.fillL2(la, now+mlat, false, PfStream)
		return
	}
	// Two-level hierarchy: stream prefetches land in the LLC.
	if h.LLC.Probe(la) != nil {
		return
	}
	mlat := h.Mem.Read(la, now+h.LLC.Cfg.HitLat/2)
	h.fillLLC(la, now+mlat, false, PfStream)
}

// OraclePromoteData performs the paper's zero-time oracle prefetch
// (§III-C): if addr is resident in the L2 or LLC, it is moved into the
// L1 data cache instantaneously. Reports whether a promotion happened.
func (h *Hierarchy) OraclePromoteData(addr uint64, now int64) bool {
	la := LineAddr(addr)
	if h.L1D.Probe(la) != nil {
		return false
	}
	if h.L2 != nil {
		if h.L2.Probe(la) != nil {
			h.Stats.OraclePromotions++
			h.fillL1(h.L1D, la, now, 0, false, PfOracle)
			return true
		}
	}
	if l := h.LLC.Probe(la); l != nil {
		h.Stats.OraclePromotions++
		dirty := l.Dirty
		if !h.Inclusive {
			h.LLC.Invalidate(la)
			if h.L2 != nil {
				h.fillL2(la, now, dirty, PfOracle)
				dirty = false
			}
		}
		h.fillL1(h.L1D, la, now, 0, dirty && h.L2 == nil, PfOracle)
		return true
	}
	return false
}

// ProbeLevel reports, without side effects, the level at which addr is
// currently resident.
func (h *Hierarchy) ProbeLevel(addr uint64) HitLevel {
	la := LineAddr(addr)
	if h.L1D.Probe(la) != nil || h.L1I.Probe(la) != nil {
		return HitL1
	}
	if h.L2 != nil && h.L2.Probe(la) != nil {
		return HitL2
	}
	if h.LLC.Probe(la) != nil {
		return HitLLC
	}
	return HitMem
}

// effLat computes the effective latency of a hit on a possibly
// in-flight line.
func effLat(base int64, l *Line, now int64) int64 {
	if l.FillTime > now {
		wait := l.FillTime - now + 1
		if wait > base {
			return wait
		}
	}
	return base
}

// access walks the hierarchy for one reference. allowMem=false turns
// the walk into an on-die-only probe-and-promote (TACT prefetch).
//
//catch:hotpath
func (h *Hierarchy) access(addr uint64, now int64, kind accessKind, pf PrefetchID, allowMem bool) (int64, HitLevel) {
	la := LineAddr(addr)
	l1 := h.L1D
	if kind == accFetch || kind == accPfCode {
		l1 = h.L1I
	}

	if line, hit := l1.Lookup(la); hit {
		lat := effLat(l1.Cfg.HitLat, line, now)
		if kind == accLoad || kind == accFetch || kind == accStore {
			h.noteDemandUse(l1, line, lat, now)
		}
		return lat, HitL1
	}

	// Demand data misses occupy a fill buffer; a full file delays the
	// miss (this is what bounds memory-level parallelism).
	t, slot := now, -1
	if kind == accLoad || kind == accStore {
		t, slot = h.mshrStart(now)
	}
	q := t - now // queueing delay charged on top of the access latency

	if h.L2 != nil {
		if line, hit := h.L2.Lookup(la); hit {
			lat := effLat(h.L2.Cfg.HitLat, line, t)
			h.L2.NoteDemandUse(line)
			h.fillL1(l1, la, t+lat, lat, false, pf)
			h.mshrFinish(slot, t+lat)
			return q + lat, HitL2
		}
	}

	h.Ring.RoundTrip(h.CoreID, h.LLCStop)
	if line, hit := h.LLC.Lookup(la); hit {
		lat := effLat(h.LLC.Cfg.HitLat, line, t)
		h.LLC.NoteDemandUse(line)
		dirty := line.Dirty
		if !h.Inclusive {
			h.LLC.Invalidate(la)
		}
		if h.L2 != nil {
			h.fillL2(la, t+lat, dirty && !h.Inclusive, pf)
			dirty = false
		}
		h.fillL1(l1, la, t+lat, lat, dirty && !h.Inclusive && h.L2 == nil, pf)
		h.mshrFinish(slot, t+lat)
		return q + lat, HitLLC
	}

	if !allowMem {
		h.mshrFinish(slot, t) // nothing was actually in flight
		return 0, HitMem
	}

	issue := t + h.LLC.Cfg.HitLat/2
	lat := h.Mem.Read(la, issue) + h.LLC.Cfg.HitLat/2
	if h.Inclusive {
		h.fillLLC(la, t+lat, false, pf)
	}
	if h.L2 != nil {
		h.fillL2(la, t+lat, false, pf)
	}
	h.fillL1(l1, la, t+lat, lat, false, pf)
	h.mshrFinish(slot, t+lat)
	return q + lat, HitMem
}

// noteDemandUse credits prefetchers on the first demand hit of a
// prefetched L1 line and records TACT timeliness.
//
//catch:hotpath
func (h *Hierarchy) noteDemandUse(c *Cache, line *Line, lat int64, now int64) {
	if line.Prefetch == PfNone {
		return
	}
	if line.Prefetch == PfTACT && line.OriginLat > 0 {
		h.Stats.TactUsed++
		if h.Stats.TactTimeliness == nil {
			h.Stats.TactTimeliness = stats.NewHistogram(0.10, 0.80)
		}
		extra := lat - c.Cfg.HitLat
		if extra < 0 {
			extra = 0
		}
		saved := float64(int64(line.OriginLat)-extra) / float64(line.OriginLat)
		if saved < 0 {
			saved = 0
		}
		if saved > 1 {
			saved = 1
		}
		h.Stats.TactTimeliness.Observe(saved)
		if t := h.Trace; t.Enabled() {
			t.Emit(telemetry.Event{Cat: telemetry.CatTact, Type: telemetry.EvTactUse,
				TID: uint8(h.CoreID), TS: now, A1: line.Tag << 6, A2: uint64(saved * 1000), A3: uint64(line.OriginLat)})
		}
	}
	c.NoteDemandUse(line)
}

// fillL1 installs a line in an L1, handling the displaced victim: dirty
// victims are written back to the next level; in exclusive two-level
// hierarchies clean victims also allocate into the LLC (that is what
// makes the LLC exclusive).
//
//catch:hotpath
func (h *Hierarchy) fillL1(c *Cache, la uint64, fillTime, originLat int64, dirty bool, pf PrefetchID) {
	v := c.Fill(la, fillTime, originLat, dirty, pf)
	if !v.Valid {
		return
	}
	if h.L2 != nil {
		if v.Dirty {
			h.Stats.WBToL2++
			if h.L2.MarkDirty(v.Addr) {
				return
			}
			h.fillL2(v.Addr, fillTime, true, PfNone)
		}
		return
	}
	// No L2: victims spill to the LLC.
	if h.Inclusive {
		if v.Dirty {
			h.Stats.WBToLLC++
			h.Ring.Traverse(h.CoreID, h.LLCStop, interconnect.MsgWriteback)
			if !h.LLC.MarkDirty(v.Addr) {
				h.fillLLC(v.Addr, fillTime, true, PfNone)
			}
		}
		return
	}
	h.Stats.WBToLLC++
	h.Ring.Traverse(h.CoreID, h.LLCStop, interconnect.MsgWriteback)
	h.fillLLC(v.Addr, fillTime, v.Dirty, PfNone)
}

// fillL2 installs a line in the L2, spilling its victim per the LLC
// inclusion policy (exclusive LLCs allocate every L2 victim; inclusive
// LLCs only absorb dirty data).
//
//catch:hotpath
func (h *Hierarchy) fillL2(la uint64, fillTime int64, dirty bool, pf PrefetchID) {
	v := h.L2.Fill(la, fillTime, 0, dirty, pf)
	if !v.Valid {
		return
	}
	if h.Inclusive {
		if v.Dirty {
			h.Stats.WBToLLC++
			h.Ring.Traverse(h.CoreID, h.LLCStop, interconnect.MsgWriteback)
			if !h.LLC.MarkDirty(v.Addr) {
				h.fillLLC(v.Addr, fillTime, true, PfNone)
			}
		}
		return
	}
	h.Stats.WBToLLC++
	h.Ring.Traverse(h.CoreID, h.LLCStop, interconnect.MsgWriteback)
	h.fillLLC(v.Addr, fillTime, v.Dirty, PfNone)
}

// fillLLC installs a line in the shared LLC; dirty victims go to
// memory, and inclusive evictions back-invalidate the private caches.
//
//catch:hotpath
func (h *Hierarchy) fillLLC(la uint64, fillTime int64, dirty bool, pf PrefetchID) {
	v := h.LLC.Fill(la, fillTime, 0, dirty, pf)
	if !v.Valid {
		return
	}
	if v.Dirty {
		h.Stats.WBToMem++
		h.Mem.Write(v.Addr, fillTime)
	}
	if h.Inclusive && h.BackInval != nil {
		h.BackInval(v.Addr, fillTime)
	}
}

// PrewarmLine installs a line directly into the LLC at time zero,
// bypassing the demand path (used to emulate the steady-state cache
// residency a much longer run would reach).
func (h *Hierarchy) PrewarmLine(addr uint64) {
	la := LineAddr(addr)
	if h.LLC.Probe(la) != nil {
		return
	}
	h.fillLLC(la, 0, false, PfNone)
}

// InvalidatePrivate removes addr from this core's private caches
// (inclusive back-invalidation); dirty data is written to memory.
func (h *Hierarchy) InvalidatePrivate(addr uint64, now int64) {
	la := LineAddr(addr)
	if _, dirty := h.L1D.Invalidate(la); dirty {
		h.Stats.WBToMem++
		h.Mem.Write(la, now)
	}
	h.L1I.Invalidate(la)
	if h.L2 != nil {
		if _, dirty := h.L2.Invalidate(la); dirty {
			h.Stats.WBToMem++
			h.Mem.Write(la, now)
		}
	}
}

// LineAddr returns the 64B-aligned line address.
func LineAddr(a uint64) uint64 { return a &^ 63 }
