package cache

import (
	"fmt"
	"math"

	"catch/internal/snap"
	"catch/internal/stats"
)

// Snapshot codecs: every mutable field of a cache and a hierarchy —
// line metadata, the LRU tick, replacement-policy counters, MSHR
// occupancy and the statistics blocks — round-trips through the snap
// codec, so a restored cache is bit-for-bit the cache that was
// serialized. Geometry (set/way counts, policy kind) is written as a
// guard and checked on restore: a snapshot only restores into a cache
// built from the same configuration.

// Replacement-policy tags in the snapshot stream.
const (
	polLRU = iota
	polSRRIP
	polBRRIP
	polDRRIP
)

func policyTag(p Policy) uint8 {
	switch p.(type) {
	case nil:
		return polLRU
	case SRRIP:
		return polSRRIP
	case *BRRIP:
		return polBRRIP
	case *DRRIP:
		return polDRRIP
	}
	return polLRU
}

// SnapshotTo appends the cache's full mutable state.
func (c *Cache) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(c.Sets))
	w.U64(uint64(c.Cfg.Ways))
	w.I64(c.tick)
	for i := range c.lines {
		l := &c.lines[i]
		w.U64(l.Tag)
		w.I64(l.FillTime)
		w.I64(l.LastUse)
		w.I32(l.OriginLat)
		w.Bool(l.Valid)
		w.Bool(l.Dirty)
		w.U8(uint8(l.Prefetch))
		w.U8(l.Meta)
	}
	w.U8(policyTag(c.policy))
	switch p := c.policy.(type) {
	case *BRRIP:
		w.U32(p.ctr)
	case *DRRIP:
		w.I64(int64(p.psel))
		w.U32(p.brrip.ctr)
	}
	c.Stats.snapshotTo(w)
}

// RestoreFrom restores state serialized by SnapshotTo into a cache of
// identical geometry.
func (c *Cache) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(c.Sets), c.Cfg.Name+" set count")
	r.Expect(uint64(c.Cfg.Ways), c.Cfg.Name+" way count")
	c.tick = r.I64()
	for i := range c.lines {
		l := &c.lines[i]
		l.Tag = r.U64()
		l.FillTime = r.I64()
		l.LastUse = r.I64()
		l.OriginLat = r.I32()
		l.Valid = r.Bool()
		l.Dirty = r.Bool()
		l.Prefetch = PrefetchID(r.U8())
		l.Meta = r.U8()
	}
	tag := r.U8()
	if want := policyTag(c.policy); r.Err() == nil && tag != want {
		r.Fail(fmt.Errorf("snap: %s policy mismatch: snapshot has tag %d, live cache has %d", c.Cfg.Name, tag, want))
	}
	switch p := c.policy.(type) {
	case *BRRIP:
		p.ctr = r.U32()
	case *DRRIP:
		p.psel = int(r.I64())
		p.brrip.ctr = r.U32()
	}
	c.Stats.restoreFrom(r)
	return r.Err()
}

func (s *Stats) snapshotTo(w *snap.Writer) {
	w.U64(s.Lookups)
	w.U64(s.Hits)
	w.U64(s.Misses)
	w.U64(s.Fills)
	w.U64(s.Evictions)
	w.U64(s.DirtyEvictions)
	w.U64(s.Invalidations)
	w.U64(s.Writes)
	w.U64(s.PrefetchFills)
	w.U64(s.PrefetchUsed)
	w.U64(s.PrefetchEvictedUnused)
}

func (s *Stats) restoreFrom(r *snap.Reader) {
	s.Lookups = r.U64()
	s.Hits = r.U64()
	s.Misses = r.U64()
	s.Fills = r.U64()
	s.Evictions = r.U64()
	s.DirtyEvictions = r.U64()
	s.Invalidations = r.U64()
	s.Writes = r.U64()
	s.PrefetchFills = r.U64()
	s.PrefetchUsed = r.U64()
	s.PrefetchEvictedUnused = r.U64()
}

// SnapshotTo appends the hierarchy's per-core mutable state (the
// caches it points at are serialized by their owners).
func (h *Hierarchy) SnapshotTo(w *snap.Writer) {
	w.Int(len(h.mshrs))
	for _, v := range h.mshrs {
		w.I64(v)
	}
	h.Stats.snapshotTo(w)
}

// RestoreFrom restores hierarchy state serialized by SnapshotTo.
func (h *Hierarchy) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(h.mshrs)), "MSHR count")
	for i := range h.mshrs {
		h.mshrs[i] = r.I64()
	}
	h.Stats.restoreFrom(r)
	return r.Err()
}

func (s *HierStats) snapshotTo(w *snap.Writer) {
	w.U64(s.Loads)
	w.U64(s.LoadL1)
	w.U64(s.LoadL2)
	w.U64(s.LoadLLC)
	w.U64(s.LoadMem)
	w.U64(s.Stores)
	w.U64(s.StoreL1Hit)
	w.U64(s.StoreMiss)
	w.U64(s.Fetches)
	w.U64(s.FetchL1)
	w.U64(s.FetchL2)
	w.U64(s.FetchLLC)
	w.U64(s.FetchMem)
	w.U64(s.WBToL2)
	w.U64(s.WBToLLC)
	w.U64(s.WBToMem)
	w.U64(s.TactIssued)
	w.U64(s.TactFilledL2)
	w.U64(s.TactFilledLLC)
	w.U64(s.TactDropPresent)
	w.U64(s.TactDropMiss)
	w.U64(s.TactUsed)
	w.U64(s.CodePfIssued)
	w.U64(s.CodePfFilled)
	w.U64(s.StridePfIssued)
	w.U64(s.StreamPfIssued)
	w.U64(s.OraclePromotions)
	w.U64(s.MSHRStallCycles)
	if s.TactTimeliness == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	hist := s.TactTimeliness
	w.Int(len(hist.Bounds))
	for _, b := range hist.Bounds {
		w.U64(math.Float64bits(b))
	}
	for _, c := range hist.Counts {
		w.U64(c)
	}
	w.U64(hist.Total)
}

func (s *HierStats) restoreFrom(r *snap.Reader) {
	s.Loads = r.U64()
	s.LoadL1 = r.U64()
	s.LoadL2 = r.U64()
	s.LoadLLC = r.U64()
	s.LoadMem = r.U64()
	s.Stores = r.U64()
	s.StoreL1Hit = r.U64()
	s.StoreMiss = r.U64()
	s.Fetches = r.U64()
	s.FetchL1 = r.U64()
	s.FetchL2 = r.U64()
	s.FetchLLC = r.U64()
	s.FetchMem = r.U64()
	s.WBToL2 = r.U64()
	s.WBToLLC = r.U64()
	s.WBToMem = r.U64()
	s.TactIssued = r.U64()
	s.TactFilledL2 = r.U64()
	s.TactFilledLLC = r.U64()
	s.TactDropPresent = r.U64()
	s.TactDropMiss = r.U64()
	s.TactUsed = r.U64()
	s.CodePfIssued = r.U64()
	s.CodePfFilled = r.U64()
	s.StridePfIssued = r.U64()
	s.StreamPfIssued = r.U64()
	s.OraclePromotions = r.U64()
	s.MSHRStallCycles = r.U64()
	if !r.Bool() {
		s.TactTimeliness = nil
		return
	}
	nb := r.Int()
	if nb < 0 || nb > 1<<16 {
		r.Fail(fmt.Errorf("snap: implausible histogram bound count %d", nb))
		return
	}
	bounds := make([]float64, nb)
	for i := range bounds {
		bounds[i] = math.Float64frombits(r.U64())
	}
	hist := stats.NewHistogram(bounds...)
	for i := range hist.Counts {
		hist.Counts[i] = r.U64()
	}
	hist.Total = r.U64()
	s.TactTimeliness = hist
}
