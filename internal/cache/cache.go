// Package cache implements the on-die cache substrate: set-associative
// caches with LRU replacement, write-back/write-allocate semantics,
// in-flight fill timestamps, and the multi-level hierarchy (non-
// inclusive L2 with either an inclusive or an exclusive LLC) that the
// paper's baseline and CATCH configurations are built from.
package cache

// PrefetchID labels who installed a line, for accuracy/timeliness
// accounting.
type PrefetchID uint8

// Prefetcher identities.
const (
	PfNone   PrefetchID = iota
	PfStride            // baseline L1 stride prefetcher
	PfStream            // baseline L2 multi-stream prefetcher
	PfTACT              // TACT data prefetchers (cross/deep-self/feeder)
	PfCode              // TACT code run-ahead
	PfOracle            // oracle criticality prefetcher (§III-C)
)

// Line is one cache line's metadata.
type Line struct {
	Tag       uint64
	FillTime  int64 // cycle at which the data becomes usable
	LastUse   int64 // LRU timestamp
	OriginLat int32 // latency the installing fill paid (timeliness ref)
	Valid     bool
	Dirty     bool
	Prefetch  PrefetchID // non-zero until first demand use
	Meta      uint8      // replacement-policy state (e.g. RRPV)
}

// Config sizes a cache.
type Config struct {
	Name   string
	Size   uint64 // bytes
	Ways   int
	HitLat int64 // load-to-use round-trip latency for a hit at this level
}

// Stats counts per-cache events.
type Stats struct {
	Lookups, Hits, Misses uint64
	Fills, Evictions      uint64
	DirtyEvictions        uint64
	Invalidations         uint64
	Writes                uint64 // demand stores hitting this cache
	PrefetchFills         uint64
	PrefetchUsed          uint64 // prefetched lines that saw a demand hit
	PrefetchEvictedUnused uint64
}

// Cache is a single set-associative write-back cache.
type Cache struct {
	Cfg    Config //catch:nosnap construction-time geometry; RestoreFrom asserts shape via Expect
	Sets   int
	lines  []Line
	tick   int64
	policy Policy // nil = built-in LRU
	// setMask is Sets-1 when Sets is a power of two (the common case):
	// the per-access set index is then a mask instead of a modulo. A
	// zero mask with Sets > 1 selects the modulo fallback (e.g. the
	// 6.5MB LLC of the iso-area studies).
	setMask uint64 //catch:nosnap derived from Sets at construction
	Stats   Stats
}

// SetPolicy installs a replacement policy by name ("lru", "srrip",
// "brrip", "drrip"); unknown or empty names keep the built-in LRU.
func (c *Cache) SetPolicy(name string) {
	c.policy = PolicyByName(name, c.Sets)
}

// PolicyName reports the active replacement policy.
func (c *Cache) PolicyName() string {
	if c.policy == nil {
		return "lru"
	}
	return c.policy.Name()
}

// New builds a cache from cfg. The set count is Size/(Ways*64).
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	sets := int(cfg.Size / (uint64(cfg.Ways) * 64))
	if sets <= 0 {
		sets = 1
	}
	c := &Cache{
		Cfg:   cfg,
		Sets:  sets,
		lines: make([]Line, sets*cfg.Ways),
	}
	if sets&(sets-1) == 0 {
		c.setMask = uint64(sets - 1)
	}
	return c
}

// lineTag converts an address to the line-granular tag used internally.
func lineTag(addr uint64) uint64 { return addr >> 6 }

// setIndex maps a tag to its set (mask when the set count is a power
// of two, modulo otherwise — both give tag mod Sets).
func (c *Cache) setIndex(tag uint64) int {
	if c.setMask != 0 || c.Sets == 1 {
		return int(tag & c.setMask)
	}
	return int(tag % uint64(c.Sets))
}

func (c *Cache) set(tag uint64) []Line {
	s := c.setIndex(tag)
	return c.lines[s*c.Cfg.Ways : (s+1)*c.Cfg.Ways]
}

// Probe returns the line holding addr without touching LRU state or
// statistics, or nil on a miss. Used by oracle studies and prefetch
// filtering.
//
//catch:hotpath
func (c *Cache) Probe(addr uint64) *Line {
	tag := lineTag(addr)
	set := c.set(tag)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Lookup searches for addr, updating LRU state and hit/miss counters.
//
//catch:hotpath
func (c *Cache) Lookup(addr uint64) (*Line, bool) {
	c.Stats.Lookups++
	tag := lineTag(addr)
	set := c.set(tag)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			c.Stats.Hits++
			c.tick++
			set[i].LastUse = c.tick
			if c.policy != nil {
				c.policy.OnHit(set, i)
			}
			return &set[i], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Victim describes a line displaced by Fill.
type Victim struct {
	Addr  uint64
	Valid bool
	Dirty bool
}

// Fill installs addr, returning the displaced victim (if any). fillTime
// is the cycle at which the new line's data arrives; originLat records
// what the fill cost (for timeliness accounting of prefetches).
//
//catch:hotpath
func (c *Cache) Fill(addr uint64, fillTime int64, originLat int64, dirty bool, pf PrefetchID) Victim {
	tag := lineTag(addr)
	setIdx := c.setIndex(tag)
	set := c.lines[setIdx*c.Cfg.Ways : (setIdx+1)*c.Cfg.Ways]
	c.Stats.Fills++
	if pf != PfNone {
		c.Stats.PrefetchFills++
	}

	// One pass finds a re-fill match (e.g. writeback merging), the first
	// invalid way, and the built-in LRU victim; the policy is consulted
	// only when every way is valid and none matches.
	victimIdx, invalidIdx, lruIdx := -1, -1, 0
	lru := int64(1<<62 - 1)
	for i := range set {
		l := &set[i]
		if l.Valid && l.Tag == tag {
			victimIdx = i
			break
		}
		if !l.Valid {
			if invalidIdx < 0 {
				invalidIdx = i
			}
			continue
		}
		if l.LastUse < lru {
			lru, lruIdx = l.LastUse, i
		}
	}
	if victimIdx < 0 {
		victimIdx = invalidIdx
	}
	if victimIdx < 0 {
		if c.policy != nil {
			victimIdx = c.policy.Victim(set, setIdx)
		} else {
			victimIdx = lruIdx
		}
	}

	var v Victim
	old := &set[victimIdx]
	if old.Valid && old.Tag != tag {
		v = Victim{Addr: old.Tag << 6, Valid: true, Dirty: old.Dirty}
		c.Stats.Evictions++
		if old.Dirty {
			c.Stats.DirtyEvictions++
		}
		if old.Prefetch != PfNone {
			c.Stats.PrefetchEvictedUnused++
		}
	}
	if old.Valid && old.Tag == tag {
		dirty = dirty || old.Dirty
	}
	c.tick++
	*old = Line{
		Tag:       tag,
		FillTime:  fillTime,
		LastUse:   c.tick,
		OriginLat: int32(originLat),
		Valid:     true,
		Dirty:     dirty,
		Prefetch:  pf,
	}
	if c.policy != nil {
		c.policy.OnFill(set, victimIdx, setIdx)
	}
	return v
}

// MarkDirty sets the dirty bit of an existing line (demand store hit).
//
//catch:hotpath
func (c *Cache) MarkDirty(addr uint64) bool {
	if l := c.Probe(addr); l != nil {
		l.Dirty = true
		c.Stats.Writes++
		return true
	}
	return false
}

// Invalidate removes addr from the cache, returning whether it was
// present and dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	if l := c.Probe(addr); l != nil {
		c.Stats.Invalidations++
		l.Valid = false
		return true, l.Dirty
	}
	return false, false
}

// NoteDemandUse clears the prefetch marker on first demand hit,
// crediting the prefetcher.
//
//catch:hotpath
func (c *Cache) NoteDemandUse(l *Line) {
	if l.Prefetch != PfNone {
		c.Stats.PrefetchUsed++
		l.Prefetch = PfNone
	}
}

// HitRate returns hits/lookups.
func (c *Cache) HitRate() float64 {
	if c.Stats.Lookups == 0 {
		return 0
	}
	return float64(c.Stats.Hits) / float64(c.Stats.Lookups)
}

// ResetStats zeroes the statistics (e.g. after warmup).
func (c *Cache) ResetStats() { c.Stats = Stats{} }
