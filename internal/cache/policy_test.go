package cache

import "testing"

func TestPolicyByName(t *testing.T) {
	if PolicyByName("lru", 64) != nil || PolicyByName("", 64) != nil {
		t.Fatal("LRU must be the nil (built-in) policy")
	}
	for _, n := range []string{"srrip", "brrip", "drrip"} {
		p := PolicyByName(n, 64)
		if p == nil || p.Name() != n {
			t.Fatalf("policy %q not constructed", n)
		}
	}
	if PolicyByName("bogus", 64) != nil {
		t.Fatal("unknown policy must fall back to LRU")
	}
}

func TestSRRIPInsertAndPromote(t *testing.T) {
	set := make([]Line, 4)
	p := SRRIP{}
	p.OnFill(set, 0, 0)
	if set[0].Meta != rrpvLong {
		t.Fatalf("SRRIP insertion RRPV = %d", set[0].Meta)
	}
	p.OnHit(set, 0)
	if set[0].Meta != rrpvNear {
		t.Fatalf("SRRIP hit RRPV = %d", set[0].Meta)
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	set := make([]Line, 4)
	p := SRRIP{}
	for i := range set {
		set[i].Valid = true
		p.OnFill(set, i, 0)
	}
	p.OnHit(set, 2) // protect way 2
	v := p.Victim(set, 0)
	if v == 2 {
		t.Fatal("SRRIP evicted the protected (near) way")
	}
	// Aging must have occurred: at least one way at max RRPV.
	found := false
	for i := range set {
		if set[i].Meta >= rrpvMax {
			found = true
		}
	}
	if !found {
		t.Fatal("victim search did not age the set")
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	set := make([]Line, 1)
	p := &BRRIP{}
	distant := 0
	for i := 0; i < 320; i++ {
		p.OnFill(set, 0, 0)
		if set[0].Meta == rrpvMax {
			distant++
		}
	}
	if distant < 280 {
		t.Fatalf("BRRIP inserted distant only %d/320 times", distant)
	}
	if distant == 320 {
		t.Fatal("BRRIP never inserted long")
	}
}

func TestDRRIPDuel(t *testing.T) {
	d := NewDRRIP(64)
	set := make([]Line, 4)
	// Misses in the SRRIP leader set (index 0) push psel toward BRRIP.
	for i := 0; i < 100; i++ {
		d.OnFill(set, 0, 0)
	}
	if d.psel >= 0 {
		t.Fatalf("psel did not move toward BRRIP: %d", d.psel)
	}
	// Misses in the BRRIP leader set (index 16) push it back.
	for i := 0; i < 300; i++ {
		d.OnFill(set, 0, 16)
	}
	if d.psel <= 0 {
		t.Fatalf("psel did not move toward SRRIP: %d", d.psel)
	}
}

func TestCacheWithRRIPScanResistance(t *testing.T) {
	// A hot set re-referenced between one-shot scan lines: RRIP should
	// keep more of the hot set than LRU.
	run := func(policy string) uint64 {
		c := New(Config{Name: "t", Size: 16 * 64, Ways: 16, HitLat: 5})
		c.SetPolicy(policy)
		hot := make([]uint64, 6)
		for i := range hot {
			hot[i] = uint64(i * 64 * 1) // same set (1 set total)
		}
		var hits uint64
		scan := uint64(1 << 20)
		for round := 0; round < 200; round++ {
			for _, a := range hot {
				if _, ok := c.Lookup(a); ok {
					hits++
				} else {
					c.Fill(a, 0, 0, false, PfNone)
				}
			}
			// 12 one-shot scan lines.
			for k := 0; k < 12; k++ {
				scan += 64
				if _, ok := c.Lookup(scan); !ok {
					c.Fill(scan, 0, 0, false, PfNone)
				}
			}
		}
		return hits
	}
	lru, srrip := run("lru"), run("srrip")
	if srrip < lru {
		t.Fatalf("SRRIP (%d hits) not scan-resistant vs LRU (%d hits)", srrip, lru)
	}
}

func TestHierarchyWithDRRIPLLC(t *testing.T) {
	h := newTestHier(true, false)
	h.LLC.SetPolicy("drrip")
	driveRandom(h, 20000, 99, 1<<21)
	if h.LLC.PolicyName() != "drrip" {
		t.Fatal("policy not installed")
	}
	if h.Stats.Loads == 0 {
		t.Fatal("no loads")
	}
	// Exclusive invariant must hold under any policy.
	violations := 0
	forEachValid(h.L2, func(addr uint64, l *Line) {
		if h.LLC.Probe(addr) != nil {
			violations++
		}
	})
	if violations > 0 {
		t.Fatalf("%d exclusive violations under DRRIP", violations)
	}
}
