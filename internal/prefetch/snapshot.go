package prefetch

import "catch/internal/snap"

// Snapshot codecs for the baseline prefetchers: the stride table and
// the multi-stream tracker are ordinary learned state that must follow
// the warm image, counters included.

// SnapshotTo appends the stride prefetcher's full mutable state.
func (p *StridePrefetcher) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(p.entries)))
	for i := range p.entries {
		e := &p.entries[i]
		w.U64(e.pc)
		w.U64(e.lastAddr)
		w.I64(e.stride)
		w.U8(e.conf)
		w.Bool(e.valid)
	}
	w.U64(p.Stats.Trains)
	w.U64(p.Stats.Predictions)
}

// RestoreFrom restores state serialized by SnapshotTo.
func (p *StridePrefetcher) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(p.entries)), "stride prefetcher size")
	for i := range p.entries {
		e := &p.entries[i]
		e.pc = r.U64()
		e.lastAddr = r.U64()
		e.stride = r.I64()
		e.conf = r.U8()
		e.valid = r.Bool()
	}
	p.Stats.Trains = r.U64()
	p.Stats.Predictions = r.U64()
	return r.Err()
}

// SnapshotTo appends the stream prefetcher's full mutable state.
func (p *StreamPrefetcher) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(p.streams)))
	for i := range p.streams {
		s := &p.streams[i]
		w.U64(s.page)
		w.I64(s.lastLine)
		w.U8(uint8(s.dir))
		w.U8(s.conf)
		w.I64(s.lru)
		w.Bool(s.valid)
	}
	w.I64(p.tick)
	w.U64(p.Stats.Allocations)
	w.U64(p.Stats.Trained)
	w.U64(p.Stats.Predictions)
}

// RestoreFrom restores state serialized by SnapshotTo.
func (p *StreamPrefetcher) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(p.streams)), "stream prefetcher size")
	for i := range p.streams {
		s := &p.streams[i]
		s.page = r.U64()
		s.lastLine = r.I64()
		s.dir = int8(r.U8())
		s.conf = r.U8()
		s.lru = r.I64()
		s.valid = r.Bool()
	}
	p.tick = r.I64()
	p.Stats.Allocations = r.U64()
	p.Stats.Trained = r.U64()
	p.Stats.Predictions = r.U64()
	return r.Err()
}
