// Package prefetch implements the baseline hardware prefetchers the
// paper equips every configuration with: a PC-based stride prefetcher
// at the L1 [41] and an aggressive multi-stream prefetcher into the
// L2/LLC [32], [35]. TACT (package tact) sits on top of these.
package prefetch

// StrideStats counts stride-prefetcher events.
type StrideStats struct {
	Trains, Predictions uint64
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     uint8
	valid    bool
}

// StridePrefetcher is a PC-indexed stride table issuing distance-1
// prefetches into the L1 once a stride has been seen twice.
type StridePrefetcher struct {
	entries []strideEntry
	mask    uint64 //catch:nosnap derived from len(entries) at construction
	Stats   StrideStats
}

// NewStride builds a stride prefetcher with the given table size
// (rounded up to a power of two).
func NewStride(size int) *StridePrefetcher {
	n := 1
	for n < size {
		n <<= 1
	}
	return &StridePrefetcher{entries: make([]strideEntry, n), mask: uint64(n - 1)}
}

// OnLoad observes a demand load and returns a distance-1 prefetch
// address when the PC has a confident stride.
func (p *StridePrefetcher) OnLoad(pc, addr uint64) (uint64, bool) {
	e := &p.entries[(pc>>2)&p.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return 0, false
	}
	d := int64(addr) - int64(e.lastAddr)
	e.lastAddr = addr
	if d == 0 {
		return 0, false
	}
	if d == e.stride {
		if e.conf < 3 {
			e.conf++
			p.Stats.Trains++
		}
	} else {
		e.stride = d
		e.conf = 0
		return 0, false
	}
	if e.conf >= 2 {
		p.Stats.Predictions++
		return uint64(int64(addr) + d), true
	}
	return 0, false
}

// ConfidentStride reports the learned stride for pc, if confident.
func (p *StridePrefetcher) ConfidentStride(pc uint64) (int64, bool) {
	e := &p.entries[(pc>>2)&p.mask]
	if e.valid && e.pc == pc && e.conf >= 2 && e.stride != 0 {
		return e.stride, true
	}
	return 0, false
}
