package prefetch

// StreamStats counts stream-prefetcher events.
type StreamStats struct {
	Allocations, Trained, Predictions uint64
}

type stream struct {
	page     uint64
	lastLine int64 // line offset within page (0..63)
	dir      int8
	conf     uint8
	lru      int64
	valid    bool
}

// StreamPrefetcher detects up to Streams concurrent sequential access
// streams (by 4KB region) and, once trained, prefetches Degree lines
// ahead in the detected direction. It models the aggressive baseline
// multi-stream prefetcher that fills the L2 and LLC.
type StreamPrefetcher struct {
	streams []stream
	Degree  int //catch:nosnap construction-time configuration, not warm state
	tick    int64
	Stats   StreamStats
}

// NewStream builds a multi-stream prefetcher tracking n streams with
// the given prefetch degree.
func NewStream(n, degree int) *StreamPrefetcher {
	if n < 1 {
		n = 1
	}
	if degree < 1 {
		degree = 1
	}
	return &StreamPrefetcher{streams: make([]stream, n), Degree: degree}
}

// OnAccess observes an L1-miss address and appends any prefetch line
// addresses to out, returning the extended slice.
func (p *StreamPrefetcher) OnAccess(addr uint64, out []uint64) []uint64 {
	page := addr >> 12
	line := int64((addr >> 6) & 63)
	p.tick++

	var s *stream
	victim := 0
	oldest := int64(1<<62 - 1)
	for i := range p.streams {
		st := &p.streams[i]
		if st.valid && st.page == page {
			s = st
			break
		}
		if !st.valid {
			oldest = -1
			victim = i
		} else if st.lru < oldest {
			oldest = st.lru
			victim = i
		}
	}
	if s == nil {
		p.Stats.Allocations++
		p.streams[victim] = stream{page: page, lastLine: line, lru: p.tick, valid: true}
		return out
	}
	s.lru = p.tick
	d := line - s.lastLine
	if d == 0 {
		return out
	}
	var dir int8 = 1
	if d < 0 {
		dir = -1
	}
	if dir == s.dir {
		if s.conf < 3 {
			s.conf++
			if s.conf == 2 {
				p.Stats.Trained++
			}
		}
	} else {
		s.dir = dir
		s.conf = 0
	}
	s.lastLine = line
	if s.conf < 2 {
		return out
	}
	base := (page << 12) | uint64(line<<6)
	for k := 1; k <= p.Degree; k++ {
		next := int64(base) + int64(dir)*int64(k)*64
		if next < 0 {
			break
		}
		p.Stats.Predictions++
		out = append(out, uint64(next))
	}
	return out
}
