package prefetch

import (
	"testing"
	"testing/quick"
)

func TestStrideLearnsAfterTwoRepeats(t *testing.T) {
	p := NewStride(64)
	pc := uint64(0x400)
	if _, ok := p.OnLoad(pc, 1000); ok {
		t.Fatal("predicted with no history")
	}
	if _, ok := p.OnLoad(pc, 1064); ok {
		t.Fatal("predicted after first delta")
	}
	if _, ok := p.OnLoad(pc, 1128); ok {
		t.Fatal("predicted before confidence threshold")
	}
	addr, ok := p.OnLoad(pc, 1192)
	if !ok || addr != 1256 {
		t.Fatalf("prediction = %d,%v want 1256", addr, ok)
	}
}

func TestStrideNegative(t *testing.T) {
	p := NewStride(64)
	pc := uint64(0x400)
	for a := int64(10000); a > 9000; a -= 128 {
		p.OnLoad(pc, uint64(a))
	}
	addr, ok := p.OnLoad(pc, 8976)
	if !ok || addr != 8976-128 {
		t.Fatalf("negative stride prediction = %d,%v", addr, ok)
	}
}

func TestStrideResetOnChange(t *testing.T) {
	p := NewStride(64)
	pc := uint64(0x400)
	for i := 0; i < 8; i++ {
		p.OnLoad(pc, uint64(1000+i*64))
	}
	if _, ok := p.OnLoad(pc, 50000); ok {
		t.Fatal("predicted on stride break")
	}
	if _, ok := p.OnLoad(pc, 50100); ok {
		t.Fatal("predicted after one instance of new stride")
	}
}

func TestStrideZeroDeltaIgnored(t *testing.T) {
	p := NewStride(64)
	pc := uint64(0x400)
	for i := 0; i < 10; i++ {
		if _, ok := p.OnLoad(pc, 4096); ok {
			t.Fatal("predicted on repeated identical address")
		}
	}
}

func TestStridePerPC(t *testing.T) {
	p := NewStride(256)
	for i := 0; i < 6; i++ {
		p.OnLoad(0x400, uint64(1000+i*64))
		p.OnLoad(0x404, uint64(90000+i*8))
	}
	s1, ok1 := p.ConfidentStride(0x400)
	s2, ok2 := p.ConfidentStride(0x404)
	if !ok1 || s1 != 64 || !ok2 || s2 != 8 {
		t.Fatalf("per-PC strides wrong: %d,%v %d,%v", s1, ok1, s2, ok2)
	}
}

func TestStrideNeverPredictsSameAddress(t *testing.T) {
	f := func(pc uint64, start uint32, stride uint8) bool {
		if stride == 0 {
			return true
		}
		p := NewStride(64)
		a := uint64(start)
		var last uint64
		for i := 0; i < 6; i++ {
			if pa, ok := p.OnLoad(pc, a); ok {
				last = pa
				if pa == a {
					return false
				}
			}
			a += uint64(stride)
		}
		_ = last
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDetectsAscending(t *testing.T) {
	p := NewStream(16, 2)
	var out []uint64
	base := uint64(0x100000)
	for i := 0; i < 8; i++ {
		out = p.OnAccess(base+uint64(i*64), out[:0])
	}
	if len(out) != 2 {
		t.Fatalf("trained stream issued %d prefetches, want 2", len(out))
	}
	if out[0] != base+8*64 || out[1] != base+9*64 {
		t.Fatalf("prefetch addrs wrong: %#x %#x", out[0], out[1])
	}
}

func TestStreamDetectsDescending(t *testing.T) {
	p := NewStream(16, 1)
	var out []uint64
	base := uint64(0x100000) + 63*64
	for i := 0; i < 8; i++ {
		out = p.OnAccess(base-uint64(i*64), out[:0])
	}
	if len(out) != 1 || out[0] >= base-7*64 {
		t.Fatalf("descending stream prediction wrong: %v", out)
	}
}

func TestStreamTracksMultiple(t *testing.T) {
	p := NewStream(16, 1)
	var a, b []uint64
	for i := 0; i < 8; i++ {
		a = p.OnAccess(0x100000+uint64(i*64), a[:0])
		b = p.OnAccess(0x900000+uint64(i*64), b[:0])
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("concurrent streams not both trained")
	}
}

func TestStreamLRUReplacement(t *testing.T) {
	p := NewStream(2, 1)
	// Train stream A, then thrash with two more pages, then A needs
	// retraining (was evicted).
	var out []uint64
	for i := 0; i < 6; i++ {
		out = p.OnAccess(0x100000+uint64(i*64), out[:0])
	}
	if len(out) == 0 {
		t.Fatal("stream A not trained")
	}
	p.OnAccess(0x200000, nil)
	p.OnAccess(0x300000, nil)
	out = p.OnAccess(0x100000+6*64, nil)
	if len(out) != 0 {
		t.Fatal("evicted stream predicted without retraining")
	}
}

func TestStreamRandomNoise(t *testing.T) {
	p := NewStream(16, 2)
	preds := 0
	for i := uint64(0); i < 200; i++ {
		h := i * 2654435761 % (1 << 22)
		preds += len(p.OnAccess(h&^63, nil))
	}
	if preds > 40 {
		t.Fatalf("random access pattern produced %d predictions", preds)
	}
}
