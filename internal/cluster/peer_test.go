package cluster

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"catch/internal/fault"
)

// shedHandler answers every request the way a catchd at its -shed-after
// limit does: 503 plus Retry-After.
func shedHandler(retryAfter string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if retryAfter != "" {
			w.Header().Set("Retry-After", retryAfter)
		}
		http.Error(w, "shedding load", http.StatusServiceUnavailable)
	})
}

// TestPeerShedClassification pins the shed-vs-dead distinction: a 503
// with Retry-After is a live peer protecting itself — the call fails,
// the pause is surfaced, and the peer's breaker records a SUCCESS so
// load shedding can never cascade into "peer marked down". The same
// 503 without Retry-After is indistinguishable from a dying proxy and
// stays breaker fodder.
func TestPeerShedClassification(t *testing.T) {
	shedding := newLocalServer(t, shedHandler("2"))
	dead := newLocalServer(t, shedHandler(""))
	c := NewClient(ClientOptions{BreakerThreshold: 3})
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		_, err := c.Status(ctx, shedding)
		if err == nil {
			t.Fatal("shed response did not fail the call")
		}
		if !IsShed(err) {
			t.Fatalf("shed response classified dead: %v", err)
		}
		if got := RetryAfter(err); got != 2*time.Second {
			t.Fatalf("RetryAfter = %v, want 2s", got)
		}
	}
	if st := c.BreakerState(shedding); st != fault.StateClosed {
		t.Fatalf("10 shed responses left the breaker %s; shedding must not trip it", st)
	}

	for i := 0; i < 3; i++ {
		if _, err := c.Status(ctx, dead); err == nil || IsShed(err) {
			t.Fatalf("bare 503 classified as shed (err %v)", err)
		}
	}
	if st := c.BreakerState(dead); st != fault.StateOpen {
		t.Fatalf("3 bare 503s left the breaker %s, want open", st)
	}

	// A shedding peer is alive to the failure detector too.
	if err := c.Probe(ctx, shedding); err != nil {
		t.Fatalf("Probe against a shedding peer = %v, want nil (alive)", err)
	}
	// Non-errors are not shed; arbitrary errors are not shed.
	if IsShed(nil) || IsShed(errors.New("boom")) || RetryAfter(errors.New("boom")) != 0 {
		t.Fatal("IsShed/RetryAfter misclassified a non-shed error")
	}
}

// TestOpTimeoutsDefaults pins the per-op deadline table and the
// -peer-timeout plumbing: zero fields take the defaults, WithDefault
// overrides the control plane but keeps the probe snappy, and shard
// dispatch is never client-bounded.
func TestOpTimeoutsDefaults(t *testing.T) {
	def := DefaultOpTimeouts()
	if def.Shard != 0 {
		t.Fatalf("default shard deadline = %v; shard dispatch must be unbounded", def.Shard)
	}
	if def.Probe >= def.Fetch {
		t.Fatalf("probe deadline %v not tighter than control plane %v", def.Probe, def.Fetch)
	}

	tests := []struct {
		name      string
		d         time.Duration
		wantFetch time.Duration
		wantProbe time.Duration
	}{
		{"zero keeps zero", 0, 0, 0},
		{"generous budget caps the probe", 30 * time.Second, 30 * time.Second, def.Probe},
		{"tight budget tightens the probe too", 500 * time.Millisecond, 500 * time.Millisecond, 500 * time.Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := OpTimeouts{}.WithDefault(tt.d)
			if got.Fetch != tt.wantFetch || got.Status != tt.wantFetch || got.Manifest != tt.wantFetch {
				t.Fatalf("WithDefault(%v) control plane = %v/%v/%v, want %v",
					tt.d, got.Fetch, got.Status, got.Manifest, tt.wantFetch)
			}
			if got.Probe != tt.wantProbe {
				t.Fatalf("WithDefault(%v) probe = %v, want %v", tt.d, got.Probe, tt.wantProbe)
			}
			if got.Shard != 0 {
				t.Fatalf("WithDefault(%v) bounded shard dispatch to %v", tt.d, got.Shard)
			}
		})
	}

	// NewClient fills unset fields from the defaults...
	c := NewClient(ClientOptions{})
	if c.timeouts.Fetch != def.Fetch || c.timeouts.Probe != def.Probe {
		t.Fatalf("NewClient timeouts = %+v, want defaults", c.timeouts)
	}
	// ...and honors explicit ones.
	c = NewClient(ClientOptions{Timeouts: OpTimeouts{Fetch: time.Second}})
	if c.timeouts.Fetch != time.Second || c.timeouts.Status != def.Status {
		t.Fatalf("NewClient mixed timeouts = %+v", c.timeouts)
	}
}

// TestPeerPerOpDeadline pins that the deadline actually cuts a stalled
// control-plane call: a peer that never answers fails the fetch in
// ~the op deadline instead of the old transport-wide 10s.
func TestPeerPerOpDeadline(t *testing.T) {
	stall := make(chan struct{})
	defer close(stall)
	slow := newLocalServer(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
		}
	}))
	c := NewClient(ClientOptions{Timeouts: OpTimeouts{Fetch: 50 * time.Millisecond}})
	start := time.Now()
	_, _, err := c.FetchResult(context.Background(), slow, "deadbeefdeadbeef")
	if err == nil {
		t.Fatal("stalled fetch returned no error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled fetch took %v; the 50ms op deadline never cut it", elapsed)
	}
}
