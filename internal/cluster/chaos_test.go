package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"catch/internal/fault"
	"catch/internal/runner"
)

// TestClusterKillOnePeer is the chaos tentpole: a peer dies mid-cluster,
// the ring reroutes its shard to the survivors, and the sweep completes
// with byte-identical output. Results are content-addressed, so a
// reroute can only recompute — never diverge.
func TestClusterKillOnePeer(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, nil)

	// Kill a non-coordinator before the sweep starts. Its engine is
	// still alive in-process, but every HTTP call to it now fails the
	// way a crashed catchd would.
	tc.servers[1].Close()

	out := tc.sweep(t, 0)
	for _, jr := range out {
		if jr.Status != runner.StatusOK {
			t.Fatalf("job %s finished %q (err %q) with a dead peer", jr.Key[:12], jr.Status, jr.Err)
		}
	}
	if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
		t.Fatal("sweep with a dead peer diverged from the single-node run")
	}

	// The dead peer computed nothing; the survivors absorbed its shard.
	if n := tc.engines[1].Executed(); n != 0 {
		t.Fatalf("dead peer executed %d jobs", n)
	}
	if tc.engines[0].Executed()+tc.engines[2].Executed() == 0 {
		t.Fatal("no survivor executed anything")
	}
}

// TestClusterPeerFaultInjection drives the same degradation through the
// fault injector instead of a closed socket: every peer call from the
// coordinator fails deterministically, the per-peer breakers trip, and
// the sweep still completes exactly via rerouted local compute.
func TestClusterPeerFaultInjection(t *testing.T) {
	ref := singleNodeFlatten(t)
	inj := fault.NewInjector(fault.Plan{
		Seed:  42,
		Rules: map[fault.Kind]fault.Rule{fault.Peer: {Prob: 1, Times: 1 << 20}},
	})
	tc := newTestCluster(t, 3, func(i int, o *Options) {
		if i == 0 {
			o.Fault = inj
			// One failure is enough here: the sweep reroutes after the
			// first failed dispatch, so each peer sees few calls.
			o.BreakerThreshold = 1
		}
	})

	out := tc.sweep(t, 0)
	for _, jr := range out {
		if jr.Status != runner.StatusOK {
			t.Fatalf("job %s finished %q (err %q) under peer faults", jr.Key[:12], jr.Status, jr.Err)
		}
	}
	if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
		t.Fatal("sweep under injected peer faults diverged from the single-node run")
	}

	// With every outbound peer call failing, the coordinator must have
	// computed the whole grid itself.
	g := testGrid()
	if n := tc.engines[0].Executed(); n != uint64(len(g.Jobs())) {
		t.Fatalf("coordinator executed %d jobs, want all %d", n, len(g.Jobs()))
	}

	// The injected failures are visible as tripped peer breakers in the
	// coordinator's status document.
	resp, err := http.Get(tc.urls[0] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	open := 0
	for _, p := range doc.Peers {
		if !p.Self && p.Breaker == "open" {
			open++
		}
	}
	if open == 0 {
		t.Fatal("no peer breaker opened under a 100% fault plan")
	}

	// Degradation is graceful both ways: a node without the injector
	// still reaches its peers, and its sweep lands on the same bytes.
	// (The degraded sweep cached everything on the coordinator, not on
	// the ring owners, so the survivors may recompute their shards —
	// but the coordinator itself serves straight from its cache.)
	before := tc.engines[0].Executed()
	out2 := tc.sweep(t, 1)
	if got := mustFlatten(t, out2); !bytes.Equal(got, ref) {
		t.Fatal("follow-up sweep from a healthy node diverged")
	}
	if tc.engines[0].Executed() != before {
		t.Fatal("coordinator recomputed jobs already in its cache")
	}
}

// TestClusterFaultInjectionIsDeterministic pins that the chaos schedule
// is a pure function of the plan: two injectors with the same seed make
// identical fire decisions at identical sites.
func TestClusterFaultInjectionIsDeterministic(t *testing.T) {
	plan := fault.Plan{Seed: 7, Rules: map[fault.Kind]fault.Rule{fault.Peer: {Prob: 0.5, Times: 3}}}
	a, b := fault.NewInjector(plan), fault.NewInjector(plan)
	sites := []string{"shard:http://a:1", "fetch:http://b:1", "steal:http://c:1", "fill:http://a:1"}
	for round := 0; round < 5; round++ {
		for _, s := range sites {
			if a.Fire(fault.Peer, s) != b.Fire(fault.Peer, s) {
				t.Fatalf("injectors with the same plan disagreed at %s round %d", s, round)
			}
		}
	}
}
