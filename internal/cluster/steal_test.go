package cluster

import (
	"context"
	"testing"
	"time"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/runner"
)

func stealJobs(n int) []runner.Job {
	jobs := make([]runner.Job, n)
	for i := range jobs {
		jobs[i] = runner.STJob(config.BaselineExclusive(), "mcf", int64(1000+i), 400)
	}
	return jobs
}

func TestStealQueueRoundtrip(t *testing.T) {
	q := newStealQueue()
	jobs := stealJobs(5)
	items, ok := q.begin(jobs)
	if !ok || len(items) != 5 {
		t.Fatalf("begin = (%d items, %v)", len(items), ok)
	}
	if _, again := q.begin(jobs); again {
		t.Fatal("second concurrent begin succeeded; shards must serialize")
	}

	// A stealer takes the tail; local workers keep the head.
	stolen := q.steal(2)
	if len(stolen) != 2 || stolen[0].Key() != items[3].key || stolen[1].Key() != items[4].key {
		t.Fatalf("steal(2) returned %d jobs, want the queue tail", len(stolen))
	}
	if q.queueLen() != 3 || q.lentCount() != 2 {
		t.Fatalf("after steal: queueLen=%d lent=%d, want 3/2", q.queueLen(), q.lentCount())
	}
	if it, ok := q.pop(); !ok || it.idx != 0 {
		t.Fatalf("pop() = (%d, %v), want head item 0", it.idx, ok)
	}

	// Fill both; awaitLent returns immediately with nothing to reclaim.
	rs := []core.Result{{Workload: "mcf", IPC: 1}}
	if !q.fill(items[3].key, rs) {
		t.Fatal("fill of a lent key reported not-outstanding")
	}
	if !q.fill(items[4].key, rs) {
		t.Fatal("fill of a lent key reported not-outstanding")
	}
	if got := q.awaitLent(context.Background(), time.Minute); len(got) != 0 {
		t.Fatalf("awaitLent reclaimed %d filled jobs", len(got))
	}
	if got, ok := q.takeFilled(items[3].key); !ok || len(got) != 1 {
		t.Fatal("filled results were not retrievable")
	}

	q.end()
	if q.steal(1) != nil {
		t.Fatal("steal from an inactive queue returned jobs")
	}
	stolenN, _ := q.counters()
	if stolenN != 2 {
		t.Fatalf("stolen counter = %d, want 2", stolenN)
	}
}

// TestStealQueueReclaim pins the no-lost-work guarantee: a stealer that
// never fills is timed out and its jobs come back in shard order.
func TestStealQueueReclaim(t *testing.T) {
	q := newStealQueue()
	jobs := stealJobs(4)
	items, _ := q.begin(jobs)
	defer q.end()

	if n := len(q.steal(3)); n != 3 {
		t.Fatalf("steal(3) = %d jobs", n)
	}
	rs := []core.Result{{Workload: "mcf", IPC: 1}}
	if !q.fill(items[2].key, rs) {
		t.Fatal("fill of a lent key reported not-outstanding")
	}
	start := time.Now()
	reclaimed := q.awaitLent(context.Background(), 30*time.Millisecond)
	if time.Since(start) > 5*time.Second {
		t.Fatal("awaitLent ignored its deadline")
	}
	if len(reclaimed) != 2 || reclaimed[0].idx != 1 || reclaimed[1].idx != 3 {
		t.Fatalf("reclaimed %d items (%v), want shard-ordered items 1 and 3", len(reclaimed), reclaimed)
	}
	_, reclaimedN := q.counters()
	if reclaimedN != 2 {
		t.Fatalf("reclaimed counter = %d, want 2", reclaimedN)
	}

	// A very late fill after reclaim is accepted harmlessly.
	if q.fill(items[1].key, rs) {
		t.Fatal("fill after reclaim still counted as outstanding")
	}
}

func TestStealQueueCanceledContext(t *testing.T) {
	q := newStealQueue()
	items, _ := q.begin(stealJobs(2))
	defer q.end()
	q.steal(2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reclaimed := q.awaitLent(ctx, time.Minute)
	if len(reclaimed) != 2 || reclaimed[0].idx != items[0].idx {
		t.Fatalf("canceled awaitLent reclaimed %d items", len(reclaimed))
	}
}

// TestHandleFillUnsolicited pins that a fill for a key that was never
// lent (or was already reclaimed) still lands in the cache: the result
// is content-addressed, so it is valid wherever it came from.
func TestHandleFillUnsolicited(t *testing.T) {
	eng := runner.New(runner.Options{Workers: 1, Cache: runner.NewCache("")})
	n, err := NewNode(Options{Self: "http://a:1", Peers: []string{"http://a:1"}, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	key := stealJobs(1)[0].Key()
	rs := []core.Result{{Workload: "mcf", IPC: 1}}
	ctx := context.Background()
	if err := n.HandleFill(ctx, key, rs, false); err != nil {
		t.Fatalf("HandleFill: %v", err)
	}
	if got, ok := eng.Cache().Get(key); !ok || len(got) != 1 {
		t.Fatal("unsolicited fill did not land in the cache")
	}
	if err := n.HandleFill(ctx, "not hex!", rs, false); err == nil {
		t.Fatal("HandleFill accepted a malformed key")
	}
	if err := n.HandleFill(ctx, key, nil, false); err == nil {
		t.Fatal("HandleFill accepted empty results")
	}
}
