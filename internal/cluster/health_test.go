package cluster

import (
	"context"
	"testing"
)

func testHealth() *Health {
	return newHealth("http://a:1", []string{"http://a:1", "http://b:1", "http://c:1"}, 0, 0)
}

// TestHealthStateMachine pins the counted-failure transitions: one
// miss suspects, three consecutive misses condemn, one success heals
// from anywhere, and the counters reset on success.
func TestHealthStateMachine(t *testing.T) {
	h := testHealth()
	peer := "http://b:1"

	if st := h.State(peer); st != MemberLive {
		t.Fatalf("initial state = %s, want live", st)
	}
	tr, changed := h.observe(peer, false)
	if !changed || tr.From != MemberLive || tr.To != MemberSuspect {
		t.Fatalf("first miss: %v changed=%v, want live -> suspect", tr, changed)
	}
	if _, changed := h.observe(peer, false); changed {
		t.Fatal("second miss transitioned; down needs three")
	}
	tr, changed = h.observe(peer, false)
	if !changed || tr.To != MemberDown {
		t.Fatalf("third miss: %v changed=%v, want suspect -> down", tr, changed)
	}
	if !h.Down()[peer] {
		t.Fatal("down set misses the condemned peer")
	}
	if h.Down()["http://c:1"] {
		t.Fatal("down set includes a live peer")
	}
	tr, changed = h.observe(peer, true)
	if !changed || tr.To != MemberLive {
		t.Fatalf("success: %v changed=%v, want down -> live", tr, changed)
	}
	// Healed means fully healed: the next miss starts from scratch.
	if tr, _ := h.observe(peer, false); tr.To != MemberSuspect {
		t.Fatalf("post-heal miss moved to %s, want suspect", tr.To)
	}
}

// TestHealthSuspectIsRoutableButNotFillable pins the asymmetry suspect
// introduces: a suspect peer still owns its ring ranges (not in the
// down set) but no longer receives replica fills (unroutable).
func TestHealthSuspectIsRoutableButNotFillable(t *testing.T) {
	h := testHealth()
	peer := "http://b:1"
	h.observe(peer, false)
	if st := h.State(peer); st != MemberSuspect {
		t.Fatalf("state = %s, want suspect", st)
	}
	if h.Down()[peer] {
		t.Fatal("suspect peer landed in the down set")
	}
	if !h.Unroutable(peer) {
		t.Fatal("suspect peer still counts as fillable")
	}
	live, suspect, down := h.Counts()
	if live != 1 || suspect != 1 || down != 0 {
		t.Fatalf("counts = %d/%d/%d, want 1/1/0", live, suspect, down)
	}
}

// TestHealthSelfAndUnknown pins the edges: a node never tracks itself,
// and peers outside the membership read as live without entering the
// view.
func TestHealthSelfAndUnknown(t *testing.T) {
	h := testHealth()
	if st := h.State("http://a:1"); st != MemberLive {
		t.Fatalf("self state = %s", st)
	}
	if _, changed := h.observe("http://zzz:9", false); changed {
		t.Fatal("observing an unknown peer changed the view")
	}
	if st := h.State("http://zzz:9"); st != MemberLive {
		t.Fatalf("unknown peer state = %s", st)
	}
	if len(h.snapshot()) != 2 {
		t.Fatalf("snapshot has %d entries, want the 2 peers", len(h.snapshot()))
	}
}

// TestHealthThresholdClamping pins that a down budget below the
// suspect budget is lifted, never inverted.
func TestHealthThresholdClamping(t *testing.T) {
	h := newHealth("a", []string{"a", "b"}, 5, 2)
	if h.suspectAfter != 5 || h.downAfter < 5 {
		t.Fatalf("thresholds = %d/%d; down must not trigger before suspect", h.suspectAfter, h.downAfter)
	}
}

// TestProbeOnceTransitions drives the prober against a real cluster:
// probe outcomes move the membership view, and the transitions come
// back in deterministic (sorted-peer) order.
func TestProbeOnceTransitions(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	ctx := context.Background()

	if trs := tc.nodes[0].ProbeOnce(ctx); len(trs) != 0 {
		t.Fatalf("probing a healthy cluster transitioned %v", trs)
	}
	tc.kill(1)
	trs := tc.nodes[0].ProbeOnce(ctx)
	if len(trs) != 1 || trs[0].Peer != tc.urls[1] || trs[0].To != MemberSuspect {
		t.Fatalf("first failed probe round: %v, want %s suspect", trs, tc.urls[1])
	}
	tc.nodes[0].ProbeOnce(ctx)
	trs = tc.nodes[0].ProbeOnce(ctx)
	if len(trs) != 1 || trs[0].To != MemberDown {
		t.Fatalf("third failed probe round: %v, want down", trs)
	}
	if got := tc.nodes[0].mProbes.Value(); got != 8 {
		t.Fatalf("probe counter = %d, want 8 (4 rounds x 2 peers)", got)
	}
	if got := tc.nodes[0].mProbeFails.Value(); got != 3 {
		t.Fatalf("probe failure counter = %d, want 3", got)
	}

	tc.restart(1)
	trs = tc.nodes[0].ProbeOnce(ctx)
	if len(trs) != 1 || trs[0].From != MemberDown || trs[0].To != MemberLive {
		t.Fatalf("post-restart probe round: %v, want down -> live", trs)
	}
}

// TestHealthSummaryLine pins the /healthz one-liner an operator greps
// during an incident.
func TestHealthSummaryLine(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()
	tc.kill(2)
	for i := 0; i < 3; i++ {
		tc.nodes[0].ProbeOnce(ctx)
	}
	tc.nodes[0].hints.add(tc.urls[2], "deadbeefdeadbeef")

	want := "replicas=2 live=2 suspect=0 down=1 hints=1 unreplicated=1"
	if got := tc.nodes[0].HealthSummary(); got != want {
		t.Fatalf("HealthSummary() = %q, want %q", got, want)
	}
}
