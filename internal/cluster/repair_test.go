package cluster

import (
	"bytes"
	"context"
	"testing"
)

// TestRepairOnceFillsGaps pins the anti-entropy pass: a node holding
// results its peers lack (here: a cluster warmed with replication off,
// then raised to R=2 conceptually via a fresh sweep path) pushes
// exactly the missing copies, and a second pass is quiet.
func TestRepairOnceFillsGaps(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()
	keys := jobKeys()

	// Warm ONLY node 0's cache by computing locally, bypassing the
	// sweep path (and hence normal replication): the cluster now has
	// every key on one node and nowhere else.
	g := testGrid()
	out := tc.engines[0].Run(ctx, g.Jobs())
	if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
		t.Fatal("local warm run diverged")
	}

	fills, err := tc.nodes[0].RepairOnce(ctx)
	if err != nil {
		t.Fatalf("RepairOnce: %v", err)
	}
	if fills == 0 {
		t.Fatal("repair pushed nothing with every replica missing")
	}
	// Every key is now on its full replica set — note node 0 pushes to
	// owners even for keys it does not own, so placement is correct,
	// not just "some copy exists".
	assertReplicated(t, tc, keys, 2)
	if got := tc.nodes[0].mRepairFills.Value(); got != uint64(fills) {
		t.Fatalf("repair counter = %d, want %d", got, fills)
	}

	// Convergence: a second pass finds nothing to do.
	again, err := tc.nodes[0].RepairOnce(ctx)
	if err != nil {
		t.Fatalf("second RepairOnce: %v", err)
	}
	if again != 0 {
		t.Fatalf("second repair pass pushed %d fills, want 0", again)
	}
}

// TestRepairSkipsCondemnedPeers pins that repair never waits on a dead
// socket: a down peer's gaps persist to the next pass instead of
// stalling this one.
func TestRepairSkipsCondemnedPeers(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()

	g := testGrid()
	tc.engines[0].Run(ctx, g.Jobs())

	tc.kill(1)
	for i := 0; i < 3; i++ {
		tc.nodes[0].ProbeOnce(ctx)
	}
	if _, err := tc.nodes[0].RepairOnce(ctx); err != nil {
		t.Fatalf("RepairOnce with a down peer: %v", err)
	}
	// Node 2 got its copies; node 1 (down) got none and recovers later.
	for _, key := range jobKeys() {
		for _, owner := range tc.nodes[0].Ring().Owners(key, 2, nil) {
			if owner != tc.urls[2] {
				continue
			}
			if _, ok := tc.engines[2].Cache().Get(key); !ok {
				t.Fatalf("live replica %s never repaired while a sibling was down", shortKey(key))
			}
		}
	}
	if n := len(tc.engines[1].Cache().Keys()); n != 0 {
		t.Fatalf("dead peer somehow received %d repair fills", n)
	}

	// The peer returns; the next pass closes its gaps too.
	tc.restart(1)
	tc.nodes[0].ProbeOnce(ctx)
	if _, err := tc.nodes[0].RepairOnce(ctx); err != nil {
		t.Fatalf("post-restart RepairOnce: %v", err)
	}
	assertReplicated(t, tc, jobKeys(), 2)
}

// TestRepairNoopBelowReplication pins that R=1 clusters (the legacy
// configuration) never run repair traffic.
func TestRepairNoopBelowReplication(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	g := testGrid()
	tc.engines[0].Run(context.Background(), g.Jobs())
	fills, err := tc.nodes[0].RepairOnce(context.Background())
	if err != nil || fills != 0 {
		t.Fatalf("RepairOnce on R=1 = (%d, %v), want (0, nil)", fills, err)
	}
}
