package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// localOnlyHeader marks cluster-internal requests: a peer answering
// one must resolve it from its local tiers only, so two nodes can
// never fetch from each other in a cycle.
const localOnlyHeader = "X-Catch-Cluster-Local"

// OpTimeouts bounds each peer-call kind with its own deadline. The
// control-plane calls (fetch, status, steal, fill, manifest) are
// small JSON exchanges that deserve tight deadlines; a shard dispatch
// runs whole simulations on the peer and must never be cut by a
// client-side default — only the sweep's own context bounds it. A
// zero field means "no client-imposed deadline beyond the caller's
// context".
type OpTimeouts struct {
	Fetch    time.Duration
	Status   time.Duration
	Steal    time.Duration
	Fill     time.Duration
	Manifest time.Duration
	Probe    time.Duration
	Shard    time.Duration
}

// DefaultOpTimeouts returns the per-op deadlines used when
// ClientOptions leaves them unset: 10s for control-plane calls, 2s
// for the health probe (a slow answer is the signal), and no
// client-side bound on shard dispatch.
func DefaultOpTimeouts() OpTimeouts {
	return OpTimeouts{
		Fetch:    10 * time.Second,
		Status:   10 * time.Second,
		Steal:    10 * time.Second,
		Fill:     10 * time.Second,
		Manifest: 10 * time.Second,
		Probe:    2 * time.Second,
		Shard:    0,
	}
}

// WithDefault fills every control-plane field from d (the -peer-timeout
// flag), keeping the probe deadline at min(d, default) so failure
// detection stays snappy even under a generous control-plane budget.
func (t OpTimeouts) WithDefault(d time.Duration) OpTimeouts {
	if d <= 0 {
		return t
	}
	t.Fetch, t.Status, t.Steal, t.Fill, t.Manifest = d, d, d, d, d
	if probe := DefaultOpTimeouts().Probe; d > probe {
		t.Probe = probe
	} else {
		t.Probe = d
	}
	return t
}

// forOp maps an op name to its deadline.
func (t OpTimeouts) forOp(op string) time.Duration {
	switch op {
	case "fetch":
		return t.Fetch
	case "status":
		return t.Status
	case "steal":
		return t.Steal
	case "fill":
		return t.Fill
	case "manifest":
		return t.Manifest
	case "probe":
		return t.Probe
	case "shard":
		return t.Shard
	}
	return 0
}

// Client is the HTTP client one node uses to talk to its peers. Every
// peer has its own circuit breaker: a dead peer fails fast after a few
// attempts instead of stalling each lookup, and heals through the
// standard half-open probe. A fault.Injector (chaos mode) can make any
// peer call fail deterministically via the fault.Peer kind; peer-call
// sites embed the target peer's URL, so a matched rule severs exactly
// the links to one peer (the partition chaos tests are built on this).
type Client struct {
	http     *http.Client
	thresh   int
	cooldown int
	timeouts OpTimeouts

	mu  sync.Mutex
	inj *fault.Injector
	brs map[string]*fault.Breaker

	mFetchSeconds *telemetry.Histogram
	mCalls        *telemetry.Counter
	mErrs         *telemetry.Counter
	mSheds        *telemetry.Counter
}

// ClientOptions configures a peer client.
type ClientOptions struct {
	// HTTPClient is the transport; nil means a default client with no
	// overall timeout — deadlines are per-op via Timeouts, so a long
	// shard dispatch is never cut by a transport-wide budget.
	HTTPClient *http.Client
	// Timeouts bounds each call kind; zero fields take
	// DefaultOpTimeouts (control-plane 10s, probe 2s, shard unbounded).
	Timeouts OpTimeouts
	// Fault injects deterministic peer-call failures (chaos only).
	Fault *fault.Injector
	// BreakerThreshold/BreakerCooldown parameterize each peer's
	// breaker; non-positive values take fault.NewBreaker's defaults.
	BreakerThreshold int
	BreakerCooldown  int
	// Metrics, when non-nil, receives the peer-call series (latency
	// histogram, call/error/shed counters).
	Metrics *telemetry.Registry
}

// NewClient builds a peer client.
func NewClient(o ClientOptions) *Client {
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	def := DefaultOpTimeouts()
	t := o.Timeouts
	if t.Fetch == 0 {
		t.Fetch = def.Fetch
	}
	if t.Status == 0 {
		t.Status = def.Status
	}
	if t.Steal == 0 {
		t.Steal = def.Steal
	}
	if t.Fill == 0 {
		t.Fill = def.Fill
	}
	if t.Manifest == 0 {
		t.Manifest = def.Manifest
	}
	if t.Probe == 0 {
		t.Probe = def.Probe
	}
	c := &Client{
		http:     hc,
		inj:      o.Fault,
		thresh:   o.BreakerThreshold,
		cooldown: o.BreakerCooldown,
		timeouts: t,
		brs:      make(map[string]*fault.Breaker),
	}
	if r := o.Metrics; r != nil {
		c.mFetchSeconds = r.Histogram("catch_cluster_peer_fetch_seconds",
			"Wall-clock latency of one peer call (result fetch, shard, steal, fill, probe).",
			0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10)
		c.mCalls = r.Counter("catch_cluster_peer_calls_total", "Peer calls attempted.")
		c.mErrs = r.Counter("catch_cluster_peer_errors_total", "Peer calls that failed (breaker fodder).")
		c.mSheds = r.Counter("catch_cluster_peer_sheds_total",
			"Peer calls answered 503 + Retry-After (peer alive but shedding; not breaker fodder).")
	}
	return c
}

// SetFault swaps the client's fault injector at runtime. Chaos tests
// use it to impose and heal a network partition mid-test; production
// never calls it.
func (c *Client) SetFault(inj *fault.Injector) {
	c.mu.Lock()
	c.inj = inj
	c.mu.Unlock()
}

func (c *Client) injector() *fault.Injector {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inj
}

// breaker returns the breaker guarding peer, creating it on first use.
func (c *Client) breaker(peer string) *fault.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	br, ok := c.brs[peer]
	if !ok {
		br = fault.NewBreaker(c.thresh, c.cooldown)
		c.brs[peer] = br
	}
	return br
}

// BreakerState exposes a peer's breaker state for /v1/cluster/status.
func (c *Client) BreakerState(peer string) fault.BreakerState {
	return c.breaker(peer).State()
}

// do runs one peer call under the peer's breaker, the injector, the
// op's deadline and the latency histogram. op names the call kind and
// site the payload; the fault site is op+":"+peer+":"+site so a chaos
// plan can select calls by kind, by peer (partitions) or by key, and
// picks the same calls in every run.
//
// A shed response (503 + Retry-After) is classified alive-but-busy: it
// proves the peer is up, so it feeds the breaker as a success — load
// shedding must never snowball into "peer marked down" — while still
// failing this call. Everything else feeds the breaker as a failure.
func (c *Client) do(ctx context.Context, peer, op, site string, useBreaker bool, call func(ctx context.Context) error) error {
	var br *fault.Breaker
	if useBreaker {
		br = c.breaker(peer)
		if !br.Allow() {
			return fmt.Errorf("peer %s: circuit open", peer)
		}
	}
	c.mCalls.Inc()
	faultSite := op + ":" + peer + ":" + site
	if inj := c.injector(); inj != nil && inj.Fire(fault.Peer, faultSite) {
		br.Failure()
		c.mErrs.Inc()
		return inj.Err(fault.Peer, faultSite)
	}
	if d := c.timeouts.forOp(op); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	//catchlint:ignore determinism peer-call latency is observability-only and never reaches a simulation result
	start := time.Now()
	err := call(ctx)
	//catchlint:ignore determinism peer-call latency is observability-only and never reaches a simulation result
	c.mFetchSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		if IsShed(err) {
			c.mSheds.Inc()
			br.Success()
		} else {
			br.Failure()
			c.mErrs.Inc()
		}
		return err
	}
	br.Success()
	return nil
}

// getJSON performs a GET and decodes the 200 body into out. A 404
// reports found=false with no error; any other status is an error.
func (c *Client) getJSON(ctx context.Context, peer, op, site, url string, useBreaker bool, out any) (found bool, err error) {
	err = c.do(ctx, peer, op, site, useBreaker, func(ctx context.Context) error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if rerr != nil {
			return rerr
		}
		req.Header.Set(localOnlyHeader, "1")
		resp, rerr := c.http.Do(req)
		if rerr != nil {
			return rerr
		}
		defer func() { _ = resp.Body.Close() }()
		switch resp.StatusCode {
		case http.StatusOK:
			found = true
			return json.NewDecoder(resp.Body).Decode(out)
		case http.StatusNotFound:
			return nil
		default:
			return peerStatusError(peer, resp)
		}
	})
	return found, err
}

// postJSON performs a POST with a JSON body and decodes the 200
// response into out (when non-nil).
func (c *Client) postJSON(ctx context.Context, peer, op, site, url string, in, out any) error {
	return c.do(ctx, peer, op, site, true, func(ctx context.Context) error {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(localOnlyHeader, "1")
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return peerStatusError(peer, resp)
		}
		if out == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// PeerStatusError is a non-200 peer response, carrying enough
// structure to classify shed-vs-dead: a 503 with a Retry-After header
// is a live peer protecting itself (the shedding path every catchd
// runs under -shed-after), not a dead one, and must not trip the
// peer's breaker or the failure detector.
type PeerStatusError struct {
	Peer       string
	StatusCode int
	Status     string
	// RetryAfter is the parsed Retry-After header (0 when absent); a
	// caller that can defer — the hinted-handoff queue, the steal
	// loop — honors it by trying again no sooner than this.
	RetryAfter time.Duration
	Body       string
}

func (e *PeerStatusError) Error() string {
	return fmt.Sprintf("peer %s: %s: %s", e.Peer, e.Status, e.Body)
}

// Shed reports whether the response was a live peer shedding load.
func (e *PeerStatusError) Shed() bool {
	return e.StatusCode == http.StatusServiceUnavailable && e.RetryAfter > 0
}

// IsShed reports whether err is a shed response from a live peer.
func IsShed(err error) bool {
	var pse *PeerStatusError
	return errors.As(err, &pse) && pse.Shed()
}

// RetryAfter extracts the shedding peer's requested pause from err
// (0 when err is not a shed response).
func RetryAfter(err error) time.Duration {
	var pse *PeerStatusError
	if errors.As(err, &pse) && pse.Shed() {
		return pse.RetryAfter
	}
	return 0
}

// peerStatusError folds a non-200 peer response into a typed error
// carrying the status code, a parsed Retry-After and a bounded slice
// of the body for diagnosis.
func peerStatusError(peer string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	e := &PeerStatusError{
		Peer:       peer,
		StatusCode: resp.StatusCode,
		Status:     resp.Status,
		Body:       string(bytes.TrimSpace(raw)),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// resultDoc is the results-API response body.
type resultDoc struct {
	Key     string        `json:"key"`
	Results []core.Result `json:"results"`
}

// FetchResult asks peer for a cached result by key (its local tiers
// only). found=false is a clean miss.
func (c *Client) FetchResult(ctx context.Context, peer, key string) ([]core.Result, bool, error) {
	var doc resultDoc
	found, err := c.getJSON(ctx, peer, "fetch", key, peer+"/v1/results/"+key, true, &doc)
	if err != nil || !found {
		return nil, false, err
	}
	if len(doc.Results) == 0 {
		return nil, false, nil
	}
	return doc.Results, true, nil
}

// Status fetches a peer's cluster status.
func (c *Client) Status(ctx context.Context, peer string) (StatusDoc, error) {
	var doc StatusDoc
	found, err := c.getJSON(ctx, peer, "status", peer, peer+"/v1/cluster/status", true, &doc)
	if err != nil {
		return StatusDoc{}, err
	}
	if !found {
		return StatusDoc{}, fmt.Errorf("peer %s: no cluster status", peer)
	}
	return doc, nil
}

// Probe pings a peer for the failure detector. It bypasses the peer's
// breaker — the prober IS the thing that decides up/down, and an open
// breaker must not be able to mask a recovered peer — and treats a
// shed response as alive (the peer answered; it is busy, not dead).
func (c *Client) Probe(ctx context.Context, peer string) error {
	var doc pingDoc
	_, err := c.getJSON(ctx, peer, "probe", peer, peer+"/v1/cluster/ping", false, &doc)
	if err != nil && IsShed(err) {
		return nil
	}
	return err
}

// Manifest fetches the sorted list of result keys a peer holds, for
// the anti-entropy repair pass.
func (c *Client) Manifest(ctx context.Context, peer string) ([]string, error) {
	var doc manifestDoc
	found, err := c.getJSON(ctx, peer, "manifest", peer, peer+"/v1/cluster/manifest", true, &doc)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, fmt.Errorf("peer %s: no cluster manifest", peer)
	}
	return doc.Keys, nil
}

// RunShard dispatches a job shard to its owner peer and returns the
// per-job results in request order.
func (c *Client) RunShard(ctx context.Context, peer string, jobs []runner.Job, resumable bool) ([]runner.JobResult, error) {
	var resp shardResponse
	err := c.postJSON(ctx, peer, "shard", shardSite(jobs), peer+"/v1/cluster/shard",
		shardRequest{Jobs: jobs, Resumable: resumable}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Jobs) != len(jobs) {
		return nil, fmt.Errorf("peer %s: shard returned %d results for %d jobs", peer, len(resp.Jobs), len(jobs))
	}
	return resp.Jobs, nil
}

// shardSite derives a stable fault site for a shard dispatch from its
// first job key.
func shardSite(jobs []runner.Job) string {
	if len(jobs) == 0 {
		return "empty"
	}
	return jobs[0].Key()
}

// Steal asks peer to hand over up to max pending jobs from its queue.
func (c *Client) Steal(ctx context.Context, peer string, max int) ([]runner.Job, error) {
	var resp stealResponse
	if err := c.postJSON(ctx, peer, "steal", peer, peer+"/v1/cluster/steal",
		stealRequest{Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Fill returns a stolen job's results to its owner. The owner treats
// it as an authoritative completion: it lands in the owner's cache and
// fans out to the key's replica set.
func (c *Client) Fill(ctx context.Context, peer, key string, rs []core.Result) error {
	return c.postJSON(ctx, peer, "fill", key, peer+"/v1/cluster/fill",
		fillRequest{Key: key, Results: rs}, nil)
}

// ReplicaFill pushes a replica copy of a completed result to one
// member of its replica set. The receiver stores it and nothing more —
// replica fills never fan out again, so replication cannot loop.
func (c *Client) ReplicaFill(ctx context.Context, peer, key string, rs []core.Result) error {
	return c.postJSON(ctx, peer, "fill", key, peer+"/v1/cluster/fill",
		fillRequest{Key: key, Results: rs, Replica: true}, nil)
}
