package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// localOnlyHeader marks cluster-internal requests: a peer answering
// one must resolve it from its local tiers only, so two nodes can
// never fetch from each other in a cycle.
const localOnlyHeader = "X-Catch-Cluster-Local"

// Client is the HTTP client one node uses to talk to its peers. Every
// peer has its own circuit breaker: a dead peer fails fast after a few
// attempts instead of stalling each lookup, and heals through the
// standard half-open probe. A fault.Injector (chaos mode) can make any
// peer call fail deterministically via the fault.Peer kind.
type Client struct {
	http     *http.Client
	inj      *fault.Injector
	thresh   int
	cooldown int

	mu  sync.Mutex
	brs map[string]*fault.Breaker

	mFetchSeconds *telemetry.Histogram
	mCalls        *telemetry.Counter
	mErrs         *telemetry.Counter
}

// ClientOptions configures a peer client.
type ClientOptions struct {
	// HTTPClient is the transport; nil means a client with a 10s
	// overall timeout.
	HTTPClient *http.Client
	// Fault injects deterministic peer-call failures (chaos only).
	Fault *fault.Injector
	// BreakerThreshold/BreakerCooldown parameterize each peer's
	// breaker; non-positive values take fault.NewBreaker's defaults.
	BreakerThreshold int
	BreakerCooldown  int
	// Metrics, when non-nil, receives the peer-call series (latency
	// histogram, call/error counters).
	Metrics *telemetry.Registry
}

// NewClient builds a peer client.
func NewClient(o ClientOptions) *Client {
	hc := o.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	c := &Client{
		http:     hc,
		inj:      o.Fault,
		thresh:   o.BreakerThreshold,
		cooldown: o.BreakerCooldown,
		brs:      make(map[string]*fault.Breaker),
	}
	if r := o.Metrics; r != nil {
		c.mFetchSeconds = r.Histogram("catch_cluster_peer_fetch_seconds",
			"Wall-clock latency of one peer call (result fetch, shard, steal, fill).",
			0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10)
		c.mCalls = r.Counter("catch_cluster_peer_calls_total", "Peer calls attempted.")
		c.mErrs = r.Counter("catch_cluster_peer_errors_total", "Peer calls that failed (breaker fodder).")
	}
	return c
}

// breaker returns the breaker guarding peer, creating it on first use.
func (c *Client) breaker(peer string) *fault.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	br, ok := c.brs[peer]
	if !ok {
		br = fault.NewBreaker(c.thresh, c.cooldown)
		c.brs[peer] = br
	}
	return br
}

// BreakerState exposes a peer's breaker state for /v1/cluster/status.
func (c *Client) BreakerState(peer string) fault.BreakerState {
	return c.breaker(peer).State()
}

// do runs one peer call under the peer's breaker, the injector and the
// latency histogram. op names the call site for fault selection, so a
// chaos plan picks the same calls in every run.
func (c *Client) do(peer, op, site string, call func() error) error {
	br := c.breaker(peer)
	if !br.Allow() {
		return fmt.Errorf("peer %s: circuit open", peer)
	}
	c.mCalls.Inc()
	if c.inj != nil && c.inj.Fire(fault.Peer, op+":"+site) {
		br.Failure()
		c.mErrs.Inc()
		return c.inj.Err(fault.Peer, op+":"+site)
	}
	//catchlint:ignore determinism peer-call latency is observability-only and never reaches a simulation result
	start := time.Now()
	err := call()
	//catchlint:ignore determinism peer-call latency is observability-only and never reaches a simulation result
	c.mFetchSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		br.Failure()
		c.mErrs.Inc()
		return err
	}
	br.Success()
	return nil
}

// getJSON performs a GET and decodes the 200 body into out. A 404
// reports found=false with no error; any other status is an error.
func (c *Client) getJSON(ctx context.Context, peer, op, site, url string, out any) (found bool, err error) {
	err = c.do(peer, op, site, func() error {
		req, rerr := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if rerr != nil {
			return rerr
		}
		req.Header.Set(localOnlyHeader, "1")
		resp, rerr := c.http.Do(req)
		if rerr != nil {
			return rerr
		}
		defer func() { _ = resp.Body.Close() }()
		switch resp.StatusCode {
		case http.StatusOK:
			found = true
			return json.NewDecoder(resp.Body).Decode(out)
		case http.StatusNotFound:
			return nil
		default:
			return peerStatusError(peer, resp)
		}
	})
	return found, err
}

// postJSON performs a POST with a JSON body and decodes the 200
// response into out (when non-nil).
func (c *Client) postJSON(ctx context.Context, peer, op, site, url string, in, out any) error {
	return c.do(peer, op, site, func() error {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(localOnlyHeader, "1")
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			return peerStatusError(peer, resp)
		}
		if out == nil {
			_, err = io.Copy(io.Discard, resp.Body)
			return err
		}
		return json.NewDecoder(resp.Body).Decode(out)
	})
}

// peerStatusError folds a non-200 peer response into an error carrying
// a bounded slice of the body for diagnosis.
func peerStatusError(peer string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	return fmt.Errorf("peer %s: %s: %s", peer, resp.Status, bytes.TrimSpace(raw))
}

// resultDoc is the results-API response body.
type resultDoc struct {
	Key     string        `json:"key"`
	Results []core.Result `json:"results"`
}

// FetchResult asks peer for a cached result by key (its local tiers
// only). found=false is a clean miss.
func (c *Client) FetchResult(ctx context.Context, peer, key string) ([]core.Result, bool, error) {
	var doc resultDoc
	found, err := c.getJSON(ctx, peer, "fetch", key, peer+"/v1/results/"+key, &doc)
	if err != nil || !found {
		return nil, false, err
	}
	if len(doc.Results) == 0 {
		return nil, false, nil
	}
	return doc.Results, true, nil
}

// Status fetches a peer's cluster status.
func (c *Client) Status(ctx context.Context, peer string) (StatusDoc, error) {
	var doc StatusDoc
	found, err := c.getJSON(ctx, peer, "status", peer, peer+"/v1/cluster/status", &doc)
	if err != nil {
		return StatusDoc{}, err
	}
	if !found {
		return StatusDoc{}, fmt.Errorf("peer %s: no cluster status", peer)
	}
	return doc, nil
}

// RunShard dispatches a job shard to its owner peer and returns the
// per-job results in request order.
func (c *Client) RunShard(ctx context.Context, peer string, jobs []runner.Job, resumable bool) ([]runner.JobResult, error) {
	var resp shardResponse
	err := c.postJSON(ctx, peer, "shard", shardSite(jobs), peer+"/v1/cluster/shard",
		shardRequest{Jobs: jobs, Resumable: resumable}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.Jobs) != len(jobs) {
		return nil, fmt.Errorf("peer %s: shard returned %d results for %d jobs", peer, len(resp.Jobs), len(jobs))
	}
	return resp.Jobs, nil
}

// shardSite derives a stable fault site for a shard dispatch from its
// first job key.
func shardSite(jobs []runner.Job) string {
	if len(jobs) == 0 {
		return "empty"
	}
	return jobs[0].Key()
}

// Steal asks peer to hand over up to max pending jobs from its queue.
func (c *Client) Steal(ctx context.Context, peer string, max int) ([]runner.Job, error) {
	var resp stealResponse
	if err := c.postJSON(ctx, peer, "steal", peer, peer+"/v1/cluster/steal",
		stealRequest{Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Jobs, nil
}

// Fill returns a stolen job's results to its owner.
func (c *Client) Fill(ctx context.Context, peer, key string, rs []core.Result) error {
	return c.postJSON(ctx, peer, "fill", key, peer+"/v1/cluster/fill",
		fillRequest{Key: key, Results: rs}, nil)
}
