// Package cluster turns catchd into a peer cluster: a consistent-hash
// ring routes content-addressed job keys to owner shards, a tiered
// cache read path (local memory → local disk → owner peer → compute)
// absorbs reads, sweeps shard across peers with work-stealing for
// stragglers, and the results API carries full HTTP cache semantics
// (strong ETags, Cache-Control, conditional revalidation) so standard
// CDNs and proxies can front the cluster.
//
// Every mechanism degrades toward local compute: a dead peer is
// excluded by its circuit breaker, its ring range reroutes to the next
// live member, and a sweep sharded across N peers produces
// byte-identical Flatten output to the single-node run — a simulation
// is a pure function of its job, so where it executes can never change
// what it produces.
package cluster

import (
	"fmt"
	"sort"
)

// DefaultVNodes is the virtual-node count per member: enough points
// that removing one member spreads its range roughly evenly over the
// survivors instead of dumping it on one neighbor.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring. Members are hashed onto
// VNodes points each; a key is owned by the member of the first point
// clockwise from the key's hash. Membership is fixed at construction
// (catchd clusters are declared with a static -peers list); transient
// death is handled by exclusion at lookup time, which preserves the
// consistent-hashing property — only the dead member's keys move.
type Ring struct {
	vnodes  int
	members []string // sorted, deduplicated
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the ring and the member it
// maps to.
type point struct {
	hash   uint64
	member string
}

// NewRing builds a ring over members with vnodes virtual nodes per
// member (<=0 means DefaultVNodes). Duplicate members collapse; an
// empty member list yields a ring that owns nothing.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]point, 0, len(uniq)*vnodes)
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", m, v)), member: m})
		}
	}
	// Sort by hash with the member name as tiebreaker, so the ring
	// layout is a pure function of the membership set — never of map
	// order or insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the membership in sorted order.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// VNodes returns the per-member virtual-node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Owner returns the member owning key, walking clockwise from the
// key's hash and skipping members in down (nil means none). When every
// member is down (or the ring is empty) it returns "".
func (r *Ring) Owner(key string, down map[string]bool) string {
	owners := r.Owners(key, 1, down)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns the first n distinct live members clockwise from the
// key's hash: the key's replica set. The first element is the primary
// owner; the rest are the successors a replicated result fans out to,
// in the order a reader should try them. Members in down are skipped,
// which preserves the consistent-hashing property — excluding a member
// changes only the replica sets that contained it, each by exactly one
// member. Fewer than n live members yields a shorter slice; an empty
// ring yields nil.
func (r *Ring) Owners(key string, n int, down map[string]bool) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(owners) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if down[p.member] || contains(owners, p.member) {
			continue
		}
		owners = append(owners, p.member)
	}
	return owners
}

// contains reports membership in a small slice (replica sets are a
// handful of entries; a map would cost more than the scan).
func contains(s []string, v string) bool {
	for _, e := range s {
		if e == v {
			return true
		}
	}
	return false
}

// ringHash maps a string onto the ring: FNV-1a finished with the
// splitmix64 mixer, so near-identical member and key names land far
// apart.
func ringHash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
