package cluster

import (
	"context"
	"fmt"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/stats"
	"catch/internal/telemetry"
)

// Tier is one level of the cluster's result-cache hierarchy. Get
// returns (nil, nil) on a clean miss and a non-nil error on a tier
// failure (the tier's breaker then counts it; enough in a row and the
// tier is skipped entirely until a probe succeeds). Put inserts an
// entry — tiers above a hit receive the promoted entry so the next
// read stops earlier.
type Tier interface {
	// Name identifies the tier in stats, telemetry and responses
	// ("mem", "disk", "peer").
	Name() string
	// Local reports whether the tier is served from this node. Remote
	// tiers are skipped for cluster-internal fetches, so two peers can
	// never chase each other's caches in a cycle.
	Local() bool
	Get(ctx context.Context, key string) ([]core.Result, error)
	Put(key string, rs []core.Result)
}

// TierStats snapshots one tier's traffic counters.
type TierStats struct {
	Tier       string `json:"tier"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Errors     uint64 `json:"errors"`
	Promotions uint64 `json:"promotions"` // entries promoted INTO this tier
	Skipped    uint64 `json:"skipped"`    // lookups skipped by an open breaker
}

// tierSlot pairs a tier with its breaker and counters.
type tierSlot struct {
	t  Tier
	br *fault.Breaker

	hits       stats.AtomicCounter
	misses     stats.AtomicCounter
	errors     stats.AtomicCounter
	promotions stats.AtomicCounter
	skipped    stats.AtomicCounter
}

// Tiered is the ordered lookup path over the cache hierarchy: memory,
// then disk, then the owner peer. A hit at level i is promoted into
// every level above it; a failing level degrades (breaker) instead of
// failing the request — the worst case is always "compute locally".
type Tiered struct {
	slots []*tierSlot
}

// NewTiered builds the lookup path in tier order. newBreaker supplies
// one breaker per tier (nil for unguarded tiers); reg, when non-nil,
// gets per-tier hit/miss/promotion series.
func NewTiered(tiers []Tier, newBreaker func(name string) *fault.Breaker, reg *telemetry.Registry) *Tiered {
	td := &Tiered{}
	for _, t := range tiers {
		s := &tierSlot{t: t}
		if newBreaker != nil {
			s.br = newBreaker(t.Name())
		}
		td.slots = append(td.slots, s)
		if reg != nil {
			registerTierMetrics(reg, s)
		}
	}
	return td
}

// registerTierMetrics surfaces one tier's counters as baked-label
// series, read at exposition time.
func registerTierMetrics(reg *telemetry.Registry, s *tierSlot) {
	name := s.t.Name()
	read := func(c *stats.AtomicCounter) func() float64 {
		return func() float64 { return float64(c.Value()) }
	}
	reg.CounterFunc(fmt.Sprintf("catch_cluster_tier_requests_total{tier=%q,kind=\"hit\"}", name),
		"Tiered result-cache lookups by tier and outcome.", read(&s.hits))
	reg.CounterFunc(fmt.Sprintf("catch_cluster_tier_requests_total{tier=%q,kind=\"miss\"}", name),
		"Tiered result-cache lookups by tier and outcome.", read(&s.misses))
	reg.CounterFunc(fmt.Sprintf("catch_cluster_tier_requests_total{tier=%q,kind=\"error\"}", name),
		"Tiered result-cache lookups by tier and outcome.", read(&s.errors))
	reg.CounterFunc(fmt.Sprintf("catch_cluster_tier_requests_total{tier=%q,kind=\"skipped\"}", name),
		"Tiered result-cache lookups by tier and outcome.", read(&s.skipped))
	reg.CounterFunc(fmt.Sprintf("catch_cluster_tier_promotions_total{tier=%q}", name),
		"Entries promoted into this tier from a lower-tier hit.", read(&s.promotions))
	if s.br != nil {
		reg.GaugeFunc(fmt.Sprintf("catch_cluster_tier_breaker_state{tier=%q}", name),
			"Per-tier circuit breaker state: 0 closed, 1 half-open, 2 open.",
			func() float64 { return float64(s.br.State()) })
	}
}

// Get walks the tiers in order and returns the first hit plus the name
// of the tier that served it. localOnly restricts the walk to local
// tiers (cluster-internal fetches must not recurse through peers).
// A tier whose breaker is open is skipped; a tier error feeds its
// breaker and the walk continues — degradation, never failure.
func (td *Tiered) Get(ctx context.Context, key string, localOnly bool) ([]core.Result, string, bool) {
	for i, s := range td.slots {
		if localOnly && !s.t.Local() {
			continue
		}
		if !s.br.Allow() {
			s.skipped.Inc()
			continue
		}
		rs, err := s.t.Get(ctx, key)
		if err != nil {
			s.errors.Inc()
			s.br.Failure()
			continue
		}
		s.br.Success()
		if len(rs) == 0 {
			s.misses.Inc()
			continue
		}
		s.hits.Inc()
		td.promote(i, key, rs)
		return rs, s.t.Name(), true
	}
	return nil, "", false
}

// promote copies a hit into every tier above the one that served it.
func (td *Tiered) promote(hit int, key string, rs []core.Result) {
	for j := 0; j < hit; j++ {
		td.slots[j].t.Put(key, rs)
		td.slots[j].promotions.Inc()
	}
}

// Stats snapshots every tier in lookup order.
func (td *Tiered) Stats() []TierStats {
	out := make([]TierStats, 0, len(td.slots))
	for _, s := range td.slots {
		out = append(out, TierStats{
			Tier:       s.t.Name(),
			Hits:       s.hits.Value(),
			Misses:     s.misses.Value(),
			Errors:     s.errors.Value(),
			Promotions: s.promotions.Value(),
			Skipped:    s.skipped.Value(),
		})
	}
	return out
}

// memTier adapts the runner cache's in-memory layer: the existing
// content-addressed cache slots into the hierarchy unchanged.
type memTier struct{ c *runner.Cache }

func (t memTier) Name() string { return "mem" }
func (t memTier) Local() bool  { return true }
func (t memTier) Get(_ context.Context, key string) ([]core.Result, error) {
	rs, _ := t.c.GetMem(key)
	return rs, nil
}
func (t memTier) Put(key string, rs []core.Result) { t.c.PutMem(key, rs) }

// diskTier adapts the runner cache's disk layer. Disk I/O health is
// already fed into the cache's own breaker, so tier-level errors stay
// folded into misses here.
type diskTier struct{ c *runner.Cache }

func (t diskTier) Name() string { return "disk" }
func (t diskTier) Local() bool  { return true }
func (t diskTier) Get(_ context.Context, key string) ([]core.Result, error) {
	rs, _ := t.c.GetDisk(key)
	return rs, nil
}
func (t diskTier) Put(key string, rs []core.Result) { t.c.PutDisk(key, rs) }
