package cluster

import (
	"context"
	"sort"
	"sync"
	"time"

	"catch/internal/core"
	"catch/internal/runner"
)

// item is one queued job plus its position in the owning shard.
type item struct {
	idx int
	job runner.Job
	key string
}

// stealQueue is a node's journal-backed work queue for the shard it is
// currently executing. Local workers pop from the head; a remote
// stealer pops from the tail (the jobs the local workers would reach
// last), and returns each result through fill. A lent job the stealer
// never returns is reclaimed after a deadline and computed locally —
// stealing can only ever shorten a sweep, never lose work, and because
// results are content-addressed a duplicated computation is harmless.
type stealQueue struct {
	mu      sync.Mutex
	pending []item
	lent    map[string]item
	filled  map[string][]core.Result
	active  bool
	fillCh  chan struct{} // closed-and-replaced on every fill

	stolen    int
	reclaimed int
}

func newStealQueue() *stealQueue {
	return &stealQueue{
		lent:   make(map[string]item),
		filled: make(map[string][]core.Result),
		fillCh: make(chan struct{}),
	}
}

// begin arms the queue for one shard run. Only one shard runs at a
// time per node; a second concurrent begin reports false and the
// caller falls back to engine-only execution (no stealing).
func (q *stealQueue) begin(jobs []runner.Job) ([]item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.active {
		return nil, false
	}
	q.active = true
	q.pending = q.pending[:0]
	clear(q.lent)
	clear(q.filled)
	items := make([]item, len(jobs))
	for i := range jobs {
		items[i] = item{idx: i, job: jobs[i], key: jobs[i].Key()}
	}
	q.pending = append(q.pending, items...)
	return items, true
}

// end disarms the queue after the shard completes.
func (q *stealQueue) end() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.active = false
	q.pending = q.pending[:0]
	clear(q.lent)
	clear(q.filled)
}

// pop hands the head job to a local worker.
func (q *stealQueue) pop() (item, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return item{}, false
	}
	it := q.pending[0]
	q.pending = q.pending[1:]
	return it, true
}

// steal hands up to max tail jobs to a remote stealer, marking them
// lent. An inactive queue has nothing to steal.
func (q *stealQueue) steal(max int) []runner.Job {
	if max <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.active || len(q.pending) == 0 {
		return nil
	}
	n := min(max, len(q.pending))
	cut := len(q.pending) - n
	out := make([]runner.Job, 0, n)
	for _, it := range q.pending[cut:] {
		q.lent[it.key] = it
		out = append(out, it.job)
	}
	q.pending = q.pending[:cut]
	q.stolen += n
	return out
}

// fill delivers a stolen job's results. Unsolicited keys (a stale
// stealer returning after reclaim, or a key never lent) are accepted
// into the filled map harmlessly — the shard assembler only reads the
// keys it still needs. Returns whether the key was outstanding.
func (q *stealQueue) fill(key string, rs []core.Result) bool {
	if len(rs) == 0 {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.active {
		return false
	}
	_, wasLent := q.lent[key]
	delete(q.lent, key)
	q.filled[key] = rs
	// Wake every awaitLent waiter: close the current channel and arm a
	// fresh one for the next fill.
	close(q.fillCh)
	q.fillCh = make(chan struct{})
	return wasLent
}

// takeFilled removes and returns the delivered results for key.
func (q *stealQueue) takeFilled(key string) ([]core.Result, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	rs, ok := q.filled[key]
	if ok {
		delete(q.filled, key)
	}
	return rs, ok
}

// lentCount reports how many stolen jobs are still outstanding.
func (q *stealQueue) lentCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.lent)
}

// queueLen reports how many jobs are still poppable (the signal peers
// use to pick the most-loaded victim).
func (q *stealQueue) queueLen() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

// awaitLent waits until every lent job has been filled, the deadline
// passes, or ctx ends; then it reclaims whatever is still outstanding
// and returns those items (sorted by shard position) for local
// recomputation.
func (q *stealQueue) awaitLent(ctx context.Context, deadline time.Duration) []item {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	for {
		q.mu.Lock()
		if len(q.lent) == 0 {
			q.mu.Unlock()
			return nil
		}
		ch := q.fillCh
		q.mu.Unlock()
		select {
		case <-ch:
			continue
		case <-timer.C:
		case <-ctx.Done():
		}
		return q.reclaim()
	}
}

// reclaim takes back every still-lent job, in shard order.
func (q *stealQueue) reclaim() []item {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]item, 0, len(q.lent))
	keys := make([]string, 0, len(q.lent))
	for k := range q.lent {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, q.lent[k])
	}
	clear(q.lent)
	q.reclaimed += len(out)
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// counters snapshots the lifetime steal bookkeeping.
func (q *stealQueue) counters() (stolen, reclaimed int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stolen, q.reclaimed
}
