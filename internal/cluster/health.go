package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// MemberState is one peer's disposition in the shared membership view.
// The numeric values are exposed as a gauge (/metrics), so they are
// part of the observability contract: 0 healthy, 1 suspected, 2 down.
type MemberState int32

const (
	// MemberLive: the peer answers probes. It receives shards, replica
	// fills and steal traffic.
	MemberLive MemberState = 0
	// MemberSuspect: the peer has missed probes but not enough to
	// condemn it. It is still routable — a suspect peer is usually a
	// slow one, and moving its shards early would churn the ring for
	// nothing — but new replica fills to it queue as hints instead of
	// waiting on a possibly-dead socket.
	MemberSuspect MemberState = 1
	// MemberDown: the peer has missed enough consecutive probes to be
	// excluded: sweeps route around it, the peer tier skips it, and
	// everything destined to it queues as hints until it returns.
	MemberDown MemberState = 2
)

func (s MemberState) String() string {
	switch s {
	case MemberLive:
		return "live"
	case MemberSuspect:
		return "suspect"
	case MemberDown:
		return "down"
	}
	return "unknown"
}

// memberHealth is one peer's probe bookkeeping.
type memberHealth struct {
	state  MemberState
	fails  int    // consecutive failed probes
	probes uint64 // lifetime probes sent
}

// Transition is one observed membership change, returned by ProbeOnce
// so callers (and tests) see exactly what the detector decided.
type Transition struct {
	Peer string
	From MemberState
	To   MemberState
}

func (t Transition) String() string {
	return fmt.Sprintf("%s: %s -> %s", t.Peer, t.From, t.To)
}

// Health is the node's shared membership view, driven by the active
// prober and consumed by the sweep coordinator (initial down-set), the
// peer cache tier (replica walk), the steal loop (victim selection)
// and the replicator (fill-vs-hint decision).
//
// State transitions are counted in consecutive probe outcomes, never
// in wall-clock time — the same idiom as the circuit breaker's
// denied-call cooldown — so a test driving ProbeOnce by hand replays
// the exact live→suspect→down→live schedule every run.
type Health struct {
	self         string
	peers        []string // sorted, excluding self
	suspectAfter int      // consecutive failures -> suspect
	downAfter    int      // consecutive failures -> down

	mu sync.Mutex
	m  map[string]*memberHealth
}

// DefaultSuspectAfter and DefaultDownAfter are the probe-miss budgets:
// one miss makes a peer suspect, three misses condemn it.
const (
	DefaultSuspectAfter = 1
	DefaultDownAfter    = 3
)

// newHealth builds the view over the ring members, all initially live.
func newHealth(self string, members []string, suspectAfter, downAfter int) *Health {
	if suspectAfter <= 0 {
		suspectAfter = DefaultSuspectAfter
	}
	if downAfter < suspectAfter {
		downAfter = max(DefaultDownAfter, suspectAfter)
	}
	h := &Health{self: self, suspectAfter: suspectAfter, downAfter: downAfter, m: make(map[string]*memberHealth)}
	for _, m := range members {
		if m == self {
			continue
		}
		h.peers = append(h.peers, m)
		h.m[m] = &memberHealth{state: MemberLive}
	}
	sort.Strings(h.peers)
	return h
}

// observe feeds one probe outcome into the state machine and reports
// the transition it caused, if any.
func (h *Health) observe(peer string, ok bool) (Transition, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	mh, known := h.m[peer]
	if !known {
		return Transition{}, false
	}
	mh.probes++
	from := mh.state
	if ok {
		mh.fails = 0
		mh.state = MemberLive
	} else {
		mh.fails++
		switch {
		case mh.fails >= h.downAfter:
			mh.state = MemberDown
		case mh.fails >= h.suspectAfter:
			mh.state = MemberSuspect
		}
	}
	if mh.state == from {
		return Transition{}, false
	}
	return Transition{Peer: peer, From: from, To: mh.state}, true
}

// State returns a peer's current disposition (self and unknown peers
// read as live: a node never suspects itself).
func (h *Health) State(peer string) MemberState {
	h.mu.Lock()
	defer h.mu.Unlock()
	if mh, ok := h.m[peer]; ok {
		return mh.state
	}
	return MemberLive
}

// Down returns a fresh down-set — the peers currently condemned — in
// the map shape Ring.Owner/Owners consume. Suspect peers are not in
// it: they still own their ranges.
func (h *Health) Down() map[string]bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	down := make(map[string]bool)
	for _, p := range h.peers {
		if h.m[p].state == MemberDown {
			down[p] = true
		}
	}
	return down
}

// Unroutable returns the peers new replica fills should not wait on:
// the suspect and down sets together. Fills to them queue as hints.
func (h *Health) Unroutable(peer string) bool {
	return h.State(peer) != MemberLive
}

// Counts snapshots the live/suspect/down population for /healthz.
func (h *Health) Counts() (live, suspect, down int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range h.peers {
		switch h.m[p].state {
		case MemberSuspect:
			suspect++
		case MemberDown:
			down++
		default:
			live++
		}
	}
	return live, suspect, down
}

// MemberHealthDoc is one peer's view entry in /v1/cluster/status.
type MemberHealthDoc struct {
	Peer   string `json:"peer"`
	State  string `json:"state"`
	Fails  int    `json:"fails,omitempty"`  // consecutive missed probes
	Probes uint64 `json:"probes,omitempty"` // lifetime probes sent
}

// snapshot renders the view for the status endpoint, sorted by peer.
func (h *Health) snapshot() []MemberHealthDoc {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]MemberHealthDoc, 0, len(h.peers))
	for _, p := range h.peers {
		mh := h.m[p]
		out = append(out, MemberHealthDoc{Peer: p, State: mh.state.String(), Fails: mh.fails, Probes: mh.probes})
	}
	return out
}

// ProbeOnce runs one probe round: every peer is pinged in sorted
// order, the outcomes drive the membership state machine, and every
// peer that just transitioned back to live gets its hinted-handoff
// queue drained. The returned transitions let tests pin the exact
// schedule; the round is deterministic given deterministic probe
// outcomes (the fault injector's Peer kind, a closed test server).
func (n *Node) ProbeOnce(ctx context.Context) []Transition {
	var transitions []Transition
	for _, peer := range n.health.peers {
		err := n.client.Probe(ctx, peer)
		n.mProbes.Inc()
		if err != nil {
			n.mProbeFails.Inc()
		}
		tr, changed := n.health.observe(peer, err == nil)
		if !changed {
			continue
		}
		transitions = append(transitions, tr)
		n.logf("cluster: health: %s", tr)
		if tr.To == MemberLive {
			// The peer is back: push everything that queued for it
			// while it was away.
			n.DrainHints(ctx, peer)
		}
	}
	return transitions
}
