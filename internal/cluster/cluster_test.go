package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"catch/internal/config"
	"catch/internal/runner"
)

const (
	tInsts  = 10_000
	tWarmup = 4_000
)

func testConfigs() []config.SystemConfig {
	return []config.SystemConfig{
		config.BaselineExclusive(),
		config.WithCATCH(config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2"), "nol2-catch"),
	}
}

func testResolver() runner.ConfigResolver {
	m := make(map[string]config.SystemConfig)
	for _, c := range testConfigs() {
		m[c.Name] = c
	}
	return func(name string) (config.SystemConfig, bool) {
		c, ok := m[name]
		return c, ok
	}
}

func testGrid() runner.Grid {
	return runner.Grid{
		Configs:   testConfigs(),
		Workloads: []string{"hmmer", "mcf", "tpcc"},
		Insts:     tInsts,
		Warmup:    tWarmup,
	}
}

func testSweepBody() []byte {
	names := make([]string, 0, len(testConfigs()))
	for _, c := range testConfigs() {
		names = append(names, c.Name)
	}
	raw, _ := json.Marshal(runner.SweepRequest{
		Configs:   names,
		Workloads: []string{"hmmer", "mcf", "tpcc"},
		Insts:     tInsts,
		Warmup:    tWarmup,
	})
	return raw
}

// swapHandler lets an httptest server start (and get its URL assigned)
// before the cluster handler that needs the URL exists.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.h = h
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not wired yet", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// testCluster is n catchd-shaped nodes wired over loopback HTTP.
type testCluster struct {
	urls     []string
	nodes    []*Node
	engines  []*runner.Engine
	servers  []*httptest.Server
	handlers []*swapHandler
	wired    []http.Handler // each node's full handler, for restart after kill
}

// newTestCluster starts an n-node cluster. mutate, when non-nil, can
// adjust each node's Options before construction (chaos tests inject
// faults there).
func newTestCluster(t *testing.T, n int, mutate func(i int, o *Options)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	tc.handlers = make([]*swapHandler, n)
	tc.wired = make([]http.Handler, n)
	for i := 0; i < n; i++ {
		tc.handlers[i] = &swapHandler{}
		srv := httptest.NewServer(tc.handlers[i])
		t.Cleanup(srv.Close)
		tc.servers = append(tc.servers, srv)
		tc.urls = append(tc.urls, srv.URL)
	}
	for i := 0; i < n; i++ {
		eng := runner.New(runner.Options{Workers: 2, Cache: runner.NewCache("")})
		o := Options{
			Self:         tc.urls[i],
			Peers:        tc.urls,
			Engine:       eng,
			LentDeadline: 2 * time.Second,
		}
		if mutate != nil {
			mutate(i, &o)
		}
		node, err := NewNode(o)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		inner := &runner.Server{Engine: eng, Resolve: testResolver()}
		cs := &Server{Node: node, Resolve: testResolver(), Inner: inner.Handler()}
		tc.wired[i] = cs.Handler()
		tc.handlers[i].set(tc.wired[i])
		tc.nodes = append(tc.nodes, node)
		tc.engines = append(tc.engines, eng)
	}
	return tc
}

// kill makes node i answer every request 503 (text/plain, no
// Retry-After: a crashed catchd behind a load balancer, not a
// shedding one). The process state — engine, cache, hint log — stays
// alive so restart models a quick supervisor bounce.
func (tc *testCluster) kill(i int) { tc.handlers[i].set(nil) }

// restart rewires node i's handler, modeling the supervisor bringing
// the same process state back.
func (tc *testCluster) restart(i int) { tc.handlers[i].set(tc.wired[i]) }

// newLocalServer serves h on loopback for the duration of the test and
// returns its base URL.
func newLocalServer(t *testing.T, h http.Handler) string {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv.URL
}

// sweep POSTs the standard test sweep to node i and decodes the job
// results.
func (tc *testCluster) sweep(t *testing.T, i int) []runner.JobResult {
	t.Helper()
	resp, err := http.Post(tc.urls[i]+"/v1/sweep", "application/json", bytes.NewReader(testSweepBody()))
	if err != nil {
		t.Fatalf("sweep on node %d: %v", i, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep on node %d: %s", i, resp.Status)
	}
	var doc struct {
		Jobs []runner.JobResult `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("sweep decode: %v", err)
	}
	return doc.Jobs
}

// singleNodeFlatten computes the reference output: the same grid on a
// plain single-process engine.
func singleNodeFlatten(t *testing.T) []byte {
	t.Helper()
	g := testGrid()
	out := runner.New(runner.Options{Workers: 2}).Run(context.Background(), g.Jobs())
	return mustFlatten(t, out)
}

func mustFlatten(t *testing.T, out []runner.JobResult) []byte {
	t.Helper()
	rs, err := runner.Flatten(out)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	raw, err := json.Marshal(rs)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// TestClusterSmoke is the determinism tentpole (and the make
// cluster-smoke target): a 3-node sharded sweep must Flatten to
// byte-identical output against the single-node run, and the shards
// must actually spread across the ring.
func TestClusterSmoke(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, nil)

	out := tc.sweep(t, 0)
	if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
		t.Fatal("3-node sharded sweep diverged from the single-node run")
	}

	// The ring spread the jobs: at least one peer shard executed
	// remotely (6 jobs over 3 members make an all-local split
	// astronomically unlikely, and the ring layout is deterministic).
	remote := uint64(0)
	for i := 1; i < 3; i++ {
		remote += tc.engines[i].Executed()
	}
	if remote == 0 {
		t.Fatal("no job executed on any peer; the sweep never sharded")
	}

	// A repeat sweep from a different coordinator is served from the
	// cluster's caches and stays identical.
	before := executedTotal(tc)
	out2 := tc.sweep(t, 1)
	if got := mustFlatten(t, out2); !bytes.Equal(got, ref) {
		t.Fatal("repeat sweep from another coordinator diverged")
	}
	if executedTotal(tc) != before {
		t.Fatal("repeat sweep recomputed jobs instead of hitting the caches")
	}
}

func executedTotal(tc *testCluster) uint64 {
	var n uint64
	for _, e := range tc.engines {
		n += e.Executed()
	}
	return n
}

// TestClusterStatus exercises /v1/cluster/status end to end.
func TestClusterStatus(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	resp, err := http.Get(tc.urls[1] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Self != tc.urls[1] {
		t.Fatalf("status self = %q, want %q", doc.Self, tc.urls[1])
	}
	if len(doc.Members) != 3 || doc.VNodes != DefaultVNodes {
		t.Fatalf("status members/vnodes = %d/%d", len(doc.Members), doc.VNodes)
	}
	if len(doc.Tiers) != 3 || doc.Tiers[0].Tier != "mem" || doc.Tiers[2].Tier != "peer" {
		t.Fatalf("status tiers = %+v", doc.Tiers)
	}
	self := 0
	for _, p := range doc.Peers {
		if p.Self {
			self++
		} else if p.Breaker == "" {
			t.Fatalf("peer %s has no breaker state", p.Peer)
		}
	}
	if self != 1 {
		t.Fatalf("status marks %d members as self", self)
	}
}

// TestClusterPeerFetch pins the tiered read path across nodes: a result
// cached only on its owner is served to any node, promoted into the
// asking node's local tiers, and the delegating inner handler still
// serves non-cluster routes.
func TestClusterPeerFetch(t *testing.T) {
	tc := newTestCluster(t, 3, nil)
	g := testGrid()
	job := g.Jobs()[0]
	key := job.Key()

	// Find the owner and compute the result only there.
	owner := tc.nodes[0].Ring().Owner(key, nil)
	oi := -1
	for i, u := range tc.urls {
		if u == owner {
			oi = i
		}
	}
	if oi < 0 {
		t.Fatalf("owner %q not in cluster", owner)
	}
	out := tc.engines[oi].Run(context.Background(), []runner.Job{job})
	if out[0].Err != "" {
		t.Fatal(out[0].Err)
	}

	// Ask a non-owner: the peer tier serves it.
	ask := (oi + 1) % 3
	resp, err := http.Get(fmt.Sprintf("%s/v1/results/%s", tc.urls[ask], key))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer fetch: %s", resp.Status)
	}
	if got := resp.Header.Get("X-Catch-Tier"); got != "peer" {
		t.Fatalf("served from tier %q, want peer", got)
	}
	// Promotion: the same read now hits the asking node's memory.
	resp2, err := http.Get(fmt.Sprintf("%s/v1/results/%s", tc.urls[ask], key))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp2.Body.Close() }()
	if got := resp2.Header.Get("X-Catch-Tier"); got != "mem" {
		t.Fatalf("second read served from tier %q, want mem (promotion)", got)
	}

	// The inner runner handler still serves the rest of the API.
	hr, err := http.Get(tc.urls[ask] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hr.Body.Close() }()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz through the cluster handler: %s", hr.Status)
	}
}

// TestClusterStealOnce pins the work-stealing protocol over real HTTP:
// a drained node steals from the most loaded peer, computes, and fills
// the results back.
func TestClusterStealOnce(t *testing.T) {
	tc := newTestCluster(t, 2, nil)
	victim, thief := tc.nodes[0], tc.nodes[1]

	g := testGrid()
	jobs := g.Jobs()[:3]
	items, ok := victim.queue.begin(jobs)
	if !ok {
		t.Fatal("queue.begin failed")
	}
	defer victim.queue.end()

	n, err := thief.StealOnce(context.Background())
	if err != nil {
		t.Fatalf("StealOnce: %v", err)
	}
	if n == 0 {
		t.Fatal("StealOnce computed nothing with a loaded peer available")
	}
	// Every stolen job was filled back: nothing is lent anymore, and the
	// results are retrievable exactly where the shard assembler looks.
	if victim.queue.lentCount() != 0 {
		t.Fatalf("%d jobs still lent after fill", victim.queue.lentCount())
	}
	filled := 0
	for _, it := range items {
		if rs, ok := victim.queue.takeFilled(it.key); ok && len(rs) > 0 {
			filled++
		}
	}
	if filled != n {
		t.Fatalf("filled %d results for %d stolen jobs", filled, n)
	}
}
