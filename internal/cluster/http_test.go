package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"catch/internal/runner"
)

// TestResultsRFC9111 is the conditional-request matrix for GET
// /v1/results/{key}: strong ETags, weak comparison, list and wildcard
// If-None-Match, body-less 304s, Cache-Control and Vary — the contract
// that lets any RFC-compliant cache front the cluster.
func TestResultsRFC9111(t *testing.T) {
	tc := newTestCluster(t, 1, func(_ int, o *Options) {})
	g := testGrid()
	job := g.Jobs()[0]
	key := job.Key()
	if out := tc.engines[0].Run(context.Background(), []runner.Job{job}); out[0].Err != "" {
		t.Fatal(out[0].Err)
	}
	etag := runner.ETagFor(key)

	tests := []struct {
		name        string
		key         string
		ifNoneMatch string
		wantStatus  int
		wantBody    bool
	}{
		{"plain GET hits", key, "", http.StatusOK, true},
		{"matching strong etag revalidates", key, etag, http.StatusNotModified, false},
		{"matching weak etag revalidates", key, "W/" + etag, http.StatusNotModified, false},
		{"wildcard revalidates", key, "*", http.StatusNotModified, false},
		{"match anywhere in a list revalidates", key, `"miss1", ` + etag + `, "miss2"`, http.StatusNotModified, false},
		{"list without a match serves the body", key, `"miss1", "miss2"`, http.StatusOK, true},
		{"stale etag serves the body", key, `"0123456789abcdef"`, http.StatusOK, true},
		{"unquoted key is not a valid etag", key, key, http.StatusOK, true},
		{"malformed key is the client's error", "not-a-key!", "", http.StatusBadRequest, true},
		{"uppercase hex is malformed", strings.ToUpper(key), "", http.StatusBadRequest, true},
		{"too-short key is malformed", "abc123", "", http.StatusBadRequest, true},
		{"missing key is a clean 404", strings.Repeat("ab", 32), "", http.StatusNotFound, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			req, err := http.NewRequest(http.MethodGet, tc.urls[0]+"/v1/results/"+tt.key, nil)
			if err != nil {
				t.Fatal(err)
			}
			if tt.ifNoneMatch != "" {
				req.Header.Set("If-None-Match", tt.ifNoneMatch)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = resp.Body.Close() }()
			if resp.StatusCode != tt.wantStatus {
				t.Fatalf("status = %s, want %d", resp.Status, tt.wantStatus)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if tt.wantBody && len(body) == 0 {
				t.Fatal("response has no body")
			}
			if !tt.wantBody && len(body) != 0 {
				t.Fatalf("304 carried a %d-byte body; RFC 9110 forbids one", len(body))
			}
			if tt.wantStatus >= http.StatusBadRequest {
				return // error responses carry no cache headers worth pinning
			}
			// Validator and freshness headers ride both the 200 and the
			// 304, so a fronting cache can refresh its entry either way.
			if got := resp.Header.Get("ETag"); got != etag {
				t.Fatalf("ETag = %q, want %q", got, etag)
			}
			cc := resp.Header.Get("Cache-Control")
			for _, directive := range []string{"public", "max-age=31536000", "immutable"} {
				if !strings.Contains(cc, directive) {
					t.Fatalf("Cache-Control %q lacks %q", cc, directive)
				}
			}
			if got := resp.Header.Get("Vary"); got != "Accept-Encoding" {
				t.Fatalf("Vary = %q, want Accept-Encoding", got)
			}
		})
	}
}

// TestResultsMaxAgeConfigurable pins that -result-max-age reaches the
// Cache-Control header.
func TestResultsMaxAgeConfigurable(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	g := testGrid()
	job := g.Jobs()[0]
	if out := tc.engines[0].Run(context.Background(), []runner.Job{job}); out[0].Err != "" {
		t.Fatal(out[0].Err)
	}
	cs := &Server{Node: tc.nodes[0], Resolve: testResolver(), ResultMaxAge: 90 * time.Second}
	srv := newLocalServer(t, cs.Handler())
	resp, err := http.Get(srv + "/v1/results/" + job.Key())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if cc := resp.Header.Get("Cache-Control"); !strings.Contains(cc, "max-age=90") {
		t.Fatalf("Cache-Control = %q, want max-age=90", cc)
	}
}

// TestResultsEmptyEntryIs404 pins the quarantine-race contract at the
// cluster layer: an entry that exists but holds no results is a 404,
// never a 200 with an empty body.
func TestResultsEmptyEntryIs404(t *testing.T) {
	tc := newTestCluster(t, 1, nil)
	g := testGrid()
	key := g.Jobs()[0].Key()
	// Force an empty entry past the cache's own guards: write the
	// memory map directly through a zero-length slice Put (rejected) and
	// confirm the read path never fabricates a hit.
	tc.engines[0].Cache().Put(key, nil)
	resp, err := http.Get(tc.urls[0] + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty entry served %s, want 404", resp.Status)
	}
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body.Error == "" {
		t.Fatalf("404 must carry a JSON error body (err %v)", err)
	}
}
