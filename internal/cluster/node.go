package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// Options configures a Node.
type Options struct {
	// Self is this node's advertised base URL (must appear in Peers).
	Self string
	// Peers is the static cluster membership: every node's base URL,
	// including Self. A single-element list is a cluster of one.
	Peers []string
	// VNodes is the virtual-node count per peer (<=0: DefaultVNodes).
	VNodes int
	// Engine executes local jobs (compute tier) and owns the local
	// cache whose memory and disk layers become the top two tiers.
	Engine *runner.Engine
	// Client talks to peers; nil builds a default one.
	Client *Client
	// StealBatch bounds jobs taken per steal (<=0: 4).
	StealBatch int
	// StealInterval paces the background steal loop started by Start;
	// <=0 disables background stealing (StealOnce still works).
	StealInterval time.Duration
	// LentDeadline bounds how long a shard waits for stolen jobs to be
	// filled before reclaiming them for local compute (<=0: 30s).
	LentDeadline time.Duration
	// BreakerThreshold/BreakerCooldown parameterize the per-tier
	// breakers (non-positive: fault.NewBreaker defaults).
	BreakerThreshold int
	BreakerCooldown  int
	// Replicas is how many cluster members hold each completed result
	// (<=1: owner only, the historical behavior). Capped at the
	// cluster size. With R > 1, every OK result fans out to the key's
	// first R distinct ring successors, the peer tier walks that set
	// on lookup, and fills to unroutable members queue as hints.
	Replicas int
	// ProbeInterval paces the background failure detector; <=0
	// disables background probing (ProbeOnce still works). Rounds are
	// jittered into [50%,100%] of the interval, seeded by Seed.
	ProbeInterval time.Duration
	// SuspectAfter/DownAfter are the consecutive-probe-miss budgets
	// for the suspect and down transitions (<=0: 1 and 3).
	SuspectAfter int
	DownAfter    int
	// HintCap bounds the hinted-handoff log (<=0: DefaultHintCap).
	HintCap int
	// HintPath is the hint journal file; empty keeps hints in memory
	// only (they survive peer outages, not process restarts).
	HintPath string
	// RepairInterval paces the background anti-entropy pass; <=0
	// disables it (RepairOnce still works).
	RepairInterval time.Duration
	// Seed drives the probe/repair pacing jitter.
	Seed uint64
	// Timeouts bounds each peer-call kind for the default client
	// (ignored when Client is supplied).
	Timeouts OpTimeouts
	// Fault injects deterministic peer-call failures into the default
	// client (chaos only; ignored when Client is supplied).
	Fault *fault.Injector
	// Metrics, when non-nil, receives the cluster series.
	Metrics *telemetry.Registry
	// Logf receives rare diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Node is one cluster member: the ring, the tiered read path over the
// local cache and the owner peer, the steal queue, and the shard
// executor. It is constructed once per process and shared by the HTTP
// layer.
type Node struct {
	opts   Options
	ring   *Ring
	client *Client
	tiers  *Tiered
	queue  *stealQueue
	health *Health
	hints  *hintLog

	mSteals       *telemetry.Counter
	mStolenJobs   *telemetry.Counter
	mFills        *telemetry.Counter
	mShardsIn     *telemetry.Counter
	mRerouted     *telemetry.Counter
	mPeerCompute  *telemetry.Counter
	mProbes       *telemetry.Counter
	mProbeFails   *telemetry.Counter
	mReplicaFills *telemetry.Counter
	mReplicasIn   *telemetry.Counter
	mHintsQueued  *telemetry.Counter
	mHintsDrained *telemetry.Counter
	mRepairFills  *telemetry.Counter
}

// NewNode builds a node. The engine must have a cache: the cluster's
// whole point is a shared content-addressed result space.
func NewNode(o Options) (*Node, error) {
	if o.Engine == nil || o.Engine.Cache() == nil {
		return nil, fmt.Errorf("cluster: node needs an engine with a result cache")
	}
	if o.Self == "" {
		return nil, fmt.Errorf("cluster: node needs -self, its advertised base URL")
	}
	ring := NewRing(o.Peers, o.VNodes)
	found := false
	for _, m := range ring.Members() {
		if m == o.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", o.Self, ring.Members())
	}
	if o.StealBatch <= 0 {
		o.StealBatch = 4
	}
	if o.LentDeadline <= 0 {
		o.LentDeadline = 30 * time.Second
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if members := len(ring.Members()); o.Replicas > members {
		o.Replicas = members
	}
	n := &Node{opts: o, ring: ring, client: o.Client, queue: newStealQueue()}
	if n.client == nil {
		n.client = NewClient(ClientOptions{
			Fault:            o.Fault,
			Timeouts:         o.Timeouts,
			BreakerThreshold: o.BreakerThreshold,
			BreakerCooldown:  o.BreakerCooldown,
			Metrics:          o.Metrics,
		})
	}
	n.health = newHealth(o.Self, ring.Members(), o.SuspectAfter, o.DownAfter)
	n.hints = newHintLog(o.HintCap, o.HintPath, n.logf)
	cache := o.Engine.Cache()
	newBreaker := func(name string) *fault.Breaker {
		// Local tiers ride the cache's own disk breaker; only the peer
		// tier gets a tier-level breaker here (peer calls already feed
		// per-peer breakers too, so the tier breaker is the aggregate
		// "remote fetches are not helping" switch).
		if name != "peer" {
			return nil
		}
		return fault.NewBreaker(o.BreakerThreshold, o.BreakerCooldown)
	}
	n.tiers = NewTiered([]Tier{
		memTier{c: cache},
		diskTier{c: cache},
		&peerTier{node: n},
	}, newBreaker, o.Metrics)
	if r := o.Metrics; r != nil {
		n.mSteals = r.Counter("catch_cluster_steals_total", "Successful steal calls against peers.")
		n.mStolenJobs = r.Counter("catch_cluster_stolen_jobs_total", "Jobs this node stole and computed for peers.")
		n.mFills = r.Counter("catch_cluster_fills_total", "Stolen-job results returned to this node.")
		n.mShardsIn = r.Counter("catch_cluster_shards_total", "Shard requests served for sweep coordinators.")
		n.mRerouted = r.Counter("catch_cluster_reroutes_total", "Shards rerouted after a peer failure (ring exclusion).")
		n.mPeerCompute = r.Counter("catch_cluster_lent_reclaimed_total", "Lent jobs reclaimed and recomputed locally.")
		n.mProbes = r.Counter("catch_cluster_probes_total", "Health probes sent to peers.")
		n.mProbeFails = r.Counter("catch_cluster_probe_failures_total", "Health probes that failed.")
		n.mReplicaFills = r.Counter("catch_cluster_replica_fills_total", "Replica copies pushed to peers.")
		n.mReplicasIn = r.Counter("catch_cluster_replicas_in_total", "Replica copies accepted from peers.")
		n.mHintsQueued = r.Counter("catch_cluster_hints_queued_total", "Replica fills deferred into the hint log.")
		n.mHintsDrained = r.Counter("catch_cluster_hints_drained_total", "Hinted fills delivered after a peer returned.")
		n.mRepairFills = r.Counter("catch_cluster_repair_fills_total", "Replica copies pushed by anti-entropy repair.")
		r.GaugeFunc("catch_cluster_queue_len", "Pending jobs in the steal queue.",
			func() float64 { return float64(n.queue.queueLen()) })
		r.GaugeFunc("catch_cluster_peers", "Static cluster size.",
			func() float64 { return float64(len(ring.Members())) })
		r.GaugeFunc("catch_cluster_hints_pending", "Hinted replica fills waiting for their peer to return.",
			func() float64 { return float64(n.hints.pendingCount()) })
		r.GaugeFunc("catch_cluster_unreplicated_keys", "Distinct result keys below their replication factor.",
			func() float64 { return float64(n.hints.distinctKeys()) })
		r.GaugeFunc("catch_cluster_peers_down", "Peers the failure detector currently condemns.",
			func() float64 { _, _, down := n.health.Counts(); return float64(down) })
	}
	// Counters that feed /v1/cluster/status must count even without a
	// metrics registry; standalone handles cost one atomic each.
	for _, c := range []**telemetry.Counter{
		&n.mSteals, &n.mStolenJobs, &n.mFills, &n.mShardsIn, &n.mRerouted, &n.mPeerCompute,
		&n.mProbes, &n.mProbeFails, &n.mReplicaFills, &n.mReplicasIn,
		&n.mHintsQueued, &n.mHintsDrained, &n.mRepairFills,
	} {
		if *c == nil {
			*c = &telemetry.Counter{}
		}
	}
	return n, nil
}

// Ring exposes the node's ring (status endpoint, tests).
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.opts.Self }

// Tiers exposes the tiered read path.
func (n *Node) Tiers() *Tiered { return n.tiers }

// Health exposes the failure detector's membership view.
func (n *Node) Health() *Health { return n.health }

// Replicas reports the effective replication factor.
func (n *Node) Replicas() int { return n.opts.Replicas }

// HealthSummary renders the one-line cluster view surfaced in
// /healthz: member disposition counts (self counts as live — a node
// answering /healthz is up by construction) and the backlog of
// under-replicated results.
func (n *Node) HealthSummary() string {
	live, suspect, down := n.health.Counts()
	return fmt.Sprintf("replicas=%d live=%d suspect=%d down=%d hints=%d unreplicated=%d",
		n.opts.Replicas, live+1, suspect, down, n.hints.pendingCount(), n.hints.distinctKeys())
}

// peerTier is the third cache level: fetch the result from the key's
// replica set, primary owner first, then each successor. Down peers
// are excluded before the walk; a key whose whole remote replica set
// misses (or is this node) is a structural miss.
type peerTier struct{ node *Node }

func (p *peerTier) Name() string              { return "peer" }
func (p *peerTier) Local() bool               { return false }
func (p *peerTier) Put(string, []core.Result) {}

func (p *peerTier) Get(ctx context.Context, key string) ([]core.Result, error) {
	n := p.node
	var lastErr error
	for _, owner := range n.ring.Owners(key, n.opts.Replicas, n.health.Down()) {
		if owner == n.opts.Self {
			continue // local tiers already missed; no better copy here
		}
		rs, found, err := n.client.FetchResult(ctx, owner, key)
		if err != nil {
			lastErr = err // a dead primary must not mask a live replica
			continue
		}
		if found {
			return rs, nil
		}
	}
	return nil, lastErr
}

// Lookup resolves key through the tiered read path without computing:
// local memory, local disk, then (unless localOnly) the owner peer.
// The serving tier's name is returned for observability.
func (n *Node) Lookup(ctx context.Context, key string, localOnly bool) ([]core.Result, string, bool) {
	return n.tiers.Get(ctx, key, localOnly)
}

// ExecuteShard runs one shard of a sweep on this node: jobs feed the
// steal queue, local workers pop from the head, and peers may steal
// from the tail. Completed jobs land in the engine's cache (and jl,
// when journaled); the returned results are in job order, so a
// coordinator can splice shards back together deterministically.
func (n *Node) ExecuteShard(ctx context.Context, jobs []runner.Job, jl *runner.Journal) []runner.JobResult {
	out := n.executeShard(ctx, jobs, jl)
	// Fan completed results out to their replica sets. Replication is
	// idempotent (content-addressed keys), so re-pushing a cache hit
	// costs one small call and repairs any gap a past failure left.
	if n.opts.Replicas > 1 {
		for i := range out {
			if out[i].Status == runner.StatusOK {
				n.replicate(ctx, out[i].Key, out[i].Results)
			}
		}
	}
	return out
}

// replicate pushes one completed result to every other member of its
// replica set. A member that is unroutable (suspect or down) — or
// whose fill fails — gets a hint instead: the copy is owed, and the
// drain delivers it when the member returns. The local node keeps
// serving the result meanwhile, so a minority partition degrades to
// "computed but unreplicated", never to "lost".
func (n *Node) replicate(ctx context.Context, key string, rs []core.Result) {
	for _, owner := range n.ring.Owners(key, n.opts.Replicas, nil) {
		if owner == n.opts.Self {
			continue
		}
		if n.health.Unroutable(owner) {
			if n.hints.add(owner, key) {
				n.mHintsQueued.Inc()
			}
			continue
		}
		if err := n.client.ReplicaFill(ctx, owner, key, rs); err != nil {
			if n.hints.add(owner, key) {
				n.mHintsQueued.Inc()
				n.logf("cluster: replica fill %s to %s failed (%v); hinted", shortKey(key), owner, err)
			}
			continue
		}
		n.mReplicaFills.Inc()
	}
}

// executeShard is ExecuteShard minus replication.
func (n *Node) executeShard(ctx context.Context, jobs []runner.Job, jl *runner.Journal) []runner.JobResult {
	items, armed := n.queue.begin(jobs)
	if !armed {
		// Another shard is active: run engine-only. Correct, just not
		// stealable.
		return n.opts.Engine.RunJournaled(ctx, jobs, jl)
	}
	defer n.queue.end()

	out := make([]runner.JobResult, len(jobs))
	workers := n.opts.Engine.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				it, ok := n.queue.pop()
				if !ok {
					return
				}
				out[it.idx] = n.opts.Engine.RunJournaled(ctx, []runner.Job{it.job}, jl)[0]
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	// The local queue is dry. Wait for outstanding stolen jobs; then
	// reclaim and recompute whatever a stealer never returned.
	if n.queue.lentCount() > 0 {
		reclaimed := n.queue.awaitLent(ctx, n.opts.LentDeadline)
		for _, it := range reclaimed {
			n.mPeerCompute.Inc()
			out[it.idx] = n.opts.Engine.RunJournaled(ctx, []runner.Job{it.job}, jl)[0]
		}
	}
	// Splice in the filled (stolen) results.
	for _, it := range items {
		if out[it.idx].Key != "" {
			continue
		}
		if rs, ok := n.queue.takeFilled(it.key); ok {
			n.cacheAndJournal(it.key, rs, jl)
			out[it.idx] = runner.JobResult{
				Job: it.job, Key: it.key, Results: rs, Status: runner.StatusOK, Cached: true,
			}
			continue
		}
		// Neither computed nor filled: the context ended first.
		reason := ctx.Err()
		if reason == nil {
			reason = fmt.Errorf("job was never scheduled")
		}
		out[it.idx] = runner.JobResult{Job: it.job, Key: it.key, Err: reason.Error(), Status: runner.StatusCanceled}
	}
	return out
}

// cacheAndJournal lands an externally computed result exactly where a
// local compute would have put it.
func (n *Node) cacheAndJournal(key string, rs []core.Result, jl *runner.Journal) {
	n.opts.Engine.Cache().Put(key, rs)
	if err := jl.Record(key); err != nil {
		n.logf("cluster: %v", err)
	}
}

// HandleSteal serves a peer's steal request from the local queue.
func (n *Node) HandleSteal(max int) []runner.Job {
	if max <= 0 || max > 64 {
		max = n.opts.StealBatch
	}
	return n.queue.steal(max)
}

// HandleFill accepts results pushed by a peer. An authoritative fill
// (a stolen job coming home) completes the outstanding queue entry —
// or, when none is outstanding, lands in the cache and fans out to the
// key's replica set, since this node is where the result now lives. A
// replica fill stores and stops: it is already the fan-out, and a
// receiver that re-fanned would loop copies around the ring forever.
func (n *Node) HandleFill(ctx context.Context, key string, rs []core.Result, replica bool) error {
	if !runner.ValidKey(key) || len(rs) == 0 {
		return fmt.Errorf("cluster: fill needs a valid key and non-empty results")
	}
	n.mFills.Inc()
	if replica {
		n.mReplicasIn.Inc()
		n.opts.Engine.Cache().Put(key, rs)
		return nil
	}
	if !n.queue.fill(key, rs) {
		// Not outstanding (reclaimed, or a very late stealer): the
		// results are still valid and content-addressed, keep them.
		n.opts.Engine.Cache().Put(key, rs)
		if n.opts.Replicas > 1 {
			n.replicate(ctx, key, rs)
		}
	}
	return nil
}

// StealOnce polls the peers' queue lengths and steals one batch from
// the most loaded, computing each job and filling the result back to
// its owner. It returns the number of jobs computed (0 when no peer
// had pending work).
func (n *Node) StealOnce(ctx context.Context) (int, error) {
	victim, qlen := "", 0
	for _, peer := range n.ring.Members() {
		if peer == n.opts.Self {
			continue
		}
		if n.health.State(peer) != MemberLive {
			continue // no point polling a peer the detector condemned
		}
		st, err := n.client.Status(ctx, peer)
		if err != nil {
			continue // unreachable peers are simply not victims
		}
		if st.QueueLen > qlen {
			victim, qlen = peer, st.QueueLen
		}
	}
	if victim == "" {
		return 0, nil
	}
	jobs, err := n.client.Steal(ctx, victim, n.opts.StealBatch)
	if err != nil || len(jobs) == 0 {
		return 0, err
	}
	n.mSteals.Inc()
	computed := 0
	for i := range jobs {
		rs := n.opts.Engine.Run(ctx, jobs[i:i+1])
		if rs[0].Err != "" {
			// The victim reclaims it after the lent deadline; nothing
			// else to do here.
			continue
		}
		n.mStolenJobs.Inc()
		computed++
		if err := n.client.Fill(ctx, victim, rs[0].Key, rs[0].Results); err != nil {
			n.logf("cluster: fill %s to %s failed: %v", shortKey(rs[0].Key), victim, err)
		}
	}
	return computed, nil
}

// Start launches the background loops — steal, health probing and
// anti-entropy repair — for whichever intervals are set. It returns
// immediately; every loop ends with ctx.
func (n *Node) Start(ctx context.Context) {
	if n.opts.StealInterval > 0 {
		go func() {
			t := time.NewTicker(n.opts.StealInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n.queue.queueLen() > 0 {
						continue // busy locally; don't steal
					}
					if _, err := n.StealOnce(ctx); err != nil {
						n.logf("cluster: steal: %v", err)
					}
				}
			}
		}()
	}
	if n.opts.ProbeInterval > 0 {
		go n.paceLoop(ctx, "probe", n.opts.ProbeInterval, func() {
			n.ProbeOnce(ctx)
		})
	}
	if n.opts.RepairInterval > 0 && n.opts.Replicas > 1 {
		go n.paceLoop(ctx, "repair", n.opts.RepairInterval, func() {
			if _, err := n.RepairOnce(ctx); err != nil {
				n.logf("cluster: repair: %v", err)
			}
		})
	}
}

// paceLoop runs step roughly every interval, each round jittered into
// [50%,100%] of the interval by the seeded Backoff hash — the same
// jitter discipline as retry pacing, so a fleet started together never
// probes (or repairs) in lockstep, and the schedule is a pure function
// of the seed.
func (n *Node) paceLoop(ctx context.Context, name string, interval time.Duration, step func()) {
	bo := fault.Backoff{Base: interval, Max: interval, Seed: n.opts.Seed}
	for round := 1; ; round++ {
		t := time.NewTimer(bo.Delay(fmt.Sprintf("%s:%d", name, round), 1))
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		step()
	}
}

// RunSweep coordinates a sweep across the cluster: jobs group by ring
// owner, each peer shard is dispatched in parallel, and a failed peer
// is excluded from the ring for the rest of the sweep — its jobs
// reroute (next live owner, ultimately self) until every job has a
// result. The output is in job order, so Flatten is byte-identical to
// a single-node run.
func (n *Node) RunSweep(ctx context.Context, jobs []runner.Job, jl *runner.Journal) []runner.JobResult {
	out := make([]runner.JobResult, len(jobs))
	remaining := make([]int, len(jobs))
	for i := range jobs {
		remaining[i] = i
	}
	// Seed the exclusion set from the failure detector: peers already
	// condemned never get a first (doomed) dispatch. Sweep-local
	// failures still add to the set as they happen.
	down := n.health.Down()

	for len(remaining) > 0 {
		if ctx.Err() != nil {
			for _, i := range remaining {
				out[i] = runner.JobResult{Job: jobs[i], Key: jobs[i].Key(), Err: ctx.Err().Error(), Status: runner.StatusCanceled}
			}
			return out
		}
		// Group the remaining jobs by live owner, keeping job order
		// within each group. Owners iterate in sorted order so the
		// dispatch schedule is deterministic.
		groups := make(map[string][]int)
		var owners []string
		for _, i := range remaining {
			owner := n.ring.Owner(jobs[i].Key(), down)
			if owner == "" {
				owner = n.opts.Self
			}
			if _, ok := groups[owner]; !ok {
				owners = append(owners, owner)
			}
			groups[owner] = append(groups[owner], i)
		}
		sort.Strings(owners)

		type shardOut struct {
			owner   string
			idxs    []int
			results []runner.JobResult
			err     error
		}
		ch := make(chan shardOut, len(owners))
		for _, owner := range owners {
			idxs := groups[owner]
			if owner == n.opts.Self {
				go func() {
					shard := make([]runner.Job, len(idxs))
					for k, i := range idxs {
						shard[k] = jobs[i]
					}
					ch <- shardOut{owner: n.opts.Self, idxs: idxs, results: n.ExecuteShard(ctx, shard, jl)}
				}()
				continue
			}
			go func(owner string, idxs []int) {
				shard := make([]runner.Job, len(idxs))
				for k, i := range idxs {
					shard[k] = jobs[i]
				}
				rs, err := n.client.RunShard(ctx, owner, shard, jl != nil)
				ch <- shardOut{owner: owner, idxs: idxs, results: rs, err: err}
			}(owner, idxs)
		}

		var next []int
		for range owners {
			so := <-ch
			if so.err != nil {
				// The peer is out for this sweep: exclude it from the
				// ring and reroute its jobs next round.
				n.logf("cluster: shard on %s failed (%v); rerouting %d jobs", so.owner, so.err, len(so.idxs))
				n.mRerouted.Inc()
				down[so.owner] = true
				next = append(next, so.idxs...)
				continue
			}
			for k, i := range so.idxs {
				out[i] = so.results[k]
				if so.owner != n.opts.Self && so.results[k].Status == runner.StatusOK {
					// Remote results also land in the local cache so
					// the results API serves them from tier "mem".
					n.opts.Engine.Cache().Put(so.results[k].Key, so.results[k].Results)
				}
			}
		}
		sort.Ints(next)
		remaining = next
	}
	return out
}

// Down reports the peers whose breakers are currently open (status
// endpoint).
func (n *Node) peerStates() []PeerState {
	members := n.ring.Members()
	out := make([]PeerState, 0, len(members))
	for _, m := range members {
		ps := PeerState{Peer: m, Self: m == n.opts.Self}
		if !ps.Self {
			ps.Breaker = n.client.BreakerState(m).String()
		}
		out = append(out, ps)
	}
	return out
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// shortKey abbreviates a content address for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
