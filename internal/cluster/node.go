package cluster

import (
	"context"
	"fmt"
	"sort"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
	"catch/internal/telemetry"
)

// Options configures a Node.
type Options struct {
	// Self is this node's advertised base URL (must appear in Peers).
	Self string
	// Peers is the static cluster membership: every node's base URL,
	// including Self. A single-element list is a cluster of one.
	Peers []string
	// VNodes is the virtual-node count per peer (<=0: DefaultVNodes).
	VNodes int
	// Engine executes local jobs (compute tier) and owns the local
	// cache whose memory and disk layers become the top two tiers.
	Engine *runner.Engine
	// Client talks to peers; nil builds a default one.
	Client *Client
	// StealBatch bounds jobs taken per steal (<=0: 4).
	StealBatch int
	// StealInterval paces the background steal loop started by Start;
	// <=0 disables background stealing (StealOnce still works).
	StealInterval time.Duration
	// LentDeadline bounds how long a shard waits for stolen jobs to be
	// filled before reclaiming them for local compute (<=0: 30s).
	LentDeadline time.Duration
	// BreakerThreshold/BreakerCooldown parameterize the per-tier
	// breakers (non-positive: fault.NewBreaker defaults).
	BreakerThreshold int
	BreakerCooldown  int
	// Fault injects deterministic peer-call failures into the default
	// client (chaos only; ignored when Client is supplied).
	Fault *fault.Injector
	// Metrics, when non-nil, receives the cluster series.
	Metrics *telemetry.Registry
	// Logf receives rare diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Node is one cluster member: the ring, the tiered read path over the
// local cache and the owner peer, the steal queue, and the shard
// executor. It is constructed once per process and shared by the HTTP
// layer.
type Node struct {
	opts   Options
	ring   *Ring
	client *Client
	tiers  *Tiered
	queue  *stealQueue

	mSteals      *telemetry.Counter
	mStolenJobs  *telemetry.Counter
	mFills       *telemetry.Counter
	mShardsIn    *telemetry.Counter
	mRerouted    *telemetry.Counter
	mPeerCompute *telemetry.Counter
}

// NewNode builds a node. The engine must have a cache: the cluster's
// whole point is a shared content-addressed result space.
func NewNode(o Options) (*Node, error) {
	if o.Engine == nil || o.Engine.Cache() == nil {
		return nil, fmt.Errorf("cluster: node needs an engine with a result cache")
	}
	if o.Self == "" {
		return nil, fmt.Errorf("cluster: node needs -self, its advertised base URL")
	}
	ring := NewRing(o.Peers, o.VNodes)
	found := false
	for _, m := range ring.Members() {
		if m == o.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list %v", o.Self, ring.Members())
	}
	if o.StealBatch <= 0 {
		o.StealBatch = 4
	}
	if o.LentDeadline <= 0 {
		o.LentDeadline = 30 * time.Second
	}
	n := &Node{opts: o, ring: ring, client: o.Client, queue: newStealQueue()}
	if n.client == nil {
		n.client = NewClient(ClientOptions{
			Fault:            o.Fault,
			BreakerThreshold: o.BreakerThreshold,
			BreakerCooldown:  o.BreakerCooldown,
			Metrics:          o.Metrics,
		})
	}
	cache := o.Engine.Cache()
	newBreaker := func(name string) *fault.Breaker {
		// Local tiers ride the cache's own disk breaker; only the peer
		// tier gets a tier-level breaker here (peer calls already feed
		// per-peer breakers too, so the tier breaker is the aggregate
		// "remote fetches are not helping" switch).
		if name != "peer" {
			return nil
		}
		return fault.NewBreaker(o.BreakerThreshold, o.BreakerCooldown)
	}
	n.tiers = NewTiered([]Tier{
		memTier{c: cache},
		diskTier{c: cache},
		&peerTier{node: n},
	}, newBreaker, o.Metrics)
	if r := o.Metrics; r != nil {
		n.mSteals = r.Counter("catch_cluster_steals_total", "Successful steal calls against peers.")
		n.mStolenJobs = r.Counter("catch_cluster_stolen_jobs_total", "Jobs this node stole and computed for peers.")
		n.mFills = r.Counter("catch_cluster_fills_total", "Stolen-job results returned to this node.")
		n.mShardsIn = r.Counter("catch_cluster_shards_total", "Shard requests served for sweep coordinators.")
		n.mRerouted = r.Counter("catch_cluster_reroutes_total", "Shards rerouted after a peer failure (ring exclusion).")
		n.mPeerCompute = r.Counter("catch_cluster_lent_reclaimed_total", "Lent jobs reclaimed and recomputed locally.")
		r.GaugeFunc("catch_cluster_queue_len", "Pending jobs in the steal queue.",
			func() float64 { return float64(n.queue.queueLen()) })
		r.GaugeFunc("catch_cluster_peers", "Static cluster size.",
			func() float64 { return float64(len(ring.Members())) })
	}
	return n, nil
}

// Ring exposes the node's ring (status endpoint, tests).
func (n *Node) Ring() *Ring { return n.ring }

// Self returns this node's advertised URL.
func (n *Node) Self() string { return n.opts.Self }

// Tiers exposes the tiered read path.
func (n *Node) Tiers() *Tiered { return n.tiers }

// peerTier is the third cache level: fetch the result from the key's
// owner peer. Keys this node owns are a structural miss (there is no
// better copy elsewhere), as is a cluster of one.
type peerTier struct{ node *Node }

func (p *peerTier) Name() string              { return "peer" }
func (p *peerTier) Local() bool               { return false }
func (p *peerTier) Put(string, []core.Result) {}

func (p *peerTier) Get(ctx context.Context, key string) ([]core.Result, error) {
	n := p.node
	owner := n.ring.Owner(key, nil)
	if owner == "" || owner == n.opts.Self {
		return nil, nil
	}
	rs, found, err := n.client.FetchResult(ctx, owner, key)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, nil
	}
	return rs, nil
}

// Lookup resolves key through the tiered read path without computing:
// local memory, local disk, then (unless localOnly) the owner peer.
// The serving tier's name is returned for observability.
func (n *Node) Lookup(ctx context.Context, key string, localOnly bool) ([]core.Result, string, bool) {
	return n.tiers.Get(ctx, key, localOnly)
}

// ExecuteShard runs one shard of a sweep on this node: jobs feed the
// steal queue, local workers pop from the head, and peers may steal
// from the tail. Completed jobs land in the engine's cache (and jl,
// when journaled); the returned results are in job order, so a
// coordinator can splice shards back together deterministically.
func (n *Node) ExecuteShard(ctx context.Context, jobs []runner.Job, jl *runner.Journal) []runner.JobResult {
	items, armed := n.queue.begin(jobs)
	if !armed {
		// Another shard is active: run engine-only. Correct, just not
		// stealable.
		return n.opts.Engine.RunJournaled(ctx, jobs, jl)
	}
	defer n.queue.end()

	out := make([]runner.JobResult, len(jobs))
	workers := n.opts.Engine.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for {
				it, ok := n.queue.pop()
				if !ok {
					return
				}
				out[it.idx] = n.opts.Engine.RunJournaled(ctx, []runner.Job{it.job}, jl)[0]
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}

	// The local queue is dry. Wait for outstanding stolen jobs; then
	// reclaim and recompute whatever a stealer never returned.
	if n.queue.lentCount() > 0 {
		reclaimed := n.queue.awaitLent(ctx, n.opts.LentDeadline)
		for _, it := range reclaimed {
			n.mPeerCompute.Inc()
			out[it.idx] = n.opts.Engine.RunJournaled(ctx, []runner.Job{it.job}, jl)[0]
		}
	}
	// Splice in the filled (stolen) results.
	for _, it := range items {
		if out[it.idx].Key != "" {
			continue
		}
		if rs, ok := n.queue.takeFilled(it.key); ok {
			n.cacheAndJournal(it.key, rs, jl)
			out[it.idx] = runner.JobResult{
				Job: it.job, Key: it.key, Results: rs, Status: runner.StatusOK, Cached: true,
			}
			continue
		}
		// Neither computed nor filled: the context ended first.
		reason := ctx.Err()
		if reason == nil {
			reason = fmt.Errorf("job was never scheduled")
		}
		out[it.idx] = runner.JobResult{Job: it.job, Key: it.key, Err: reason.Error(), Status: runner.StatusCanceled}
	}
	return out
}

// cacheAndJournal lands an externally computed result exactly where a
// local compute would have put it.
func (n *Node) cacheAndJournal(key string, rs []core.Result, jl *runner.Journal) {
	n.opts.Engine.Cache().Put(key, rs)
	if err := jl.Record(key); err != nil {
		n.logf("cluster: %v", err)
	}
}

// HandleSteal serves a peer's steal request from the local queue.
func (n *Node) HandleSteal(max int) []runner.Job {
	if max <= 0 || max > 64 {
		max = n.opts.StealBatch
	}
	return n.queue.steal(max)
}

// HandleFill accepts a stolen job's results from the stealer.
func (n *Node) HandleFill(key string, rs []core.Result) error {
	if !runner.ValidKey(key) || len(rs) == 0 {
		return fmt.Errorf("cluster: fill needs a valid key and non-empty results")
	}
	n.mFills.Inc()
	if !n.queue.fill(key, rs) {
		// Not outstanding (reclaimed, or a very late stealer): the
		// results are still valid and content-addressed, keep them.
		n.opts.Engine.Cache().Put(key, rs)
	}
	return nil
}

// StealOnce polls the peers' queue lengths and steals one batch from
// the most loaded, computing each job and filling the result back to
// its owner. It returns the number of jobs computed (0 when no peer
// had pending work).
func (n *Node) StealOnce(ctx context.Context) (int, error) {
	victim, qlen := "", 0
	for _, peer := range n.ring.Members() {
		if peer == n.opts.Self {
			continue
		}
		st, err := n.client.Status(ctx, peer)
		if err != nil {
			continue // unreachable peers are simply not victims
		}
		if st.QueueLen > qlen {
			victim, qlen = peer, st.QueueLen
		}
	}
	if victim == "" {
		return 0, nil
	}
	jobs, err := n.client.Steal(ctx, victim, n.opts.StealBatch)
	if err != nil || len(jobs) == 0 {
		return 0, err
	}
	n.mSteals.Inc()
	computed := 0
	for i := range jobs {
		rs := n.opts.Engine.Run(ctx, jobs[i:i+1])
		if rs[0].Err != "" {
			// The victim reclaims it after the lent deadline; nothing
			// else to do here.
			continue
		}
		n.mStolenJobs.Inc()
		computed++
		if err := n.client.Fill(ctx, victim, rs[0].Key, rs[0].Results); err != nil {
			n.logf("cluster: fill %s to %s failed: %v", shortKey(rs[0].Key), victim, err)
		}
	}
	return computed, nil
}

// Start launches the background steal loop (when StealInterval is
// set). It returns immediately; the loop ends with ctx.
func (n *Node) Start(ctx context.Context) {
	if n.opts.StealInterval <= 0 {
		return
	}
	go func() {
		t := time.NewTicker(n.opts.StealInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				if n.queue.queueLen() > 0 {
					continue // busy locally; don't steal
				}
				if _, err := n.StealOnce(ctx); err != nil {
					n.logf("cluster: steal: %v", err)
				}
			}
		}
	}()
}

// RunSweep coordinates a sweep across the cluster: jobs group by ring
// owner, each peer shard is dispatched in parallel, and a failed peer
// is excluded from the ring for the rest of the sweep — its jobs
// reroute (next live owner, ultimately self) until every job has a
// result. The output is in job order, so Flatten is byte-identical to
// a single-node run.
func (n *Node) RunSweep(ctx context.Context, jobs []runner.Job, jl *runner.Journal) []runner.JobResult {
	out := make([]runner.JobResult, len(jobs))
	remaining := make([]int, len(jobs))
	for i := range jobs {
		remaining[i] = i
	}
	down := make(map[string]bool)

	for len(remaining) > 0 {
		if ctx.Err() != nil {
			for _, i := range remaining {
				out[i] = runner.JobResult{Job: jobs[i], Key: jobs[i].Key(), Err: ctx.Err().Error(), Status: runner.StatusCanceled}
			}
			return out
		}
		// Group the remaining jobs by live owner, keeping job order
		// within each group. Owners iterate in sorted order so the
		// dispatch schedule is deterministic.
		groups := make(map[string][]int)
		var owners []string
		for _, i := range remaining {
			owner := n.ring.Owner(jobs[i].Key(), down)
			if owner == "" {
				owner = n.opts.Self
			}
			if _, ok := groups[owner]; !ok {
				owners = append(owners, owner)
			}
			groups[owner] = append(groups[owner], i)
		}
		sort.Strings(owners)

		type shardOut struct {
			owner   string
			idxs    []int
			results []runner.JobResult
			err     error
		}
		ch := make(chan shardOut, len(owners))
		for _, owner := range owners {
			idxs := groups[owner]
			if owner == n.opts.Self {
				go func() {
					shard := make([]runner.Job, len(idxs))
					for k, i := range idxs {
						shard[k] = jobs[i]
					}
					ch <- shardOut{owner: n.opts.Self, idxs: idxs, results: n.ExecuteShard(ctx, shard, jl)}
				}()
				continue
			}
			go func(owner string, idxs []int) {
				shard := make([]runner.Job, len(idxs))
				for k, i := range idxs {
					shard[k] = jobs[i]
				}
				rs, err := n.client.RunShard(ctx, owner, shard, jl != nil)
				ch <- shardOut{owner: owner, idxs: idxs, results: rs, err: err}
			}(owner, idxs)
		}

		var next []int
		for range owners {
			so := <-ch
			if so.err != nil {
				// The peer is out for this sweep: exclude it from the
				// ring and reroute its jobs next round.
				n.logf("cluster: shard on %s failed (%v); rerouting %d jobs", so.owner, so.err, len(so.idxs))
				n.mRerouted.Inc()
				down[so.owner] = true
				next = append(next, so.idxs...)
				continue
			}
			for k, i := range so.idxs {
				out[i] = so.results[k]
				if so.owner != n.opts.Self && so.results[k].Status == runner.StatusOK {
					// Remote results also land in the local cache so
					// the results API serves them from tier "mem".
					n.opts.Engine.Cache().Put(so.results[k].Key, so.results[k].Results)
				}
			}
		}
		sort.Ints(next)
		remaining = next
	}
	return out
}

// Down reports the peers whose breakers are currently open (status
// endpoint).
func (n *Node) peerStates() []PeerState {
	members := n.ring.Members()
	out := make([]PeerState, 0, len(members))
	for _, m := range members {
		ps := PeerState{Peer: m, Self: m == n.opts.Self}
		if !ps.Self {
			ps.Breaker = n.client.BreakerState(m).String()
		}
		out = append(out, ps)
	}
	return out
}

func (n *Node) logf(format string, args ...any) {
	if n.opts.Logf != nil {
		n.opts.Logf(format, args...)
	}
}

// shortKey abbreviates a content address for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
