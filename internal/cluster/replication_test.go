package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"
)

// ownerIndex maps a ring member URL back to its testCluster index.
func (tc *testCluster) ownerIndex(t *testing.T, url string) int {
	t.Helper()
	for i, u := range tc.urls {
		if u == url {
			return i
		}
	}
	t.Fatalf("url %q not in cluster", url)
	return -1
}

// jobKeys returns the standard test grid's content-addressed keys.
func jobKeys() []string {
	g := testGrid()
	jobs := g.Jobs()
	keys := make([]string, len(jobs))
	for i := range jobs {
		keys[i] = jobs[i].Key()
	}
	return keys
}

// assertReplicated fails unless every key is cached on every member of
// its replica set.
func assertReplicated(t *testing.T, tc *testCluster, keys []string, replicas int) {
	t.Helper()
	for _, key := range keys {
		for _, owner := range tc.nodes[0].Ring().Owners(key, replicas, nil) {
			oi := tc.ownerIndex(t, owner)
			if _, ok := tc.engines[oi].Cache().Get(key); !ok {
				t.Fatalf("key %s missing from replica %d (set %v)",
					shortKey(key), oi, tc.nodes[0].Ring().Owners(key, replicas, nil))
			}
		}
	}
}

// TestClusterReplicationSurvivesKill is the kill-owner chaos tentpole:
// with -replicas 2, a warm cluster loses any single peer and a
// follow-up sweep still produces byte-identical output with ZERO
// recomputation — every job that would have landed on the dead peer is
// served from a surviving replica's cache.
func TestClusterReplicationSurvivesKill(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })

	keys := jobKeys()
	out := tc.sweep(t, 0)
	if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
		t.Fatal("warm sweep diverged from the single-node run")
	}
	warm := executedTotal(tc)
	if warm != uint64(len(keys)) {
		t.Fatalf("warm sweep executed %d jobs, want %d", warm, len(keys))
	}
	// The warm sweep fanned every result out to its full replica set.
	assertReplicated(t, tc, keys, 2)

	// Kill each non-coordinator in turn: the re-sweep must stay
	// byte-identical AND compute nothing — the dead peer's shard
	// reroutes to its ring successor, which already holds the replica.
	for _, victim := range []int{1, 2} {
		tc.kill(victim)
		out := tc.sweep(t, 0)
		if got := mustFlatten(t, out); !bytes.Equal(got, ref) {
			t.Fatalf("sweep with node %d dead diverged", victim)
		}
		if n := executedTotal(tc); n != warm {
			t.Fatalf("sweep with node %d dead recomputed %d jobs; replicas should have served all of them",
				victim, n-warm)
		}
		tc.restart(victim)
	}
}

// TestClusterHintedHandoffDrain walks the full outage lifecycle: the
// prober condemns a killed peer (live → suspect → down), sweeps route
// around it from the first dispatch, replica fills owed to it queue as
// hints, and its return (down → live) drains the hints — restoring
// full replication without the peer recomputing anything.
func TestClusterHintedHandoffDrain(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()
	keys := jobKeys()

	if got := mustFlatten(t, tc.sweep(t, 0)); !bytes.Equal(got, ref) {
		t.Fatal("warm sweep diverged")
	}
	warm := executedTotal(tc)
	deadExecuted := tc.engines[2].Executed()

	tc.kill(2)
	// Three failed probe rounds condemn the peer on both survivors:
	// live → suspect on the first miss, down on the third.
	for round := 0; round < 3; round++ {
		for _, i := range []int{0, 1} {
			tc.nodes[i].ProbeOnce(ctx)
		}
	}
	for _, i := range []int{0, 1} {
		if st := tc.nodes[i].health.State(tc.urls[2]); st != MemberDown {
			t.Fatalf("node %d sees the killed peer as %s after 3 failed probes, want down", i, st)
		}
	}

	// The detector seeded the sweep's down-set, so the dead peer never
	// gets a doomed dispatch (no reroute), and replica fills owed to it
	// queue as hints instead of waiting on its socket.
	rerouted := tc.nodes[0].mRerouted.Value()
	if got := mustFlatten(t, tc.sweep(t, 0)); !bytes.Equal(got, ref) {
		t.Fatal("sweep with a condemned peer diverged")
	}
	if executedTotal(tc) != warm {
		t.Fatal("sweep with a condemned peer recomputed cached jobs")
	}
	if tc.nodes[0].mRerouted.Value() != rerouted {
		t.Fatal("coordinator dispatched a shard to a peer the detector had already condemned")
	}

	// Every key whose replica set includes the dead peer is owed a
	// copy; the survivors' hint logs must carry exactly those.
	owed := make(map[string]bool)
	for _, key := range keys {
		for _, owner := range tc.nodes[0].Ring().Owners(key, 2, nil) {
			if owner == tc.urls[2] {
				owed[key] = true
			}
		}
	}
	hinted := make(map[string]bool)
	for _, i := range []int{0, 1} {
		tc.nodes[i].hints.mu.Lock()
		for _, h := range tc.nodes[i].hints.pending {
			if h.peer == tc.urls[2] {
				hinted[h.key] = true
			}
		}
		tc.nodes[i].hints.mu.Unlock()
	}
	if len(hinted) != len(owed) {
		t.Fatalf("hint logs owe the dead peer %d distinct keys, want %d", len(hinted), len(owed))
	}

	// The peer returns: the first successful probe flips it back to
	// live and drains the hints into its cache.
	tc.restart(2)
	for _, i := range []int{0, 1} {
		trs := tc.nodes[i].ProbeOnce(ctx)
		for _, tr := range trs {
			if tr.Peer == tc.urls[2] && tr.To != MemberLive {
				t.Fatalf("node %d transitioned the restarted peer to %s", i, tr.To)
			}
		}
	}
	for _, i := range []int{0, 1} {
		if n := tc.nodes[i].hints.pendingCount(); n != 0 {
			t.Fatalf("node %d still holds %d hints after the peer returned", i, n)
		}
	}
	for key := range owed {
		if _, ok := tc.engines[2].Cache().Get(key); !ok {
			t.Fatalf("restarted peer never received hinted key %s", shortKey(key))
		}
	}
	// The drain restored replication by copying, not recomputing.
	if tc.engines[2].Executed() != deadExecuted {
		t.Fatal("restarted peer recomputed results the drain should have delivered")
	}
	assertReplicated(t, tc, keys, 2)
}

// TestClusterStatusReplicationFields pins the new status-document
// surface: replication factor, per-peer health view and the
// under-replication backlog an operator watches during an incident.
func TestClusterStatusReplicationFields(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()

	tc.kill(2)
	for round := 0; round < 3; round++ {
		tc.nodes[0].ProbeOnce(ctx)
	}
	tc.nodes[0].hints.add(tc.urls[2], "deadbeefdeadbeef")

	resp, err := http.Get(tc.urls[0] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Replicas != 2 {
		t.Fatalf("status replicas = %d, want 2", doc.Replicas)
	}
	if doc.Hints != 1 || doc.Unreplicated != 1 {
		t.Fatalf("status hints/unreplicated = %d/%d, want 1/1", doc.Hints, doc.Unreplicated)
	}
	states := make(map[string]string)
	for _, h := range doc.Health {
		states[h.Peer] = h.State
	}
	if states[tc.urls[2]] != "down" || states[tc.urls[1]] != "live" {
		t.Fatalf("status health = %v", states)
	}
	if doc.ProbeFailures == 0 {
		t.Fatal("status reports zero probe failures after a condemned peer")
	}
}
