package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"catch/internal/core"
	"catch/internal/runner"
	"catch/internal/workloads"
)

// Server is the cluster's HTTP layer. It mounts the cluster routes and
// overrides the sweep and results endpoints with cluster-aware
// versions; everything else falls through to the single-node runner
// handler:
//
//	GET  /v1/cluster/status   ring membership, tiers, queue, peers
//	POST /v1/cluster/shard    execute one sweep shard (cluster-internal)
//	POST /v1/cluster/steal    hand over pending queue tail (internal)
//	POST /v1/cluster/fill     return a stolen job's results (internal)
//	POST /v1/sweep            sweep sharded across the ring
//	GET  /v1/results/{key}    tiered lookup + RFC-9111 cache semantics
type Server struct {
	Node    *Node
	Resolve runner.ConfigResolver
	// Inner serves every route the cluster layer does not override
	// (run, drain, healthz, metrics, pprof).
	Inner http.Handler
	// JournalDir enables resumable shards, exactly as on the runner
	// server; shard journals are content-addressed per shard.
	JournalDir string
	// ResultMaxAge is the Cache-Control max-age for results (<=0:
	// runner.DefaultResultMaxAge).
	ResultMaxAge time.Duration
	// Version is echoed in /v1/cluster/status.
	Version string
}

// StatusDoc is the /v1/cluster/status response.
type StatusDoc struct {
	Self      string      `json:"self"`
	Members   []string    `json:"members"`
	VNodes    int         `json:"vnodes"`
	Replicas  int         `json:"replicas"` // effective replication factor
	Version   string      `json:"version,omitempty"`
	QueueLen  int         `json:"queueLen"`
	Lent      int         `json:"lent"`
	Stolen    int         `json:"stolen"`    // jobs peers stole from this node
	Reclaimed int         `json:"reclaimed"` // lent jobs reclaimed locally
	Tiers     []TierStats `json:"tiers"`
	Peers     []PeerState `json:"peers"`
	// Health is this node's failure-detector view of every peer.
	Health []MemberHealthDoc `json:"health,omitempty"`
	// Hints is the hinted-handoff backlog: replica fills waiting for
	// their destination to return. Unreplicated is the distinct result
	// keys in that backlog — results this node serves correctly but
	// that currently live below their replication factor (the number a
	// minority partition watches shrink to zero after heal).
	Hints        int    `json:"hints"`
	HintsDropped uint64 `json:"hintsDropped,omitempty"` // overflowed hint-log entries (repair's job now)
	Unreplicated int    `json:"unreplicated"`
	// Replication traffic counters: copies pushed on completion,
	// copies accepted from peers, hinted fills delivered after a
	// return, and copies pushed by anti-entropy repair.
	ReplicaFills  uint64 `json:"replicaFills,omitempty"`
	ReplicasIn    uint64 `json:"replicasIn,omitempty"`
	HintsDrained  uint64 `json:"hintsDrained,omitempty"`
	RepairFills   uint64 `json:"repairFills,omitempty"`
	ProbeFailures uint64 `json:"probeFailures,omitempty"`
}

// PeerState is one ring member's view from this node.
type PeerState struct {
	Peer    string `json:"peer"`
	Self    bool   `json:"self,omitempty"`
	Breaker string `json:"breaker,omitempty"`
}

// shardRequest is the cluster-internal body of POST /v1/cluster/shard.
type shardRequest struct {
	Jobs      []runner.Job `json:"jobs"`
	Resumable bool         `json:"resumable,omitempty"`
}

// shardResponse carries the shard's per-job results in request order.
type shardResponse struct {
	Jobs []runner.JobResult `json:"jobs"`
}

// stealRequest asks for up to Max pending jobs from the queue tail.
type stealRequest struct {
	Max int `json:"max"`
}

// stealResponse hands over the stolen jobs.
type stealResponse struct {
	Jobs []runner.Job `json:"jobs"`
}

// fillRequest returns a stolen job's results to its owner (Replica
// false) or pushes a replica copy to a member of the key's replica set
// (Replica true). The flag is what keeps replication loop-free: only
// authoritative fills fan out again.
type fillRequest struct {
	Key     string        `json:"key"`
	Results []core.Result `json:"results"`
	Replica bool          `json:"replica,omitempty"`
}

// pingDoc answers the failure detector's probe.
type pingDoc struct {
	Self string `json:"self"`
}

// manifestDoc lists every result key this node holds (memory and
// disk), for anti-entropy repair diffs.
type manifestDoc struct {
	Self string   `json:"self"`
	Keys []string `json:"keys"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the route table. The cluster routes shadow the inner
// handler's; unmatched requests delegate.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/status", s.handleStatus)
	mux.HandleFunc("GET /v1/cluster/ping", s.handlePing)
	mux.HandleFunc("GET /v1/cluster/manifest", s.handleManifest)
	mux.HandleFunc("POST /v1/cluster/shard", s.handleShard)
	mux.HandleFunc("POST /v1/cluster/steal", s.handleSteal)
	mux.HandleFunc("POST /v1/cluster/fill", s.handleFill)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	if s.Inner != nil {
		mux.Handle("/", s.Inner)
	}
	return mux
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	n := s.Node
	stolen, reclaimed := n.queue.counters()
	writeJSON(w, http.StatusOK, StatusDoc{
		Self:          n.Self(),
		Members:       n.Ring().Members(),
		VNodes:        n.Ring().VNodes(),
		Replicas:      n.Replicas(),
		Version:       s.Version,
		QueueLen:      n.queue.queueLen(),
		Lent:          n.queue.lentCount(),
		Stolen:        stolen,
		Reclaimed:     reclaimed,
		Tiers:         n.Tiers().Stats(),
		Peers:         n.peerStates(),
		Health:        n.health.snapshot(),
		Hints:         n.hints.pendingCount(),
		HintsDropped:  n.hints.droppedCount(),
		Unreplicated:  n.hints.distinctKeys(),
		ReplicaFills:  n.mReplicaFills.Value(),
		ReplicasIn:    n.mReplicasIn.Value(),
		HintsDrained:  n.mHintsDrained.Value(),
		RepairFills:   n.mRepairFills.Value(),
		ProbeFailures: n.mProbeFails.Value(),
	})
}

// handlePing answers the failure detector: a 200 means "up", nothing
// more. The body names the node so a misconfigured peer list shows
// itself in probes.
func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, pingDoc{Self: s.Node.Self()})
}

// handleManifest lists this node's cached result keys for repair.
func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, manifestDoc{
		Self: s.Node.Self(),
		Keys: s.Node.opts.Engine.Cache().Keys(),
	})
}

// handleResult is the tiered, HTTP-semantic results endpoint: validate
// the key shape (400), walk local memory → local disk → owner peer
// (404 when nowhere), and serve with a strong ETag, Cache-Control and
// conditional-request handling. Cluster-internal requests restrict the
// walk to local tiers so peers never chase each other in a cycle.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !runner.ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, errorBody{"malformed result key (want 16-64 lowercase hex digits): " + key})
		return
	}
	localOnly := r.Header.Get(localOnlyHeader) != ""
	rs, tier, ok := s.Node.Lookup(r.Context(), key, localOnly)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no cached result for key " + key})
		return
	}
	w.Header().Set("X-Catch-Tier", tier)
	runner.ServeResult(w, r, key, map[string]any{"key": key, "results": rs}, s.ResultMaxAge)
}

// handleShard executes one sweep shard locally (jobs feed the steal
// queue, so other peers can help with the tail).
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"shard needs at least one job"})
		return
	}
	for i := range req.Jobs {
		if err := req.Jobs[i].Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("shard job %d: %v", i, err)})
			return
		}
	}
	s.Node.mShardsIn.Inc()
	jl, closeJl, err := s.openShardJournal(req.Jobs, req.Resumable)
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{err.Error()})
		return
	}
	defer closeJl()
	out := s.Node.ExecuteShard(r.Context(), req.Jobs, jl)
	writeJSON(w, http.StatusOK, shardResponse{Jobs: out})
}

// openShardJournal opens a content-addressed journal for a resumable
// shard; a non-resumable shard (or a server without a journal dir)
// gets a nil journal and a no-op closer.
func (s *Server) openShardJournal(jobs []runner.Job, resumable bool) (*runner.Journal, func(), error) {
	if !resumable || s.JournalDir == "" {
		return nil, func() {}, nil
	}
	jl, err := runner.OpenShardJournal(s.JournalDir, jobs)
	if err != nil {
		return nil, nil, err
	}
	return jl, func() { _ = jl.Close() }, nil
}

func (s *Server) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, stealResponse{Jobs: s.Node.HandleSteal(req.Max)})
}

func (s *Server) handleFill(w http.ResponseWriter, r *http.Request) {
	var req fillRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	if err := s.Node.HandleFill(r.Context(), req.Key, req.Results, req.Replica); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleSweep is the cluster-aware sweep: the grid expands exactly as
// on a single node, then jobs shard across the ring by owner.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req runner.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	jobs, err := s.sweepJobs(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	var jl *runner.Journal
	closeJl := func() {}
	if req.Resumable {
		if jl, closeJl, err = s.openShardJournal(jobs, true); err != nil {
			writeJSON(w, http.StatusConflict, errorBody{err.Error()})
			return
		}
	}
	defer closeJl()

	//catchlint:ignore determinism sweep wall-clock is response metadata, never simulation output
	start := time.Now()
	out := s.Node.RunSweep(r.Context(), jobs, jl)
	canceled := 0
	for i := range out {
		if out[i].Status == runner.StatusCanceled {
			canceled++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":     out,
		"canceled": canceled,
		//catchlint:ignore determinism sweep wall-clock is response metadata, never simulation output
		"elapsedMs": time.Since(start).Milliseconds(),
		"cluster": map[string]any{
			"self":    s.Node.Self(),
			"members": s.Node.Ring().Members(),
		},
		"tiers": s.Node.Tiers().Stats(),
	})
}

// sweepJobs expands a sweep request into its job list (the same
// expansion the single-node server performs).
func (s *Server) sweepJobs(req *runner.SweepRequest) ([]runner.Job, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("sweep needs at least one config")
	}
	wls := req.Workloads
	if len(wls) == 0 {
		for _, wl := range workloads.All() {
			wls = append(wls, wl.WName)
		}
	}
	grid := runner.Grid{Insts: req.Insts, Warmup: req.Warmup, Workloads: wls}
	if grid.Insts <= 0 {
		grid.Insts = 300_000
	}
	if grid.Warmup == 0 {
		grid.Warmup = 150_000
	} else if grid.Warmup < 0 {
		grid.Warmup = 0
	}
	for _, name := range req.Configs {
		cfg, ok := s.Resolve(name)
		if !ok {
			return nil, fmt.Errorf("unknown config %q", name)
		}
		grid.Configs = append(grid.Configs, cfg)
	}
	return grid.Jobs(), nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode failure means the
	// client went away and there is no channel left to report on.
	_ = enc.Encode(v)
}
