package cluster

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/runner"
)

// fakeTier is a scriptable tier for hierarchy tests.
type fakeTier struct {
	name  string
	local bool

	mu      sync.Mutex
	entries map[string][]core.Result
	fail    bool
	gets    int
	puts    int
}

func newFakeTier(name string, local bool) *fakeTier {
	return &fakeTier{name: name, local: local, entries: make(map[string][]core.Result)}
}

func (f *fakeTier) Name() string { return f.name }
func (f *fakeTier) Local() bool  { return f.local }

func (f *fakeTier) Get(_ context.Context, key string) ([]core.Result, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.fail {
		return nil, fmt.Errorf("tier %s down", f.name)
	}
	return f.entries[key], nil
}

func (f *fakeTier) Put(key string, rs []core.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.entries[key] = rs
}

func (f *fakeTier) has(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.entries[key]) > 0
}

func tierResults() []core.Result {
	return []core.Result{{Workload: "mcf", IPC: 1.25}}
}

func TestTieredPromotesHitsUpward(t *testing.T) {
	mem := newFakeTier("mem", true)
	disk := newFakeTier("disk", true)
	peer := newFakeTier("peer", false)
	td := NewTiered([]Tier{mem, disk, peer}, nil, nil)

	key := "feedfacefeedface"
	peer.Put(key, tierResults())
	peer.puts = 0

	rs, tier, ok := td.Get(context.Background(), key, false)
	if !ok || tier != "peer" || len(rs) != 1 {
		t.Fatalf("Get = (%d results, %q, %v), want peer hit", len(rs), tier, ok)
	}
	if !mem.has(key) || !disk.has(key) {
		t.Fatal("peer hit was not promoted into mem and disk")
	}
	// The next read stops at the top tier.
	if _, tier, _ := td.Get(context.Background(), key, false); tier != "mem" {
		t.Fatalf("second Get served from %q, want mem", tier)
	}
	st := td.Stats()
	if st[0].Promotions != 1 || st[1].Promotions != 1 || st[2].Hits != 1 {
		t.Fatalf("stats after promotion: %+v", st)
	}
}

func TestTieredLocalOnlySkipsRemote(t *testing.T) {
	mem := newFakeTier("mem", true)
	peer := newFakeTier("peer", false)
	td := NewTiered([]Tier{mem, peer}, nil, nil)
	peer.Put("feedfacefeedface", tierResults())

	if _, _, ok := td.Get(context.Background(), "feedfacefeedface", true); ok {
		t.Fatal("localOnly lookup reached the remote tier")
	}
	if peer.gets != 0 {
		t.Fatalf("remote tier saw %d gets under localOnly", peer.gets)
	}
}

// TestTieredBreakerDegradation pins graceful degradation: a failing
// tier trips its breaker and is skipped (not queried) until the
// cooldown admits a half-open probe; the walk itself keeps working.
func TestTieredBreakerDegradation(t *testing.T) {
	mem := newFakeTier("mem", true)
	peer := newFakeTier("peer", false)
	const threshold, cooldown = 2, 3
	td := NewTiered([]Tier{mem, peer}, func(name string) *fault.Breaker {
		if name != "peer" {
			return nil
		}
		return fault.NewBreaker(threshold, cooldown)
	}, nil)

	peer.fail = true
	key := "feedfacefeedface"
	for i := 0; i < threshold; i++ {
		if _, _, ok := td.Get(context.Background(), key, false); ok {
			t.Fatal("failing tier produced a hit")
		}
	}
	gets := peer.gets
	if _, _, ok := td.Get(context.Background(), key, false); ok {
		t.Fatal("open-breaker lookup produced a hit")
	}
	if peer.gets != gets {
		t.Fatal("open breaker still let the lookup through to the failing tier")
	}
	st := td.Stats()
	if st[1].Errors != threshold || st[1].Skipped == 0 {
		t.Fatalf("peer tier stats after trip: %+v", st[1])
	}

	// Heal the tier; the cooldown admits a half-open probe which closes
	// the breaker again.
	peer.fail = false
	peer.Put(key, tierResults())
	var served string
	for i := 0; i < cooldown+1; i++ {
		if _, tier, ok := td.Get(context.Background(), key, false); ok {
			served = tier
			break
		}
	}
	if served != "peer" {
		t.Fatalf("healed tier never served (got %q)", served)
	}
}

func TestCacheTierAdapters(t *testing.T) {
	c := runner.NewCache(t.TempDir())
	key := "feedfacefeedface"
	td := NewTiered([]Tier{memTier{c: c}, diskTier{c: c}}, nil, nil)

	// Disk-only entry: promote into memory on first read.
	diskTier{c: c}.Put(key, tierResults())
	rs, tier, ok := td.Get(context.Background(), key, false)
	if !ok || tier != "disk" || len(rs) != 1 {
		t.Fatalf("Get = (%d results, %q, %v), want disk hit", len(rs), tier, ok)
	}
	if _, tier, _ = td.Get(context.Background(), key, false); tier != "mem" {
		t.Fatalf("promoted entry served from %q, want mem", tier)
	}
}
