package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"catch/internal/fault"
)

// partitionInjector builds a seeded injector whose Peer rule severs
// exactly the calls whose fault site contains match ("" severs every
// peer call). Each node needs its own injector: the Times budget is
// per-injector state.
func partitionInjector(seed uint64, match string) *fault.Injector {
	return fault.NewInjector(fault.Plan{
		Seed: seed,
		Rules: map[fault.Kind]fault.Rule{
			fault.Peer: {Prob: 1, Times: 1 << 20, Match: match},
		},
	})
}

// TestClusterPartitionTolerance is the split-brain chaos tentpole: a
// 3-node cluster with -replicas 2 partitions into {0,1} | {2} under a
// seeded deterministic fault schedule. Both sides keep serving sweeps
// — byte-identical to the single-node run — with the minority side
// computing locally and marking everything unreplicated. On heal, the
// hint drains plus one anti-entropy pass converge every key onto its
// full replica set with zero further compute.
func TestClusterPartitionTolerance(t *testing.T) {
	ref := singleNodeFlatten(t)
	tc := newTestCluster(t, 3, func(i int, o *Options) { o.Replicas = 2 })
	ctx := context.Background()
	keys := jobKeys()

	// Impose the partition: nodes 0 and 1 lose only their links to
	// node 2 (the Match filter selects sites by the embedded peer URL);
	// node 2 loses every outbound link.
	tc.nodes[0].client.SetFault(partitionInjector(1, tc.urls[2]))
	tc.nodes[1].client.SetFault(partitionInjector(2, tc.urls[2]))
	tc.nodes[2].client.SetFault(partitionInjector(3, ""))

	// Both sides' detectors condemn the unreachable members.
	for round := 0; round < 3; round++ {
		for i := range tc.nodes {
			tc.nodes[i].ProbeOnce(ctx)
		}
	}
	if st := tc.nodes[0].health.State(tc.urls[2]); st != MemberDown {
		t.Fatalf("majority sees the minority as %s, want down", st)
	}
	for _, u := range []string{tc.urls[0], tc.urls[1]} {
		if st := tc.nodes[2].health.State(u); st != MemberDown {
			t.Fatalf("minority sees %s as %s, want down", u, st)
		}
	}

	// Majority sweep: shards spread over {0,1}, replica fills owed to
	// node 2 queue as hints.
	if got := mustFlatten(t, tc.sweep(t, 0)); !bytes.Equal(got, ref) {
		t.Fatal("majority-side sweep diverged during the partition")
	}
	majorityExecuted := tc.engines[0].Executed() + tc.engines[1].Executed()
	if majorityExecuted != uint64(len(keys)) {
		t.Fatalf("majority executed %d jobs, want %d", majorityExecuted, len(keys))
	}
	if n := tc.engines[2].Executed(); n != 0 {
		t.Fatalf("minority executed %d majority jobs through the partition", n)
	}

	// Minority sweep: every job computes locally — degraded, never
	// unavailable — and every key is below its replication factor.
	if got := mustFlatten(t, tc.sweep(t, 2)); !bytes.Equal(got, ref) {
		t.Fatal("minority-side sweep diverged during the partition")
	}
	if n := tc.engines[2].Executed(); n != uint64(len(keys)) {
		t.Fatalf("minority executed %d jobs, want all %d locally", n, len(keys))
	}
	if n := tc.nodes[2].hints.distinctKeys(); n != len(keys) {
		t.Fatalf("minority marks %d keys unreplicated, want all %d (R=2 means every key has a remote owner)",
			n, len(keys))
	}

	// The operator-facing view of the degradation.
	resp, err := http.Get(tc.urls[2] + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var doc StatusDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Unreplicated != len(keys) {
		t.Fatalf("minority status unreplicated = %d, want %d", doc.Unreplicated, len(keys))
	}
	downCount := 0
	for _, h := range doc.Health {
		if h.State == "down" {
			downCount++
		}
	}
	if downCount != 2 {
		t.Fatalf("minority status shows %d peers down, want 2", downCount)
	}

	// Heal the partition and let the detectors notice: every down→live
	// transition drains the hints owed to the returning peer.
	totalExecuted := executedTotal(tc)
	for i := range tc.nodes {
		tc.nodes[i].client.SetFault(nil)
	}
	for i := range tc.nodes {
		tc.nodes[i].ProbeOnce(ctx)
	}
	for i := range tc.nodes {
		if n := tc.nodes[i].hints.pendingCount(); n != 0 {
			t.Fatalf("node %d still holds %d hints after heal", i, n)
		}
	}

	// One repair pass per node closes anything the drains missed; the
	// manifest diff must then be empty — every key on its full replica
	// set — with zero post-heal compute.
	for i := range tc.nodes {
		if _, err := tc.nodes[i].RepairOnce(ctx); err != nil {
			t.Fatalf("repair on node %d: %v", i, err)
		}
	}
	assertReplicated(t, tc, keys, 2)
	if executedTotal(tc) != totalExecuted {
		t.Fatal("reconciliation recomputed results instead of copying them")
	}

	// A post-heal sweep from either side serves from cache, identical.
	if got := mustFlatten(t, tc.sweep(t, 1)); !bytes.Equal(got, ref) {
		t.Fatal("post-heal sweep diverged")
	}
	if executedTotal(tc) != totalExecuted {
		t.Fatal("post-heal sweep recomputed cached results")
	}
}
