package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761+17)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	a := NewRing(members, 0)
	b := NewRing([]string{"http://b:1", "http://a:1", "http://c:1", "http://a:1"}, 0)
	if a.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", a.VNodes(), DefaultVNodes)
	}
	for _, k := range ringKeys(500) {
		if a.Owner(k, nil) != b.Owner(k, nil) {
			t.Fatalf("key %s owned differently by permuted/deduplicated ring", k[:12])
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	counts := make(map[string]int)
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k, nil)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of keys; want a rough third", m, 100*share)
		}
	}
}

// TestRingMembershipStability pins the consistent-hashing property:
// adding one member moves only keys onto the new member, never between
// survivors; excluding a member at lookup time moves only its keys.
func TestRingMembershipStability(t *testing.T) {
	three := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	four := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	moved := 0
	for _, k := range ringKeys(2000) {
		before, after := three.Owner(k, nil), four.Owner(k, nil)
		if before != after {
			moved++
			if after != "http://d:1" {
				t.Fatalf("key %s moved between surviving members (%s -> %s)", k[:12], before, after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member; the ring is not spreading")
	}

	down := map[string]bool{"http://b:1": true}
	for _, k := range ringKeys(2000) {
		owner := three.Owner(k, nil)
		rerouted := three.Owner(k, down)
		if rerouted == "http://b:1" {
			t.Fatalf("key %s still routed to the excluded member", k[:12])
		}
		if owner != "http://b:1" && rerouted != owner {
			t.Fatalf("key %s not owned by the down member moved anyway (%s -> %s)", k[:12], owner, rerouted)
		}
	}
}

func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 8).Owner("deadbeefdeadbeef", nil); got != "" {
		t.Fatalf("empty ring Owner() = %q, want \"\"", got)
	}
	one := NewRing([]string{"http://a:1"}, 8)
	if got := one.Owner("deadbeefdeadbeef", nil); got != "http://a:1" {
		t.Fatalf("single-member ring Owner() = %q", got)
	}
	if got := one.Owner("deadbeefdeadbeef", map[string]bool{"http://a:1": true}); got != "" {
		t.Fatalf("all-down ring Owner() = %q, want \"\"", got)
	}
}
