package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i*2654435761+17)
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	members := []string{"http://c:1", "http://a:1", "http://b:1"}
	a := NewRing(members, 0)
	b := NewRing([]string{"http://b:1", "http://a:1", "http://c:1", "http://a:1"}, 0)
	if a.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", a.VNodes(), DefaultVNodes)
	}
	for _, k := range ringKeys(500) {
		if a.Owner(k, nil) != b.Owner(k, nil) {
			t.Fatalf("key %s owned differently by permuted/deduplicated ring", k[:12])
		}
	}
}

func TestRingDistribution(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	counts := make(map[string]int)
	keys := ringKeys(3000)
	for _, k := range keys {
		counts[r.Owner(k, nil)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Fatalf("member %s owns %.0f%% of keys; want a rough third", m, 100*share)
		}
	}
}

// TestRingMembershipStability pins the consistent-hashing property:
// adding one member moves only keys onto the new member, never between
// survivors; excluding a member at lookup time moves only its keys.
func TestRingMembershipStability(t *testing.T) {
	three := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	four := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	moved := 0
	for _, k := range ringKeys(2000) {
		before, after := three.Owner(k, nil), four.Owner(k, nil)
		if before != after {
			moved++
			if after != "http://d:1" {
				t.Fatalf("key %s moved between surviving members (%s -> %s)", k[:12], before, after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member; the ring is not spreading")
	}

	down := map[string]bool{"http://b:1": true}
	for _, k := range ringKeys(2000) {
		owner := three.Owner(k, nil)
		rerouted := three.Owner(k, down)
		if rerouted == "http://b:1" {
			t.Fatalf("key %s still routed to the excluded member", k[:12])
		}
		if owner != "http://b:1" && rerouted != owner {
			t.Fatalf("key %s not owned by the down member moved anyway (%s -> %s)", k[:12], owner, rerouted)
		}
	}
}

// dropMember filters one member out of an owner sequence.
func dropMember(owners []string, member string) []string {
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != member {
			out = append(out, o)
		}
	}
	return out
}

func sameOwners(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRingOwnersReplicaSets pins the replica-set contract: n distinct
// live successors, primary first, down members excluded, and a short
// cluster truncating gracefully.
func TestRingOwnersReplicaSets(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := NewRing(members, 0)
	for _, k := range ringKeys(500) {
		owners := r.Owners(k, 2, nil)
		if len(owners) != 2 || owners[0] == owners[1] {
			t.Fatalf("Owners(%s, 2) = %v; want 2 distinct members", k[:12], owners)
		}
		if owners[0] != r.Owner(k, nil) {
			t.Fatalf("Owners(%s)[0] = %s, but Owner = %s", k[:12], owners[0], r.Owner(k, nil))
		}
		down := map[string]bool{owners[0]: true}
		promoted := r.Owners(k, 2, down)
		if len(promoted) != 2 || promoted[0] != owners[1] {
			t.Fatalf("with the primary down, Owners = %v; want successor %s promoted", promoted, owners[1])
		}
		// Asking for more replicas than members returns every member.
		if all := r.Owners(k, 5, nil); len(all) != len(members) {
			t.Fatalf("Owners(%s, 5) = %v on a 3-member ring", k[:12], all)
		}
	}
	if NewRing(nil, 8).Owners("deadbeefdeadbeef", 2, nil) != nil {
		t.Fatal("empty ring returned owners")
	}
	if r.Owners("deadbeefdeadbeef", 0, nil) != nil {
		t.Fatal("Owners with n=0 returned owners")
	}
}

// TestRingOwnersMembershipStability pins the consistent-hashing
// property at the replica-set level: membership churn (add, remove,
// down) reshuffles only the replica sets that touch the changed
// member. Survivors keep their successor order — filtering the changed
// member out of the wider walk reproduces the old sets exactly.
func TestRingOwnersMembershipStability(t *testing.T) {
	three := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 0)
	four := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 0)
	for _, k := range ringKeys(2000) {
		// Adding d only inserts d: deleting it from the 4-member walk
		// yields the 3-member walk, so no key's replicas swap among
		// survivors.
		if got := dropMember(four.Owners(k, 4, nil), "http://d:1"); !sameOwners(got, three.Owners(k, 3, nil)) {
			t.Fatalf("key %s survivors reordered after add: %v vs %v", k[:12], got, three.Owners(k, 3, nil))
		}
		// Marking b down at lookup time is the same filter.
		down := map[string]bool{"http://b:1": true}
		want := dropMember(three.Owners(k, 3, nil), "http://b:1")[:2]
		if got := three.Owners(k, 2, down); !sameOwners(got, want) {
			t.Fatalf("key %s replicas with b down = %v, want %v", k[:12], got, want)
		}
		// A key whose replica set never included b keeps it verbatim.
		base := three.Owners(k, 2, nil)
		if base[0] != "http://b:1" && base[1] != "http://b:1" {
			if got := three.Owners(k, 2, down); !sameOwners(got, base) {
				t.Fatalf("key %s moved replicas despite not touching the down member: %v vs %v", k[:12], got, base)
			}
		}
	}
}

// TestRingOwnersChurnConcurrent hammers Owners from parallel readers
// while the membership churns underneath them (ring swaps model
// add/remove; per-call down-sets model failure-detector flaps). Run
// under -race this pins that lookups never tear, and every answer is
// internally consistent no matter which membership generation it hit.
func TestRingOwnersChurnConcurrent(t *testing.T) {
	gens := []*Ring{
		NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 16),
		NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 16),
		NewRing([]string{"http://a:1", "http://c:1", "http://d:1"}, 16), // b removed
	}
	var cur atomic.Pointer[Ring]
	cur.Store(gens[0])
	keys := ringKeys(64)
	downs := []map[string]bool{nil, {"http://c:1": true}}

	stop := make(chan struct{})
	errc := make(chan string, 1)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := cur.Load()
				down := downs[(i+w)%len(downs)]
				for _, k := range keys {
					owners := r.Owners(k, 2, down)
					seen := make(map[string]bool, len(owners))
					for _, o := range owners {
						if down[o] {
							reportOnce(errc, fmt.Sprintf("down member %s in replica set for %s", o, k[:12]))
							return
						}
						if seen[o] {
							reportOnce(errc, fmt.Sprintf("duplicate member %s in replica set for %s", o, k[:12]))
							return
						}
						seen[o] = true
					}
					if len(owners) > 0 && owners[0] != r.Owner(k, down) {
						reportOnce(errc, fmt.Sprintf("Owners[0] disagrees with Owner for %s", k[:12]))
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < 500; i++ {
		cur.Store(gens[i%len(gens)])
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errc:
		t.Fatal(msg)
	default:
	}
}

func reportOnce(errc chan string, msg string) {
	select {
	case errc <- msg:
	default:
	}
}

func TestRingEdgeCases(t *testing.T) {
	if got := NewRing(nil, 8).Owner("deadbeefdeadbeef", nil); got != "" {
		t.Fatalf("empty ring Owner() = %q, want \"\"", got)
	}
	one := NewRing([]string{"http://a:1"}, 8)
	if got := one.Owner("deadbeefdeadbeef", nil); got != "http://a:1" {
		t.Fatalf("single-member ring Owner() = %q", got)
	}
	if got := one.Owner("deadbeefdeadbeef", map[string]bool{"http://a:1": true}); got != "" {
		t.Fatalf("all-down ring Owner() = %q, want \"\"", got)
	}
}
