package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// hint is one deferred replica fill: peer needs key. The result bytes
// themselves are NOT queued — they already live in the local
// content-addressed cache, so a hint is just the (destination, key)
// pair and the hint log stays small no matter how large results are.
type hint struct {
	peer string
	key  string
}

// hintLog is the bounded, journal-backed hinted-handoff queue. A fill
// destined for an unroutable replica is recorded here instead of
// waited on; when the failure detector sees the peer return, the log
// drains — every hinted key is re-read from the local cache and
// pushed as a replica fill. The bound keeps a long outage from
// growing the log without limit: overflow drops the oldest hint
// (counted, logged), which costs replication factor on that key until
// the anti-entropy repair pass re-discovers the gap, never
// correctness.
//
// The journal is append-only ("+ peer key" on add, "- peer key" on
// resolve), torn-tail tolerant, and compacted on open — the same
// discipline as the sweep journal. It is a hint in the literal sense:
// losing it costs prompt re-replication, not data, because repair
// rebuilds the same information from cache manifests.
type hintLog struct {
	cap  int
	path string // "" = memory-only

	mu      sync.Mutex
	pending []hint // FIFO
	index   map[hint]bool
	dropped uint64
	f       *os.File
	broken  bool // journal I/O failed; keep serving from memory

	logf func(format string, args ...any)
}

// DefaultHintCap bounds the hint log when the option is unset.
const DefaultHintCap = 1024

// newHintLog opens (and compacts) the hint journal at path; an empty
// path keeps the log memory-only. Journal damage is tolerated: a
// torn tail parses up to the tear, and an unopenable journal degrades
// to memory-only with one logged diagnostic.
func newHintLog(capacity int, path string, logf func(format string, args ...any)) *hintLog {
	if capacity <= 0 {
		capacity = DefaultHintCap
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hl := &hintLog{cap: capacity, path: path, index: make(map[hint]bool), logf: logf}
	if path == "" {
		return hl
	}
	hl.load()
	return hl
}

// load replays the journal into memory and rewrites it compacted.
func (hl *hintLog) load() {
	raw, err := os.ReadFile(hl.path)
	if err != nil && !os.IsNotExist(err) {
		hl.logf("cluster: hint journal %s unreadable (%v); continuing memory-only", hl.path, err)
		hl.broken = true
		return
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 3 {
			continue // torn tail or blank line
		}
		h := hint{peer: fields[1], key: fields[2]}
		switch fields[0] {
		case "+":
			if !hl.index[h] {
				hl.index[h] = true
				hl.pending = append(hl.pending, h)
			}
		case "-":
			if hl.index[h] {
				delete(hl.index, h)
				hl.pending = removeHint(hl.pending, h)
			}
		}
	}
	hl.rewrite()
}

// rewrite persists the compacted pending set and leaves an open append
// handle. Callers hold hl.mu (or are in single-threaded construction).
func (hl *hintLog) rewrite() {
	if hl.path == "" || hl.broken {
		return
	}
	if err := os.MkdirAll(filepath.Dir(hl.path), 0o755); err != nil {
		hl.journalErr(err)
		return
	}
	tmp := hl.path + ".tmp"
	var sb strings.Builder
	for _, h := range hl.pending {
		fmt.Fprintf(&sb, "+ %s %s\n", h.peer, h.key)
	}
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		hl.journalErr(err)
		return
	}
	if err := os.Rename(tmp, hl.path); err != nil {
		hl.journalErr(err)
		return
	}
	if hl.f != nil {
		_ = hl.f.Close()
		hl.f = nil
	}
	f, err := os.OpenFile(hl.path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		hl.journalErr(err)
		return
	}
	hl.f = f
}

// journalErr degrades the log to memory-only after the first I/O
// failure, logging once. Hints keep working; only restart durability
// is lost, and repair covers that gap.
func (hl *hintLog) journalErr(err error) {
	if !hl.broken {
		hl.logf("cluster: hint journal %s: %v; continuing memory-only", hl.path, err)
	}
	hl.broken = true
}

// append writes one journal line. Callers hold hl.mu.
func (hl *hintLog) append(op string, h hint) {
	if hl.f == nil || hl.broken {
		return
	}
	if _, err := fmt.Fprintf(hl.f, "%s %s %s\n", op, h.peer, h.key); err != nil {
		hl.journalErr(err)
	}
}

// add queues a hint, deduplicating. Over capacity, the oldest hint is
// dropped (counted): repair will re-discover that gap from manifests.
// Reports whether the hint is newly queued.
func (hl *hintLog) add(peer, key string) bool {
	h := hint{peer: peer, key: key}
	hl.mu.Lock()
	defer hl.mu.Unlock()
	if hl.index[h] {
		return false
	}
	hl.index[h] = true
	hl.pending = append(hl.pending, h)
	hl.append("+", h)
	if len(hl.pending) > hl.cap {
		oldest := hl.pending[0]
		hl.pending = hl.pending[1:]
		delete(hl.index, oldest)
		hl.dropped++
		hl.append("-", oldest)
		hl.logf("cluster: hint log full (%d); dropped oldest hint %s for %s (repair will re-discover it)",
			hl.cap, shortKey(oldest.key), oldest.peer)
	}
	return true
}

// take removes and returns every key hinted for peer, in queue order.
// The caller pushes them; a failed push re-adds the hint.
func (hl *hintLog) take(peer string) []string {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	var keys []string
	kept := hl.pending[:0]
	for _, h := range hl.pending {
		if h.peer == peer {
			keys = append(keys, h.key)
			delete(hl.index, h)
			hl.append("-", h)
			continue
		}
		kept = append(kept, h)
	}
	hl.pending = kept
	return keys
}

// pendingCount reports queued hints; distinctKeys reports how many
// distinct result keys are under-replicated because of them (the
// "unreplicated" number surfaced in /v1/cluster/status and /healthz).
func (hl *hintLog) pendingCount() int {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	return len(hl.pending)
}

func (hl *hintLog) distinctKeys() int {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	seen := make(map[string]bool, len(hl.pending))
	for _, h := range hl.pending {
		seen[h.key] = true
	}
	return len(seen)
}

func (hl *hintLog) droppedCount() uint64 {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	return hl.dropped
}

// close releases the journal handle (tests; catchd holds it for life).
func (hl *hintLog) close() {
	hl.mu.Lock()
	defer hl.mu.Unlock()
	if hl.f != nil {
		_ = hl.f.Close()
		hl.f = nil
	}
}

// removeHint deletes one hint from a slice, preserving order.
func removeHint(s []hint, h hint) []hint {
	for i := range s {
		if s[i] == h {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// DrainHints pushes every hint queued for peer: each hinted key is
// re-read from the local cache and sent as a replica fill. A key the
// cache no longer holds is dropped (repair covers it); a failed push
// re-queues the hint for the peer's next return. Returns how many
// fills landed.
func (n *Node) DrainHints(ctx context.Context, peer string) int {
	keys := n.hints.take(peer)
	if len(keys) == 0 {
		return 0
	}
	drained := 0
	for _, key := range keys {
		rs, ok := n.opts.Engine.Cache().Get(key)
		if !ok {
			n.logf("cluster: hint for %s lost its local copy of %s; leaving it to repair", peer, shortKey(key))
			continue
		}
		if err := n.client.ReplicaFill(ctx, peer, key, rs); err != nil {
			n.hints.add(peer, key)
			n.logf("cluster: hint drain to %s stalled at %s (%v); re-queued", peer, shortKey(key), err)
			break // the peer is gone again; stop pushing this round
		}
		drained++
		n.mHintsDrained.Inc()
	}
	return drained
}
