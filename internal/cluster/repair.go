package cluster

import (
	"context"
	"sort"
)

// RepairOnce runs one anti-entropy pass: every key in the local cache
// is checked against the manifests of its live replica-set members,
// and any owner missing its copy gets a replica fill. The pass pushes
// only — each node repairs from what it holds — so running it on every
// member converges the cluster to full replication no matter which
// side of a partition computed what. Results are content-addressed,
// which makes repair idempotent: re-filling a key a peer already holds
// rewrites identical bytes.
//
// Peers that are down, suspect, or fail the manifest fetch are skipped
// this pass (their gaps persist into the next one); keys the cache
// evicted between listing and read are skipped the same way. The pass
// reports how many fills it pushed.
func (n *Node) RepairOnce(ctx context.Context) (int, error) {
	if n.opts.Replicas <= 1 {
		return 0, nil
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	keys := n.opts.Engine.Cache().Keys()
	if len(keys) == 0 {
		return 0, nil
	}

	// One manifest fetch per live peer, not per key. A peer we cannot
	// manifest is treated as having nothing to repair this round —
	// guessing "it has nothing" would push the whole cache at it.
	manifests := make(map[string]map[string]bool)
	for _, peer := range n.health.peers {
		if n.health.State(peer) != MemberLive {
			continue
		}
		peerKeys, err := n.client.Manifest(ctx, peer)
		if err != nil {
			n.logf("cluster: repair: manifest from %s failed (%v); skipping it this pass", peer, err)
			continue
		}
		set := make(map[string]bool, len(peerKeys))
		for _, k := range peerKeys {
			set[k] = true
		}
		manifests[peer] = set
	}
	if len(manifests) == 0 {
		return 0, nil
	}

	sort.Strings(keys) // deterministic repair order
	fills := 0
	for _, key := range keys {
		if err := ctx.Err(); err != nil {
			return fills, err
		}
		for _, owner := range n.ring.Owners(key, n.opts.Replicas, nil) {
			if owner == n.opts.Self {
				continue
			}
			set, live := manifests[owner]
			if !live || set[key] {
				continue
			}
			rs, ok := n.opts.Engine.Cache().Get(key)
			if !ok {
				break // evicted since listing; nothing to push anywhere
			}
			if err := n.client.ReplicaFill(ctx, owner, key, rs); err != nil {
				n.logf("cluster: repair: fill %s to %s failed: %v", shortKey(key), owner, err)
				continue
			}
			set[key] = true // the view, so a second pass in-round stays quiet
			fills++
			n.mRepairFills.Inc()
		}
	}
	return fills, nil
}
