package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testKeyN(i int) string { return fmt.Sprintf("%016x", i) }

// TestHintLogAddTakeDedup pins the queue semantics: FIFO per peer,
// deduplicated, take removes only the asked-for peer's hints.
func TestHintLogAddTakeDedup(t *testing.T) {
	hl := newHintLog(0, "", nil)
	if hl.cap != DefaultHintCap {
		t.Fatalf("default cap = %d, want %d", hl.cap, DefaultHintCap)
	}
	if !hl.add("b", testKeyN(1)) || !hl.add("b", testKeyN(2)) || !hl.add("c", testKeyN(1)) {
		t.Fatal("fresh hints reported as duplicates")
	}
	if hl.add("b", testKeyN(1)) {
		t.Fatal("duplicate hint reported as fresh")
	}
	if hl.pendingCount() != 3 || hl.distinctKeys() != 2 {
		t.Fatalf("pending/distinct = %d/%d, want 3/2", hl.pendingCount(), hl.distinctKeys())
	}
	got := hl.take("b")
	if len(got) != 2 || got[0] != testKeyN(1) || got[1] != testKeyN(2) {
		t.Fatalf("take(b) = %v, want FIFO [key1 key2]", got)
	}
	if hl.pendingCount() != 1 {
		t.Fatalf("take removed other peers' hints; %d left, want 1", hl.pendingCount())
	}
	if got := hl.take("b"); len(got) != 0 {
		t.Fatalf("second take(b) = %v, want empty", got)
	}
	// Taken hints can re-queue (a failed drain puts them back).
	if !hl.add("b", testKeyN(1)) {
		t.Fatal("re-adding a taken hint reported as duplicate")
	}
}

// TestHintLogBoundDropsOldest pins the overflow policy: the cap holds,
// the oldest hint goes first, and the drop is counted (repair's cue).
func TestHintLogBoundDropsOldest(t *testing.T) {
	hl := newHintLog(3, "", nil)
	for i := 1; i <= 5; i++ {
		hl.add("b", testKeyN(i))
	}
	if hl.pendingCount() != 3 {
		t.Fatalf("pending = %d, want cap 3", hl.pendingCount())
	}
	if hl.droppedCount() != 2 {
		t.Fatalf("dropped = %d, want 2", hl.droppedCount())
	}
	got := hl.take("b")
	if len(got) != 3 || got[0] != testKeyN(3) || got[2] != testKeyN(5) {
		t.Fatalf("survivors = %v, want the 3 newest", got)
	}
}

// TestHintLogJournalSurvivesReopen pins restart durability: adds and
// resolutions journal as they happen, and a reopened log carries
// exactly the outstanding hints, compacted.
func TestHintLogJournalSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints", "hints.log")
	hl := newHintLog(0, path, nil)
	hl.add("b", testKeyN(1))
	hl.add("b", testKeyN(2))
	hl.add("c", testKeyN(3))
	hl.take("b") // resolved: only c's hint is outstanding
	hl.add("b", testKeyN(4))
	hl.close()

	re := newHintLog(0, path, nil)
	defer re.close()
	if re.pendingCount() != 2 {
		t.Fatalf("reopened log has %d hints, want 2", re.pendingCount())
	}
	if got := re.take("c"); len(got) != 1 || got[0] != testKeyN(3) {
		t.Fatalf("reopened take(c) = %v", got)
	}
	if got := re.take("b"); len(got) != 1 || got[0] != testKeyN(4) {
		t.Fatalf("reopened take(b) = %v", got)
	}
	// The reopen compacted: resolved entries are gone from disk.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), testKeyN(1)) {
		t.Fatal("compaction kept a resolved hint on disk")
	}
}

// TestHintLogTornTailAndDamage pins the failure posture: a torn final
// line parses up to the tear, and an unreadable journal degrades to
// memory-only with one diagnostic instead of failing the node.
func TestHintLogTornTailAndDamage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hints.log")
	content := fmt.Sprintf("+ b %s\n+ c %s\n+ b", testKeyN(1), testKeyN(2))
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	hl := newHintLog(0, path, nil)
	defer hl.close()
	if hl.pendingCount() != 2 {
		t.Fatalf("pending = %d after torn tail, want the 2 intact lines", hl.pendingCount())
	}

	var diags []string
	logf := func(format string, args ...any) { diags = append(diags, fmt.Sprintf(format, args...)) }
	dir := t.TempDir() // a directory is unreadable as a journal file
	broken := newHintLog(0, dir, logf)
	defer broken.close()
	if !broken.broken {
		t.Fatal("unreadable journal did not degrade to memory-only")
	}
	if len(diags) != 1 {
		t.Fatalf("degradation logged %d diagnostics, want exactly 1", len(diags))
	}
	// Memory-only still queues and drains.
	broken.add("b", testKeyN(9))
	if got := broken.take("b"); len(got) != 1 {
		t.Fatalf("degraded log take = %v", got)
	}
}
