package perf

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: catch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSimBaseline 	     334	   7325909 ns/op	  13650196 instrs/s	 3599922 B/op	      49 allocs/op
BenchmarkSimCATCH-8  	     196	  12249358 ns/op	   8163700 instrs/s	 3676927 B/op	      74 allocs/op
BenchmarkSimMP       	      10	 102030405 ns/op	 5000000 B/op	     120 allocs/op
--- BENCH: BenchmarkSimBaseline
    bench_test.go:30: some log line
PASS
ok  	catch	6.806s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.Pkg != "catch" {
		t.Fatalf("header: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Fatalf("cpu: %q", rep.CPU)
	}
	if len(rep.Results) != 3 {
		t.Fatalf("want 3 results, got %d: %+v", len(rep.Results), rep.Results)
	}
	b := rep.Results[0]
	if b.Name != "BenchmarkSimBaseline" || b.Runs != 334 {
		t.Fatalf("first result: %+v", b)
	}
	if b.NsPerOp != 7325909 || b.InstrsPerSec != 13650196 {
		t.Fatalf("metrics: %+v", b)
	}
	if b.BytesPerOp != 3599922 || b.AllocsPerOp != 49 {
		t.Fatalf("mem metrics: %+v", b)
	}
	// GOMAXPROCS suffix is stripped.
	if rep.Results[1].Name != "BenchmarkSimCATCH" {
		t.Fatalf("suffix not stripped: %q", rep.Results[1].Name)
	}
	// A result without the custom instrs/s metric still parses.
	if rep.Results[2].Name != "BenchmarkSimMP" || rep.Results[2].InstrsPerSec != 0 {
		t.Fatalf("third result: %+v", rep.Results[2])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := writeTemp(t, buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(rep.Results) || got.CPU != rep.CPU {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, rep)
	}
}

func TestCompare(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 10_000_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 5_000_000},
		{Name: "BenchmarkSimMP", NsPerOp: 100_000_000},
		{Name: "BenchmarkRemoved", InstrsPerSec: 1},
	}}

	// Within tolerance: an 8% throughput drop passes a 10% gate.
	cur := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 9_200_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 5_500_000},
		{Name: "BenchmarkSimMP", NsPerOp: 105_000_000},
		{Name: "BenchmarkNew", InstrsPerSec: 1},
	}}
	if regs := Compare(base, cur, 0.10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Beyond tolerance: a 20% drop (instrs/s) and a 2x slowdown (ns/op)
	// both fail.
	cur = Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 8_000_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 5_000_000},
		{Name: "BenchmarkSimMP", NsPerOp: 200_000_000},
	}}
	regs := Compare(base, cur, 0.10)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Name != "BenchmarkSimBaseline" || regs[0].Metric != "throughput" {
		t.Fatalf("first regression: %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkSimMP" {
		t.Fatalf("second regression: %+v", regs[1])
	}
	if s := regs[0].String(); !strings.Contains(s, "throughput") {
		t.Fatalf("String: %q", s)
	}
}

func TestMedians(t *testing.T) {
	// Five samples of one benchmark (as from -count=5) with one slow
	// outlier, interleaved with a single-sample benchmark.
	rep := Report{CPU: "test", Results: []Result{
		{Name: "BenchmarkSimBaseline", Runs: 100, NsPerOp: 10, InstrsPerSec: 1000, AllocsPerOp: 5},
		{Name: "BenchmarkSimMP", Runs: 7, NsPerOp: 70},
		{Name: "BenchmarkSimBaseline", Runs: 100, NsPerOp: 11, InstrsPerSec: 900, AllocsPerOp: 5},
		{Name: "BenchmarkSimBaseline", Runs: 100, NsPerOp: 55, InstrsPerSec: 200, AllocsPerOp: 5},
		{Name: "BenchmarkSimBaseline", Runs: 100, NsPerOp: 9, InstrsPerSec: 1100, AllocsPerOp: 5},
		{Name: "BenchmarkSimBaseline", Runs: 100, NsPerOp: 12, InstrsPerSec: 950, AllocsPerOp: 5},
	}}
	got := rep.Medians()
	if got.CPU != "test" {
		t.Fatalf("header lost: %+v", got)
	}
	if len(got.Results) != 2 {
		t.Fatalf("want 2 collapsed results, got %+v", got.Results)
	}
	b := got.Results[0]
	if b.Name != "BenchmarkSimBaseline" || b.Runs != 500 {
		t.Fatalf("first result: %+v", b)
	}
	// The outlier (55 ns, 200 instrs/s) must not be the reported value.
	if b.NsPerOp != 11 || b.InstrsPerSec != 950 || b.AllocsPerOp != 5 {
		t.Fatalf("medians: %+v", b)
	}
	if got.Results[1].Name != "BenchmarkSimMP" || got.Results[1].NsPerOp != 70 {
		t.Fatalf("single-sample result changed: %+v", got.Results[1])
	}

	// Even sample count: median is the mean of the middle two.
	even := Report{Results: []Result{
		{Name: "B", Runs: 1, NsPerOp: 10},
		{Name: "B", Runs: 1, NsPerOp: 20},
		{Name: "B", Runs: 1, NsPerOp: 40},
		{Name: "B", Runs: 1, NsPerOp: 80},
	}}
	if m := even.Medians().Results[0].NsPerOp; m != 30 {
		t.Fatalf("even median = %v, want 30", m)
	}
}

func TestDeltas(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 10_000_000},
		{Name: "BenchmarkSimMP", NsPerOp: 100},
		{Name: "BenchmarkRemoved", InstrsPerSec: 1},
	}}
	cur := Report{Results: []Result{
		{Name: "BenchmarkSimMP", NsPerOp: 80},
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 9_000_000},
		{Name: "BenchmarkNew", InstrsPerSec: 1},
	}}
	ds := Deltas(base, cur)
	if len(ds) != 2 {
		t.Fatalf("want 2 deltas (common benchmarks only), got %v", ds)
	}
	if ds[0].Name != "BenchmarkSimBaseline" || ds[0].Pct > -9.9 || ds[0].Pct < -10.1 {
		t.Fatalf("first delta: %+v", ds[0])
	}
	// ns/op 100 -> 80 is a +25% throughput improvement.
	if ds[1].Name != "BenchmarkSimMP" || ds[1].Pct < 24.9 || ds[1].Pct > 25.1 {
		t.Fatalf("second delta: %+v", ds[1])
	}
	if s := ds[1].String(); !strings.Contains(s, "+25.0%") {
		t.Fatalf("String: %q", s)
	}
}

func writeTemp(t *testing.T, data []byte) (string, error) {
	t.Helper()
	f := t.TempDir() + "/bench.json"
	return f, os.WriteFile(f, data, 0o644)
}

// TestCompareNormalized: the drift-robust gate compares ratios against
// the reference benchmark, so a uniformly slower machine passes while a
// benchmark that slowed relative to the reference fails.
func TestCompareNormalized(t *testing.T) {
	base := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 10_000_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 5_000_000},
		{Name: "BenchmarkSimBatch", InstrsPerSec: 20_000_000},
	}}

	// Everything uniformly 40% slower: absolute Compare fails all of
	// them, the normalized gate passes (ratios unchanged).
	slow := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 6_000_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 3_000_000},
		{Name: "BenchmarkSimBatch", InstrsPerSec: 12_000_000},
	}}
	if regs := Compare(base, slow, 0.10); len(regs) != 3 {
		t.Fatalf("absolute Compare on a uniformly slow machine: %d regressions, want 3", len(regs))
	}
	regs, err := CompareNormalized(base, slow, "BenchmarkSimBaseline", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("normalized compare flagged uniform slowdown: %v", regs)
	}

	// CATCH alone 30% slower: only it fails, and the ratio values are
	// reported (0.5 -> 0.35).
	mixed := Report{Results: []Result{
		{Name: "BenchmarkSimBaseline", InstrsPerSec: 10_000_000},
		{Name: "BenchmarkSimCATCH", InstrsPerSec: 3_500_000},
		{Name: "BenchmarkSimBatch", InstrsPerSec: 20_000_000},
	}}
	regs, err = CompareNormalized(base, mixed, "BenchmarkSimBaseline", 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || regs[0].Name != "BenchmarkSimCATCH" {
		t.Fatalf("regressions = %v, want only BenchmarkSimCATCH", regs)
	}
	if regs[0].Old != 0.5 || regs[0].New != 0.35 {
		t.Fatalf("ratios = %v -> %v, want 0.5 -> 0.35", regs[0].Old, regs[0].New)
	}
	if s := regs[0].String(); !strings.Contains(s, "0.500 -> 0.350") || !strings.Contains(s, "-30.0%") {
		t.Fatalf("String: %q", s)
	}

	// The reference itself is never gated, and a missing reference is a
	// hard error rather than a silently absolute comparison.
	noRef := Report{Results: []Result{{Name: "BenchmarkSimCATCH", InstrsPerSec: 1}}}
	if _, err := CompareNormalized(base, noRef, "BenchmarkSimBaseline", 0.10); err == nil {
		t.Fatal("missing reference in current report: want error")
	}
	if _, err := CompareNormalized(noRef, base, "BenchmarkSimBaseline", 0.10); err == nil {
		t.Fatal("missing reference in baseline report: want error")
	}
}
