// Package perf is the benchmark-regression harness: it parses the
// output of `go test -bench -benchmem`, renders it as a
// machine-readable report (BENCH_sim.json at the repo root), and
// compares a fresh run against a committed baseline so that simulator
// throughput regressions fail `make benchcmp` instead of landing
// silently.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements.
type Result struct {
	Name         string  `json:"name"`
	Runs         int     `json:"runs"`
	NsPerOp      float64 `json:"ns_per_op"`
	InstrsPerSec float64 `json:"instrs_per_sec,omitempty"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
}

// Report is a full benchmark run: environment header plus results.
type Report struct {
	GoOS    string   `json:"goos,omitempty"`
	GoArch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"benchmarks"`
}

// Parse reads `go test -bench -benchmem` output. Lines it does not
// recognize (test logs, PASS/ok trailers) are ignored, so the raw
// stream from the go tool can be piped in unfiltered.
func Parse(r io.Reader) (Report, error) {
	var rep Report
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		rep.Results = append(rep.Results, res)
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// parseBenchLine decodes one result line, e.g.
//
//	BenchmarkSimCATCH  196  12249358 ns/op  8163700 instrs/s  3676927 B/op  74 allocs/op
//
// The name may carry a -N GOMAXPROCS suffix; value/unit pairs may come
// in any order and any subset.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the GOMAXPROCS suffix (Benchmark... "-8") if present.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Runs: runs}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = v
		case "instrs/s":
			res.InstrsPerSec = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			continue // unknown custom metric: skip
		}
		seen = true
	}
	if !seen {
		return Result{}, false
	}
	return res, true
}

// Medians collapses repeated results for the same benchmark (as
// produced by `go test -count=N`) into one result per name carrying the
// per-metric median. The median of an even run count is the mean of the
// two middle samples. Runs sums the per-sample iteration counts, and
// first-appearance order is kept so the report reads like the raw
// stream. Comparing medians instead of single samples is what keeps the
// `make benchcmp` gate stable on noisy machines: one slow sample out of
// five no longer fails the build.
func (rep Report) Medians() Report {
	type group struct {
		ns, instrs, bytes, allocs []float64
		runs                      int
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rep.Results {
		g, ok := groups[r.Name]
		if !ok {
			g = &group{}
			groups[r.Name] = g
			order = append(order, r.Name)
		}
		g.ns = append(g.ns, r.NsPerOp)
		g.instrs = append(g.instrs, r.InstrsPerSec)
		g.bytes = append(g.bytes, r.BytesPerOp)
		g.allocs = append(g.allocs, r.AllocsPerOp)
		g.runs += r.Runs
	}
	out := rep
	out.Results = make([]Result, 0, len(order))
	for _, name := range order {
		g := groups[name]
		out.Results = append(out.Results, Result{
			Name:         name,
			Runs:         g.runs,
			NsPerOp:      median(g.ns),
			InstrsPerSec: median(g.instrs),
			BytesPerOp:   median(g.bytes),
			AllocsPerOp:  median(g.allocs),
		})
	}
	return out
}

// median returns the middle value of vs (mean of the two middle values
// for even lengths). vs is not modified.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Delta is one benchmark's throughput movement between two reports.
type Delta struct {
	Name     string
	Old, New float64 // throughput (bigger is better)
	Pct      float64 // (New/Old - 1) * 100
}

func (d Delta) String() string {
	return fmt.Sprintf("%s: %.0f -> %.0f (%+.1f%%)", d.Name, d.Old, d.New, d.Pct)
}

// Deltas reports the per-benchmark throughput change from baseline to
// current for every benchmark present in both, sorted by name. Unlike
// Compare it reports all movement, improvements included, so a gate run
// can print the whole picture rather than only the failures.
func Deltas(baseline, current Report) []Delta {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var ds []Delta
	for _, cur := range current.Results {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		oldT, okOld := throughput(old)
		curT, okCur := throughput(cur)
		if !okOld || !okCur {
			continue
		}
		ds = append(ds, Delta{
			Name: cur.Name, Old: oldT, New: curT, Pct: (curT/oldT - 1) * 100,
		})
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	return ds
}

// WriteJSON renders the report as stable, indented JSON (results
// sorted by name so reruns diff cleanly).
func (rep Report) WriteJSON(w io.Writer) error {
	sort.Slice(rep.Results, func(i, j int) bool {
		return rep.Results[i].Name < rep.Results[j].Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Load reads a report previously written with WriteJSON.
func Load(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer func() { _ = f.Close() }() // read-only; close cannot lose data
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// Regression describes one benchmark that got worse than tolerated.
type Regression struct {
	Name   string
	Metric string  // "throughput" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
}

func (r Regression) String() string {
	switch {
	case r.Metric == "throughput":
		return fmt.Sprintf("%s: throughput %.0f -> %.0f (%.1f%%)",
			r.Name, r.Old, r.New, (r.New/r.Old-1)*100)
	case strings.HasPrefix(r.Metric, "throughput/"):
		return fmt.Sprintf("%s: %s %.3f -> %.3f (%.1f%%)",
			r.Name, r.Metric, r.Old, r.New, (r.New/r.Old-1)*100)
	default:
		return fmt.Sprintf("%s: %s %.0f -> %.0f", r.Name, r.Metric, r.Old, r.New)
	}
}

// Compare checks current against baseline and returns the benchmarks
// whose throughput dropped by more than tol (e.g. 0.10 for 10%).
// Throughput is instrs/s when reported, else 1/ns-per-op. Benchmarks
// present in only one report are skipped: the gate protects tracked
// metrics, it does not pin the benchmark set. Steady-state allocation
// counts are guarded separately by testing.AllocsPerRun tests, so
// wall-clock noise in B/op is deliberately not gated here.
func Compare(baseline, current Report, tol float64) []Regression {
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current.Results {
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		oldT, okOld := throughput(old)
		curT, okCur := throughput(cur)
		if !okOld || !okCur {
			continue
		}
		if curT < oldT*(1-tol) {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "throughput", Old: oldT, New: curT,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// CompareNormalized is the drift-robust variant of Compare: every
// benchmark's throughput is first divided by the throughput of the ref
// benchmark measured in the same report, and the gate fires when that
// ratio — not the absolute rate — dropped by more than tol. A globally
// slower or faster machine (CI host change, thermal throttling, shared
// tenancy) moves numerator and denominator together and cancels out;
// what remains is how the benchmark moved relative to the reference
// workload, which is what a code change actually shifts. The ref
// benchmark itself cannot be gated this way (its ratio is identically
// 1) and is skipped; absolute movement of the whole suite is visible
// in the Deltas print, not gated.
func CompareNormalized(baseline, current Report, ref string, tol float64) ([]Regression, error) {
	baseRef, okB := refThroughput(baseline, ref)
	curRef, okC := refThroughput(current, ref)
	if !okB || !okC {
		return nil, fmt.Errorf("reference benchmark %q missing from %s report",
			ref, map[bool]string{false: "baseline", true: "current"}[okB])
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var regs []Regression
	for _, cur := range current.Results {
		if cur.Name == ref {
			continue
		}
		old, ok := base[cur.Name]
		if !ok {
			continue
		}
		oldT, okOld := throughput(old)
		curT, okCur := throughput(cur)
		if !okOld || !okCur {
			continue
		}
		oldRatio, curRatio := oldT/baseRef, curT/curRef
		if curRatio < oldRatio*(1-tol) {
			regs = append(regs, Regression{
				Name: cur.Name, Metric: "throughput/" + ref, Old: oldRatio, New: curRatio,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs, nil
}

// refThroughput finds the named benchmark's throughput in a report.
func refThroughput(rep Report, name string) (float64, bool) {
	for _, r := range rep.Results {
		if r.Name == name {
			return throughput(r)
		}
	}
	return 0, false
}

// throughput extracts a bigger-is-better rate from a result.
func throughput(r Result) (float64, bool) {
	if r.InstrsPerSec > 0 {
		return r.InstrsPerSec, true
	}
	if r.NsPerOp > 0 {
		return 1e9 / r.NsPerOp, true
	}
	return 0, false
}
