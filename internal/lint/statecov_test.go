package lint

import (
	"strings"
	"testing"
)

func TestSnapshotCoverageFixture(t *testing.T) {
	runFixtureTest(t, "snapcov.txt", []*Analyzer{NewSnapshotCoverage(newStateEngine())})
}

func TestResetCoverageFixture(t *testing.T) {
	runFixtureTest(t, "resetcov.txt", []*Analyzer{NewResetCoverage(newStateEngine(),
		ResetCoverageConfig{Packages: []string{"catch/sim"}})})
}

func TestKeyCoverageFixture(t *testing.T) {
	runFixtureTest(t, "keycov.txt", []*Analyzer{NewKeyCoverage(newStateEngine())})
}

// TestAnnotationHygieneFixture asserts by substring rather than want
// comments: a reasonless annotation cannot carry an inline want — the
// want text would parse as its reason and erase the finding.
func TestAnnotationHygieneFixture(t *testing.T) {
	diags, _ := lintFixture(t, "anno.txt", []*Analyzer{NewAnnotationHygiene()})
	wantSubstrs := []string{
		"unknown annotation //catch:frobnicate",
		"//catch:nosnap requires a reason",
		"//catch:keyneutral requires a reason",
	}
	if len(diags) != len(wantSubstrs) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrs), formatDiags(diags))
	}
	for _, substr := range wantSubstrs {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic with substring %q in:\n%s", substr, formatDiags(diags))
		}
	}
}
