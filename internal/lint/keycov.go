package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"reflect"
	"strings"
)

// NewKeyCoverage builds the analyzer that proves content keys see
// every behavior-affecting field. Key-derivation functions are marked
// //catch:keyfn (Job.Key, ConfigFingerprint, the trace and sample
// store path functions). For each keyfn:
//
//   - every struct type passed to json.Marshal is walked recursively:
//     an unexported field or a json:"-" field is invisible to the
//     canonical JSON and therefore absent from the key — a finding
//     unless annotated //catch:keyneutral <reason>; a keyneutral on a
//     field that does marshal is stale;
//   - every named-module-struct parameter NOT passed to Marshal must
//     have each of its fields selected somewhere in the function body
//     (the Sprintf-style keys), or be annotated keyneutral.
//
// A backstop catches unannotated key derivations: a function that
// hashes (sha256.Sum256 or snap.Fnv1a) the output of json.Marshal, or
// sha256-hashes with spec structs in scope, must carry //catch:keyfn
// so its inputs stay checked as they grow.
func NewKeyCoverage(eng *stateEngine) *Analyzer {
	a := &Analyzer{
		Name: "key-coverage",
		Doc:  "every field of key/spec structs flows into the content key derived by //catch:keyfn functions, or carries //catch:keyneutral <reason>",
	}
	a.Run = func(pass *Pass) { eng.collect(pass) }
	a.End = func(report func(Diagnostic)) {
		c := &keyChecker{eng: eng, report: report, consumed: make(map[*anno]bool)}
		c.check()
	}
	return a
}

type keyChecker struct {
	eng      *stateEngine
	report   func(Diagnostic)
	consumed map[*anno]bool
}

func (c *keyChecker) reportf(pos token.Pos, format string, args ...any) {
	c.report(Diagnostic{
		Analyzer: "key-coverage",
		Pos:      c.eng.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

func (c *keyChecker) check() {
	for _, ff := range c.eng.sortedFuncs() {
		if an := ff.anno["keyfn"]; an != nil {
			c.consumed[an] = true
			c.checkKeyfn(ff, an)
			continue
		}
		c.backstop(ff)
	}
	c.staleKeyneutral()
}

// checkKeyfn verifies one key-derivation function's inputs.
func (c *keyChecker) checkKeyfn(ff *funcFacts, an *anno) {
	visited := make(map[*types.TypeName]bool)
	marshaled := make(map[*types.TypeName]bool)
	for _, mt := range ff.marshals {
		for _, tn := range c.eng.containedStructs(mt) {
			marshaled[tn] = true
			c.jsonWalk(ff, tn, visited)
		}
	}
	sig, ok := ff.obj.Type().(*types.Signature)
	if !ok {
		return
	}
	checkedAny := len(marshaled) > 0
	for i := 0; i < sig.Params().Len(); i++ {
		tn := namedStructOf(sig.Params().At(i).Type())
		if tn == nil || c.eng.structs[tn] == nil || isSnapPkg(tn.Pkg()) || marshaled[tn] {
			continue
		}
		checkedAny = true
		c.selectWalk(ff, tn)
	}
	if !checkedAny {
		c.reportf(an.pos, "stale //catch:keyfn on %s: no spec-struct parameters and no json.Marshal calls to check", funcDisplayName(ff.obj))
	}
}

// jsonWalk checks one struct type reached by a canonical-JSON key:
// every field must be visible to encoding/json or be declared
// key-neutral.
func (c *keyChecker) jsonWalk(ff *funcFacts, tn *types.TypeName, visited map[*types.TypeName]bool) {
	if visited[tn] || isSnapPkg(tn.Pkg()) {
		return
	}
	visited[tn] = true
	sf := c.eng.structs[tn]
	if sf == nil {
		return
	}
	for i, fv := range sf.fields {
		an := sf.anno(fv, "keyneutral")
		if an != nil {
			c.consumed[an] = true
		}
		if isFuncField(fv.Type()) {
			continue
		}
		tag := jsonTagName(sf.st.Tag(i))
		switch {
		case !fv.Exported() && !fv.Embedded():
			if an == nil {
				c.reportf(fv.Pos(), "unexported field %s is invisible to the canonical JSON in %s and so absent from the content key (export it or annotate //catch:keyneutral <reason>)",
					fieldName(tn, fv), funcDisplayName(ff.obj))
			}
			continue
		case tag == "-":
			if an == nil {
				c.reportf(fv.Pos(), "field %s is tagged json:\"-\" and so absent from the content key derived by %s (drop the tag or annotate //catch:keyneutral <reason>)",
					fieldName(tn, fv), funcDisplayName(ff.obj))
			}
			continue
		}
		if an != nil {
			c.reportf(an.pos, "stale //catch:keyneutral on %s: the field marshals into the canonical-JSON key",
				fieldName(tn, fv))
		}
		for _, ct := range c.eng.containedStructs(fv.Type()) {
			c.jsonWalk(ff, ct, visited)
		}
	}
}

// selectWalk checks a spec struct handed to a keyfn by parameter:
// every field must be selected in the function body (flow into the
// Sprintf/hash) or be declared key-neutral.
func (c *keyChecker) selectWalk(ff *funcFacts, tn *types.TypeName) {
	sf := c.eng.structs[tn]
	for _, fv := range sf.fields {
		an := sf.anno(fv, "keyneutral")
		if an != nil {
			c.consumed[an] = true
		}
		if isFuncField(fv.Type()) {
			continue
		}
		if ff.sel[fv] {
			if an != nil {
				c.reportf(an.pos, "stale //catch:keyneutral on %s: the field flows into the key derived by %s",
					fieldName(tn, fv), funcDisplayName(ff.obj))
			}
			continue
		}
		if an == nil {
			c.reportf(fv.Pos(), "field %s does not flow into the content key derived by %s (use it or annotate //catch:keyneutral <reason>)",
				fieldName(tn, fv), funcDisplayName(ff.obj))
		}
	}
}

// backstop flags unannotated functions that look like key derivations.
func (c *keyChecker) backstop(ff *funcFacts) {
	if isSnapPkg(ff.obj.Pkg()) {
		return
	}
	hashesJSON := (ff.callsSha || ff.callsFnv) && len(ff.marshals) > 0
	hashesSpec := ff.callsSha && c.hasStructParamOrRecv(ff)
	if hashesJSON || hashesSpec {
		c.reportf(ff.decl.Pos(), "%s hashes spec data into what looks like a content key; annotate //catch:keyfn so key-coverage can check its inputs",
			funcDisplayName(ff.obj))
	}
}

func (c *keyChecker) hasStructParamOrRecv(ff *funcFacts) bool {
	sig, ok := ff.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := receiverStruct(ff.obj); recv != nil && c.eng.structs[recv] != nil {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		tn := namedStructOf(sig.Params().At(i).Type())
		if tn != nil && c.eng.structs[tn] != nil && !isSnapPkg(tn.Pkg()) {
			return true
		}
	}
	return false
}

// staleKeyneutral reports keyneutral annotations no keyfn ever
// consulted — the annotated type is not part of any key.
func (c *keyChecker) staleKeyneutral() {
	for _, sf := range c.eng.sortedStructs() {
		for _, fv := range sf.fields {
			an := sf.anno(fv, "keyneutral")
			if an == nil || c.consumed[an] {
				continue
			}
			c.reportf(an.pos, "stale //catch:keyneutral on %s: %s is not examined by any //catch:keyfn function",
				fieldName(sf.obj, fv), qualified(sf.obj))
		}
	}
}

// jsonTagName extracts the json name component of a struct tag.
func jsonTagName(tag string) string {
	v := reflect.StructTag(tag).Get("json")
	if i := strings.IndexByte(v, ','); i >= 0 {
		v = v[:i]
	}
	return v
}
