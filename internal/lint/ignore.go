package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression directive:
//
//	//catchlint:ignore <analyzer> <reason>
//
// A directive suppresses findings by the named analyzer on its own
// line (trailing-comment form) or on the line directly below it
// (standalone-comment form). The reason is mandatory — a suppression
// without a recorded justification is reported as malformed — and a
// directive that suppresses nothing is reported as stale so it cannot
// outlive the finding it excused.
const ignorePrefix = "//catchlint:ignore"

// ignoreAnalyzer is the pseudo-analyzer name under which malformed,
// unknown and stale directives are reported.
const ignoreAnalyzer = "ignore"

type ignoreDirective struct {
	pos      token.Position
	analyzer string
	used     bool
}

// applyIgnores filters diags through the //catchlint:ignore
// directives found in pkgs and appends diagnostics for malformed,
// unknown-analyzer and stale directives. known holds the valid
// analyzer names.
func applyIgnores(fset *token.FileSet, pkgs []*Package, diags []Diagnostic, known map[string]bool) []Diagnostic {
	var directives []*ignoreDirective
	var bad []Diagnostic
	index := make(map[string][]*ignoreDirective)
	key := func(file string, line int, analyzer string) string {
		return fmt.Sprintf("%s\x00%d\x00%s", file, line, analyzer)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
					if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{Analyzer: ignoreAnalyzer, Pos: pos,
							Message: "malformed suppression: want //catchlint:ignore <analyzer> <reason>"})
						continue
					}
					if !known[fields[0]] {
						bad = append(bad, Diagnostic{Analyzer: ignoreAnalyzer, Pos: pos,
							Message: fmt.Sprintf("suppression names unknown analyzer %q", fields[0])})
						continue
					}
					d := &ignoreDirective{pos: pos, analyzer: fields[0]}
					directives = append(directives, d)
					index[key(pos.Filename, pos.Line, d.analyzer)] = append(index[key(pos.Filename, pos.Line, d.analyzer)], d)
					index[key(pos.Filename, pos.Line+1, d.analyzer)] = append(index[key(pos.Filename, pos.Line+1, d.analyzer)], d)
				}
			}
		}
	}

	var out []Diagnostic
	for _, dg := range diags {
		matched := false
		for _, d := range index[key(dg.Pos.Filename, dg.Pos.Line, dg.Analyzer)] {
			d.used = true
			matched = true
		}
		if !matched {
			out = append(out, dg)
		}
	}
	for _, d := range directives {
		if !d.used {
			out = append(out, Diagnostic{Analyzer: ignoreAnalyzer, Pos: d.pos,
				Message: fmt.Sprintf("stale suppression: no %s finding on this or the next line", d.analyzer)})
		}
	}
	return append(out, bad...)
}
