package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismConfig scopes the determinism analyzer to the
// result-producing packages and exempts files that are deliberate,
// audited sources of controlled randomness.
type DeterminismConfig struct {
	// Packages lists the import paths whose output feeds simulation
	// results and therefore must be bit-reproducible.
	Packages []string
	// AllowFiles holds slash-separated path suffixes exempt from all
	// determinism checks (the seeded PRNG implementation itself).
	AllowFiles []string
}

// DefaultDeterminismConfig covers every package whose computation
// lands in a Result, table or golden figure. internal/runner and
// internal/telemetry are deliberately out of scope: engine timing,
// uptime and trace timestamps are legitimately wall-clock-based.
// internal/fault IS in scope even though it never touches a Result:
// its whole contract is that fault schedules, breaker transitions and
// backoff jitter replay identically from a seed, which a stray
// time.Now or global rand call would silently break.
// internal/cluster is in scope for the same reason: shard assembly,
// ring ownership and steal reclaim all must replay identically, and
// the few wall-clock reads it legitimately needs (peer-call latency
// observation) carry explicit catchlint:ignore audits.
// internal/sample is in scope because its whole output is a Result:
// interval profiling, feature extraction, the seeded k-means
// clustering and the stratified extrapolation must all be
// bit-reproducible for a given (config, workload, spec) key, and the
// snapshot images it stores are content-addressed by that same
// determinism.
func DefaultDeterminismConfig() DeterminismConfig {
	return DeterminismConfig{
		Packages: []string{
			"catch",
			"catch/internal/cache",
			"catch/internal/cluster",
			"catch/internal/config",
			"catch/internal/core",
			"catch/internal/cpu",
			"catch/internal/criticality",
			"catch/internal/experiments",
			"catch/internal/fault",
			"catch/internal/interconnect",
			"catch/internal/memory",
			"catch/internal/power",
			"catch/internal/prefetch",
			"catch/internal/sample",
			"catch/internal/stats",
			"catch/internal/tact",
			"catch/internal/trace",
			"catch/internal/workloads",
		},
		AllowFiles: []string{"internal/trace/rng.go"},
	}
}

// allowedRandConstructors are the math/rand functions that build a
// locally-seeded generator rather than touching the global one.
var allowedRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// NewDeterminism builds the determinism analyzer: inside the scoped
// packages it forbids wall-clock reads (time.Now, time.Since), global
// math/rand state, and ranging over maps (whose iteration order is
// deliberately randomized by the runtime). The one allowed map-range
// shape is the collect-keys idiom — a single-statement body appending
// the range key to a slice — because the caller sorts the collected
// keys before use; every other map range must either be rewritten
// over sorted keys or carry a //catchlint:ignore with a reason why
// its order cannot reach a result.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	inScope := make(map[string]bool, len(cfg.Packages))
	for _, p := range cfg.Packages {
		inScope[p] = true
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads, global math/rand and unsorted map iteration in result-producing packages",
	}
	a.Run = func(pass *Pass) {
		if !inScope[pass.Path] {
			return
		}
		for _, f := range pass.Files {
			name := pass.Fset.Position(f.Pos()).Filename
			if allowedFile(name, cfg.AllowFiles) {
				continue
			}
			checkDeterminism(pass, f)
		}
	}
	return a
}

func allowedFile(filename string, suffixes []string) bool {
	slashed := strings.ReplaceAll(filename, "\\", "/")
	for _, s := range suffixes {
		if strings.HasSuffix(slashed, s) {
			return true
		}
	}
	return false
}

func checkDeterminism(pass *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := pass.Info.Uses[n.Sel]
			fn, ok := obj.(*types.Func)
			if !ok {
				return true
			}
			switch pkgPathOf(fn) {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Reportf(n.Pos(), "time.%s in a result-producing package: simulation output must not depend on wall-clock time", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if fn.Type().(*types.Signature).Recv() == nil && !allowedRandConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "global math/rand.%s in a result-producing package: use the seeded internal/trace RNG (or an explicitly seeded *rand.Rand)", fn.Name())
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if isCollectKeysLoop(pass.Info, n) {
				return true
			}
			pass.Reportf(n.Pos(), "range over a map in a result-producing package: iteration order is nondeterministic; iterate over sorted keys instead")
		}
		return true
	})
}

// isCollectKeysLoop matches `for k := range m { s = append(s, k) }`,
// the idiom that gathers keys for sorting: order-insensitive because
// only the (sorted-later) key set escapes the loop.
func isCollectKeysLoop(info *types.Info, rng *ast.RangeStmt) bool {
	if rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyIdent, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(asg.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	} else if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok && info.Uses[arg] == info.Defs[keyIdent]
}
