package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureFile is one file of a txtar-style fixture archive.
type fixtureFile struct {
	name string
	data string
}

// parseArchive reads the minimal txtar format used by testdata/*.txt:
// an optional leading comment, then a sequence of "-- filename --"
// separator lines, each followed by the file's contents up to the
// next separator.
func parseArchive(t *testing.T, path string) []fixtureFile {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var files []fixtureFile
	var cur *fixtureFile
	for _, line := range strings.SplitAfter(string(data), "\n") {
		trimmed := strings.TrimSuffix(line, "\n")
		if name, ok := strings.CutPrefix(trimmed, "-- "); ok && strings.HasSuffix(name, " --") {
			files = append(files, fixtureFile{name: strings.TrimSuffix(name, " --")})
			cur = &files[len(files)-1]
			continue
		}
		if cur == nil {
			continue // archive comment before the first file
		}
		cur.data += line
	}
	if len(files) == 0 {
		t.Fatalf("%s: no files in archive", path)
	}
	return files
}

// writeFixture materializes the archive in a temp dir (adding a
// default go.mod when the archive does not carry one) and returns the
// module root.
func writeFixture(t *testing.T, files []fixtureFile) string {
	t.Helper()
	root := t.TempDir()
	hasMod := false
	for _, f := range files {
		if f.name == "go.mod" {
			hasMod = true
		}
		dst := filepath.Join(root, filepath.FromSlash(f.name))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, []byte(f.data), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if !hasMod {
		if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module catch\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// lintFixture loads the archive as a module and runs the analyzers
// over every package in it.
func lintFixture(t *testing.T, archive string, analyzers []*Analyzer) ([]Diagnostic, string) {
	t.Helper()
	files := parseArchive(t, filepath.Join("testdata", archive))
	root := writeFixture(t, files)
	ld, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := ld.loadModule()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("%s: fixture loaded no packages", archive)
	}
	diags, err := RunPackages(ld.fset, pkgs, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return diags, root
}

// wantRe matches an expectation comment: want <analyzer> "<substring>".
var wantRe = regexp.MustCompile(`want ([a-z-]+) "([^"]*)"`)

type want struct {
	file     string // archive-relative path
	line     int
	analyzer string
	substr   string
	matched  bool
}

// collectWants scans the fixture sources for `// want a "msg"`
// expectation comments.
func collectWants(files []fixtureFile) []*want {
	var wants []*want
	for _, f := range files {
		if !strings.HasSuffix(f.name, ".go") {
			continue
		}
		for i, line := range strings.Split(f.data, "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &want{file: f.name, line: i + 1, analyzer: m[1], substr: m[2]})
			}
		}
	}
	return wants
}

// checkWants verifies that the diagnostics are exactly the ones the
// fixture's want comments declare: every want matched by a diagnostic
// on its file:line, and no diagnostic without a want.
func checkWants(t *testing.T, archive, root string, diags []Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			t.Fatalf("%s: diagnostic outside fixture root: %s", archive, d)
		}
		rel = filepath.ToSlash(rel)
		matched := false
		for _, w := range wants {
			if w.matched || w.file != rel || w.line != d.Pos.Line || w.analyzer != d.Analyzer {
				continue
			}
			if !strings.Contains(d.Message, w.substr) {
				t.Errorf("%s: %s:%d [%s]: got message %q, want substring %q", archive, rel, d.Pos.Line, d.Analyzer, d.Message, w.substr)
			}
			w.matched = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic %s:%d:%d: %s [%s]", archive, rel, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected %s finding at %s:%d (substring %q), got none", archive, w.analyzer, w.file, w.line, w.substr)
		}
	}
}

// runFixtureTest is the shared driver: load, lint, diff against wants.
func runFixtureTest(t *testing.T, archive string, analyzers []*Analyzer) {
	t.Helper()
	files := parseArchive(t, filepath.Join("testdata", archive))
	diags, root := lintFixture(t, archive, analyzers)
	checkWants(t, archive, root, diags, collectWants(files))
}

func TestDeterminismFixture(t *testing.T) {
	runFixtureTest(t, "determinism.txt", []*Analyzer{NewDeterminism(DeterminismConfig{
		Packages:   []string{"catch/detfix"},
		AllowFiles: []string{"detfix/allowed.go"},
	})})
}

func TestHotpathFixture(t *testing.T) {
	runFixtureTest(t, "hotpath.txt", []*Analyzer{NewHotpathNoalloc()})
}

func TestAtomicFixture(t *testing.T) {
	runFixtureTest(t, "atomic.txt", []*Analyzer{NewAtomicConsistency()})
}

func TestTelemetryFixture(t *testing.T) {
	runFixtureTest(t, "telemetry.txt", []*Analyzer{NewTelemetryDiscipline()})
}

func TestErrorHygieneFixture(t *testing.T) {
	runFixtureTest(t, "errhygiene.txt", []*Analyzer{NewErrorHygiene()})
}

// TestErrorHygieneFaultWrapperFixture pins the stricter in-package
// rule: fault decorator methods may not discard errors even with the
// explicit `_ =` form that the base analyzer accepts.
func TestErrorHygieneFaultWrapperFixture(t *testing.T) {
	runFixtureTest(t, "errhygiene_fault.txt", []*Analyzer{NewErrorHygiene()})
}

// TestIgnoreSuppression exercises the //catchlint:ignore machinery
// end to end against the full analyzer set: a correctly targeted
// directive (standalone or trailing form) silences its finding, while
// stale, malformed and unknown-analyzer directives are themselves
// reported.
func TestIgnoreSuppression(t *testing.T) {
	diags, _ := lintFixture(t, "ignore.txt", Analyzers())

	for _, d := range diags {
		if d.Analyzer != ignoreAnalyzer {
			t.Errorf("finding escaped suppression: %s", d)
		}
	}
	wantSubstrs := []string{
		"stale suppression: no hotpath-noalloc finding on this or the next line",
		"malformed suppression: want //catchlint:ignore <analyzer> <reason>",
		`suppression names unknown analyzer "no-such-analyzer"`,
	}
	if len(diags) != len(wantSubstrs) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(wantSubstrs), formatDiags(diags))
	}
	for _, substr := range wantSubstrs {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, substr) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic with substring %q in:\n%s", substr, formatDiags(diags))
		}
	}
}

// TestIgnoreWrongAnalyzerDoesNotSuppress pins the per-analyzer scoping
// of directives: naming a different (valid) analyzer leaves the actual
// finding live and marks the directive stale.
func TestIgnoreWrongAnalyzerDoesNotSuppress(t *testing.T) {
	diags, _ := lintFixture(t, "ignore_mismatch.txt", Analyzers())

	var hotpath, stale int
	for _, d := range diags {
		switch {
		case d.Analyzer == "hotpath-noalloc":
			hotpath++
		case d.Analyzer == ignoreAnalyzer && strings.Contains(d.Message, "stale suppression"):
			stale++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if hotpath != 1 || stale != 1 {
		t.Errorf("got %d hotpath-noalloc and %d stale diagnostics, want 1 and 1:\n%s", hotpath, stale, formatDiags(diags))
	}
}

func formatDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "  %s\n", d)
	}
	return sb.String()
}

// TestRepoClean runs the full analyzer suite over this module and
// requires a clean report: the repository's own code is the seventh
// fixture, and any new violation fails `go test ./internal/lint`
// before it even reaches `make lint`.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module typecheck is a few seconds; skipped in -short")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(root, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
