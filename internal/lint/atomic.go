package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// NewAtomicConsistency builds the atomic-consistency analyzer: a
// struct field or package-level variable that is ever accessed
// through a sync/atomic function (atomic.AddUint64(&x.f, 1), ...)
// must never be read or written plainly anywhere else in the module —
// a single plain access next to atomic ones is a data race the race
// detector only catches if a test happens to interleave it. Variables
// of the sync/atomic value types (atomic.Uint64 et al.) are already
// safe by construction — their state is unexported — so the analyzer
// concerns itself only with the function-based API.
//
// The analyzer is module-global: facts accumulate across packages
// (the loader typechecks each package once, so types.Var identities
// are stable) and are reported from the End hook.
func NewAtomicConsistency() *Analyzer {
	type access struct {
		pos   token.Position
		write bool
	}
	type fieldFacts struct {
		name     string
		atomicAt token.Position
		atomic   int
		plain    []access
	}
	facts := make(map[*types.Var]*fieldFacts)

	a := &Analyzer{
		Name: "atomic-consistency",
		Doc:  "a field accessed via sync/atomic must never be accessed plainly",
	}
	a.Run = func(pass *Pass) {
		// Selector expressions consumed by an atomic call, so the
		// plain-access walk below skips them.
		atomicArgs := make(map[ast.Expr]bool)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeObj(pass.Info, call)
				if !isAtomicFunc(obj) || len(call.Args) == 0 {
					return true
				}
				target := atomicTarget(pass.Info, call.Args[0])
				if target == nil {
					return true
				}
				v := trackedVar(pass.Info, target)
				if v == nil {
					return true
				}
				atomicArgs[target] = true
				ff := facts[v]
				if ff == nil {
					ff = &fieldFacts{name: v.Name(), atomicAt: pass.Fset.Position(call.Pos())}
					facts[v] = ff
				}
				ff.atomic++
				return true
			})
		}
		for _, f := range pass.Files {
			inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
				expr, ok := n.(ast.Expr)
				if !ok || atomicArgs[expr] {
					return true
				}
				v := trackedVar(pass.Info, expr)
				if v == nil {
					return true
				}
				// Only the outermost selector of a chain counts; its
				// parent must not itself be (part of) the same access.
				if len(stack) > 0 {
					if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.Sel != n {
						return true
					}
				}
				ff := facts[v]
				if ff == nil {
					ff = &fieldFacts{name: v.Name()}
					facts[v] = ff
				}
				ff.plain = append(ff.plain, access{pos: pass.Fset.Position(n.Pos()), write: isWriteContext(n, stack)})
				return true
			})
		}
	}
	a.End = func(report func(Diagnostic)) {
		for _, ff := range facts {
			if ff.atomic == 0 || len(ff.plain) == 0 {
				continue
			}
			sort.Slice(ff.plain, func(i, j int) bool {
				if ff.plain[i].pos.Filename != ff.plain[j].pos.Filename {
					return ff.plain[i].pos.Filename < ff.plain[j].pos.Filename
				}
				return ff.plain[i].pos.Line < ff.plain[j].pos.Line
			})
			for _, acc := range ff.plain {
				verb := "read"
				if acc.write {
					verb = "written"
				}
				report(Diagnostic{
					Analyzer: a.Name,
					Pos:      acc.pos,
					Message: fmt.Sprintf("%s is updated with sync/atomic (e.g. %s:%d) but %s plainly here: mixed access is a data race",
						ff.name, ff.atomicAt.Filename, ff.atomicAt.Line, verb),
				})
			}
		}
	}
	return a
}

// isAtomicFunc reports whether obj is a package-level sync/atomic
// function that operates on a pointed-to location.
func isAtomicFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || pkgPathOf(fn) != "sync/atomic" || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(fn.Name(), prefix) {
			return true
		}
	}
	return false
}

// atomicTarget unwraps &expr from an atomic call's first argument and
// returns the addressed expression.
func atomicTarget(info *types.Info, arg ast.Expr) ast.Expr {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return ast.Unparen(u.X)
}

// trackedVar resolves expr to a struct field or package-level
// variable worth tracking (locals are skipped: they cannot be shared
// before they escape, at which point they are fields or globals).
func trackedVar(info *types.Info, expr ast.Expr) *types.Var {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		// Package-qualified global: pkg.Var.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Parent() == v.Pkg().Scope() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

// isWriteContext reports whether the expression at the top of stack
// is being assigned, incremented, or having its address taken.
func isWriteContext(n ast.Node, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.AssignStmt:
		for _, lhs := range parent.Lhs {
			if ast.Unparen(lhs) == n {
				return true
			}
		}
	case *ast.IncDecStmt:
		return ast.Unparen(parent.X) == n
	case *ast.UnaryExpr:
		// Taking the address outside an atomic call allows arbitrary
		// aliased plain access; treat it as a write.
		return parent.Op == token.AND
	}
	return false
}
