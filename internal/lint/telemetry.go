package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// telemetryPath is the import path of the observability layer whose
// usage discipline this analyzer enforces.
const telemetryPath = "catch/internal/telemetry"

// registryHandleMethods are the (*telemetry.Registry) methods that
// mint metric handles. Handle acquisition takes the registry lock and
// allocates; it belongs in constructors, never per-event.
var registryHandleMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

// NewTelemetryDiscipline builds the telemetry-discipline analyzer.
// Two rules:
//
//  1. Metric handles ((*Registry).Counter/Gauge/Histogram/...) must
//     be obtained at construction time — not inside a loop and not
//     inside a //catch:hotpath function. The handles are designed to
//     be cached once and updated with a single atomic op.
//
//  2. (*Tracer).Emit must be behind an enabled check: an if whose
//     condition calls Enabled()/Sampled() (directly or through a
//     boolean variable assigned from such a call), or after an early
//     `if !enabled { return }` guard. Emit itself no-ops when
//     disabled, but building its Event argument is not free — the
//     guard is what keeps the disabled tracer at one predicted branch.
func NewTelemetryDiscipline() *Analyzer {
	a := &Analyzer{
		Name: "telemetry-discipline",
		Doc:  "metric handles at construction time; tracer emission behind an enabled-check",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkTelemetry(pass, fn)
			}
		}
	}
	return a
}

func checkTelemetry(pass *Pass, fn *ast.FuncDecl) {
	hot := hasHotpathDirective(fn)
	guards := collectEnabledGuards(pass, fn)
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObj(pass.Info, call)
		if isMethodOn(obj, telemetryPath, "Registry") && registryHandleMethods[obj.Name()] {
			switch {
			case hot:
				pass.Reportf(call.Pos(), "metric handle (*Registry).%s obtained inside //catch:hotpath function %s: acquire handles at construction time", obj.Name(), fn.Name.Name)
			case insideLoop(stack):
				pass.Reportf(call.Pos(), "metric handle (*Registry).%s obtained inside a loop: acquire handles once at construction time", obj.Name())
			}
		}
		if isMethodOn(obj, telemetryPath, "Tracer") && obj.Name() == "Emit" {
			if !emitGuarded(pass, fn, call, stack, guards) {
				pass.Reportf(call.Pos(), "(*Tracer).Emit without an Enabled()/Sampled() guard: building the Event is not free when tracing is off")
			}
		}
		return true
	})
}

// insideLoop reports whether the node whose ancestors are stack sits
// in a for or range statement (function literals reset the scope: a
// constructor closure registered once is not a loop body).
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit:
			return false
		}
	}
	return false
}

// isEnabledCall matches t.Enabled() / t.Sampled() on *telemetry.Tracer.
func isEnabledCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	obj := calleeObj(pass.Info, call)
	return isMethodOn(obj, telemetryPath, "Tracer") && (obj.Name() == "Enabled" || obj.Name() == "Sampled")
}

// collectEnabledGuards finds boolean variables assigned from an
// Enabled()/Sampled() call anywhere in fn (`tracing := t.Enabled()`).
func collectEnabledGuards(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	guards := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		hasEnabled := false
		for _, rhs := range asg.Rhs {
			ast.Inspect(rhs, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok && isEnabledCall(pass, e) {
					hasEnabled = true
				}
				return !hasEnabled
			})
		}
		if !hasEnabled {
			return true
		}
		for _, lhs := range asg.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := pass.Info.Defs[id]; obj != nil {
					guards[obj] = true
				} else if obj := pass.Info.Uses[id]; obj != nil {
					guards[obj] = true
				}
			}
		}
		return true
	})
	return guards
}

// condMentionsGuard reports whether cond contains an
// Enabled()/Sampled() call or a guard variable.
func condMentionsGuard(pass *Pass, cond ast.Expr, guards map[types.Object]bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isEnabledCall(pass, n) {
				found = true
			}
		case *ast.Ident:
			if guards[pass.Info.Uses[n]] {
				found = true
			}
		}
		return !found
	})
	return found
}

// emitGuarded reports whether an Emit call is dominated by an
// enabled-check: an ancestor if-statement whose condition mentions
// Enabled()/Sampled() or a guard variable, or an earlier
// `if !enabled { return }` statement in the enclosing function body.
func emitGuarded(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr, stack []ast.Node, guards map[types.Object]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		ifStmt, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		if condMentionsGuard(pass, ifStmt.Cond, guards) {
			return true
		}
	}
	for _, stmt := range fn.Body.List {
		if stmt.End() >= call.Pos() {
			break
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		if !ok || len(ifStmt.Body.List) == 0 {
			continue
		}
		if _, ret := ifStmt.Body.List[len(ifStmt.Body.List)-1].(*ast.ReturnStmt); !ret {
			continue
		}
		if u, ok := ast.Unparen(ifStmt.Cond).(*ast.UnaryExpr); ok && u.Op == token.NOT {
			if isEnabledCall(pass, u.X) || condMentionsGuard(pass, u.X, guards) {
				return true
			}
		}
	}
	return false
}
