package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, typechecked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader discovers, parses and typechecks the packages of a single
// module. Imports inside the module are resolved from the loader's own
// results; everything else (the standard library — the module has no
// external dependencies) is delegated to go/importer's source
// importer, which shares our FileSet. Each package is typechecked
// exactly once, so types.Object identities are stable across passes —
// the atomic-consistency analyzer and the state-coverage engine rely
// on that to correlate fields between packages.
//
// Loading runs in two parallel phases. Directory scanning and parsing
// fan out freely (token.FileSet is internally synchronized; positions
// render as file:line:col, so FileSet base order does not affect
// output). Typechecking fans out in dependency order: each package
// first waits for its module-internal imports to finish, then takes a
// GOMAXPROCS slot — waiting before acquiring keeps a full semaphore of
// blocked dependents from deadlocking the pipeline. The source
// importer for the standard library is not safe for concurrent use and
// is serialized behind stdMu.
type loader struct {
	root       string
	modulePath string
	fset       *token.FileSet
	std        types.ImporterFrom
	stdMu      sync.Mutex

	mu   sync.Mutex
	pkgs map[string]*Package
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer does not support ImportFrom")
	}
	return &loader{
		root:       abs,
		modulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
	}, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w (is %s a module root?)", err, root)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// scanned is one parsed-but-not-yet-typechecked package.
type scanned struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// loadModule loads every Go package in the module and returns them
// sorted by import path.
func (ld *loader) loadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(ld.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	scans, err := ld.scanAll(dirs)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*scanned, len(scans))
	for _, sc := range scans {
		byPath[sc.path] = sc
	}
	if err := checkAcyclic(byPath); err != nil {
		return nil, err
	}
	if err := ld.checkAll(scans, byPath); err != nil {
		return nil, err
	}

	pkgs := make([]*Package, 0, len(scans))
	for _, sc := range scans {
		pkgs = append(pkgs, ld.pkgs[sc.path])
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// scanAll imports and parses every package directory concurrently.
func (ld *loader) scanAll(dirs []string) ([]*scanned, error) {
	results := make([]*scanned, len(dirs))
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i], errs[i] = ld.scan(dir)
		}(i, dir)
	}
	wg.Wait()

	var out []*scanned
	var joined []error
	for i, sc := range results {
		if errs[i] != nil {
			var noGo *build.NoGoError
			if errors.As(errs[i], &noGo) {
				continue // directory without Go files
			}
			joined = append(joined, errs[i])
			continue
		}
		out = append(out, sc)
	}
	if len(joined) > 0 {
		return nil, errors.Join(joined...)
	}
	return out, nil
}

// scan imports and parses one package directory. Test files are
// excluded: the invariants the analyzers encode are about shipped
// simulator code, and error-hygiene explicitly scopes itself to
// non-test code.
func (ld *loader) scan(dir string) (*scanned, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	sc := &scanned{path: ld.importPathFor(dir), dir: dir}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		sc.files = append(sc.files, f)
	}
	for _, imp := range bp.Imports {
		if imp == ld.modulePath || strings.HasPrefix(imp, ld.modulePath+"/") {
			sc.imports = append(sc.imports, imp)
		}
	}
	return sc, nil
}

// checkAcyclic rejects module-internal import cycles up front — the
// dependency-ordered typecheck phase below would otherwise wait on
// them forever.
func checkAcyclic(byPath map[string]*scanned) error {
	const (
		visiting = 1
		done     = 2
	)
	state := make(map[string]int, len(byPath))
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", path)
		case done:
			return nil
		}
		state[path] = visiting
		sc := byPath[path]
		if sc != nil {
			for _, imp := range sc.imports {
				if _, ok := byPath[imp]; !ok {
					continue
				}
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		state[path] = done
		return nil
	}
	for path := range byPath {
		if err := visit(path); err != nil {
			return err
		}
	}
	return nil
}

// errDepFailed marks packages skipped because a dependency failed; the
// dependency's own error is the one worth reporting.
var errDepFailed = errors.New("dependency failed")

// checkAll typechecks every scanned package, fanned out across
// GOMAXPROCS in dependency order.
func (ld *loader) checkAll(scans []*scanned, byPath map[string]*scanned) error {
	ready := make(map[string]chan struct{}, len(scans))
	for _, sc := range scans {
		ready[sc.path] = make(chan struct{})
	}
	errs := make([]error, len(scans))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, sc := range scans {
		wg.Add(1)
		go func(i int, sc *scanned) {
			defer wg.Done()
			defer close(ready[sc.path])
			// Wait for dependencies BEFORE taking a worker slot:
			// a blocked dependent must not occupy the semaphore its
			// dependency needs to make progress.
			failedDep := false
			for _, imp := range sc.imports {
				ch, ok := ready[imp]
				if !ok {
					continue
				}
				<-ch
				if ld.get(imp) == nil {
					failedDep = true
				}
			}
			if failedDep {
				errs[i] = errDepFailed
				return
			}
			sem <- struct{}{}
			defer func() { <-sem }()
			pkg, err := ld.check(sc)
			if err != nil {
				errs[i] = err
				return
			}
			ld.put(pkg)
		}(i, sc)
	}
	wg.Wait()

	var joined []error
	for _, err := range errs {
		if err != nil && !errors.Is(err, errDepFailed) {
			joined = append(joined, err)
		}
	}
	return errors.Join(joined...)
}

func (ld *loader) get(path string) *Package {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	return ld.pkgs[path]
}

func (ld *loader) put(pkg *Package) {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	ld.pkgs[pkg.Path] = pkg
}

// check typechecks one package whose module-internal dependencies have
// already been checked.
func (ld *loader) check(sc *scanned) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == ld.modulePath || strings.HasPrefix(imp, ld.modulePath+"/") {
				pkg := ld.get(imp)
				if pkg == nil {
					return nil, fmt.Errorf("lint: internal import %s not loaded", imp)
				}
				return pkg.Types, nil
			}
			ld.stdMu.Lock()
			defer ld.stdMu.Unlock()
			return ld.std.ImportFrom(imp, sc.dir, 0)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(sc.path, ld.fset, sc.files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typecheck %s: %w", sc.path, errors.Join(typeErrs...))
	}
	return &Package{Path: sc.path, Dir: sc.dir, Files: sc.files, Types: tpkg, Info: info}, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modulePath
	}
	return ld.modulePath + "/" + filepath.ToSlash(rel)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
