package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package of the module under
// analysis.
type Package struct {
	Path  string // import path
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader discovers, parses and typechecks the packages of a single
// module. Imports inside the module are resolved recursively from
// source; everything else (the standard library — the module has no
// external dependencies) is delegated to go/importer's source
// importer, which shares our FileSet. Each package is typechecked at
// most once, so types.Object identities are stable across passes —
// the atomic-consistency analyzer relies on that to correlate field
// accesses between packages.
type loader struct {
	root       string
	modulePath string
	fset       *token.FileSet
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

func newLoader(root string) (*loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, errors.New("lint: source importer does not support ImportFrom")
	}
	return &loader{
		root:       abs,
		modulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w (is %s a module root?)", err, root)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// loadModule walks the module tree and loads every Go package in it,
// returning them sorted by import path.
func (ld *loader) loadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(ld.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != ld.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := ld.load(ld.importPathFor(dir))
		if err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (ld *loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil || rel == "." {
		return ld.modulePath
	}
	return ld.modulePath + "/" + filepath.ToSlash(rel)
}

// dirFor is the inverse of importPathFor.
func (ld *loader) dirFor(path string) string {
	if path == ld.modulePath {
		return ld.root
	}
	return filepath.Join(ld.root, filepath.FromSlash(strings.TrimPrefix(path, ld.modulePath+"/")))
}

// load parses and typechecks one module package (and, recursively,
// its module-internal imports). Test files are excluded: the
// invariants the analyzers encode are about shipped simulator code,
// and error-hygiene explicitly scopes itself to non-test code.
func (ld *loader) load(path string) (*Package, error) {
	if pkg, ok := ld.pkgs[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	dir := ld.dirFor(path)
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == ld.modulePath || strings.HasPrefix(imp, ld.modulePath+"/") {
				pkg, err := ld.load(imp)
				if err != nil {
					return nil, err
				}
				return pkg.Types, nil
			}
			return ld.std.ImportFrom(imp, dir, 0)
		}),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, ld.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, errors.Join(typeErrs...))
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	ld.pkgs[path] = pkg
	return pkg, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
