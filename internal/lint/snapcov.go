package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
)

// snapSide distinguishes the two halves of a snapshot codec. Every
// rule runs once per side: a field written but never restored is as
// much a divergence bug as one never written.
type snapSide int

const (
	snapWrite snapSide = iota
	snapRead
	snapSides
)

// NewSnapshotCoverage builds the analyzer that proves snapshot codecs
// are complete. Codec roots are discovered structurally, not by a
// hard-coded list:
//
//   - any method taking a *snap.Writer parameter marks its receiver
//     type as a write-side root (SnapshotTo, snapshotTo);
//   - any plain function taking a *snap.Writer marks each
//     pointer-to-struct parameter as a write-side root
//     (snapshotCross(w, &t.cross) and friends);
//   - a method Snapshot() ([]byte, error) is a write-side root for its
//     receiver; Restore([]byte) error and *snap.Reader mirror the
//     read side.
//
// From each side's root functions the analyzer takes the transitive
// static call closure (minus the snap codec package itself) and treats
// every struct-field selection and composite-literal field in that
// closure as covered — so state rebuilt through a constructor during
// restore (stats.NewHistogram, regIndex.rebuildFilter) counts. It then
// requires every field reachable from a root type to be covered on
// both sides, or carry //catch:nosnap <reason>. A second rule catches
// partially-serialized types hidden behind interfaces (cache
// replacement policies): a struct that is not reachable from any root
// type but has at least one field covered must have all of them
// covered. Finally, //catch:nosnap annotations whose field is in fact
// fully covered — or whose type belongs to no codec at all — are
// reported as stale.
func NewSnapshotCoverage(eng *stateEngine) *Analyzer {
	a := &Analyzer{
		Name: "snapshot-coverage",
		Doc:  "every field of snapshot-codec state types is written in SnapshotTo and read in RestoreFrom, or carries //catch:nosnap <reason>",
	}
	a.Run = func(pass *Pass) { eng.collect(pass) }
	a.End = func(report func(Diagnostic)) {
		c := &snapChecker{
			eng:      eng,
			report:   report,
			consumed: make(map[*anno]bool),
		}
		c.check()
	}
	return a
}

type snapChecker struct {
	eng      *stateEngine
	report   func(Diagnostic)
	consumed map[*anno]bool

	roots   [snapSides]map[*types.TypeName]bool
	covered [snapSides]map[*types.Var]bool
}

func (c *snapChecker) reportf(pos token.Pos, format string, args ...any) {
	c.report(Diagnostic{
		Analyzer: "snapshot-coverage",
		Pos:      c.eng.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

func (c *snapChecker) check() {
	var rootFuncs [snapSides][]*types.Func
	for s := snapWrite; s < snapSides; s++ {
		c.roots[s] = make(map[*types.TypeName]bool)
	}
	for _, ff := range c.eng.sortedFuncs() {
		if isSnapPkg(ff.obj.Pkg()) {
			continue // the codec substrate is not itself state
		}
		for s := snapWrite; s < snapSides; s++ {
			if c.isRoot(s, ff) {
				rootFuncs[s] = append(rootFuncs[s], ff.obj)
				c.addRootTypes(s, ff)
			}
		}
	}
	for s := snapWrite; s < snapSides; s++ {
		c.covered[s] = c.closure(rootFuncs[s])
	}
	for s := snapWrite; s < snapSides; s++ {
		visited := make(map[*types.TypeName]bool)
		for _, tn := range sortedTypeNames(c.roots[s]) {
			c.walkType(s, tn, visited)
		}
		c.partialStructs(s, visited)
	}
	c.staleAnnotations()
}

// isRoot reports whether ff anchors side s of a codec.
func (c *snapChecker) isRoot(s snapSide, ff *funcFacts) bool {
	sig, ok := ff.obj.Type().(*types.Signature)
	if !ok {
		return false
	}
	ptrName, altName := "Writer", "Snapshot"
	altSig := isSnapshotSig
	if s == snapRead {
		ptrName, altName = "Reader", "Restore"
		altSig = isRestoreSig
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isSnapPtr(sig.Params().At(i).Type(), ptrName) {
			return true
		}
	}
	return ff.obj.Name() == altName && sig.Recv() != nil && altSig(sig)
}

// addRootTypes records the state types whose coverage ff anchors.
func (c *snapChecker) addRootTypes(s snapSide, ff *funcFacts) {
	if recv := receiverStruct(ff.obj); recv != nil {
		if c.eng.structs[recv] != nil {
			c.roots[s][recv] = true
		}
		return
	}
	// Plain helper: each pointer-to-module-struct parameter is the
	// state being serialized.
	sig := ff.obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		pt, ok := sig.Params().At(i).Type().Underlying().(*types.Pointer)
		if !ok {
			continue
		}
		if tn := namedStructOf(pt.Elem()); tn != nil && c.eng.structs[tn] != nil && !isSnapPkg(tn.Pkg()) {
			c.roots[s][tn] = true
		}
	}
}

// isSnapshotSig matches func() ([]byte, error).
func isSnapshotSig(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 2 &&
		isByteSlice(sig.Results().At(0).Type()) && isErrorType(sig.Results().At(1).Type())
}

// isRestoreSig matches func([]byte) error.
func isRestoreSig(sig *types.Signature) bool {
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		isByteSlice(sig.Params().At(0).Type()) && isErrorType(sig.Results().At(0).Type())
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// closure gathers every field touched in the transitive static call
// closure of the root functions, excluding the snap package itself.
// Constructors called during restore are deliberately inside the
// closure: rebuilding state counts as restoring it.
func (c *snapChecker) closure(rootFuncs []*types.Func) map[*types.Var]bool {
	covered := make(map[*types.Var]bool)
	seen := make(map[*types.Func]bool)
	stack := append([]*types.Func(nil), rootFuncs...)
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[fn] || isSnapPkg(fn.Pkg()) {
			continue
		}
		seen[fn] = true
		ff := c.eng.funcs[fn]
		if ff == nil {
			continue // outside the module
		}
		for fv := range ff.sel {
			covered[fv] = true
		}
		for fv := range ff.litField {
			covered[fv] = true
		}
		stack = append(stack, ff.calls...)
	}
	return covered
}

// walkType requires every field of tn — and recursively of the state
// structs its fields contain — to be covered on side s, unless
// exempted by //catch:nosnap or function-typed (wiring, not state).
// Recursion stops at types that anchor their own codec: their fields
// are their own root's responsibility.
func (c *snapChecker) walkType(s snapSide, tn *types.TypeName, visited map[*types.TypeName]bool) {
	if visited[tn] || isSnapPkg(tn.Pkg()) {
		return
	}
	visited[tn] = true
	sf := c.eng.structs[tn]
	if sf == nil {
		return
	}
	for _, fv := range sf.fields {
		if an := sf.anno(fv, "nosnap"); an != nil {
			c.consumed[an] = true
			continue
		}
		if isFuncField(fv.Type()) {
			continue
		}
		if !c.isEmbeddedModuleStruct(fv) && !c.covered[s][fv] {
			verb, fix := "written by any snapshot path", "serialize it in the SnapshotTo side"
			if s == snapRead {
				verb, fix = "restored by any restore path", "read it in the RestoreFrom side"
			}
			c.reportf(fv.Pos(), "field %s is not %s (%s or annotate //catch:nosnap <reason>)",
				fieldName(tn, fv), verb, fix)
		}
		for _, ct := range c.eng.containedStructs(fv.Type()) {
			if c.roots[s][ct] {
				continue
			}
			c.walkType(s, ct, visited)
		}
	}
}

// isEmbeddedModuleStruct reports whether fv is an embedded module
// struct: its promoted fields are required, the embed name itself is
// not (a codec writes c.Insts, never c.CoreStats wholesale).
func (c *snapChecker) isEmbeddedModuleStruct(fv *types.Var) bool {
	if !fv.Embedded() {
		return false
	}
	tn := namedStructOf(fv.Type())
	return tn != nil && c.eng.structs[tn] != nil
}

// partialStructs is the interface-hiding rule: a struct that no root
// type reaches by fields, yet has at least one field covered on side
// s, is being serialized behind an interface (a replacement policy in
// a type switch) — so all of its fields must be covered.
func (c *snapChecker) partialStructs(s snapSide, visited map[*types.TypeName]bool) {
	reach := make(map[*types.TypeName]bool)
	var spread func(tn *types.TypeName)
	spread = func(tn *types.TypeName) {
		if reach[tn] {
			return
		}
		reach[tn] = true
		sf := c.eng.structs[tn]
		if sf == nil {
			return
		}
		for _, fv := range sf.fields {
			for _, ct := range c.eng.containedStructs(fv.Type()) {
				spread(ct)
			}
		}
	}
	for _, tn := range sortedTypeNames(c.roots[s]) {
		spread(tn)
	}
	for _, sf := range c.eng.sortedStructs() {
		tn := sf.obj
		if isSnapPkg(tn.Pkg()) || reach[tn] || visited[tn] {
			continue
		}
		partial := false
		for _, fv := range sf.fields {
			if c.covered[s][fv] {
				partial = true
				break
			}
		}
		if partial {
			c.walkType(s, tn, visited)
		}
	}
}

// staleAnnotations reports //catch:nosnap markers that no longer
// excuse a gap: either the field (and everything under it) is covered
// on both sides anyway, or the annotated type is not part of any
// snapshot codec at all.
func (c *snapChecker) staleAnnotations() {
	for _, sf := range c.eng.sortedStructs() {
		for _, fv := range sf.fields {
			an := sf.anno(fv, "nosnap")
			if an == nil {
				continue
			}
			if !c.consumed[an] {
				c.reportf(an.pos, "stale //catch:nosnap on %s: %s is not part of any snapshot codec",
					fieldName(sf.obj, fv), qualified(sf.obj))
				continue
			}
			if c.fullyCovered(snapWrite, fv) && c.fullyCovered(snapRead, fv) {
				c.reportf(an.pos, "stale //catch:nosnap on %s: the field is covered by the snapshot codec",
					fieldName(sf.obj, fv))
			}
		}
	}
}

// fullyCovered reports whether fv and its whole subtree are covered on
// side s — i.e. whether dropping its //catch:nosnap would produce no
// finding.
func (c *snapChecker) fullyCovered(s snapSide, fv *types.Var) bool {
	if isFuncField(fv.Type()) {
		return false
	}
	if !c.isEmbeddedModuleStruct(fv) && !c.covered[s][fv] {
		return false
	}
	return c.subtreeCovered(s, fv.Type(), make(map[*types.TypeName]bool))
}

func (c *snapChecker) subtreeCovered(s snapSide, t types.Type, visited map[*types.TypeName]bool) bool {
	for _, ct := range c.eng.containedStructs(t) {
		if c.roots[s][ct] || visited[ct] {
			continue
		}
		visited[ct] = true
		sf := c.eng.structs[ct]
		for _, fv := range sf.fields {
			if sf.anno(fv, "nosnap") != nil || isFuncField(fv.Type()) {
				continue
			}
			if !c.isEmbeddedModuleStruct(fv) && !c.covered[s][fv] {
				return false
			}
			if !c.subtreeCovered(s, fv.Type(), visited) {
				return false
			}
		}
	}
	return true
}

// sortedTypeNames renders a type-name set in deterministic order.
func sortedTypeNames(set map[*types.TypeName]bool) []*types.TypeName {
	out := make([]*types.TypeName, 0, len(set))
	for tn := range set {
		out = append(out, tn)
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := "", ""
		if out[i].Pkg() != nil {
			pi = out[i].Pkg().Path()
		}
		if out[j].Pkg() != nil {
			pj = out[j].Pkg().Path()
		}
		if pi != pj {
			return pi < pj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}
