package lint

import (
	"go/ast"
	"go/types"
)

// NewErrorHygiene builds the error-hygiene analyzer: a call whose
// result set contains an error must not be used as a bare statement
// (including defer and go statements) in non-test code. Handle the
// error or discard it explicitly with `_ =` — the blank assignment is
// greppable intent, a bare call is indistinguishable from an
// oversight.
//
// Print-like calls whose error is universally ignored by convention
// are excluded: fmt.Print/Printf/Println, fmt.Fprint* to
// os.Stdout/os.Stderr, the never-failing strings.Builder /
// bytes.Buffer writers, and writes to a *bufio.Writer — bufio's
// write error is sticky and resurfaces from Flush, whose result the
// analyzer does require to be handled.
//
// Inside catch/internal/fault the analyzer is stricter: methods of
// decorator types (a struct holding a field of an interface the
// receiver itself implements — fault.InjectFS is the archetype) may
// not discard an error even with an explicit `_ =`. A wrapper that
// swallows the wrapped implementation's error turns both injected
// faults and real failures into silent data corruption, which is
// exactly the failure mode the fault layer exists to surface.
func NewErrorHygiene() *Analyzer {
	a := &Analyzer{
		Name: "error-hygiene",
		Doc:  "no dropped error returns outside tests",
	}
	a.Run = func(pass *Pass) {
		errType := types.Universe.Lookup("error").Type()
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = ast.Unparen(n.X).(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					call = n.Call
				}
				if call == nil || !returnsError(pass.Info, call, errType) || errExcluded(pass.Info, call) {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s includes an error that is silently dropped: handle it or assign to _ explicitly", calleeName(pass.Info, call))
				return true
			})
		}
		if pass.Path == faultWrapperPkg {
			checkFaultWrappers(pass, errType)
		}
	}
	return a
}

// faultWrapperPkg is the package whose decorator types interpose on
// real implementations to inject faults; its wrappers carry the
// must-propagate contract enforced by checkFaultWrappers.
const faultWrapperPkg = "catch/internal/fault"

// checkFaultWrappers flags blank-identifier discards of error values
// inside methods of decorator types. The usual `_ =` escape hatch is
// off here: the wrapped interface's errors must reach the caller.
func checkFaultWrappers(pass *Pass, errType types.Type) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !isDecoratorMethod(fn) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range asg.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if t := assignedType(pass.Info, asg, i); t != nil && types.Identical(t, errType) {
						pass.Reportf(lhs.Pos(), "fault wrapper method %s discards an error: injectable wrappers must propagate the wrapped implementation's errors", calleeNameOf(fn))
					}
				}
				return true
			})
		}
	}
}

// isDecoratorMethod reports whether fn's receiver is a decorator: a
// struct type with a field whose interface the receiver (or its
// pointer) implements, i.e. the type wraps another implementation of
// its own contract.
func isDecoratorMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		iface, ok := st.Field(i).Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

// assignedType resolves the type flowing into position i of an
// assignment: per-position for n:=n assignments, the tuple component
// for the multi-value call form. Nil when it cannot be determined.
func assignedType(info *types.Info, asg *ast.AssignStmt, i int) types.Type {
	if len(asg.Rhs) == len(asg.Lhs) {
		if tv, ok := info.Types[asg.Rhs[i]]; ok {
			return tv.Type
		}
		return nil
	}
	if len(asg.Rhs) != 1 {
		return nil
	}
	tv, ok := info.Types[asg.Rhs[0]]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
		return tuple.At(i).Type()
	}
	return nil
}

// calleeNameOf renders (pkg.Type).Method for a method object.
func calleeNameOf(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return "(" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Name()
}

// returnsError reports whether any result of call is an error.
func returnsError(info *types.Info, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errExcluded applies the conventional exclusions.
func errExcluded(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if isMethodOn(fn, "strings", "Builder") || isMethodOn(fn, "bytes", "Buffer") {
			return true
		}
		// *bufio.Writer write methods (but never Flush, which is where
		// the sticky error surfaces).
		return isMethodOn(fn, "bufio", "Writer") && fn.Name() != "Flush"
	}
	if pkgPathOf(fn) != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && (isStdStream(info, call.Args[0]) || isInfallibleWriter(info, call.Args[0]))
	}
	return false
}

// isInfallibleWriter reports whether e is a writer whose Write never
// fails or whose error is sticky and re-surfaced later:
// *bufio.Writer (at Flush), *strings.Builder and *bytes.Buffer.
func isInfallibleWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	p, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	switch pkgPathOf(named.Obj()) + "." + named.Obj().Name() {
	case "bufio.Writer", "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches the os.Stdout / os.Stderr selectors.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || pkgPathOf(v) != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
