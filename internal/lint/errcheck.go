package lint

import (
	"go/ast"
	"go/types"
)

// NewErrorHygiene builds the error-hygiene analyzer: a call whose
// result set contains an error must not be used as a bare statement
// (including defer and go statements) in non-test code. Handle the
// error or discard it explicitly with `_ =` — the blank assignment is
// greppable intent, a bare call is indistinguishable from an
// oversight.
//
// Print-like calls whose error is universally ignored by convention
// are excluded: fmt.Print/Printf/Println, fmt.Fprint* to
// os.Stdout/os.Stderr, the never-failing strings.Builder /
// bytes.Buffer writers, and writes to a *bufio.Writer — bufio's
// write error is sticky and resurfaces from Flush, whose result the
// analyzer does require to be handled.
func NewErrorHygiene() *Analyzer {
	a := &Analyzer{
		Name: "error-hygiene",
		Doc:  "no dropped error returns outside tests",
	}
	a.Run = func(pass *Pass) {
		errType := types.Universe.Lookup("error").Type()
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch n := n.(type) {
				case *ast.ExprStmt:
					call, _ = ast.Unparen(n.X).(*ast.CallExpr)
				case *ast.DeferStmt:
					call = n.Call
				case *ast.GoStmt:
					call = n.Call
				}
				if call == nil || !returnsError(pass.Info, call, errType) || errExcluded(pass.Info, call) {
					return true
				}
				pass.Reportf(call.Pos(), "result of %s includes an error that is silently dropped: handle it or assign to _ explicitly", calleeName(pass.Info, call))
				return true
			})
		}
	}
	return a
}

// returnsError reports whether any result of call is an error.
func returnsError(info *types.Info, call *ast.CallExpr, errType types.Type) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errExcluded applies the conventional exclusions.
func errExcluded(info *types.Info, call *ast.CallExpr) bool {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if isMethodOn(fn, "strings", "Builder") || isMethodOn(fn, "bytes", "Buffer") {
			return true
		}
		// *bufio.Writer write methods (but never Flush, which is where
		// the sticky error surfaces).
		return isMethodOn(fn, "bufio", "Writer") && fn.Name() != "Flush"
	}
	if pkgPathOf(fn) != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && (isStdStream(info, call.Args[0]) || isInfallibleWriter(info, call.Args[0]))
	}
	return false
}

// isInfallibleWriter reports whether e is a writer whose Write never
// fails or whose error is sticky and re-surfaced later:
// *bufio.Writer (at Flush), *strings.Builder and *bytes.Buffer.
func isInfallibleWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return false
	}
	p, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	switch pkgPathOf(named.Obj()) + "." + named.Obj().Name() {
	case "bufio.Writer", "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// isStdStream matches the os.Stdout / os.Stderr selectors.
func isStdStream(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || pkgPathOf(v) != "os" {
		return false
	}
	return v.Name() == "Stdout" || v.Name() == "Stderr"
}
