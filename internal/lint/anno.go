package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //catch: annotation family marks facts the state-coverage
// analyzers cannot derive from the code alone. Each annotation is a
// single line comment
//
//	//catch:<marker> <reason>
//
// attached to the declaration it describes: trailing on the same line
// or in the doc comment directly above it. Markers that exempt a field
// from a completeness obligation (nosnap, noreset, keyneutral) require
// a reason; pure markers (hotpath, stats, keyfn) do not. The
// annotation-hygiene analyzer rejects unknown markers and missing
// reasons, and each state-coverage analyzer reports annotations of its
// marker that have gone stale — an exemption must not outlive the gap
// it excuses.
const annoPrefix = "//catch:"

// annoSpec describes one legal annotation marker.
type annoSpec struct {
	needsReason bool
	doc         string
}

// annoSpecs is the registry of legal //catch: markers.
var annoSpecs = map[string]annoSpec{
	"hotpath":    {false, "function's steady state must not allocate (hotpath-noalloc)"},
	"nosnap":     {true, "field is deliberately absent from the snapshot codec (snapshot-coverage)"},
	"noreset":    {true, "stats field deliberately survives the warmup-boundary reset (reset-coverage)"},
	"keyneutral": {true, "field deliberately does not flow into a content key (key-coverage)"},
	"stats":      {false, "type opts into reset-coverage despite not being named *Stats"},
	"keyfn":      {false, "function derives a content key; key-coverage checks its inputs"},
}

// anno is one parsed //catch: annotation.
type anno struct {
	marker string
	reason string
	pos    token.Pos
}

// parseAnno extracts the annotation from a comment, or nil when the
// comment is not a //catch: directive. Malformed directives (unknown
// marker, missing mandatory reason) still parse — the hygiene analyzer
// owns rejecting them, and the coverage analyzers honor them so a
// half-written annotation does not double-report.
func parseAnno(c *ast.Comment) *anno {
	rest, ok := strings.CutPrefix(c.Text, annoPrefix)
	if !ok {
		return nil
	}
	marker, reason := rest, ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		marker, reason = rest[:i], strings.TrimSpace(rest[i+1:])
	}
	return &anno{marker: marker, reason: reason, pos: c.Pos()}
}

// annosOf collects the annotations of one or two comment groups
// (typically a declaration's Doc and trailing Comment).
func annosOf(groups ...*ast.CommentGroup) map[string]*anno {
	var m map[string]*anno
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			a := parseAnno(c)
			if a == nil {
				continue
			}
			if m == nil {
				m = make(map[string]*anno)
			}
			m[a.marker] = a
		}
	}
	return m
}

// NewAnnotationHygiene builds the analyzer that validates the grammar
// of every //catch: annotation in a package: the marker must be one of
// the registered ones and exemption markers must carry a reason.
func NewAnnotationHygiene() *Analyzer {
	a := &Analyzer{
		Name: "annotation-hygiene",
		Doc:  "//catch: annotations use a known marker and carry a reason where one is mandatory",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					an := parseAnno(c)
					if an == nil {
						continue
					}
					spec, ok := annoSpecs[an.marker]
					if !ok {
						pass.Reportf(c.Pos(), "unknown annotation //catch:%s (known: %s)", an.marker, knownMarkers())
						continue
					}
					if spec.needsReason && an.reason == "" {
						pass.Reportf(c.Pos(), "//catch:%s requires a reason: //catch:%s <why>", an.marker, an.marker)
					}
				}
			}
		}
	}
	return a
}

// knownMarkers renders the registered markers in stable order.
func knownMarkers() string {
	names := make([]string, 0, len(annoSpecs))
	for name := range annoSpecs {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j-1] > names[j]; j-- {
			names[j-1], names[j] = names[j], names[j-1]
		}
	}
	return strings.Join(names, ", ")
}
