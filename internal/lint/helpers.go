package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathDirective marks a function whose steady-state execution must
// not allocate. The hotpath-noalloc and telemetry-discipline
// analyzers key off it; the annotation lives in the function's doc
// comment so it travels with the code it constrains.
const hotpathDirective = "//catch:hotpath"

// hasHotpathDirective reports whether fn's doc comment carries the
// //catch:hotpath marker.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// inspectWithStack walks root in depth-first order, passing each node
// together with the stack of its ancestors (outermost first).
// Returning false prunes the subtree.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// calleeObj resolves the object a call expression invokes: a
// package-level function, a method, or a builtin. Returns nil for
// calls of function-typed values and type conversions.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// pkgPathOf returns the import path of obj's package ("" for
// builtins and universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// isMethodOn reports whether obj is a method declared on
// pkgPath.typeName (value or pointer receiver).
func isMethodOn(obj types.Object, pkgPath, typeName string) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == typeName && pkgPathOf(named.Obj()) == pkgPath
}

// calleeName renders a human-readable name for the called function:
// pkg.Func, (pkg.Type).Method, or the expression's text for dynamic
// calls.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	obj := calleeObj(info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		if obj != nil {
			return obj.Name()
		}
		return "function value"
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + named.Obj().Pkg().Name() + "." + named.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

// pointerShaped reports whether values of t fit in an interface word
// without a heap allocation: pointers, channels, maps, funcs, unsafe
// pointers and nil. Everything else is copied to the heap when boxed.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil
	}
	return false
}
