package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotpathNoalloc builds the hotpath-noalloc analyzer. Functions
// whose doc comment carries //catch:hotpath form the simulator's
// steady-state kernel: the per-instruction core step, cache
// lookup/fill, the TACT flat-table train/predict paths, and telemetry
// metric updates and event emission. PR 2's AllocsPerRun guards prove
// the kernel allocates nothing at runtime; this analyzer proves it at
// `make check` time by rejecting every construct that can reach the
// allocator inside an annotated function:
//
//   - append / make / new builtins
//   - slice and map composite literals, and &composite literals
//     (which escape to the heap when the pointer outlives the frame)
//   - fmt formatting calls
//   - string concatenation and string<->[]byte conversions
//   - closures (captured variables escape)
//   - boxing a non-pointer-shaped value into an interface
func NewHotpathNoalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpath-noalloc",
		Doc:  "forbid allocating constructs in //catch:hotpath functions",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasHotpathDirective(fn) {
					continue
				}
				checkHotpath(pass, fn)
			}
		}
	}
	return a
}

func checkHotpath(pass *Pass, fn *ast.FuncDecl) {
	var sig *types.Signature
	if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}
	inspectWithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //catch:hotpath function %s: captured variables escape to the heap", fn.Name.Name)
			return false
		case *ast.CallExpr:
			checkHotpathCall(pass, fn, n)
		case *ast.CompositeLit:
			checkHotpathComposite(pass, fn, n, stack)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(pass.Info.Types[n].Type) {
				pass.Reportf(n.Pos(), "string concatenation in //catch:hotpath function %s allocates", fn.Name.Name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(pass.Info.Types[n.Lhs[0]].Type) {
				pass.Reportf(n.Pos(), "string concatenation in //catch:hotpath function %s allocates", fn.Name.Name)
			}
			if n.Tok == token.ASSIGN {
				for i := range n.Lhs {
					if i < len(n.Rhs) && len(n.Lhs) == len(n.Rhs) {
						checkBoxing(pass, fn, typeOf(pass.Info, n.Lhs[i]), n.Rhs[i])
					}
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(n.Results) {
				for i, res := range n.Results {
					checkBoxing(pass, fn, sig.Results().At(i).Type(), res)
				}
			}
		}
		return true
	})
}

// checkHotpathCall flags allocating builtins, fmt formatting, string
// conversions and interface-boxing arguments.
func checkHotpathCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append", "make", "new":
				pass.Reportf(call.Pos(), "%s in //catch:hotpath function %s allocates", b.Name(), fn.Name.Name)
			}
			return
		}
	}
	if obj := calleeObj(pass.Info, call); obj != nil && pkgPathOf(obj) == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s in //catch:hotpath function %s formats and allocates", obj.Name(), fn.Name.Name)
		return
	}

	tvFun, ok := pass.Info.Types[ast.Unparen(call.Fun)]
	if !ok {
		return
	}
	if tvFun.IsType() {
		// Conversion: T(x). Boxing into an interface and
		// string<->[]byte conversions copy to the heap.
		target := tvFun.Type
		if len(call.Args) != 1 {
			return
		}
		at := typeOf(pass.Info, call.Args[0])
		if isInterface(target) && at != nil && !pointerShaped(at) {
			pass.Reportf(call.Pos(), "conversion boxes %s into %s in //catch:hotpath function %s", types.TypeString(at, types.RelativeTo(pass.Pkg)), target.String(), fn.Name.Name)
		}
		if at != nil && isStringSliceConversion(target, at) {
			pass.Reportf(call.Pos(), "string/[]byte conversion in //catch:hotpath function %s copies and allocates", fn.Name.Name)
		}
		return
	}
	sig, ok := tvFun.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil && isInterface(pt) {
			checkBoxing(pass, fn, pt, arg)
		}
	}
}

// checkHotpathComposite flags composite literals that allocate: slice
// and map literals always do; struct and array literals do when their
// address is taken (the pointer escapes the frame through whatever
// receives it).
func checkHotpathComposite(pass *Pass, fn *ast.FuncDecl, lit *ast.CompositeLit, stack []ast.Node) {
	t := typeOf(pass.Info, lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(lit.Pos(), "%s literal in //catch:hotpath function %s allocates", types.TypeString(t, types.RelativeTo(pass.Pkg)), fn.Name.Name)
		return
	}
	if len(stack) > 0 {
		if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			pass.Reportf(u.Pos(), "&%s literal in //catch:hotpath function %s escapes to the heap", types.TypeString(t, types.RelativeTo(pass.Pkg)), fn.Name.Name)
		}
	}
}

// checkBoxing reports expr when assigning it to target would box a
// non-pointer-shaped concrete value into an interface.
func checkBoxing(pass *Pass, fn *ast.FuncDecl, target types.Type, expr ast.Expr) {
	if target == nil || !isInterface(target) {
		return
	}
	at := typeOf(pass.Info, expr)
	if at == nil || pointerShaped(at) {
		return
	}
	pass.Reportf(expr.Pos(), "%s boxed into %s in //catch:hotpath function %s allocates", types.TypeString(at, types.RelativeTo(pass.Pkg)), types.TypeString(target, types.RelativeTo(pass.Pkg)), fn.Name.Name)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringSliceConversion reports a string<->[]byte or
// string<->[]rune conversion.
func isStringSliceConversion(target, src types.Type) bool {
	return (isStringType(target) && isByteOrRuneSlice(src)) ||
		(isStringType(src) && isByteOrRuneSlice(target))
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
