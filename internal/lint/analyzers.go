package lint

// Analyzers returns a freshly configured instance of every analyzer,
// scoped for this module. Analyzers carry per-run state (the
// atomic-consistency analyzer accumulates module-wide facts), so each
// Run must use a fresh set.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DefaultDeterminismConfig()),
		NewHotpathNoalloc(),
		NewAtomicConsistency(),
		NewTelemetryDiscipline(),
		NewErrorHygiene(),
	}
}
