package lint

// Analyzers returns a freshly configured instance of every analyzer,
// scoped for this module. Analyzers carry per-run state (the
// atomic-consistency analyzer accumulates module-wide facts, the
// state-coverage family shares one field-reachability engine), so
// each Run must use a fresh set.
func Analyzers() []*Analyzer {
	eng := newStateEngine()
	return []*Analyzer{
		NewDeterminism(DefaultDeterminismConfig()),
		NewHotpathNoalloc(),
		NewAtomicConsistency(),
		NewTelemetryDiscipline(),
		NewErrorHygiene(),
		NewAnnotationHygiene(),
		NewSnapshotCoverage(eng),
		NewResetCoverage(eng, DefaultResetCoverageConfig()),
		NewKeyCoverage(eng),
	}
}
