package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// stateEngine is the shared field-reachability fact base behind the
// three state-coverage analyzers (snapshot-coverage, reset-coverage,
// key-coverage). It records, for every package it sees: the declared
// struct types with their fields and //catch: annotations, and every
// function with its static call edges, field selections, whole-struct
// composite assignments, composite-literal field writes and
// hash/marshal call markers. Each analyzer draws its own closure and
// coverage judgment from this one collection, so the three stay
// consistent about what "a field is touched here" means.
//
// The engine is concurrency-safe: analyzer Run hooks may collect
// packages from parallel driver goroutines; the first analyzer to see
// a package collects it and the rest find it cached.
type stateEngine struct {
	mu        sync.Mutex
	collected map[string]bool

	fset    *token.FileSet
	structs map[*types.TypeName]*structFacts
	funcs   map[*types.Func]*funcFacts
}

// structFacts is one declared struct type plus its annotations.
type structFacts struct {
	obj       *types.TypeName
	st        *types.Struct
	fields    []*types.Var
	fieldAnno map[*types.Var]map[string]*anno
	typeAnno  map[string]*anno
}

// funcFacts is the per-function slice of the fact base.
type funcFacts struct {
	obj  *types.Func
	decl *ast.FuncDecl
	anno map[string]*anno

	calls []*types.Func       // statically resolved callees
	sel   map[*types.Var]bool // struct fields selected anywhere in the body

	// compositeAssign records named struct types T for which the body
	// contains an assignment `lhs = T{...}` (token.ASSIGN only — a
	// short variable declaration constructs, it does not reset).
	compositeAssign map[*types.TypeName]bool
	// litField records fields initialized by composite literals
	// anywhere in the body (keyed elements by name; positional
	// elements by index).
	litField map[*types.Var]bool

	marshals []types.Type // argument types passed to json.Marshal
	callsSha bool         // calls crypto/sha256.Sum256
	callsFnv bool         // calls snap.Fnv1a
}

func newStateEngine() *stateEngine {
	return &stateEngine{
		collected: make(map[string]bool),
		structs:   make(map[*types.TypeName]*structFacts),
		funcs:     make(map[*types.Func]*funcFacts),
	}
}

// collect ingests one typechecked package into the fact base.
func (e *stateEngine) collect(pass *Pass) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.collected[pass.Path] {
		return
	}
	e.collected[pass.Path] = true
	e.fset = pass.Fset

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					stAST, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					e.collectStruct(pass, d, ts, stAST)
				}
			case *ast.FuncDecl:
				e.collectFunc(pass, d)
			}
		}
	}
}

// collectStruct records one struct declaration: its types.Var fields
// in declaration order and the //catch: annotations attached to the
// type and to each field.
func (e *stateEngine) collectStruct(pass *Pass, gd *ast.GenDecl, ts *ast.TypeSpec, stAST *ast.StructType) {
	obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	sf := &structFacts{
		obj:       obj,
		st:        st,
		fieldAnno: make(map[*types.Var]map[string]*anno),
		typeAnno:  annosOf(gd.Doc, ts.Doc, ts.Comment),
	}
	idx := 0
	for _, fd := range stAST.Fields.List {
		n := len(fd.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		fa := annosOf(fd.Doc, fd.Comment)
		for k := 0; k < n && idx < st.NumFields(); k++ {
			fv := st.Field(idx)
			idx++
			sf.fields = append(sf.fields, fv)
			if fa != nil {
				sf.fieldAnno[fv] = fa
			}
		}
	}
	e.structs[obj] = sf
}

// collectFunc records one function body's facts.
func (e *stateEngine) collectFunc(pass *Pass, decl *ast.FuncDecl) {
	obj, ok := pass.Info.Defs[decl.Name].(*types.Func)
	if !ok {
		return
	}
	ff := &funcFacts{
		obj:      obj,
		decl:     decl,
		anno:     annosOf(decl.Doc),
		sel:      make(map[*types.Var]bool),
		litField: make(map[*types.Var]bool),
	}
	e.funcs[obj] = ff
	if decl.Body == nil {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if fv, ok := sel.Obj().(*types.Var); ok {
					ff.sel[fv] = true
				}
			}
		case *ast.CompositeLit:
			e.collectComposite(pass, ff, x)
		case *ast.AssignStmt:
			if x.Tok != token.ASSIGN {
				break
			}
			for _, rhs := range x.Rhs {
				cl, ok := ast.Unparen(rhs).(*ast.CompositeLit)
				if !ok {
					continue
				}
				if tn := namedStructOf(pass.Info.TypeOf(cl)); tn != nil {
					if ff.compositeAssign == nil {
						ff.compositeAssign = make(map[*types.TypeName]bool)
					}
					ff.compositeAssign[tn] = true
				}
			}
		case *ast.CallExpr:
			e.collectCall(pass, ff, x)
		}
		return true
	})
}

// collectComposite records which struct fields a composite literal
// initializes (for the restore-side "reconstructed via constructor"
// coverage).
func (e *stateEngine) collectComposite(pass *Pass, ff *funcFacts, cl *ast.CompositeLit) {
	tn := namedStructOf(pass.Info.TypeOf(cl))
	if tn == nil {
		return
	}
	st := tn.Type().Underlying().(*types.Struct)
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if fv, ok := pass.Info.Uses[id].(*types.Var); ok {
					ff.litField[fv] = true
				}
			}
			continue
		}
		if i < st.NumFields() {
			ff.litField[st.Field(i)] = true
		}
	}
}

// collectCall records call-graph edges and the hash/marshal markers
// key-coverage keys off.
func (e *stateEngine) collectCall(pass *Pass, ff *funcFacts, call *ast.CallExpr) {
	obj := calleeObj(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	ff.calls = append(ff.calls, fn)
	switch {
	case fn.Name() == "Marshal" && pkgPathOf(fn) == "encoding/json":
		if len(call.Args) > 0 {
			if t := pass.Info.TypeOf(call.Args[0]); t != nil {
				ff.marshals = append(ff.marshals, t)
			}
		}
	case fn.Name() == "Sum256" && pkgPathOf(fn) == "crypto/sha256":
		ff.callsSha = true
	case fn.Name() == "Fnv1a" && fn.Pkg() != nil && fn.Pkg().Name() == "snap":
		ff.callsFnv = true
	}
}

// namedStructOf unwraps t to a named struct type's TypeName (through
// one pointer), or nil.
func namedStructOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named.Obj()
}

// isSnapPkg reports whether the type or function belongs to the snap
// codec package itself (the serialization substrate, not state).
func isSnapPkg(pkg *types.Package) bool {
	return pkg != nil && pkg.Name() == "snap"
}

// isSnapPtr reports whether t is *snap.Writer / *snap.Reader (by name:
// the fixture modules declare their own snap package).
func isSnapPtr(t types.Type, typeName string) bool {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == typeName && isSnapPkg(named.Obj().Pkg())
}

// moduleStruct resolves a TypeName back to the engine's structFacts
// (nil when tn was not declared in an analyzed package).
func (e *stateEngine) moduleStruct(tn *types.TypeName) *structFacts {
	if tn == nil {
		return nil
	}
	return e.structs[tn]
}

// fieldAnnoOf returns the named annotation on field fv of struct sf.
func (sf *structFacts) anno(fv *types.Var, marker string) *anno {
	if m := sf.fieldAnno[fv]; m != nil {
		return m[marker]
	}
	return nil
}

// containedStructs returns the module struct TypeNames a field of type
// t leads to, unwrapping pointers, slices, arrays and map keys/values.
// Interfaces and functions contribute nothing: state behind an
// interface is covered by that type's own codec roots.
func (e *stateEngine) containedStructs(t types.Type) []*types.TypeName {
	var out []*types.TypeName
	seen := make(map[types.Type]bool)
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		if named, ok := t.(*types.Named); ok {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				if e.structs[named.Obj()] != nil && !isSnapPkg(named.Obj().Pkg()) {
					out = append(out, named.Obj())
				}
				return
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Pointer:
			walk(u.Elem())
		case *types.Slice:
			walk(u.Elem())
		case *types.Array:
			walk(u.Elem())
		case *types.Map:
			walk(u.Key())
			walk(u.Elem())
		}
	}
	walk(t)
	return out
}

// isFuncField reports whether a field's type is function-shaped
// (hooks and callbacks are wiring, not serializable state).
func isFuncField(t types.Type) bool {
	_, ok := t.Underlying().(*types.Signature)
	return ok
}

// hasMethod reports whether named type tn has a method with the given
// name (any receiver form).
func hasMethod(tn *types.TypeName, name string) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// receiverStruct returns the TypeName of fn's receiver base type when
// it is a struct, else nil.
func receiverStruct(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedStructOf(sig.Recv().Type())
}

// qualified renders pkg.Type for diagnostics.
func qualified(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Name() + "." + tn.Name()
}

// fieldName renders pkg.Type.Field for diagnostics.
func fieldName(tn *types.TypeName, fv *types.Var) string {
	return qualified(tn) + "." + fv.Name()
}

// sortableName gives deterministic iteration order over struct facts.
func (sf *structFacts) sortKey() string {
	return sf.obj.Pkg().Path() + "." + sf.obj.Name()
}

// funcDisplayName renders a function or method name for diagnostics.
func funcDisplayName(fn *types.Func) string {
	if recv := receiverStruct(fn); recv != nil {
		return "(" + qualified(recv) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// sortedStructs returns the engine's structs in deterministic order so
// End hooks report findings independent of collection order.
func (e *stateEngine) sortedStructs() []*structFacts {
	out := make([]*structFacts, 0, len(e.structs))
	for _, sf := range e.structs {
		out = append(out, sf)
	}
	keys := make(map[*structFacts]string, len(out))
	for _, sf := range out {
		keys[sf] = sf.sortKey()
	}
	sort.Slice(out, func(i, j int) bool { return keys[out[i]] < keys[out[j]] })
	return out
}

// sortedFuncs returns the engine's functions in deterministic order.
func (e *stateEngine) sortedFuncs() []*funcFacts {
	out := make([]*funcFacts, 0, len(e.funcs))
	for _, ff := range e.funcs {
		out = append(out, ff)
	}
	keys := make(map[*funcFacts]string, len(out))
	for _, ff := range out {
		p := ""
		if ff.obj.Pkg() != nil {
			p = ff.obj.Pkg().Path()
		}
		keys[ff] = p + "\x00" + funcDisplayName(ff.obj)
	}
	sort.Slice(out, func(i, j int) bool { return keys[out[i]] < keys[out[j]] })
	return out
}

// containsFold reports whether s contains sub, case-folded; sub must
// already be lower-case.
func containsFold(s, sub string) bool {
	return strings.Contains(strings.ToLower(s), sub)
}
