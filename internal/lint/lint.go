// Package lint is a small, stdlib-only static-analysis framework that
// encodes the repository's load-bearing invariants: deterministic
// (wall-clock- and map-order-independent) simulation results, an
// allocation-free steady-state kernel, consistent sync/atomic usage,
// telemetry handle/emission discipline, no silently dropped errors,
// and the state-coverage family — snapshot codecs serialize and
// restore every field, measurement stats reset at the warmup
// boundary, and content keys see every behavior-affecting config
// field. It is built on go/ast, go/parser, go/types and go/build
// only — no module dependencies — and is driven by cmd/catchlint.
//
// An analyzer inspects one typechecked package at a time through a
// Pass and reports Diagnostics; analyzers that need whole-module state
// (atomic-consistency, the state-coverage family via its shared
// stateEngine) accumulate it across passes and report from their End
// hook. Packages load and analyze in parallel; output order is
// deterministic regardless of scheduling.
//
// The state-coverage analyzers read facts the code cannot express
// through //catch:<marker> <reason> annotations (nosnap, noreset,
// keyneutral, stats, keyfn, hotpath — see anno.go); every exemption
// is re-verified each run and reported stale when the gap it excuses
// has closed. Findings can be suppressed, one line and one analyzer
// at a time, with
//
//	//catchlint:ignore <analyzer> <reason>
//
// placed on the offending line or alone on the line above it. A
// directive that suppresses nothing is itself reported as stale, so
// suppressions cannot outlive the code they excuse.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"sync"
)

// Diagnostic is one finding, attributed to the analyzer that produced
// it and anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic vet-style: file:line:col: message [analyzer].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Finding is the machine-readable form of a Diagnostic, stable for
// -json output and CI annotation.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Finding converts the diagnostic to its machine-readable form.
func (d Diagnostic) Finding() Finding {
	return Finding{
		Analyzer: d.Analyzer,
		File:     d.Pos.Filename,
		Line:     d.Pos.Line,
		Col:      d.Pos.Column,
		Message:  d.Message,
	}
}

// Analyzer is one named check. Run is invoked once per package; End,
// when non-nil, is invoked once after every package has been visited
// (for analyzers that correlate facts across packages).
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	End  func(report func(Diagnostic))
}

// Pass hands one typechecked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path
	Dir      string // package directory
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run loads every package under the module rooted at root, applies
// the analyzers, resolves //catchlint:ignore suppressions (reporting
// stale or malformed ones) and returns the surviving diagnostics in
// deterministic file/line order. A non-nil error means the module
// could not be loaded or typechecked — not that findings exist.
func Run(root string, analyzers []*Analyzer) ([]Diagnostic, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	pkgs, err := ld.loadModule()
	if err != nil {
		return nil, err
	}
	return RunPackages(ld.fset, pkgs, analyzers)
}

// RunPackages applies the analyzers to already-loaded packages. It is
// the test seam: fixtures load a single package and run a focused
// analyzer set over it.
//
// Analysis fans out across packages on GOMAXPROCS workers. Analyzers
// carry per-run state (module-wide fact tables), so each analyzer is
// serialized behind its own lock: analyzer A can visit package 1 while
// analyzer B visits package 2, but A never sees two packages at once.
// End hooks run sequentially after every package pass has finished,
// and the final position sort makes the output order independent of
// goroutine scheduling.
func RunPackages(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var mu sync.Mutex
	var diags []Diagnostic
	report := func(d Diagnostic) {
		mu.Lock()
		diags = append(diags, d)
		mu.Unlock()
	}

	locks := make([]sync.Mutex, len(analyzers))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			for i, a := range analyzers {
				if a.Run == nil {
					continue
				}
				locks[i].Lock()
				a.Run(&Pass{
					Analyzer: a,
					Fset:     fset,
					Files:    pkg.Files,
					Path:     pkg.Path,
					Dir:      pkg.Dir,
					Pkg:      pkg.Types,
					Info:     pkg.Info,
					report:   report,
				})
				locks[i].Unlock()
			}
		}(pkg)
	}
	wg.Wait()

	for _, a := range analyzers {
		if a.End != nil {
			a.End(report)
		}
	}

	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	diags = applyIgnores(fset, pkgs, diags, known)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}
