package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"
)

// ResetCoverageConfig scopes reset-coverage to the simulator packages
// whose stats feed measured results. Service-layer packages (runner,
// cluster) keep cumulative counters for their whole process lifetime
// and are deliberately out of scope.
type ResetCoverageConfig struct {
	// Packages is the list of import paths whose Stats-named structs
	// are checked. Types anywhere can opt in with //catch:stats.
	Packages []string
}

// DefaultResetCoverageConfig covers every package that contributes to
// a measured Result.
func DefaultResetCoverageConfig() ResetCoverageConfig {
	return ResetCoverageConfig{Packages: []string{
		"catch/internal/cache",
		"catch/internal/core",
		"catch/internal/cpu",
		"catch/internal/tact",
		"catch/internal/criticality",
		"catch/internal/prefetch",
		"catch/internal/memory",
		"catch/internal/interconnect",
		"catch/internal/stats",
	}}
}

// NewResetCoverage builds the analyzer that proves every measurement
// counter is cleared at a warmup/measurement boundary. A struct is
// reset-checked when its name is "Stats" or ends in "Stats" and it
// lives in a configured package, or when its declaration carries
// //catch:stats. A field counts as reset when
//
//   - some function assigns a whole composite literal over a value of
//     the struct type with plain `=` (c.Stats = Stats{} — the
//     canonical boundary reset; `:=` and &T{} construct, they don't
//     reset), or
//   - the field is selected inside a function whose name contains
//     "reset" (Histogram.Reset walks h.Counts element-wise).
//
// Types with a Delta method are exempt: they are cumulative by design
// and the measurement window rebases against a captured baseline
// instead of zeroing (tact.Stats, criticality.Stats). Everything else
// must be covered or annotated //catch:noreset <reason>; an
// annotation on a field that is reset anyway is reported stale.
func NewResetCoverage(eng *stateEngine, cfg ResetCoverageConfig) *Analyzer {
	a := &Analyzer{
		Name: "reset-coverage",
		Doc:  "every field of measurement-stats structs is zeroed at a warmup boundary or carries //catch:noreset <reason>",
	}
	a.Run = func(pass *Pass) { eng.collect(pass) }
	a.End = func(report func(Diagnostic)) {
		c := &resetChecker{eng: eng, cfg: cfg, report: report}
		c.check()
	}
	return a
}

type resetChecker struct {
	eng    *stateEngine
	cfg    ResetCoverageConfig
	report func(Diagnostic)
}

func (c *resetChecker) reportf(pos token.Pos, format string, args ...any) {
	c.report(Diagnostic{
		Analyzer: "reset-coverage",
		Pos:      c.eng.fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

func (c *resetChecker) inScope(path string) bool {
	for _, p := range c.cfg.Packages {
		if p == path {
			return true
		}
	}
	return false
}

// isStatsStruct reports whether sf is subject to reset-coverage.
func (c *resetChecker) isStatsStruct(sf *structFacts) bool {
	if sf.typeAnno["stats"] != nil {
		return true
	}
	name := sf.obj.Name()
	if sf.obj.Pkg() == nil || !c.inScope(sf.obj.Pkg().Path()) {
		return false
	}
	return name == "Stats" || strings.HasSuffix(name, "Stats")
}

func (c *resetChecker) check() {
	// wholeReset: struct types overwritten wholesale by a composite
	// assignment somewhere in the module. fieldReset: fields touched
	// inside a *reset*-named function.
	wholeReset := make(map[*types.TypeName]bool)
	fieldReset := make(map[*types.Var]bool)
	for _, ff := range c.eng.sortedFuncs() {
		for tn := range ff.compositeAssign {
			wholeReset[tn] = true
		}
		if containsFold(ff.obj.Name(), "reset") {
			for fv := range ff.sel {
				fieldReset[fv] = true
			}
		}
	}

	for _, sf := range c.eng.sortedStructs() {
		if !c.isStatsStruct(sf) {
			continue
		}
		if hasMethod(sf.obj, "Delta") {
			continue // cumulative-rebase pattern; never zeroed by design
		}
		typeNoreset := sf.typeAnno["noreset"]
		whole := wholeReset[sf.obj]
		for _, fv := range sf.fields {
			covered := whole || fieldReset[fv]
			an := sf.anno(fv, "noreset")
			if an == nil {
				an = typeNoreset
			}
			if an != nil {
				if covered && an != typeNoreset {
					c.reportf(an.pos, "stale //catch:noreset on %s: the field is reset at a measurement boundary",
						fieldName(sf.obj, fv))
				}
				continue
			}
			if c.isEmbeddedChecked(fv) {
				continue // the embedded stats type is checked on its own
			}
			if !covered {
				c.reportf(fv.Pos(), "stats field %s is never reset at a measurement boundary (zero it in a reset path or annotate //catch:noreset <reason>)",
					fieldName(sf.obj, fv))
			}
		}
	}
}

// isEmbeddedChecked reports whether fv embeds another reset-checked
// stats struct — its fields are that struct's own obligation.
func (c *resetChecker) isEmbeddedChecked(fv *types.Var) bool {
	if !fv.Embedded() {
		return false
	}
	tn := namedStructOf(fv.Type())
	if tn == nil {
		return false
	}
	sf := c.eng.structs[tn]
	return sf != nil && c.isStatsStruct(sf)
}
