package power

import (
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/workloads"
)

func runFor(t *testing.T, cfg config.SystemConfig) core.Result {
	t.Helper()
	w, _ := workloads.ByName("hmmer")
	return core.NewSystem(cfg).RunST(w.NewGen(), 30_000, 10_000)
}

func TestEnergyPositiveAndAdditive(t *testing.T) {
	cfg := config.BaselineExclusive()
	r := runFor(t, cfg)
	em := DefaultEnergyModel()
	b := em.Energy(&cfg, &r)
	if b.CacheUJ <= 0 || b.DRAMUJ <= 0 {
		t.Fatalf("energy components non-positive: %+v", b)
	}
	sum := b.CacheUJ + b.RingUJ + b.DRAMUJ
	if b.TotalUJ != sum {
		t.Fatalf("total %v != sum %v", b.TotalUJ, sum)
	}
}

func TestLargerCacheCostsMorePerAccess(t *testing.T) {
	em := DefaultEnergyModel()
	small := em.cacheReadPJ(32 * 1024)
	big := em.cacheReadPJ(8 * 1024 * 1024)
	if big <= small {
		t.Fatalf("8MB read (%v pJ) not costlier than 32KB (%v pJ)", big, small)
	}
}

func TestTwoLevelTradesRingForCache(t *testing.T) {
	baseCfg := config.BaselineExclusive()
	twoCfg := config.WithCATCH(config.NoL2(baseCfg, 9728*config.KB, 19, ""), "two-level")
	em := DefaultEnergyModel()
	rb := runFor(t, baseCfg)
	rt := runFor(t, twoCfg)
	bb := em.Energy(&baseCfg, &rb)
	bt := em.Energy(&twoCfg, &rt)
	// The paper's §VI-E: two-level has much more interconnect traffic.
	if bt.RingFlits <= bb.RingFlits {
		t.Fatalf("two-level ring traffic not higher: %d vs %d", bt.RingFlits, bb.RingFlits)
	}
}

func TestAreaModel(t *testing.T) {
	am := DefaultAreaModel()
	base := config.BaselineExclusive()
	base.Cores = 4
	noL2 := config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2")
	noL2.Cores = 4
	aBase := am.CacheAreaMM2(&base)
	aNoL2 := am.CacheAreaMM2(&noL2)
	if aNoL2 >= aBase {
		t.Fatalf("removing 4MB of L2 did not shrink area: %v vs %v", aNoL2, aBase)
	}
	// Paper: the noL2+6.5MB configuration is ≈30% smaller cache area.
	saving := 1 - aNoL2/aBase
	if saving < 0.15 || saving > 0.45 {
		t.Fatalf("area saving %.1f%%, want ≈30%%", saving*100)
	}
}

func TestIsoAreaConfiguration(t *testing.T) {
	am := DefaultAreaModel()
	base := config.BaselineExclusive()
	base.Cores = 4
	iso := config.NoL2(config.BaselineExclusive(), 9728*config.KB, 19, "iso")
	iso.Cores = 4
	aBase := am.CacheAreaMM2(&base)
	aIso := am.CacheAreaMM2(&iso)
	diff := (aIso - aBase) / aBase
	if diff > 0.10 || diff < -0.15 {
		t.Fatalf("9.5MB noL2 not ≈iso-area: %+.1f%%", diff*100)
	}
}

func TestSavingsPercent(t *testing.T) {
	a := Breakdown{TotalUJ: 100}
	b := Breakdown{TotalUJ: 89}
	if s := SavingsPercent(a, b); s < 10.9 || s > 11.1 {
		t.Fatalf("savings %v", s)
	}
	if SavingsPercent(Breakdown{}, b) != 0 {
		t.Fatal("zero base not handled")
	}
}
