// Package power models chip energy and area for the evaluated cache
// hierarchies, in the spirit of the paper's CACTI/Orion/Micron
// methodology (§VI-E): per-event energies for cache reads/writes that
// scale with capacity, per-hop-flit ring energy, and DRAM access plus
// background energy. Only relative comparisons between configurations
// are meaningful, exactly as in the paper.
package power

import (
	"math"

	"catch/internal/config"
	"catch/internal/core"
)

// EnergyModel holds the per-event energy constants (picojoules).
type EnergyModel struct {
	// CacheReadPJ(sizeBytes) = CacheBasePJ + CacheScalePJ*sqrt(size in KB)
	CacheBasePJ  float64
	CacheScalePJ float64
	WriteFactor  float64 // writes cost reads × this factor

	RingHopFlitPJ float64 // energy per flit per hop

	DRAMAccessPJ     float64 // per 64B read or write burst
	DRAMBackgroundPW float64 // background power per cycle (pJ/cycle)
}

// DefaultEnergyModel returns CACTI-class constants for a ~14nm node.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		CacheBasePJ:      4,
		CacheScalePJ:     0.55,
		WriteFactor:      1.2,
		RingHopFlitPJ:    1.6,
		DRAMAccessPJ:     15000,
		DRAMBackgroundPW: 35,
	}
}

// cacheReadPJ returns the read energy of a cache of the given size.
func (m *EnergyModel) cacheReadPJ(size uint64) float64 {
	return m.CacheBasePJ + m.CacheScalePJ*math.Sqrt(float64(size)/1024)
}

// Breakdown is the energy split of one run, in microjoules.
type Breakdown struct {
	CacheUJ float64
	RingUJ  float64
	DRAMUJ  float64
	TotalUJ float64

	CacheEvents uint64
	RingFlits   uint64
	DRAMEvents  uint64
}

// Energy computes the energy consumed by a run on a configuration.
func (m *EnergyModel) Energy(cfg *config.SystemConfig, r *core.Result) Breakdown {
	var b Breakdown

	acc := func(size uint64, reads, writes uint64) {
		e := m.cacheReadPJ(size)
		b.CacheUJ += (float64(reads)*e + float64(writes)*e*m.WriteFactor) / 1e6
		b.CacheEvents += reads + writes
	}
	acc(cfg.L1DSize, r.L1D.Lookups, r.L1D.Fills+r.L1D.Writes)
	acc(cfg.L1ISize, r.L1I.Lookups, r.L1I.Fills)
	if r.HasL2 {
		acc(cfg.L2Size, r.L2.Lookups, r.L2.Fills+r.L2.Writes)
	}
	acc(cfg.LLCSize, r.LLC.Lookups, r.LLC.Fills+r.LLC.Writes)

	b.RingFlits = r.Ring.HopFlits
	b.RingUJ = float64(r.Ring.HopFlits) * m.RingHopFlitPJ / 1e6

	b.DRAMEvents = r.DRAM.Reads + r.DRAM.Writes
	b.DRAMUJ = (float64(b.DRAMEvents)*m.DRAMAccessPJ +
		float64(r.Cycles)*m.DRAMBackgroundPW) / 1e6

	b.TotalUJ = b.CacheUJ + b.RingUJ + b.DRAMUJ
	return b
}

// AreaModel estimates die area of the cache hierarchy.
type AreaModel struct {
	MM2PerMB     float64 // SRAM density
	L2Overhead   float64 // per-core L2 control overhead (mm²)
	SnoopFilter  float64 // exclusive-LLC coherence directory (mm²/core)
	FixedPerCore float64 // L1s + control (mm²)
}

// DefaultAreaModel returns representative 14nm-class density numbers.
func DefaultAreaModel() AreaModel {
	return AreaModel{
		MM2PerMB:     1.9,
		L2Overhead:   0.45,
		SnoopFilter:  0.25,
		FixedPerCore: 0.35,
	}
}

// CacheAreaMM2 returns the total cache area of a configuration
// (private caches × cores + shared LLC).
func (a *AreaModel) CacheAreaMM2(cfg *config.SystemConfig) float64 {
	cores := cfg.Cores
	if cores <= 0 {
		cores = 1
	}
	mb := func(b uint64) float64 { return float64(b) / (1 << 20) }
	area := float64(cores) * (a.FixedPerCore + a.MM2PerMB*mb(cfg.L1ISize+cfg.L1DSize))
	if cfg.HasL2 {
		area += float64(cores) * (a.L2Overhead + a.MM2PerMB*mb(cfg.L2Size))
	}
	area += a.MM2PerMB * mb(cfg.LLCSize)
	if !cfg.Inclusive {
		area += float64(cores) * a.SnoopFilter
	}
	return area
}

// SavingsPercent returns the relative energy savings of b versus base.
func SavingsPercent(base, b Breakdown) float64 {
	if base.TotalUJ == 0 {
		return 0
	}
	return (1 - b.TotalUJ/base.TotalUJ) * 100
}
