package criticality

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/trace"
)

// runDetector drives a real core over a synthetic instruction stream
// with per-PC load latencies/levels, returning the detector.
func runDetector(t *testing.T, cfg Config, n int, gen func(i int) trace.Inst,
	loads map[uint64]struct {
		lat int64
		lvl cache.HitLevel
	}) *Detector {
	t.Helper()
	d := New(cfg)
	c := cpu.New(cpu.DefaultParams())
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		if e, ok := loads[in.PC]; ok {
			return e.lat, e.lvl
		}
		return 5, cache.HitL1
	}
	c.Ports.OnRetire = d.OnRetire
	for i := 0; i < n; i++ {
		in := gen(i)
		c.Step(&in)
	}
	return d
}

type loadSpec = map[uint64]struct {
	lat int64
	lvl cache.HitLevel
}

const (
	pcCritLoad = uint64(0x1000)
	pcL1Load   = uint64(0x2000)
	pcALU      = uint64(0x3000)
)

// chainGen emits a serial L2-hit load chain (critical) interleaved with
// independent L1 loads and filler ALUs (non-critical).
func chainGen(i int) trace.Inst {
	switch i % 4 {
	case 0: // serial chain through r1
		return trace.Inst{PC: pcCritLoad, Op: trace.OpLoad, Dst: 1, Src1: 1, Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
	case 1: // independent L1 load
		return trace.Inst{PC: pcL1Load, Op: trace.OpLoad, Dst: 2, Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint64(0x200000 + i*64)}
	default:
		return trace.Inst{PC: pcALU, Op: trace.OpALU, Dst: 3, Src1: trace.NoReg, Src2: trace.NoReg}
	}
}

func chainLoads() loadSpec {
	return loadSpec{
		pcCritLoad: {lat: 15, lvl: cache.HitL2},
		pcL1Load:   {lat: 5, lvl: cache.HitL1},
	}
}

func TestDetectorFindsSerialL2Loads(t *testing.T) {
	d := runDetector(t, DefaultConfig(cpu.DefaultParams()), 20000, chainGen, chainLoads())
	if !d.IsCritical(pcCritLoad) {
		t.Fatal("serial L2-hit load not marked critical")
	}
	if d.IsCritical(pcL1Load) {
		t.Fatal("independent L1 load marked critical")
	}
	if d.IsCritical(pcALU) {
		t.Fatal("ALU PC marked critical")
	}
	if d.Stats.Walks == 0 || d.Stats.PathLoads == 0 {
		t.Fatalf("detector did not walk: %+v", d.Stats)
	}
}

func TestDetectorRespectsLevelMask(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultParams())
	cfg.Record = MaskLLC // L2 hits must NOT be recorded
	d := runDetector(t, cfg, 20000, chainGen, chainLoads())
	if d.IsCritical(pcCritLoad) {
		t.Fatal("L2 hit recorded despite LLC-only mask")
	}
}

func TestDetectorMaskL1(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultParams())
	cfg.Record = MaskL1
	// Make the serial chain an L1-hit chain: still the critical path.
	loads := loadSpec{
		pcCritLoad: {lat: 5, lvl: cache.HitL1},
		pcL1Load:   {lat: 5, lvl: cache.HitL1},
	}
	d := runDetector(t, cfg, 20000, chainGen, loads)
	if !d.IsCritical(pcCritLoad) {
		t.Fatal("serial L1 chain not marked under L1 mask")
	}
}

func TestDetectorMispredictedBranchPath(t *testing.T) {
	// A load whose value feeds a mispredicted branch is critical even
	// though nothing else consumes it.
	pcBrLoad := uint64(0x4000)
	gen := func(i int) trace.Inst {
		switch i % 8 {
		case 0:
			return trace.Inst{PC: pcBrLoad, Op: trace.OpLoad, Dst: 1, Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
		case 1:
			return trace.Inst{PC: 0x4010, Op: trace.OpBranch, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg, Taken: true, Mispred: i%16 == 1}
		default:
			return trace.Inst{PC: pcALU, Op: trace.OpALU, Dst: 3, Src1: trace.NoReg, Src2: trace.NoReg}
		}
	}
	loads := loadSpec{pcBrLoad: {lat: 40, lvl: cache.HitLLC}}
	d := runDetector(t, DefaultConfig(cpu.DefaultParams()), 30000, gen, loads)
	if !d.IsCritical(pcBrLoad) {
		t.Fatal("load feeding mispredicted branches not marked critical")
	}
}

func TestDetectorQuantization(t *testing.T) {
	if quantize(1) != 0 {
		t.Fatalf("quantize(1) = %d, want 0 (5-bit /8 storage)", quantize(1))
	}
	if quantize(15) != 16 {
		t.Fatalf("quantize(15) = %d", quantize(15))
	}
	if quantize(40) != 40 {
		t.Fatalf("quantize(40) = %d", quantize(40))
	}
	if quantize(10000) != 31*8 {
		t.Fatalf("quantize saturates at %d, got %d", 31*8, quantize(10000))
	}
}

func TestDetectorBufferFlushAndOverflow(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultParams())
	d := runDetector(t, cfg, 5000, chainGen, chainLoads())
	// 5000 retires with walks every 2×ROB=448 instructions.
	wantWalks := uint64(5000 / 448)
	if d.Stats.Walks < wantWalks-1 || d.Stats.Walks > wantWalks+1 {
		t.Fatalf("walks = %d, want ≈%d", d.Stats.Walks, wantWalks)
	}
}

func TestComputeArea(t *testing.T) {
	a := ComputeArea(224, 2.5, 32)
	if a.Instructions != 560 {
		t.Fatalf("buffered instructions = %d", a.Instructions)
	}
	// Paper: graph ≈ 2.3KB, PCs ≈ 1KB, total ≈ 3KB.
	if a.GraphBytes < 2000 || a.GraphBytes > 3000 {
		t.Fatalf("graph bytes = %d, want ≈2.3KB", a.GraphBytes)
	}
	if a.TotalBytes < 2500 || a.TotalBytes > 4096 {
		t.Fatalf("total bytes = %d, want ≈3KB", a.TotalBytes)
	}
}
