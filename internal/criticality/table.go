// Package criticality implements the paper's hardware criticality
// detection (§IV-A): a bounded buffer of the retirement-order data
// dependency graph (Fields et al.), an incremental longest-path
// computation via node costs and prev-node pointers, a walk that
// enumerates the load instructions on the critical path, and the
// 32-entry set-associative critical-load-PC table with 2-bit
// confidence counters and periodic re-learning.
package criticality

import "slices"

// TableConfig sizes the critical-load-PC table.
type TableConfig struct {
	Entries int // total entries (paper: 32)
	Ways    int // set associativity (paper: 8)
	// ConfSat is the saturation value of the 2-bit confidence counter.
	ConfSat uint8
	// Unlimited switches to an unbounded table (oracle studies, the
	// "All PC" point of Fig 5).
	Unlimited bool
}

// DefaultTableConfig returns the paper's 32-entry, 8-way table.
func DefaultTableConfig() TableConfig {
	return TableConfig{Entries: 32, Ways: 8, ConfSat: 3}
}

type tableEntry struct {
	pc    uint64
	conf  uint8
	lru   int64
	valid bool
}

// Table is the critical-load-PC table. A PC is reported critical only
// when present with a saturated confidence counter.
type Table struct {
	cfg     TableConfig //catch:nosnap construction-time configuration, not warm state
	sets    int
	setMask uint64 //catch:nosnap sets-1 when sets is a power of two, derived at construction
	entries []tableEntry
	tick    int64

	unlimited map[uint64]*tableEntry

	Inserts, Promotions, Resets uint64
}

// NewTable builds a table from cfg.
func NewTable(cfg TableConfig) *Table {
	if cfg.ConfSat == 0 {
		cfg.ConfSat = 3
	}
	t := &Table{cfg: cfg}
	if cfg.Unlimited {
		t.unlimited = make(map[uint64]*tableEntry)
		return t
	}
	if cfg.Ways <= 0 {
		cfg.Ways = 1
	}
	if cfg.Entries < cfg.Ways {
		cfg.Entries = cfg.Ways
	}
	t.cfg = cfg
	t.sets = cfg.Entries / cfg.Ways
	if t.sets == 0 {
		t.sets = 1
	}
	t.entries = make([]tableEntry, t.sets*cfg.Ways)
	if t.sets&(t.sets-1) == 0 {
		t.setMask = uint64(t.sets - 1)
	}
	return t
}

// set selects the entry group for pc. IsCritical runs once per load on
// the simulator's hottest path, so the power-of-two case (the paper's
// 4-set table) avoids the modulo.
func (t *Table) set(pc uint64) []tableEntry {
	var s int
	if t.setMask != 0 || t.sets == 1 {
		s = int((pc >> 2) & t.setMask)
	} else {
		s = int((pc >> 2) % uint64(t.sets))
	}
	return t.entries[s*t.cfg.Ways : (s+1)*t.cfg.Ways]
}

// Record notes that pc was observed on the critical path, inserting or
// bumping its confidence.
func (t *Table) Record(pc uint64) {
	t.tick++
	if t.unlimited != nil {
		e := t.unlimited[pc]
		if e == nil {
			e = &tableEntry{pc: pc, conf: 1, valid: true}
			t.unlimited[pc] = e
			t.Inserts++
			return
		}
		if e.conf < t.cfg.ConfSat {
			e.conf++
			if e.conf == t.cfg.ConfSat {
				t.Promotions++
			}
		}
		return
	}
	set := t.set(pc)
	victim, oldest := 0, int64(1<<62-1)
	for i := range set {
		e := &set[i]
		if e.valid && e.pc == pc {
			e.lru = t.tick
			if e.conf < t.cfg.ConfSat {
				e.conf++
				if e.conf == t.cfg.ConfSat {
					t.Promotions++
				}
			}
			return
		}
		if !e.valid {
			victim, oldest = i, -1
		} else if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	set[victim] = tableEntry{pc: pc, conf: 1, lru: t.tick, valid: true}
	t.Inserts++
}

// IsCritical reports whether pc is currently marked critical.
func (t *Table) IsCritical(pc uint64) bool {
	if t.unlimited != nil {
		e := t.unlimited[pc]
		return e != nil && e.conf >= t.cfg.ConfSat
	}
	set := t.set(pc)
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return set[i].conf >= t.cfg.ConfSat
		}
	}
	return false
}

// Relearn resets the confidence of entries that have not reached
// saturation (invoked every 100K retired instructions, per the paper).
func (t *Table) Relearn() {
	t.Resets++
	if t.unlimited != nil {
		//catchlint:ignore determinism independent per-entry confidence reset; no order-dependent state escapes the loop
		for _, e := range t.unlimited {
			if e.conf < t.cfg.ConfSat {
				e.conf = 0
			}
		}
		return
	}
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].conf < t.cfg.ConfSat {
			t.entries[i].conf = 0
		}
	}
}

// CriticalPCs returns the PCs currently marked critical (saturated),
// in ascending PC order so callers that print or diff the set get a
// reproducible listing regardless of map iteration order.
func (t *Table) CriticalPCs() []uint64 {
	var out []uint64
	if t.unlimited != nil {
		//catchlint:ignore determinism keys are sorted below before the slice escapes
		for pc, e := range t.unlimited {
			if e.conf >= t.cfg.ConfSat {
				out = append(out, pc)
			}
		}
		slices.Sort(out)
		return out
	}
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].conf >= t.cfg.ConfSat {
			out = append(out, t.entries[i].pc)
		}
	}
	return out
}

// Len returns the number of valid entries.
func (t *Table) Len() int {
	if t.unlimited != nil {
		return len(t.unlimited)
	}
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
