package criticality

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/trace"
)

// bruteForceCosts computes the longest path to every node of the
// buffered DDG by explicit relaxation over all edges (O(N²) worst
// case), independently of the detector's incremental prev-node scheme.
// It mirrors the edge system of addCosts exactly.
func bruteForceCosts(buf []gnode, cfg Config) (d, e, c []int64) {
	n := len(buf)
	d = make([]int64, n)
	e = make([]int64, n)
	c = make([]int64, n)
	w := int64(cfg.Width)
	for i := 0; i < n; i++ {
		// D node.
		d[i] = 0
		if i > 0 {
			dd := d[i-1]
			if int64(i)%w == 0 {
				dd++
			}
			if dd > d[i] {
				d[i] = dd
			}
			if buf[i-1].mispred {
				if eb := e[i-1] + buf[i-1].qlat + cfg.MispredictPenalty; eb > d[i] {
					d[i] = eb
				}
			}
		}
		if i >= cfg.ROB && c[i-cfg.ROB] > d[i] {
			d[i] = c[i-cfg.ROB]
		}
		// E node.
		e[i] = d[i] + cfg.RenameLat
		for _, j := range buf[i].dep {
			if j >= 0 {
				if ec := e[j] + buf[j].qlat; ec > e[i] {
					e[i] = ec
				}
			}
		}
		// C node.
		c[i] = e[i] + buf[i].qlat
		if i > 0 {
			cc := c[i-1]
			if int64(i)%w == 0 {
				cc++
			}
			if cc > c[i] {
				c[i] = cc
			}
		}
	}
	return
}

// synthRetired generates a pseudo-random but well-formed retired
// instruction stream through a real core, capturing the detector's
// buffered graph just before a walk.
func captureGraph(t *testing.T, seed uint64, n int) ([]gnode, Config) {
	t.Helper()
	cfg := DefaultConfig(cpu.DefaultParams())
	cfg.ROB = 32 // small window → frequent cross-window edges
	d := New(cfg)

	rng := trace.NewRNG(seed)
	c := cpu.New(cpu.Params{Width: 4, ROB: 32, RenameLat: 2, MispredictPenalty: 15, L1IHitLat: 5, FetchHide: 6})
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		switch in.Addr % 3 {
		case 0:
			return 5, cache.HitL1
		case 1:
			return 15, cache.HitL2
		default:
			return 40, cache.HitLLC
		}
	}
	var snapshot []gnode
	c.Ports.OnRetire = func(r *cpu.Retired) {
		d.OnRetire(r)
		if len(d.buf) == 2*cfg.ROB-1 && snapshot == nil {
			snapshot = append([]gnode(nil), d.buf...)
		}
	}
	for i := 0; i < n && snapshot == nil; i++ {
		var in trace.Inst
		switch rng.Intn(5) {
		case 0:
			in = trace.Inst{PC: uint64(0x1000 + rng.Intn(16)*4), Op: trace.OpLoad,
				Dst: int8(rng.Intn(8)), Src1: int8(rng.Intn(8)), Src2: trace.NoReg,
				Addr: rng.Uint64() % (1 << 20)}
		case 1:
			in = trace.Inst{PC: 0x2000, Op: trace.OpBranch, Dst: trace.NoReg,
				Src1: int8(rng.Intn(8)), Src2: trace.NoReg,
				Taken: rng.Bool(0.5), Mispred: rng.Bool(0.1)}
		case 2:
			in = trace.Inst{PC: 0x3000, Op: trace.OpIMul, Dst: int8(rng.Intn(8)),
				Src1: int8(rng.Intn(8)), Src2: int8(rng.Intn(8))}
		default:
			in = trace.Inst{PC: 0x4000, Op: trace.OpALU, Dst: int8(rng.Intn(8)),
				Src1: int8(rng.Intn(8)), Src2: trace.NoReg}
		}
		c.Step(&in)
	}
	if snapshot == nil {
		t.Fatal("never captured a full graph buffer")
	}
	return snapshot, cfg
}

// TestIncrementalCostsMatchBruteForce is the central correctness check
// of the detector: the incremental node costs (the paper's prev-node
// scheme) must equal an independent brute-force longest-path
// computation over the same graph, for many random graphs.
func TestIncrementalCostsMatchBruteForce(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		buf, cfg := captureGraph(t, seed, 10_000)
		d, e, c := bruteForceCosts(buf, cfg)
		for i := range buf {
			if buf[i].dCost != d[i] || buf[i].eCost != e[i] || buf[i].cCost != c[i] {
				t.Fatalf("seed %d inst %d: incremental (D=%d E=%d C=%d) vs brute force (D=%d E=%d C=%d)",
					seed, i, buf[i].dCost, buf[i].eCost, buf[i].cCost, d[i], e[i], c[i])
			}
		}
	}
}

// TestWalkFollowsMaximalPath checks that the critical-path walk only
// traverses edges that realize the node costs (i.e. the prev-node
// pointers are consistent with the longest path).
func TestWalkFollowsMaximalPath(t *testing.T) {
	buf, cfg := captureGraph(t, 7, 10_000)
	for i := range buf {
		g := &buf[i]
		switch g.eFrom {
		case fromEDep:
			j := g.eDep
			if j < 0 || int(j) >= i {
				t.Fatalf("inst %d: eDep out of range: %d", i, j)
			}
			if buf[j].eCost+buf[j].qlat != g.eCost {
				t.Fatalf("inst %d: E prev-node does not realize cost", i)
			}
		case fromDSelf:
			if g.dCost+cfg.RenameLat != g.eCost {
				t.Fatalf("inst %d: E cost does not match D self edge", i)
			}
		}
		switch g.cFrom {
		case fromESelf:
			if g.eCost+g.qlat != g.cCost {
				t.Fatalf("inst %d: C prev-node does not realize cost", i)
			}
		case fromCPrev:
			if i == 0 {
				t.Fatalf("inst 0 claims C-C predecessor")
			}
		}
	}
}

// TestWalkTerminates drives long random streams and ensures every walk
// terminates and visits a bounded number of nodes.
func TestWalkTerminates(t *testing.T) {
	cfg := DefaultConfig(cpu.DefaultParams())
	d := New(cfg)
	rng := trace.NewRNG(11)
	c := cpu.New(cpu.DefaultParams())
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		return 15, cache.HitL2
	}
	c.Ports.OnRetire = d.OnRetire
	for i := 0; i < 30_000; i++ {
		in := trace.Inst{PC: uint64(0x1000 + rng.Intn(64)*4), Op: trace.OpLoad,
			Dst: int8(rng.Intn(16)), Src1: int8(rng.Intn(16)), Src2: trace.NoReg,
			Addr: rng.Uint64() % (1 << 24)}
		c.Step(&in)
	}
	if d.Stats.Walks == 0 {
		t.Fatal("no walks")
	}
	if d.Stats.PathNodes > uint64(3*cfg.ROB)*d.Stats.Walks {
		t.Fatalf("walks visit too many nodes: %d over %d walks", d.Stats.PathNodes, d.Stats.Walks)
	}
}
