package criticality

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/trace"
)

func runHeuristic(t *testing.T, kind HeuristicKind, n int, gen func(i int) trace.Inst,
	loads loadSpec) *Heuristic {
	t.Helper()
	h := NewHeuristic(kind, DefaultTableConfig(), DefaultMask)
	c := cpu.New(cpu.DefaultParams())
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		if e, ok := loads[in.PC]; ok {
			return e.lat, e.lvl
		}
		return 5, cache.HitL1
	}
	c.Ports.OnRetire = h.OnRetire
	for i := 0; i < n; i++ {
		in := gen(i)
		c.Step(&in)
	}
	return h
}

func TestFeedsBranchHeuristic(t *testing.T) {
	pcLoad := uint64(0x5000)
	gen := func(i int) trace.Inst {
		switch i % 6 {
		case 0:
			return trace.Inst{PC: pcLoad, Op: trace.OpLoad, Dst: 1, Src1: trace.NoReg,
				Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
		case 1:
			return trace.Inst{PC: 0x5010, Op: trace.OpBranch, Dst: trace.NoReg,
				Src1: 1, Src2: trace.NoReg, Taken: true, Mispred: i%12 == 1}
		default:
			return trace.Inst{PC: 0x5020, Op: trace.OpALU, Dst: 2, Src1: trace.NoReg, Src2: trace.NoReg}
		}
	}
	h := runHeuristic(t, HeurFeedsBranch, 5000, gen, loadSpec{
		pcLoad: {lat: 15, lvl: cache.HitL2},
	})
	if !h.IsCritical(pcLoad) {
		t.Fatal("feeds-branch heuristic missed a branch-feeding L2 load")
	}
}

func TestFeedsBranchIgnoresL1Loads(t *testing.T) {
	pcLoad := uint64(0x5000)
	gen := func(i int) trace.Inst {
		if i%3 == 0 {
			return trace.Inst{PC: pcLoad, Op: trace.OpLoad, Dst: 1, Src1: trace.NoReg,
				Src2: trace.NoReg, Addr: 0x100000}
		}
		return trace.Inst{PC: 0x5010, Op: trace.OpBranch, Dst: trace.NoReg,
			Src1: 1, Src2: trace.NoReg, Taken: true}
	}
	h := runHeuristic(t, HeurFeedsBranch, 3000, gen, loadSpec{
		pcLoad: {lat: 5, lvl: cache.HitL1},
	})
	if h.IsCritical(pcLoad) {
		t.Fatal("feeds-branch heuristic flagged an L1-hit load (record mask L2|LLC)")
	}
}

func TestROBStallHeuristic(t *testing.T) {
	// A serial chain of LLC-hit loads is always blocking retirement.
	pcLoad := uint64(0x6000)
	gen := func(i int) trace.Inst {
		if i%2 == 0 {
			return trace.Inst{PC: pcLoad, Op: trace.OpLoad, Dst: 1, Src1: 1,
				Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
		}
		return trace.Inst{PC: 0x6010, Op: trace.OpALU, Dst: 2, Src1: 1, Src2: trace.NoReg}
	}
	h := runHeuristic(t, HeurROBStall, 5000, gen, loadSpec{
		pcLoad: {lat: 40, lvl: cache.HitLLC},
	})
	if !h.IsCritical(pcLoad) {
		t.Fatal("ROB-stall heuristic missed a retirement-blocking load")
	}
}

func TestHeuristicOverMarksVsGraph(t *testing.T) {
	// The paper's point about heuristics: a branch in the shadow of an
	// unrelated serial chain still credits its (actually non-critical)
	// feeding load. The graph detector must not mark it.
	pcSerial := uint64(0x7000) // true critical chain
	pcShadow := uint64(0x7100) // L2 load feeding a well-predicted branch,
	// fully hidden behind the serial chain
	gen := func(i int) trace.Inst {
		switch i % 8 {
		case 0, 2, 4, 6:
			return trace.Inst{PC: pcSerial, Op: trace.OpLoad, Dst: 1, Src1: 1,
				Src2: trace.NoReg, Addr: uint64(0x100000 + i*64)}
		case 1:
			return trace.Inst{PC: pcShadow, Op: trace.OpLoad, Dst: 2, Src1: trace.NoReg,
				Src2: trace.NoReg, Addr: uint64(0x900000 + i*64)}
		case 3:
			return trace.Inst{PC: 0x7110, Op: trace.OpBranch, Dst: trace.NoReg,
				Src1: 2, Src2: trace.NoReg, Taken: true} // never mispredicted
		default:
			return trace.Inst{PC: 0x7200, Op: trace.OpALU, Dst: 3, Src1: trace.NoReg, Src2: trace.NoReg}
		}
	}
	loads := loadSpec{
		pcSerial: {lat: 40, lvl: cache.HitLLC},
		pcShadow: {lat: 15, lvl: cache.HitL2},
	}
	heur := runHeuristic(t, HeurFeedsBranch, 20000, gen, loads)
	graph := runDetector(t, DefaultConfig(cpu.DefaultParams()), 20000, gen, loads)
	if !heur.IsCritical(pcShadow) {
		t.Fatal("heuristic did not exhibit the shadow false positive (test premise)")
	}
	if graph.IsCritical(pcShadow) {
		t.Fatal("graph detector marked the shadowed, non-critical load")
	}
	if !graph.IsCritical(pcSerial) {
		t.Fatal("graph detector missed the true critical chain")
	}
}

func TestHeuristicSnapshot(t *testing.T) {
	h := NewHeuristic(HeurROBStall, DefaultTableConfig(), 0)
	if h.Snapshot().Retired != 0 {
		t.Fatal("fresh heuristic has activity")
	}
	if h.CriticalCount() != 0 {
		t.Fatal("fresh heuristic marks PCs")
	}
}
