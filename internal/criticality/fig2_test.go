package criticality

import (
	"testing"

	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/trace"
)

// This file reproduces the semantics of the paper's Figure 2 example:
// a dependency chain in which one L2-hit load (instruction 2) lies on
// the critical path while other L2/LLC hits (instructions 3 and 6) do
// not. The paper draws three conclusions, each checked here:
//
//  1. the critical path runs through the chained L2 hit, not the
//     independent ones;
//  2. slowing the NON-critical L2 hits to LLC latency leaves the
//     execution time (critical path) unchanged;
//  3. making the CRITICAL load an L1 hit shortens execution.

const (
	fig2PCMemLoad  = 0x100 // long-latency load the chain hangs off
	fig2PCCritL2   = 0x104 // L2 hit on the dependent chain (critical)
	fig2PCFreeL2   = 0x108 // independent L2 hit (non-critical)
	fig2PCFreeLLC  = 0x10C // independent LLC hit (non-critical)
	fig2PCChainALU = 0x110
)

// fig2Gen emits the example's structure repeatedly: a memory load
// feeding a chained L2 load feeding ALU work, with independent L2/LLC
// loads alongside.
func fig2Gen(i int) trace.Inst {
	switch i % 8 {
	case 0:
		return trace.Inst{PC: fig2PCMemLoad, Op: trace.OpLoad, Dst: 1, Src1: 1,
			Src2: trace.NoReg, Addr: uint64(0x1000000 + i*64)}
	case 1: // dependent: address from r1
		return trace.Inst{PC: fig2PCCritL2, Op: trace.OpLoad, Dst: 2, Src1: 1,
			Src2: trace.NoReg, Addr: uint64(0x2000000 + i*64)}
	case 2:
		return trace.Inst{PC: fig2PCChainALU, Op: trace.OpALU, Dst: 1, Src1: 2, Src2: trace.NoReg}
	case 3: // independent L2 hit
		return trace.Inst{PC: fig2PCFreeL2, Op: trace.OpLoad, Dst: 3, Src1: trace.NoReg,
			Src2: trace.NoReg, Addr: uint64(0x3000000 + i*64)}
	case 4: // independent LLC hit
		return trace.Inst{PC: fig2PCFreeLLC, Op: trace.OpLoad, Dst: 4, Src1: trace.NoReg,
			Src2: trace.NoReg, Addr: uint64(0x4000000 + i*64)}
	default:
		return trace.Inst{PC: 0x200, Op: trace.OpALU, Dst: 5, Src1: trace.NoReg, Src2: trace.NoReg}
	}
}

// fig2Run executes the example with configurable latencies for the two
// non-critical loads and the critical load, returning total cycles and
// the detector.
func fig2Run(t *testing.T, critLat, freeL2Lat int64, critLvl cache.HitLevel) (int64, *Detector) {
	t.Helper()
	d := New(DefaultConfig(cpu.DefaultParams()))
	c := cpu.New(cpu.DefaultParams())
	c.Ports.Load = func(in *trace.Inst, ready int64) (int64, cache.HitLevel) {
		switch in.PC {
		case fig2PCMemLoad:
			return 200, cache.HitMem
		case fig2PCCritL2:
			return critLat, critLvl
		case fig2PCFreeL2:
			return freeL2Lat, cache.HitL2
		case fig2PCFreeLLC:
			return 30, cache.HitLLC
		}
		return 5, cache.HitL1
	}
	c.Ports.OnRetire = d.OnRetire
	for i := 0; i < 20000; i++ {
		in := fig2Gen(i)
		c.Step(&in)
	}
	return c.Cycles(), d
}

func TestFig2CriticalPathThroughChainedLoad(t *testing.T) {
	_, d := fig2Run(t, 11, 11, cache.HitL2)
	if !d.IsCritical(fig2PCCritL2) {
		t.Fatal("the chained L2 hit (paper's instruction 2) not marked critical")
	}
	if d.IsCritical(fig2PCFreeL2) {
		t.Fatal("the independent L2 hit (paper's instruction 3/6) marked critical")
	}
	if d.IsCritical(fig2PCFreeLLC) {
		t.Fatal("the independent LLC hit marked critical")
	}
}

func TestFig2SlowingNonCriticalIsFree(t *testing.T) {
	// "if the latency of the non-critical L2 hits (11 cycles) is
	// increased to LLC hit latency (30 cycles), the critical path of
	// execution will remain the same."
	base, _ := fig2Run(t, 11, 11, cache.HitL2)
	slow, _ := fig2Run(t, 11, 30, cache.HitL2)
	if slow > base+base/100 {
		t.Fatalf("slowing non-critical L2 hits changed execution: %d vs %d cycles", slow, base)
	}
}

func TestFig2AcceleratingCriticalHelps(t *testing.T) {
	// "if critical load instruction 2 is made a hit in the L1, the
	// overall performance will improve."
	base, _ := fig2Run(t, 11, 11, cache.HitL2)
	fast, _ := fig2Run(t, 5, 11, cache.HitL1)
	if fast >= base {
		t.Fatalf("accelerating the critical load did not help: %d vs %d cycles", fast, base)
	}
}
