package criticality

// AreaBudget reproduces the paper's Table I storage accounting for the
// graph buffer plus the hashed-PC storage (§IV-A: "about 3 KB").
type AreaBudget struct {
	Instructions int // buffered graph capacity (2.5 × ROB)
	BitsPerInst  int // graph edge/weight storage per instruction
	GraphBytes   int
	PCBits       int // hashed PC width
	PCBytes      int
	TableBytes   int // critical-load table
	TotalBytes   int
}

// Table I bit budget per buffered instruction:
//
//	implicit edges (D-D, C-C, D-E, C-D)        0 b
//	E-C execution latency, quantized            5 b
//	E-E dependencies: 3 sources + memory dep   32 b
//	E-D bad speculation flag                    1 b
const bitsPerInst = 5 + 32 + 1

// ComputeArea returns the storage budget for a detector over a core
// with the given ROB size.
func ComputeArea(rob int, bufferFactor float64, tableEntries int) AreaBudget {
	if bufferFactor <= 0 {
		bufferFactor = 2.5
	}
	n := int(bufferFactor * float64(rob))
	a := AreaBudget{
		Instructions: n,
		BitsPerInst:  bitsPerInst,
		PCBits:       10,
	}
	a.GraphBytes = (n*bitsPerInst + 7) / 8
	a.PCBytes = (n*a.PCBits + 7) / 8
	// Table entry: 10b hashed PC + 2b confidence + 3b LRU ≈ 2 bytes.
	a.TableBytes = tableEntries * 2
	a.TotalBytes = a.GraphBytes + a.PCBytes + a.TableBytes
	return a
}
