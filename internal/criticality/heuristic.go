package criticality

import (
	"catch/internal/cpu"
	"catch/internal/trace"
)

// Source is any mechanism that identifies critical load PCs from the
// retirement stream. The paper's graph-buffer Detector and the
// heuristic baselines below all implement it, so CATCH can be driven by
// either (§IV-A: "CATCH ... doesn't preclude the use of other finely
// tuned heuristics").
type Source interface {
	OnRetire(r *cpu.Retired)
	IsCritical(pc uint64) bool
	CriticalCount() int
	Snapshot() Stats
}

// CriticalCount implements Source for the graph Detector.
func (d *Detector) CriticalCount() int { return len(d.Table.CriticalPCs()) }

// Snapshot implements Source for the graph Detector.
func (d *Detector) Snapshot() Stats { return d.Stats }

// HeuristicKind selects one of the literature's criticality heuristics.
type HeuristicKind uint8

// Heuristic kinds.
const (
	// HeurFeedsBranch marks loads whose results feed branches,
	// weighting mispredicted branches heavily (Tune et al. style,
	// paper reference [2]). It suffers exactly the false positive the
	// paper describes: branches in the shadow of an unrelated miss
	// still credit their feeding loads.
	HeurFeedsBranch HeuristicKind = iota
	// HeurROBStall marks loads that complete while blocking
	// retirement (commit immediately follows writeback): an
	// oldest-in-ROB stall heuristic (Subramaniam et al. style, paper
	// reference [6]).
	HeurROBStall
)

// Heuristic is a table-backed heuristic criticality source.
type Heuristic struct {
	Kind   HeuristicKind
	Table  *Table
	record LevelMask //catch:nosnap construction-time configuration, not warm state

	// feeds-branch state: the most recent load PC writing each
	// register lineage (as TACT's feeder tracker does).
	regLoadPC [trace.NumArchRegs]uint64

	Stats Stats
}

// NewHeuristic builds a heuristic source with the paper's table shape.
func NewHeuristic(kind HeuristicKind, table TableConfig, record LevelMask) *Heuristic {
	if record == 0 {
		record = DefaultMask
	}
	return &Heuristic{
		Kind:   kind,
		Table:  NewTable(table),
		record: record,
	}
}

// IsCritical implements Source.
func (h *Heuristic) IsCritical(pc uint64) bool { return h.Table.IsCritical(pc) }

// CriticalCount implements Source.
func (h *Heuristic) CriticalCount() int { return len(h.Table.CriticalPCs()) }

// Snapshot implements Source.
func (h *Heuristic) Snapshot() Stats { return h.Stats }

// OnRetire implements Source.
func (h *Heuristic) OnRetire(r *cpu.Retired) {
	h.Stats.Retired++
	switch h.Kind {
	case HeurFeedsBranch:
		h.feedsBranch(r)
	case HeurROBStall:
		h.robStall(r)
	}
}

func (h *Heuristic) feedsBranch(r *cpu.Retired) {
	in := &r.Inst
	if in.Op == trace.OpLoad {
		if h.record.matches(r.HitLevel) && in.Dst >= 0 {
			h.regLoadPC[in.Dst] = in.PC
		} else if in.Dst >= 0 {
			h.regLoadPC[in.Dst] = 0
		}
		return
	}
	if in.Op == trace.OpBranch {
		// Credit the load lineage feeding the branch condition. A
		// mispredicted branch credits harder.
		if in.Src1 >= 0 {
			if pc := h.regLoadPC[in.Src1]; pc != 0 {
				h.Stats.RecordedLoads++
				h.Table.Record(pc)
				if in.Mispred {
					h.Table.Record(pc)
					h.Table.Record(pc)
				}
			}
		}
		return
	}
	// Propagate lineage through register writes.
	if in.Dst >= 0 {
		var y uint64
		if in.Src1 >= 0 {
			y = h.regLoadPC[in.Src1]
		}
		if y == 0 && in.Src2 >= 0 {
			y = h.regLoadPC[in.Src2]
		}
		h.regLoadPC[in.Dst] = y
	}
}

func (h *Heuristic) robStall(r *cpu.Retired) {
	if r.Inst.Op != trace.OpLoad || !h.record.matches(r.HitLevel) {
		return
	}
	// A load whose commit happens right at its writeback was blocking
	// in-order retirement: the classic oldest-in-ROB criticality proxy.
	if r.C-r.W <= 1 {
		h.Stats.RecordedLoads++
		h.Table.Record(r.Inst.PC)
	}
}
