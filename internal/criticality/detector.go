package criticality

import (
	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// LevelMask selects which hit levels a critical load must have been
// served from to be recorded in the table. The paper records loads that
// hit in the L2 or LLC (those are the ones CATCH can accelerate);
// oracle studies at other levels use different masks.
type LevelMask uint8

// Level mask bits.
const (
	MaskL1 LevelMask = 1 << iota
	MaskL2
	MaskLLC
	MaskMem
)

// DefaultMask records L2 and LLC hits.
const DefaultMask = MaskL2 | MaskLLC

func (m LevelMask) matches(l cache.HitLevel) bool {
	switch l {
	case cache.HitL1:
		return m&MaskL1 != 0
	case cache.HitL2:
		return m&MaskL2 != 0
	case cache.HitLLC:
		return m&MaskLLC != 0
	case cache.HitMem:
		return m&MaskMem != 0
	}
	return false
}

// Config parameterizes the detector.
type Config struct {
	ROB               int   // core reorder-buffer size
	Width             int   // dispatch width (D-D / C-C edge weights)
	RenameLat         int64 // D-E edge weight
	MispredictPenalty int64 // E-D edge weight
	// BufferFactor × ROB instructions are buffered; the walk window is
	// 2 × ROB (paper: 2.5 and 2.0).
	BufferFactor float64
	// RelearnInterval is the retired-instruction period after which
	// unsaturated table entries are reset (paper: 100K).
	RelearnInterval int64
	Table           TableConfig
	// Record selects which serving levels are recorded.
	Record LevelMask
}

// DefaultConfig returns the paper's detector configuration for the
// given core parameters.
func DefaultConfig(p cpu.Params) Config {
	return Config{
		ROB:               p.ROB,
		Width:             p.Width,
		RenameLat:         p.RenameLat,
		MispredictPenalty: p.MispredictPenalty,
		BufferFactor:      2.5,
		RelearnInterval:   100_000,
		Table:             DefaultTableConfig(),
		Record:            DefaultMask,
	}
}

// prev-node encodings for the walk.
type fromKind uint8

const (
	fromNone  fromKind = iota
	fromDPrev          // D[i] <- D[i-1]
	fromCROB           // D[i] <- C[i-ROB]
	fromEBad           // D[i] <- E of mispredicted branch
	fromDSelf          // E[i] <- D[i]
	fromEDep           // E[i] <- E[j] (data/memory dependency)
	fromESelf          // C[i] <- E[i]
	fromCPrev          // C[i] <- C[i-1]
)

// gnode is one instruction's three DDG nodes with incremental longest-
// path state. Only the fields the hardware keeps (Table I) influence
// behaviour; PCs are stored hashed to 10 bits for area accounting but
// kept in full here to index the table.
type gnode struct {
	pc      uint64
	isLoad  bool
	level   cache.HitLevel
	mispred bool
	qlat    int64    // quantized execution latency (5-bit, ×8)
	dep     [3]int32 // producer indices within the buffer, -1 if none

	dCost, eCost, cCost int64
	dFrom, eFrom, cFrom fromKind
	eDep                int32 // chosen producer for fromEDep
}

// Stats counts detector activity.
type Stats struct {
	Retired       uint64
	Walks         uint64
	PathNodes     uint64
	PathLoads     uint64
	RecordedLoads uint64
	Overflows     uint64
}

// Delta returns s - base, field by field. Detector counters are
// cumulative over a whole run; the sampling subsystem rebases them to
// express one measurement window.
func (s Stats) Delta(base Stats) Stats {
	return Stats{
		Retired:       s.Retired - base.Retired,
		Walks:         s.Walks - base.Walks,
		PathNodes:     s.PathNodes - base.PathNodes,
		PathLoads:     s.PathLoads - base.PathLoads,
		RecordedLoads: s.RecordedLoads - base.RecordedLoads,
		Overflows:     s.Overflows - base.Overflows,
	}
}

// Detector is the hardware criticality detector.
type Detector struct {
	cfg   Config //catch:nosnap construction-time configuration, not warm state
	Table *Table

	buf          []gnode
	baseSeq      int64
	walkAt       int //catch:nosnap buffer fill level that triggers a walk (2×ROB), fixed at construction
	sinceRelearn int64

	// Trace, when attached and enabled, receives one EvPathNode per
	// node the walk visits plus an EvWalkEnd summary — the raw
	// material of `catchsim -dump-critpath`. Walks run every 2×ROB
	// instructions, so even an enabled tracer costs nothing on the
	// per-retire path.
	Trace    *telemetry.Tracer //catch:nosnap observability wiring, not simulated state
	TraceTID uint8             //catch:nosnap observability wiring, not simulated state

	Stats Stats
}

// New builds a detector.
func New(cfg Config) *Detector {
	if cfg.BufferFactor < 2.0 {
		cfg.BufferFactor = 2.5
	}
	if cfg.RelearnInterval <= 0 {
		cfg.RelearnInterval = 100_000
	}
	capN := int(cfg.BufferFactor * float64(cfg.ROB))
	d := &Detector{
		cfg:    cfg,
		Table:  NewTable(cfg.Table),
		buf:    make([]gnode, 0, capN),
		walkAt: 2 * cfg.ROB,
	}
	return d
}

// quantize models the 5-bit, divide-by-8 saturating latency storage
// (round to nearest; short ALU latencies round to zero, exactly as the
// hardware storage would lose them).
func quantize(lat int64) int64 {
	q := (lat + 4) / 8
	if q > 31 {
		q = 31
	}
	return q * 8
}

// OnRetire adds a retired instruction to the graph buffer, computing
// its node costs incrementally, and triggers a critical-path walk once
// 2×ROB instructions are buffered.
func (d *Detector) OnRetire(r *cpu.Retired) {
	d.Stats.Retired++
	d.sinceRelearn++
	if d.sinceRelearn >= d.cfg.RelearnInterval {
		d.sinceRelearn = 0
		d.Table.Relearn()
	}

	if len(d.buf) == 0 {
		d.baseSeq = r.Seq
	}
	i := len(d.buf)
	if i >= cap(d.buf) {
		// Graph overflow: discard and start afresh (paper §IV-A).
		d.Stats.Overflows++
		d.buf = d.buf[:0]
		d.baseSeq = r.Seq
		i = 0
	}
	d.buf = d.buf[:i+1]
	g := &d.buf[i]
	// Assign fields directly instead of writing a struct literal: every
	// other field is (re)computed by addCosts below, and skipping the
	// implied zeroing measurably speeds up this per-instruction path.
	g.pc = r.Inst.PC
	g.isLoad = r.Inst.Op == trace.OpLoad
	g.level = r.HitLevel
	g.mispred = r.Inst.Op == trace.OpBranch && r.Inst.Mispred
	g.qlat = quantize(r.Lat)
	for k, s := range r.Dep {
		g.dep[k] = -1
		if s >= 0 {
			if rel := s - d.baseSeq; rel >= 0 && rel < int64(i) {
				g.dep[k] = int32(rel)
			}
		}
	}

	d.addCosts(i)

	if len(d.buf) >= d.walkAt {
		d.walk()
		d.buf = d.buf[:0]
	}
}

// addCosts performs the paper's incremental longest-path update: each
// node examines only its immediate incoming edges against cumulative
// costs.
func (d *Detector) addCosts(i int) {
	g := &d.buf[i]
	w := int64(d.cfg.Width)

	// D node.
	g.dCost, g.dFrom = 0, fromNone
	if i > 0 {
		p := &d.buf[i-1]
		dd := p.dCost
		if int64(i)%w == 0 {
			dd++ // dispatch group boundary costs a cycle
		}
		if dd > g.dCost {
			g.dCost, g.dFrom = dd, fromDPrev
		}
		if p.mispred {
			if eb := p.eCost + p.qlat + d.cfg.MispredictPenalty; eb > g.dCost {
				g.dCost, g.dFrom = eb, fromEBad
			}
		}
	}
	if i >= d.cfg.ROB {
		if cr := d.buf[i-d.cfg.ROB].cCost; cr > g.dCost {
			g.dCost, g.dFrom = cr, fromCROB
		}
	}

	// E node.
	g.eCost, g.eFrom, g.eDep = g.dCost+d.cfg.RenameLat, fromDSelf, -1
	for _, j := range g.dep {
		if j < 0 {
			continue
		}
		p := &d.buf[j]
		if ec := p.eCost + p.qlat; ec > g.eCost {
			g.eCost, g.eFrom, g.eDep = ec, fromEDep, j
		}
	}

	// C node.
	g.cCost, g.cFrom = g.eCost+g.qlat, fromESelf
	if i > 0 {
		cc := d.buf[i-1].cCost
		if int64(i)%w == 0 {
			cc++
		}
		if cc > g.cCost {
			g.cCost, g.cFrom = cc, fromCPrev
		}
	}
}

// walk traverses prev-node pointers from the last C node and records
// critical loads that were served from the configured levels.
func (d *Detector) walk() {
	d.Stats.Walks++
	i := len(d.buf) - 1
	if i < 0 {
		return
	}
	type nk uint8
	const (
		atD nk = iota
		atE
		atC
	)
	// tracing is hoisted out of the loop: the walk runs every 2×ROB
	// instructions, and with tracing off it must cost nothing extra.
	tracing := d.Trace.Enabled()
	if tracing {
		nodes0, loads0, rec0 := d.Stats.PathNodes, d.Stats.PathLoads, d.Stats.RecordedLoads
		defer func() {
			d.Trace.Emit(telemetry.Event{Cat: telemetry.CatCritPath, Type: telemetry.EvWalkEnd,
				TID: d.TraceTID, TS: d.buf[len(d.buf)-1].cCost,
				A1: d.Stats.PathNodes - nodes0, A2: d.Stats.PathLoads - loads0, A3: d.Stats.RecordedLoads - rec0})
		}()
	}
	at := atC
	for i >= 0 {
		d.Stats.PathNodes++
		g := &d.buf[i]
		if tracing {
			// nk's atD/atE/atC order matches telemetry.PathD/E/C.
			d.tracePathNode(g, i, uint8(at))
		}
		switch at {
		case atC:
			if g.cFrom == fromESelf {
				at = atE
			} else {
				i--
			}
		case atE:
			if g.isLoad {
				d.Stats.PathLoads++
				if d.cfg.Record.matches(g.level) {
					d.Stats.RecordedLoads++
					d.Table.Record(g.pc)
				}
			}
			switch g.eFrom {
			case fromEDep:
				i = int(g.eDep)
			default:
				at = atD
			}
		case atD:
			switch g.dFrom {
			case fromCROB:
				i -= d.cfg.ROB
				at = atC
			case fromEBad:
				i--
				at = atE
			case fromDPrev:
				i--
			default:
				return // reached the start of the window
			}
		}
	}
}

// tracePathNode emits one critical-path node record: the node's
// cumulative longest-path cost as its timestamp, the instruction's pc
// and sequence number, and packed node/edge/load/level metadata. The
// fromKind constants match telemetry's edge-name table by construction.
func (d *Detector) tracePathNode(g *gnode, i int, node uint8) {
	var cost int64
	var edge uint8
	switch node {
	case telemetry.PathD:
		cost, edge = g.dCost, uint8(g.dFrom)
	case telemetry.PathE:
		cost, edge = g.eCost, uint8(g.eFrom)
	default:
		cost, edge = g.cCost, uint8(g.cFrom)
	}
	//catchlint:ignore telemetry-discipline walk() hoists the Enabled check out of the loop and is the only caller
	d.Trace.Emit(telemetry.Event{Cat: telemetry.CatCritPath, Type: telemetry.EvPathNode,
		TID: d.TraceTID, TS: cost, A1: g.pc, A2: uint64(d.baseSeq + int64(i)),
		A3: telemetry.PackPathMeta(node, edge, g.isLoad, uint8(g.level))})
}

// IsCritical reports whether pc is currently marked critical.
func (d *Detector) IsCritical(pc uint64) bool { return d.Table.IsCritical(pc) }
