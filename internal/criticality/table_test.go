package criticality

import (
	"testing"
	"testing/quick"
)

func TestTableConfidencePromotion(t *testing.T) {
	tb := NewTable(DefaultTableConfig())
	pc := uint64(0x1000)
	tb.Record(pc) // conf 1
	if tb.IsCritical(pc) {
		t.Fatal("critical after one observation")
	}
	tb.Record(pc) // 2
	tb.Record(pc) // 3 = saturated
	if !tb.IsCritical(pc) {
		t.Fatal("not critical after saturation")
	}
}

func TestTableRelearnResetsUnsaturated(t *testing.T) {
	tb := NewTable(DefaultTableConfig())
	hot, warm := uint64(0x1000), uint64(0x2000)
	for i := 0; i < 3; i++ {
		tb.Record(hot)
	}
	tb.Record(warm)
	tb.Record(warm)
	tb.Relearn()
	if !tb.IsCritical(hot) {
		t.Fatal("relearn reset a saturated entry")
	}
	tb.Record(warm) // would have saturated without the reset
	if tb.IsCritical(warm) {
		t.Fatal("relearn did not reset unsaturated confidence")
	}
}

func TestTableLRUWithinSet(t *testing.T) {
	tb := NewTable(TableConfig{Entries: 8, Ways: 8, ConfSat: 3})
	// Single set of 8: fill 8 PCs, then a 9th evicts the LRU (first).
	for i := 0; i < 8; i++ {
		tb.Record(uint64(0x1000 + i*4))
	}
	tb.Record(0x1000) // refresh first
	tb.Record(0x9000) // evicts LRU = 0x1004
	if tb.Len() != 8 {
		t.Fatalf("table size %d, want 8", tb.Len())
	}
	// 0x1004 must be gone: recording it thrice from scratch saturates;
	// if it were still present with conf 1 it would need only two.
	tb.Record(0x1004)
	if tb.IsCritical(0x1004) {
		t.Fatal("evicted entry retained confidence")
	}
}

func TestTableCapacity(t *testing.T) {
	tb := NewTable(DefaultTableConfig())
	for i := 0; i < 500; i++ {
		tb.Record(uint64(0x1000 + i*4))
	}
	if tb.Len() > 32 {
		t.Fatalf("32-entry table holds %d", tb.Len())
	}
}

func TestTableUnlimited(t *testing.T) {
	tb := NewTable(TableConfig{Unlimited: true, ConfSat: 3})
	for i := 0; i < 5000; i++ {
		pc := uint64(0x1000 + (i%1000)*4)
		tb.Record(pc)
	}
	if tb.Len() != 1000 {
		t.Fatalf("unlimited table holds %d, want 1000", tb.Len())
	}
	if !tb.IsCritical(0x1000) {
		t.Fatal("unlimited entry not saturated")
	}
	tb.Relearn() // must not panic and must keep saturated entries
	if !tb.IsCritical(0x1000) {
		t.Fatal("relearn dropped saturated unlimited entry")
	}
}

func TestTableCriticalPCs(t *testing.T) {
	tb := NewTable(DefaultTableConfig())
	for i := 0; i < 3; i++ {
		tb.Record(0x1000)
		tb.Record(0x2000)
	}
	tb.Record(0x3000)
	pcs := tb.CriticalPCs()
	if len(pcs) != 2 {
		t.Fatalf("critical PCs = %v", pcs)
	}
}

// Property: IsCritical implies the PC was recorded at least ConfSat
// times (no spurious criticality).
func TestTableNoSpuriousCriticality(t *testing.T) {
	f := func(pcs []uint16) bool {
		tb := NewTable(DefaultTableConfig())
		count := map[uint64]int{}
		for _, p := range pcs {
			pc := uint64(p)*4 + 4
			tb.Record(pc)
			count[pc]++
		}
		for pc, n := range count {
			if tb.IsCritical(pc) && n < 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
