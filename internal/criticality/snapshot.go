package criticality

import (
	"fmt"
	"sort"

	"catch/internal/cache"
	"catch/internal/snap"
)

// Snapshot codecs for the criticality subsystem: the detector's graph
// buffer (length plus full node contents — a walk boundary is part of
// the state), the critical-PC table including its unlimited-mode map
// (serialized in sorted key order so the image is deterministic), the
// heuristic sources' register lineage file, and all counters.

func snapshotStats(w *snap.Writer, s *Stats) {
	w.U64(s.Retired)
	w.U64(s.Walks)
	w.U64(s.PathNodes)
	w.U64(s.PathLoads)
	w.U64(s.RecordedLoads)
	w.U64(s.Overflows)
}

func restoreStats(r *snap.Reader, s *Stats) {
	s.Retired = r.U64()
	s.Walks = r.U64()
	s.PathNodes = r.U64()
	s.PathLoads = r.U64()
	s.RecordedLoads = r.U64()
	s.Overflows = r.U64()
}

// SnapshotTo appends the detector's full mutable state.
func (d *Detector) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(cap(d.buf)))
	w.U64(uint64(len(d.buf)))
	for i := range d.buf {
		g := &d.buf[i]
		w.U64(g.pc)
		w.Bool(g.isLoad)
		w.U8(uint8(g.level))
		w.Bool(g.mispred)
		w.I64(g.qlat)
		for _, dep := range g.dep {
			w.I32(dep)
		}
		w.I64(g.dCost)
		w.I64(g.eCost)
		w.I64(g.cCost)
		w.U8(uint8(g.dFrom))
		w.U8(uint8(g.eFrom))
		w.U8(uint8(g.cFrom))
		w.I32(g.eDep)
	}
	w.I64(d.baseSeq)
	w.I64(d.sinceRelearn)
	snapshotStats(w, &d.Stats)
	d.Table.SnapshotTo(w)
}

// RestoreFrom restores detector state serialized by SnapshotTo.
func (d *Detector) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(cap(d.buf)), "detector buffer capacity")
	n := int(r.U64())
	if r.Err() != nil {
		return r.Err()
	}
	if n < 0 || n > cap(d.buf) {
		r.Fail(fmt.Errorf("snap: detector buffer length %d exceeds capacity %d", n, cap(d.buf)))
		return r.Err()
	}
	d.buf = d.buf[:n]
	for i := range d.buf {
		g := &d.buf[i]
		g.pc = r.U64()
		g.isLoad = r.Bool()
		g.level = cache.HitLevel(r.U8())
		g.mispred = r.Bool()
		g.qlat = r.I64()
		for k := range g.dep {
			g.dep[k] = r.I32()
		}
		g.dCost = r.I64()
		g.eCost = r.I64()
		g.cCost = r.I64()
		g.dFrom = fromKind(r.U8())
		g.eFrom = fromKind(r.U8())
		g.cFrom = fromKind(r.U8())
		g.eDep = r.I32()
	}
	d.baseSeq = r.I64()
	d.sinceRelearn = r.I64()
	restoreStats(r, &d.Stats)
	return d.Table.RestoreFrom(r)
}

// SnapshotTo appends the table's entries, tick, unlimited-mode map and
// counters.
func (t *Table) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(t.entries)))
	w.U64(uint64(t.sets))
	for i := range t.entries {
		e := &t.entries[i]
		w.U64(e.pc)
		w.U8(e.conf)
		w.I64(e.lru)
		w.Bool(e.valid)
	}
	w.I64(t.tick)
	if t.unlimited == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		keys := make([]uint64, 0, len(t.unlimited))
		for pc := range t.unlimited {
			keys = append(keys, pc)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		w.U64(uint64(len(keys)))
		for _, pc := range keys {
			e := t.unlimited[pc]
			w.U64(e.pc)
			w.U8(e.conf)
			w.I64(e.lru)
			w.Bool(e.valid)
		}
	}
	w.U64(t.Inserts)
	w.U64(t.Promotions)
	w.U64(t.Resets)
}

// RestoreFrom restores table state serialized by SnapshotTo into a
// table of identical geometry.
func (t *Table) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(t.entries)), "criticality table size")
	r.Expect(uint64(t.sets), "criticality table sets")
	for i := range t.entries {
		e := &t.entries[i]
		e.pc = r.U64()
		e.conf = r.U8()
		e.lru = r.I64()
		e.valid = r.Bool()
	}
	t.tick = r.I64()
	hasUnlimited := r.Bool()
	if r.Err() == nil && hasUnlimited != (t.unlimited != nil) {
		r.Fail(fmt.Errorf("snap: unlimited-table mode mismatch: snapshot has %v, live state has %v", hasUnlimited, t.unlimited != nil))
	}
	if hasUnlimited && t.unlimited != nil {
		n := int(r.U64())
		if r.Err() != nil {
			return r.Err()
		}
		if n < 0 || n > 1<<28 {
			r.Fail(fmt.Errorf("snap: implausible unlimited-table size %d", n))
			return r.Err()
		}
		t.unlimited = make(map[uint64]*tableEntry, n)
		for i := 0; i < n; i++ {
			e := &tableEntry{}
			e.pc = r.U64()
			e.conf = r.U8()
			e.lru = r.I64()
			e.valid = r.Bool()
			t.unlimited[e.pc] = e
		}
	}
	t.Inserts = r.U64()
	t.Promotions = r.U64()
	t.Resets = r.U64()
	return r.Err()
}

// SnapshotTo appends the heuristic source's mutable state.
func (h *Heuristic) SnapshotTo(w *snap.Writer) {
	w.U8(uint8(h.Kind))
	for _, pc := range h.regLoadPC {
		w.U64(pc)
	}
	snapshotStats(w, &h.Stats)
	h.Table.SnapshotTo(w)
}

// RestoreFrom restores heuristic state serialized by SnapshotTo.
func (h *Heuristic) RestoreFrom(r *snap.Reader) error {
	kind := r.U8()
	if r.Err() == nil && HeuristicKind(kind) != h.Kind {
		r.Fail(fmt.Errorf("snap: heuristic kind mismatch: snapshot has %d, live state has %d", kind, h.Kind))
	}
	for i := range h.regLoadPC {
		h.regLoadPC[i] = r.U64()
	}
	restoreStats(r, &h.Stats)
	return h.Table.RestoreFrom(r)
}
