package trace

import "testing"

func testWorkload() *Workload {
	return &Workload{
		WName: "test", WCategory: "test", Seed: 123,
		Build: func(b *Builder) {
			b.Add(2, &StreamKernel{
				Code: b.Space.Code(256), Data: b.Space.Data(8192),
				R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 8,
			})
			g := &IndexedGatherKernel{
				Code: b.Space.Code(384), Index: b.Space.Data(8192), Target: b.Space.Data(1 << 15),
				R: [4]int8{4, 5, 6, 7}, Block: 4, Work: 2, SeedVal: 1,
			}
			b.AddValues(g.Values())
			b.MarkPrewarm(g.Target)
			b.Add(1, g)
		},
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	w := testWorkload()
	g1 := w.NewGen()
	g2 := w.NewGen()
	var a, b Inst
	for i := 0; i < 5000; i++ {
		if !g1.Next(&a) || !g2.Next(&b) {
			t.Fatal("generator ended unexpectedly")
		}
		if a != b {
			t.Fatalf("instance divergence at %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratorResetReplays(t *testing.T) {
	w := testWorkload()
	g := w.NewGen()
	first := make([]Inst, 500)
	for i := range first {
		g.Next(&first[i])
	}
	g.Reset()
	var in Inst
	for i := range first {
		g.Next(&in)
		if in != first[i] {
			t.Fatalf("reset did not replay: inst %d differs", i)
		}
	}
}

func TestGeneratorMixesKernels(t *testing.T) {
	w := testWorkload()
	g := w.NewGen()
	var in Inst
	sawStream, sawGather := false, false
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		if in.Op == OpLoad {
			if in.Addr < 1<<32+20000 {
				sawStream = true
			} else {
				sawGather = true
			}
		}
	}
	if !sawStream || !sawGather {
		t.Fatalf("kernel mix not interleaved: stream=%v gather=%v", sawStream, sawGather)
	}
}

func TestGeneratorValueSource(t *testing.T) {
	w := testWorkload()
	g := w.NewGen()
	vs, ok := g.(ValueSource)
	if !ok {
		t.Fatal("generator does not implement ValueSource")
	}
	// Addresses inside the registered index region resolve; others don't.
	if _, ok := vs.ValueAt(1); ok {
		t.Fatal("ValueAt resolved an unregistered address")
	}
	var in Inst
	for i := 0; i < 5000; i++ {
		g.Next(&in)
		if in.Op != OpLoad {
			continue
		}
		if v, ok := vs.ValueAt(in.Addr); ok {
			if v != in.Data {
				t.Fatalf("ValueAt(%#x) = %d, trace data %d", in.Addr, v, in.Data)
			}
			return // verified at least one
		}
	}
	t.Fatal("no load resolved through ValueSource")
}

func TestGeneratorPrewarm(t *testing.T) {
	w := testWorkload()
	g := w.NewGen()
	pw, ok := g.(Prewarmer)
	if !ok {
		t.Fatal("generator does not implement Prewarmer")
	}
	regs := pw.PrewarmRegions()
	if len(regs) != 1 || regs[0].Size != 1<<15 {
		t.Fatalf("prewarm regions wrong: %+v", regs)
	}
}

func TestWorkloadPanicsWithoutKernels(t *testing.T) {
	w := &Workload{WName: "empty", Build: func(b *Builder) {}}
	defer func() {
		if recover() == nil {
			t.Fatal("empty workload did not panic")
		}
	}()
	w.NewGen()
}

func TestBuilderWeightsRespected(t *testing.T) {
	w := &Workload{
		WName: "weighted", Seed: 5,
		Build: func(b *Builder) {
			b.Add(9, &ILPKernel{Code: b.Space.Code(128), R: [4]int8{0, 1, 2, 3}, Block: 4})
			b.Add(1, &DepChainKernel{Code: b.Space.Code(128), R: [4]int8{4, 5, 6, 7}, Block: 4})
		},
	}
	g := w.NewGen()
	var in Inst
	ilp, dep := 0, 0
	for i := 0; i < 20000; i++ {
		g.Next(&in)
		switch in.Op {
		case OpALU:
			ilp++
		case OpIMul:
			dep++
		}
	}
	if dep == 0 || ilp == 0 {
		t.Fatal("one kernel never scheduled")
	}
	if ilp < dep {
		t.Fatalf("weights ignored: ilp=%d dep=%d", ilp, dep)
	}
}
