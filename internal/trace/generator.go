package trace

// Builder collects the kernels, address space and memory-content
// functions of one workload while its Build function runs.
type Builder struct {
	RNG   *RNG
	Space *AddrSpace

	kernels []weightedKernel
	values  []ValueRange
	prewarm []Region
}

// MarkPrewarm registers a data region as long-term cache-resident: the
// simulator pre-populates the LLC with it before measurement, standing
// in for the steady state a 100M-instruction run would reach.
func (b *Builder) MarkPrewarm(r Region) {
	if r.Size > 0 {
		b.prewarm = append(b.prewarm, r)
	}
}

// Prewarmer is implemented by generators whose workloads declare
// steady-state-resident regions.
type Prewarmer interface {
	PrewarmRegions() []Region
}

type weightedKernel struct {
	weight int
	k      Kernel
}

// Add registers a kernel with a scheduling weight. Each generator
// refill picks one kernel with probability proportional to its weight.
func (b *Builder) Add(weight int, k Kernel) {
	if weight <= 0 {
		weight = 1
	}
	b.kernels = append(b.kernels, weightedKernel{weight: weight, k: k})
}

// AddValues registers a memory-content function for a data region (used
// by the TACT-Feeder model to observe prefetched data).
func (b *Builder) AddValues(v ValueRange) {
	if v.Fn != nil && v.Size > 0 {
		b.values = append(b.values, v)
	}
}

// BuildFunc constructs a workload's kernels into the builder. It is
// re-run on every Reset with a freshly seeded RNG, so all kernel state
// restarts deterministically.
type BuildFunc func(b *Builder)

// Workload names a deterministic synthetic program.
type Workload struct {
	WName     string
	WCategory string
	Seed      uint64
	Build     BuildFunc
}

// NewGen instantiates a fresh generator for the workload.
func (w *Workload) NewGen() Generator {
	g := &workloadGen{w: w}
	g.Reset()
	return g
}

// ValueSource is implemented by generators that can report the
// program-defined memory contents at an address (see ValueFn).
type ValueSource interface {
	ValueAt(addr uint64) (uint64, bool)
}

type workloadGen struct {
	w       *Workload
	rng     *RNG
	em      *Emitter
	kernels []weightedKernel
	totalW  int
	values  []ValueRange
	prewarm []Region
	pos     int
}

func (g *workloadGen) Name() string     { return g.w.WName }
func (g *workloadGen) Category() string { return g.w.WCategory }

func (g *workloadGen) Reset() {
	g.rng = NewRNG(g.w.Seed)
	g.em = NewEmitter(g.rng)
	b := &Builder{RNG: g.rng, Space: NewAddrSpace()}
	g.w.Build(b)
	if len(b.kernels) == 0 {
		panic("trace: workload " + g.w.WName + " built no kernels")
	}
	g.kernels = b.kernels
	g.totalW = 0
	for _, wk := range b.kernels {
		g.totalW += wk.weight
	}
	g.values = b.values
	g.prewarm = b.prewarm
	g.pos = 0
}

// PrewarmRegions returns the workload's steady-state-resident regions.
func (g *workloadGen) PrewarmRegions() []Region { return g.prewarm }

func (g *workloadGen) Next(i *Inst) bool {
	for g.pos >= len(g.em.Buf) {
		g.em.Buf = g.em.Buf[:0]
		g.pos = 0
		g.pick().Emit(g.em)
	}
	*i = g.em.Buf[g.pos]
	g.pos++
	return true
}

func (g *workloadGen) pick() Kernel {
	if len(g.kernels) == 1 {
		return g.kernels[0].k
	}
	n := g.rng.Intn(g.totalW)
	for _, wk := range g.kernels {
		n -= wk.weight
		if n < 0 {
			return wk.k
		}
	}
	return g.kernels[len(g.kernels)-1].k
}

// ValueAt reports the program-defined memory value at addr, if any
// registered kernel covers it.
func (g *workloadGen) ValueAt(addr uint64) (uint64, bool) {
	for _, v := range g.values {
		if addr >= v.Base && addr < v.Base+v.Size {
			return v.Fn(addr), true
		}
	}
	return 0, false
}
