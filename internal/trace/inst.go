// Package trace defines the dynamic instruction stream consumed by the
// timing model, plus deterministic generators for synthesizing
// workloads. A trace instruction carries architectural-register data
// dependencies (16 integer registers), memory addresses for loads and
// stores, loaded data values (needed by the TACT-Feeder model) and
// branch outcome/misprediction flags.
package trace

// Op classifies a dynamic instruction. The class determines the base
// execution latency in the core model; loads and code fetches get their
// latency from the cache hierarchy.
type Op uint8

// Instruction classes.
const (
	OpALU    Op = iota // simple integer op, 1 cycle
	OpIMul             // integer multiply, 3 cycles
	OpIDiv             // integer divide, 18 cycles
	OpFAdd             // FP add/sub, 3 cycles
	OpFMul             // FP multiply, 4 cycles
	OpFDiv             // FP divide, 20 cycles
	OpLoad             // memory load, latency from hierarchy
	OpStore            // memory store, retired at commit
	OpBranch           // conditional/indirect branch, 1 cycle
	OpNop              // no destination, no sources
	opCount
)

// String returns a short mnemonic for the op class.
func (o Op) String() string {
	switch o {
	case OpALU:
		return "alu"
	case OpIMul:
		return "imul"
	case OpIDiv:
		return "idiv"
	case OpFAdd:
		return "fadd"
	case OpFMul:
		return "fmul"
	case OpFDiv:
		return "fdiv"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpNop:
		return "nop"
	}
	return "?"
}

// NumOps is the number of instruction classes.
const NumOps = int(opCount)

// NumArchRegs is the number of architectural integer registers visible
// to the dependency model (mirrors x86-64's 16 GPRs).
const NumArchRegs = 16

// NoReg marks an absent register operand.
const NoReg int8 = -1

// Inst is one dynamic instruction in the trace.
type Inst struct {
	PC   uint64 // instruction address (stable per static site)
	Addr uint64 // effective address (loads/stores)
	Data uint64 // value loaded (loads only); drives feeder patterns

	Op         Op
	Dst        int8 // destination arch register, NoReg if none
	Src1, Src2 int8 // source arch registers, NoReg if absent

	Taken   bool // branch outcome
	Mispred bool // branch was mispredicted
}

// IsMem reports whether the instruction accesses data memory.
func (i *Inst) IsMem() bool { return i.Op == OpLoad || i.Op == OpStore }

// Generator produces an instruction stream. Implementations must be
// deterministic: Reset followed by N calls to Next always yields the
// same N instructions.
type Generator interface {
	// Name identifies the workload (e.g. "mcf").
	Name() string
	// Category is the workload class ("ISPEC", "FSPEC", "HPC",
	// "server", "client").
	Category() string
	// Reset restarts the stream from the beginning.
	Reset()
	// Next fills in the next instruction. It returns false when the
	// stream is exhausted; workload streams are effectively infinite
	// and always return true.
	Next(i *Inst) bool
}

// CacheLineSize is the line size, in bytes, assumed throughout.
const CacheLineSize = 64

// PageSize is the (small) page size used by the cross-association
// prefetch logic.
const PageSize = 4096

// LineAddr returns the cache-line-aligned address of a.
func LineAddr(a uint64) uint64 { return a &^ uint64(CacheLineSize-1) }

// PageAddr returns the 4KB-page-aligned address of a.
func PageAddr(a uint64) uint64 { return a &^ uint64(PageSize-1) }
