package trace

import (
	"testing"
)

func emitN(k Kernel, n int) []Inst {
	e := NewEmitter(NewRNG(99))
	for len(e.Buf) < n {
		k.Emit(e)
	}
	return e.Buf
}

func checkInstValid(t *testing.T, insts []Inst, name string) {
	t.Helper()
	for i, in := range insts {
		if in.Op >= Op(NumOps) {
			t.Fatalf("%s inst %d: bad op %d", name, i, in.Op)
		}
		if in.Dst >= NumArchRegs || in.Src1 >= NumArchRegs || in.Src2 >= NumArchRegs {
			t.Fatalf("%s inst %d: register out of range: %+v", name, i, in)
		}
		if in.IsMem() && in.Addr == 0 {
			t.Fatalf("%s inst %d: memory op with zero address", name, i)
		}
		if in.PC == 0 {
			t.Fatalf("%s inst %d: zero PC", name, i)
		}
	}
}

func TestStreamKernelSequential(t *testing.T) {
	sp := NewAddrSpace()
	k := &StreamKernel{
		Code: sp.Code(256), Data: sp.Data(1 << 16),
		R: [4]int8{0, 1, 2, 3}, Stride: 8, Block: 8,
	}
	insts := emitN(k, 100)
	checkInstValid(t, insts, "stream")
	var last uint64
	seen := false
	for _, in := range insts {
		if in.Op != OpLoad {
			continue
		}
		if seen && in.Addr != last+8 && in.Addr != k.Data.Base {
			t.Fatalf("stream load not sequential: %#x after %#x", in.Addr, last)
		}
		last, seen = in.Addr, true
	}
}

func TestStreamKernelStaysInRegion(t *testing.T) {
	sp := NewAddrSpace()
	k := &StreamKernel{Code: sp.Code(256), Data: sp.Data(4096),
		R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 8}
	for _, in := range emitN(k, 500) {
		if in.Op == OpLoad && (in.Addr < k.Data.Base || in.Addr >= k.Data.Base+k.Data.Size) {
			t.Fatalf("load escaped region: %#x", in.Addr)
		}
	}
}

func TestPointerChaseIsPermutation(t *testing.T) {
	sp := NewAddrSpace()
	k := &PointerChaseKernel{Code: sp.Code(256), Data: sp.Data(64 * 64),
		R: [4]int8{0, 1, 2, 3}, Block: 4, Work: 2}
	k.InitChase(NewRNG(5))
	// The next pointers must form one cycle over all 64 nodes.
	seen := make(map[uint64]bool)
	cur := uint64(0)
	for i := 0; i < 64; i++ {
		if seen[cur] {
			t.Fatalf("chase cycle shorter than node count: revisited %d at step %d", cur, i)
		}
		seen[cur] = true
		cur = uint64(k.perm[cur])
	}
	if cur != 0 {
		t.Fatalf("chase does not close the cycle: ended at %d", cur)
	}
}

func TestPointerChaseLoadsFollowData(t *testing.T) {
	sp := NewAddrSpace()
	k := &PointerChaseKernel{Code: sp.Code(256), Data: sp.Data(32 * 64),
		R: [4]int8{0, 1, 2, 3}, Block: 4, Work: 1}
	k.InitChase(NewRNG(5))
	insts := emitN(k, 60)
	checkInstValid(t, insts, "chase")
	var prev *Inst
	for i := range insts {
		in := &insts[i]
		if in.Op != OpLoad {
			continue
		}
		if prev != nil && in.Addr != prev.Data {
			t.Fatalf("chase broke: load addr %#x != previous data %#x", in.Addr, prev.Data)
		}
		prev = in
	}
}

func TestPointerChaseValuesMatchTrace(t *testing.T) {
	sp := NewAddrSpace()
	k := &PointerChaseKernel{Code: sp.Code(256), Data: sp.Data(32 * 64),
		R: [4]int8{0, 1, 2, 3}, Block: 4, Work: 0}
	k.InitChase(NewRNG(5))
	vr := k.Values()
	for _, in := range emitN(k, 40) {
		if in.Op != OpLoad {
			continue
		}
		if got := vr.Fn(in.Addr); got != in.Data {
			t.Fatalf("ValueFn(%#x) = %#x, trace data %#x", in.Addr, got, in.Data)
		}
	}
}

func TestIndexedGatherFeederRelation(t *testing.T) {
	sp := NewAddrSpace()
	k := &IndexedGatherKernel{
		Code: sp.Code(384), Index: sp.Data(1 << 14), Target: sp.Data(1 << 16),
		R: [4]int8{0, 1, 2, 3}, Block: 8, Work: 2, SeedVal: 7,
	}
	insts := emitN(k, 200)
	checkInstValid(t, insts, "gather")
	// Every target load's address must be Target.Base + 8*feederData.
	var feeder *Inst
	for i := range insts {
		in := &insts[i]
		if in.Op != OpLoad {
			continue
		}
		if in.Addr >= k.Index.Base && in.Addr < k.Index.Base+k.Index.Size {
			feeder = in
			continue
		}
		if feeder == nil {
			t.Fatal("target load before any feeder load")
		}
		want := k.Target.Base + feeder.Data*8
		if in.Addr != want {
			t.Fatalf("gather target addr %#x, want %#x (feeder data %d)", in.Addr, want, feeder.Data)
		}
	}
	// And the value function must agree with the feeder's traced data.
	vr := k.Values()
	if got := vr.Fn(k.Index.Base); got != k.idxVal(0) {
		t.Fatalf("index ValueFn mismatch: %d vs %d", got, k.idxVal(0))
	}
}

func TestIndexedGatherTargetInRegion(t *testing.T) {
	sp := NewAddrSpace()
	k := &IndexedGatherKernel{
		Code: sp.Code(384), Index: sp.Data(1 << 13), Target: sp.Data(1 << 15),
		R: [4]int8{0, 1, 2, 3}, Block: 8, Work: 1, SeedVal: 3,
	}
	for _, in := range emitN(k, 300) {
		if in.Op == OpLoad && in.Addr >= k.Target.Base {
			if in.Addr >= k.Target.Base+k.Target.Size {
				t.Fatalf("gather target out of region: %#x", in.Addr)
			}
		}
	}
}

func TestCrossPairDeltaStable(t *testing.T) {
	sp := NewAddrSpace()
	k := &CrossPairKernel{
		Code: sp.Code(512), Data: sp.Data(64 * PageSize),
		R: [4]int8{0, 1, 2, 3}, Delta: 640, Gap: 4, Work: 2, Block: 4, Seed: 11,
	}
	insts := emitN(k, 300)
	checkInstValid(t, insts, "cross")
	var trigger *Inst
	pairs := 0
	for i := range insts {
		in := &insts[i]
		if in.Op != OpLoad {
			continue
		}
		if trigger == nil {
			trigger = in
			continue
		}
		if in.Addr != trigger.Addr+k.Delta {
			t.Fatalf("cross target at %#x, want trigger %#x + %d", in.Addr, trigger.Addr, k.Delta)
		}
		if PageAddr(in.Addr) != PageAddr(trigger.Addr) {
			t.Fatalf("cross pair spans pages: %#x vs %#x", in.Addr, trigger.Addr)
		}
		pairs++
		trigger = nil
	}
	if pairs < 10 {
		t.Fatalf("too few cross pairs observed: %d", pairs)
	}
}

func TestBTreeDescends(t *testing.T) {
	sp := NewAddrSpace()
	k := &BTreeKernel{Code: sp.Code(512), R: [4]int8{0, 1, 2, 3},
		Block: 2, Work: 2, Seed: 1}
	for _, sz := range []uint64{4096, 1 << 15, 1 << 17} {
		k.Levels = append(k.Levels, sp.Data(sz))
	}
	insts := emitN(k, 200)
	checkInstValid(t, insts, "btree")
	// Loads must visit levels in order.
	lvl := 0
	for _, in := range insts {
		if in.Op != OpLoad {
			continue
		}
		want := k.Levels[lvl]
		if in.Addr < want.Base || in.Addr >= want.Base+want.Size {
			t.Fatalf("btree load %#x outside level %d %+v", in.Addr, lvl, want)
		}
		lvl = (lvl + 1) % len(k.Levels)
	}
}

func TestCodeFootprintSpansManyLines(t *testing.T) {
	sp := NewAddrSpace()
	k := &CodeFootprintKernel{
		Code: sp.Code(128 * 1024), Locals: sp.Data(4096),
		R: [4]int8{0, 1, 2, 3}, Funcs: 40, FuncLen: 96, Succs: 2,
		LoadFrac: 0.2, Seed: 5,
	}
	insts := emitN(k, 4000)
	checkInstValid(t, insts, "code")
	lines := make(map[uint64]bool)
	for _, in := range insts {
		lines[in.PC&^63] = true
	}
	if len(lines) < 50 {
		t.Fatalf("code footprint too small: %d lines", len(lines))
	}
}

func TestStridedHotSerialDependency(t *testing.T) {
	sp := NewAddrSpace()
	k := &StridedHotKernel{Code: sp.Code(256), Data: sp.Data(1 << 16),
		R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 4, Work: 2, Serial: true}
	insts := emitN(k, 50)
	// The address-producing ALU must consume the accumulator register.
	found := false
	for _, in := range insts {
		if in.Op == OpALU && in.Dst == 0 && in.Src2 == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("serial mode did not couple the address chain to the accumulator")
	}
}

func TestHash64Deterministic(t *testing.T) {
	if Hash64(12345) != Hash64(12345) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(1) == Hash64(2) {
		t.Fatal("Hash64 collision on trivially different inputs")
	}
}

func TestKernelsEmitBoundedBatches(t *testing.T) {
	sp := NewAddrSpace()
	rng := NewRNG(3)
	chase := &PointerChaseKernel{Code: sp.Code(256), Data: sp.Data(64 * 64), R: [4]int8{0, 1, 2, 3}, Block: 4, Work: 2}
	chase.InitChase(rng)
	kernels := []Kernel{
		&StreamKernel{Code: sp.Code(256), Data: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 8},
		&WriteStreamKernel{Code: sp.Code(256), Data: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 8},
		chase,
		&HashProbeKernel{Code: sp.Code(256), Data: sp.Data(1 << 14), R: [4]int8{0, 1, 2, 3}, Block: 4, Work: 2, MispredP: 0.1, BranchFrac: 0.5},
		&StencilKernel{Code: sp.Code(256), A: sp.Data(4096), B: sp.Data(4096), C: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Block: 4},
		&GEMMKernel{Code: sp.Code(256), A: sp.Data(4096), B: sp.Data(12288), R: [4]int8{0, 1, 2, 3}, Block: 4},
		&BranchyKernel{Code: sp.Code(256), Data: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Block: 4, MispredP: 0.1},
		&ScratchKernel{Code: sp.Code(256), Data: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Block: 4},
		&DepChainKernel{Code: sp.Code(256), R: [4]int8{0, 1, 2, 3}, Block: 8},
		&ILPKernel{Code: sp.Code(256), R: [4]int8{0, 1, 2, 3}, Block: 8},
		&StridedHotKernel{Code: sp.Code(256), Data: sp.Data(4096), R: [4]int8{0, 1, 2, 3}, Stride: 64, Block: 4, Work: 2},
	}
	for _, k := range kernels {
		e := NewEmitter(NewRNG(9))
		k.Emit(e)
		if len(e.Buf) == 0 {
			t.Fatalf("%T emitted nothing", k)
		}
		if len(e.Buf) > 1000 {
			t.Fatalf("%T emitted unbounded batch: %d", k, len(e.Buf))
		}
		checkInstValid(t, e.Buf, "batch")
	}
}
