package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"catch/internal/stats"
)

// TraceKey identifies one materialized instruction stream. A workload
// generator is a pure function of its (name, seed) pair, so a recorded
// prefix is fully determined by the key — the store never has to
// compare instruction bytes to decide whether a copy is reusable.
type TraceKey struct {
	Name  string
	Seed  uint64
	Insts int64 // recorded stream length (warmup + measured instructions)
}

// StoreStats counts store traffic. Coalesced requests waited on an
// identical in-flight materialization instead of recording their own.
type StoreStats struct {
	Recorded  uint64 `json:"recorded"`
	MemHits   uint64 `json:"memHits"`
	Coalesced uint64 `json:"coalesced"`
	DiskHits  uint64 `json:"diskHits"`
	BadDisk   uint64 `json:"badDisk"` // corrupted on-disk traces replaced by a fresh recording
}

// Store is a content-addressed memo of materialized traces. Each
// (workload, seed, length) key is recorded at most once per process —
// concurrent requests for one key coalesce onto a single recording —
// and every replayer then shares the one in-memory copy. With a
// directory configured, recordings also persist as flat binary files
// so later processes skip the kernel scheduling entirely. The disk
// layer is an optimization: every I/O failure silently degrades to
// recording in memory.
type Store struct {
	dir string

	mu       sync.Mutex
	done     map[TraceKey]*Materialized
	inflight map[TraceKey]*traceFlight

	recorded  stats.AtomicCounter
	memHits   stats.AtomicCounter
	coalesced stats.AtomicCounter
	diskHits  stats.AtomicCounter
	badDisk   stats.AtomicCounter
}

type traceFlight struct {
	ch  chan struct{}
	m   *Materialized
	err error
}

// NewStore builds a trace store. dir may be empty for a memory-only
// store; otherwise it is created on first persist.
func NewStore(dir string) *Store {
	return &Store{
		dir:      dir,
		done:     make(map[TraceKey]*Materialized),
		inflight: make(map[TraceKey]*traceFlight),
	}
}

// Stats snapshots the counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Recorded:  s.recorded.Value(),
		MemHits:   s.memHits.Value(),
		Coalesced: s.coalesced.Value(),
		DiskHits:  s.diskHits.Value(),
		BadDisk:   s.badDisk.Value(),
	}
}

// Materialize returns the recorded first `total` instructions of w,
// recording (or loading from disk) at most once across all concurrent
// callers. The returned Materialized is shared: its instruction slice
// is read-only to every consumer.
func (s *Store) Materialize(w *Workload, total int64) (*Materialized, error) {
	if total <= 0 {
		return nil, fmt.Errorf("trace: materialize length must be positive, got %d", total)
	}
	key := TraceKey{Name: w.WName, Seed: w.Seed, Insts: total}
	s.mu.Lock()
	if m := s.done[key]; m != nil {
		s.mu.Unlock()
		s.memHits.Inc()
		return m, nil
	}
	if f := s.inflight[key]; f != nil {
		s.mu.Unlock()
		s.coalesced.Inc()
		<-f.ch
		return f.m, f.err
	}
	f := &traceFlight{ch: make(chan struct{})}
	s.inflight[key] = f
	s.mu.Unlock()

	m, err := s.materialize(w, key)
	s.mu.Lock()
	delete(s.inflight, key)
	if err == nil {
		s.done[key] = m
	}
	s.mu.Unlock()
	f.m, f.err = m, err
	close(f.ch)
	return m, err
}

// materialize loads key from disk or records it fresh (persisting the
// recording, best-effort, when a directory is configured).
func (s *Store) materialize(w *Workload, key TraceKey) (*Materialized, error) {
	if m, ok := s.loadDisk(w, key); ok {
		s.diskHits.Inc()
		return m, nil
	}
	g := w.NewGen()
	insts := make([]Inst, key.Insts)
	for i := range insts {
		if !g.Next(&insts[i]) {
			return nil, fmt.Errorf("trace: workload %s exhausted after %d of %d instructions",
				key.Name, i, key.Insts)
		}
	}
	s.recorded.Inc()
	s.storeDisk(key, insts)
	return newMaterialized(w, g, insts), nil
}

// Materialized is one recorded instruction stream plus the workload's
// build-time memory-content and prewarm declarations, shared read-only
// by every replayer. The ValueAt source is the generator the stream was
// recorded from (or an identically built fresh one for disk loads):
// ValueRange functions are pure functions of the address and the
// kernel's build-time state, so concurrent reads are safe and replayed
// ValueAt answers are identical to a fresh generator's.
type Materialized struct {
	w       *Workload
	insts   []Inst
	src     ValueSource
	prewarm []Region
}

// newMaterialized captures g's value source and prewarm regions. g must
// be a generator of w that has completed Reset (emission state does not
// matter: values and prewarm regions are fixed at build time).
func newMaterialized(w *Workload, g Generator, insts []Inst) *Materialized {
	m := &Materialized{w: w, insts: insts}
	if vs, ok := g.(ValueSource); ok {
		m.src = vs
	}
	if pw, ok := g.(Prewarmer); ok {
		m.prewarm = pw.PrewarmRegions()
	}
	return m
}

// Name returns the recorded workload's name.
func (m *Materialized) Name() string { return m.w.WName }

// Category returns the recorded workload's category.
func (m *Materialized) Category() string { return m.w.WCategory }

// Seed returns the recorded workload's seed.
func (m *Materialized) Seed() uint64 { return m.w.Seed }

// Len returns the recorded stream length.
func (m *Materialized) Len() int64 { return int64(len(m.insts)) }

// Insts returns the shared recorded stream. Callers must treat it as
// read-only: every replayer and every lock-step batch kernel iterates
// this one slice.
func (m *Materialized) Insts() []Inst { return m.insts }

// NewReplay returns a fresh cursor over the shared stream.
func (m *Materialized) NewReplay() *Replay { return &Replay{m: m} }

// Replay is a zero-allocation Generator over a materialized trace. It
// also implements ValueSource and Prewarmer with the recorded
// workload's exact semantics, so core.CoreSim.SetWorkload treats it
// like the original generator. Unlike workload generators, a replay is
// finite: Next returns false once the recording is exhausted.
type Replay struct {
	m   *Materialized
	pos int
}

// Name returns the recorded workload's name.
func (r *Replay) Name() string { return r.m.w.WName }

// Category returns the recorded workload's category.
func (r *Replay) Category() string { return r.m.w.WCategory }

// Reset rewinds the cursor to the start of the recording.
func (r *Replay) Reset() { r.pos = 0 }

// Pos returns the cursor's absolute stream offset.
func (r *Replay) Pos() int64 { return int64(r.pos) }

// SeekTo positions the cursor at absolute stream offset pos, clamped to
// the recording's bounds. Replays are random-access (the stream is one
// shared slice), so a restored snapshot resumes mid-run for free
// instead of re-stepping the replay to its offset.
func (r *Replay) SeekTo(pos int64) {
	switch {
	case pos < 0:
		r.pos = 0
	case pos > int64(len(r.m.insts)):
		r.pos = len(r.m.insts)
	default:
		r.pos = int(pos)
	}
}

// Next copies out the next recorded instruction.
//
//catch:hotpath
func (r *Replay) Next(i *Inst) bool {
	if r.pos >= len(r.m.insts) {
		return false
	}
	*i = r.m.insts[r.pos]
	r.pos++
	return true
}

// ValueAt reports the program-defined memory value at addr, delegating
// to the recorded workload's value ranges.
func (r *Replay) ValueAt(addr uint64) (uint64, bool) {
	if r.m.src == nil {
		return 0, false
	}
	return r.m.src.ValueAt(addr)
}

// PrewarmRegions returns the recorded workload's steady-state-resident
// regions.
func (r *Replay) PrewarmRegions() []Region { return r.m.prewarm }

// Flat binary encoding: a self-describing header, then one fixed-width
// 32-byte record per instruction, then an FNV-1a checksum over the
// record bytes. Fixed-width records keep encode/decode a straight
// memory walk and make the file size a pure function of the key.
//
//	magic   8B  "CATCHTR1" (format version folded into the magic)
//	seed    8B  little-endian uint64
//	count   8B  little-endian uint64
//	nameLen 2B  little-endian uint16, then nameLen bytes of name
//	records count × 32B (PC, Addr, Data u64; Op, Dst, Src1, Src2 u8;
//	        flags u8 (bit0 Taken, bit1 Mispred); 3B zero pad)
//	check   8B  FNV-1a over the record bytes
const (
	traceMagic  = "CATCHTR1"
	recordBytes = 32
)

// path maps a key to its on-disk file: a content address over the key
// itself, so the filename needs no escaping and collisions would need a
// SHA-256 collision.
//
//catch:keyfn
func (s *Store) path(key TraceKey) (string, bool) {
	if s.dir == "" || len(key.Name) > 1<<16-1 {
		return "", false
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d\x00%d", key.Name, key.Seed, key.Insts)))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+".trace"), true
}

// loadDisk reads a persisted recording. Any mismatch or corruption
// removes the file and reports a miss, so the caller re-records and
// overwrites it with a fresh copy.
func (s *Store) loadDisk(w *Workload, key TraceKey) (*Materialized, bool) {
	p, ok := s.path(key)
	if !ok {
		return nil, false
	}
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	insts, err := decodeTrace(key, raw)
	if err != nil {
		s.badDisk.Inc()
		_ = os.Remove(p) // superseded by the fresh recording below
		return nil, false
	}
	// A fresh generator (built, never stepped) supplies the ValueAt and
	// prewarm state the file cannot carry: both are deterministic
	// functions of the workload's build, not of emission progress.
	return newMaterialized(w, w.NewGen(), insts), true
}

// storeDisk persists a recording via temp-file rename so readers never
// observe a half-written file. Failures are silent: the disk layer is
// an optimization, the in-memory recording is the data.
func (s *Store) storeDisk(key TraceKey, insts []Inst) {
	p, ok := s.path(key)
	if !ok {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, encodeTrace(key, insts), 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of the temp file
	}
}

// encodeTrace renders the recording in the flat binary layout.
func encodeTrace(key TraceKey, insts []Inst) []byte {
	n := len(traceMagic) + 8 + 8 + 2 + len(key.Name) + len(insts)*recordBytes + 8
	buf := make([]byte, 0, n)
	buf = append(buf, traceMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, key.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(insts)))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(key.Name)))
	buf = append(buf, key.Name...)
	recs := len(buf)
	for i := range insts {
		buf = appendInst(buf, &insts[i])
	}
	return binary.LittleEndian.AppendUint64(buf, fnv1a(buf[recs:]))
}

func appendInst(buf []byte, in *Inst) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, in.PC)
	buf = binary.LittleEndian.AppendUint64(buf, in.Addr)
	buf = binary.LittleEndian.AppendUint64(buf, in.Data)
	var flags byte
	if in.Taken {
		flags |= 1
	}
	if in.Mispred {
		flags |= 2
	}
	return append(buf, byte(in.Op), byte(in.Dst), byte(in.Src1), byte(in.Src2), flags, 0, 0, 0)
}

// decodeTrace parses and validates a persisted recording against the
// key it was looked up under.
func decodeTrace(key TraceKey, raw []byte) ([]Inst, error) {
	hdr := len(traceMagic) + 8 + 8 + 2
	if len(raw) < hdr || string(raw[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	off := len(traceMagic)
	seed := binary.LittleEndian.Uint64(raw[off:])
	count := binary.LittleEndian.Uint64(raw[off+8:])
	nameLen := int(binary.LittleEndian.Uint16(raw[off+16:]))
	off += 18
	if len(raw) < off+nameLen {
		return nil, fmt.Errorf("trace: truncated name")
	}
	name := string(raw[off : off+nameLen])
	off += nameLen
	if name != key.Name || seed != key.Seed || count != uint64(key.Insts) {
		return nil, fmt.Errorf("trace: header (%s, %d, %d) does not match key (%s, %d, %d)",
			name, seed, count, key.Name, key.Seed, key.Insts)
	}
	want := off + int(count)*recordBytes + 8
	if len(raw) != want {
		return nil, fmt.Errorf("trace: file is %d bytes, want %d", len(raw), want)
	}
	recs := raw[off : len(raw)-8]
	if fnv1a(recs) != binary.LittleEndian.Uint64(raw[len(raw)-8:]) {
		return nil, fmt.Errorf("trace: checksum mismatch")
	}
	insts := make([]Inst, count)
	for i := range insts {
		decodeInst(&insts[i], recs[i*recordBytes:])
	}
	return insts, nil
}

func decodeInst(in *Inst, rec []byte) {
	in.PC = binary.LittleEndian.Uint64(rec)
	in.Addr = binary.LittleEndian.Uint64(rec[8:])
	in.Data = binary.LittleEndian.Uint64(rec[16:])
	in.Op = Op(rec[24])
	in.Dst, in.Src1, in.Src2 = int8(rec[25]), int8(rec[26]), int8(rec[27])
	in.Taken = rec[28]&1 != 0
	in.Mispred = rec[28]&2 != 0
}

// fnv1a is the 64-bit FNV-1a hash, inlined so decoding needs no
// hash.Hash64 indirection.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
