package trace

// RNG is a small deterministic xorshift64* pseudo-random generator.
// The simulator never uses math/rand or any global randomness so that
// every experiment is reproducible bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit pseudo-random value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("trace: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }
