package trace

// Emitter buffers synthesized instructions. Kernels append to it
// through typed helpers; the workload generator drains the buffer.
//
// Every static emission site passes a stable PC so that PC-indexed
// hardware structures (stride tables, critical-load tables, TACT
// tables) see the same identities across loop iterations.
type Emitter struct {
	Buf []Inst
	RNG *RNG
}

// NewEmitter returns an emitter using the given RNG for synthetic
// branch outcomes.
func NewEmitter(rng *RNG) *Emitter {
	return &Emitter{RNG: rng, Buf: make([]Inst, 0, 4096)}
}

func (e *Emitter) emit(i Inst) { e.Buf = append(e.Buf, i) }

// ALU emits a 1-cycle integer op dst = f(s1, s2).
func (e *Emitter) ALU(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpALU, Dst: dst, Src1: s1, Src2: s2})
}

// IMul emits a 3-cycle integer multiply.
func (e *Emitter) IMul(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpIMul, Dst: dst, Src1: s1, Src2: s2})
}

// IDiv emits an 18-cycle integer divide.
func (e *Emitter) IDiv(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpIDiv, Dst: dst, Src1: s1, Src2: s2})
}

// FAdd emits a 3-cycle floating-point add.
func (e *Emitter) FAdd(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpFAdd, Dst: dst, Src1: s1, Src2: s2})
}

// FMul emits a 4-cycle floating-point multiply.
func (e *Emitter) FMul(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpFMul, Dst: dst, Src1: s1, Src2: s2})
}

// FDiv emits a 20-cycle floating-point divide.
func (e *Emitter) FDiv(pc uint64, dst, s1, s2 int8) {
	e.emit(Inst{PC: pc, Op: OpFDiv, Dst: dst, Src1: s1, Src2: s2})
}

// Load emits a load of data from addr into dst. addrSrc names the
// register whose value the address computation consumed (NoReg if the
// address is loop-invariant or immediate-derived).
func (e *Emitter) Load(pc uint64, dst, addrSrc int8, addr, data uint64) {
	e.emit(Inst{PC: pc, Op: OpLoad, Dst: dst, Src1: addrSrc, Src2: NoReg, Addr: addr, Data: data})
}

// Store emits a store of register val to addr; addrSrc is the address
// dependency (NoReg if none).
func (e *Emitter) Store(pc uint64, val, addrSrc int8, addr uint64) {
	e.emit(Inst{PC: pc, Op: OpStore, Dst: NoReg, Src1: val, Src2: addrSrc, Addr: addr})
}

// Branch emits a conditional branch reading cond, with the given
// outcome and misprediction flag.
func (e *Emitter) Branch(pc uint64, cond int8, taken, mispred bool) {
	e.emit(Inst{PC: pc, Op: OpBranch, Dst: NoReg, Src1: cond, Src2: NoReg, Taken: taken, Mispred: mispred})
}

// Nop emits an instruction with no sources or destination (models
// address-generation filler and immediate moves).
func (e *Emitter) Nop(pc uint64) {
	e.emit(Inst{PC: pc, Op: OpNop, Dst: NoReg, Src1: NoReg, Src2: NoReg})
}

// ChainALU emits n serially dependent ALU ops on reg (a latency chain
// of n cycles rooted at whatever produced reg).
func (e *Emitter) ChainALU(pcBase uint64, reg int8, n int) {
	for k := 0; k < n; k++ {
		e.ALU(pcBase+uint64(k)*4, reg, reg, NoReg)
	}
}

// CodeRegion is a contiguous range of instruction addresses owned by
// one kernel. PC(off) yields the address of the off-th static
// instruction site (4-byte instructions).
type CodeRegion struct {
	Base uint64
	Size uint64
}

// PC returns the address of static site off within the region, wrapping
// at the region size so code footprint is bounded.
func (r CodeRegion) PC(off int) uint64 {
	span := r.Size
	if span == 0 {
		span = 4096
	}
	return r.Base + (uint64(off)*4)%span
}

// Region is a contiguous data address range owned by one kernel.
type Region struct {
	Base uint64
	Size uint64
}

// At returns Base + (off mod Size), 8-byte aligned.
func (r Region) At(off uint64) uint64 {
	return r.Base + (off%r.Size)&^7
}

// Lines returns the number of cache lines spanned by the region.
func (r Region) Lines() uint64 { return r.Size / CacheLineSize }

// AddrSpace hands out non-overlapping data and code regions for the
// kernels of one workload.
type AddrSpace struct {
	nextData uint64
	nextCode uint64
}

// NewAddrSpace returns an allocator rooted at the standard workload
// bases (heap at 4GB, code at 1GB).
func NewAddrSpace() *AddrSpace {
	return &AddrSpace{nextData: 1 << 32, nextCode: 1 << 30}
}

// Data allocates a data region of the given size (rounded up to a
// cache line) with a one-page guard gap.
func (a *AddrSpace) Data(size uint64) Region {
	if size < CacheLineSize {
		size = CacheLineSize
	}
	size = (size + CacheLineSize - 1) &^ uint64(CacheLineSize-1)
	r := Region{Base: a.nextData, Size: size}
	a.nextData += size + PageSize
	return r
}

// Code allocates a code region of the given byte size (rounded up to a
// cache line).
func (a *AddrSpace) Code(size uint64) CodeRegion {
	if size < CacheLineSize {
		size = CacheLineSize
	}
	size = (size + CacheLineSize - 1) &^ uint64(CacheLineSize-1)
	r := CodeRegion{Base: a.nextCode, Size: size}
	a.nextCode += size + PageSize
	return r
}
