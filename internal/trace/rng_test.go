package trace

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seeded RNGs diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		n := 1 + i%97
		v := r.Intn(n)
		if v < 0 || v >= n {
			t.Fatalf("Intn(%d) = %d out of range", n, v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Property(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %.3f, want ≈0.25", frac)
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(13)
	var buckets [16]int
	n := 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()&15]++
	}
	for i, c := range buckets {
		if c < n/16-n/80 || c > n/16+n/80 {
			t.Fatalf("bucket %d count %d deviates >5%% from uniform", i, c)
		}
	}
}
