// Black-box tests (package trace_test) so the replay-equivalence suite
// can iterate the real workload registry, which itself imports trace.
package trace_test

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"catch/internal/trace"
	"catch/internal/workloads"
)

// TestReplayMatchesFreshGen proves the memoization contract for every
// registered workload: a replayed generator yields the exact Inst
// sequence, ValueAt answers and PrewarmRegions of a fresh workloadGen.
func TestReplayMatchesFreshGen(t *testing.T) {
	const n = 2_000
	store := trace.NewStore("")
	for _, w := range workloads.All() {
		w := w
		t.Run(w.WName, func(t *testing.T) {
			m, err := store.Materialize(&w, n)
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != w.WName || m.Category() != w.WCategory {
				t.Fatalf("materialized identity = (%s, %s), want (%s, %s)",
					m.Name(), m.Category(), w.WName, w.WCategory)
			}
			fresh := w.NewGen()
			r := m.NewReplay()
			var want, got trace.Inst
			for i := 0; i < n; i++ {
				if !fresh.Next(&want) || !r.Next(&got) {
					t.Fatalf("stream ended at %d", i)
				}
				if want != got {
					t.Fatalf("inst %d: replay %+v, fresh %+v", i, got, want)
				}
				// Probe ValueAt with the addresses the workload actually
				// touches (plus a shifted miss probe): replay and fresh
				// generator must agree on both the value and coverage.
				if want.IsMem() {
					for _, a := range [...]uint64{want.Addr, want.Addr + 1<<40} {
						wv, wok := fresh.(trace.ValueSource).ValueAt(a)
						gv, gok := r.ValueAt(a)
						if wv != gv || wok != gok {
							t.Fatalf("ValueAt(%#x): replay (%d, %v), fresh (%d, %v)", a, gv, gok, wv, wok)
						}
					}
				}
			}
			wantPW := fresh.(trace.Prewarmer).PrewarmRegions()
			if gotPW := r.PrewarmRegions(); !reflect.DeepEqual(gotPW, wantPW) {
				t.Fatalf("PrewarmRegions: replay %v, fresh %v", gotPW, wantPW)
			}
		})
	}
}

// TestReplayExhaustionAndReset pins the one deliberate divergence from
// workload generators: a replay is finite.
func TestReplayExhaustionAndReset(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	m, err := trace.NewStore("").Materialize(&w, 100)
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewReplay()
	var in trace.Inst
	for i := 0; i < 100; i++ {
		if !r.Next(&in) {
			t.Fatalf("exhausted at %d, want 100", i)
		}
	}
	if r.Next(&in) {
		t.Fatal("Next returned true past the recording's end")
	}
	r.Reset()
	var first trace.Inst
	if !r.Next(&first) {
		t.Fatal("Next after Reset returned false")
	}
	if first != m.Insts()[0] {
		t.Fatalf("Reset did not rewind: got %+v, want %+v", first, m.Insts()[0])
	}
}

// TestReplayNextAllocs is the steady-state zero-allocation guard for
// the replay hot path (the static counterpart is the catchlint
// hotpath-noalloc check on the //catch:hotpath annotation).
func TestReplayNextAllocs(t *testing.T) {
	w, _ := workloads.ByName("hmmer")
	m, err := trace.NewStore("").Materialize(&w, 4_096)
	if err != nil {
		t.Fatal(err)
	}
	r := m.NewReplay()
	var in trace.Inst
	allocs := testing.AllocsPerRun(10_000, func() {
		if !r.Next(&in) {
			r.Reset()
		}
	})
	if allocs != 0 {
		t.Fatalf("replay Next allocates %.1f times per call, want 0", allocs)
	}
}

// TestStoreCoalescing proves concurrent requests for one key share a
// single recording and a single in-memory copy.
func TestStoreCoalescing(t *testing.T) {
	store := trace.NewStore("")
	w, _ := workloads.ByName("mcf")
	const callers = 8
	ms := make([]*trace.Materialized, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for k := 0; k < callers; k++ {
		go func(k int) {
			defer wg.Done()
			m, err := store.Materialize(&w, 1_000)
			if err != nil {
				t.Error(err)
				return
			}
			ms[k] = m
		}(k)
	}
	wg.Wait()
	for k := 1; k < callers; k++ {
		if ms[k] != ms[0] {
			t.Fatalf("caller %d got a different Materialized copy", k)
		}
	}
	if st := store.Stats(); st.Recorded != 1 {
		t.Fatalf("recorded %d traces for one key, want 1 (stats %+v)", st.Recorded, st)
	}
}

// TestStoreDiskRoundtrip proves a persisted recording is decoded
// byte-identically by a later store over the same directory.
func TestStoreDiskRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, _ := workloads.ByName("xalancbmk")
	first, err := trace.NewStore(dir).Materialize(&w, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	second := trace.NewStore(dir)
	m, err := second.Materialize(&w, 1_500)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.DiskHits != 1 || st.Recorded != 0 {
		t.Fatalf("second store stats %+v, want exactly one disk hit and no recording", st)
	}
	if !reflect.DeepEqual(m.Insts(), first.Insts()) {
		t.Fatal("disk-loaded instructions differ from the recording")
	}
	// The disk path rebuilds the value source from a fresh Build; it
	// must answer exactly as the recording generation's.
	for _, in := range m.Insts() {
		if !in.IsMem() {
			continue
		}
		fv, fok := first.NewReplay().ValueAt(in.Addr)
		sv, sok := m.NewReplay().ValueAt(in.Addr)
		if fv != sv || fok != sok {
			t.Fatalf("ValueAt(%#x): disk (%d, %v), recorded (%d, %v)", in.Addr, sv, sok, fv, fok)
		}
	}
}

// TestStoreCorruptDisk proves a damaged file is detected, replaced by a
// fresh recording, and that the replacement is loadable again.
func TestStoreCorruptDisk(t *testing.T) {
	dir := t.TempDir()
	w, _ := workloads.ByName("mcf")
	first, err := trace.NewStore(dir).Materialize(&w, 800)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.trace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("trace files = %v (err %v), want exactly one", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	second := trace.NewStore(dir)
	m, err := second.Materialize(&w, 800)
	if err != nil {
		t.Fatal(err)
	}
	if st := second.Stats(); st.BadDisk != 1 || st.Recorded != 1 {
		t.Fatalf("stats after corruption %+v, want one bad entry and one fresh recording", st)
	}
	if !reflect.DeepEqual(m.Insts(), first.Insts()) {
		t.Fatal("re-recorded instructions differ from the original")
	}
	third := trace.NewStore(dir)
	if _, err := third.Materialize(&w, 800); err != nil {
		t.Fatal(err)
	}
	if st := third.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats after rewrite %+v, want the replacement to load from disk", st)
	}
}

// TestMaterializeRejectsBadLength covers the argument guard.
func TestMaterializeRejectsBadLength(t *testing.T) {
	w, _ := workloads.ByName("mcf")
	if _, err := trace.NewStore("").Materialize(&w, 0); err == nil {
		t.Fatal("Materialize(0) succeeded, want error")
	}
}
