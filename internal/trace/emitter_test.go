package trace

import (
	"testing"
	"testing/quick"
)

func TestEmitterOps(t *testing.T) {
	e := NewEmitter(NewRNG(1))
	e.ALU(100, 1, 2, 3)
	e.IMul(104, 1, 2, NoReg)
	e.IDiv(108, 1, 2, NoReg)
	e.FAdd(112, 1, 2, 3)
	e.FMul(116, 1, 2, 3)
	e.FDiv(120, 1, 2, 3)
	e.Load(124, 4, 5, 0xABC0, 77)
	e.Store(128, 4, 5, 0xDEF0)
	e.Branch(132, 4, true, false)
	e.Nop(136)

	wantOps := []Op{OpALU, OpIMul, OpIDiv, OpFAdd, OpFMul, OpFDiv, OpLoad, OpStore, OpBranch, OpNop}
	if len(e.Buf) != len(wantOps) {
		t.Fatalf("emitted %d instructions, want %d", len(e.Buf), len(wantOps))
	}
	for i, op := range wantOps {
		if e.Buf[i].Op != op {
			t.Errorf("inst %d: op = %v, want %v", i, e.Buf[i].Op, op)
		}
	}
	ld := e.Buf[6]
	if ld.Addr != 0xABC0 || ld.Data != 77 || ld.Dst != 4 || ld.Src1 != 5 {
		t.Errorf("load fields wrong: %+v", ld)
	}
	br := e.Buf[8]
	if !br.Taken || br.Mispred {
		t.Errorf("branch flags wrong: %+v", br)
	}
}

func TestChainALU(t *testing.T) {
	e := NewEmitter(NewRNG(1))
	e.ChainALU(0x1000, 3, 5)
	if len(e.Buf) != 5 {
		t.Fatalf("ChainALU emitted %d, want 5", len(e.Buf))
	}
	for i, in := range e.Buf {
		if in.Dst != 3 || in.Src1 != 3 {
			t.Errorf("chain link %d not self-dependent: %+v", i, in)
		}
		if in.PC != 0x1000+uint64(i)*4 {
			t.Errorf("chain link %d PC = %#x", i, in.PC)
		}
	}
}

func TestCodeRegionPCWraps(t *testing.T) {
	r := CodeRegion{Base: 0x4000, Size: 64}
	if r.PC(0) != 0x4000 {
		t.Errorf("PC(0) = %#x", r.PC(0))
	}
	if r.PC(16) != 0x4000 {
		t.Errorf("PC(16) should wrap to base, got %#x", r.PC(16))
	}
	if r.PC(3) != 0x400C {
		t.Errorf("PC(3) = %#x", r.PC(3))
	}
}

func TestRegionAt(t *testing.T) {
	r := Region{Base: 0x10000, Size: 256}
	if a := r.At(0); a != 0x10000 {
		t.Errorf("At(0) = %#x", a)
	}
	if a := r.At(256); a != 0x10000 {
		t.Errorf("At wraps: got %#x", a)
	}
	if a := r.At(13); a != 0x10008 {
		t.Errorf("At(13) should align to 8: got %#x", a)
	}
}

func TestRegionAtProperty(t *testing.T) {
	f := func(base, size, off uint64) bool {
		size = size%(1<<20) + 64
		base = base % (1 << 40)
		r := Region{Base: base &^ 63, Size: size &^ 63}
		if r.Size == 0 {
			r.Size = 64
		}
		a := r.At(off)
		return a >= r.Base && a < r.Base+r.Size && a%8 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrSpaceNonOverlapping(t *testing.T) {
	sp := NewAddrSpace()
	var regs []Region
	for i := 0; i < 50; i++ {
		regs = append(regs, sp.Data(uint64(i*1000+64)))
	}
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			a, b := regs[i], regs[j]
			if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
				t.Fatalf("regions %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}

func TestAddrSpaceCodeDataDisjoint(t *testing.T) {
	sp := NewAddrSpace()
	c := sp.Code(1 << 20)
	d := sp.Data(1 << 20)
	if c.Base+c.Size > d.Base && d.Base+d.Size > c.Base {
		t.Fatalf("code %+v overlaps data %+v", c, d)
	}
}

func TestLineAndPageAddr(t *testing.T) {
	if LineAddr(0x12345) != 0x12340 {
		t.Errorf("LineAddr: %#x", LineAddr(0x12345))
	}
	if PageAddr(0x12345) != 0x12000 {
		t.Errorf("PageAddr: %#x", PageAddr(0x12345))
	}
}

func TestLineAddrProperty(t *testing.T) {
	f := func(a uint64) bool {
		l := LineAddr(a)
		return l%CacheLineSize == 0 && l <= a && a-l < CacheLineSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
