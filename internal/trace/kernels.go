package trace

// A Kernel emits one bounded unit of work (roughly 30-300 dynamic
// instructions) per call. Workloads are weighted mixes of kernels, each
// owning disjoint code/data regions and architectural registers so the
// interleaved streams do not create accidental dependencies.
type Kernel interface {
	Emit(e *Emitter)
}

// ValueFn computes the program-defined memory value at an address.
// Kernels with data-dependent access patterns expose one so that the
// TACT-Feeder model can observe the data a prefetch would return,
// exactly as the hardware would.
type ValueFn func(addr uint64) uint64

// ValueRange binds a ValueFn to the address range it covers.
type ValueRange struct {
	Base, Size uint64
	Fn         ValueFn
}

// Hash64 is a splitmix64-style pure hash used to derive deterministic
// pseudo-random memory contents and access sequences.
func Hash64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// StreamKernel: sequential reduction over an array. Loads are trivially
// stride-prefetchable and feed only a short accumulation, so they are
// rarely critical. Models the streaming phases of FSPEC/HPC codes.
type StreamKernel struct {
	Code   CodeRegion
	Data   Region
	R      [4]int8
	Stride uint64 // bytes between consecutive elements
	Block  int    // iterations per Emit
	FP     bool   // accumulate in FP (adds latency to the non-critical chain)

	pos uint64
}

// Emit appends one block of the stream loop.
func (k *StreamKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		addr := k.Data.At(k.pos)
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg) // index update
		e.Load(k.Code.PC(1), r[1], r[0], addr, Hash64(addr))
		if k.FP {
			e.FAdd(k.Code.PC(2), r[2], r[2], r[1])
		} else {
			e.ALU(k.Code.PC(2), r[2], r[2], r[1])
		}
		k.pos += k.Stride
	}
	e.Branch(k.Code.PC(3), r[0], true, false) // well-predicted loop branch
}

// ---------------------------------------------------------------------------
// WriteStreamKernel: streaming stores (memset/copy style). Generates
// write-back traffic; never critical.
type WriteStreamKernel struct {
	Code   CodeRegion
	Data   Region
	R      [4]int8
	Stride uint64
	Block  int

	pos uint64
}

// Emit appends one block of streaming stores.
func (k *WriteStreamKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		addr := k.Data.At(k.pos)
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		e.Store(k.Code.PC(1), r[1], r[0], addr)
		k.pos += k.Stride
	}
	e.Branch(k.Code.PC(2), r[0], true, false)
}

// ---------------------------------------------------------------------------
// PointerChaseKernel: serial traversal of a randomly permuted linked
// list. Every load's address is the previous load's data, so latency is
// fully exposed: these loads dominate the critical path. The pattern
// has no self-stride and the trigger is the target itself, so no TACT
// prefetcher can cover it (models the paper's namd/gromacs-like
// workloads with prefetch-resistant critical PCs).
type PointerChaseKernel struct {
	Code  CodeRegion
	Data  Region
	R     [4]int8
	Block int   // pointer hops per Emit
	Work  int   // dependent ALU ops per hop
	perm  []u32 // next-node permutation
	cur   uint64
}

type u32 = uint32

// InitChase builds the traversal permutation (a single cycle over all
// nodes derived from the kernel's RNG).
func (k *PointerChaseKernel) InitChase(rng *RNG) {
	n := int(k.Data.Lines())
	if n < 2 {
		n = 2
	}
	k.perm = make([]u32, n)
	order := make([]u32, n)
	for i := range order {
		order[i] = u32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	// Link the shuffled order into one cycle: order[i] -> order[i+1].
	for i := 0; i < n; i++ {
		k.perm[order[i]] = order[(i+1)%n]
	}
	k.cur = uint64(order[0])
}

// NodeAddr returns the address of node i.
func (k *PointerChaseKernel) NodeAddr(i uint64) uint64 {
	return k.Data.Base + (i%uint64(len(k.perm)))*CacheLineSize
}

// Values returns the kernel's memory-content function (each node holds
// the address of its successor).
func (k *PointerChaseKernel) Values() ValueRange {
	return ValueRange{Base: k.Data.Base, Size: k.Data.Size, Fn: func(addr uint64) uint64 {
		i := (addr - k.Data.Base) / CacheLineSize
		if int(i) >= len(k.perm) {
			return 0
		}
		return k.NodeAddr(uint64(k.perm[i]))
	}}
}

// Emit appends Block dependent pointer hops.
func (k *PointerChaseKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		addr := k.NodeAddr(k.cur)
		next := uint64(k.perm[k.cur%uint64(len(k.perm))])
		e.Load(k.Code.PC(0), r[1], r[1], addr, k.NodeAddr(next))
		for w := 0; w < k.Work; w++ {
			e.ALU(k.Code.PC(1+w), r[2], r[2], r[1])
		}
		k.cur = next
	}
	e.Branch(k.Code.PC(20), r[2], true, false)
}

// ---------------------------------------------------------------------------
// IndexedGatherKernel: a[idx[i]] gather. The index array is read with a
// perfect stride (the feeder), the gather target is irregular but its
// address is a linear function of the feeder's data
// (addr = base + 8*data), so TACT-Feeder can cover it while plain
// stride prefetching cannot. Models mcf-like behaviour.
type IndexedGatherKernel struct {
	Code     CodeRegion
	Index    Region // sequential index array, 8B entries
	Target   Region // gathered data
	R        [4]int8
	Block    int
	Work     int     // dependent ALU ops after the gather
	MispredP float64 // gathered value conditions a hard-to-predict branch
	SeedVal  uint64

	pos uint64
}

// idxVal is the content of index entry i: a line-spread target offset
// pre-scaled so that target address = Target.Base + 8*idxVal.
func (k *IndexedGatherKernel) idxVal(i uint64) uint64 {
	lines := k.Target.Lines()
	if lines == 0 {
		lines = 1
	}
	return (Hash64(k.SeedVal+i) % lines) * (CacheLineSize / 8)
}

// Values exposes the index array contents to the feeder model.
func (k *IndexedGatherKernel) Values() ValueRange {
	return ValueRange{Base: k.Index.Base, Size: k.Index.Size, Fn: func(addr uint64) uint64 {
		return k.idxVal((addr - k.Index.Base) / 8)
	}}
}

// Emit appends one block of gather iterations.
func (k *IndexedGatherKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		iAddr := k.Index.Base + (k.pos*8)%k.Index.Size
		idx := k.idxVal((iAddr - k.Index.Base) / 8)
		tAddr := k.Target.Base + idx*8
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)                 // i++
		e.Load(k.Code.PC(1), r[1], r[0], iAddr, idx)           // feeder
		e.Load(k.Code.PC(2), r[2], r[1], tAddr, Hash64(tAddr)) // target
		for w := 0; w < k.Work; w++ {
			e.ALU(k.Code.PC(3+w), r[3], r[3], r[2])
		}
		if k.MispredP > 0 {
			// Gathered data steers control flow (mcf-style): a
			// misprediction stalls the front end until the gather
			// resolves, putting its full latency on the critical path.
			e.Branch(k.Code.PC(30), r[2], e.RNG.Bool(0.5), e.RNG.Bool(k.MispredP))
		}
		k.pos++
	}
	e.Branch(k.Code.PC(31), r[0], true, false)
}

// ---------------------------------------------------------------------------
// CrossPairKernel: visits 4KB pages in a pseudo-random order; each
// visit reads a header field (trigger) and, after some independent
// work, a payload field at a fixed intra-page delta (target) that feeds
// a dependent chain. Neither load has a usable self-stride, but the
// target's address is trigger+delta: exactly the TACT-Cross pattern.
type CrossPairKernel struct {
	Code  CodeRegion
	Data  Region
	R     [4]int8
	Delta uint64 // intra-page offset between trigger and target
	Gap   int    // independent ops between trigger and target
	Work  int    // dependent ops after the target
	Block int
	Seed  uint64

	t uint64
}

// Emit appends Block page visits. The intra-page offset of the trigger
// varies per visit (so neither load has a usable stride and the touched
// working set spans the whole region), while the trigger→target delta
// stays fixed.
func (k *CrossPairKernel) Emit(e *Emitter) {
	r := k.R
	pages := k.Data.Size / PageSize
	if pages == 0 {
		pages = 1
	}
	span := (PageSize - k.Delta - 64) &^ 63
	if span == 0 || span > PageSize {
		span = 64
	}
	for b := 0; b < k.Block; b++ {
		h := Hash64(k.Seed + k.t)
		base := k.Data.Base + (h%pages)*PageSize + (h>>32)%span&^63
		// The trigger's address is produced by an independent op each
		// visit, so the OOO can issue the trigger early and hide much
		// of its latency; only the dependent target is truly critical.
		e.ALU(k.Code.PC(0), r[0], NoReg, NoReg)
		e.Load(k.Code.PC(2), r[1], r[0], base, Hash64(base)) // trigger
		for g := 0; g < k.Gap; g++ {
			e.ALU(k.Code.PC(3+g), r[2], r[2], NoReg) // independent filler
		}
		tgt := base + k.Delta
		e.Load(k.Code.PC(40), r[3], r[1], tgt, Hash64(tgt)) // target
		for w := 0; w < k.Work; w++ {
			e.ALU(k.Code.PC(41+w), r[3], r[3], NoReg)
		}
		// The consumed value conditions a branch: mispredictions expose
		// the target load's latency on the critical path.
		e.Branch(k.Code.PC(60), r[3], e.RNG.Bool(0.5), e.RNG.Bool(0.06))
		k.t++
	}
}

// ---------------------------------------------------------------------------
// HashProbeKernel: computes a hash of a counter and probes a table; the
// probed value conditions a poorly predicted branch and a dependent
// chain. The access pattern is unpredictable by any prefetcher; with an
// LLC-resident table this stresses memory-level criticality.
type HashProbeKernel struct {
	Code       CodeRegion
	Data       Region
	R          [4]int8
	Block      int
	Work       int
	MispredP   float64 // probability the dependent branch mispredicts
	BranchFrac float64 // fraction of probes followed by the branch
	Seed       uint64

	t uint64
}

// Emit appends Block probes.
func (k *HashProbeKernel) Emit(e *Emitter) {
	r := k.R
	lines := k.Data.Lines()
	if lines == 0 {
		lines = 1
	}
	for b := 0; b < k.Block; b++ {
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		e.IMul(k.Code.PC(1), r[1], r[0], NoReg)
		e.ALU(k.Code.PC(2), r[1], r[1], NoReg)
		addr := k.Data.Base + (Hash64(k.Seed+k.t)%lines)*CacheLineSize
		e.Load(k.Code.PC(3), r[2], r[1], addr, Hash64(addr))
		// Per-probe dependent work (chain restarts each probe, so only
		// mispredicted branches expose the probe latency).
		e.ALU(k.Code.PC(4), r[3], r[2], NoReg)
		for w := 1; w < k.Work; w++ {
			e.ALU(k.Code.PC(4+w), r[3], r[3], NoReg)
		}
		if e.RNG.Bool(k.BranchFrac) {
			e.Branch(k.Code.PC(20), r[2], e.RNG.Bool(0.5), e.RNG.Bool(k.MispredP))
		}
		k.t++
	}
}

// ---------------------------------------------------------------------------
// StencilKernel: multi-stream relaxation (a[i-1], a[i], a[i+1], b[i] ->
// c[i]) with an FP pipeline. All streams are stride-prefetchable; the
// FP chain is mostly ROB-absorbed. Models HPC stencil/CFD codes.
type StencilKernel struct {
	Code    CodeRegion
	A, B, C Region
	R       [4]int8
	Block   int

	i uint64
}

// Emit appends Block stencil points.
func (k *StencilKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		off := k.i * 8
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		e.Load(k.Code.PC(1), r[1], r[0], k.A.At(off), Hash64(off))
		e.Load(k.Code.PC(2), r[2], r[0], k.A.At(off+8), Hash64(off+8))
		e.FAdd(k.Code.PC(3), r[1], r[1], r[2])
		e.Load(k.Code.PC(4), r[2], r[0], k.A.At(off+16), Hash64(off+16))
		e.FAdd(k.Code.PC(5), r[1], r[1], r[2])
		e.Load(k.Code.PC(6), r[2], r[0], k.B.At(off), Hash64(off+3))
		e.FMul(k.Code.PC(7), r[1], r[1], r[2])
		e.Store(k.Code.PC(8), r[1], r[0], k.C.At(off))
		k.i++
	}
	e.Branch(k.Code.PC(9), r[0], true, false)
}

// ---------------------------------------------------------------------------
// GEMMKernel: blocked matrix-multiply inner loops over an L1-resident
// tile. Compute-bound with high ILP; cache latency barely matters.
type GEMMKernel struct {
	Code  CodeRegion
	A, B  Region
	R     [4]int8
	Block int

	i uint64
}

// Emit appends Block FMA groups.
func (k *GEMMKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		off := (k.i * 8) % k.A.Size
		e.Load(k.Code.PC(0), r[0], NoReg, k.A.At(off), Hash64(off))
		e.Load(k.Code.PC(1), r[1], NoReg, k.B.At(off*3), Hash64(off*3))
		e.FMul(k.Code.PC(2), r[2], r[0], r[1])
		e.FAdd(k.Code.PC(3), r[3], r[3], r[2])
		// A second independent accumulation exposes ILP.
		e.Load(k.Code.PC(4), r[0], NoReg, k.A.At(off+8), Hash64(off+8))
		e.Load(k.Code.PC(5), r[1], NoReg, k.B.At(off*3+8), Hash64(off*3+8))
		e.FMul(k.Code.PC(6), r[2], r[0], r[1])
		e.FAdd(k.Code.PC(7), r[3], r[3], r[2])
		k.i++
	}
	e.Branch(k.Code.PC(8), r[3], true, false)
}

// ---------------------------------------------------------------------------
// BTreeKernel: dependent descent through tree levels with growing
// working sets (root levels cache-resident, leaves spilling outward).
// Each node's data encodes the child's address (no self-stride, so only
// criticality-aware scheduling — not prefetching — can help).
type BTreeKernel struct {
	Code   CodeRegion
	Levels []Region // level working sets, root first
	R      [4]int8
	Block  int
	Work   int
	Seed   uint64

	t uint64
}

// childAddr derives the node visited at the given level for lookup t.
func (k *BTreeKernel) childAddr(level int, t uint64) uint64 {
	reg := k.Levels[level]
	lines := reg.Lines()
	if lines == 0 {
		lines = 1
	}
	return reg.Base + (Hash64(k.Seed^(uint64(level)<<32)^t)%lines)*CacheLineSize
}

// Values exposes node contents: each node stores the address of the
// next level's node for the current lookup sequence. (The hardware only
// ever observes these through demand loads.)
func (k *BTreeKernel) Values() ValueRange {
	if len(k.Levels) == 0 {
		return ValueRange{}
	}
	first := k.Levels[0]
	last := k.Levels[len(k.Levels)-1]
	return ValueRange{Base: first.Base, Size: last.Base + last.Size - first.Base, Fn: Hash64}
}

// Emit appends Block root-to-leaf lookups.
func (k *BTreeKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		for lvl := range k.Levels {
			addr := k.childAddr(lvl, k.t)
			src := r[1]
			if lvl == 0 {
				src = r[0]
			}
			e.Load(k.Code.PC(1+lvl), r[1], src, addr, Hash64(addr))
		}
		for w := 0; w < k.Work; w++ {
			e.ALU(k.Code.PC(10+w), r[2], r[2], r[1])
		}
		e.Branch(k.Code.PC(30), r[1], e.RNG.Bool(0.5), e.RNG.Bool(0.04))
		k.t++
	}
}

// ---------------------------------------------------------------------------
// CodeFootprintKernel: walks a Markov chain over many synthetic
// "functions", each owning its own slice of a large code region.
// Exercises the front end: code misses stall fetch; the TACT code
// run-ahead prefetcher learns line successors. Models server codes.
type CodeFootprintKernel struct {
	Code     CodeRegion // total code footprint
	Locals   Region     // small, L1-resident data
	R        [4]int8
	Funcs    int // number of synthetic functions
	FuncLen  int // dynamic instructions per function body
	Succs    int // successor fan-out of the call graph
	LoadFrac float64
	Seed     uint64

	cur uint64
}

// funcBase returns the starting site offset of function f.
func (k *CodeFootprintKernel) funcBase(f uint64) int {
	span := int(k.Code.Size) / 4 // total static sites
	per := span / k.Funcs
	if per < 4 {
		per = 4
	}
	return int(f) * per
}

// Emit appends one function body and advances to a successor.
func (k *CodeFootprintKernel) Emit(e *Emitter) {
	r := k.R
	base := k.funcBase(k.cur)
	for j := 0; j < k.FuncLen; j++ {
		pc := k.Code.PC(base + j)
		switch {
		case e.RNG.Bool(k.LoadFrac):
			addr := k.Locals.At(uint64(e.RNG.Intn(int(k.Locals.Size))))
			e.Load(pc, r[1], r[0], addr, Hash64(addr))
		case e.RNG.Bool(0.15):
			e.Branch(pc, r[1], e.RNG.Bool(0.6), e.RNG.Bool(0.02))
		default:
			e.ALU(pc, r[2], r[2], r[1])
		}
	}
	// Choose a successor function (learnable, small fan-out).
	s := Hash64(k.Seed+k.cur*uint64(k.Succs)+uint64(e.RNG.Intn(k.Succs))) % uint64(k.Funcs)
	e.Branch(k.Code.PC(base+k.FuncLen), r[2], true, e.RNG.Bool(0.01))
	k.cur = s
}

// ---------------------------------------------------------------------------
// BranchyKernel: data-dependent control flow. Loads feed branch
// conditions, so mispredictions put the loads on the critical path
// (E-D edges in the DDG).
type BranchyKernel struct {
	Code     CodeRegion
	Data     Region
	R        [4]int8
	Block    int
	MispredP float64
	Seed     uint64

	t uint64
}

// Emit appends Block condition evaluations.
func (k *BranchyKernel) Emit(e *Emitter) {
	r := k.R
	lines := k.Data.Lines()
	if lines == 0 {
		lines = 1
	}
	for b := 0; b < k.Block; b++ {
		addr := k.Data.Base + (Hash64(k.Seed+k.t)%lines)*CacheLineSize
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		e.Load(k.Code.PC(1), r[1], r[0], addr, Hash64(addr))
		e.ALU(k.Code.PC(2), r[2], r[1], NoReg)
		e.Branch(k.Code.PC(3), r[2], e.RNG.Bool(0.5), e.RNG.Bool(k.MispredP))
		e.ALU(k.Code.PC(4), r[3], r[3], NoReg)
		k.t++
	}
}

// ---------------------------------------------------------------------------
// ScratchKernel: short-lived store-then-load reuse on an L1-resident
// scratch area (spill/fill behaviour; exercises store→load memory
// dependencies).
type ScratchKernel struct {
	Code  CodeRegion
	Data  Region
	R     [4]int8
	Block int

	t uint64
}

// Emit appends Block spill/fill pairs.
func (k *ScratchKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		addr := k.Data.At(k.t * 8)
		e.ALU(k.Code.PC(0), r[1], r[1], NoReg)
		e.Store(k.Code.PC(1), r[1], r[0], addr)
		e.ALU(k.Code.PC(2), r[2], r[2], NoReg)
		e.Load(k.Code.PC(3), r[3], r[0], addr, Hash64(addr))
		e.ALU(k.Code.PC(4), r[2], r[2], r[3])
		k.t++
	}
	e.Branch(k.Code.PC(5), r[2], true, false)
}

// ---------------------------------------------------------------------------
// DepChainKernel: a pure serial ALU/FP dependency chain (compute-bound,
// latency-limited, insensitive to the cache hierarchy).
type DepChainKernel struct {
	Code  CodeRegion
	R     [4]int8
	Block int
	FP    bool
}

// Emit appends Block chain links.
func (k *DepChainKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		if k.FP {
			e.FMul(k.Code.PC(0), r[0], r[0], NoReg)
			e.FAdd(k.Code.PC(1), r[0], r[0], NoReg)
		} else {
			e.IMul(k.Code.PC(0), r[0], r[0], NoReg)
			e.ALU(k.Code.PC(1), r[0], r[0], NoReg)
		}
	}
	e.Branch(k.Code.PC(2), r[0], true, false)
}

// ---------------------------------------------------------------------------
// ILPKernel: wide independent ALU work (front-end/width bound).
type ILPKernel struct {
	Code  CodeRegion
	R     [4]int8
	Block int
}

// Emit appends Block groups of four independent ops.
func (k *ILPKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		e.ALU(k.Code.PC(1), r[1], r[1], NoReg)
		e.ALU(k.Code.PC(2), r[2], r[2], NoReg)
		e.ALU(k.Code.PC(3), r[3], r[3], NoReg)
	}
	e.Branch(k.Code.PC(4), r[0], true, false)
}

// ---------------------------------------------------------------------------
// StridedHotKernel: a tight loop re-walking a mid-size working set with
// a constant stride. With the set sized between L1 and L2 the loads hit
// L2 every iteration; the short loop body makes distance-1 prefetching
// untimely, which is precisely the TACT-Deep-Self case.
type StridedHotKernel struct {
	Code   CodeRegion
	Data   Region
	R      [4]int8
	Stride uint64
	Block  int
	Work   int // dependent work per load (keeps the loop short but critical)
	// Serial makes the next address computation consume the carried
	// accumulator, so iterations cannot run ahead of the loads: the
	// load latency is fully exposed on the critical path (the regime
	// where prefetch *distance*, not just stride detection, decides
	// performance).
	Serial bool

	pos uint64
}

// Emit appends Block strided iterations.
func (k *StridedHotKernel) Emit(e *Emitter) {
	r := k.R
	for b := 0; b < k.Block; b++ {
		addr := k.Data.At(k.pos)
		if k.Serial {
			e.ALU(k.Code.PC(0), r[0], r[0], r[2])
		} else {
			e.ALU(k.Code.PC(0), r[0], r[0], NoReg)
		}
		e.Load(k.Code.PC(1), r[1], r[0], addr, Hash64(addr))
		for w := 0; w < k.Work; w++ {
			e.ALU(k.Code.PC(2+w), r[2], r[2], r[1])
		}
		k.pos += k.Stride
	}
	e.Branch(k.Code.PC(10), r[2], true, false)
}
