// Package config defines the named system configurations evaluated in
// the paper: the Skylake-like large-L2/exclusive-LLC baseline, the
// small-L2/inclusive-LLC baseline, the two-level (noL2) variants at
// iso-capacity and iso-area, and the CATCH-enabled versions of each.
package config

import (
	"catch/internal/cache"
	"catch/internal/cpu"
	"catch/internal/criticality"
	"catch/internal/memory"
	"catch/internal/tact"
)

// KB and MB are size helpers.
const (
	KB = 1024
	MB = 1024 * KB
)

// ConvertSpec is the Fig 4 oracle latency-conversion experiment: hits
// at level From are served at ToLat instead of their natural latency
// (state transitions are unchanged). When OnlyNonCritical is set, loads
// marked critical by the detector keep their natural latency.
type ConvertSpec struct {
	From            cache.HitLevel
	ToLat           int64
	OnlyNonCritical bool
}

// SystemConfig describes one complete system.
type SystemConfig struct {
	Name  string
	Cores int

	CPU cpu.Params

	L1ISize, L1DSize uint64
	L1Ways           int
	L1Lat            int64

	HasL2  bool
	L2Size uint64
	L2Ways int
	L2Lat  int64

	LLCSize   uint64 // total shared capacity
	LLCWays   int
	LLCLat    int64
	Inclusive bool
	LLCPolicy string // "lru" (default), "srrip", "brrip", "drrip"

	DRAM       memory.Config
	RingStops  int
	RingHopLat int64

	// MSHRs bounds demand L1 misses in flight per core (fill buffers).
	MSHRs int

	// GsharePredictorBits, when non-zero, installs a gshare branch
	// predictor with 2^bits counters in place of the trace's
	// misprediction flags (ext-branchpred study).
	GsharePredictorBits int

	// SharedCode maps code addresses identically across cores, so
	// symmetric (RATE-style) multi-programmed runs share code lines in
	// the LLC instead of replicating them per core — the paper's §II
	// observation about code replication in private caches.
	SharedCode bool

	// Baseline prefetchers (paper §V: stride at L1, aggressive
	// multi-stream into L2/LLC).
	BaselineStride bool
	BaselineStream bool
	StreamDegree   int
	StreamCount    int

	// CATCH: hardware criticality detection + TACT prefetchers.
	EnableCriticality bool
	// CritSource selects the criticality mechanism: "" or "graph" for
	// the paper's DDG detector, "feedsbranch" or "robstall" for the
	// literature's heuristics (ext-heuristics study).
	CritSource string
	CritTable  criticality.TableConfig
	CritRecord criticality.LevelMask
	Tact       tact.Config
	EnableTact bool

	// Oracle studies.
	OraclePrefetch   bool // §III-C zero-time promote of critical L1 misses
	OracleAllLoads   bool // promote every load (the "All PC" point)
	OracleCodeAllHit bool // all code accesses hit the L1I
	Convert          *ConvertSpec
}

// MemLatApprox is the approximate load-to-use memory latency used by
// Fig 4's "LLC hits at memory latency" conversion.
const MemLatApprox = 200

func defaults(name string) SystemConfig {
	p := cpu.DefaultParams()
	return SystemConfig{
		Name:  name,
		Cores: 1,
		CPU:   p,

		L1ISize: 32 * KB,
		L1DSize: 32 * KB,
		L1Ways:  8,
		L1Lat:   5,

		LLCLat: 40,

		DRAM:       memory.DDR4_2400(),
		RingStops:  8,
		RingHopLat: 2,
		MSHRs:      10,

		BaselineStride: true,
		BaselineStream: true,
		StreamDegree:   2,
		StreamCount:    16,

		CritTable:  criticality.DefaultTableConfig(),
		CritRecord: criticality.DefaultMask,
		Tact:       tact.DefaultConfig(),
	}
}

// BaselineExclusive is the paper's primary baseline: 1MB private L2 per
// core and a 5.5MB shared exclusive LLC (Skylake-server-like).
func BaselineExclusive() SystemConfig {
	c := defaults("baseline-excl")
	c.HasL2 = true
	c.L2Size = 1 * MB
	c.L2Ways = 16
	c.L2Lat = 15
	c.LLCSize = 5632 * KB // 5.5 MB
	c.LLCWays = 11
	c.Inclusive = false
	return c
}

// BaselineInclusive is the Skylake-client-like baseline: 256KB L2 and
// an 8MB shared inclusive LLC (§VI-F).
func BaselineInclusive() SystemConfig {
	c := defaults("baseline-incl")
	c.HasL2 = true
	c.L2Size = 256 * KB
	c.L2Ways = 16
	c.L2Lat = 13
	c.LLCSize = 8 * MB
	c.LLCWays = 16
	c.Inclusive = true
	return c
}

// NoL2 removes the L2 and sets the LLC to the given total capacity
// (6.5MB keeps per-core capacity constant; 9.5MB is iso-area).
func NoL2(base SystemConfig, llcSize uint64, ways int, name string) SystemConfig {
	c := base
	c.Name = name
	c.HasL2 = false
	c.L2Size = 0
	c.LLCSize = llcSize
	c.LLCWays = ways
	return c
}

// WithCATCH enables the criticality detector and the TACT prefetchers.
func WithCATCH(base SystemConfig, name string) SystemConfig {
	c := base
	c.Name = name
	c.EnableCriticality = true
	c.EnableTact = true
	return c
}

// WithLatencyDelta adds cycles to the hit latency of one level (Fig 3
// and Fig 15 sensitivity studies).
func WithLatencyDelta(base SystemConfig, level cache.HitLevel, cycles int64, name string) SystemConfig {
	c := base
	c.Name = name
	switch level {
	case cache.HitL1:
		c.L1Lat += cycles
		c.CPU.L1IHitLat += cycles
	case cache.HitL2:
		c.L2Lat += cycles
	case cache.HitLLC:
		c.LLCLat += cycles
	}
	return c
}

// WithOraclePrefetch configures the §III-C oracle: track critical loads
// with a table of trackPCs entries (0 means "All PC": promote every
// load), promote their L1 misses at zero time, make all code hit, and
// disable the hardware prefetchers (their training interacts with the
// oracle, per the paper).
func WithOraclePrefetch(base SystemConfig, trackPCs int, name string) SystemConfig {
	c := base
	c.Name = name
	c.EnableCriticality = true
	c.OraclePrefetch = true
	c.OracleCodeAllHit = true
	c.BaselineStride = false
	c.BaselineStream = false
	if trackPCs <= 0 {
		c.OracleAllLoads = true
	} else {
		c.CritTable = criticality.TableConfig{Entries: trackPCs, Ways: 8, ConfSat: 3}
		if trackPCs > 1024 {
			c.CritTable.Unlimited = true
		}
	}
	return c
}

// WithConvert configures a Fig 4 latency-conversion experiment.
func WithConvert(base SystemConfig, spec ConvertSpec, record criticality.LevelMask, name string) SystemConfig {
	c := base
	c.Name = name
	c.EnableCriticality = true
	c.CritRecord = record
	sp := spec
	c.Convert = &sp
	return c
}

// LevelLat returns the configured hit latency of a level.
func (c *SystemConfig) LevelLat(l cache.HitLevel) int64 {
	switch l {
	case cache.HitL1:
		return c.L1Lat
	case cache.HitL2:
		return c.L2Lat
	case cache.HitLLC:
		return c.LLCLat
	case cache.HitMem:
		return MemLatApprox
	}
	return 0
}

// PerCoreCacheBytes returns the private cache capacity per core plus
// the LLC share (used in area accounting).
func (c *SystemConfig) PerCoreCacheBytes() uint64 {
	b := c.L1ISize + c.L1DSize
	if c.HasL2 {
		b += c.L2Size
	}
	return b + c.LLCSize/uint64(maxInt(c.Cores, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
