package config

import (
	"testing"

	"catch/internal/cache"
)

func TestBaselineExclusiveParameters(t *testing.T) {
	c := BaselineExclusive()
	if c.L2Size != 1*MB || c.LLCSize != 5632*KB || c.Inclusive {
		t.Fatalf("exclusive baseline wrong: %+v", c)
	}
	if c.L1Lat != 5 || c.L2Lat != 15 || c.LLCLat != 40 {
		t.Fatalf("latencies wrong: %d %d %d", c.L1Lat, c.L2Lat, c.LLCLat)
	}
	if c.CPU.Width != 4 || c.CPU.ROB != 224 {
		t.Fatalf("core params wrong: %+v", c.CPU)
	}
	if !c.BaselineStride || !c.BaselineStream {
		t.Fatal("baseline prefetchers disabled")
	}
}

func TestBaselineInclusiveParameters(t *testing.T) {
	c := BaselineInclusive()
	if c.L2Size != 256*KB || c.LLCSize != 8*MB || !c.Inclusive {
		t.Fatalf("inclusive baseline wrong: %+v", c)
	}
}

func TestNoL2(t *testing.T) {
	c := NoL2(BaselineExclusive(), 6656*KB, 13, "nol2")
	if c.HasL2 || c.L2Size != 0 {
		t.Fatal("NoL2 left an L2")
	}
	if c.LLCSize != 6656*KB || c.LLCWays != 13 {
		t.Fatalf("LLC not resized: %+v", c)
	}
	if c.Name != "nol2" {
		t.Fatal("name not set")
	}
}

func TestWithCATCH(t *testing.T) {
	c := WithCATCH(BaselineExclusive(), "catch")
	if !c.EnableCriticality || !c.EnableTact {
		t.Fatal("CATCH not enabled")
	}
	if c.CritTable.Entries != 32 {
		t.Fatalf("critical table size %d", c.CritTable.Entries)
	}
	// The base must be unmodified (value semantics).
	if BaselineExclusive().EnableTact {
		t.Fatal("mutation leaked into base config")
	}
}

func TestWithLatencyDelta(t *testing.T) {
	c := WithLatencyDelta(BaselineExclusive(), cache.HitL2, 6, "l2+6")
	if c.L2Lat != 21 {
		t.Fatalf("L2 latency %d", c.L2Lat)
	}
	c = WithLatencyDelta(BaselineExclusive(), cache.HitL1, 3, "l1+3")
	if c.L1Lat != 8 || c.CPU.L1IHitLat != 8 {
		t.Fatalf("L1 latencies %d/%d", c.L1Lat, c.CPU.L1IHitLat)
	}
}

func TestWithOraclePrefetch(t *testing.T) {
	c := WithOraclePrefetch(BaselineExclusive(), 64, "oracle")
	if !c.OraclePrefetch || !c.OracleCodeAllHit || c.OracleAllLoads {
		t.Fatalf("oracle flags wrong: %+v", c)
	}
	if c.CritTable.Entries != 64 {
		t.Fatalf("oracle table size %d", c.CritTable.Entries)
	}
	if c.BaselineStride || c.BaselineStream {
		t.Fatal("oracle config kept hardware prefetchers")
	}
	all := WithOraclePrefetch(BaselineExclusive(), 0, "oracle-all")
	if !all.OracleAllLoads {
		t.Fatal("All-PC oracle not configured")
	}
	big := WithOraclePrefetch(BaselineExclusive(), 2048, "oracle-big")
	if !big.CritTable.Unlimited {
		t.Fatal("large oracle table not unlimited")
	}
}

func TestWithConvert(t *testing.T) {
	spec := ConvertSpec{From: cache.HitL2, ToLat: 40, OnlyNonCritical: true}
	c := WithConvert(BaselineExclusive(), spec, 2, "conv")
	if c.Convert == nil || c.Convert.From != cache.HitL2 || !c.Convert.OnlyNonCritical {
		t.Fatalf("convert spec wrong: %+v", c.Convert)
	}
	if !c.EnableCriticality {
		t.Fatal("conversion without detector")
	}
}

func TestLevelLat(t *testing.T) {
	c := BaselineExclusive()
	if c.LevelLat(cache.HitL1) != 5 || c.LevelLat(cache.HitL2) != 15 ||
		c.LevelLat(cache.HitLLC) != 40 || c.LevelLat(cache.HitMem) != MemLatApprox {
		t.Fatal("LevelLat wrong")
	}
}

func TestPerCoreCacheBytes(t *testing.T) {
	c := BaselineExclusive()
	want := uint64(32*KB + 32*KB + 1*MB + 5632*KB)
	if got := c.PerCoreCacheBytes(); got != want {
		t.Fatalf("per-core bytes %d, want %d", got, want)
	}
	c.Cores = 4
	want = uint64(32*KB + 32*KB + 1*MB + 5632*KB/4)
	if got := c.PerCoreCacheBytes(); got != want {
		t.Fatalf("4-core bytes %d, want %d", got, want)
	}
}
