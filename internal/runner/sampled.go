package runner

import (
	"runtime/debug"

	"catch/internal/core"
	"catch/internal/sample"
)

// Sampled-simulation execution: jobs stamped with a SampleSpec resolve
// through the sample.Planner (profile → cluster → warm restore →
// representative intervals → extrapolation). Any sampling failure —
// planner error or panic — degrades gracefully to a full simulation of
// the same job: the sweep sees a result either way, and the fallback
// is visible in the engine counters and /metrics rather than as a job
// failure.

// stampSampled returns a copy of jobs with the engine's sampling
// defaults applied to every eligible job (single-workload, spec
// valid). It runs before the journal resume pass so stamped keys are
// the ones journaled and cached. Ineligible jobs pass through
// unstamped and simulate in full.
func (e *Engine) stampSampled(jobs []Job) []Job {
	out := append([]Job(nil), jobs...)
	for i := range out {
		j := &out[i]
		if j.Sample != nil || len(j.Workloads) != 1 {
			continue
		}
		spec := e.sampleSpec(j.Insts)
		if spec.Validate(j.Insts) != nil {
			continue // budgets the defaults cannot split stay exact
		}
		j.Sample = &SampleSpec{Interval: spec.Interval, K: spec.K}
	}
	return out
}

// DefaultSampleIntervals is the interval count when Options gives no
// interval length; DefaultSampleK the cluster count when it gives no
// k. Sixteen intervals at k=4 measure a quarter of the region ahead of
// clustering gains; explicit options tune the ratio further.
const (
	DefaultSampleIntervals = 16
	DefaultSampleK         = 4
)

// sampleSpec resolves the engine's sampling options against one job's
// instruction budget.
func (e *Engine) sampleSpec(insts int64) sample.Spec {
	spec := sample.Spec{Interval: e.opts.SampleInterval, K: e.opts.SampleK}
	if spec.Interval <= 0 {
		spec.Interval = insts / DefaultSampleIntervals
	}
	if spec.K <= 0 {
		spec.K = DefaultSampleK
	}
	if n := int64(0); spec.Interval > 0 {
		n = insts / spec.Interval
		if int64(spec.K) > n {
			spec.K = int(n)
		}
	}
	return spec
}

// runSampled resolves one stamped job through the planner. Panics are
// contained into an error so the caller's fallback path treats them
// like any other sampling failure.
func (e *Engine) runSampled(j *Job) (rs []core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	ws, err := resolveWorkloads(j.Workloads)
	if err != nil {
		return nil, err
	}
	spec := sample.Spec{Interval: j.Sample.Interval, K: j.Sample.K}
	r, err := e.sampler.Run(j.Config, &ws[0], j.Insts, j.Warmup, spec)
	if err != nil {
		return nil, err
	}
	return []core.Result{r}, nil
}

// Sampled returns how many jobs were resolved by representative-
// interval sampling.
func (e *Engine) Sampled() uint64 { return e.sampled.Value() }

// SampleFallbacks returns how many sampled jobs fell back to full
// simulation after a sampling failure.
func (e *Engine) SampleFallbacks() uint64 { return e.sampleFallback.Value() }

// Sampler returns the engine's planner (nil when sampling is off); the
// HTTP layer exports its counters.
func (e *Engine) Sampler() *sample.Planner { return e.sampler }
