package runner

import (
	"context"
	"encoding/json"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
)

// flattenJSON runs jobs through e and returns the Flatten output as
// canonical bytes — the unit of comparison for every determinism
// claim in this file.
func flattenJSON(t *testing.T, e *Engine, ctx context.Context, jobs []Job) []byte {
	t.Helper()
	rs, err := Flatten(e.Run(ctx, jobs))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChaosDeterminismUnderFaults is the headline invariant: a seeded
// fault schedule (disk errors, corrupt entries, transient exec
// failures, panics, artificial slowness) over a real small sweep
// produces byte-identical Flatten output to the fault-free run,
// because every injected fault is transient and the retry/quarantine/
// breaker machinery recovers it.
func TestChaosDeterminismUnderFaults(t *testing.T) {
	jobs := testJobs()
	ref := flattenJSON(t, New(Options{Workers: 2}), context.Background(), jobs)

	for _, seed := range []uint64{1, 7, 42} {
		inj := fault.NewInjector(fault.Plan{Seed: seed, Rules: map[fault.Kind]fault.Rule{
			fault.DiskRead:  {Prob: 0.5},
			fault.DiskWrite: {Prob: 0.5},
			fault.Corrupt:   {Prob: 0.5},
			fault.Exec:      {Prob: 0.5},
			fault.Panic:     {Prob: 0.3},
			fault.Slow:      {Prob: 0.5, Delay: time.Millisecond},
		}})
		cache := NewCacheOpts(CacheOptions{
			Dir:     t.TempDir(),
			FS:      fault.InjectFS{FS: fault.OS{}, Inj: inj},
			Breaker: fault.NewBreaker(3, 4),
		})
		e := New(Options{
			Workers: 3, Cache: cache, Retries: 3, Fault: inj,
			Backoff: fault.Backoff{Base: 50 * time.Microsecond, Seed: seed},
		})
		got := flattenJSON(t, e, context.Background(), jobs)
		if string(got) != string(ref) {
			t.Fatalf("seed %d: output under faults diverged from fault-free run", seed)
		}
		if inj.TotalInjected() == 0 {
			t.Fatalf("seed %d: the chaos run injected nothing", seed)
		}
	}
}

// TestChaosKillResumeCycle: phase 1 runs under faults (every job
// panics once, half the disk reads fail) and is killed mid-sweep;
// phase 2 reopens the journal fault-free and completes exactly the
// remaining jobs, with the full sweep byte-identical to a clean run.
func TestChaosKillResumeCycle(t *testing.T) {
	jobs := testJobs()
	ref := flattenJSON(t, New(Options{Workers: 2}), context.Background(), jobs)

	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	jpath := filepath.Join(dir, "sweep.journal")

	// Phase 1: chaos + kill.
	inj := fault.NewInjector(fault.Plan{Seed: 11, Rules: map[fault.Kind]fault.Rule{
		fault.Panic:    {Prob: 1}, // every job's first attempt panics
		fault.DiskRead: {Prob: 0.5},
	}})
	jl1, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 1, Cache: NewCache(cacheDir), Retries: 2, Fault: inj, Journal: jl1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var sims atomic.Int32
	inner := e1.simulate
	e1.simulate = func(j *Job) ([]core.Result, error) {
		rs, err := inner(j)
		if sims.Add(1) == 2 {
			cancel() // the "kill": the first job is already journaled
		}
		return rs, err
	}
	first := e1.Run(ctx, jobs)
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := inj.Injected(fault.Panic); got < 2 {
		t.Fatalf("phase 1 injected %d panics, want >= 2", got)
	}
	var done int
	for i := range first {
		switch first[i].Status {
		case StatusOK:
			done++
		case StatusCanceled:
		default:
			t.Fatalf("phase 1 job %d: status %q err %q", i, first[i].Status, first[i].Err)
		}
	}
	if done == 0 || done == len(jobs) {
		t.Fatalf("kill was not mid-sweep: %d/%d done", done, len(jobs))
	}

	// Phase 2: clean resume in a "new process".
	jl2, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if jl2.DoneCount() != done {
		t.Fatalf("journal has %d done, phase 1 reported %d", jl2.DoneCount(), done)
	}
	e2 := New(Options{Workers: 2, Cache: NewCache(cacheDir), Journal: jl2})
	got := flattenJSON(t, e2, context.Background(), jobs)
	if string(got) != string(ref) {
		t.Fatal("resumed sweep diverged from the clean run")
	}
	if exec := e2.Executed(); exec != uint64(len(jobs)-done) {
		t.Fatalf("phase 2 executed %d jobs, want exactly the %d remaining", exec, len(jobs)-done)
	}
}

// TestChaosHangRecoversViaTimeout: an injected hang is bounded by the
// per-attempt timeout and the retry succeeds (the hung goroutine
// drains when the sweep's context is cancelled).
func TestChaosHangRecoversViaTimeout(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 5, Rules: map[fault.Kind]fault.Rule{
		fault.Hang: {Prob: 1},
	}})
	// The timeout bounds both the hung attempt (test runtime) and the
	// clean retry: generous enough that a loaded -race run still
	// finishes the retry inside it.
	e := New(Options{Workers: 1, Timeout: 500 * time.Millisecond, Retries: 1, Fault: inj})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // releases the hung goroutine
	rs := e.Run(ctx, testJobs()[:1])
	if rs[0].Err != "" || rs[0].Status != StatusOK {
		t.Fatalf("hang did not recover: %+v", rs[0])
	}
	if inj.Injected(fault.Hang) != 1 {
		t.Fatalf("hangs injected = %d", inj.Injected(fault.Hang))
	}
}
