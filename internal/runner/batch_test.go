package runner

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"catch/internal/cache"
	"catch/internal/config"
)

// batchTestJobs is a small real sweep with everything the scheduler
// must route correctly: three configs sharing two workloads (two
// batchable groups of three), plus an MP job that must stay scalar.
func batchTestJobs() []Job {
	base := config.BaselineExclusive()
	llc6 := config.WithLatencyDelta(base, cache.HitLLC, 6, "baseline-excl+llc6")
	llc12 := config.WithLatencyDelta(base, cache.HitLLC, 12, "baseline-excl+llc12")
	grid := Grid{
		Configs:   []config.SystemConfig{base, llc6, llc12},
		Workloads: []string{"mcf", "hmmer"},
		Insts:     3_000,
		Warmup:    1_000,
	}
	jobs := grid.Jobs()
	mp := base
	mp.Cores = 2
	return append(jobs, MPJob(mp, []string{"mcf", "hmmer"}, 2_000, 500))
}

// TestBatchEngineMatchesScalar is the scheduler-level determinism
// anchor: a batch engine's Flattened output must be byte-identical to
// the scalar engine's over a mixed ST/MP sweep, while actually
// batching the batchable jobs.
func TestBatchEngineMatchesScalar(t *testing.T) {
	jobs := batchTestJobs()
	scalarEng := New(Options{Workers: 2, Cache: NewCache("")})
	want, err := Flatten(scalarEng.Run(context.Background(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	batchEng := New(Options{Workers: 2, Cache: NewCache(""), Batch: true})
	got, err := Flatten(batchEng.Run(context.Background(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batch engine results differ from scalar engine results")
	}
	if n := batchEng.Batched(); n != 6 {
		t.Errorf("batched %d jobs, want the 6 single-thread jobs", n)
	}
	if n := batchEng.BatchFallbacks(); n != 0 {
		t.Errorf("batch fallbacks = %d, want 0", n)
	}
}

// TestPlanUnits pins the grouping policy: first-appearance order,
// BatchSize splitting, MP jobs as singletons, and exact passthrough
// when batching is off.
func TestPlanUnits(t *testing.T) {
	cfg := config.BaselineExclusive()
	jobs := []Job{
		STJob(cfg, "mcf", 100, 10),                    // 0: group A
		STJob(cfg, "hmmer", 100, 10),                  // 1: group B
		MPJob(cfg, []string{"mcf", "hmmer"}, 100, 10), // 2: always scalar
		STJob(cfg, "mcf", 100, 10),                    // 3: group A
		STJob(cfg, "mcf", 200, 10),                    // 4: own group (insts differ)
		STJob(cfg, "mcf", 100, 10),                    // 5: group A
	}
	pending := []int{0, 1, 2, 3, 4, 5}

	scalar := New(Options{Workers: 1})
	if got := scalar.planUnits(jobs, pending); len(got) != len(pending) {
		t.Fatalf("scalar planUnits made %d units, want %d singletons", len(got), len(pending))
	}

	batch := New(Options{Workers: 1, Batch: true, BatchSize: 2})
	got := batch.planUnits(jobs, pending)
	want := [][]int{{0, 3}, {5}, {1}, {2}, {4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("planUnits = %v, want %v (group A split at BatchSize=2)", got, want)
	}
}

// TestBatchCacheFanOut proves batch results land under the same
// per-job content-addressed keys and journal records as scalar
// execution, so a journaled re-run resumes without recomputing.
func TestBatchCacheFanOut(t *testing.T) {
	jobs := batchTestJobs()
	jpath := filepath.Join(t.TempDir(), "sweep.journal")
	jl, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache("")
	eng := New(Options{Workers: 2, Cache: c, Batch: true, Journal: jl})
	if _, err := Flatten(eng.Run(context.Background(), jobs)); err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		key := jobs[i].Key()
		if _, ok := c.Get(key); !ok {
			t.Errorf("job %d (%v) missing from the cache after a batch run", i, jobs[i].Workloads)
		}
		if !jl.Done(key) {
			t.Errorf("job %d (%v) not journaled after a batch run", i, jobs[i].Workloads)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: the same sweep against the recorded journal + warm cache
	// must execute nothing.
	jl2, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = jl2.Close() }()
	resumed := New(Options{Workers: 2, Cache: c, Batch: true, Journal: jl2})
	out := resumed.Run(context.Background(), jobs)
	if err := FirstError(out); err != nil {
		t.Fatal(err)
	}
	if n := resumed.Executed(); n != 0 {
		t.Errorf("resumed run executed %d simulations, want 0", n)
	}
	for i := range out {
		if !out[i].Cached {
			t.Errorf("resumed job %d not served from the cache", i)
		}
	}
}

// TestBatchFallbackToScalar proves a unit-level failure degrades to
// per-job scalar execution with per-job verdicts instead of failing
// the whole unit: three jobs on an unregistered workload group into one
// unit, the batch validation rejects it, and each job then reports its
// own scalar failure.
func TestBatchFallbackToScalar(t *testing.T) {
	cfg := config.BaselineExclusive()
	jobs := []Job{
		STJob(cfg, "no-such-workload", 100, 10),
		STJob(cfg, "no-such-workload", 100, 10),
		STJob(cfg, "no-such-workload", 100, 10),
		STJob(cfg, "mcf", 1_000, 100),
		STJob(cfg, "mcf", 1_000, 100),
	}
	// Distinct keys for the duplicate bad jobs are not needed: they are
	// identical jobs, which is exactly the coalescing case the scalar
	// fallback must also survive.
	eng := New(Options{Workers: 2, Cache: NewCache(""), Batch: true})
	out := eng.Run(context.Background(), jobs)
	for i := 0; i < 3; i++ {
		if out[i].Status != StatusFailed {
			t.Errorf("bad job %d: status %q, want %q", i, out[i].Status, StatusFailed)
		}
		if !strings.Contains(out[i].Err, "no-such-workload") {
			t.Errorf("bad job %d: error %q does not name the workload", i, out[i].Err)
		}
	}
	for i := 3; i < 5; i++ {
		if out[i].Status != StatusOK {
			t.Errorf("good job %d: status %q (err %q), want ok", i, out[i].Status, out[i].Err)
		}
	}
	if n := eng.BatchFallbacks(); n != 1 {
		t.Errorf("batch fallbacks = %d, want 1", n)
	}
}

// TestResolveWorkloadsReportsAll pins the satellite fix: validation
// reports every unknown name at once, not just the first.
func TestResolveWorkloadsReportsAll(t *testing.T) {
	j := MPJob(config.BaselineExclusive(), []string{"mcf", "nope1", "hmmer", "nope2"}, 100, 10)
	err := j.Validate()
	if err == nil {
		t.Fatal("Validate accepted unknown workloads")
	}
	for _, name := range []string{"nope1", "nope2"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
	if strings.Contains(err.Error(), "mcf") || strings.Contains(err.Error(), "hmmer") {
		t.Errorf("error %q names known workloads", err)
	}
}
