package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/telemetry"
)

const (
	tInsts  = 10_000
	tWarmup = 4_000
)

func testJobs() []Job {
	g := Grid{
		Configs: []config.SystemConfig{
			config.BaselineExclusive(),
			config.WithCATCH(config.NoL2(config.BaselineExclusive(), 6656*config.KB, 13, "nol2"), "nol2-catch"),
		},
		Workloads: []string{"hmmer", "mcf", "tpcc"},
		Insts:     tInsts,
		Warmup:    tWarmup,
	}
	return g.Jobs()
}

func resultJSON(t *testing.T, rs []JobResult) []string {
	t.Helper()
	out := make([]string, len(rs))
	for i := range rs {
		if rs[i].Err != "" {
			t.Fatalf("job %d failed: %s", i, rs[i].Err)
		}
		b, err := json.Marshal(rs[i].Results)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out[i] = string(b)
	}
	return out
}

// TestDeterministicAcrossWorkerCounts is the guard against shared
// mutable state: the same grid must produce byte-identical Result JSON
// at 1, 2 and 8 workers, and across repeated runs.
func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs()
	ref := resultJSON(t, New(Options{Workers: 1}).Run(context.Background(), jobs))
	for _, workers := range []int{1, 2, 8} {
		got := resultJSON(t, New(Options{Workers: workers}).Run(context.Background(), jobs))
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d job %d (%s on %v) diverged from sequential run",
					workers, i, jobs[i].Config.Name, jobs[i].Workloads)
			}
		}
	}
}

func TestResultsStayInJobOrder(t *testing.T) {
	jobs := testJobs()
	rs := New(Options{Workers: 4}).Run(context.Background(), jobs)
	for i := range rs {
		if rs[i].Job.Config.Name != jobs[i].Config.Name ||
			rs[i].Results[0].Workload != jobs[i].Workloads[0] {
			t.Fatalf("job %d result out of order: got %s/%s", i,
				rs[i].Job.Config.Name, rs[i].Results[0].Workload)
		}
	}
}

func TestUnknownWorkloadFailsWithoutAbortingSweep(t *testing.T) {
	jobs := []Job{
		STJob(config.BaselineExclusive(), "no-such-workload", tInsts, tWarmup),
		STJob(config.BaselineExclusive(), "hmmer", tInsts, tWarmup),
	}
	rs := New(Options{Workers: 2}).Run(context.Background(), jobs)
	if rs[0].Err == "" || !strings.Contains(rs[0].Err, "no-such-workload") {
		t.Fatalf("bad job error = %q", rs[0].Err)
	}
	if rs[1].Err != "" || len(rs[1].Results) != 1 {
		t.Fatalf("good job was dragged down: %+v", rs[1])
	}
	if err := FirstError(rs); err == nil {
		t.Fatal("FirstError missed the failure")
	}
}

func TestTimeoutAndRetries(t *testing.T) {
	e := New(Options{Workers: 1, Timeout: 10 * time.Millisecond, Retries: 2})
	var calls atomic.Int32
	block := make(chan struct{})
	e.simulate = func(*Job) ([]core.Result, error) {
		calls.Add(1)
		<-block
		return []core.Result{{}}, nil
	}
	rs := e.Run(context.Background(), []Job{STJob(config.BaselineExclusive(), "hmmer", tInsts, tWarmup)})
	close(block)
	if rs[0].Err == "" || !strings.Contains(rs[0].Err, "timed out") {
		t.Fatalf("err = %q, want timeout", rs[0].Err)
	}
	if !strings.Contains(rs[0].Err, "attempt 3/3") {
		t.Fatalf("err = %q, want exhausted retries", rs[0].Err)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("simulate called %d times, want 3", n)
	}
}

func TestRetrySucceedsAfterTransientFailure(t *testing.T) {
	e := New(Options{Workers: 1, Retries: 1})
	var calls int
	e.simulate = func(*Job) ([]core.Result, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient")
		}
		return []core.Result{{Workload: "ok"}}, nil
	}
	rs := e.Run(context.Background(), []Job{STJob(config.BaselineExclusive(), "hmmer", tInsts, tWarmup)})
	if rs[0].Err != "" || rs[0].Results[0].Workload != "ok" {
		t.Fatalf("retry did not recover: %+v", rs[0])
	}
}

func TestCancelledContextStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rs := New(Options{Workers: 2}).Run(ctx, testJobs())
	for i := range rs {
		if rs[i].Err == "" {
			t.Fatalf("job %d ran under a cancelled context", i)
		}
	}
}

func TestFlatten(t *testing.T) {
	jobs := testJobs()[:2]
	rs, err := Flatten(New(Options{Workers: 2}).Run(context.Background(), jobs))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 || rs[0].Workload != "hmmer" || rs[1].Workload != "mcf" {
		t.Fatalf("flatten order wrong: %v", rs)
	}
}

func TestMPJobRunsOnePerCore(t *testing.T) {
	cfg := config.BaselineExclusive()
	cfg.Cores = 2
	job := MPJob(cfg, []string{"hmmer", "mcf"}, tInsts, tWarmup)
	rs := New(Options{Workers: 1}).Run(context.Background(), []Job{job})
	if rs[0].Err != "" {
		t.Fatal(rs[0].Err)
	}
	if len(rs[0].Results) != 2 ||
		rs[0].Results[0].Workload != "hmmer" || rs[0].Results[1].Workload != "mcf" {
		t.Fatalf("MP job results wrong: %+v", rs[0].Results)
	}
}

// TestEngineMetricsCountRetriesAndFailures exercises the engine's
// registered series directly: one job that succeeds on its second
// attempt, one that exhausts its attempts.
func TestEngineMetricsCountRetriesAndFailures(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Options{Workers: 1, Retries: 1, Metrics: reg})
	var tries atomic.Int32
	e.simulate = func(j *Job) ([]core.Result, error) {
		if j.Workloads[0] == "mcf" && tries.Add(1) == 1 {
			return nil, errors.New("transient")
		}
		if j.Workloads[0] == "tpcc" {
			return nil, errors.New("permanent")
		}
		return []core.Result{{Workload: j.Workloads[0]}}, nil
	}
	cfg := config.BaselineExclusive()
	out := e.Run(context.Background(), []Job{
		STJob(cfg, "mcf", 1000, 0),
		STJob(cfg, "tpcc", 1000, 0),
	})
	if out[0].Err != "" {
		t.Fatalf("mcf should retry to success: %+v", out[0])
	}
	if out[1].Err == "" {
		t.Fatal("tpcc should fail")
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"catch_engine_jobs_completed_total 1",
		"catch_engine_jobs_failed_total 1",
		"catch_engine_jobs_retried_total 2", // mcf's second try + tpcc's retry
		"catch_engine_jobs_inflight 0",
		"catch_engine_job_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}
