package runner

import (
	"fmt"
	"net/http"
	"strings"
	"time"
)

// HTTP cache semantics for the results API (RFC 9110 conditional
// requests + RFC 9111 response directives). A result key is a content
// address, so the entity tag is strong, the representation is
// immutable, and fronting HTTP caches (CDNs, reverse proxies) can
// absorb read traffic with plain standard-compliant caching: a warm
// cache revalidates with If-None-Match and gets a body-less 304.

// DefaultResultMaxAge is the Cache-Control max-age applied to cached
// results when the server does not configure one. Content-addressed
// entries never change, so the default is the RFC 9111 ceiling of one
// year, paired with the immutable directive.
const DefaultResultMaxAge = 365 * 24 * time.Hour

// ETagFor returns the strong entity tag for a content-addressed
// result key: the quoted key itself.
func ETagFor(key string) string { return `"` + key + `"` }

// etagsMatch implements the weak comparison of RFC 9110 §8.8.3.2,
// which If-None-Match requires: W/"x" and "x" compare equal. Both
// inputs are single entity tags (quoted, with an optional W/ prefix).
func etagsMatch(a, b string) bool {
	return strings.TrimPrefix(a, "W/") == strings.TrimPrefix(b, "W/")
}

// NoneMatch reports whether an If-None-Match header value matches
// etag: either the single member "*" (matches any current
// representation) or a comma-separated entity-tag list containing a
// weak-comparison match. An empty header never matches.
func NoneMatch(header, etag string) bool {
	header = strings.TrimSpace(header)
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	// Entity tags are quoted strings over etagc (no commas, no quotes
	// inside), so a comma split is an exact field parse.
	for _, field := range strings.Split(header, ",") {
		if etagsMatch(strings.TrimSpace(field), etag) {
			return true
		}
	}
	return false
}

// setResultCacheHeaders stamps the headers that make a cached result
// HTTP-cacheable: the strong validator, the freshness lifetime, and
// the Vary axis (the representation depends only on the accepted
// encoding; proxies must not fold differently encoded variants).
func setResultCacheHeaders(w http.ResponseWriter, key string, maxAge time.Duration) {
	if maxAge <= 0 {
		maxAge = DefaultResultMaxAge
	}
	h := w.Header()
	h.Set("ETag", ETagFor(key))
	h.Set("Cache-Control", fmt.Sprintf("public, max-age=%d, immutable", int64(maxAge.Seconds())))
	h.Set("Vary", "Accept-Encoding")
}

// ServeResult writes a cached result with full HTTP cache semantics:
// validator and freshness headers always, then either a body-less 304
// (the client's If-None-Match matched — its copy is current) or the
// JSON body with 200. v is the response document for the 200 path.
func ServeResult(w http.ResponseWriter, r *http.Request, key string, v any, maxAge time.Duration) {
	setResultCacheHeaders(w, key, maxAge)
	if NoneMatch(r.Header.Get("If-None-Match"), ETagFor(key)) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeJSON(w, http.StatusOK, v)
}
