package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/sample"
	"catch/internal/stats"
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// Job outcome statuses, as reported in JobResult.Status.
const (
	// StatusOK marks a job that produced results (computed or cached).
	StatusOK = "ok"
	// StatusFailed marks a job that exhausted its attempts with an error.
	StatusFailed = "failed"
	// StatusCanceled marks a job cut short by context cancellation or an
	// engine drain — it was never given its full attempt budget, so it
	// is retryable work, not a failure.
	StatusCanceled = "canceled"
)

// ErrDraining reports that the engine stopped feeding new jobs because
// Drain was called.
var ErrDraining = errors.New("engine draining")

// Options configures an Engine.
type Options struct {
	// Workers bounds the worker pool; <=0 means GOMAXPROCS.
	Workers int
	// Cache memoizes and coalesces jobs; nil runs every job fresh.
	Cache *Cache
	// Timeout bounds one execution attempt; 0 means no limit.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed or
	// timed-out execution.
	Retries int
	// Backoff schedules the pause before each retry (exponential with
	// deterministic seeded jitter). The zero value keeps the engine's
	// historical immediate retries.
	Backoff fault.Backoff
	// Fault, when non-nil, injects deterministic faults (slow, hang,
	// exec-error and panic kinds) around job execution attempts. Chaos
	// testing only; nil means faults off.
	Fault *fault.Injector
	// Journal, when non-nil, records every completed job so an
	// interrupted sweep can resume from its last completed key.
	Journal *Journal
	// Logf receives rare human-facing diagnostics (panic stacks,
	// journal write failures); nil discards them.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives the engine's job counters and
	// latency histogram (catch_engine_*). Handles are nil-safe, so an
	// unmetered engine pays nothing.
	Metrics *telemetry.Registry
	// Batch groups single-thread jobs that share a (workload, insts,
	// warmup) budget and resolves each group through one lock-step
	// core.RunBatch call over a shared materialized trace. Results are
	// byte-identical to the scalar path and fan back out to the same
	// per-job cache keys and journal records; any batch-level error
	// falls back to scalar execution job by job.
	Batch bool
	// BatchSize caps the configurations per RunBatch call; <=0 means
	// DefaultBatchSize.
	BatchSize int
	// Traces is the shared trace store the batch path materializes
	// through; nil (with Batch or Sample set) creates a memory-only
	// store.
	Traces *trace.Store
	// Sample resolves eligible single-workload jobs by representative-
	// interval sampling: profile once per workload, cluster intervals,
	// simulate only cluster representatives from a warm-state snapshot
	// and extrapolate. Results carry a SampleMeta with error bars; any
	// sampling failure falls back to full simulation of that job.
	Sample bool
	// SampleInterval is the interval length in instructions; <=0
	// derives insts/DefaultSampleIntervals per job.
	SampleInterval int64
	// SampleK is the clusters (representatives simulated) per job;
	// <=0 means DefaultSampleK.
	SampleK int
	// Snapshots is the warm-state snapshot store the sampling path
	// restores from; nil (with Sample set) creates a memory-only
	// store.
	Snapshots *sample.Store
}

// DefaultBatchSize is the lock-step group width when Options.BatchSize
// is unset: wide enough to amortize the trace decode, narrow enough
// that the batch's combined simulator state stays cache-resident.
const DefaultBatchSize = 8

// Engine shards jobs across a bounded worker pool. Each execution
// builds a private core.System (System is not goroutine-safe and warm
// state must not leak between jobs), so results are independent of the
// worker count.
type Engine struct {
	opts Options
	// simulate is the job executor; tests substitute it to count or
	// delay executions.
	simulate func(*Job) ([]core.Result, error)
	// sampleRun resolves one stamped job through the planner; tests
	// substitute it to force sampling failures.
	sampleRun func(*Job) ([]core.Result, error)

	// sampler resolves sampled jobs (nil when Options.Sample is off).
	sampler *sample.Planner

	executed       stats.AtomicCounter
	batched        stats.AtomicCounter
	batchFallback  stats.AtomicCounter
	sampled        stats.AtomicCounter
	sampleFallback stats.AtomicCounter

	drain     chan struct{}
	drainOnce sync.Once

	// Metric handles (nil when Options.Metrics is nil; every update on
	// a nil handle is a no-op).
	mInflight   *telemetry.Gauge
	mCompleted  *telemetry.Counter
	mFailed     *telemetry.Counter
	mCanceled   *telemetry.Counter
	mRetried    *telemetry.Counter
	mResumed    *telemetry.Counter
	mJournalErr *telemetry.Counter
	mJobSeconds *telemetry.Histogram
}

// JobResult pairs a job with its outcome. Exactly one of Results/Err
// is meaningful; a failed job never aborts the rest of the sweep.
type JobResult struct {
	Job     Job           `json:"job"`
	Key     string        `json:"key"`
	Results []core.Result `json:"results,omitempty"`
	Err     string        `json:"error,omitempty"`
	Status  string        `json:"status,omitempty"`
	// Stack is the goroutine stack of the first panic this job hit
	// (empty when it never panicked).
	Stack   string        `json:"stack,omitempty"`
	Cached  bool          `json:"cached"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if (opts.Batch || opts.Sample) && opts.Traces == nil {
		opts.Traces = trace.NewStore("")
	}
	if opts.Sample && opts.Snapshots == nil {
		opts.Snapshots = sample.NewStore("")
	}
	e := &Engine{opts: opts, drain: make(chan struct{})}
	if opts.Sample {
		e.sampler = sample.NewPlanner(opts.Traces, opts.Snapshots)
	}
	e.sampleRun = e.runSampled
	e.simulate = func(j *Job) ([]core.Result, error) {
		if j.Sample != nil && e.sampler != nil {
			rs, err := e.sampleRun(j)
			if err == nil {
				e.sampled.Inc()
				return rs, nil
			}
			e.sampleFallback.Inc()
			e.logf("runner: sampled job %s fell back to full simulation: %v", shortKey(j.Key()), err)
		}
		return j.Execute()
	}
	if r := opts.Metrics; r != nil {
		e.mInflight = r.Gauge("catch_engine_jobs_inflight",
			"Jobs currently being resolved by the engine.")
		e.mCompleted = r.Counter("catch_engine_jobs_completed_total",
			"Jobs resolved successfully (including cache hits).")
		e.mFailed = r.Counter("catch_engine_jobs_failed_total",
			"Jobs that exhausted their attempts with an error.")
		e.mCanceled = r.Counter("catch_engine_jobs_canceled_total",
			"Jobs cut short by context cancellation or drain (retryable, not failed).")
		e.mRetried = r.Counter("catch_engine_jobs_retried_total",
			"Extra simulation attempts after a failure or timeout.")
		e.mResumed = r.Counter("catch_engine_jobs_resumed_total",
			"Jobs served from the cache because a journal already recorded them.")
		e.mJournalErr = r.Counter("catch_engine_journal_errors_total",
			"Failed journal appends (the sweep continues; a resume may recompute).")
		e.mJobSeconds = r.Histogram("catch_engine_job_seconds",
			"Wall-clock latency of one job resolution.",
			0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120)
		r.CounterFunc("catch_engine_executions_total",
			"Simulations actually started (cache hits and coalesced waits excluded).",
			func() float64 { return float64(e.executed.Value()) })
		r.CounterFunc("catch_engine_jobs_batched_total",
			"Jobs resolved by the lock-step batch kernel.",
			func() float64 { return float64(e.batched.Value()) })
		r.CounterFunc("catch_engine_batch_fallbacks_total",
			"Batch units that fell back to scalar per-job execution.",
			func() float64 { return float64(e.batchFallback.Value()) })
		r.CounterFunc("catch_engine_jobs_sampled_total",
			"Jobs resolved by representative-interval sampling.",
			func() float64 { return float64(e.sampled.Value()) })
		r.CounterFunc("catch_engine_sample_fallbacks_total",
			"Sampled jobs that fell back to full simulation after a sampling failure.",
			func() float64 { return float64(e.sampleFallback.Value()) })
	}
	return e
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Cache returns the engine's cache (nil when uncached).
func (e *Engine) Cache() *Cache { return e.opts.Cache }

// FaultInjector returns the configured injector (nil when faults are
// off); the HTTP layer exports its counters.
func (e *Engine) FaultInjector() *fault.Injector { return e.opts.Fault }

// Drain stops feeding new jobs to the workers: running jobs finish
// normally, unfed jobs come back with Status Canceled so they can be
// checkpointed and re-run later. Idempotent; the engine stays drained.
func (e *Engine) Drain() { e.drainOnce.Do(func() { close(e.drain) }) }

// Draining reports whether Drain has been called.
func (e *Engine) Draining() bool {
	select {
	case <-e.drain:
		return true
	default:
		return false
	}
}

// Run executes jobs and returns one JobResult per job, in job order
// regardless of scheduling. Individual failures are reported in the
// corresponding JobResult; Run itself only stops early if ctx is
// cancelled or the engine drains (pending jobs then carry Status
// Canceled). When Options.Journal is set, completed jobs are recorded
// there and already-recorded jobs are served from the cache.
func (e *Engine) Run(ctx context.Context, jobs []Job) []JobResult {
	return e.RunJournaled(ctx, jobs, e.opts.Journal)
}

// RunJournaled is Run against an explicit journal (overriding the
// engine-wide Options.Journal): jobs whose keys the journal already
// records are resolved from the cache without occupying a worker, and
// every newly completed job is appended to it.
func (e *Engine) RunJournaled(ctx context.Context, jobs []Job, jl *Journal) []JobResult {
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	// Sampling stamps specs onto eligible jobs before anything reads a
	// key, so the journal, cache and results all agree on the job
	// identity.
	if e.opts.Sample {
		jobs = e.stampSampled(jobs)
	}
	// Resume pass: the journal's done set plus the cache replaces the
	// computation entirely. A done key whose cached results are gone is
	// simply recomputed — the journal is a hint, the cache is the data.
	pending := make([]int, 0, len(jobs))
	for i := range jobs {
		key := jobs[i].Key()
		if jl.Done(key) {
			if rs, ok := e.cacheGet(key); ok {
				out[i] = JobResult{Job: jobs[i], Key: key, Results: rs, Status: StatusOK, Cached: true}
				e.mResumed.Inc()
				e.mCompleted.Inc()
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return out
	}
	// The scheduler hands workers whole units: singletons on the scalar
	// path, (workload, insts, warmup) groups when batching is on.
	units := e.planUnits(jobs, pending)
	workers := min(e.opts.Workers, len(units))
	feedCh := make(chan []int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for unit := range feedCh {
				e.runUnit(ctx, jobs, unit, out, jl)
			}
		}()
	}
feed:
	for _, unit := range units {
		// A signaled stop always wins over handing out the next unit;
		// without this pre-check the select below picks randomly when a
		// worker is already waiting.
		select {
		case <-ctx.Done():
			break feed
		case <-e.drain:
			break feed
		default:
		}
		select {
		case feedCh <- unit:
		case <-ctx.Done():
			break feed
		case <-e.drain:
			break feed
		}
	}
	close(feedCh)
	wg.Wait()
	for i := range out {
		if out[i].Key == "" { // never scheduled
			reason := ctx.Err()
			if reason == nil {
				reason = ErrDraining
			}
			out[i] = JobResult{Job: jobs[i], Key: jobs[i].Key(), Err: reason.Error(), Status: StatusCanceled}
			e.mCanceled.Inc()
		}
	}
	return out
}

// cacheGet reads key from the cache without computing anything.
func (e *Engine) cacheGet(key string) ([]core.Result, bool) {
	if e.opts.Cache == nil {
		return nil, false
	}
	return e.opts.Cache.Get(key)
}

// cacheGetCounted is cacheGet with hit/miss accounting, used where a
// miss means the engine is about to compute the job itself.
func (e *Engine) cacheGetCounted(key string) ([]core.Result, bool) {
	if e.opts.Cache == nil {
		return nil, false
	}
	return e.opts.Cache.GetCounted(key)
}

// runOne resolves a single job through the cache (when present) with
// timeout and retry handling around the actual simulation.
func (e *Engine) runOne(ctx context.Context, j Job) JobResult {
	start := time.Now()
	e.mInflight.Add(1)
	defer e.mInflight.Add(-1)
	key := j.Key()
	jr := JobResult{Job: j, Key: key}
	compute := func() ([]core.Result, error) { return e.attempts(ctx, &j, key, &jr) }

	var rs []core.Result
	var err error
	if e.opts.Cache != nil {
		rs, jr.Cached, err = e.opts.Cache.Do(key, compute)
	} else {
		rs, err = compute()
	}
	switch {
	case err == nil:
		jr.Status = StatusOK
		e.mCompleted.Inc()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The job never got its full attempt budget: retryable work,
		// not a failure.
		jr.Err = err.Error()
		jr.Status = StatusCanceled
		e.mCanceled.Inc()
	default:
		jr.Err = err.Error()
		jr.Status = StatusFailed
		e.mFailed.Inc()
	}
	jr.Results = rs
	jr.Elapsed = time.Since(start)
	e.mJobSeconds.Observe(jr.Elapsed.Seconds())
	return jr
}

// attempts runs the simulation up to 1+Retries times, bounding each
// attempt by the per-job timeout and pausing per the backoff schedule.
// Permanent errors and context cancellation stop the retry loop early;
// the first panic's stack is captured into jr and logged exactly once
// per job, however many attempts panic.
func (e *Engine) attempts(ctx context.Context, j *Job, site string, jr *JobResult) ([]core.Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err // structural errors do not retry
	}
	var last error
	var slept time.Duration
	for try := 0; try <= e.opts.Retries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if try > 0 {
			d := e.opts.Backoff.Delay(site, try)
			if budget := e.opts.Backoff.Budget; budget > 0 && slept+d > budget {
				return nil, fmt.Errorf("retry budget %v exhausted: %w", budget, last)
			}
			if d > 0 {
				slept += d
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return nil, ctx.Err()
				}
			}
			e.mRetried.Inc()
		}
		rs, err := e.attempt(ctx, j, site)
		if err == nil {
			return rs, nil
		}
		var pe *PanicError
		if errors.As(err, &pe) && jr.Stack == "" {
			jr.Stack = string(pe.Stack)
			e.logf("runner: job %s panicked: %v\n%s", shortKey(site), pe.Value, pe.Stack)
		}
		last = fmt.Errorf("attempt %d/%d: %w", try+1, e.opts.Retries+1, err)
		if fault.IsPermanent(err) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, last
		}
	}
	return nil, last
}

// attempt runs one bounded execution. The simulation itself is pure CPU
// and cannot be interrupted mid-run, so on timeout the goroutine is
// abandoned to finish (and be discarded) while the job is reported as
// timed out — the bounded retry/error path keeps a straggler from
// wedging the whole sweep.
func (e *Engine) attempt(ctx context.Context, j *Job, site string) ([]core.Result, error) {
	if e.opts.Timeout <= 0 && ctx.Done() == nil && e.opts.Fault == nil {
		e.executed.Inc()
		return e.protectedSimulate(ctx, j, site)
	}
	type outcome struct {
		rs  []core.Result
		err error
	}
	ch := make(chan outcome, 1)
	e.executed.Inc()
	go func() {
		rs, err := e.protectedSimulate(ctx, j, site)
		ch <- outcome{rs, err}
	}()
	var timeout <-chan time.Time
	if e.opts.Timeout > 0 {
		t := time.NewTimer(e.opts.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-ch:
		return o.rs, o.err
	case <-timeout:
		return nil, fmt.Errorf("timed out after %v", e.opts.Timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// protectedSimulate runs one simulation with the engine's fault hooks
// and panic containment. An injected hang blocks until the context
// ends, so chaos runs need a cancelable context or a per-attempt
// Timeout (the abandoned goroutine drains once the sweep's context is
// done). The recover here backstops test stubs and injected panics;
// real simulations already recover inside Job.Execute.
func (e *Engine) protectedSimulate(ctx context.Context, j *Job, site string) (rs []core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if err := e.injectFaults(ctx, site); err != nil {
		return nil, err
	}
	return e.simulate(j)
}

// injectFaults applies the configured injector's slow, hang, panic and
// exec faults for site (panic faults panic, to be recovered by the
// caller's containment). A nil injector injects nothing.
func (e *Engine) injectFaults(ctx context.Context, site string) error {
	inj := e.opts.Fault
	if inj == nil {
		return nil
	}
	if d := inj.SlowDelay(site); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if inj.Fire(fault.Hang, site) {
		<-ctx.Done()
		return ctx.Err()
	}
	if inj.Fire(fault.Panic, site) {
		panic(inj.Err(fault.Panic, site))
	}
	if inj.Fire(fault.Exec, site) {
		return inj.Err(fault.Exec, site)
	}
	return nil
}

// logf forwards to Options.Logf when configured.
func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// shortKey abbreviates a content address for log lines.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// Executed returns how many simulations the engine actually started
// (cache hits and coalesced waits do not count).
func (e *Engine) Executed() uint64 { return e.executed.Value() }

// Batched returns how many jobs were resolved by the lock-step batch
// kernel.
func (e *Engine) Batched() uint64 { return e.batched.Value() }

// BatchFallbacks returns how many batch units fell back to scalar
// per-job execution after a batch-level error.
func (e *Engine) BatchFallbacks() uint64 { return e.batchFallback.Value() }

// FirstError returns the first failed job's error, or nil.
func FirstError(rs []JobResult) error {
	for i := range rs {
		if rs[i].Err != "" {
			return fmt.Errorf("job %s (%s on %v): %s",
				shortKey(rs[i].Key), rs[i].Job.Config.Name, rs[i].Job.Workloads, rs[i].Err)
		}
	}
	return nil
}

// Flatten concatenates the per-job results in job order, returning the
// first error encountered instead if any job failed.
func Flatten(rs []JobResult) ([]core.Result, error) {
	if err := FirstError(rs); err != nil {
		return nil, err
	}
	var out []core.Result
	for i := range rs {
		out = append(out, rs[i].Results...)
	}
	return out, nil
}
