package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"catch/internal/core"
	"catch/internal/stats"
	"catch/internal/telemetry"
)

// Options configures an Engine.
type Options struct {
	// Workers bounds the worker pool; <=0 means GOMAXPROCS.
	Workers int
	// Cache memoizes and coalesces jobs; nil runs every job fresh.
	Cache *Cache
	// Timeout bounds one execution attempt; 0 means no limit.
	Timeout time.Duration
	// Retries is the number of extra attempts after a failed or
	// timed-out execution.
	Retries int
	// Metrics, when non-nil, receives the engine's job counters and
	// latency histogram (catch_engine_*). Handles are nil-safe, so an
	// unmetered engine pays nothing.
	Metrics *telemetry.Registry
}

// Engine shards jobs across a bounded worker pool. Each execution
// builds a private core.System (System is not goroutine-safe and warm
// state must not leak between jobs), so results are independent of the
// worker count.
type Engine struct {
	opts Options
	// simulate is the job executor; tests substitute it to count or
	// delay executions.
	simulate func(*Job) ([]core.Result, error)

	executed stats.AtomicCounter

	// Metric handles (nil when Options.Metrics is nil; every update on
	// a nil handle is a no-op).
	mInflight   *telemetry.Gauge
	mCompleted  *telemetry.Counter
	mFailed     *telemetry.Counter
	mRetried    *telemetry.Counter
	mJobSeconds *telemetry.Histogram
}

// JobResult pairs a job with its outcome. Exactly one of Results/Err
// is meaningful; a failed job never aborts the rest of the sweep.
type JobResult struct {
	Job     Job           `json:"job"`
	Key     string        `json:"key"`
	Results []core.Result `json:"results,omitempty"`
	Err     string        `json:"error,omitempty"`
	Cached  bool          `json:"cached"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// New builds an engine.
func New(opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{opts: opts}
	e.simulate = func(j *Job) ([]core.Result, error) { return j.Execute() }
	if r := opts.Metrics; r != nil {
		e.mInflight = r.Gauge("catch_engine_jobs_inflight",
			"Jobs currently being resolved by the engine.")
		e.mCompleted = r.Counter("catch_engine_jobs_completed_total",
			"Jobs resolved successfully (including cache hits).")
		e.mFailed = r.Counter("catch_engine_jobs_failed_total",
			"Jobs that exhausted their attempts with an error.")
		e.mRetried = r.Counter("catch_engine_jobs_retried_total",
			"Extra simulation attempts after a failure or timeout.")
		e.mJobSeconds = r.Histogram("catch_engine_job_seconds",
			"Wall-clock latency of one job resolution.",
			0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 120)
		r.CounterFunc("catch_engine_executions_total",
			"Simulations actually started (cache hits and coalesced waits excluded).",
			func() float64 { return float64(e.executed.Value()) })
	}
	return e
}

// Workers returns the configured pool size.
func (e *Engine) Workers() int { return e.opts.Workers }

// Cache returns the engine's cache (nil when uncached).
func (e *Engine) Cache() *Cache { return e.opts.Cache }

// Run executes jobs and returns one JobResult per job, in job order
// regardless of scheduling. Individual failures are reported in the
// corresponding JobResult; Run itself only stops early if ctx is
// cancelled (pending jobs then carry the context error).
func (e *Engine) Run(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	if len(jobs) == 0 {
		return out
	}
	workers := e.opts.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = e.runOne(ctx, jobs[i])
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	for i := range out {
		if out[i].Key == "" { // never scheduled
			out[i] = JobResult{Job: jobs[i], Key: jobs[i].Key(), Err: ctx.Err().Error()}
		}
	}
	return out
}

// runOne resolves a single job through the cache (when present) with
// timeout and retry handling around the actual simulation.
func (e *Engine) runOne(ctx context.Context, j Job) JobResult {
	start := time.Now()
	e.mInflight.Add(1)
	defer e.mInflight.Add(-1)
	key := j.Key()
	jr := JobResult{Job: j, Key: key}
	compute := func() ([]core.Result, error) { return e.attempts(ctx, &j) }

	var rs []core.Result
	var err error
	if e.opts.Cache != nil {
		rs, jr.Cached, err = e.opts.Cache.Do(key, compute)
	} else {
		rs, err = compute()
	}
	if err != nil {
		jr.Err = err.Error()
		e.mFailed.Inc()
	} else {
		e.mCompleted.Inc()
	}
	jr.Results = rs
	jr.Elapsed = time.Since(start)
	e.mJobSeconds.Observe(jr.Elapsed.Seconds())
	return jr
}

// attempts runs the simulation up to 1+Retries times, bounding each
// attempt by the per-job timeout.
func (e *Engine) attempts(ctx context.Context, j *Job) ([]core.Result, error) {
	if err := j.Validate(); err != nil {
		return nil, err // structural errors do not retry
	}
	var last error
	for try := 0; try <= e.opts.Retries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if try > 0 {
			e.mRetried.Inc()
		}
		rs, err := e.attempt(ctx, j)
		if err == nil {
			return rs, nil
		}
		last = fmt.Errorf("attempt %d/%d: %w", try+1, e.opts.Retries+1, err)
	}
	return nil, last
}

// attempt runs one bounded execution. The simulation itself is pure CPU
// and cannot be interrupted mid-run, so on timeout the goroutine is
// abandoned to finish (and be discarded) while the job is reported as
// timed out — the bounded retry/error path keeps a straggler from
// wedging the whole sweep.
func (e *Engine) attempt(ctx context.Context, j *Job) ([]core.Result, error) {
	if e.opts.Timeout <= 0 && ctx.Done() == nil {
		e.executed.Inc()
		return e.simulate(j)
	}
	type outcome struct {
		rs  []core.Result
		err error
	}
	ch := make(chan outcome, 1)
	e.executed.Inc()
	go func() {
		rs, err := e.simulate(j)
		ch <- outcome{rs, err}
	}()
	var timeout <-chan time.Time
	if e.opts.Timeout > 0 {
		t := time.NewTimer(e.opts.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-ch:
		return o.rs, o.err
	case <-timeout:
		return nil, fmt.Errorf("timed out after %v", e.opts.Timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Executed returns how many simulations the engine actually started
// (cache hits and coalesced waits do not count).
func (e *Engine) Executed() uint64 { return e.executed.Value() }

// FirstError returns the first failed job's error, or nil.
func FirstError(rs []JobResult) error {
	for i := range rs {
		if rs[i].Err != "" {
			return fmt.Errorf("job %s (%s on %v): %s",
				rs[i].Key[:12], rs[i].Job.Config.Name, rs[i].Job.Workloads, rs[i].Err)
		}
	}
	return nil
}

// Flatten concatenates the per-job results in job order, returning the
// first error encountered instead if any job failed.
func Flatten(rs []JobResult) ([]core.Result, error) {
	if err := FirstError(rs); err != nil {
		return nil, err
	}
	var out []core.Result
	for i := range rs {
		out = append(out, rs[i].Results...)
	}
	return out, nil
}
