package runner

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/telemetry"
)

// TestShedWhenSaturated: with ShedAfter set, the wait queue is bounded
// — overflow requests get an immediate 503 with Retry-After instead of
// piling onto the limiter.
func TestShedWhenSaturated(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Options{Workers: 1, Cache: NewCache(""), Metrics: reg})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	e.simulate = func(j *Job) ([]core.Result, error) {
		started <- struct{}{}
		<-block
		return []core.Result{{Workload: j.Workloads[0]}}, nil
	}
	s := &Server{Engine: e, Resolve: testResolve, MaxInflight: 1, ShedAfter: 1, Metrics: reg}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	post := func(name string) {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Config: "catch", Workload: name, Insts: 1000, Warmup: 100,
		})
		codes <- resp.StatusCode
	}
	wg.Add(1)
	go post("hmmer")
	<-started // A holds the only slot
	wg.Add(1)
	go post("mcf")
	for i := 0; s.waiting.Load() != 1; i++ { // B is queued
		if i > 500 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// C overflows the queue: shed synchronously.
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "catch", Workload: "tpcc", Insts: 1000, Warmup: 100,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	close(block)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("queued request finished with %d", code)
		}
	}
	if _, raw := getURL(t, ts.URL+"/metrics"); !strings.Contains(string(raw), "catch_http_shed_total 1") {
		t.Fatalf("shed not counted:\n%s", raw)
	}
}

// TestDrainEndpoint: POST /v1/drain flips the server into drain mode —
// new work is shed, health and metrics report it.
func TestDrainEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Options{Workers: 1, Cache: NewCache(""), Metrics: reg})
	s := &Server{Engine: e, Resolve: testResolve, Metrics: reg}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJSON(t, ts.URL+"/v1/drain", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d: %s", resp.StatusCode, raw)
	}
	var body struct {
		Draining bool `json:"draining"`
		Inflight int  `json:"inflight"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if !body.Draining || body.Inflight != 0 {
		t.Fatalf("drain body = %+v", body)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "catch", Workload: "mcf"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain run = %d, want 503", resp.StatusCode)
	}
	if _, raw := getURL(t, ts.URL+"/healthz"); !strings.Contains(string(raw), `"draining": true`) {
		t.Fatalf("healthz does not report draining:\n%s", raw)
	}
	if _, raw := getURL(t, ts.URL+"/metrics"); !strings.Contains(string(raw), "catch_http_draining 1") {
		t.Fatalf("metrics do not report draining:\n%s", raw)
	}
}

// TestRequestTimeoutMapsCanceledRunTo504: a server-side deadline cuts
// the job short and the response is 504 with Status canceled, so
// clients can tell "retry this" from "this is broken".
func TestRequestTimeoutMapsCanceledRunTo504(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	e.simulate = func(j *Job) ([]core.Result, error) {
		time.Sleep(300 * time.Millisecond)
		return []core.Result{{Workload: j.Workloads[0]}}, nil
	}
	s := &Server{Engine: e, Resolve: testResolve, RequestTimeout: 30 * time.Millisecond}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "catch", Workload: "mcf", Insts: 1000, Warmup: 100,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != StatusCanceled {
		t.Fatalf("status = %q, want canceled: %s", jr.Status, raw)
	}
}

// TestResumableSweepJournalsAndResumes: a resumable sweep writes a
// journal keyed by the sweep's content, and re-POSTing the same sweep
// serves every job from the journal+cache without re-executing.
func TestResumableSweepJournalsAndResumes(t *testing.T) {
	dir := t.TempDir()
	e := New(Options{Workers: 2, Cache: NewCache(filepath.Join(dir, "cache"))})
	s := &Server{Engine: e, Resolve: testResolve, JournalDir: filepath.Join(dir, "journals")}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := SweepRequest{
		Configs: []string{"baseline-excl"}, Workloads: []string{"hmmer", "mcf"},
		Insts: 5_000, Warmup: 1_000, Resumable: true,
	}
	var body struct {
		Jobs     []JobResult `json:"jobs"`
		Journal  string      `json:"journal"`
		Resumed  int         `json:"resumed"`
		Canceled int         `json:"canceled"`
	}
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep 1 = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Journal == "" || body.Resumed != 0 || body.Canceled != 0 || len(body.Jobs) != 2 {
		t.Fatalf("sweep 1 body: journal=%q resumed=%d canceled=%d jobs=%d",
			body.Journal, body.Resumed, body.Canceled, len(body.Jobs))
	}
	if e.Executed() != 2 {
		t.Fatalf("executed %d", e.Executed())
	}

	resp, raw = postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep 2 = %d: %s", resp.StatusCode, raw)
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Resumed != 2 {
		t.Fatalf("sweep 2 resumed = %d, want 2", body.Resumed)
	}
	if e.Executed() != 2 {
		t.Fatalf("re-POST re-executed: %d", e.Executed())
	}
	for i := range body.Jobs {
		if !body.Jobs[i].Cached || body.Jobs[i].Status != StatusOK {
			t.Fatalf("sweep 2 job %d: %+v", i, body.Jobs[i])
		}
	}
}

// TestServerMemoryOnlyModeUnderDiskFailure is the acceptance check:
// with every disk read and write failing, the breaker trips open and
// the server keeps serving /v1/run correctly in memory-only mode, with
// the breaker state visible in /metrics.
func TestServerMemoryOnlyModeUnderDiskFailure(t *testing.T) {
	reg := telemetry.NewRegistry()
	inj := fault.NewInjector(fault.Plan{Seed: 3, Rules: map[fault.Kind]fault.Rule{
		fault.DiskRead:  {Prob: 1, Times: 1 << 20}, // the disk never heals
		fault.DiskWrite: {Prob: 1, Times: 1 << 20},
	}})
	cache := NewCacheOpts(CacheOptions{
		Dir:     t.TempDir(),
		FS:      fault.InjectFS{FS: fault.OS{}, Inj: inj},
		Breaker: fault.NewBreaker(2, 1<<20),
	})
	// The injector doubles as Options.Fault so its per-kind counters are
	// exported (its job-level rules are all zero — disk kinds only).
	e := New(Options{Workers: 2, Cache: cache, Metrics: reg, Fault: inj})
	s := &Server{Engine: e, Resolve: testResolve, Metrics: reg}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, name := range []string{"hmmer", "mcf", "tpcc"} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
			Config: "baseline-excl", Workload: name, Insts: 5_000, Warmup: 1_000,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s under disk failure = %d: %s", name, resp.StatusCode, raw)
		}
		var jr JobResult
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatal(err)
		}
		if len(jr.Results) != 1 || jr.Results[0].IPC <= 0 {
			t.Fatalf("%s: bad result %s", name, raw)
		}
	}
	if cache.Breaker().State() != fault.StateOpen {
		t.Fatalf("breaker = %v, want open", cache.Breaker().State())
	}
	// Memory hits still work: the same job again is served cached.
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "baseline-excl", Workload: "hmmer", Insts: 5_000, Warmup: 1_000,
	})
	var jr JobResult
	if resp.StatusCode != http.StatusOK || json.Unmarshal(raw, &jr) != nil || !jr.Cached {
		t.Fatalf("cached rerun: %d cached=%v", resp.StatusCode, jr.Cached)
	}

	_, raw = getURL(t, ts.URL+"/metrics")
	text := string(raw)
	for _, want := range []string{
		"catch_cache_breaker_state 2",
		"catch_cache_breaker_trips_total 1",
		`catch_cache_requests_total{kind="disk_err"}`,
		`catch_fault_injected_total{kind="disk-read"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}
