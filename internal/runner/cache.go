package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"catch/internal/core"
	"catch/internal/fault"
	"catch/internal/stats"
)

// CacheStats counts cache traffic. Coalesced requests waited on an
// identical in-flight computation instead of starting their own.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	DiskHits  uint64 `json:"diskHits"`
	BadDisk   uint64 `json:"badDisk"` // corrupted on-disk entries treated as misses
	// DiskErrs counts disk I/O failures (reads and writes); enough of
	// them in a row trips the breaker into memory-only mode.
	DiskErrs uint64 `json:"diskErrs"`
	// Quarantined counts corrupt entries renamed aside to *.corrupt so
	// they are inspectable and never re-read.
	Quarantined uint64 `json:"quarantined"`
}

// CacheOptions configures a Cache beyond the directory.
type CacheOptions struct {
	// Dir is the persistence directory; empty means memory-only.
	Dir string
	// FS is the filesystem the disk layer goes through; nil means the
	// real one. Chaos tests substitute fault.InjectFS.
	FS fault.FS
	// Breaker, when non-nil, guards the disk layer: consecutive I/O
	// failures trip it and the cache degrades to memory-only until a
	// half-open probe succeeds. nil leaves the disk layer unguarded.
	Breaker *fault.Breaker
}

// Cache is a content-addressed memo of job results keyed by Job.Key.
// Entries live in memory and, when a directory is configured, as one
// JSON file per key so a later process can reuse them. Duplicate
// concurrent requests for one key are coalesced onto a single
// computation.
type Cache struct {
	dir     string
	fs      fault.FS
	breaker *fault.Breaker

	mu       sync.Mutex
	mem      map[string][]core.Result
	inflight map[string]*flight

	hits        stats.AtomicCounter
	misses      stats.AtomicCounter
	coalesced   stats.AtomicCounter
	diskHits    stats.AtomicCounter
	badDisk     stats.AtomicCounter
	diskErrs    stats.AtomicCounter
	quarantined stats.AtomicCounter
}

type flight struct {
	done chan struct{}
	res  []core.Result
	err  error
}

// NewCache builds a cache. dir may be empty for a memory-only cache;
// otherwise it is created on first persist.
func NewCache(dir string) *Cache {
	return NewCacheOpts(CacheOptions{Dir: dir})
}

// NewCacheOpts builds a cache with an explicit filesystem and breaker.
func NewCacheOpts(o CacheOptions) *Cache {
	if o.FS == nil {
		o.FS = fault.OS{}
	}
	return &Cache{
		dir:      o.Dir,
		fs:       o.FS,
		breaker:  o.Breaker,
		mem:      make(map[string][]core.Result),
		inflight: make(map[string]*flight),
	}
}

// Breaker returns the disk-layer breaker (nil when unguarded).
func (c *Cache) Breaker() *fault.Breaker { return c.breaker }

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:        c.hits.Value(),
		Misses:      c.misses.Value(),
		Coalesced:   c.coalesced.Value(),
		DiskHits:    c.diskHits.Value(),
		BadDisk:     c.badDisk.Value(),
		DiskErrs:    c.diskErrs.Value(),
		Quarantined: c.quarantined.Value(),
	}
}

// HitRate returns hits+coalesced over all requests.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	return stats.Ratio(s.Hits+s.Coalesced, total)
}

// Get returns the cached results for key (memory first, then disk)
// without computing anything. An empty entry is never returned as a
// hit: a quarantine racing a concurrent read can briefly surface a
// result-less record, and serving it would look like a successful
// lookup with no data.
func (c *Cache) Get(key string) ([]core.Result, bool) {
	if rs, ok := c.GetMem(key); ok {
		return rs, true
	}
	if rs, ok := c.GetDisk(key); ok {
		c.mu.Lock()
		c.mem[key] = rs
		c.mu.Unlock()
		return rs, true
	}
	return nil, false
}

// GetCounted is Get with hit/miss accounting. It is for callers that
// resolve a miss by computing outside the cache's singleflight — the
// batch scheduler's unit pre-check — so the traffic counters tell the
// same story in batch and scalar mode. Plain Get stays uncounted for
// probes that do not imply a computation (the cluster tier walk, the
// journal resume pass).
func (c *Cache) GetCounted(key string) ([]core.Result, bool) {
	if rs, ok := c.GetMem(key); ok {
		c.hits.Inc()
		return rs, true
	}
	if rs, ok := c.GetDisk(key); ok {
		c.hits.Inc()
		c.diskHits.Inc()
		c.mu.Lock()
		c.mem[key] = rs
		c.mu.Unlock()
		return rs, true
	}
	c.misses.Inc()
	return nil, false
}

// GetMem returns the in-memory entry for key only, never touching the
// disk layer. It is the top tier of the cluster's tiered read path.
func (c *Cache) GetMem(key string) ([]core.Result, bool) {
	c.mu.Lock()
	rs, ok := c.mem[key]
	c.mu.Unlock()
	if !ok || len(rs) == 0 {
		return nil, false
	}
	return rs, true
}

// GetDisk reads the on-disk entry for key only, without populating the
// memory layer (tier promotion is the caller's decision). Disk health
// feeds the cache's breaker exactly as in the combined path.
func (c *Cache) GetDisk(key string) ([]core.Result, bool) {
	rs, ok := c.loadDisk(key)
	if !ok || len(rs) == 0 {
		return nil, false
	}
	return rs, true
}

// Put inserts an externally computed result (a peer fetch or a
// work-steal fill) into both layers, exactly as a local compute would
// have. Empty result sets are rejected: an entry with no results is
// indistinguishable from the quarantine race Get guards against.
func (c *Cache) Put(key string, rs []core.Result) {
	c.PutMem(key, rs)
	c.PutDisk(key, rs)
}

// PutMem inserts into the memory layer only (tier promotion).
func (c *Cache) PutMem(key string, rs []core.Result) {
	if len(rs) == 0 || !ValidKey(key) {
		return
	}
	c.mu.Lock()
	c.mem[key] = rs
	c.mu.Unlock()
}

// PutDisk persists to the disk layer only (tier promotion; breaker
// rules as in the compute path — persistence failures never surface).
func (c *Cache) PutDisk(key string, rs []core.Result) {
	if len(rs) == 0 || !ValidKey(key) {
		return
	}
	c.storeDisk(key, rs)
}

// Keys manifests every key this cache holds — the union of the memory
// layer and the on-disk entries — sorted, so two nodes can diff their
// manifests deterministically during anti-entropy repair. Disk health
// feeds the breaker exactly as reads do; with the breaker open (or on
// a listing error) the manifest degrades to the memory layer alone,
// which only makes repair conservative, never wrong: a key missing
// from a manifest is re-filled, and fills are idempotent under content
// addressing.
func (c *Cache) Keys() []string {
	seen := make(map[string]bool)
	c.mu.Lock()
	for k := range c.mem {
		seen[k] = true
	}
	c.mu.Unlock()
	if c.dir != "" && c.breaker.Allow() {
		names, err := c.fs.ReadDir(c.dir)
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				c.diskErrs.Inc()
				c.breaker.Failure()
			}
		} else {
			c.breaker.Success()
			for _, name := range names {
				key, isEntry := strings.CutSuffix(name, ".json")
				if isEntry && ValidKey(key) {
					seen[key] = true
				}
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Do returns the results for key, computing them at most once across
// all concurrent callers. cached reports whether the result came from
// the cache (or from another caller's in-flight computation) rather
// than from this caller's compute. Errors are not cached.
func (c *Cache) Do(key string, compute func() ([]core.Result, error)) (rs []core.Result, cached bool, err error) {
	c.mu.Lock()
	if rs, ok := c.mem[key]; ok {
		c.mu.Unlock()
		c.hits.Inc()
		return rs, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		<-f.done
		return f.res, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	if rs, ok := c.loadDisk(key); ok {
		c.hits.Inc()
		c.diskHits.Inc()
		c.settle(key, f, rs, nil)
		return rs, true, nil
	}

	c.misses.Inc()
	rs, err = compute()
	c.settle(key, f, rs, err)
	if err == nil {
		c.storeDisk(key, rs)
	}
	return rs, false, err
}

// settle publishes a flight's outcome and caches successes in memory.
func (c *Cache) settle(key string, f *flight, rs []core.Result, err error) {
	f.res, f.err = rs, err
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.mem[key] = rs
	}
	c.mu.Unlock()
	close(f.done)
}

var keyPattern = regexp.MustCompile(`^[0-9a-f]{16,64}$`)

// ValidKey reports whether key has the shape of a content address (a
// plain lowercase-hex digest). The HTTP layers validate client-supplied
// keys with it up front so a malformed key is a 400, never a disk probe
// or a 500.
func ValidKey(key string) bool { return keyPattern.MatchString(key) }

// path maps a key to its on-disk file, rejecting anything that is not
// a plain hex key (the HTTP layer passes client-supplied keys through).
func (c *Cache) path(key string) (string, bool) {
	if c.dir == "" || !keyPattern.MatchString(key) {
		return "", false
	}
	return filepath.Join(c.dir, key+".json"), true
}

// loadDisk reads one entry. Disk health feeds the breaker: a missing
// file is a healthy miss, a real I/O error a failure, and when the
// breaker is open the disk is not touched at all (memory-only mode). A
// corrupt entry is quarantined — renamed to *.corrupt on first
// detection so it is kept for inspection but never re-read — and
// treated as a miss, never a failure: the job simply recomputes and
// persists a fresh entry.
func (c *Cache) loadDisk(key string) ([]core.Result, bool) {
	p, ok := c.path(key)
	if !ok {
		return nil, false
	}
	if !c.breaker.Allow() {
		return nil, false
	}
	raw, err := c.fs.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			c.breaker.Success()
			return nil, false
		}
		c.diskErrs.Inc()
		c.breaker.Failure()
		return nil, false
	}
	c.breaker.Success()
	var rs []core.Result
	if err := json.Unmarshal(raw, &rs); err != nil || len(rs) == 0 {
		c.badDisk.Inc()
		c.quarantine(p)
		return nil, false
	}
	return rs, true
}

// quarantine renames a corrupt entry aside, best-effort.
func (c *Cache) quarantine(p string) {
	if err := c.fs.Rename(p, p+".corrupt"); err == nil {
		c.quarantined.Inc()
	}
}

// storeDisk persists an entry via temp-file rename so readers never
// observe a half-written file. Persistence failures only feed the
// breaker, never the caller: the disk layer is an optimization, not a
// correctness need.
func (c *Cache) storeDisk(key string, rs []core.Result) {
	p, ok := c.path(key)
	if !ok {
		return
	}
	if !c.breaker.Allow() {
		return
	}
	if err := c.fs.MkdirAll(c.dir, 0o755); err != nil {
		c.diskErrs.Inc()
		c.breaker.Failure()
		return
	}
	raw, err := json.Marshal(rs)
	if err != nil {
		return
	}
	// The tmp name is deterministic per key: concurrent writers of one
	// key are already singleflighted, and the final rename is atomic.
	tmp := p + ".tmp"
	if err := c.fs.WriteFile(tmp, raw, 0o644); err != nil {
		c.diskErrs.Inc()
		c.breaker.Failure()
		return
	}
	if err := c.fs.Rename(tmp, p); err != nil {
		c.diskErrs.Inc()
		c.breaker.Failure()
		_ = c.fs.Remove(tmp) // best-effort cleanup of the temp file
		return
	}
	c.breaker.Success()
}

// String renders the counters for human-readable summaries.
func (s CacheStats) String() string {
	return fmt.Sprintf("hits %d (disk %d)  misses %d  coalesced %d  corrupt %d (quarantined %d)  disk-errs %d  hit-rate %.1f%%",
		s.Hits, s.DiskHits, s.Misses, s.Coalesced, s.BadDisk, s.Quarantined, s.DiskErrs, 100*s.HitRate())
}
