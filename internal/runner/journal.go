package runner

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Journal is an append-only record of completed jobs, keyed by the
// same content addresses as the result cache: the header line carries
// the sweep's job manifest, every following line one completed key.
// Results themselves live in the cache — on resume the journal's done
// set tells the engine which keys it may serve straight from there,
// so an interrupted sweep restarts from the last completed job instead
// of from scratch.
//
// The file is line-oriented JSON so a crash mid-append costs at most
// the torn tail: OpenJournal truncates the file back to the last fully
// written line and the lost completions are simply recomputed (or
// re-served by the cache), never trusted.
type Journal struct {
	path string

	mu        sync.Mutex
	f         *os.File
	jobs      []Job
	done      map[string]bool
	pending   int // appends since the last fsync
	syncEvery int
	skipped   int // lines discarded as a corrupt tail
}

// journalHeader is the journal's first line.
type journalHeader struct {
	V    int   `json:"v"`
	Jobs []Job `json:"jobs,omitempty"`
}

// journalEntry is one completion record.
type journalEntry struct {
	Done string `json:"done"`
}

// OpenJournal opens (or creates) the journal at path. jobs is the
// sweep's manifest: for a new journal it is stored in the header so a
// later `-resume` can reconstruct the sweep; when reopening, a
// non-empty stored manifest must match it key-for-key (resuming a
// journal against a different sweep is a hard error, not silent
// corruption). Pass nil jobs to adopt whatever manifest the file
// holds. syncEvery batches fsyncs: one flush per that many appended
// records (<=0 means 16); Close always flushes the remainder.
func OpenJournal(path string, jobs []Job, syncEvery int) (*Journal, error) {
	if syncEvery <= 0 {
		syncEvery = 16
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("journal %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal %s: %w", path, err)
	}
	jl := &Journal{path: path, f: f, jobs: jobs, done: make(map[string]bool), syncEvery: syncEvery}
	if err := jl.replay(jobs); err != nil {
		_ = f.Close() // the replay error is the one worth reporting
		return nil, err
	}
	return jl, nil
}

// replay loads an existing journal, tolerating a torn tail: parsing
// stops at the first malformed or newline-less line, the file is
// truncated back to the end of the last good one, and the discarded
// lines are only counted (SkippedLines), never trusted.
func (jl *Journal) replay(jobs []Job) error {
	raw, err := io.ReadAll(jl.f)
	if err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if len(raw) == 0 {
		return jl.writeHeader(jobs)
	}
	off, lineNo := 0, 0
	for off < len(raw) {
		nl := bytes.IndexByte(raw[off:], '\n')
		if nl < 0 { // torn tail: the append never completed
			jl.skipped += countLines(raw[off:])
			return jl.truncateTo(off, lineNo == 0, jobs)
		}
		line := raw[off : off+nl]
		if lineNo == 0 {
			var h journalHeader
			if json.Unmarshal(line, &h) != nil || h.V != 1 {
				// An unreadable header means the file never got past
				// creation (or is not a journal): start it over. No
				// completion can be lost — none was ever trusted.
				jl.skipped += countLines(raw[off:])
				return jl.truncateTo(0, true, jobs)
			}
			if err := jl.adoptManifest(h.Jobs, jobs); err != nil {
				return err
			}
		} else {
			var e journalEntry
			if json.Unmarshal(line, &e) != nil || e.Done == "" {
				jl.skipped += countLines(raw[off:])
				return jl.truncateTo(off, false, jobs)
			}
			jl.done[e.Done] = true
		}
		off += nl + 1
		lineNo++
	}
	_, err = jl.f.Seek(0, io.SeekEnd)
	return err
}

// adoptManifest reconciles the stored manifest with the caller's jobs.
func (jl *Journal) adoptManifest(stored, jobs []Job) error {
	if len(stored) == 0 {
		return nil
	}
	if jobs == nil {
		jl.jobs = stored
		return nil
	}
	if len(stored) != len(jobs) {
		return fmt.Errorf("journal %s: manifest has %d jobs, sweep has %d",
			jl.path, len(stored), len(jobs))
	}
	for i := range jobs {
		if stored[i].Key() != jobs[i].Key() {
			return fmt.Errorf("journal %s: job %d does not match the stored manifest", jl.path, i)
		}
	}
	return nil
}

// truncateTo cuts the file back to off and, when the header itself was
// lost, rewrites it.
func (jl *Journal) truncateTo(off int, rewriteHeader bool, jobs []Job) error {
	if err := jl.f.Truncate(int64(off)); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if _, err := jl.f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if rewriteHeader {
		return jl.writeHeader(jobs)
	}
	return nil
}

// writeHeader appends the header line and flushes it; callers hold the
// file at the write position.
func (jl *Journal) writeHeader(jobs []Job) error {
	line, err := json.Marshal(journalHeader{V: 1, Jobs: jobs})
	if err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if _, err := jl.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	if err := jl.f.Sync(); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	return nil
}

// countLines counts the (possibly unterminated) lines in a byte tail.
func countLines(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	n := bytes.Count(b, []byte{'\n'})
	if b[len(b)-1] != '\n' {
		n++
	}
	return n
}

// Record appends one completed key, deduplicating repeats. Appends are
// fsynced in batches of syncEvery; an error leaves the journal usable
// (the key is simply not marked done). Nil-safe.
func (jl *Journal) Record(key string) error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return fmt.Errorf("journal %s: closed", jl.path)
	}
	if jl.done[key] {
		return nil
	}
	line, err := json.Marshal(journalEntry{Done: key})
	if err != nil {
		return err
	}
	if _, err := jl.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal %s: %w", jl.path, err)
	}
	jl.done[key] = true
	jl.pending++
	if jl.pending >= jl.syncEvery {
		jl.pending = 0
		if err := jl.f.Sync(); err != nil {
			return fmt.Errorf("journal %s: %w", jl.path, err)
		}
	}
	return nil
}

// Done reports whether key is recorded as completed. Nil-safe.
func (jl *Journal) Done(key string) bool {
	if jl == nil {
		return false
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.done[key]
}

// DoneCount returns how many distinct completions are recorded.
func (jl *Journal) DoneCount() int {
	if jl == nil {
		return 0
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return len(jl.done)
}

// Jobs returns the sweep manifest (the caller's, or the one adopted
// from the file header when opened with nil jobs).
func (jl *Journal) Jobs() []Job {
	if jl == nil {
		return nil
	}
	return jl.jobs
}

// SkippedLines reports how many corrupt-tail lines replay discarded.
func (jl *Journal) SkippedLines() int {
	if jl == nil {
		return 0
	}
	return jl.skipped
}

// Path returns the journal's file path.
func (jl *Journal) Path() string {
	if jl == nil {
		return ""
	}
	return jl.path
}

// Close flushes pending appends and closes the file. Nil-safe and
// idempotent.
func (jl *Journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if jl.f == nil {
		return nil
	}
	serr := jl.f.Sync()
	cerr := jl.f.Close()
	jl.f = nil
	if serr != nil {
		return fmt.Errorf("journal %s: %w", jl.path, serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal %s: %w", jl.path, cerr)
	}
	return nil
}
