package runner

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/trace"
)

// The batch scheduler groups a sweep's single-thread jobs by the
// (workload, insts, warmup) tuple they share, materializes that tuple's
// trace once, and steps every configuration in the group through it
// with one lock-step core.RunBatch call. Each job's result then fans
// back out to its own content-addressed cache key and journal record,
// so catchd, the cluster coordinator and the resume path consume batch
// results exactly as scalar ones. Anything the lock-step kernel cannot
// express — multi-programmed jobs, singleton groups, or a unit that
// errors, times out or hits an injected fault — runs through the
// unchanged scalar path.

// batchKey groups jobs that can share one materialized trace.
type batchKey struct {
	workload string
	insts    int64
	warmup   int64
}

// batchEligible reports whether j can join a lock-step unit (the batch
// kernel drives exactly one core per system, and sampled jobs resolve
// through the planner instead).
func batchEligible(j *Job) bool { return len(j.Workloads) == 1 && j.Sample == nil }

// planUnits partitions the pending job indexes into execution units.
// With batching off every unit is a singleton, preserving the scalar
// scheduler exactly. With it on, eligible jobs group by batchKey in
// first-appearance order and oversized groups split at BatchSize, so
// unit order (and therefore journal and cache fill order) is a
// deterministic function of the job list.
func (e *Engine) planUnits(jobs []Job, pending []int) [][]int {
	if !e.opts.Batch {
		units := make([][]int, len(pending))
		for k, i := range pending {
			units[k] = []int{i}
		}
		return units
	}
	groupOf := make(map[batchKey]int)
	var groups [][]int
	for _, i := range pending {
		j := &jobs[i]
		if !batchEligible(j) {
			groups = append(groups, []int{i})
			continue
		}
		k := batchKey{workload: j.Workloads[0], insts: j.Insts, warmup: j.Warmup}
		gi, ok := groupOf[k]
		if !ok {
			groupOf[k] = len(groups)
			groups = append(groups, []int{i})
			continue
		}
		groups[gi] = append(groups[gi], i)
	}
	size := e.opts.BatchSize
	var units [][]int
	for _, g := range groups {
		for len(g) > size {
			units = append(units, g[:size])
			g = g[size:]
		}
		if len(g) > 0 {
			units = append(units, g)
		}
	}
	return units
}

// runUnit resolves one unit, writing a JobResult for every index it
// covers and journaling each completion.
func (e *Engine) runUnit(ctx context.Context, jobs []Job, unit []int, out []JobResult, jl *Journal) {
	if len(unit) == 1 {
		i := unit[0]
		out[i] = e.runOne(ctx, jobs[i])
		e.journalDone(jl, &out[i])
		return
	}
	e.runBatchUnit(ctx, jobs, unit, out, jl)
}

// journalDone records a completed job, counting and logging failures
// exactly as the scalar worker loop always has.
func (e *Engine) journalDone(jl *Journal, jr *JobResult) {
	if jr.Err != "" {
		return
	}
	if err := jl.Record(jr.Key); err != nil {
		e.mJournalErr.Inc()
		e.logf("runner: %v", err)
	}
}

// runBatchUnit resolves a multi-job unit through the lock-step kernel.
// Jobs whose keys landed in the cache since the resume pass are served
// from it; the rest run in one RunBatch call. A batch-level error of
// any kind falls back to running each remaining job through the scalar
// path, which owns per-job retries, timeouts and status reporting.
func (e *Engine) runBatchUnit(ctx context.Context, jobs []Job, unit []int, out []JobResult, jl *Journal) {
	start := time.Now()
	pend := make([]int, 0, len(unit))
	for _, i := range unit {
		key := jobs[i].Key()
		if rs, ok := e.cacheGetCounted(key); ok {
			out[i] = JobResult{Job: jobs[i], Key: key, Results: rs,
				Status: StatusOK, Cached: true, Elapsed: time.Since(start)}
			e.mCompleted.Inc()
			e.journalDone(jl, &out[i])
			continue
		}
		pend = append(pend, i)
	}
	switch len(pend) {
	case 0:
		return
	case 1:
		// One miss left: the scalar path's singleflight is strictly
		// better than a one-system batch.
		i := pend[0]
		out[i] = e.runOne(ctx, jobs[i])
		e.journalDone(jl, &out[i])
		return
	}
	e.mInflight.Add(int64(len(pend)))
	rs, err := e.batchAttempt(ctx, jobs, pend)
	e.mInflight.Add(-int64(len(pend)))
	if err != nil {
		e.batchFallback.Inc()
		if pe, ok := err.(*PanicError); ok {
			e.logf("runner: batch unit %s panicked, falling back to scalar: %v\n%s",
				shortKey(jobs[pend[0]].Key()), pe.Value, pe.Stack)
		} else {
			e.logf("runner: batch unit %s falling back to scalar: %v",
				shortKey(jobs[pend[0]].Key()), err)
		}
		for _, i := range pend {
			out[i] = e.runOne(ctx, jobs[i])
			e.journalDone(jl, &out[i])
		}
		return
	}
	elapsed := time.Since(start)
	for k, i := range pend {
		key := jobs[i].Key()
		res := rs[k]
		if e.opts.Cache != nil {
			e.opts.Cache.Put(key, res)
		}
		out[i] = JobResult{Job: jobs[i], Key: key, Results: res,
			Status: StatusOK, Elapsed: elapsed}
		e.batched.Inc()
		e.mCompleted.Inc()
		e.mJobSeconds.Observe(elapsed.Seconds())
		e.journalDone(jl, &out[i])
	}
}

// batchAttempt runs one bounded lock-step execution over the pending
// jobs, returning one result set per job. It mirrors the scalar
// attempt's timeout semantics: on timeout the goroutine is abandoned to
// finish and the unit is reported as timed out (the caller's scalar
// fallback then owns the jobs). The injected-fault site is the first
// pending job's key, so chaos schedules hit batch units
// deterministically.
func (e *Engine) batchAttempt(ctx context.Context, jobs []Job, pend []int) ([][]core.Result, error) {
	for _, i := range pend {
		if err := jobs[i].Validate(); err != nil {
			return nil, err
		}
	}
	j0 := &jobs[pend[0]]
	ws, err := resolveWorkloads(j0.Workloads)
	if err != nil {
		return nil, err
	}
	w := ws[0]
	site := j0.Key()
	e.executed.Add(uint64(len(pend)))
	if e.opts.Timeout <= 0 && ctx.Done() == nil && e.opts.Fault == nil {
		return e.batchProtected(ctx, jobs, pend, &w, site)
	}
	type outcome struct {
		rs  [][]core.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		rs, err := e.batchProtected(ctx, jobs, pend, &w, site)
		ch <- outcome{rs, err}
	}()
	var timeout <-chan time.Time
	if e.opts.Timeout > 0 {
		t := time.NewTimer(e.opts.Timeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case o := <-ch:
		return o.rs, o.err
	case <-timeout:
		return nil, fmt.Errorf("batch unit timed out after %v", e.opts.Timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// batchProtected materializes the unit's trace and runs the lock-step
// kernel with the engine's fault hooks and panic containment.
func (e *Engine) batchProtected(ctx context.Context, jobs []Job, pend []int, w *trace.Workload, site string) (rs [][]core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	if err := e.injectFaults(ctx, site); err != nil {
		return nil, err
	}
	j0 := &jobs[pend[0]]
	m, err := e.opts.Traces.Materialize(w, j0.Warmup+j0.Insts)
	if err != nil {
		return nil, err
	}
	cfgs := make([]config.SystemConfig, len(pend))
	for k, i := range pend {
		cfgs[k] = jobs[i].Config
	}
	flat, err := core.RunBatch(m, cfgs, j0.Insts, j0.Warmup)
	if err != nil {
		return nil, err
	}
	out := make([][]core.Result, len(flat))
	for k := range flat {
		out[k] = []core.Result{flat[k]}
	}
	return out, nil
}
