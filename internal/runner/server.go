package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"catch/internal/config"
	"catch/internal/fault"
	"catch/internal/sample"
	"catch/internal/telemetry"
	"catch/internal/workloads"
)

// ConfigResolver maps a configuration name to a SystemConfig. The
// server takes it as a dependency so the runner package does not need
// to import the experiment registry.
type ConfigResolver func(name string) (config.SystemConfig, bool)

// Server exposes the engine over HTTP:
//
//	POST /v1/run          run one job
//	POST /v1/sweep        run a (configs × workloads) grid
//	POST /v1/drain        stop feeding new work, finish what's running
//	GET  /v1/results/{key} fetch a cached result by content address
//	GET  /healthz         liveness, build info, cache/engine counters
//	GET  /metrics         Prometheus text exposition (when Metrics set)
//	GET  /debug/pprof/*   runtime profiles (when EnablePprof set)
type Server struct {
	Engine  *Engine
	Resolve ConfigResolver
	// MaxInflight bounds concurrently served run/sweep requests
	// (beyond it, requests queue until a slot frees or the client
	// gives up); <=0 means 2× the engine's worker count.
	MaxInflight int
	// ShedAfter bounds the queue behind the limiter: once that many
	// requests are already waiting for a slot, new ones are shed
	// immediately with 503 + Retry-After instead of piling up. <=0
	// keeps the historical unbounded blocking queue.
	ShedAfter int
	// RequestTimeout bounds one run/sweep request end to end via its
	// context; jobs cut short report Status Canceled and a fully
	// canceled run maps to 504. <=0 means no server-side deadline.
	RequestTimeout time.Duration
	// JournalDir enables resumable sweeps: a POST /v1/sweep with
	// {"resumable": true} journals per-job completion under this
	// directory, keyed by a hash of the sweep's job keys, and a repeat
	// of the same sweep resumes from the last completed job. Empty
	// disables journaling.
	JournalDir string
	// ResultMaxAge is the Cache-Control max-age stamped on GET
	// /v1/results/{key} responses; <=0 means DefaultResultMaxAge
	// (results are content-addressed, hence immutable).
	ResultMaxAge time.Duration
	// Metrics, when non-nil, is served at GET /metrics. Handler also
	// registers the server's own series there (cache traffic, uptime,
	// request limiter occupancy, breaker and fault-injection state).
	Metrics *telemetry.Registry
	// Version is reported by /healthz and /metrics (build identifier;
	// empty means "dev").
	Version string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// ClusterInfo, when non-nil, contributes a one-line cluster summary
	// to /healthz (member disposition, under-replicated backlog). The
	// cluster layer sets it; single-node servers leave it nil and the
	// field stays absent from the body.
	ClusterInfo func() string

	sem      chan struct{}
	start    time.Time
	waiting  atomic.Int64
	draining atomic.Bool
	mShed    *telemetry.Counter

	jmu      sync.Mutex
	journals map[string]bool // sweep journals currently held open
}

// RunRequest is the body of POST /v1/run. Workload names a
// single-thread run; Workloads (one per core) a multi-programmed one.
type RunRequest struct {
	Config    string   `json:"config"`
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Insts     int64    `json:"insts,omitempty"`
	Warmup    int64    `json:"warmup,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep. Empty Workloads means
// the full 70-workload study list. Resumable journals the sweep under
// the server's JournalDir so an interrupted sweep picks up where it
// stopped when re-POSTed.
type SweepRequest struct {
	Configs   []string `json:"configs"`
	Workloads []string `json:"workloads,omitempty"`
	Insts     int64    `json:"insts,omitempty"`
	Warmup    int64    `json:"warmup,omitempty"`
	Resumable bool     `json:"resumable,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the route table. Call it once per Server: it also
// registers the server's metric series, and re-registration panics.
func (s *Server) Handler() http.Handler {
	n := s.MaxInflight
	if n <= 0 {
		n = 2 * s.Engine.Workers()
	}
	s.sem = make(chan struct{}, n)
	s.start = time.Now()
	s.journals = make(map[string]bool)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.limited(s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.limited(s.handleSweep))
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.Metrics != nil {
		s.registerServerMetrics(s.Metrics)
		mux.Handle("GET /metrics", telemetry.Handler(s.Metrics))
	}
	if s.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// registerServerMetrics surfaces counters owned by the cache and the
// request limiter as read-at-exposition functions, so the hot paths
// that own them stay untouched.
func (s *Server) registerServerMetrics(r *telemetry.Registry) {
	r.GaugeFunc("catch_uptime_seconds", "Seconds since the server started serving.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("catch_http_inflight", "Run/sweep requests currently holding a limiter slot.",
		func() float64 { return float64(len(s.sem)) })
	r.GaugeFunc("catch_http_draining", "1 while the server is draining (shedding new run/sweep requests).",
		func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.mShed = r.Counter("catch_http_shed_total",
		"Run/sweep requests shed with 503 (limiter saturated or draining).")
	if c := s.Engine.Cache(); c != nil {
		stat := func(f func(CacheStats) uint64) func() float64 {
			return func() float64 { return float64(f(c.Stats())) }
		}
		r.CounterFunc("catch_cache_requests_total{kind=\"hit\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Hits }))
		r.CounterFunc("catch_cache_requests_total{kind=\"miss\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Misses }))
		r.CounterFunc("catch_cache_requests_total{kind=\"coalesced\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Coalesced }))
		r.CounterFunc("catch_cache_requests_total{kind=\"disk_hit\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.DiskHits }))
		r.CounterFunc("catch_cache_requests_total{kind=\"bad_disk\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.BadDisk }))
		r.CounterFunc("catch_cache_requests_total{kind=\"disk_err\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.DiskErrs }))
		r.CounterFunc("catch_cache_requests_total{kind=\"quarantined\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Quarantined }))
		if b := c.Breaker(); b != nil {
			r.GaugeFunc("catch_cache_breaker_state",
				"Disk-cache circuit breaker state: 0 closed, 1 half-open, 2 open (memory-only).",
				func() float64 { return float64(b.State()) })
			r.CounterFunc("catch_cache_breaker_trips_total",
				"Times the disk-cache breaker tripped open.",
				func() float64 { return float64(b.Trips()) })
		}
	}
	if p := s.Engine.Sampler(); p != nil {
		pstat := func(f func(sample.PlannerStats) uint64) func() float64 {
			return func() float64 { return float64(f(p.Stats())) }
		}
		r.CounterFunc("catch_sample_profiles_total{kind=\"built\"}",
			"Sampling-profile traffic by kind.",
			pstat(func(st sample.PlannerStats) uint64 { return st.Profiled }))
		r.CounterFunc("catch_sample_profiles_total{kind=\"hit\"}",
			"Sampling-profile traffic by kind.",
			pstat(func(st sample.PlannerStats) uint64 { return st.ProfileHits }))
		r.CounterFunc("catch_sample_profiles_total{kind=\"coalesced\"}",
			"Sampling-profile traffic by kind.",
			pstat(func(st sample.PlannerStats) uint64 { return st.ProfileCoalesced }))
		sstat := func(f func(sample.StoreStats) uint64) func() float64 {
			return func() float64 { return float64(f(p.Snapshots().Stats())) }
		}
		r.CounterFunc("catch_sample_snapshots_total{kind=\"built\"}",
			"Warm-snapshot store traffic by kind.",
			sstat(func(st sample.StoreStats) uint64 { return st.Built }))
		r.CounterFunc("catch_sample_snapshots_total{kind=\"mem_hit\"}",
			"Warm-snapshot store traffic by kind.",
			sstat(func(st sample.StoreStats) uint64 { return st.MemHits }))
		r.CounterFunc("catch_sample_snapshots_total{kind=\"disk_hit\"}",
			"Warm-snapshot store traffic by kind.",
			sstat(func(st sample.StoreStats) uint64 { return st.DiskHits }))
		r.CounterFunc("catch_sample_snapshots_total{kind=\"bad_disk\"}",
			"Warm-snapshot store traffic by kind.",
			sstat(func(st sample.StoreStats) uint64 { return st.BadDisk }))
	}
	if inj := s.Engine.FaultInjector(); inj != nil {
		for _, k := range fault.Kinds() {
			k := k
			//catchlint:ignore telemetry-discipline one-time registration loop over the static fault kinds, not a hot path
			r.CounterFunc(fmt.Sprintf("catch_fault_injected_total{kind=%q}", k.String()),
				"Injected faults by kind (chaos mode only).",
				func() float64 { return float64(inj.Injected(k)) })
		}
	}
}

// limited applies the concurrency limiter: requests beyond MaxInflight
// wait for a slot (or for the client to hang up). When ShedAfter is
// set, the wait queue itself is bounded and overflow is shed with 503
// + Retry-After; a draining server sheds everything new. An acquired
// request runs under RequestTimeout (when set).
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			s.shed(w, "server is draining")
			return
		}
		select {
		case s.sem <- struct{}{}: // free slot, no queueing
		default:
			if s.ShedAfter > 0 && s.waiting.Add(1) > int64(s.ShedAfter) {
				s.waiting.Add(-1)
				s.shed(w, "server saturated: too many queued requests")
				return
			}
			acquired := false
			select {
			case s.sem <- struct{}{}:
				acquired = true
			case <-r.Context().Done():
			}
			if s.ShedAfter > 0 {
				s.waiting.Add(-1)
			}
			if !acquired {
				writeJSON(w, http.StatusServiceUnavailable, errorBody{"client gave up waiting for a slot"})
				return
			}
		}
		defer func() { <-s.sem }()
		if s.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// shed rejects a request the server will not queue, telling the client
// when to come back.
func (s *Server) shed(w http.ResponseWriter, msg string) {
	s.mShed.Inc()
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorBody{msg})
}

// BeginDrain flips the server into drain mode: new run/sweep requests
// are shed, the engine stops feeding queued jobs (they come back
// Status Canceled, checkpointed by any active journal), and running
// jobs finish normally. Idempotent.
func (s *Server) BeginDrain() {
	if s.draining.CompareAndSwap(false, true) {
		s.Engine.Drain()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// handleDrain begins a drain and waits (bounded) for inflight requests
// to finish before reporting how many remain.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.BeginDrain()
	deadline := time.Now().Add(5 * time.Second)
wait:
	for len(s.sem) > 0 && time.Now().Before(deadline) {
		select {
		case <-r.Context().Done():
			break wait
		case <-time.After(10 * time.Millisecond):
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"draining": true,
		"inflight": len(s.sem),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	job, err := s.jobFrom(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	rs := s.Engine.Run(r.Context(), []Job{job})
	switch {
	case rs[0].Status == StatusCanceled:
		writeJSON(w, http.StatusGatewayTimeout, rs[0])
	case rs[0].Err != "":
		writeJSON(w, http.StatusInternalServerError, rs[0])
	default:
		writeJSON(w, http.StatusOK, rs[0])
	}
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	if len(req.Configs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"sweep needs at least one config"})
		return
	}
	wls := req.Workloads
	if len(wls) == 0 {
		for _, wl := range workloads.All() {
			wls = append(wls, wl.WName)
		}
	}
	grid := Grid{Insts: defInsts(req.Insts), Warmup: defWarmup(req.Warmup), Workloads: wls}
	for _, name := range req.Configs {
		cfg, ok := s.Resolve(name)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("unknown config %q", name)})
			return
		}
		grid.Configs = append(grid.Configs, cfg)
	}
	jobs := grid.Jobs()

	var jl *Journal
	var journalID string
	resumed := 0
	if req.Resumable && s.JournalDir != "" {
		var err error
		jl, journalID, err = s.openSweepJournal(jobs)
		if err != nil {
			writeJSON(w, http.StatusConflict, errorBody{err.Error()})
			return
		}
		defer s.closeSweepJournal(journalID, jl)
		resumed = jl.DoneCount()
	}

	start := time.Now()
	var out []JobResult
	if jl != nil {
		out = s.Engine.RunJournaled(r.Context(), jobs, jl)
	} else {
		out = s.Engine.Run(r.Context(), jobs)
	}
	canceled := 0
	for i := range out {
		if out[i].Status == StatusCanceled {
			canceled++
		}
	}
	resp := map[string]any{
		"jobs":      out,
		"canceled":  canceled,
		"elapsedMs": time.Since(start).Milliseconds(),
		"cache":     s.cacheStats(),
	}
	if jl != nil {
		resp["journal"] = journalID
		resp["resumed"] = resumed
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepID content-addresses a sweep: a hash over its job keys, so the
// same grid maps to the same journal across requests and restarts.
func sweepID(jobs []Job) string {
	h := sha256.New()
	for i := range jobs {
		_, _ = io.WriteString(h, jobs[i].Key()) // hash.Hash writes never fail
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// OpenShardJournal opens the content-addressed journal for a job set
// under dir — the same dir+sweepID layout the sweep endpoint uses, so
// a shard re-dispatched to the same node resumes from its own journal.
// Unlike openSweepJournal it does no concurrent-use bookkeeping; the
// cluster layer serializes shard execution per node.
func OpenShardJournal(dir string, jobs []Job) (*Journal, error) {
	return OpenJournal(filepath.Join(dir, sweepID(jobs)+".journal"), jobs, 0)
}

// openSweepJournal opens the per-sweep journal, refusing concurrent
// use of one journal (two writers would interleave appends).
func (s *Server) openSweepJournal(jobs []Job) (*Journal, string, error) {
	id := sweepID(jobs)
	s.jmu.Lock()
	if s.journals[id] {
		s.jmu.Unlock()
		return nil, "", fmt.Errorf("sweep %s is already running; retry when it finishes", id)
	}
	s.journals[id] = true
	s.jmu.Unlock()
	jl, err := OpenJournal(filepath.Join(s.JournalDir, id+".journal"), jobs, 0)
	if err != nil {
		s.jmu.Lock()
		delete(s.journals, id)
		s.jmu.Unlock()
		return nil, "", err
	}
	return jl, id, nil
}

func (s *Server) closeSweepJournal(id string, jl *Journal) {
	// Close errors only cost resume coverage, never the response.
	_ = jl.Close()
	s.jmu.Lock()
	delete(s.journals, id)
	s.jmu.Unlock()
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	// Key shape is validated before anything touches the cache: a
	// malformed key is the client's error (400), not a lookup miss and
	// never a server fault.
	if !ValidKey(key) {
		writeJSON(w, http.StatusBadRequest, errorBody{"malformed result key (want 16-64 lowercase hex digits): " + key})
		return
	}
	cache := s.Engine.Cache()
	if cache == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"server runs without a result cache"})
		return
	}
	// Get never returns an empty entry (a quarantine racing this read
	// could briefly expose one), so a hit always has a body and a miss
	// is consistently 404.
	rs, ok := cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no cached result for key " + key})
		return
	}
	ServeResult(w, r, key, map[string]any{"key": key, "results": rs}, s.ResultMaxAge)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	version := s.Version
	if version == "" {
		version = "dev"
	}
	body := map[string]any{
		"ok":            true,
		"version":       version,
		"go":            runtime.Version(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"workers":       s.Engine.Workers(),
		"executed":      s.Engine.Executed(),
		"cache":         s.cacheStats(),
		"inflight":      len(s.sem),
		"maxInflight":   cap(s.sem),
		"draining":      s.draining.Load(),
	}
	if c := s.Engine.Cache(); c != nil {
		if b := c.Breaker(); b != nil {
			body["breaker"] = b.State().String()
		}
	}
	if p := s.Engine.Sampler(); p != nil {
		body["sampled"] = s.Engine.Sampled()
		body["sampleFallbacks"] = s.Engine.SampleFallbacks()
		body["sampleProfiles"] = p.Stats()
		body["sampleSnapshots"] = p.Snapshots().Stats()
	}
	if s.ClusterInfo != nil {
		body["cluster"] = s.ClusterInfo()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) cacheStats() any {
	if c := s.Engine.Cache(); c != nil {
		return c.Stats()
	}
	return nil
}

// jobFrom validates and converts an API request into a Job.
func (s *Server) jobFrom(req *RunRequest) (Job, error) {
	cfg, ok := s.Resolve(req.Config)
	if !ok {
		return Job{}, fmt.Errorf("unknown config %q", req.Config)
	}
	names := req.Workloads
	if req.Workload != "" {
		if len(names) > 0 {
			return Job{}, fmt.Errorf("set either workload or workloads, not both")
		}
		names = []string{req.Workload}
	}
	job := MPJob(cfg, names, defInsts(req.Insts), defWarmup(req.Warmup))
	if err := job.Validate(); err != nil {
		return Job{}, err
	}
	return job, nil
}

func defInsts(n int64) int64 {
	if n <= 0 {
		return 300_000
	}
	return n
}

func defWarmup(n int64) int64 {
	if n < 0 {
		return 0
	}
	if n == 0 {
		return 150_000
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode failure here means
	// the client went away and there is no channel left to report on.
	_ = enc.Encode(v)
}
