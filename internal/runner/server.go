package runner

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"

	"catch/internal/config"
	"catch/internal/telemetry"
	"catch/internal/workloads"
)

// ConfigResolver maps a configuration name to a SystemConfig. The
// server takes it as a dependency so the runner package does not need
// to import the experiment registry.
type ConfigResolver func(name string) (config.SystemConfig, bool)

// Server exposes the engine over HTTP:
//
//	POST /v1/run          run one job
//	POST /v1/sweep        run a (configs × workloads) grid
//	GET  /v1/results/{key} fetch a cached result by content address
//	GET  /healthz         liveness, build info, cache/engine counters
//	GET  /metrics         Prometheus text exposition (when Metrics set)
//	GET  /debug/pprof/*   runtime profiles (when EnablePprof set)
type Server struct {
	Engine  *Engine
	Resolve ConfigResolver
	// MaxInflight bounds concurrently served run/sweep requests
	// (beyond it, requests queue until a slot frees or the client
	// gives up); <=0 means 2× the engine's worker count.
	MaxInflight int
	// Metrics, when non-nil, is served at GET /metrics. Handler also
	// registers the server's own series there (cache traffic, uptime,
	// request limiter occupancy).
	Metrics *telemetry.Registry
	// Version is reported by /healthz and /metrics (build identifier;
	// empty means "dev").
	Version string
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	sem   chan struct{}
	start time.Time
}

// RunRequest is the body of POST /v1/run. Workload names a
// single-thread run; Workloads (one per core) a multi-programmed one.
type RunRequest struct {
	Config    string   `json:"config"`
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Insts     int64    `json:"insts,omitempty"`
	Warmup    int64    `json:"warmup,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep. Empty Workloads means
// the full 70-workload study list.
type SweepRequest struct {
	Configs   []string `json:"configs"`
	Workloads []string `json:"workloads,omitempty"`
	Insts     int64    `json:"insts,omitempty"`
	Warmup    int64    `json:"warmup,omitempty"`
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler builds the route table. Call it once per Server: it also
// registers the server's metric series, and re-registration panics.
func (s *Server) Handler() http.Handler {
	n := s.MaxInflight
	if n <= 0 {
		n = 2 * s.Engine.Workers()
	}
	s.sem = make(chan struct{}, n)
	s.start = time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.limited(s.handleRun))
	mux.HandleFunc("POST /v1/sweep", s.limited(s.handleSweep))
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	if s.Metrics != nil {
		s.registerServerMetrics(s.Metrics)
		mux.Handle("GET /metrics", telemetry.Handler(s.Metrics))
	}
	if s.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// registerServerMetrics surfaces counters owned by the cache and the
// request limiter as read-at-exposition functions, so the hot paths
// that own them stay untouched.
func (s *Server) registerServerMetrics(r *telemetry.Registry) {
	r.GaugeFunc("catch_uptime_seconds", "Seconds since the server started serving.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc("catch_http_inflight", "Run/sweep requests currently holding a limiter slot.",
		func() float64 { return float64(len(s.sem)) })
	if c := s.Engine.Cache(); c != nil {
		stat := func(f func(CacheStats) uint64) func() float64 {
			return func() float64 { return float64(f(c.Stats())) }
		}
		r.CounterFunc("catch_cache_requests_total{kind=\"hit\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Hits }))
		r.CounterFunc("catch_cache_requests_total{kind=\"miss\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Misses }))
		r.CounterFunc("catch_cache_requests_total{kind=\"coalesced\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.Coalesced }))
		r.CounterFunc("catch_cache_requests_total{kind=\"disk_hit\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.DiskHits }))
		r.CounterFunc("catch_cache_requests_total{kind=\"bad_disk\"}",
			"Result-cache traffic by kind.",
			stat(func(st CacheStats) uint64 { return st.BadDisk }))
	}
}

// limited applies the concurrency limiter: requests beyond MaxInflight
// wait for a slot (or for the client to hang up) before running.
func (s *Server) limited(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		case <-r.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable, errorBody{"client gave up waiting for a slot"})
			return
		}
		h(w, r)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	job, err := s.jobFrom(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	rs := s.Engine.Run(r.Context(), []Job{job})
	if rs[0].Err != "" {
		writeJSON(w, http.StatusInternalServerError, rs[0])
		return
	}
	writeJSON(w, http.StatusOK, rs[0])
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{"bad request body: " + err.Error()})
		return
	}
	if len(req.Configs) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{"sweep needs at least one config"})
		return
	}
	wls := req.Workloads
	if len(wls) == 0 {
		for _, wl := range workloads.All() {
			wls = append(wls, wl.WName)
		}
	}
	grid := Grid{Insts: defInsts(req.Insts), Warmup: defWarmup(req.Warmup), Workloads: wls}
	for _, name := range req.Configs {
		cfg, ok := s.Resolve(name)
		if !ok {
			writeJSON(w, http.StatusBadRequest, errorBody{fmt.Sprintf("unknown config %q", name)})
			return
		}
		grid.Configs = append(grid.Configs, cfg)
	}
	start := time.Now()
	out := s.Engine.Run(r.Context(), grid.Jobs())
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":      out,
		"elapsedMs": time.Since(start).Milliseconds(),
		"cache":     s.cacheStats(),
	})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	cache := s.Engine.Cache()
	if cache == nil {
		writeJSON(w, http.StatusNotFound, errorBody{"server runs without a result cache"})
		return
	}
	rs, ok := cache.Get(key)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{"no cached result for key " + key})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": key, "results": rs})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	version := s.Version
	if version == "" {
		version = "dev"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"version":       version,
		"go":            runtime.Version(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"workers":       s.Engine.Workers(),
		"executed":      s.Engine.Executed(),
		"cache":         s.cacheStats(),
		"inflight":      len(s.sem),
		"maxInflight":   cap(s.sem),
	})
}

func (s *Server) cacheStats() any {
	if c := s.Engine.Cache(); c != nil {
		return c.Stats()
	}
	return nil
}

// jobFrom validates and converts an API request into a Job.
func (s *Server) jobFrom(req *RunRequest) (Job, error) {
	cfg, ok := s.Resolve(req.Config)
	if !ok {
		return Job{}, fmt.Errorf("unknown config %q", req.Config)
	}
	names := req.Workloads
	if req.Workload != "" {
		if len(names) > 0 {
			return Job{}, fmt.Errorf("set either workload or workloads, not both")
		}
		names = []string{req.Workload}
	}
	job := MPJob(cfg, names, defInsts(req.Insts), defWarmup(req.Warmup))
	if err := job.Validate(); err != nil {
		return Job{}, err
	}
	return job, nil
}

func defInsts(n int64) int64 {
	if n <= 0 {
		return 300_000
	}
	return n
}

func defWarmup(n int64) int64 {
	if n < 0 {
		return 0
	}
	if n == 0 {
		return 150_000
	}
	return n
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already written; an encode failure here means
	// the client went away and there is no channel left to report on.
	_ = enc.Encode(v)
}
