// Package runner is the experiment-execution engine: it expands
// (config × workload) grids into deterministic jobs, shards them across
// a bounded worker pool, memoizes results in a content-addressed cache
// with singleflight coalescing, and serves the whole thing over HTTP
// (cmd/catchd).
//
// A simulation is a pure function of (config, workloads, insts,
// warmup), so a job's identity is a stable hash of exactly those
// inputs and results are safe to cache and to share between duplicate
// in-flight requests.
package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/sample"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// Job is one unit of simulation work: a full system configuration plus
// one workload (single-thread run) or several (one per core,
// multi-programmed run).
type Job struct {
	Config    config.SystemConfig `json:"config"`
	Workloads []string            `json:"workloads"`
	Insts     int64               `json:"insts"`
	Warmup    int64               `json:"warmup"`
	// Sample, when set, resolves the job by representative-interval
	// sampling instead of full simulation. It is part of the job's
	// identity (sampled and exact results cache under different keys);
	// nil keeps the key byte-identical to pre-sampling jobs.
	Sample *SampleSpec `json:"sample,omitempty"`
}

// SampleSpec mirrors sample.Spec with JSON tags for the job key.
type SampleSpec struct {
	Interval int64 `json:"interval"`
	K        int   `json:"k"`
}

// STJob builds a single-thread job.
func STJob(cfg config.SystemConfig, workload string, insts, warmup int64) Job {
	return Job{Config: cfg, Workloads: []string{workload}, Insts: insts, Warmup: warmup}
}

// MPJob builds a multi-programmed job (one workload per core).
func MPJob(cfg config.SystemConfig, names []string, insts, warmup int64) Job {
	return Job{Config: cfg, Workloads: append([]string(nil), names...), Insts: insts, Warmup: warmup}
}

// Key returns the job's content address: a hex SHA-256 over the
// canonical JSON encoding of (config name+params, workloads, insts,
// warmup). Canonicalization sorts object keys recursively, so the key
// is stable across struct field reordering and across processes.
//
//catch:keyfn
func (j Job) Key() string {
	raw, err := json.Marshal(&j)
	if err != nil {
		// SystemConfig and the scalar fields are plain data; this
		// cannot fail for a well-formed job.
		panic("runner: job not encodable: " + err.Error())
	}
	canon, err := CanonicalJSON(raw)
	if err != nil {
		panic("runner: job not canonicalizable: " + err.Error())
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:])
}

// Validate checks that every workload name resolves and that the
// budgets are sane, without running anything.
func (j *Job) Validate() error {
	if len(j.Workloads) == 0 {
		return fmt.Errorf("job has no workloads")
	}
	if j.Insts <= 0 {
		return fmt.Errorf("job insts must be positive, got %d", j.Insts)
	}
	if j.Warmup < 0 {
		return fmt.Errorf("job warmup must be non-negative, got %d", j.Warmup)
	}
	if j.Sample != nil {
		if len(j.Workloads) != 1 {
			return fmt.Errorf("sampled jobs run a single workload, got %d", len(j.Workloads))
		}
		if err := (sample.Spec{Interval: j.Sample.Interval, K: j.Sample.K}).Validate(j.Insts); err != nil {
			return err
		}
	}
	_, err := resolveWorkloads(j.Workloads)
	return err
}

// resolveWorkloads maps workload names to their definitions. It is the
// single lookup shared by validation, execution and the batch
// scheduler, so the three can never disagree about which names
// resolve; every unknown name is reported at once.
func resolveWorkloads(names []string) ([]trace.Workload, error) {
	ws := make([]trace.Workload, len(names))
	var unknown []string
	for k, name := range names {
		w, ok := workloads.ByName(name)
		if !ok {
			unknown = append(unknown, fmt.Sprintf("%q", name))
			continue
		}
		ws[k] = w
	}
	if len(unknown) > 0 {
		return nil, fmt.Errorf("unknown workload(s): %s", strings.Join(unknown, ", "))
	}
	return ws, nil
}

// gens resolves the job's workload names to fresh generators.
func (j *Job) gens() ([]trace.Generator, error) {
	ws, err := resolveWorkloads(j.Workloads)
	if err != nil {
		return nil, err
	}
	out := make([]trace.Generator, len(ws))
	for k := range ws {
		out[k] = ws[k].NewGen()
	}
	return out, nil
}

// PanicError is a recovered job panic: the panic value plus the
// goroutine stack at the point of recovery, so a crash inside a
// simulation is diagnosable from the JobResult instead of taking down
// the worker pool.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", e.Value) }

// Execute runs the job on a fresh private core.System and returns one
// Result per workload. A fresh system per job keeps results
// deterministic (no warm state leaks between jobs) and keeps the
// non-goroutine-safe System private to the calling worker.
func (j *Job) Execute() (rs []core.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			rs, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	gens, err := j.gens()
	if err != nil {
		return nil, err
	}
	cfg := j.Config
	if len(gens) > 1 && cfg.Cores < len(gens) {
		cfg.Cores = len(gens)
	}
	sys := core.NewSystem(cfg)
	if len(gens) == 1 {
		return []core.Result{sys.RunST(gens[0], j.Insts, j.Warmup)}, nil
	}
	return sys.RunMP(gens, j.Insts, j.Warmup), nil
}

// Grid is a (config × workload) experiment sweep.
type Grid struct {
	Configs   []config.SystemConfig
	Workloads []string
	Insts     int64
	Warmup    int64
}

// Jobs expands the grid into jobs in deterministic order (configs
// outer, workloads inner).
func (g *Grid) Jobs() []Job {
	jobs := make([]Job, 0, len(g.Configs)*len(g.Workloads))
	for _, cfg := range g.Configs {
		for _, w := range g.Workloads {
			jobs = append(jobs, STJob(cfg, w, g.Insts, g.Warmup))
		}
	}
	return jobs
}

// CanonicalJSON re-encodes a JSON document with object keys sorted
// recursively and numbers preserved verbatim, so that two encodings of
// the same value hash identically regardless of field order.
func CanonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(x.String())
	default:
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}
