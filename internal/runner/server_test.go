package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/telemetry"
)

func testResolve(name string) (config.SystemConfig, bool) {
	switch name {
	case "baseline-excl":
		return config.BaselineExclusive(), true
	case "catch":
		return config.WithCATCH(config.BaselineExclusive(), "catch"), true
	}
	return config.SystemConfig{}, false
}

func newTestServer(e *Engine) *httptest.Server {
	s := &Server{Engine: e, Resolve: testResolve}
	return httptest.NewServer(s.Handler())
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(New(Options{Workers: 2, Cache: NewCache("")}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		OK      bool `json:"ok"`
		Workers int  `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !body.OK || body.Workers != 2 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, body)
	}
}

// TestHealthzClusterLine pins the operator's first grep during an
// incident: when the server is part of a cluster, /healthz carries a
// one-line membership summary; a standalone server omits the field.
func TestHealthzClusterLine(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	s := &Server{Engine: e, Resolve: testResolve,
		ClusterInfo: func() string { return "replicas=2 live=2 suspect=0 down=1 hints=3 unreplicated=3" }}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(url string) map[string]any {
		resp, err := http.Get(url + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}
	if got := get(ts.URL)["cluster"]; got != "replicas=2 live=2 suspect=0 down=1 hints=3 unreplicated=3" {
		t.Fatalf("healthz cluster line = %v", got)
	}

	solo := newTestServer(New(Options{Workers: 1, Cache: NewCache("")}))
	defer solo.Close()
	if _, present := get(solo.URL)["cluster"]; present {
		t.Fatal("standalone healthz grew a cluster field")
	}
}

func TestRunEndpointEndToEnd(t *testing.T) {
	ts := newTestServer(New(Options{Workers: 2, Cache: NewCache("")}))
	defer ts.Close()
	resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Config: "baseline-excl", Workload: "hmmer", Insts: 8_000, Warmup: 3_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var jr JobResult
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Results) != 1 || jr.Results[0].Workload != "hmmer" || jr.Results[0].IPC <= 0 {
		t.Fatalf("bad result: %s", raw)
	}

	// The result is now addressable by its key.
	resp2, raw2 := getURL(t, ts.URL+"/v1/results/"+jr.Key)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("results/%s = %d: %s", jr.Key, resp2.StatusCode, raw2)
	}
	// And an unknown key is a 404.
	resp3, _ := getURL(t, ts.URL+"/v1/results/deadbeefdeadbeefdeadbeef")
	if resp3.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus key = %d", resp3.StatusCode)
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp, raw
}

func TestRunEndpointRejectsUnknowns(t *testing.T) {
	ts := newTestServer(New(Options{Workers: 1, Cache: NewCache("")}))
	defer ts.Close()
	for _, req := range []RunRequest{
		{Config: "no-such-config", Workload: "hmmer"},
		{Config: "baseline-excl", Workload: "no-such-workload"},
		{Config: "baseline-excl"},
		{Config: "baseline-excl", Workload: "hmmer", Workloads: []string{"mcf"}},
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/run", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d (%s)", req, resp.StatusCode, raw)
		}
	}
}

// TestRunCoalescesDuplicateConcurrentRequests is the acceptance check:
// N concurrent identical requests cause exactly one underlying
// simulation.
func TestRunCoalescesDuplicateConcurrentRequests(t *testing.T) {
	e := New(Options{Workers: 4, Cache: NewCache("")})
	var sims atomic.Int32
	e.simulate = func(j *Job) ([]core.Result, error) {
		sims.Add(1)
		time.Sleep(100 * time.Millisecond) // hold the flight open so requests overlap
		return []core.Result{{Workload: j.Workloads[0], Config: j.Config.Name, IPC: 1}}, nil
	}
	ts := newTestServer(e)
	defer ts.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/run", RunRequest{
				Config: "catch", Workload: "mcf", Insts: 10_000, Warmup: 5_000,
			})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
				return
			}
			var jr JobResult
			if err := json.Unmarshal(raw, &jr); err != nil {
				errs[i] = err
				return
			}
			if len(jr.Results) != 1 || jr.Results[0].Workload != "mcf" {
				errs[i] = fmt.Errorf("bad body: %s", raw)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := sims.Load(); got != 1 {
		t.Fatalf("%d simulations for %d identical concurrent requests, want 1", got, n)
	}
	s := e.Cache().Stats()
	if s.Misses != 1 || s.Hits+s.Coalesced != n-1 {
		t.Fatalf("cache stats = %+v", s)
	}
}

func TestSweepEndpoint(t *testing.T) {
	ts := newTestServer(New(Options{Workers: 4, Cache: NewCache("")}))
	defer ts.Close()
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Configs: []string{"baseline-excl", "catch"}, Workloads: []string{"hmmer", "mcf"},
		Insts: 6_000, Warmup: 2_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var body struct {
		Jobs  []JobResult `json:"jobs"`
		Cache CacheStats  `json:"cache"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if len(body.Jobs) != 4 {
		t.Fatalf("got %d jobs", len(body.Jobs))
	}
	for i, jr := range body.Jobs {
		if jr.Err != "" || len(jr.Results) != 1 {
			t.Fatalf("job %d: %+v", i, jr)
		}
	}
	if body.Jobs[0].Job.Config.Name != "baseline-excl" || body.Jobs[0].Results[0].Workload != "hmmer" {
		t.Fatalf("sweep order wrong: %+v", body.Jobs[0].Job)
	}
}

func TestConcurrencyLimiterBounds(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	var inflight, peak atomic.Int32
	e.simulate = func(j *Job) ([]core.Result, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		return []core.Result{{Workload: j.Workloads[0]}}, nil
	}
	s := &Server{Engine: e, Resolve: testResolve, MaxInflight: 2}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	workloadNames := []string{"hmmer", "mcf", "tpcc", "povray", "lbm", "sjeng"}
	var wg sync.WaitGroup
	for _, name := range workloadNames {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			postJSON(t, ts.URL+"/v1/run", RunRequest{Config: "catch", Workload: name, Insts: 1000, Warmup: 100})
		}(name)
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Fatalf("inflight peaked at %d with limiter 2", p)
	}
}

// TestServerShutsDownCleanly drains an idle server the way catchd's
// SIGINT handler does.
func TestServerShutsDownCleanly(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	s := &Server{Engine: e, Resolve: testResolve}
	hs := &http.Server{Handler: s.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	go hs.Serve(ln)
	// Confirm it serves, then shut down.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after shutdown")
	}
}

// TestMetricsEndpoint drives a run through a metered server and checks
// that the engine, cache, and server series all appear in the
// Prometheus exposition.
func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Options{Workers: 2, Cache: NewCache(""), Metrics: reg})
	s := &Server{Engine: e, Resolve: testResolve, Metrics: reg, Version: "test"}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RunRequest{Config: "baseline-excl", Workload: "hmmer", Insts: 5_000, Warmup: 1_000}
	if resp, raw := postJSON(t, ts.URL+"/v1/run", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("run: %d %s", resp.StatusCode, raw)
	}
	// Same job again: served from the cache, still a completed job.
	if resp, raw := postJSON(t, ts.URL+"/v1/run", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("run 2: %d %s", resp.StatusCode, raw)
	}

	resp, raw := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	text := string(raw)
	for _, want := range []string{
		"catch_engine_jobs_completed_total 2",
		"catch_engine_executions_total 1",
		"catch_engine_jobs_failed_total 0",
		"catch_engine_job_seconds_count 2",
		`catch_cache_requests_total{kind="hit"} 1`,
		`catch_cache_requests_total{kind="miss"} 1`,
		"# TYPE catch_engine_job_seconds histogram",
		"catch_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestMetricsEndpointAbsentWithoutRegistry keeps /metrics opt-in.
func TestMetricsEndpointAbsentWithoutRegistry(t *testing.T) {
	ts := newTestServer(New(Options{Workers: 1, Cache: NewCache("")}))
	defer ts.Close()
	resp, _ := getURL(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unmetered /metrics = %d, want 404", resp.StatusCode)
	}
}

func TestHealthzReportsBuildInfo(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	s := &Server{Engine: e, Resolve: testResolve, Version: "v1.2.3"}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, raw := getURL(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var body struct {
		Version       string  `json:"version"`
		Go            string  `json:"go"`
		UptimeSeconds float64 `json:"uptimeSeconds"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatal(err)
	}
	if body.Version != "v1.2.3" || !strings.HasPrefix(body.Go, "go") || body.UptimeSeconds < 0 {
		t.Fatalf("healthz body = %+v", body)
	}
}

// TestPprofGatedByFlag: profiles are only mounted when asked for.
func TestPprofGatedByFlag(t *testing.T) {
	e := New(Options{Workers: 1, Cache: NewCache("")})
	off := httptest.NewServer((&Server{Engine: e, Resolve: testResolve}).Handler())
	defer off.Close()
	if resp, _ := getURL(t, off.URL+"/debug/pprof/"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off = %d, want 404", resp.StatusCode)
	}
	e2 := New(Options{Workers: 1, Cache: NewCache("")})
	on := httptest.NewServer((&Server{Engine: e2, Resolve: testResolve, EnablePprof: true}).Handler())
	defer on.Close()
	if resp, raw := getURL(t, on.URL+"/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on = %d: %s", resp.StatusCode, raw)
	}
}

// TestServerSampledCounters: a sampling engine surfaces its planner
// and snapshot-store counters in /healthz and as /metrics series, and
// a sweep through the HTTP layer actually resolves by sampling.
func TestServerSampledCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Options{
		Workers: 2, Cache: NewCache(""), Metrics: reg,
		Sample: true, SampleInterval: 500, SampleK: 2,
	})
	s := &Server{Engine: e, Resolve: testResolve, Metrics: reg}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, raw := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Configs:   []string{"baseline-excl", "catch"},
		Workloads: []string{"mcf"},
		Insts:     2_000, Warmup: 1_000,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, raw)
	}
	if e.Sampled() != 2 || e.SampleFallbacks() != 0 {
		t.Fatalf("Sampled=%d SampleFallbacks=%d, want 2 and 0", e.Sampled(), e.SampleFallbacks())
	}

	resp2, raw2 := getURL(t, ts.URL+"/healthz")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp2.StatusCode)
	}
	var body struct {
		Sampled         uint64 `json:"sampled"`
		SampleFallbacks uint64 `json:"sampleFallbacks"`
		SampleProfiles  struct {
			Profiled uint64 `json:"profiled"`
		} `json:"sampleProfiles"`
		SampleSnapshots struct {
			Built uint64 `json:"built"`
		} `json:"sampleSnapshots"`
	}
	if err := json.Unmarshal(raw2, &body); err != nil {
		t.Fatal(err)
	}
	if body.Sampled != 2 || body.SampleFallbacks != 0 {
		t.Errorf("healthz sampled=%d fallbacks=%d, want 2 and 0: %s", body.Sampled, body.SampleFallbacks, raw2)
	}
	if body.SampleProfiles.Profiled != 1 {
		t.Errorf("healthz sampleProfiles.profiled = %d, want 1 (one workload): %s", body.SampleProfiles.Profiled, raw2)
	}
	if body.SampleSnapshots.Built != 2 {
		t.Errorf("healthz sampleSnapshots.built = %d, want 2 (config x workload): %s", body.SampleSnapshots.Built, raw2)
	}

	resp3, raw3 := getURL(t, ts.URL+"/metrics")
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp3.StatusCode)
	}
	for _, series := range []string{
		`catch_engine_jobs_sampled_total 2`,
		`catch_engine_sample_fallbacks_total 0`,
		`catch_sample_profiles_total{kind="built"} 1`,
		`catch_sample_snapshots_total{kind="built"} 2`,
	} {
		if !strings.Contains(string(raw3), series) {
			t.Errorf("metrics lack %q", series)
		}
	}
}
