package runner

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
)

func oneResult(name string) []core.Result {
	return []core.Result{{Workload: name, Insts: 1}}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache("")
	computes := 0
	compute := func() ([]core.Result, error) { computes++; return oneResult("a"), nil }

	if _, cached, err := c.Do("k1", compute); err != nil || cached {
		t.Fatalf("first Do: cached=%v err=%v", cached, err)
	}
	if rs, cached, err := c.Do("k1", compute); err != nil || !cached || rs[0].Workload != "a" {
		t.Fatalf("second Do: cached=%v err=%v", cached, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times", computes)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Coalesced != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestCacheCoalescesConcurrentCallers(t *testing.T) {
	c := NewCache("")
	const callers = 8
	started := make(chan struct{})
	release := make(chan struct{})
	computes := 0
	compute := func() ([]core.Result, error) {
		computes++ // single flight: only one caller runs this
		close(started)
		<-release
		return oneResult("slow"), nil
	}

	var wg sync.WaitGroup
	errs := make([]error, callers)
	go func() {
		<-started // all late arrivals must find the flight in progress
		release <- struct{}{}
	}()
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, _, err := c.Do("k", compute)
			if err == nil && rs[0].Workload != "slow" {
				err = fmt.Errorf("wrong result %v", rs)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times, want 1", computes)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced+s.Hits != callers-1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheErrorsAreNotCached(t *testing.T) {
	c := NewCache("")
	fail := true
	compute := func() ([]core.Result, error) {
		if fail {
			return nil, fmt.Errorf("boom")
		}
		return oneResult("ok"), nil
	}
	if _, _, err := c.Do("k", compute); err == nil {
		t.Fatal("error swallowed")
	}
	fail = false
	rs, cached, err := c.Do("k", compute)
	if err != nil || cached || rs[0].Workload != "ok" {
		t.Fatalf("error was cached: cached=%v err=%v", cached, err)
	}
}

func TestKeyStableAcrossFieldReordering(t *testing.T) {
	a := []byte(`{"config":{"Name":"x","Cores":1},"workloads":["mcf"],"insts":100,"warmup":50}`)
	b := []byte(`{"warmup":50,"insts":100,"workloads":["mcf"],"config":{"Cores":1,"Name":"x"}}`)
	ca, err := CanonicalJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := CanonicalJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ca) != string(cb) {
		t.Fatalf("canonical forms differ:\n%s\n%s", ca, cb)
	}
	// And a real job's key round-trips through a decode/re-encode of
	// its JSON (map iteration order is randomized in Go, so this
	// exercises arbitrary orderings).
	job := STJob(config.BaselineExclusive(), "mcf", 100, 50)
	raw, _ := json.Marshal(&job)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	reraw, _ := json.Marshal(m)
	c1, _ := CanonicalJSON(raw)
	c2, _ := CanonicalJSON(reraw)
	if string(c1) != string(c2) {
		t.Fatal("job key not stable across re-encoding")
	}
}

func TestKeyDistinguishesJobs(t *testing.T) {
	base := STJob(config.BaselineExclusive(), "mcf", 100, 50)
	seen := map[string]string{base.Key(): "base"}
	variants := map[string]Job{
		"other workload": STJob(config.BaselineExclusive(), "hmmer", 100, 50),
		"other insts":    STJob(config.BaselineExclusive(), "mcf", 200, 50),
		"other warmup":   STJob(config.BaselineExclusive(), "mcf", 100, 60),
		"other config":   STJob(config.BaselineInclusive(), "mcf", 100, 50),
	}
	for label, j := range variants {
		k := j.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("%s collides with %s", label, prev)
		}
		seen[k] = label
	}
}

func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := STJob(config.BaselineExclusive(), "mcf", 100, 50).Key()

	c1 := NewCache(dir)
	if _, _, err := c1.Do(key, func() ([]core.Result, error) { return oneResult("persisted"), nil }); err != nil {
		t.Fatal(err)
	}
	// A fresh cache over the same directory serves the entry without
	// computing.
	c2 := NewCache(dir)
	rs, cached, err := c2.Do(key, func() ([]core.Result, error) {
		return nil, fmt.Errorf("should not recompute")
	})
	if err != nil || !cached || rs[0].Workload != "persisted" {
		t.Fatalf("disk entry not reused: cached=%v err=%v", cached, err)
	}
	if s := c2.Stats(); s.DiskHits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if _, ok := c2.Get(key); !ok {
		t.Fatal("Get missed after disk load")
	}
}

func TestCorruptDiskEntryIsAMiss(t *testing.T) {
	dir := t.TempDir()
	key := STJob(config.BaselineExclusive(), "mcf", 100, 50).Key()
	for _, garbage := range []string{"{not json", "", "[]", `{"an":"object"}`} {
		if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte(garbage), 0o644); err != nil {
			t.Fatal(err)
		}
		c := NewCache(dir)
		rs, cached, err := c.Do(key, func() ([]core.Result, error) { return oneResult("fresh"), nil })
		if err != nil || cached || rs[0].Workload != "fresh" {
			t.Fatalf("garbage %q: cached=%v err=%v rs=%v", garbage, cached, err, rs)
		}
		if s := c.Stats(); s.Misses != 1 {
			t.Fatalf("garbage %q: stats = %+v", garbage, s)
		}
	}
}

// TestCacheKeys pins the manifest the cluster's anti-entropy repair
// diffs: the union of memory and disk entries, sorted, with non-entry
// files in the cache directory ignored.
func TestCacheKeys(t *testing.T) {
	dir := t.TempDir()
	memKey := STJob(config.BaselineExclusive(), "mcf", 100, 50).Key()
	diskKey := STJob(config.BaselineExclusive(), "lbm", 100, 50).Key()

	// One entry written through the cache (mem+disk), one landed on disk
	// by another process (a replica fill before a restart), plus files a
	// manifest must never report.
	c := NewCache(dir)
	if _, _, err := c.Do(memKey, func() ([]core.Result, error) { return oneResult("m"), nil }); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(oneResult("d"))
	for name, body := range map[string]string{
		diskKey + ".json": string(raw),
		"README.md":       "not an entry",
		"UPPER.json":      "bad key",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	want := []string{memKey, diskKey}
	sort.Strings(want)
	got := c.Keys()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Keys() = %v, want sorted %v", got, want)
	}

	// A memory-only cache still reports its entries.
	m := NewCache("")
	m.Do(memKey, func() ([]core.Result, error) { return oneResult("m"), nil })
	if got := m.Keys(); len(got) != 1 || got[0] != memKey {
		t.Fatalf("memory-only Keys() = %v", got)
	}
}

func TestCacheRejectsPathTraversalKeys(t *testing.T) {
	c := NewCache(t.TempDir())
	for _, key := range []string{"../evil", "a/b", "UPPER", "short"} {
		if _, ok := c.path(key); ok {
			t.Fatalf("key %q mapped to a disk path", key)
		}
	}
}

func TestEngineCountsCacheHitsOnSweepRerun(t *testing.T) {
	cache := NewCache("")
	e := New(Options{Workers: 4, Cache: cache})
	jobs := testJobs()
	first := e.Run(context.Background(), jobs)
	if err := FirstError(first); err != nil {
		t.Fatal(err)
	}
	second := e.Run(context.Background(), jobs)
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("rerun job %d missed the cache", i)
		}
	}
	s := cache.Stats()
	if s.Misses != uint64(len(jobs)) || s.Hits+s.Coalesced < uint64(len(jobs)) {
		t.Fatalf("stats = %+v", s)
	}
	// Byte-identical results out of the cache.
	a, _ := json.Marshal(first[0].Results)
	b, _ := json.Marshal(second[0].Results)
	if string(a) != string(b) {
		t.Fatal("cached rerun diverged from computed run")
	}
}
