package runner

import (
	"encoding/json"
	"reflect"
	"testing"

	"catch/internal/config"
)

// TestJobKeyCoversEveryConfigField is the dynamic counterpart of the
// key-coverage analyzer: it perturbs every reachable field of a Job —
// including every field of the embedded SystemConfig, recursively —
// and asserts the content key changes. A field that does not move the
// key is a stale-hit bug: two jobs differing only in that field would
// collide in the result cache and one would silently get the other's
// numbers.
func TestJobKeyCoversEveryConfigField(t *testing.T) {
	base := STJob(config.BaselineExclusive(), "hmmer", 40_000, 8_000)
	// A fully-populated variant so fields behind nil pointers
	// (Config.Convert, Sample) are perturbed too.
	full := base
	full.Sample = &SampleSpec{Interval: 4_000, K: 3}
	full.Config.Convert = &config.ConvertSpec{ToLat: 10}

	for name, job := range map[string]Job{"base": base, "full": full} {
		t.Run(name, func(t *testing.T) {
			baseKey := job.Key()
			for _, leaf := range collectLeaves(t, reflect.ValueOf(job)) {
				cp := deepCopyJob(t, job)
				leaf.mutate(navigate(reflect.ValueOf(&cp).Elem(), leaf.path))
				if cp.Key() == baseKey {
					t.Errorf("perturbing %s did not change the job key: "+
						"jobs differing only in this field would share a cache entry", leaf.name)
				}
			}
		})
	}
}

// deepCopyJob copies a job through its JSON encoding. Fields the
// encoding drops stay at their zero value in the copy — which is fine:
// the perturbation happens after the copy, and a perturbation the key
// cannot see is exactly what the test reports.
func deepCopyJob(t *testing.T, j Job) Job {
	t.Helper()
	raw, err := json.Marshal(&j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Job
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// pathStep addresses one hop from a Job value toward a leaf field.
type pathStep struct {
	field int  // struct field index, or -1
	index int  // slice index, or -1
	deref bool // follow a pointer
}

// leaf is one perturbable location plus the mutation that perturbs it.
type leaf struct {
	name   string
	path   []pathStep
	mutate func(v reflect.Value)
}

// navigate walks an addressable value along a recorded path.
func navigate(v reflect.Value, path []pathStep) reflect.Value {
	for _, s := range path {
		switch {
		case s.deref:
			v = v.Elem()
		case s.index >= 0:
			v = v.Index(s.index)
		default:
			v = v.Field(s.field)
		}
	}
	return v
}

// collectLeaves enumerates every perturbable location in v. Unexported
// fields are skipped (the key-coverage analyzer rejects them
// statically); any kind the walker does not understand fails the test,
// so new field shapes must be taught here rather than silently skipped.
func collectLeaves(t *testing.T, v reflect.Value) []leaf {
	t.Helper()
	var leaves []leaf
	var walk func(v reflect.Value, path []pathStep, name string)
	walk = func(v reflect.Value, path []pathStep, name string) {
		clone := func(s pathStep) []pathStep {
			return append(append([]pathStep(nil), path...), s)
		}
		switch v.Kind() {
		case reflect.Struct:
			st := v.Type()
			for i := 0; i < st.NumField(); i++ {
				f := st.Field(i)
				if !f.IsExported() {
					continue
				}
				walk(v.Field(i), clone(pathStep{field: i, index: -1}), name+"."+f.Name)
			}
		case reflect.Pointer:
			if v.IsNil() {
				// Presence itself must be part of the key.
				leaves = append(leaves, leaf{
					name: name + " (nil→set)",
					path: path,
					mutate: func(fv reflect.Value) {
						fv.Set(reflect.New(fv.Type().Elem()))
					},
				})
				return
			}
			walk(v.Elem(), clone(pathStep{field: -1, index: -1, deref: true}), name)
		case reflect.Slice:
			leaves = append(leaves, leaf{
				name: name + " (len)",
				path: path,
				mutate: func(fv reflect.Value) {
					fv.Set(reflect.Append(fv, reflect.Zero(fv.Type().Elem())))
				},
			})
			if v.Len() > 0 {
				walk(v.Index(0), clone(pathStep{field: -1, index: 0}), name+"[0]")
			}
		case reflect.Bool:
			leaves = append(leaves, leaf{name, path, func(fv reflect.Value) { fv.SetBool(!fv.Bool()) }})
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			leaves = append(leaves, leaf{name, path, func(fv reflect.Value) { fv.SetInt(fv.Int() + 1) }})
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			leaves = append(leaves, leaf{name, path, func(fv reflect.Value) { fv.SetUint(fv.Uint() + 1) }})
		case reflect.Float32, reflect.Float64:
			leaves = append(leaves, leaf{name, path, func(fv reflect.Value) { fv.SetFloat(fv.Float() + 1) }})
		case reflect.String:
			leaves = append(leaves, leaf{name, path, func(fv reflect.Value) { fv.SetString(fv.String() + "~") }})
		default:
			t.Fatalf("field %s has kind %s the perturbation walker does not handle; teach collectLeaves about it", name, v.Kind())
		}
	}
	walk(v, nil, "Job")
	if len(leaves) < 20 {
		t.Fatalf("only %d perturbable fields found; the walker is losing coverage", len(leaves))
	}
	return leaves
}
