package runner

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "sweep.journal")
}

func TestJournalRoundTrip(t *testing.T) {
	jobs := testJobs()
	path := journalPath(t)

	jl, err := OpenJournal(path, jobs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs[:3] {
		if err := jl.Record(j.Key()); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate records are deduped.
	if err := jl.Record(jobs[0].Key()); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(path, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.DoneCount() != 3 || re.SkippedLines() != 0 {
		t.Fatalf("done=%d skipped=%d", re.DoneCount(), re.SkippedLines())
	}
	for i, j := range jobs {
		if got, want := re.Done(j.Key()), i < 3; got != want {
			t.Fatalf("job %d: Done=%v want %v", i, got, want)
		}
	}
	if len(re.Jobs()) != len(jobs) {
		t.Fatalf("manifest lost: %d jobs", len(re.Jobs()))
	}
}

func TestJournalAdoptsManifestWhenOpenedWithNilJobs(t *testing.T) {
	jobs := testJobs()
	path := journalPath(t)
	jl, err := OpenJournal(path, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	jl.Record(jobs[0].Key())
	jl.Close()

	re, err := OpenJournal(path, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Jobs()
	if len(got) != len(jobs) {
		t.Fatalf("adopted %d jobs, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		if got[i].Key() != jobs[i].Key() {
			t.Fatalf("adopted job %d has a different key", i)
		}
	}
}

func TestJournalRejectsMismatchedManifest(t *testing.T) {
	jobs := testJobs()
	path := journalPath(t)
	jl, err := OpenJournal(path, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close()

	other := testJobs()
	other[0].Insts++ // different sweep
	if _, err := OpenJournal(path, other, 0); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Fatalf("mismatched manifest accepted: %v", err)
	}
	if _, err := OpenJournal(path, jobs[:2], 0); err == nil {
		t.Fatal("shorter sweep accepted")
	}
}

// TestJournalToleratesCorruptTail pins crash-safety: a torn final line
// is truncated away and only costs the completions it carried.
func TestJournalToleratesCorruptTail(t *testing.T) {
	jobs := testJobs()
	path := journalPath(t)
	jl, err := OpenJournal(path, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	jl.Record(jobs[0].Key())
	jl.Record(jobs[1].Key())
	jl.Close()

	// Simulate a crash mid-append: a torn, newline-less record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"done":"abcd`)
	f.Close()

	re, err := OpenJournal(path, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if re.DoneCount() != 2 || re.SkippedLines() != 1 {
		t.Fatalf("done=%d skipped=%d", re.DoneCount(), re.SkippedLines())
	}
	// The journal keeps working after the truncation.
	if err := re.Record(jobs[2].Key()); err != nil {
		t.Fatal(err)
	}
	re.Close()

	re2, err := OpenJournal(path, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.DoneCount() != 3 || re2.SkippedLines() != 0 {
		t.Fatalf("after repair: done=%d skipped=%d", re2.DoneCount(), re2.SkippedLines())
	}
}

func TestJournalResetsUnreadableHeader(t *testing.T) {
	path := journalPath(t)
	if err := os.WriteFile(path, []byte("not a journal at all\n{\"done\":\"x\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jobs := testJobs()
	jl, err := OpenJournal(path, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl.Close()
	if jl.DoneCount() != 0 || jl.SkippedLines() != 2 {
		t.Fatalf("done=%d skipped=%d", jl.DoneCount(), jl.SkippedLines())
	}
	if len(jl.Jobs()) != len(jobs) {
		t.Fatal("fresh header lost the manifest")
	}
}

func TestNilJournalIsSafe(t *testing.T) {
	var jl *Journal
	if jl.Done("k") || jl.DoneCount() != 0 || jl.Jobs() != nil ||
		jl.SkippedLines() != 0 || jl.Path() != "" {
		t.Fatal("nil journal invented state")
	}
	if jl.Record("k") != nil || jl.Close() != nil {
		t.Fatal("nil journal errored")
	}
}

// TestEngineResumesFromJournal is the checkpointing contract: run 1
// completes a prefix, run 2 over the same journal+cache executes
// exactly the remaining jobs and returns the full, identical sweep.
func TestEngineResumesFromJournal(t *testing.T) {
	jobs := testJobs()
	dir := t.TempDir()
	cache1 := NewCache(filepath.Join(dir, "cache"))
	jl1, err := OpenJournal(filepath.Join(dir, "sweep.journal"), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 2, Cache: cache1, Journal: jl1})
	first := e1.Run(context.Background(), jobs[:4]) // partial sweep
	if err := FirstError(first); err != nil {
		t.Fatal(err)
	}
	if err := jl1.Close(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: new cache handle over the same dir, reopened
	// journal. The first 4 jobs resume; only the last 2 execute.
	cache2 := NewCache(filepath.Join(dir, "cache"))
	jl2, err := OpenJournal(filepath.Join(dir, "sweep.journal"), jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if jl2.DoneCount() != 4 {
		t.Fatalf("journal recorded %d jobs, want 4", jl2.DoneCount())
	}
	e2 := New(Options{Workers: 2, Cache: cache2, Journal: jl2})
	second := e2.Run(context.Background(), jobs)
	if err := FirstError(second); err != nil {
		t.Fatal(err)
	}
	if got := e2.Executed(); got != uint64(len(jobs)-4) {
		t.Fatalf("resumed run executed %d jobs, want %d", got, len(jobs)-4)
	}
	for i := 0; i < 4; i++ {
		if !second[i].Cached || second[i].Status != StatusOK {
			t.Fatalf("job %d not resumed: %+v", i, second[i])
		}
	}
	// Resumed results match the originals byte-for-byte.
	for i := range first {
		a, _ := json.Marshal(first[i].Results)
		b, _ := json.Marshal(second[i].Results)
		if string(a) != string(b) {
			t.Fatalf("job %d diverged across resume", i)
		}
	}
	if jl2.DoneCount() != len(jobs) {
		t.Fatalf("journal now records %d jobs, want %d", jl2.DoneCount(), len(jobs))
	}
}

// TestCancelMidSweepMarksCanceledAndResumeCompletes is the satellite
// contract: cancelling mid-sweep yields partial results whose undone
// jobs are Canceled (not Failed), and a resumed run completes exactly
// the remaining set.
func TestCancelMidSweepMarksCanceledAndResumeCompletes(t *testing.T) {
	jobs := testJobs()
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	jpath := filepath.Join(dir, "sweep.journal")

	jl1, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Options{Workers: 1, Cache: NewCache(cacheDir), Journal: jl1})
	ctx, cancel := context.WithCancel(context.Background())
	ran := 0
	inner := e1.simulate
	e1.simulate = func(j *Job) ([]core.Result, error) {
		ran++
		if ran == 2 {
			cancel() // interrupt after the second job starts
		}
		return inner(j)
	}
	first := e1.Run(ctx, jobs)
	jl1.Close()

	var done, canceled int
	for i := range first {
		switch first[i].Status {
		case StatusOK:
			done++
		case StatusCanceled:
			canceled++
		default:
			t.Fatalf("job %d: status %q (err %q), want ok or canceled",
				i, first[i].Status, first[i].Err)
		}
	}
	if done == 0 || canceled == 0 || done+canceled != len(jobs) {
		t.Fatalf("done=%d canceled=%d of %d", done, canceled, len(jobs))
	}

	jl2, err := OpenJournal(jpath, jobs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	if jl2.DoneCount() != done {
		t.Fatalf("journal has %d done, sweep reported %d", jl2.DoneCount(), done)
	}
	e2 := New(Options{Workers: 2, Cache: NewCache(cacheDir), Journal: jl2})
	second := e2.Run(context.Background(), jobs)
	if err := FirstError(second); err != nil {
		t.Fatal(err)
	}
	if got := e2.Executed(); got != uint64(canceled) {
		t.Fatalf("resume executed %d jobs, want exactly the %d canceled ones", got, canceled)
	}
}

// TestDrainStopsFeedingAndMarksCanceled: running jobs finish, unfed
// jobs come back canceled with ErrDraining.
func TestDrainStopsFeedingAndMarksCanceled(t *testing.T) {
	jobs := testJobs()
	e := New(Options{Workers: 1})
	inner := e.simulate
	first := true
	e.simulate = func(j *Job) ([]core.Result, error) {
		if first { // drain mid-flight, from inside the first running job
			first = false
			e.Drain()
		}
		return inner(j)
	}
	rs := e.Run(context.Background(), jobs)
	if !e.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	var ok, canceled int
	for i := range rs {
		switch rs[i].Status {
		case StatusOK:
			ok++
		case StatusCanceled:
			if !strings.Contains(rs[i].Err, ErrDraining.Error()) {
				t.Fatalf("job %d err = %q", i, rs[i].Err)
			}
			canceled++
		default:
			t.Fatalf("job %d status %q", i, rs[i].Status)
		}
	}
	if ok == 0 || canceled == 0 {
		t.Fatalf("ok=%d canceled=%d: drain either killed running jobs or stopped nothing", ok, canceled)
	}
}

func TestPanicCapturesStackAndLogsOnce(t *testing.T) {
	var logs []string
	e := New(Options{
		Workers: 1, Retries: 2,
		Logf: func(format string, args ...any) {
			logs = append(logs, strings.Split(strings.TrimSpace(format), "\n")[0])
		},
	})
	e.simulate = func(*Job) ([]core.Result, error) { panic("boom at cycle 42") }
	rs := e.Run(context.Background(), []Job{STJob(config.BaselineExclusive(), "hmmer", tInsts, tWarmup)})
	if rs[0].Status != StatusFailed || !strings.Contains(rs[0].Err, "job panicked: boom at cycle 42") {
		t.Fatalf("result = %+v", rs[0])
	}
	if !strings.Contains(rs[0].Stack, "runner.") {
		t.Fatalf("no stack captured: %q", rs[0].Stack)
	}
	// Three attempts panicked; the stack is logged exactly once.
	if len(logs) != 1 {
		t.Fatalf("panic logged %d times, want 1: %v", len(logs), logs)
	}
}

// TestJournalTornTailUnderConcurrentWriters drives the crash-recovery
// path the way a sharded sweep actually writes it: many workers
// recording completions concurrently (with overlapping keys), a crash
// that tears the final record, and a reopen that must recover every
// fully written completion while discarding only the torn tail.
func TestJournalTornTailUnderConcurrentWriters(t *testing.T) {
	jobs := testJobs()
	path := journalPath(t)
	jl, err := OpenJournal(path, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every writer records every key: heavy interleaving plus
			// the duplicate-suppression path under contention.
			for i := range jobs {
				if err := jl.Record(jobs[(i+w)%len(jobs)].Key()); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash mid-append: a torn, newline-less record at the tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"done":"0123abc`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenJournal(path, jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.DoneCount() != len(jobs) || re.SkippedLines() != 1 {
		t.Fatalf("after recovery: done=%d skipped=%d, want %d/1", re.DoneCount(), re.SkippedLines(), len(jobs))
	}
	for _, j := range jobs {
		if !re.Done(j.Key()) {
			t.Fatalf("completion for %s lost in recovery", j.Key()[:12])
		}
	}
}
