package runner

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/telemetry"
)

func sampleGrid(insts int64) []Job {
	return (&Grid{
		Configs: []config.SystemConfig{
			config.BaselineExclusive(),
			config.WithCATCH(config.BaselineExclusive(), "catch-sampled"),
		},
		Workloads: []string{"mcf", "libquantum"},
		Insts:     insts,
		Warmup:    insts / 2,
	}).Jobs()
}

// TestSampledSweep runs a small grid through the sampling path and
// pins the workflow: every job resolves sampled (no fallbacks), every
// result carries its SampleMeta, the instruction budget is honored and
// the sampled keys differ from the exact ones.
func TestSampledSweep(t *testing.T) {
	const insts = 4_000
	jobs := sampleGrid(insts)
	eng := New(Options{
		Workers: 2,
		Cache:   NewCache(""),
		Sample:  true, SampleInterval: 500, SampleK: 3,
	})
	rs := eng.Run(context.Background(), jobs)
	if err := FirstError(rs); err != nil {
		t.Fatalf("sweep failed: %v", err)
	}
	if got, want := eng.Sampled(), uint64(len(jobs)); got != want {
		t.Errorf("Sampled() = %d, want %d", got, want)
	}
	if eng.SampleFallbacks() != 0 {
		t.Errorf("SampleFallbacks() = %d, want 0", eng.SampleFallbacks())
	}
	for i := range rs {
		if rs[i].Job.Sample == nil {
			t.Fatalf("job %d was not stamped", i)
		}
		if rs[i].Job.Key() == jobs[i].Key() {
			t.Errorf("job %d: sampled key equals exact key", i)
		}
		for _, r := range rs[i].Results {
			if r.Sample == nil {
				t.Errorf("job %d: result carries no SampleMeta", i)
				continue
			}
			if r.Insts != insts {
				t.Errorf("job %d: extrapolated Insts = %d, want %d", i, r.Insts, insts)
			}
			if r.Sample.MeasuredInsts != 3*500 {
				t.Errorf("job %d: MeasuredInsts = %d, want %d", i, r.Sample.MeasuredInsts, 3*500)
			}
		}
	}
	// Profiles are per-workload, snapshots per (config, workload).
	if ps := eng.Sampler().Stats(); ps.Profiled != 2 {
		t.Errorf("profiles built = %d, want 2 (one per workload)", ps.Profiled)
	}
	if ss := eng.Sampler().Snapshots().Stats(); ss.Built != 4 {
		t.Errorf("snapshots built = %d, want 4 (one per config×workload)", ss.Built)
	}
}

// TestSampledFallback forces the planner to fail and pins graceful
// degradation: the job still succeeds via full simulation, the
// fallback is counted, and the result carries no SampleMeta.
func TestSampledFallback(t *testing.T) {
	const insts = 2_000
	jobs := sampleGrid(insts)[:1]
	reg := telemetry.NewRegistry()
	eng := New(Options{Workers: 1, Sample: true, SampleInterval: 500, SampleK: 2, Metrics: reg})
	eng.sampleRun = func(*Job) ([]core.Result, error) {
		return nil, errors.New("injected sampling failure")
	}
	rs := eng.Run(context.Background(), jobs)
	if err := FirstError(rs); err != nil {
		t.Fatalf("job failed instead of falling back: %v", err)
	}
	if eng.Sampled() != 0 || eng.SampleFallbacks() != 1 {
		t.Errorf("Sampled=%d SampleFallbacks=%d, want 0 and 1", eng.Sampled(), eng.SampleFallbacks())
	}
	if len(rs[0].Results) != 1 || rs[0].Results[0].Sample != nil {
		t.Errorf("fallback result should be a full simulation without SampleMeta: %+v", rs[0].Results)
	}
	if rs[0].Results[0].Insts != insts {
		t.Errorf("fallback Insts = %d, want %d", rs[0].Results[0].Insts, insts)
	}
}

// TestSampledStampSkipsIneligible pins that multi-programmed jobs and
// budgets the defaults cannot split stay unstamped (and therefore run
// exact), rather than failing validation.
func TestSampledStampSkipsIneligible(t *testing.T) {
	eng := New(Options{Workers: 1, Sample: true})
	mp := MPJob(config.BaselineExclusive(), []string{"mcf", "lbm"}, 2_000, 500)
	odd := STJob(config.BaselineExclusive(), "mcf", 7, 3) // 7 insts: indivisible by 16
	stamped := eng.stampSampled([]Job{mp, odd})
	if stamped[0].Sample != nil {
		t.Error("multi-programmed job was stamped for sampling")
	}
	if stamped[1].Sample != nil {
		t.Error("indivisible budget was stamped for sampling")
	}
}

// TestSampledResumeRoundTrip pins that a journaled sampled sweep
// resumes without recomputation: stamping happens before the resume
// pass, so the journaled keys are the stamped ones and the second run
// serves every job from the journal's done set plus the cache.
func TestSampledResumeRoundTrip(t *testing.T) {
	const insts = 2_000
	jobs := sampleGrid(insts)[:2]
	dir := t.TempDir()
	jl, err := OpenJournal(filepath.Join(dir, "sweep.journal"), jobs, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer jl.Close()
	eng := New(Options{
		Workers: 1, Cache: NewCache(""), Journal: jl,
		Sample: true, SampleInterval: 500, SampleK: 2,
	})
	if err := FirstError(eng.Run(context.Background(), jobs)); err != nil {
		t.Fatalf("first run: %v", err)
	}
	ran := eng.Executed()
	rs := eng.Run(context.Background(), jobs)
	if err := FirstError(rs); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if eng.Executed() != ran {
		t.Errorf("resume recomputed: executions went %d -> %d", ran, eng.Executed())
	}
	for i := range rs {
		if !rs[i].Cached {
			t.Errorf("job %d not served from cache on resume", i)
		}
	}
}
