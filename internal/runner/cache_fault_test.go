package runner

import (
	"os"
	"path/filepath"
	"testing"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/fault"
)

// TestCorruptEntryIsQuarantined: first detection renames the entry to
// *.corrupt (kept for inspection, never re-read) and counts it.
func TestCorruptEntryIsQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := STJob(config.BaselineExclusive(), "mcf", 100, 50).Key()
	p := filepath.Join(dir, key+".json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewCache(dir)
	rs, cached, err := c.Do(key, func() ([]core.Result, error) { return oneResult("fresh"), nil })
	if err != nil || cached || rs[0].Workload != "fresh" {
		t.Fatalf("cached=%v err=%v rs=%v", cached, err, rs)
	}
	s := c.Stats()
	if s.BadDisk != 1 || s.Quarantined != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if raw, err := os.ReadFile(p + ".corrupt"); err != nil || string(raw) != "{not json" {
		t.Fatalf("quarantined copy: %q, %v", raw, err)
	}
	// The recomputed entry was persisted over the old path.
	if raw, err := os.ReadFile(p); err != nil || len(raw) == 0 {
		t.Fatalf("fresh entry not rewritten: %v", err)
	}
}

// TestBreakerTripsToMemoryOnlyAndRecovers drives the cache's disk
// layer through injected read errors until the breaker opens, verifies
// the cache keeps serving (memory-only), then lets the half-open probe
// close it again once the faults heal.
func TestBreakerTripsToMemoryOnlyAndRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.Plan{Seed: 1, Rules: map[fault.Kind]fault.Rule{
		fault.DiskRead:  {Prob: 1, Times: 3}, // every read fails, three times per site
		fault.DiskWrite: {Prob: 1, Times: 3}, // writes too, else stores reset the failure streak
	}})
	br := fault.NewBreaker(3, 8)
	c := NewCacheOpts(CacheOptions{Dir: dir, FS: fault.InjectFS{FS: fault.OS{}, Inj: inj}, Breaker: br})

	keys := make([]string, 3)
	for i := range keys {
		keys[i] = STJob(config.BaselineExclusive(), "mcf", int64(100+i), 50).Key()
	}
	// Three failing loads in a row trip the breaker; every Do still
	// succeeds via compute.
	for _, k := range keys {
		if _, _, err := c.Do(k, func() ([]core.Result, error) { return oneResult("computed"), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if br.State() != fault.StateOpen {
		t.Fatalf("breaker %v after %d disk errors", br.State(), c.Stats().DiskErrs)
	}
	if c.Stats().DiskErrs == 0 {
		t.Fatalf("stats = %+v", c.Stats())
	}
	// Memory-only mode: a fresh key computes without touching the disk
	// (an open breaker denies the load and the store).
	k := STJob(config.BaselineExclusive(), "hmmer", 100, 50).Key()
	if _, _, err := c.Do(k, func() ([]core.Result, error) { return oneResult("m"), nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, k+".json")); !os.IsNotExist(err) {
		t.Fatal("open breaker still wrote to disk")
	}
	// Memory hits keep working throughout.
	if rs, ok := c.Get(k); !ok || rs[0].Workload != "m" {
		t.Fatal("memory entry lost in memory-only mode")
	}

	// The injected faults have a budget of 3 per site, already spent on
	// the first key's retries... drive denials until the half-open probe
	// goes through against the healed disk and closes the circuit.
	for i := 0; br.State() != fault.StateClosed && i < 100; i++ {
		c.Do(keys[0], func() ([]core.Result, error) { return oneResult("computed"), nil })
		c.mu.Lock()
		delete(c.mem, keys[0]) // force the next Do back to the disk layer
		c.mu.Unlock()
	}
	if br.State() != fault.StateClosed {
		t.Fatalf("breaker never recovered: %v (trips %d)", br.State(), br.Trips())
	}
}
