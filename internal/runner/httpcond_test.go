package runner

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"catch/internal/core"
)

func TestNoneMatch(t *testing.T) {
	etag := ETagFor("deadbeefdeadbeef")
	tests := []struct {
		name   string
		header string
		want   bool
	}{
		{"empty header never matches", "", false},
		{"exact strong match", etag, true},
		{"weak prefix compares equal", "W/" + etag, true},
		{"wildcard matches anything", "*", true},
		{"match inside a list", `"aaaa", ` + etag + `, "bbbb"`, true},
		{"list without a match", `"aaaa", "bbbb"`, false},
		{"unquoted key is not an entity tag", "deadbeefdeadbeef", false},
		{"different key", `"feedfacefeedface"`, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NoneMatch(tt.header, etag); got != tt.want {
				t.Fatalf("NoneMatch(%q) = %v, want %v", tt.header, got, tt.want)
			}
		})
	}
}

func TestServeResultConditional(t *testing.T) {
	key := "deadbeefdeadbeef"
	doc := map[string]any{"key": key}

	// Unconditional read: 200 with validator and freshness headers.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/v1/results/"+key, nil)
	ServeResult(rec, req, key, doc, 0)
	if rec.Code != http.StatusOK || rec.Body.Len() == 0 {
		t.Fatalf("unconditional ServeResult = %d (%d bytes)", rec.Code, rec.Body.Len())
	}
	if got := rec.Header().Get("Cache-Control"); got != "public, max-age=31536000, immutable" {
		t.Fatalf("default Cache-Control = %q", got)
	}

	// Conditional read with a current validator: body-less 304 that
	// still carries the caching headers.
	rec = httptest.NewRecorder()
	req.Header.Set("If-None-Match", ETagFor(key))
	ServeResult(rec, req, key, doc, 45*time.Second)
	if rec.Code != http.StatusNotModified || rec.Body.Len() != 0 {
		t.Fatalf("conditional ServeResult = %d (%d bytes), want body-less 304", rec.Code, rec.Body.Len())
	}
	if got := rec.Header().Get("ETag"); got != ETagFor(key) {
		t.Fatalf("304 ETag = %q", got)
	}
	if got := rec.Header().Get("Cache-Control"); got != "public, max-age=45, immutable" {
		t.Fatalf("configured Cache-Control = %q", got)
	}
	if got := rec.Header().Get("Vary"); got != "Accept-Encoding" {
		t.Fatalf("Vary = %q", got)
	}
}

// TestResultsEndpointContract pins the /v1/results/{key} status-code
// contract end to end: malformed keys are the client's error, a
// quarantined or evicted entry is a consistent 404 (never a 200 with an
// empty body), and a warm client revalidates into a 304.
func TestResultsEndpointContract(t *testing.T) {
	eng := New(Options{Workers: 1, Cache: NewCache("")})
	ts := newTestServer(eng)
	defer ts.Close()

	key := "deadbeefdeadbeef"
	for _, bad := range []string{"nope", "DEADBEEFDEADBEEF", "xyz!", "abc123"} {
		resp, raw := getURL(t, ts.URL+"/v1/results/"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("results/%s = %d: %s", bad, resp.StatusCode, raw)
		}
	}

	// An entry that a quarantine race would empty is rejected at Put, so
	// the read path stays a 404 — never a 200 with no results.
	eng.Cache().Put(key, nil)
	resp, raw := getURL(t, ts.URL+"/v1/results/"+key)
	if resp.StatusCode != http.StatusNotFound || len(raw) == 0 {
		t.Fatalf("empty entry read = %d (%d bytes), want JSON 404", resp.StatusCode, len(raw))
	}

	eng.Cache().Put(key, []core.Result{{Workload: "mcf", IPC: 1}})
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/results/"+key, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", ETagFor(key))
	cond, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer cond.Body.Close()
	if cond.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", cond.StatusCode)
	}
}
