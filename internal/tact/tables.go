package tact

import "math/bits"

// This file holds the fixed-geometry, array-backed tables that replace
// the Go maps TACT originally used for its per-access state. Hardware
// keeps these structures as small set-associative SRAMs (Fig 9 /
// Table I); modelling them as flat arrays both removes per-access map
// hashing and allocation from the simulator's hottest path and keeps
// the model honest about its storage: every structure below has a
// fixed capacity chosen at construction and an explicit replacement
// policy.

// fibMul is the 64-bit Fibonacci-hash multiplier used to spread PC
// keys over power-of-two set counts (PCs are word-aligned and highly
// clustered, so plain modulo would pile them into few sets).
const fibMul = 0x9E3779B97F4A7C15

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// ---------------------------------------------------------------------------
// strideTable: per-load-PC address/stride/data tracker.

// strideEntry is one way of the stride table: the last address, the
// current stride with a 2-bit confidence, and the last loaded data
// value (the feeder's view of the PC's most recent load).
type strideEntry struct {
	pc       uint64
	lastAddr uint64
	data     uint64
	stride   int64
	lru      int64
	conf     uint8
	seen     bool
	hasData  bool
	valid    bool
}

// strideTable is a set-associative, LRU-replaced table of strideEntry,
// with a power-of-two set count indexed by a Fibonacci hash of the PC.
// It replaces both the unbounded strides and lastData maps.
type strideTable struct {
	entries []strideEntry
	ways    int
	shift   uint // 64 - log2(sets)
	tick    int64
}

func (t *strideTable) init(sets, ways int) {
	sets = nextPow2(sets)
	if ways <= 0 {
		ways = 1
	}
	t.ways = ways
	t.shift = uint(64 - bits.Len(uint(sets-1)))
	if sets == 1 {
		t.shift = 64
	}
	t.entries = make([]strideEntry, sets*ways)
	t.tick = 0
}

func (t *strideTable) set(pc uint64) []strideEntry {
	var s uint64
	if t.shift < 64 {
		s = (pc * fibMul) >> t.shift
	}
	return t.entries[int(s)*t.ways : (int(s)+1)*t.ways]
}

// lookup returns the entry for pc, or nil when it is not tracked. It
// does not touch replacement state: reads model probe ports.
//
//catch:hotpath
func (t *strideTable) lookup(pc uint64) *strideEntry {
	set := t.set(pc)
	for i := range set {
		if set[i].valid && set[i].pc == pc {
			return &set[i]
		}
	}
	return nil
}

// touch returns the entry for pc, allocating (LRU victim within the
// set) when absent, and stamps its recency.
//
//catch:hotpath
func (t *strideTable) touch(pc uint64) *strideEntry {
	set := t.set(pc)
	t.tick++
	victim, oldest := 0, int64(1<<62-1)
	for i := range set {
		e := &set[i]
		if e.valid && e.pc == pc {
			e.lru = t.tick
			return e
		}
		if !e.valid {
			if oldest != -1 {
				victim, oldest = i, -1
			}
		} else if oldest != -1 && e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	e := &set[victim]
	*e = strideEntry{pc: pc, lru: t.tick, valid: true}
	return e
}

// ---------------------------------------------------------------------------
// regIndex: trained trigger/feeder PC -> registered target slots.

// regIndex maps a PC to the target-table slots registered against it
// (cross: trained trigger PCs; feeder: trained feeder PCs). It is a
// compact array of (pc, slot) pairs kept sorted by (pc, registration
// order), so the per-load lookup is a branchless filter check plus a
// short binary search — no hashing, no map, no per-entry slices. Every
// target registers at most once per index, so capacity equals the
// target-table size and the backing array never grows after init.
type regIndex struct {
	pcs   []uint64
	slots []uint16
	n     int
	// filter is a 64-bit Bloom-style presence filter over hashed PCs:
	// the common case (a load PC with no trained registrations) is
	// rejected with one multiply and one mask.
	filter uint64 //catch:nosnap rebuilt from pcs by rebuildFilter on restore
}

func (ix *regIndex) init(capacity int) {
	if capacity <= 0 {
		capacity = 1
	}
	ix.pcs = make([]uint64, 0, capacity)
	ix.slots = make([]uint16, 0, capacity)
	ix.n = 0
	ix.filter = 0
}

func regFilterBit(pc uint64) uint64 {
	return 1 << ((pc * fibMul) >> 58)
}

// lowerBound returns the first index i with pcs[i] >= pc.
//
//catch:hotpath
func (ix *regIndex) lowerBound(pc uint64) int {
	lo, hi := 0, ix.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.pcs[mid] < pc {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// add registers slot under pc, after any existing registrations for
// the same pc (insertion position preserves firing order).
//
//catch:hotpath
func (ix *regIndex) add(pc uint64, slot uint16) {
	if ix.n >= cap(ix.pcs) {
		// Cannot happen: one registration per target slot. Guarded so a
		// future change fails loudly instead of corrupting the index.
		panic("tact: regIndex capacity exceeded")
	}
	i := ix.lowerBound(pc)
	for i < ix.n && ix.pcs[i] == pc {
		i++
	}
	ix.pcs = ix.pcs[:ix.n+1]
	ix.slots = ix.slots[:ix.n+1]
	copy(ix.pcs[i+1:], ix.pcs[i:])
	copy(ix.slots[i+1:], ix.slots[i:])
	ix.pcs[i], ix.slots[i] = pc, slot
	ix.n++
	ix.filter |= regFilterBit(pc)
}

// remove drops the registration of slot under pc (no-op when absent)
// and rebuilds the presence filter.
//
//catch:hotpath
func (ix *regIndex) remove(pc uint64, slot uint16) {
	i := ix.lowerBound(pc)
	for ; i < ix.n && ix.pcs[i] == pc; i++ {
		if ix.slots[i] == slot {
			copy(ix.pcs[i:], ix.pcs[i+1:ix.n])
			copy(ix.slots[i:], ix.slots[i+1:ix.n])
			ix.n--
			ix.pcs = ix.pcs[:ix.n]
			ix.slots = ix.slots[:ix.n]
			ix.rebuildFilter()
			return
		}
	}
}

func (ix *regIndex) rebuildFilter() {
	ix.filter = 0
	for _, pc := range ix.pcs[:ix.n] {
		ix.filter |= regFilterBit(pc)
	}
}

// find returns the [lo,hi) range of registrations for pc, in
// registration order. The filter rejects almost all unregistered PCs
// before the binary search runs.
//
//catch:hotpath
func (ix *regIndex) find(pc uint64) (int, int) {
	if ix.filter&regFilterBit(pc) == 0 {
		return 0, 0
	}
	lo := ix.lowerBound(pc)
	hi := lo
	for hi < ix.n && ix.pcs[hi] == pc {
		hi++
	}
	return lo, hi
}
