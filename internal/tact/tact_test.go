package tact

import (
	"testing"

	"catch/internal/trace"
)

// critSet marks a fixed set of PCs critical.
type critSet map[uint64]bool

func (c critSet) IsCritical(pc uint64) bool { return c[pc] }

// capture collects issued prefetch addresses.
type capture struct {
	addrs []uint64
}

func (c *capture) issue(addr uint64, now int64) { c.addrs = append(c.addrs, addr) }

func (c *capture) has(addr uint64) bool {
	for _, a := range c.addrs {
		if a == addr {
			return true
		}
	}
	return false
}

func newTact(crit Criticality) (*Prefetchers, *capture) {
	cap := &capture{}
	p := New(DefaultConfig(), crit)
	p.IssueData = cap.issue
	return p, cap
}

func load(pc uint64, dst, src int8, addr, data uint64) trace.Inst {
	return trace.Inst{PC: pc, Op: trace.OpLoad, Dst: dst, Src1: src, Src2: trace.NoReg, Addr: addr, Data: data}
}

func TestDeepSelfIssuesDist1AndDeep(t *testing.T) {
	target := uint64(0x1000)
	p, cap := newTact(critSet{target: true})
	base := uint64(0x100000)
	// Long stable stride: safe length should saturate and deep
	// prefetches appear.
	for i := 0; i < 200; i++ {
		in := load(target, 1, 0, base+uint64(i)*64, 0)
		p.OnDispatch(&in, int64(i*10))
	}
	if p.Stats.Dist1Issued == 0 {
		t.Fatal("no distance-1 prefetches")
	}
	last := base + 199*64
	if !cap.has(last + 64) {
		t.Fatal("distance-1 prefetch for next line missing")
	}
	if p.Stats.DeepIssued == 0 {
		t.Fatal("no deep prefetches despite long stable stride")
	}
	// Deep distance is capped at 16 lines.
	for _, a := range cap.addrs {
		if a > last+16*64 {
			t.Fatalf("prefetch beyond max deep distance: %#x (last %#x)", a, last)
		}
	}
}

func TestDeepSelfNotForNonCritical(t *testing.T) {
	p, cap := newTact(critSet{})
	for i := 0; i < 100; i++ {
		in := load(0x1000, 1, 0, uint64(0x100000+i*64), 0)
		p.OnDispatch(&in, int64(i*10))
	}
	if len(cap.addrs) != 0 {
		t.Fatalf("non-critical PC triggered %d prefetches", len(cap.addrs))
	}
}

func TestDeepSelfSafeLengthLearnsShortRuns(t *testing.T) {
	target := uint64(0x1000)
	p, _ := newTact(critSet{target: true})
	// Runs of 4 strided accesses, then a jump: safeLen must stay small.
	a := uint64(0x100000)
	tick := int64(0)
	for r := 0; r < 50; r++ {
		for i := 0; i < 4; i++ {
			in := load(target, 1, 0, a, 0)
			p.OnDispatch(&in, tick)
			a += 64
			tick += 10
		}
		a += 1 << 20 // run break
	}
	tgt := p.findTarget(target)
	if tgt == nil {
		t.Fatal("target entry missing")
	}
	if tgt.safeLen > 8 {
		t.Fatalf("safeLen %d did not adapt to short runs", tgt.safeLen)
	}
}

func TestCrossLearnsTriggerAndDelta(t *testing.T) {
	trigPC, tgtPC := uint64(0x2000), uint64(0x2100)
	p, cap := newTact(critSet{tgtPC: true})
	delta := uint64(640)
	// Pages visited pseudo-randomly; trigger first touches a page, the
	// critical target follows at a fixed delta.
	for i := 0; i < 400; i++ {
		page := uint64(0x400000) + uint64(trace.Hash64(uint64(i))%64)*trace.PageSize
		trig := load(trigPC, 1, 0, page, 0)
		p.OnDispatch(&trig, int64(i*20))
		tgt := load(tgtPC, 2, 1, page+delta, 0)
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	if p.Stats.CrossTrained == 0 {
		t.Fatal("cross association never trained")
	}
	if p.Stats.CrossIssued == 0 {
		t.Fatal("cross prefetches never issued")
	}
	// A final trigger must prefetch its page+delta.
	cap.addrs = cap.addrs[:0]
	fresh := uint64(0x900000)
	trig := load(trigPC, 1, 0, fresh, 0)
	p.OnDispatch(&trig, 99999)
	if !cap.has(fresh + delta) {
		t.Fatalf("trained trigger did not prefetch target: issued %v", cap.addrs)
	}
}

func TestCrossGivesUpOnNoise(t *testing.T) {
	tgtPC := uint64(0x2100)
	p, _ := newTact(critSet{tgtPC: true})
	rng := trace.NewRNG(1)
	// Target addresses with no stable relation to any toucher.
	for i := 0; i < 3000; i++ {
		page := uint64(0x400000) + uint64(rng.Intn(64))*trace.PageSize
		trig := load(0x2000, 1, 0, page+uint64(rng.Intn(50))*64, 0)
		p.OnDispatch(&trig, int64(i*20))
		tgt := load(tgtPC, 2, 1, page+uint64(rng.Intn(50))*64, 0)
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	if p.Stats.CrossTrained != 0 {
		t.Fatal("cross trained on noise")
	}
	if p.Stats.CrossGaveUp == 0 {
		t.Fatal("cross never gave up searching")
	}
}

func TestFeederLearnsScaleAndBase(t *testing.T) {
	feedPC, tgtPC := uint64(0x3000), uint64(0x3100)
	tgtBase := uint64(0x800000)
	values := map[uint64]uint64{}
	p, cap := newTact(critSet{tgtPC: true})
	p.ValueAt = func(addr uint64) (uint64, bool) {
		v, ok := values[addr]
		return v, ok
	}
	idxBase := uint64(0x500000)
	for i := 0; i < 300; i++ {
		data := uint64(trace.Hash64(uint64(i)) % 10000)
		fa := idxBase + uint64(i)*8
		values[fa] = data
		// Pre-populate future feeder values for look-ahead reads.
		for d := 1; d <= 8; d++ {
			values[fa+uint64(d)*8] = uint64(trace.Hash64(uint64(i+d)) % 10000)
		}
		feed := load(feedPC, 1, 0, fa, data)
		p.OnDispatch(&feed, int64(i*20))
		tgt := load(tgtPC, 2, 1, tgtBase+8*data, 0)
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	if p.Stats.FeederTrained == 0 {
		t.Fatal("feeder relation never trained")
	}
	if p.Stats.FeederIssued == 0 {
		t.Fatal("feeder prefetches never issued")
	}
	// The look-ahead prefetch must target scale*futureData+base.
	tgt := p.findTarget(tgtPC)
	if tgt == nil || !tgt.feeder.done {
		t.Fatal("feeder state not finalized")
	}
	if feederScales[tgt.feeder.scaleIdx] != 8 {
		t.Fatalf("learned scale %d, want 8", feederScales[tgt.feeder.scaleIdx])
	}
	if tgt.feeder.base[tgt.feeder.scaleIdx] != tgtBase {
		t.Fatalf("learned base %#x, want %#x", tgt.feeder.base[tgt.feeder.scaleIdx], tgtBase)
	}
	_ = cap
}

func TestFeederRegisterLineagePropagates(t *testing.T) {
	p, _ := newTact(critSet{})
	ld := load(0x4000, 1, 0, 0x100000, 7)
	p.OnDispatch(&ld, 0)
	// ALU moves the loaded value to another register.
	mv := trace.Inst{PC: 0x4004, Op: trace.OpALU, Dst: 5, Src1: 1, Src2: trace.NoReg}
	p.OnDispatch(&mv, 1)
	if p.regLoadPC[5] != 0x4000 {
		t.Fatalf("lineage not propagated: reg5 <- %#x", p.regLoadPC[5])
	}
}

func TestTargetTableLRUEviction(t *testing.T) {
	crit := critSet{}
	for i := 0; i < 40; i++ {
		crit[uint64(0x1000+i*16)] = true
	}
	p, _ := newTact(crit)
	for i := 0; i < 40; i++ {
		in := load(uint64(0x1000+i*16), 1, 0, uint64(0x100000+i*4096), 0)
		p.OnDispatch(&in, int64(i))
	}
	if len(p.targets) > p.Cfg.Targets {
		t.Fatalf("target table exceeded capacity: %d", len(p.targets))
	}
	if p.Stats.TargetsAllocated != 40 {
		t.Fatalf("allocations = %d", p.Stats.TargetsAllocated)
	}
}

func TestTriggerCacheTracksFirstFour(t *testing.T) {
	var tc TriggerCache
	tc.init()
	page := uint64(0x400000)
	for i := 0; i < 6; i++ {
		tc.Touch(page, uint64(0x1000+i*4))
	}
	pcs, n := tc.Candidates(page)
	if n != 4 {
		t.Fatalf("candidates = %d, want 4", n)
	}
	if pcs[0] != 0x1000 || pcs[3] != 0x100C {
		t.Fatalf("first-four order wrong: %#x", pcs)
	}
	// Re-touch by an existing PC must not duplicate.
	tc.Touch(page, 0x1000)
	if _, n := tc.Candidates(page); n != 4 {
		t.Fatal("duplicate touch changed candidate count")
	}
}

func TestTriggerCacheEviction(t *testing.T) {
	var tc TriggerCache
	tc.init()
	// 8 ways per set: touch 9 pages mapping to the same set.
	for i := 0; i < 9; i++ {
		page := uint64(i*8) << 12 // page>>12 ≡ 0 (mod 8)
		tc.Touch(page, 0x1000)
	}
	if _, n := tc.Candidates(0); n != 0 {
		t.Fatal("LRU page not evicted")
	}
}

func TestAreaBytes(t *testing.T) {
	p, _ := newTact(critSet{})
	a := p.AreaBytes()
	// Paper Fig 9: ≈1.2KB.
	if a < 1000 || a > 1600 {
		t.Fatalf("TACT area %dB, want ≈1.2KB", a)
	}
}

func TestComponentDisabling(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableDeep = false
	cfg.EnableCross = false
	cfg.EnableFeeder = false
	p := New(cfg, critSet{0x1000: true})
	cap := &capture{}
	p.IssueData = cap.issue
	for i := 0; i < 100; i++ {
		in := load(0x1000, 1, 0, uint64(0x100000+i*64), 0)
		p.OnDispatch(&in, int64(i))
	}
	if len(cap.addrs) != 0 {
		t.Fatal("disabled components issued prefetches")
	}
}
