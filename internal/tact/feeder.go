package tact

import (
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// feederState is the per-target TACT-Feeder learning state: a candidate
// feeder PC (the youngest load feeding the target's address registers)
// with a 2-bit confidence, then per-scale Base learning for the linear
// relation Address = Scale×Data + Base, Scale ∈ {1,2,4,8}.
type feederState struct {
	pc       uint64
	conf     uint8
	base     [4]uint64
	baseConf [4]uint8
	haveBase [4]bool
	scaleIdx int8
	done     bool
}

func (f *feederState) init() {
	*f = feederState{scaleIdx: -1}
}

// feederScales are the hardware-friendly scales (shift-only).
var feederScales = [4]uint64{1, 2, 4, 8}

const (
	feederCandSat = 2
	feederBaseSat = 3
)

// trainFeeder advances feeder learning for a dynamic instance of a
// critical target load.
func (p *Prefetchers) trainFeeder(t *target, in *trace.Inst, now int64) {
	f := &t.feeder
	if f.done {
		return
	}
	// Candidate: youngest load PC that updated the target's address
	// source register.
	var cand uint64
	if in.Src1 >= 0 {
		cand = p.regLoadPC[in.Src1]
	}
	if cand == 0 || cand == t.pc {
		return
	}
	if cand != f.pc {
		f.pc = cand
		f.conf = 0
		for i := range f.baseConf {
			f.baseConf[i] = 0
			f.haveBase[i] = false
		}
		return
	}
	if f.conf < feederCandSat {
		f.conf++
		return
	}

	// Candidate is stable (conceptually in the Feeder-PC-Table): learn
	// Scale/Base against the feeder's most recent data value.
	fst := p.strides.lookup(cand)
	if fst == nil || !fst.hasData {
		return
	}
	data := fst.data
	for i, s := range feederScales {
		base := in.Addr - s*data
		if f.haveBase[i] && f.base[i] == base {
			if f.baseConf[i] < feederBaseSat {
				f.baseConf[i]++
			}
			if f.baseConf[i] >= feederBaseSat {
				f.scaleIdx = int8(i)
				f.done = true
				p.feederIndex.add(cand, t.slot)
				p.Stats.FeederTrained++
				p.traceTrain(t.pc, cand, telemetry.CompFeeder, now)
				return
			}
		} else {
			f.base[i] = base
			f.haveBase[i] = true
			f.baseConf[i] = 0
		}
	}
}

// fireFeeder issues prefetches for all targets fed by pc. The feeder's
// own self-stride provides look-ahead: the hardware prefetches the
// feeder line FeederDistance iterations ahead and, when that data is
// available, chains a prefetch of the target's predicted address.
func (p *Prefetchers) fireFeeder(pc, addr, data uint64, now int64) {
	lo, hi := p.feederIndex.find(pc)
	if lo == hi {
		return
	}
	st := p.strides.lookup(pc)
	for i := lo; i < hi; i++ {
		t := &p.targets[p.feederIndex.slots[i]]
		f := &t.feeder
		if f.scaleIdx < 0 {
			continue
		}
		s := feederScales[f.scaleIdx]
		base := f.base[f.scaleIdx]
		// Immediate chain from the demand data.
		p.Stats.FeederIssued++
		p.traceTrigger(pc, s*data+base, telemetry.CompFeeder, now)
		p.issue(s*data+base, now)
		// Look-ahead chain via the feeder's self-stride. The feeder
		// line prefetch is what makes the chained data available; its
		// value is observed through ValueAt (the simulator's stand-in
		// for reading the completed prefetch).
		if st != nil && st.conf >= 2 && st.stride != 0 && p.ValueAt != nil {
			fa := uint64(int64(addr) + st.stride*int64(p.Cfg.FeederDistance))
			p.issue(fa, now) // feeder's own deep prefetch
			if val, ok := p.ValueAt(fa); ok {
				p.Stats.FeederIssued++
				p.traceTrigger(pc, s*val+base, telemetry.CompFeeder, now)
				p.issue(s*val+base, now)
			}
		}
	}
}
