package tact

import (
	"testing"

	"catch/internal/trace"
)

func TestFeederCandidateSwitch(t *testing.T) {
	tgtPC := uint64(0x3100)
	p, _ := newTact(critSet{tgtPC: true})
	// First a wrong candidate feeds the target's register, then a
	// stable one: the feeder must re-lock onto the stable candidate.
	for i := 0; i < 40; i++ {
		wrong := load(0x3000, 1, 0, uint64(0x500000+i*8), uint64(i*13))
		p.OnDispatch(&wrong, int64(i*20))
		tgt := load(tgtPC, 2, 1, uint64(0x800000+i*64), 0) // no relation
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	if p.Stats.FeederTrained != 0 {
		t.Fatal("trained on an unrelated candidate")
	}
	base := uint64(0x900000)
	for i := 0; i < 40; i++ {
		data := uint64(i * 7)
		good := load(0x3004, 1, 0, uint64(0x600000+i*8), data)
		p.OnDispatch(&good, int64(10000+i*20))
		tgt := load(tgtPC, 2, 1, base+8*data, 0)
		p.OnDispatch(&tgt, int64(10000+i*20+5))
	}
	if p.Stats.FeederTrained == 0 {
		t.Fatal("did not re-train on the stable candidate")
	}
	tgt := p.findTarget(tgtPC)
	if tgt.feeder.pc != 0x3004 {
		t.Fatalf("locked onto %#x, want 0x3004", tgt.feeder.pc)
	}
}

func TestFeederScaleOne(t *testing.T) {
	feedPC, tgtPC := uint64(0x3000), uint64(0x3100)
	p, _ := newTact(critSet{tgtPC: true})
	// Pointer-style: target address equals feeder data (scale 1, base 0).
	for i := 0; i < 60; i++ {
		data := uint64(0xA00000 + i*4096)
		feed := load(feedPC, 1, 0, uint64(0x500000+i*8), data)
		p.OnDispatch(&feed, int64(i*20))
		tgt := load(tgtPC, 2, 1, data, 0)
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	tgt := p.findTarget(tgtPC)
	if tgt == nil || !tgt.feeder.done {
		t.Fatal("scale-1 relation not learned")
	}
	if feederScales[tgt.feeder.scaleIdx] != 1 || tgt.feeder.base[tgt.feeder.scaleIdx] != 0 {
		t.Fatalf("learned scale %d base %#x, want 1/0",
			feederScales[tgt.feeder.scaleIdx], tgt.feeder.base[tgt.feeder.scaleIdx])
	}
}

func TestDroppedTargetUnregistersTriggers(t *testing.T) {
	crit := critSet{}
	for i := 0; i < 40; i++ {
		crit[uint64(0x1000+i*16)] = true
	}
	trigPC := uint64(0x9000)
	p, _ := newTact(crit)
	// Train a cross association for the first critical PC.
	first := uint64(0x1000)
	for i := 0; i < 200; i++ {
		page := uint64(0x400000) + uint64(trace.Hash64(uint64(i))%32)*trace.PageSize
		trig := load(trigPC, 1, 0, page, 0)
		p.OnDispatch(&trig, int64(i*20))
		tgt := load(first, 2, 1, page+512, 0)
		p.OnDispatch(&tgt, int64(i*20+5))
	}
	if lo, hi := p.crossIndex.find(trigPC); lo == hi {
		t.Fatal("setup: cross not trained")
	}
	// Thrash the target table so `first` is evicted.
	for i := 1; i < 40; i++ {
		in := load(uint64(0x1000+i*16), 1, 0, uint64(0x100000+i*4096), 0)
		p.OnDispatch(&in, int64(100000+i))
	}
	lo, hi := p.crossIndex.find(trigPC)
	for i := lo; i < hi; i++ {
		tg := &p.targets[p.crossIndex.slots[i]]
		if !tg.valid || tg.pc != first {
			continue
		}
		if p.findTarget(first) == nil {
			t.Fatal("evicted target still registered on its trigger")
		}
	}
}

func TestOnDispatchIgnoresStoresAndBranches(t *testing.T) {
	p, cap := newTact(critSet{0x1000: true})
	st := trace.Inst{PC: 0x2000, Op: trace.OpStore, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg, Addr: 0x40}
	br := trace.Inst{PC: 0x2004, Op: trace.OpBranch, Dst: trace.NoReg, Src1: 1, Src2: trace.NoReg}
	p.OnDispatch(&st, 0)
	p.OnDispatch(&br, 1)
	if len(cap.addrs) != 0 {
		t.Fatal("non-loads triggered prefetches")
	}
}

func TestStrideTrackerRelearnAfterBreak(t *testing.T) {
	p, cap := newTact(critSet{0x1000: true})
	a := uint64(0x100000)
	for i := 0; i < 20; i++ {
		in := load(0x1000, 1, 0, a, 0)
		p.OnDispatch(&in, int64(i*10))
		a += 64
	}
	cap.addrs = cap.addrs[:0]
	// Break the stride hard, then re-establish a different one.
	a = 0x900000
	for i := 0; i < 20; i++ {
		in := load(0x1000, 1, 0, a, 0)
		p.OnDispatch(&in, int64(1000+i*10))
		a += 128
	}
	if !cap.has(a - 128 + 128) {
		t.Fatal("did not relearn the new stride after a break")
	}
}

func TestDefaultConfigValues(t *testing.T) {
	c := DefaultConfig()
	if c.Targets != 32 || c.MaxDeepDistance != 16 || c.FeederDistance != 4 {
		t.Fatalf("paper parameters wrong: %+v", c)
	}
	if !c.EnableCross || !c.EnableDeep || !c.EnableFeeder || !c.EnableCode {
		t.Fatal("components not all enabled by default")
	}
}

func TestNewClampsConfig(t *testing.T) {
	p := New(Config{}, nil)
	if p.Cfg.Targets != 32 || p.Cfg.MaxDeepDistance != 16 || p.Cfg.FeederDistance != 4 {
		t.Fatalf("zero config not clamped: %+v", p.Cfg)
	}
}
