// Package tact implements the paper's Timeliness Aware and Criticality
// Triggered prefetchers (§IV-B): TACT-Cross (trigger-cache learned
// cross-PC address association), TACT-Deep-Self (deep-distance stride
// prefetching with safe-length learning), TACT-Feeder (data→address
// linear relation, Scale ∈ {1,2,4,8}) and the TACT code run-ahead
// prefetcher. All data prefetchers serve only the small set of critical
// load PCs identified by the criticality detector, and only move lines
// from the L2/LLC into the L1.
package tact

import (
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// Config enables/parameterizes the TACT components.
type Config struct {
	Targets         int // tracked critical target PCs (paper: 32)
	MaxDeepDistance int // deep-self distance cap (paper: 16)
	FeederDistance  int // feeder look-ahead distance (paper: 4)
	CodeDepth       int // code run-ahead depth in lines

	EnableCross  bool
	EnableDeep   bool
	EnableFeeder bool
	EnableCode   bool
}

// Stride-tracker geometry: a fixed set-associative table stands in for
// the unbounded per-PC map the model used to keep. 64 sets × 8 ways
// comfortably holds every static load PC of the study workloads, so
// replacement never perturbs the published figures, while bounding the
// structure the way hardware would.
const (
	strideTableSets = 64
	strideTableWays = 8
)

// DefaultConfig returns the paper's TACT configuration with all
// components enabled.
func DefaultConfig() Config {
	return Config{
		Targets:         32,
		MaxDeepDistance: 16,
		FeederDistance:  4,
		CodeDepth:       12,
		EnableCross:     true,
		EnableDeep:      true,
		EnableFeeder:    true,
		EnableCode:      true,
	}
}

// Criticality is the view TACT needs of the criticality detector.
type Criticality interface {
	IsCritical(pc uint64) bool
}

// Stats counts TACT activity by component.
type Stats struct {
	TargetsAllocated uint64
	Dist1Issued      uint64
	DeepIssued       uint64
	CrossIssued      uint64
	FeederIssued     uint64
	CodeIssued       uint64
	CrossTrained     uint64
	FeederTrained    uint64
	CrossGaveUp      uint64
}

// Delta returns s - base, field by field. TACT counters are cumulative
// over a whole run; the sampling subsystem rebases them to express one
// measurement window.
func (s Stats) Delta(base Stats) Stats {
	return Stats{
		TargetsAllocated: s.TargetsAllocated - base.TargetsAllocated,
		Dist1Issued:      s.Dist1Issued - base.Dist1Issued,
		DeepIssued:       s.DeepIssued - base.DeepIssued,
		CrossIssued:      s.CrossIssued - base.CrossIssued,
		FeederIssued:     s.FeederIssued - base.FeederIssued,
		CodeIssued:       s.CodeIssued - base.CodeIssued,
		CrossTrained:     s.CrossTrained - base.CrossTrained,
		FeederTrained:    s.FeederTrained - base.FeederTrained,
		CrossGaveUp:      s.CrossGaveUp - base.CrossGaveUp,
	}
}

// target is the per-critical-PC TACT state (one entry of the Critical
// Target PC Table, Fig 9).
type target struct {
	pc   uint64
	lru  int64
	slot uint16 // this entry's index in the table (stable)

	valid bool

	// Deep-self.
	curLen   uint8 // current run length of the stable stride (cap 32)
	safeLen  uint8 // learned safe prefetch depth (cap 32, init 4)
	safeConf uint8 // 2-bit confidence on safeLen

	// Cross.
	cross crossState

	// Feeder.
	feeder feederState
}

// Prefetchers is one core's TACT engine. All per-access state lives in
// fixed-geometry flat tables allocated at construction: the steady-
// state train/predict path performs no map operations and no heap
// allocation.
type Prefetchers struct {
	Cfg  Config      //catch:nosnap construction-time configuration, not warm state
	Crit Criticality //catch:nosnap cross-subsystem wiring; the criticality source snapshots itself

	// IssueData asks the hierarchy to prefetch a data line into the L1
	// (dropped unless it is resident in L2/LLC).
	IssueData func(addr uint64, now int64)
	// ValueAt exposes program memory contents to the feeder (what the
	// hardware would read out of a completed feeder prefetch).
	ValueAt func(addr uint64) (uint64, bool)

	targets []target // Critical Target PC Table, CAM-searched
	tick    int64

	strides strideTable // per-load-PC address/stride/data tracker

	trig TriggerCache

	crossIndex  regIndex // trained trigger PC → target slots
	feederIndex regIndex // trained feeder PC → target slots

	regLoadPC [trace.NumArchRegs]uint64 // youngest load PC per register

	Code *CodePrefetcher

	// Trace, when attached and enabled, receives TACT train/trigger
	// events (one branch per site when nil or disabled).
	Trace    *telemetry.Tracer //catch:nosnap observability wiring, not simulated state
	TraceTID uint8             //catch:nosnap observability wiring, not simulated state

	Stats Stats
}

// New builds a TACT engine.
func New(cfg Config, crit Criticality) *Prefetchers {
	if cfg.Targets <= 0 {
		cfg.Targets = 32
	}
	if cfg.MaxDeepDistance <= 0 {
		cfg.MaxDeepDistance = 16
	}
	if cfg.FeederDistance <= 0 {
		cfg.FeederDistance = 4
	}
	if cfg.CodeDepth <= 0 {
		cfg.CodeDepth = 8
	}
	p := &Prefetchers{
		Cfg:     cfg,
		Crit:    crit,
		targets: make([]target, cfg.Targets),
	}
	for i := range p.targets {
		p.targets[i].slot = uint16(i)
	}
	p.strides.init(strideTableSets, strideTableWays)
	p.crossIndex.init(cfg.Targets)
	p.feederIndex.init(cfg.Targets)
	p.trig.init()
	if cfg.EnableCode {
		p.Code = NewCodePrefetcher(cfg.CodeDepth)
	}
	return p
}

// OnDispatch observes every dispatched instruction: non-loads propagate
// feeder register lineage; loads update trackers, fire trained
// triggers, and train their own target entry when critical.
//
//catch:hotpath
func (p *Prefetchers) OnDispatch(in *trace.Inst, now int64) {
	if in.Op != trace.OpLoad {
		// Propagate "youngest load PC" through register writes
		// (TACT-Feeder hardware, §IV-B1).
		if in.Dst >= 0 {
			var y uint64
			if in.Src1 >= 0 {
				y = p.regLoadPC[in.Src1]
			}
			if in.Src2 >= 0 && p.regLoadPC[in.Src2] != 0 {
				y = p.regLoadPC[in.Src2]
			}
			p.regLoadPC[in.Dst] = y
		}
		return
	}
	p.onLoad(in, now)
}

//catch:hotpath
func (p *Prefetchers) onLoad(in *trace.Inst, now int64) {
	pc, addr := in.PC, in.Addr

	// Track per-PC stride (used by deep-self and feeder look-ahead).
	st := p.strides.touch(pc)
	prevAddr, seen := st.lastAddr, st.seen
	if seen {
		d := int64(addr) - int64(prevAddr)
		if d != 0 {
			if d == st.stride {
				if st.conf < 3 {
					st.conf++
				}
			} else {
				st.stride = d
				st.conf = 0
			}
		}
	}
	st.lastAddr, st.seen = addr, true
	st.data, st.hasData = in.Data, true

	// Trigger cache: first four load PCs touching each 4KB page.
	p.trig.Touch(trace.PageAddr(addr), pc)

	// Feeder register lineage.
	if in.Dst >= 0 {
		p.regLoadPC[in.Dst] = pc
	}

	// Fire trained cross triggers.
	if p.Cfg.EnableCross {
		p.fireCross(pc, addr, now)
	}
	// Fire trained feeder triggers.
	if p.Cfg.EnableFeeder {
		p.fireFeeder(pc, addr, in.Data, now)
	}

	// Target-side behaviour only for critical PCs.
	if p.Crit == nil || !p.Crit.IsCritical(pc) {
		return
	}
	t := p.lookupTarget(pc)
	p.tick++
	t.lru = p.tick

	if p.Cfg.EnableDeep {
		p.trainDeep(t, st, seen, prevAddr, addr, now)
	}
	if p.Cfg.EnableCross {
		p.trainCross(t, addr, now)
	}
	if p.Cfg.EnableFeeder {
		p.trainFeeder(t, in, now)
	}
}

// lookupTarget finds or allocates the target entry for a critical PC in
// one CAM-style pass over the flat table, evicting the LRU entry when
// no slot is free.
//
//catch:hotpath
func (p *Prefetchers) lookupTarget(pc uint64) *target {
	var victim *target
	oldest := int64(1<<62 - 1)
	for i := range p.targets {
		t := &p.targets[i]
		if t.valid && t.pc == pc {
			return t
		}
		if !t.valid {
			if oldest != -1 {
				victim, oldest = t, -1
			}
		} else if oldest != -1 && t.lru < oldest {
			victim, oldest = t, t.lru
		}
	}
	if victim.valid {
		p.dropTarget(victim)
	}
	slot := victim.slot
	*victim = target{pc: pc, slot: slot, safeLen: 4, valid: true}
	victim.cross.init()
	victim.feeder.init()
	p.Stats.TargetsAllocated++
	return victim
}

// findTarget returns the live target entry for pc, or nil. Exposed for
// tests and inspection tools; the hot path uses lookupTarget.
//
//catch:hotpath
func (p *Prefetchers) findTarget(pc uint64) *target {
	for i := range p.targets {
		if p.targets[i].valid && p.targets[i].pc == pc {
			return &p.targets[i]
		}
	}
	return nil
}

// dropTarget invalidates a target and removes its trigger/feeder
// registrations from the flat indexes.
func (p *Prefetchers) dropTarget(t *target) {
	if t.cross.done {
		p.crossIndex.remove(t.cross.trigPC, t.slot)
	}
	if t.feeder.done {
		p.feederIndex.remove(t.feeder.pc, t.slot)
	}
	t.valid = false
}

// trainDeep implements TACT-Deep-Self: safe-length learning and
// distance-1 + deep-distance prefetch issue.
//
//catch:hotpath
func (p *Prefetchers) trainDeep(t *target, st *strideEntry, seen bool, prevAddr, addr uint64, now int64) {
	if seen {
		d := int64(addr) - int64(prevAddr)
		if d != 0 && d == st.stride && st.conf >= 2 {
			if t.curLen < 32 {
				t.curLen++
			}
			// A run that has already covered the learned safe length
			// grows it (and its confidence) without waiting for a
			// break: unbroken strides converge to the maximum depth.
			if t.curLen >= t.safeLen {
				if t.safeLen < 32 {
					t.safeLen++
				}
				if t.safeConf < 3 {
					t.safeConf++
				}
			}
		} else if d != 0 {
			// Stride run ended: move safeLen toward the observed run
			// length and manage its confidence.
			switch {
			case t.curLen < t.safeLen:
				t.safeLen--
				if t.safeConf > 0 {
					t.safeConf--
				}
			case t.curLen > t.safeLen:
				if t.safeLen < 32 {
					t.safeLen++
				}
				if t.safeConf < 3 {
					t.safeConf++
				}
			default:
				if t.safeConf < 3 {
					t.safeConf++
				}
			}
			t.curLen = 0
		}
	}
	if st.conf < 2 || st.stride == 0 {
		return
	}
	// Distance-1 prefetch always; deep distance when confident and the
	// current run supports it.
	base := int64(addr)
	p.Stats.Dist1Issued++
	p.traceTrigger(t.pc, uint64(base+st.stride), telemetry.CompDist1, now)
	p.issue(uint64(base+st.stride), now)
	if t.safeConf >= 3 && t.safeLen >= 2 {
		d := int(t.safeLen)
		if int(t.curLen) < d {
			d = int(t.curLen) + 1
		}
		if d > p.Cfg.MaxDeepDistance {
			d = p.Cfg.MaxDeepDistance
		}
		if d >= 2 {
			p.Stats.DeepIssued++
			p.traceTrigger(t.pc, uint64(base+st.stride*int64(d)), telemetry.CompDeep, now)
			p.issue(uint64(base+st.stride*int64(d)), now)
		}
	}
}

// traceTrigger emits a TACT trigger event (one branch when tracing is
// off).
func (p *Prefetchers) traceTrigger(triggerPC, addr uint64, comp uint64, now int64) {
	if p.Trace.Enabled() {
		p.Trace.Emit(telemetry.Event{Cat: telemetry.CatTact, Type: telemetry.EvTactTrigger,
			TID: p.TraceTID, TS: now, A1: triggerPC, A2: addr, A3: comp})
	}
}

// traceTrain emits a TACT train event.
func (p *Prefetchers) traceTrain(targetPC, sourcePC uint64, comp uint64, now int64) {
	if p.Trace.Enabled() {
		p.Trace.Emit(telemetry.Event{Cat: telemetry.CatTact, Type: telemetry.EvTactTrain,
			TID: p.TraceTID, TS: now, A1: targetPC, A2: sourcePC, A3: comp})
	}
}

//catch:hotpath
func (p *Prefetchers) issue(addr uint64, now int64) {
	if p.IssueData != nil {
		p.IssueData(addr, now)
	}
}

// AreaBytes reports the storage budget of the TACT structures (Fig 9).
func (p *Prefetchers) AreaBytes() int {
	const (
		targetEntry  = 20 // self(2) + cross(5) + feeder(10.5) + PC tag ≈ 20B
		feederEntry  = 2
		regTracking  = 3
		trigEntry    = 6
		crossPCEntry = 2
		codeBytes    = 8
	)
	return p.Cfg.Targets*targetEntry +
		32*feederEntry +
		trace.NumArchRegs*regTracking +
		64*trigEntry +
		32*crossPCEntry +
		codeBytes
}
