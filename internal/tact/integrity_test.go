package tact

import (
	"testing"

	"catch/internal/trace"
)

// checkIndexIntegrity validates the invariants tying the trigger/feeder
// registration indexes to the target table: every registration points
// at a live target that actually trained on that PC, no registration
// is duplicated, the key arrays stay sorted, and every trained target
// is registered exactly once.
func checkIndexIntegrity(t *testing.T, p *Prefetchers) {
	t.Helper()
	check := func(name string, ix *regIndex, reg func(*target) (uint64, bool)) {
		type key struct {
			pc   uint64
			slot uint16
		}
		seen := make(map[key]bool)
		for i := 0; i < ix.n; i++ {
			pc, slot := ix.pcs[i], ix.slots[i]
			if int(slot) >= len(p.targets) {
				t.Fatalf("%s: entry %d has slot %d out of range", name, i, slot)
			}
			tgt := &p.targets[slot]
			if !tgt.valid {
				t.Errorf("%s: pc %#x registered against invalidated slot %d", name, pc, slot)
				continue
			}
			regPC, done := reg(tgt)
			if !done || regPC != pc {
				t.Errorf("%s: pc %#x registered for slot %d, but target (pc %#x) has trained=%v regPC=%#x",
					name, pc, slot, tgt.pc, done, regPC)
			}
			k := key{pc, slot}
			if seen[k] {
				t.Errorf("%s: duplicate registration (pc %#x, slot %d)", name, pc, slot)
			}
			seen[k] = true
		}
		for i := 1; i < ix.n; i++ {
			if ix.pcs[i-1] > ix.pcs[i] {
				t.Errorf("%s: key array unsorted at %d: %#x > %#x", name, i, ix.pcs[i-1], ix.pcs[i])
			}
		}
		for i := range p.targets {
			tgt := &p.targets[i]
			if !tgt.valid {
				continue
			}
			if regPC, done := reg(tgt); done && !seen[key{regPC, tgt.slot}] {
				t.Errorf("%s: trained target pc %#x (slot %d) missing its registration for %#x",
					name, tgt.pc, tgt.slot, regPC)
			}
		}
	}
	check("crossIndex", &p.crossIndex, func(tg *target) (uint64, bool) { return tg.cross.trigPC, tg.cross.done })
	check("feederIndex", &p.feederIndex, func(tg *target) (uint64, bool) { return tg.feeder.pc, tg.feeder.done })
}

// TestEvictionKeepsIndexesConsistent is the regression test for the
// old removeTarget slice-aliasing bug: with several targets trained
// off overlapping trigger/feeder PCs, evicting targets out of a small
// target table must drop exactly the victims' registrations — no stale
// slots left behind, no sibling registrations lost.
func TestEvictionKeepsIndexesConsistent(t *testing.T) {
	const (
		sharedPC = uint64(0x2000) // trigger for tgtCross AND feeder for tgtFeed
		tgtCross = uint64(0x3000)
		tgtFeed  = uint64(0x3100)
		delta    = uint64(640)
		feedBase = uint64(0x50_0000)
	)
	crit := critSet{tgtCross: true, tgtFeed: true}
	cfg := DefaultConfig()
	cfg.Targets = 4 // tiny table so evictions are easy to force
	p := New(cfg, crit)
	issued := 0
	p.IssueData = func(addr uint64, now int64) { issued++ }

	// Train both associations off the shared PC. Each round: the shared
	// load first touches a fresh page (becoming its trigger candidate)
	// and produces data; the cross target follows at a fixed page delta;
	// the feeder target's address is 1×data + feedBase.
	tick := int64(0)
	for i := 0; i < 200; i++ {
		page := uint64(0x40_0000) + uint64(trace.Hash64(uint64(i))%64)*trace.PageSize
		data := uint64(0x7000) + uint64(i)*64
		shared := load(sharedPC, 1, 0, page, data)
		p.OnDispatch(&shared, tick)
		cross := load(tgtCross, 2, trace.NoReg, page+delta, 0)
		p.OnDispatch(&cross, tick+1)
		feed := load(tgtFeed, 3, 1, data+feedBase, 0)
		p.OnDispatch(&feed, tick+2)
		tick += 10
	}
	if p.Stats.CrossTrained == 0 || p.Stats.FeederTrained == 0 {
		t.Fatalf("setup failed to train: cross=%d feeder=%d",
			p.Stats.CrossTrained, p.Stats.FeederTrained)
	}
	checkIndexIntegrity(t, p)

	// Evict everything: more new critical PCs than the table has slots.
	for i := 0; i < 3*cfg.Targets; i++ {
		pc := uint64(0x9000) + uint64(i)*4
		crit[pc] = true
		for k := 0; k < 3; k++ {
			in := load(pc, 1, trace.NoReg, uint64(0x80_0000)+uint64(i)*4096, 0)
			p.OnDispatch(&in, tick)
			tick += 10
		}
	}
	if p.findTarget(tgtCross) != nil || p.findTarget(tgtFeed) != nil {
		t.Fatal("original targets were not evicted; raise the churn")
	}
	checkIndexIntegrity(t, p)

	// The shared PC's registrations must be gone with their targets:
	// firing it can no longer issue the trained prefetches.
	if lo, hi := p.crossIndex.find(sharedPC); lo != hi {
		t.Errorf("stale cross registrations for %#x: %d", sharedPC, hi-lo)
	}
	if lo, hi := p.feederIndex.find(sharedPC); lo != hi {
		t.Errorf("stale feeder registrations for %#x: %d", sharedPC, hi-lo)
	}
	issued = 0
	in := load(sharedPC, 1, 0, uint64(0x90_0000), 0x1234)
	p.OnDispatch(&in, tick)
	if issued != 0 {
		t.Errorf("evicted targets still fired %d prefetches via %#x", issued, sharedPC)
	}
}

// TestReallocatedSlotDoesNotInheritRegistrations pins the other half
// of the aliasing bug: when a trained target's slot is reused by a new
// PC, firing the old trigger must not prefetch on behalf of the new
// occupant.
func TestReallocatedSlotDoesNotInheritRegistrations(t *testing.T) {
	const (
		trigPC = uint64(0x2000)
		oldTgt = uint64(0x3000)
		delta  = uint64(640)
	)
	crit := critSet{oldTgt: true}
	cfg := DefaultConfig()
	cfg.Targets = 1 // single slot: any new critical PC reuses it
	p := New(cfg, crit)
	var got []uint64
	p.IssueData = func(addr uint64, now int64) { got = append(got, addr) }

	for i := 0; i < 200; i++ {
		page := uint64(0x40_0000) + uint64(trace.Hash64(uint64(i))%64)*trace.PageSize
		trig := load(trigPC, 1, 0, page, 0)
		p.OnDispatch(&trig, int64(i*10))
		tgt := load(oldTgt, 2, trace.NoReg, page+delta, 0)
		p.OnDispatch(&tgt, int64(i*10+1))
	}
	if p.Stats.CrossTrained == 0 {
		t.Fatal("cross association never trained")
	}

	// A different critical PC takes over the only slot.
	newTgt := uint64(0x7000)
	crit[newTgt] = true
	in := load(newTgt, 1, trace.NoReg, 0x60_0000, 0)
	p.OnDispatch(&in, 10_000)
	if tgt := p.findTarget(newTgt); tgt == nil {
		t.Fatal("slot was not reallocated")
	}
	checkIndexIntegrity(t, p)

	got = got[:0]
	trig := load(trigPC, 1, 0, uint64(0x90_0000), 0)
	p.OnDispatch(&trig, 10_001)
	for _, a := range got {
		if a == uint64(0x90_0000)+delta {
			t.Errorf("old trigger fired for reallocated slot: issued %#x", a)
		}
	}
}
