package tact

// CodePrefetcher implements the TACT code run-ahead prefetcher
// (§IV-B2): while the front end is stalled on a code L1 miss, a
// shadow next-prefetch instruction pointer (CNPIP) runs ahead through
// the predicted control flow and prefetches upcoming code lines. The
// two-way next-line predictor here stands in for re-using the
// NIP/branch-prediction logic during the stall: it remembers up to two
// observed successors per code line and explores both.
type CodePrefetcher struct {
	Depth int // run-ahead depth in code lines

	next     map[uint64][2]uint64 // line -> observed successors (MRU first)
	lastLine uint64
	haveLast bool

	queue []uint64 //catch:nosnap scratch for the run-ahead walk, dead between calls

	Learned uint64
	Issued  uint64
}

// NewCodePrefetcher builds a code run-ahead prefetcher.
func NewCodePrefetcher(depth int) *CodePrefetcher {
	if depth <= 0 {
		depth = 8
	}
	return &CodePrefetcher{Depth: depth, next: make(map[uint64][2]uint64)}
}

// OnLine observes the front end crossing into a new code line,
// learning line successors (two-way, most recent first).
func (c *CodePrefetcher) OnLine(line uint64) {
	if c.haveLast && c.lastLine != line {
		s := c.next[c.lastLine]
		if s[0] != line {
			if s[0] != 0 && s[1] != line {
				s[1] = s[0]
			}
			s[0] = line
			c.next[c.lastLine] = s
			c.Learned++
		}
	}
	c.lastLine = line
	c.haveLast = true
}

// RunAhead is invoked when the front end stalls on missLine: the CNPIP
// walks predicted successors (both ways at each fork) and issues
// prefetches for up to Depth lines. Returns the number of prefetches
// issued.
func (c *CodePrefetcher) RunAhead(missLine uint64, now int64, issue func(addr uint64, now int64)) int {
	n := 0
	c.queue = append(c.queue[:0], missLine)
	seen := missLine
	for len(c.queue) > 0 && n < c.Depth {
		l := c.queue[0]
		c.queue = c.queue[1:]
		s := c.next[l]
		for _, nl := range s {
			if nl == 0 || nl == seen || nl == missLine {
				continue
			}
			c.Issued++
			n++
			issue(nl, now)
			if n >= c.Depth {
				break
			}
			c.queue = append(c.queue, nl)
		}
	}
	return n
}
