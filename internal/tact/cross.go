package tact

import (
	"catch/internal/telemetry"
	"catch/internal/trace"
)

// TriggerCache tracks, for the last 64 4KB pages (8 sets × 8 ways), the
// first four load PCs that touched each page during its residency
// (§IV-B1). Critical targets consult it for cross-trigger candidates.
type TriggerCache struct {
	entries [64]trigEntry
	tick    int64
}

type trigEntry struct {
	page  uint64
	pcs   [4]uint64
	n     uint8
	lru   int64
	valid bool
}

func (tc *TriggerCache) init() { *tc = TriggerCache{} }

func (tc *TriggerCache) set(page uint64) []trigEntry {
	s := int((page >> 12) & 7)
	return tc.entries[s*8 : (s+1)*8]
}

// Touch records pc as a toucher of page (up to the first four).
func (tc *TriggerCache) Touch(page, pc uint64) {
	tc.tick++
	set := tc.set(page)
	victim, oldest := 0, int64(1<<62-1)
	for i := range set {
		e := &set[i]
		if e.valid && e.page == page {
			e.lru = tc.tick
			for k := uint8(0); k < e.n; k++ {
				if e.pcs[k] == pc {
					return
				}
			}
			if e.n < 4 {
				e.pcs[e.n] = pc
				e.n++
			}
			return
		}
		if !e.valid {
			victim, oldest = i, -1
		} else if e.lru < oldest {
			victim, oldest = i, e.lru
		}
	}
	set[victim] = trigEntry{page: page, lru: tc.tick, valid: true}
	set[victim].pcs[0] = pc
	set[victim].n = 1
}

// Candidates returns the recorded toucher PCs for page.
func (tc *TriggerCache) Candidates(page uint64) ([4]uint64, int) {
	set := tc.set(page)
	for i := range set {
		if set[i].valid && set[i].page == page {
			return set[i].pcs, int(set[i].n)
		}
	}
	return [4]uint64{}, 0
}

// crossState is the per-target TACT-Cross learning state: one current
// trigger candidate at a time, sixteen instances per trial, up to four
// wrap-arounds over the candidate list.
type crossState struct {
	trigPC  uint64
	candIdx uint8
	trials  uint8
	wraps   uint8
	delta   int64
	conf    uint8
	done    bool
	gaveUp  bool
}

func (c *crossState) init() { *c = crossState{} }

const (
	crossTrialLimit = 16
	crossWrapLimit  = 4
	crossConfSat    = 3
)

// trainCross advances cross-association learning for a dynamic
// instance of target t at address addr.
func (p *Prefetchers) trainCross(t *target, addr uint64, now int64) {
	c := &t.cross
	if c.done || c.gaveUp {
		return
	}
	page := trace.PageAddr(addr)
	cands, n := p.trig.Candidates(page)
	if n == 0 {
		return
	}

	// Select/advance the current candidate (oldest toucher first).
	pick := func(idx uint8) (uint64, bool) {
		for k := 0; k < n; k++ {
			cand := cands[(int(idx)+k)%n]
			if cand != 0 && cand != t.pc {
				c.candIdx = uint8((int(idx) + k) % n)
				return cand, true
			}
		}
		return 0, false
	}
	if c.trigPC == 0 {
		cand, ok := pick(0)
		if !ok {
			return
		}
		c.trigPC = cand
	}

	trigSt := p.strides.lookup(c.trigPC)
	if trigSt == nil || !trigSt.seen {
		return
	}
	delta := int64(addr) - int64(trigSt.lastAddr)
	c.trials++
	if delta > -trace.PageSize && delta < trace.PageSize && delta != 0 && delta == c.delta {
		c.conf++
		if c.conf >= crossConfSat {
			c.done = true
			p.crossIndex.add(c.trigPC, t.slot)
			p.Stats.CrossTrained++
			p.traceTrain(t.pc, c.trigPC, telemetry.CompCross, now)
			return
		}
	} else {
		c.delta = delta
		c.conf = 0
	}
	if c.trials >= crossTrialLimit {
		c.trials = 0
		c.conf = 0
		c.delta = 0
		cand, ok := pick(c.candIdx + 1)
		if !ok {
			c.gaveUp = true
			p.Stats.CrossGaveUp++
			return
		}
		if cand == c.trigPC || c.candIdx == 0 {
			c.wraps++
			if c.wraps >= crossWrapLimit {
				c.gaveUp = true
				p.Stats.CrossGaveUp++
				return
			}
		}
		c.trigPC = cand
	}
}

// fireCross issues prefetches for all targets whose trained trigger is
// pc, predicting target address = trigger address + learned delta.
func (p *Prefetchers) fireCross(pc, addr uint64, now int64) {
	lo, hi := p.crossIndex.find(pc)
	for i := lo; i < hi; i++ {
		t := &p.targets[p.crossIndex.slots[i]]
		p.Stats.CrossIssued++
		p.traceTrigger(pc, uint64(int64(addr)+t.cross.delta), telemetry.CompCross, now)
		p.issue(uint64(int64(addr)+t.cross.delta), now)
	}
}
