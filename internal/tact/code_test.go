package tact

import "testing"

func TestCodePrefetcherLearnsSuccessors(t *testing.T) {
	c := NewCodePrefetcher(8)
	lines := []uint64{0x1000, 0x1040, 0x1080, 0x10C0}
	for r := 0; r < 3; r++ {
		for _, l := range lines {
			c.OnLine(l)
		}
	}
	cap := &capture{}
	n := c.RunAhead(0x1000, 0, cap.issue)
	if n == 0 {
		t.Fatal("run-ahead issued nothing")
	}
	if !cap.has(0x1040) || !cap.has(0x1080) {
		t.Fatalf("successor lines not prefetched: %#x", cap.addrs)
	}
}

func TestCodePrefetcherTwoWay(t *testing.T) {
	c := NewCodePrefetcher(8)
	// Line A alternates successors B and C.
	for r := 0; r < 4; r++ {
		c.OnLine(0x1000)
		c.OnLine(0x2000)
		c.OnLine(0x1000)
		c.OnLine(0x3000)
	}
	cap := &capture{}
	c.RunAhead(0x1000, 0, cap.issue)
	if !cap.has(0x2000) || !cap.has(0x3000) {
		t.Fatalf("two-way successors not both prefetched: %#x", cap.addrs)
	}
}

func TestCodePrefetcherDepthBound(t *testing.T) {
	c := NewCodePrefetcher(4)
	for i := uint64(0); i < 20; i++ {
		c.OnLine(0x1000 + i*64)
	}
	cap := &capture{}
	n := c.RunAhead(0x1000, 0, cap.issue)
	if n > 4 {
		t.Fatalf("run-ahead exceeded depth: %d", n)
	}
}

func TestCodePrefetcherNoCycles(t *testing.T) {
	c := NewCodePrefetcher(16)
	// A two-line loop: run-ahead must terminate.
	for r := 0; r < 4; r++ {
		c.OnLine(0x1000)
		c.OnLine(0x1040)
	}
	cap := &capture{}
	n := c.RunAhead(0x1000, 0, cap.issue)
	if n > 16 {
		t.Fatalf("run-ahead did not terminate on a loop: %d", n)
	}
}

func TestCodePrefetcherUnknownLine(t *testing.T) {
	c := NewCodePrefetcher(8)
	cap := &capture{}
	if n := c.RunAhead(0x9000, 0, cap.issue); n != 0 {
		t.Fatalf("unknown line issued %d prefetches", n)
	}
}
