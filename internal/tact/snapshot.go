package tact

import (
	"fmt"
	"sort"

	"catch/internal/snap"
)

// Snapshot codecs for the TACT engine: the critical-target table with
// its per-target cross/feeder training state, the stride/data tracker,
// the trigger cache, both PC registration indexes (whose Bloom filter
// is rebuilt rather than serialized), the per-register load-PC file,
// the code prefetcher's successor map (serialized in sorted key order
// so the image is deterministic) and the counters.

// SnapshotTo appends the full mutable state of the prefetcher complex.
func (p *Prefetchers) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(p.targets)))
	for i := range p.targets {
		t := &p.targets[i]
		w.U64(t.pc)
		w.I64(t.lru)
		w.U16(t.slot)
		w.Bool(t.valid)
		w.U8(t.curLen)
		w.U8(t.safeLen)
		w.U8(t.safeConf)
		snapshotCross(w, &t.cross)
		snapshotFeeder(w, &t.feeder)
	}
	w.I64(p.tick)

	w.U64(uint64(len(p.strides.entries)))
	w.U64(uint64(p.strides.ways))
	w.U64(uint64(p.strides.shift))
	for i := range p.strides.entries {
		e := &p.strides.entries[i]
		w.U64(e.pc)
		w.U64(e.lastAddr)
		w.U64(e.data)
		w.I64(e.stride)
		w.I64(e.lru)
		w.U8(e.conf)
		w.Bool(e.seen)
		w.Bool(e.hasData)
		w.Bool(e.valid)
	}
	w.I64(p.strides.tick)

	for i := range p.trig.entries {
		e := &p.trig.entries[i]
		w.U64(e.page)
		for _, pc := range e.pcs {
			w.U64(pc)
		}
		w.U8(e.n)
		w.I64(e.lru)
		w.Bool(e.valid)
	}
	w.I64(p.trig.tick)

	snapshotRegIndex(w, &p.crossIndex)
	snapshotRegIndex(w, &p.feederIndex)

	for _, pc := range p.regLoadPC {
		w.U64(pc)
	}

	if p.Code == nil {
		w.Bool(false)
	} else {
		w.Bool(true)
		p.Code.snapshotTo(w)
	}

	w.U64(p.Stats.TargetsAllocated)
	w.U64(p.Stats.Dist1Issued)
	w.U64(p.Stats.DeepIssued)
	w.U64(p.Stats.CrossIssued)
	w.U64(p.Stats.FeederIssued)
	w.U64(p.Stats.CodeIssued)
	w.U64(p.Stats.CrossTrained)
	w.U64(p.Stats.FeederTrained)
	w.U64(p.Stats.CrossGaveUp)
}

// RestoreFrom restores state serialized by SnapshotTo into a
// prefetcher complex built from the same configuration.
func (p *Prefetchers) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(p.targets)), "target table size")
	for i := range p.targets {
		t := &p.targets[i]
		t.pc = r.U64()
		t.lru = r.I64()
		t.slot = r.U16()
		t.valid = r.Bool()
		t.curLen = r.U8()
		t.safeLen = r.U8()
		t.safeConf = r.U8()
		restoreCross(r, &t.cross)
		restoreFeeder(r, &t.feeder)
	}
	p.tick = r.I64()

	r.Expect(uint64(len(p.strides.entries)), "stride table size")
	r.Expect(uint64(p.strides.ways), "stride table ways")
	r.Expect(uint64(p.strides.shift), "stride table shift")
	for i := range p.strides.entries {
		e := &p.strides.entries[i]
		e.pc = r.U64()
		e.lastAddr = r.U64()
		e.data = r.U64()
		e.stride = r.I64()
		e.lru = r.I64()
		e.conf = r.U8()
		e.seen = r.Bool()
		e.hasData = r.Bool()
		e.valid = r.Bool()
	}
	p.strides.tick = r.I64()

	for i := range p.trig.entries {
		e := &p.trig.entries[i]
		e.page = r.U64()
		for j := range e.pcs {
			e.pcs[j] = r.U64()
		}
		e.n = r.U8()
		e.lru = r.I64()
		e.valid = r.Bool()
	}
	p.trig.tick = r.I64()

	restoreRegIndex(r, &p.crossIndex)
	restoreRegIndex(r, &p.feederIndex)

	for i := range p.regLoadPC {
		p.regLoadPC[i] = r.U64()
	}

	hasCode := r.Bool()
	if r.Err() == nil && hasCode != (p.Code != nil) {
		r.Fail(fmt.Errorf("snap: code prefetcher mismatch: snapshot has %v, live state has %v", hasCode, p.Code != nil))
	}
	if hasCode && p.Code != nil {
		p.Code.restoreFrom(r)
	}

	p.Stats.TargetsAllocated = r.U64()
	p.Stats.Dist1Issued = r.U64()
	p.Stats.DeepIssued = r.U64()
	p.Stats.CrossIssued = r.U64()
	p.Stats.FeederIssued = r.U64()
	p.Stats.CodeIssued = r.U64()
	p.Stats.CrossTrained = r.U64()
	p.Stats.FeederTrained = r.U64()
	p.Stats.CrossGaveUp = r.U64()
	return r.Err()
}

func snapshotCross(w *snap.Writer, c *crossState) {
	w.U64(c.trigPC)
	w.U8(c.candIdx)
	w.U8(c.trials)
	w.U8(c.wraps)
	w.I64(c.delta)
	w.U8(c.conf)
	w.Bool(c.done)
	w.Bool(c.gaveUp)
}

func restoreCross(r *snap.Reader, c *crossState) {
	c.trigPC = r.U64()
	c.candIdx = r.U8()
	c.trials = r.U8()
	c.wraps = r.U8()
	c.delta = r.I64()
	c.conf = r.U8()
	c.done = r.Bool()
	c.gaveUp = r.Bool()
}

func snapshotFeeder(w *snap.Writer, f *feederState) {
	w.U64(f.pc)
	w.U8(f.conf)
	for _, b := range f.base {
		w.U64(b)
	}
	for _, c := range f.baseConf {
		w.U8(c)
	}
	for _, h := range f.haveBase {
		w.Bool(h)
	}
	w.U8(uint8(f.scaleIdx))
	w.Bool(f.done)
}

func restoreFeeder(r *snap.Reader, f *feederState) {
	f.pc = r.U64()
	f.conf = r.U8()
	for i := range f.base {
		f.base[i] = r.U64()
	}
	for i := range f.baseConf {
		f.baseConf[i] = r.U8()
	}
	for i := range f.haveBase {
		f.haveBase[i] = r.Bool()
	}
	f.scaleIdx = int8(r.U8())
	f.done = r.Bool()
}

func snapshotRegIndex(w *snap.Writer, ix *regIndex) {
	w.U64(uint64(cap(ix.pcs)))
	w.U64(uint64(ix.n))
	for i := 0; i < ix.n; i++ {
		w.U64(ix.pcs[i])
		w.U16(ix.slots[i])
	}
}

func restoreRegIndex(r *snap.Reader, ix *regIndex) {
	r.Expect(uint64(cap(ix.pcs)), "registration index capacity")
	n := int(r.U64())
	if r.Err() != nil {
		return
	}
	if n < 0 || n > cap(ix.pcs) {
		r.Fail(fmt.Errorf("snap: registration index count %d exceeds capacity %d", n, cap(ix.pcs)))
		return
	}
	ix.pcs = ix.pcs[:n]
	ix.slots = ix.slots[:n]
	ix.n = n
	for i := 0; i < n; i++ {
		ix.pcs[i] = r.U64()
		ix.slots[i] = r.U16()
	}
	ix.rebuildFilter()
}

func (c *CodePrefetcher) snapshotTo(w *snap.Writer) {
	w.U64(uint64(c.Depth))
	keys := make([]uint64, 0, len(c.next))
	for k := range c.next {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.U64(uint64(len(keys)))
	for _, k := range keys {
		succ := c.next[k]
		w.U64(k)
		w.U64(succ[0])
		w.U64(succ[1])
	}
	w.U64(c.lastLine)
	w.Bool(c.haveLast)
	w.U64(c.Learned)
	w.U64(c.Issued)
}

func (c *CodePrefetcher) restoreFrom(r *snap.Reader) {
	r.Expect(uint64(c.Depth), "code prefetcher depth")
	n := int(r.U64())
	if r.Err() != nil {
		return
	}
	if n < 0 || n > 1<<28 {
		r.Fail(fmt.Errorf("snap: implausible code successor count %d", n))
		return
	}
	c.next = make(map[uint64][2]uint64, n)
	for i := 0; i < n; i++ {
		k := r.U64()
		var succ [2]uint64
		succ[0] = r.U64()
		succ[1] = r.U64()
		c.next[k] = succ
	}
	c.lastLine = r.U64()
	c.haveLast = r.Bool()
	c.Learned = r.U64()
	c.Issued = r.U64()
}
