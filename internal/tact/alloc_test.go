package tact

import (
	"testing"

	"catch/internal/trace"
)

// TestTrainPredictCycleAllocFree guards the point of the flat-table
// rewrite: a full TACT train-and-predict cycle — stride tracking,
// trigger-cache touch, cross/feeder firing, and critical-target
// training — performs zero heap allocations once the engine exists.
func TestTrainPredictCycleAllocFree(t *testing.T) {
	const (
		trigPC = uint64(0x2000)
		tgtPC  = uint64(0x3000)
		delta  = uint64(640)
	)
	p := New(DefaultConfig(), critSet{tgtPC: true})
	p.IssueData = func(addr uint64, now int64) {}
	p.ValueAt = func(addr uint64) (uint64, bool) { return addr ^ 0xABCD, true }

	tick := int64(0)
	iter := 0
	cycle := func(n int) {
		for i := 0; i < n; i++ {
			page := uint64(0x40_0000) + uint64(trace.Hash64(uint64(iter))%64)*trace.PageSize
			trig := load(trigPC, 1, 0, page, uint64(0x7000+iter*64))
			p.OnDispatch(&trig, tick)
			tgt := load(tgtPC, 2, 1, page+delta, 0)
			p.OnDispatch(&tgt, tick+1)
			tick += 10
			iter++
		}
	}
	cycle(500) // reach steady state: tables allocated, associations trained
	if allocs := testing.AllocsPerRun(20, func() { cycle(50) }); allocs != 0 {
		t.Errorf("train-predict cycle: %v allocs per 50-load batch, want 0", allocs)
	}
}
