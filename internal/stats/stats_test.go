package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 4) != 0.25 {
		t.Fatal("Ratio(1,4)")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio by zero")
	}
}

func TestGeomean(t *testing.T) {
	g := Geomean([]float64{1, 4})
	if math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean(1,4) = %v", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("geomean of empty input")
	}
	if Geomean([]float64{-1, 0}) != 0 {
		t.Fatal("geomean ignores non-positive")
	}
}

func TestGeomeanBetweenMinMax(t *testing.T) {
	f := func(xs []float64) bool {
		var pos []float64
		for _, x := range xs {
			if x > 0 && x < 1e150 {
				pos = append(pos, x)
			}
		}
		if len(pos) == 0 {
			return true
		}
		g := Geomean(pos)
		min, max := pos[0], pos[0]
		for _, x := range pos {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if Percentile(xs, 0) != 1 {
		t.Fatal("p0")
	}
	if Percentile(xs, 100) != 5 {
		t.Fatal("p100")
	}
	if Percentile(xs, 50) != 3 {
		t.Fatal("p50")
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile")
	}
}

func TestSpeedupPercent(t *testing.T) {
	if SpeedupPercent(1.1, 1.0) < 9.99 || SpeedupPercent(1.1, 1.0) > 10.01 {
		t.Fatal("speedup")
	}
	if SpeedupPercent(1, 0) != 0 {
		t.Fatal("zero base")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0.1, 0.8)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.9)
	h.Observe(1.0)
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("histogram counts %v", h.Counts)
	}
	if h.Fraction(2) != 0.5 {
		t.Fatalf("fraction %v", h.Fraction(2))
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0.5)
	b := NewHistogram(0.5)
	a.Observe(0.2)
	b.Observe(0.9)
	a.Merge(b)
	a.Merge(nil)
	if a.Total != 2 || a.Counts[0] != 1 || a.Counts[1] != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestHistogramEmptyFraction(t *testing.T) {
	h := NewHistogram(0.5)
	if h.Fraction(0) != 0 {
		t.Fatal("empty histogram fraction")
	}
}

func TestFormatPercent(t *testing.T) {
	if FormatPercent(1.234) != "+1.23%" {
		t.Fatalf("format: %q", FormatPercent(1.234))
	}
	if FormatPercent(-1.234) != "-1.23%" {
		t.Fatalf("format: %q", FormatPercent(-1.234))
	}
}
