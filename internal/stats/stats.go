// Package stats provides counters, derived metrics and small numeric
// helpers shared by the simulator and the experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a simple monotonically increasing event counter.
type Counter uint64

// Inc increments the counter by one.
func (c *Counter) Inc() { *c++ }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { *c += Counter(n) }

// Value returns the current count.
func (c Counter) Value() uint64 { return uint64(c) }

// AtomicCounter is a monotonically increasing event counter safe for
// concurrent use (the runner's cache and engine count from many
// goroutines at once).
type AtomicCounter struct {
	v atomic.Uint64
}

// Inc increments the counter by one.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add increments the counter by n.
func (c *AtomicCounter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *AtomicCounter) Value() uint64 { return c.v.Load() }

// Ratio returns c divided by total, or 0 when total is zero.
func Ratio(c, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return float64(c) / float64(total)
}

// Geomean returns the geometric mean of xs. Non-positive entries are
// ignored; an empty input yields 0.
func Geomean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0..100) of xs using nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}

// SpeedupPercent expresses new versus old as a percentage gain
// (positive means new is faster).
func SpeedupPercent(newIPC, oldIPC float64) float64 {
	if oldIPC == 0 {
		return 0
	}
	return (newIPC/oldIPC - 1) * 100
}

// Histogram is a fixed-bucket histogram over float64 samples in [0,1].
// It accumulates measurement state, so reset-coverage holds it to the
// warmup-boundary discipline despite the name.
//
//catch:stats
type Histogram struct {
	Bounds []float64 //catch:noreset bucket geometry, not a counter
	Counts []uint64
	Total  uint64
}

// NewHistogram creates a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds)+1)}
}

// Observe adds one sample.
func (h *Histogram) Observe(x float64) {
	h.Total++
	for i, b := range h.Bounds {
		if x <= b {
			h.Counts[i]++
			return
		}
	}
	h.Counts[len(h.Bounds)]++
}

// Reset zeroes all counts, keeping the bucket shape. An empty
// histogram behaves exactly like a nil one (Merge of either is a
// no-op), so callers may reuse an existing histogram across
// measurement windows instead of re-allocating it.
func (h *Histogram) Reset() {
	h.Total = 0
	for i := range h.Counts {
		h.Counts[i] = 0
	}
}

// Clone returns an independent copy of the histogram (nil clones to
// nil). Results that outlive the simulator they came from clone the
// shared live histogram so later resets cannot mutate them.
func (h *Histogram) Clone() *Histogram {
	if h == nil {
		return nil
	}
	return &Histogram{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Total:  h.Total,
	}
}

// Fraction returns the fraction of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Merge adds the contents of other into h. Bucket shapes must match.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.Counts {
		if i < len(other.Counts) {
			h.Counts[i] += other.Counts[i]
		}
	}
	h.Total += other.Total
}

// FormatPercent renders a fraction as a fixed-width percentage string.
func FormatPercent(x float64) string {
	return fmt.Sprintf("%+.2f%%", x)
}
