// Package memory implements a DDR4-style main-memory timing model:
// channels, ranks and banks with open-row tracking, tCAS/tRCD/tRP/tRAS
// timing, data-bus occupancy and batched writes. All times are in core
// clock cycles.
package memory

// Config holds DRAM organization and timing parameters, expressed in
// core cycles.
type Config struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     uint64

	TCAS, TRCD, TRP, TRAS int64
	BurstCycles           int64 // data transfer time of one 64B line
	CtrlOverhead          int64 // controller + queueing fixed cost
	WriteBatch            int   // writes buffered before a drain burst
}

// DDR4_2400 returns the paper's memory configuration (two DDR4-2400
// channels, two ranks per channel, eight banks per rank, 2KB row
// buffers, 15-15-15-39 timing) converted to 3.2GHz core cycles.
func DDR4_2400() Config {
	// One DRAM cycle at 1200MHz is 2.67 core cycles at 3.2GHz.
	const dclk = 8.0 / 3.0
	return Config{
		Channels:     2,
		RanksPerChan: 2,
		BanksPerRank: 8,
		RowBytes:     2048,
		TCAS:         int64(15 * dclk),
		TRCD:         int64(15 * dclk),
		TRP:          int64(15 * dclk),
		TRAS:         int64(39 * dclk),
		BurstCycles:  11, // 64B over a 64-bit bus at 2400MT/s
		CtrlOverhead: 50,
		WriteBatch:   16,
	}
}

// Stats counts DRAM events.
type Stats struct {
	Reads, Writes        uint64
	RowHits, RowMisses   uint64
	RowConflicts         uint64
	WriteDrains          uint64
	TotalReadLat         uint64
	BusyStallCycles      uint64
	ChannelBusyConflicts uint64
}

type bank struct {
	openRow  uint64
	rowValid bool
	readyAt  int64
}

type channel struct {
	busReadyAt int64
}

// DRAM is the memory device model.
type DRAM struct {
	cfg      Config //catch:nosnap construction-time configuration, not warm state
	banks    []bank
	channels []channel
	pending  int // buffered writes awaiting a drain
	Stats    Stats
}

// New constructs a DRAM model from cfg.
func New(cfg Config) *DRAM {
	if cfg.Channels <= 0 {
		cfg.Channels = 1
	}
	if cfg.RanksPerChan <= 0 {
		cfg.RanksPerChan = 1
	}
	if cfg.BanksPerRank <= 0 {
		cfg.BanksPerRank = 1
	}
	if cfg.RowBytes < 64 {
		cfg.RowBytes = 64
	}
	if cfg.WriteBatch <= 0 {
		cfg.WriteBatch = 1
	}
	n := cfg.Channels * cfg.RanksPerChan * cfg.BanksPerRank
	return &DRAM{
		cfg:      cfg,
		banks:    make([]bank, n),
		channels: make([]channel, cfg.Channels),
	}
}

// Config returns the device configuration.
func (d *DRAM) Config() Config { return d.cfg }

// locate maps a physical address to (channel, bank index, row).
func (d *DRAM) locate(addr uint64) (ch int, bk int, row uint64) {
	line := addr >> 6
	ch = int(line % uint64(d.cfg.Channels))
	line /= uint64(d.cfg.Channels)
	nb := d.cfg.RanksPerChan * d.cfg.BanksPerRank
	bk = ch*nb + int(line%uint64(nb))
	line /= uint64(nb)
	row = line / (d.cfg.RowBytes / 64)
	return
}

// Read returns the latency of a demand read issued at cycle now.
func (d *DRAM) Read(addr uint64, now int64) int64 {
	d.Stats.Reads++
	ch, bk, row := d.locate(addr)
	b := &d.banks[bk]
	c := &d.channels[ch]

	start := now + d.cfg.CtrlOverhead
	if b.readyAt > start {
		d.Stats.BusyStallCycles += uint64(b.readyAt - start)
		start = b.readyAt
	}

	var access int64
	switch {
	case b.rowValid && b.openRow == row:
		d.Stats.RowHits++
		access = d.cfg.TCAS
	case b.rowValid:
		d.Stats.RowConflicts++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
	default:
		d.Stats.RowMisses++
		access = d.cfg.TRCD + d.cfg.TCAS
	}
	b.openRow, b.rowValid = row, true

	dataAt := start + access
	if c.busReadyAt > dataAt {
		d.Stats.ChannelBusyConflicts++
		dataAt = c.busReadyAt
	}
	done := dataAt + d.cfg.BurstCycles
	c.busReadyAt = done
	b.readyAt = start + access // bank can overlap with bus transfer

	lat := done - now
	d.Stats.TotalReadLat += uint64(lat)
	return lat
}

// Write buffers a write-back; when WriteBatch writes have accumulated
// the batch is drained, occupying banks and buses (modelled as advancing
// bank/bus ready times round-robin).
func (d *DRAM) Write(addr uint64, now int64) {
	d.Stats.Writes++
	d.pending++
	if d.pending < d.cfg.WriteBatch {
		return
	}
	d.pending = 0
	d.Stats.WriteDrains++
	// Spread the batch across banks; each write costs roughly a row
	// activation plus burst on its bank.
	per := (d.cfg.TRCD + d.cfg.TCAS + d.cfg.BurstCycles) / 2
	for i := range d.banks {
		b := &d.banks[i]
		if b.readyAt < now {
			b.readyAt = now
		}
		b.readyAt += per * int64(d.cfg.WriteBatch) / int64(len(d.banks))
	}
}

// AvgReadLatency returns the mean observed read latency in cycles.
func (d *DRAM) AvgReadLatency() float64 {
	if d.Stats.Reads == 0 {
		return 0
	}
	return float64(d.Stats.TotalReadLat) / float64(d.Stats.Reads)
}

// RowHitRate returns the fraction of reads that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	t := d.Stats.RowHits + d.Stats.RowMisses + d.Stats.RowConflicts
	if t == 0 {
		return 0
	}
	return float64(d.Stats.RowHits) / float64(t)
}
