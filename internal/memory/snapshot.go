package memory

import "catch/internal/snap"

// Snapshot codec for DRAM: per-bank open rows and ready times, per-
// channel bus occupancy, the write-drain backlog and the counters.

// SnapshotTo appends the DRAM's full mutable state.
func (d *DRAM) SnapshotTo(w *snap.Writer) {
	w.U64(uint64(len(d.banks)))
	w.U64(uint64(len(d.channels)))
	for i := range d.banks {
		b := &d.banks[i]
		w.U64(b.openRow)
		w.Bool(b.rowValid)
		w.I64(b.readyAt)
	}
	for i := range d.channels {
		w.I64(d.channels[i].busReadyAt)
	}
	w.Int(d.pending)
	w.U64(d.Stats.Reads)
	w.U64(d.Stats.Writes)
	w.U64(d.Stats.RowHits)
	w.U64(d.Stats.RowMisses)
	w.U64(d.Stats.RowConflicts)
	w.U64(d.Stats.WriteDrains)
	w.U64(d.Stats.TotalReadLat)
	w.U64(d.Stats.BusyStallCycles)
	w.U64(d.Stats.ChannelBusyConflicts)
}

// RestoreFrom restores state serialized by SnapshotTo into a DRAM of
// identical geometry.
func (d *DRAM) RestoreFrom(r *snap.Reader) error {
	r.Expect(uint64(len(d.banks)), "DRAM bank count")
	r.Expect(uint64(len(d.channels)), "DRAM channel count")
	for i := range d.banks {
		b := &d.banks[i]
		b.openRow = r.U64()
		b.rowValid = r.Bool()
		b.readyAt = r.I64()
	}
	for i := range d.channels {
		d.channels[i].busReadyAt = r.I64()
	}
	d.pending = r.Int()
	d.Stats.Reads = r.U64()
	d.Stats.Writes = r.U64()
	d.Stats.RowHits = r.U64()
	d.Stats.RowMisses = r.U64()
	d.Stats.RowConflicts = r.U64()
	d.Stats.WriteDrains = r.U64()
	d.Stats.TotalReadLat = r.U64()
	d.Stats.BusyStallCycles = r.U64()
	d.Stats.ChannelBusyConflicts = r.U64()
	return r.Err()
}
