package memory

import (
	"testing"
	"testing/quick"
)

// The address mapping interleaves consecutive lines over channels and
// banks: with 2ch×2rk×8bk and 2KB rows, lines 32 apart share a bank and
// row, and lines 1024 apart share a bank but not a row.
const (
	sameBankSameRow = 32 * 64
	sameBankNextRow = 1024 * 64
)

func TestRowHitFasterThanConflict(t *testing.T) {
	d := New(DDR4_2400())
	first := d.Read(0, 0)
	hit := d.Read(sameBankSameRow, first+1000)
	if hit >= first {
		t.Fatalf("row hit (%d) not faster than opening read (%d)", hit, first)
	}
	conflict := d.Read(sameBankNextRow, first+5000)
	if conflict <= hit {
		t.Fatalf("row conflict (%d) not slower than row hit (%d)", conflict, hit)
	}
}

func TestRowHitRateTracked(t *testing.T) {
	d := New(DDR4_2400())
	for i := 0; i < 32; i++ {
		d.Read(uint64(i*sameBankSameRow), int64(i*500))
	}
	if d.RowHitRate() < 0.5 {
		t.Fatalf("same-row reads row-hit rate %.2f too low", d.RowHitRate())
	}
}

func TestBankBusyDelaysBackToBack(t *testing.T) {
	d := New(DDR4_2400())
	l1 := d.Read(0, 0)
	// Immediate second access to the SAME bank, different row, queues.
	l2 := d.Read(sameBankNextRow, 0)
	if l2 <= l1 {
		t.Fatalf("back-to-back same-bank conflict %d not delayed vs %d", l2, l1)
	}
}

func TestChannelsAllowParallelism(t *testing.T) {
	d := New(DDR4_2400())
	a := d.Read(0, 0)
	b := d.Read(64*1, 0) // different channel by the address mapping
	if b > a+d.Config().BurstCycles {
		t.Fatalf("cross-channel read serialized: %d vs %d", b, a)
	}
}

func TestWritesBatched(t *testing.T) {
	d := New(DDR4_2400())
	for i := 0; i < d.Config().WriteBatch-1; i++ {
		d.Write(uint64(i*64), 0)
	}
	if d.Stats.WriteDrains != 0 {
		t.Fatal("drained before batch full")
	}
	d.Write(uint64(d.Config().WriteBatch*64), 0)
	if d.Stats.WriteDrains != 1 {
		t.Fatal("batch did not drain")
	}
	if d.Stats.Writes != uint64(d.Config().WriteBatch) {
		t.Fatalf("write count %d", d.Stats.Writes)
	}
}

func TestAvgReadLatency(t *testing.T) {
	d := New(DDR4_2400())
	if d.AvgReadLatency() != 0 {
		t.Fatal("avg latency nonzero before reads")
	}
	d.Read(0, 0)
	if d.AvgReadLatency() <= 0 {
		t.Fatal("avg latency not tracked")
	}
}

func TestReadLatencyPositiveProperty(t *testing.T) {
	d := New(DDR4_2400())
	now := int64(0)
	f := func(addr uint64) bool {
		now += 50
		lat := d.Read(addr%(1<<32), now)
		return lat > 0 && lat < 100000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDegenerateConfig(t *testing.T) {
	d := New(Config{}) // all zero: must not panic
	if lat := d.Read(0, 0); lat < 0 {
		t.Fatalf("degenerate config latency %d", lat)
	}
}
