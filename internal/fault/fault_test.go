package fault

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// TestInjectorDeterministicSelection pins the headline property: two
// injectors with the same plan make identical decisions for any site
// sequence, regardless of the order sites are probed in.
func TestInjectorDeterministicSelection(t *testing.T) {
	plan := Plan{Seed: 42, Rules: map[Kind]Rule{
		Exec:  {Prob: 0.5},
		Panic: {Prob: 0.3, Times: 2},
	}}
	sites := make([]string, 100)
	for i := range sites {
		sites[i] = fmt.Sprintf("site-%03d", i)
	}

	a, b := NewInjector(plan), NewInjector(plan)
	for _, s := range sites {
		if got, want := a.Fire(Exec, s), b.Fire(Exec, s); got != want {
			t.Fatalf("site %s: injectors disagree", s)
		}
		if a.Fire(Panic, s) != b.Fire(Panic, s) {
			t.Fatalf("site %s: injectors disagree on panic", s)
		}
	}
	if a.Injected(Exec) == 0 || a.Injected(Exec) == 100 {
		t.Fatalf("prob 0.5 selected %d of 100 sites; hash looks degenerate", a.Injected(Exec))
	}
	// Probing the same sites in reverse order on a fresh injector
	// selects the same set (selection is stateless; only budgets are
	// stateful).
	c := NewInjector(plan)
	for i := len(sites) - 1; i >= 0; i-- {
		c.Fire(Exec, sites[i])
	}
	if c.Injected(Exec) != a.Injected(Exec) {
		t.Fatalf("order-dependent selection: %d vs %d", c.Injected(Exec), a.Injected(Exec))
	}
}

// TestInjectorBudgetHealsSites: a selected site fires exactly Times
// times, then heals — the property that keeps injected faults
// recoverable by retries.
func TestInjectorBudgetHealsSites(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, Rules: map[Kind]Rule{Exec: {Prob: 1, Times: 2}}})
	const site = "always-selected"
	for i := 0; i < 2; i++ {
		if !in.Fire(Exec, site) {
			t.Fatalf("fire %d: want true", i)
		}
	}
	for i := 0; i < 5; i++ {
		if in.Fire(Exec, site) {
			t.Fatal("site did not heal after its budget")
		}
	}
	if in.Injected(Exec) != 2 || in.TotalInjected() != 2 {
		t.Fatalf("injected = %d (total %d), want 2", in.Injected(Exec), in.TotalInjected())
	}
}

func TestInjectorSeedChangesSelection(t *testing.T) {
	sel := func(seed uint64) string {
		in := NewInjector(Plan{Seed: seed, Rules: map[Kind]Rule{Exec: {Prob: 0.5}}})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if in.Fire(Exec, fmt.Sprintf("s%d", i)) {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		return sb.String()
	}
	if sel(1) == sel(2) {
		t.Fatal("different seeds selected identical site sets")
	}
}

func TestNilInjectorNeverFires(t *testing.T) {
	var in *Injector
	if in.Fire(Exec, "x") || in.SlowDelay("x") != 0 || in.Injected(Exec) != 0 || in.TotalInjected() != 0 {
		t.Fatal("nil injector fired")
	}
	if NewInjector(Plan{}) != nil {
		t.Fatal("empty plan should build a nil injector")
	}
}

func TestSlowDelayDefaults(t *testing.T) {
	in := NewInjector(Plan{Rules: map[Kind]Rule{Slow: {Prob: 1}}})
	if d := in.SlowDelay("s"); d != time.Millisecond {
		t.Fatalf("default slow delay = %v, want 1ms", d)
	}
	if d := in.SlowDelay("s"); d != 0 {
		t.Fatalf("slow budget not consumed: %v", d)
	}
}

func TestCorruptBytesDefeatJSON(t *testing.T) {
	raw, err := json.Marshal([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	if err := json.Unmarshal(CorruptBytes(raw), &out); err == nil {
		t.Fatal("corrupted bytes still parse")
	}
}

func TestPermanentClassification(t *testing.T) {
	base := errors.New("bad config")
	p := Permanent(base)
	if !IsPermanent(p) {
		t.Fatal("Permanent not detected")
	}
	if !IsPermanent(fmt.Errorf("attempt 1/3: %w", p)) {
		t.Fatal("wrapped Permanent not detected")
	}
	if IsPermanent(base) || IsPermanent(nil) {
		t.Fatal("false positive")
	}
	if !errors.Is(p, base) {
		t.Fatal("Permanent hides the underlying error")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

func TestInjectedErrorIdentity(t *testing.T) {
	in := NewInjector(Plan{Rules: map[Kind]Rule{Exec: {Prob: 1}}})
	err := fmt.Errorf("attempt: %w", in.Err(Exec, "k"))
	var inj *Injected
	if !errors.As(err, &inj) || inj.Kind != Exec || inj.Site != "k" {
		t.Fatalf("Injected not recoverable from %v", err)
	}
	if !strings.Contains(err.Error(), "injected exec") {
		t.Fatalf("error text %q", err)
	}
}

// TestRuleMatchFilter pins the site-substring filter partitions are
// built from: a matched rule fires only at sites containing the
// filter, so Prob 1 + Match <peer URL> severs exactly the links to
// that peer and nothing else.
func TestRuleMatchFilter(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, Rules: map[Kind]Rule{
		Peer: {Prob: 1, Times: 1 << 20, Match: "http://b:1"},
	}})
	matched := []string{
		"fetch:http://b:1:fetch:http://b:1:deadbeef",
		"probe:http://b:1:probe:http://b:1",
	}
	unmatched := []string{
		"fetch:http://a:1:fetch:http://a:1:deadbeef",
		"probe:http://c:1:probe:http://c:1",
		"fill:http://a:9:fill:http://a:9:cafe",
	}
	for _, s := range matched {
		if !in.Fire(Peer, s) {
			t.Fatalf("matched site %q did not fire under Prob 1", s)
		}
	}
	for _, s := range unmatched {
		if in.Fire(Peer, s) {
			t.Fatalf("unmatched site %q fired despite the filter", s)
		}
	}
	if got := in.Injected(Peer); got != uint64(len(matched)) {
		t.Fatalf("injected = %d, want %d (matched sites only)", got, len(matched))
	}
}

func TestParsePlanRoundTrip(t *testing.T) {
	spec := "seed=42,disk-read=0.5,corrupt=0.25:2,slow=0.3@5ms,peer=1:99~http://b:1"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.Rules[DiskRead].Prob != 0.5 ||
		p.Rules[Corrupt].Times != 2 || p.Rules[Slow].Delay != 5*time.Millisecond {
		t.Fatalf("parsed plan = %+v", p)
	}
	if r := p.Rules[Peer]; r.Prob != 1 || r.Times != 99 || r.Match != "http://b:1" {
		t.Fatalf("parsed peer rule = %+v; ~match did not survive", r)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("round trip: %v (%q)", err, p.String())
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip diverged: %q vs %q", p2.String(), p.String())
	}
	if empty, err := ParsePlan(" "); err != nil || empty.Enabled() {
		t.Fatalf("empty spec: %+v %v", empty, err)
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"nope",
		"unknown-kind=0.5",
		"disk-read=1.5",
		"disk-read=x",
		"disk-read=0.5:0",
		"slow=0.5@-3ms",
		"seed=abc",
		"peer=0.5~", // an empty filter would silently match every site

	} {
		if _, err := ParsePlan(spec); err == nil {
			t.Errorf("spec %q parsed", spec)
		}
	}
}
