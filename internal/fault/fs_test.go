package fault

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInjectFSReadFault(t *testing.T) {
	p := writeTemp(t, "entry.json", `[1]`)
	fs := InjectFS{FS: OS{}, Inj: NewInjector(Plan{Rules: map[Kind]Rule{DiskRead: {Prob: 1}}})}

	if _, err := fs.ReadFile(p); err == nil {
		t.Fatal("no injected read error")
	} else {
		var inj *Injected
		if !errors.As(err, &inj) || inj.Kind != DiskRead {
			t.Fatalf("err = %v", err)
		}
	}
	// Budget consumed: the site heals and the real content comes back.
	data, err := fs.ReadFile(p)
	if err != nil || string(data) != `[1]` {
		t.Fatalf("after heal: %q %v", data, err)
	}
}

func TestInjectFSCorruptFault(t *testing.T) {
	p := writeTemp(t, "entry.json", `[1,2,3]`)
	fs := InjectFS{FS: OS{}, Inj: NewInjector(Plan{Rules: map[Kind]Rule{Corrupt: {Prob: 1}}})}
	data, err := fs.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var out []int
	if json.Unmarshal(data, &out) == nil {
		t.Fatal("corrupted read still parses")
	}
}

func TestInjectFSWriteAndRenameFaults(t *testing.T) {
	dir := t.TempDir()
	fs := InjectFS{FS: OS{}, Inj: NewInjector(Plan{Rules: map[Kind]Rule{DiskWrite: {Prob: 1, Times: 2}}})}
	p := filepath.Join(dir, "a.json")
	if err := fs.WriteFile(p, []byte("x"), 0o644); err == nil {
		t.Fatal("no injected write error")
	}
	if err := fs.Rename(p, filepath.Join(dir, "b.json")); err == nil {
		t.Fatal("no injected rename error")
	}
}

// TestInjectFSPropagatesRealErrors pins the wrapper invariant the
// error-hygiene analyzer enforces statically: real failures from the
// wrapped FS surface unchanged.
func TestInjectFSPropagatesRealErrors(t *testing.T) {
	fs := InjectFS{FS: OS{}, Inj: nil} // no injection at all
	if _, err := fs.ReadFile(filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("real not-exist lost: %v", err)
	}
	if err := fs.Remove(filepath.Join(t.TempDir(), "missing.json")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("real remove error lost: %v", err)
	}
}
