package fault

import "time"

// Backoff computes exponential retry delays with deterministic seeded
// jitter: the delay before retry n of a site is Base·2^(n-1), capped
// at Max, scaled into [50%, 100%] by a hash of (Seed, site, n). Two
// runs with the same seed sleep the same schedule, so retry timing
// never becomes a hidden source of nondeterminism — the package never
// touches the clock or math/rand.
//
// The zero value disables backoff: every delay is 0 (immediate
// retries, the engine's historical behaviour).
type Backoff struct {
	// Base is the first retry's nominal delay; <=0 disables backoff.
	Base time.Duration
	// Max caps one delay; <=0 means 32×Base.
	Max time.Duration
	// Budget caps the cumulative sleep across one job's retries; the
	// engine stops retrying once the next delay would exceed it.
	// <=0 means unlimited.
	Budget time.Duration
	// Seed drives the jitter hash.
	Seed uint64
}

// Delay returns the pause before retry attempt (attempt >= 1) of site.
func (b Backoff) Delay(site string, attempt int) time.Duration {
	if b.Base <= 0 || attempt < 1 {
		return 0
	}
	max := b.Max
	if max <= 0 {
		max = 32 * b.Base
	}
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= max || d <= 0 { // d<=0 guards duration overflow
			d = max
			break
		}
	}
	if d > max {
		d = max
	}
	// Jitter into [0.5, 1.0)·d, deterministically per (seed, site, n).
	h := mix(b.Seed+uint64(attempt)*0x9E3779B97F4A7C15, site)
	frac := 0.5 + 0.5*float64(h>>11)/float64(1<<53)
	return time.Duration(float64(d) * frac)
}
