package fault

import "testing"

// TestBreakerLifecycle walks the full state machine: closed → open on
// threshold consecutive failures → half-open after cooldown denials →
// closed again on a successful probe.
func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(3, 4)
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("fresh breaker not closed")
	}

	// Two failures with a success in between never trip: the count is
	// consecutive.
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != StateClosed {
		t.Fatal("tripped on non-consecutive failures")
	}
	b.Failure()
	if b.State() != StateOpen || b.Trips() != 1 {
		t.Fatalf("state=%v trips=%d after 3 consecutive failures", b.State(), b.Trips())
	}

	// While open, Allow denies; the cooldown is counted in denials.
	for i := 0; i < 4; i++ {
		if b.Allow() {
			t.Fatalf("denial %d: open breaker allowed", i)
		}
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state=%v after cooldown, want half-open", b.State())
	}

	// Half-open grants exactly one probe.
	if !b.Allow() {
		t.Fatal("half-open denied the probe")
	}
	if b.Allow() {
		t.Fatal("half-open granted a second probe")
	}
	b.Success()
	if b.State() != StateClosed || !b.Allow() {
		t.Fatal("successful probe did not close the circuit")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b := NewBreaker(1, 2)
	b.Failure()
	if b.State() != StateOpen {
		t.Fatal("threshold 1 did not trip")
	}
	b.Allow()
	b.Allow()
	if !b.Allow() { // probe
		t.Fatal("no probe granted")
	}
	b.Failure()
	if b.State() != StateOpen || b.Trips() != 2 {
		t.Fatalf("state=%v trips=%d after failed probe", b.State(), b.Trips())
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *Breaker
	b.Failure()
	b.Success()
	if !b.Allow() || b.State() != StateClosed || b.Trips() != 0 {
		t.Fatal("nil breaker misbehaved")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		StateClosed: "closed", StateHalfOpen: "half-open", StateOpen: "open",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
