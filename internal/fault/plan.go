package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParsePlan parses a compact fault-plan spec of comma-separated
// fields:
//
//	seed=42,disk-read=0.5,corrupt=0.25:2,panic=0.1,slow=0.3:1@5ms,peer=1:99~http://b:1
//
// Each fault field is kind=prob[:times][@delay][~match]: prob is the
// fraction of sites selected (0..1], times the per-site firing budget
// (default 1), @delay the artificial latency for slow faults, and
// ~match a site-substring filter — the rule fires only at sites
// containing it (peer-call sites embed the peer URL, so ~match cuts
// the links to one peer). An empty spec parses to the zero Plan
// (nothing injected).
func ParsePlan(spec string) (Plan, error) {
	p := Plan{Rules: make(map[Kind]Rule)}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, val, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault plan: field %q is not name=value", field)
		}
		if name == "seed" {
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault plan: bad seed %q: %v", val, err)
			}
			p.Seed = seed
			continue
		}
		kind, ok := kindByName(name)
		if !ok {
			return Plan{}, fmt.Errorf("fault plan: unknown fault kind %q (valid: %s, seed)",
				name, strings.Join(kindNames[:], ", "))
		}
		rule, err := parseRule(val)
		if err != nil {
			return Plan{}, fmt.Errorf("fault plan: %s: %v", name, err)
		}
		p.Rules[kind] = rule
	}
	return p, nil
}

// parseRule parses prob[:times][@delay][~match].
func parseRule(val string) (Rule, error) {
	var r Rule
	if i := strings.IndexByte(val, '~'); i >= 0 {
		r.Match = val[i+1:]
		if r.Match == "" {
			return Rule{}, fmt.Errorf("empty ~match filter")
		}
		val = val[:i]
	}
	if i := strings.IndexByte(val, '@'); i >= 0 {
		d, err := time.ParseDuration(val[i+1:])
		if err != nil || d < 0 {
			return Rule{}, fmt.Errorf("bad delay %q", val[i+1:])
		}
		r.Delay = d
		val = val[:i]
	}
	if prob, times, ok := strings.Cut(val, ":"); ok {
		n, err := strconv.Atoi(times)
		if err != nil || n < 1 {
			return Rule{}, fmt.Errorf("bad times %q (want a positive integer)", times)
		}
		r.Times = n
		val = prob
	}
	prob, err := strconv.ParseFloat(val, 64)
	if err != nil || prob < 0 || prob > 1 {
		return Rule{}, fmt.Errorf("bad probability %q (want 0..1)", val)
	}
	r.Prob = prob
	return r, nil
}

// String renders the plan back into ParsePlan's spec format, kinds in
// declaration order.
func (p Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", p.Seed)
	for k := Kind(0); k < nKinds; k++ {
		r := p.Rules[k]
		if r.Prob <= 0 {
			continue
		}
		fmt.Fprintf(&sb, ",%s=%g", k, r.Prob)
		if r.Times > 1 {
			fmt.Fprintf(&sb, ":%d", r.Times)
		}
		if r.Delay > 0 {
			fmt.Fprintf(&sb, "@%s", r.Delay)
		}
		if r.Match != "" {
			fmt.Fprintf(&sb, "~%s", r.Match)
		}
	}
	return sb.String()
}

func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < nKinds; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}
