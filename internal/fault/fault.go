// Package fault is the deterministic fault-injection layer for the
// experiment stack. An Injector decides — purely from a seed, a fault
// kind and a site name — whether a fault fires at a given site, so a
// fault schedule is reproducible bit-for-bit regardless of goroutine
// scheduling or wall-clock time: the same (seed, plan) always selects
// the same sites, and per-site budgets make injected failures
// transient so that retries and circuit breakers can recover.
//
// The package also carries the generic resilience primitives the
// runner builds on: a three-state circuit Breaker whose cooldown is
// counted in denied calls rather than seconds, and an exponential
// Backoff whose jitter is seeded rather than random. Neither reads
// the clock or global math/rand — the package is inside catchlint's
// determinism scope and must stay clean.
package fault

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"catch/internal/stats"
)

// Kind classifies an injectable fault.
type Kind uint8

// The fault taxonomy. Disk kinds are injected by InjectFS around the
// result cache's filesystem; the job kinds are injected by the engine
// around one simulation attempt.
const (
	// DiskRead makes a cache disk read fail with an I/O error.
	DiskRead Kind = iota
	// DiskWrite makes a cache disk write or rename fail.
	DiskWrite
	// Corrupt returns garbled bytes from a cache disk read.
	Corrupt
	// Panic makes a job execution attempt panic.
	Panic
	// Slow delays a job execution attempt by the rule's Delay.
	Slow
	// Hang blocks a job execution attempt until its context ends.
	Hang
	// Exec fails a job execution attempt with a transient error.
	Exec
	// Peer makes a cluster peer call (result fetch, shard dispatch,
	// steal, fill) fail with a transient error, so the chaos suite can
	// prove the ring reroutes and the tiered read path degrades to
	// local compute.
	Peer

	nKinds
)

var kindNames = [nKinds]string{
	DiskRead:  "disk-read",
	DiskWrite: "disk-write",
	Corrupt:   "corrupt",
	Panic:     "panic",
	Slow:      "slow",
	Hang:      "hang",
	Exec:      "exec",
	Peer:      "peer",
}

func (k Kind) String() string {
	if k < nKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds returns every fault kind in declaration order (for metric
// registration and plan rendering).
func Kinds() []Kind {
	out := make([]Kind, 0, nKinds)
	for k := Kind(0); k < nKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Rule configures one fault kind within a Plan.
type Rule struct {
	// Prob is the fraction of sites the rule selects, in [0, 1].
	// Selection is a pure function of (seed, kind, site), so the same
	// site is selected in every run with the same plan.
	Prob float64
	// Times bounds how often the fault fires per selected site before
	// the site heals; 0 means once. A bounded budget keeps injected
	// failures transient, so a retried job eventually succeeds.
	Times int
	// Delay is the artificial latency for Slow rules (default 1ms).
	Delay time.Duration
	// Match, when non-empty, restricts the rule to sites containing the
	// substring. Peer-call sites embed the target peer's URL, so a
	// matched Peer rule severs exactly the links to one peer — the
	// building block partition chaos tests cut a cluster with
	// (Prob 1 + Match "http://b:1" fails every call to b and nothing
	// else, deterministically).
	Match string
}

// Plan is a seeded fault schedule: at most one rule per kind.
type Plan struct {
	Seed  uint64
	Rules map[Kind]Rule
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	for k := Kind(0); k < nKinds; k++ {
		if p.Rules[k].Prob > 0 {
			return true
		}
	}
	return false
}

// Injected is the error carried by every injected fault. It never
// wraps a real failure — errors.As against *Injected identifies
// synthetic errors in tests and logs.
type Injected struct {
	Kind Kind
	Site string
}

func (e *Injected) Error() string {
	return "fault: injected " + e.Kind.String() + " at " + e.Site
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so IsPermanent reports true: retrying can never
// fix it (structural config errors, unknown names). A nil err stays
// nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// siteKey identifies one (kind, site) budget bucket.
type siteKey struct {
	kind Kind
	site string
}

// Injector executes a Plan. All methods are safe for concurrent use
// and nil-safe: a nil *Injector never fires, so fault-free builds pay
// one pointer test per site.
type Injector struct {
	seed  uint64
	rules [nKinds]Rule

	mu    sync.Mutex
	fired map[siteKey]int

	injected [nKinds]stats.AtomicCounter
}

// NewInjector builds an injector for plan. A plan that injects
// nothing returns nil, which every call site treats as "faults off".
func NewInjector(plan Plan) *Injector {
	if !plan.Enabled() {
		return nil
	}
	in := &Injector{seed: plan.Seed, fired: make(map[siteKey]int)}
	for k := Kind(0); k < nKinds; k++ {
		r := plan.Rules[k]
		if r.Times <= 0 {
			r.Times = 1
		}
		if k == Slow && r.Prob > 0 && r.Delay <= 0 {
			r.Delay = time.Millisecond
		}
		in.rules[k] = r
	}
	return in
}

// Fire reports whether a kind-fault fires at site, consuming one unit
// of the site's budget when it does. Site selection is deterministic
// (a hash of seed, kind and site); only the budget bookkeeping is
// stateful, so concurrent callers agree on which sites fail and only
// race on who observes the last budgeted firing.
func (in *Injector) Fire(kind Kind, site string) bool {
	if in == nil {
		return false
	}
	r := in.rules[kind]
	if r.Prob <= 0 || !selected(in.seed, kind, site, r.Prob) {
		return false
	}
	if r.Match != "" && !strings.Contains(site, r.Match) {
		return false
	}
	k := siteKey{kind, site}
	in.mu.Lock()
	n := in.fired[k]
	if n >= r.Times {
		in.mu.Unlock()
		return false
	}
	in.fired[k] = n + 1
	in.mu.Unlock()
	in.injected[kind].Inc()
	return true
}

// SlowDelay returns the artificial latency to add before executing
// site (0 when the Slow rule does not fire).
func (in *Injector) SlowDelay(site string) time.Duration {
	if in == nil || !in.Fire(Slow, site) {
		return 0
	}
	return in.rules[Slow].Delay
}

// Err builds the canonical error for a kind-fault at site.
func (in *Injector) Err(kind Kind, site string) error {
	return &Injected{Kind: kind, Site: site}
}

// Injected returns how many kind-faults have fired so far.
func (in *Injector) Injected(kind Kind) uint64 {
	if in == nil {
		return 0
	}
	return in.injected[kind].Value()
}

// TotalInjected sums the fired faults across all kinds.
func (in *Injector) TotalInjected() uint64 {
	if in == nil {
		return 0
	}
	var total uint64
	for k := Kind(0); k < nKinds; k++ {
		total += in.injected[k].Value()
	}
	return total
}

// CorruptBytes garbles a disk entry so every structured decoder
// rejects it: the payload is replaced by an unterminated JSON prefix
// plus a NUL, keeping a recognizable marker for humans reading the
// quarantined file.
func CorruptBytes(data []byte) []byte {
	garbled := make([]byte, 0, len(data)+16)
	garbled = append(garbled, []byte("{\x00fault-corrupt ")...)
	if len(data) > 8 {
		data = data[:8]
	}
	return append(garbled, data...)
}

// selected hashes (seed, kind, site) into [0,1) and compares with
// prob. splitmix64 over an FNV-1a digest of the site keeps the
// selection well-mixed for near-identical site names.
func selected(seed uint64, kind Kind, site string, prob float64) bool {
	if prob >= 1 {
		return true
	}
	h := mix(seed^(0x9E3779B97F4A7C15*uint64(kind+1)), site)
	return float64(h>>11)/float64(1<<53) < prob
}

// mix combines seed and site into a well-distributed 64-bit hash.
func mix(seed uint64, site string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= 1099511628211
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}
