package fault

import (
	"sync"

	"catch/internal/stats"
)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int32

// Breaker states, in escalation order. The numeric values are exposed
// as a gauge (/metrics), so they are part of the observability
// contract: 0 healthy, 1 probing, 2 tripped.
const (
	StateClosed   BreakerState = 0
	StateHalfOpen BreakerState = 1
	StateOpen     BreakerState = 2
)

func (s BreakerState) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateHalfOpen:
		return "half-open"
	case StateOpen:
		return "open"
	}
	return "unknown"
}

// Breaker is a three-state circuit breaker. Threshold consecutive
// failures trip it open; while open it denies Allow until Cooldown
// denials have accumulated, then moves to half-open and grants exactly
// one probe. A successful probe closes the circuit, a failed one
// re-opens it.
//
// The cooldown is counted in denied calls, not seconds, so the
// breaker is deterministic: under a steady request stream "N denials"
// is a duration, and in tests it is an exact, clock-free schedule.
type Breaker struct {
	threshold int
	cooldown  int

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive failures while closed
	denied   int // Allow denials since the circuit opened
	probing  bool

	trips stats.AtomicCounter
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures and probes after cooldown denied calls. Non-positive
// arguments take the defaults (5 failures, 32 denials).
func NewBreaker(threshold, cooldown int) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 32
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether the protected operation may run. Nil-safe: a
// nil breaker always allows.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		return true
	case StateOpen:
		b.denied++
		if b.denied >= b.cooldown {
			b.state = StateHalfOpen
			b.probing = false
		}
		return false
	default: // StateHalfOpen: grant a single probe
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a healthy protected operation.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if b.state == StateHalfOpen {
		b.state = StateClosed
		b.probing = false
	}
}

// Failure reports a failed protected operation; enough of them in a
// row (or one failed half-open probe) trips the circuit.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case StateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case StateHalfOpen:
		b.trip()
	}
}

// trip moves to open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = StateOpen
	b.failures = 0
	b.denied = 0
	b.probing = false
	b.trips.Inc()
}

// State snapshots the current state (StateClosed for a nil breaker).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return StateClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the circuit has opened.
func (b *Breaker) Trips() uint64 {
	if b == nil {
		return 0
	}
	return b.trips.Value()
}
