package fault

import (
	"os"
	"path/filepath"
)

// FS is the filesystem surface the result cache depends on. The
// production implementation is OS; tests and chaos runs substitute
// InjectFS to make disk failures reachable on demand.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir lists the file names in dir (sorted, as os.ReadDir
	// guarantees). The result cache uses it to manifest its on-disk
	// keys for anti-entropy repair.
	ReadDir(dir string) ([]string, error)
}

// OS is the real filesystem.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// InjectFS decorates an FS with injected disk faults. Sites are the
// base name of the path (stable across temp directories), so a seeded
// plan selects the same cache entries in every run. Real errors from
// the wrapped FS always propagate — a wrapper that swallowed them
// would hide the very failures this package exists to exercise, and
// catchlint's error-hygiene analyzer enforces that invariant on every
// decorator in this package.
type InjectFS struct {
	FS  FS
	Inj *Injector
}

// site maps a path to its injection site: the base file name.
func site(name string) string { return filepath.Base(name) }

func (f InjectFS) ReadFile(name string) ([]byte, error) {
	if f.Inj.Fire(DiskRead, site(name)) {
		return nil, f.Inj.Err(DiskRead, site(name))
	}
	data, err := f.FS.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if f.Inj.Fire(Corrupt, site(name)) {
		return CorruptBytes(data), nil
	}
	return data, nil
}

func (f InjectFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if f.Inj.Fire(DiskWrite, site(name)) {
		return f.Inj.Err(DiskWrite, site(name))
	}
	return f.FS.WriteFile(name, data, perm)
}

func (f InjectFS) MkdirAll(path string, perm os.FileMode) error {
	return f.FS.MkdirAll(path, perm)
}

func (f InjectFS) Rename(oldpath, newpath string) error {
	if f.Inj.Fire(DiskWrite, site(newpath)) {
		return f.Inj.Err(DiskWrite, site(newpath))
	}
	return f.FS.Rename(oldpath, newpath)
}

func (f InjectFS) Remove(name string) error {
	return f.FS.Remove(name)
}

func (f InjectFS) ReadDir(dir string) ([]string, error) {
	if f.Inj.Fire(DiskRead, site(dir)) {
		return nil, f.Inj.Err(DiskRead, site(dir))
	}
	return f.FS.ReadDir(dir)
}
