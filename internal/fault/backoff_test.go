package fault

import (
	"testing"
	"time"
)

func TestBackoffZeroValueDisables(t *testing.T) {
	var b Backoff
	for n := 1; n < 5; n++ {
		if d := b.Delay("k", n); d != 0 {
			t.Fatalf("zero-value delay(%d) = %v", n, d)
		}
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 60 * time.Millisecond, Seed: 1}
	prevNominal := time.Duration(0)
	for n := 1; n <= 6; n++ {
		d := b.Delay("job", n)
		nominal := b.Base << (n - 1)
		if nominal > b.Max {
			nominal = b.Max
		}
		if d < nominal/2 || d >= nominal {
			t.Fatalf("delay(%d) = %v outside [%v, %v)", n, d, nominal/2, nominal)
		}
		if nominal < prevNominal {
			t.Fatalf("nominal shrank at attempt %d", n)
		}
		prevNominal = nominal
	}
	// Far attempts stay capped (and must not overflow).
	if d := b.Delay("job", 200); d >= b.Max {
		t.Fatalf("delay(200) = %v, want < %v", d, b.Max)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	a := Backoff{Base: time.Millisecond, Seed: 9}
	b := Backoff{Base: time.Millisecond, Seed: 9}
	for n := 1; n < 6; n++ {
		if a.Delay("site", n) != b.Delay("site", n) {
			t.Fatalf("attempt %d: jitter not deterministic", n)
		}
	}
	// Different sites (and seeds) jitter differently — at least one of
	// the attempts must differ.
	same := true
	for n := 1; n < 6; n++ {
		if a.Delay("site", n) != a.Delay("other", n) {
			same = false
		}
	}
	if same {
		t.Fatal("jitter ignores the site")
	}
}

func TestBackoffDefaultMax(t *testing.T) {
	b := Backoff{Base: time.Millisecond}
	if d := b.Delay("k", 63); d >= 32*time.Millisecond {
		t.Fatalf("default max: delay = %v, want < 32ms", d)
	}
}
