package experiments

import (
	"context"
	"runtime"
	"sync"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/runner"
	"catch/internal/workloads"
)

// All experiment drivers execute their simulations through a shared
// runner.Engine: the (config × workload) grid shards across a worker
// pool and identical jobs (the baseline runs that several figures
// share, or anything already computed in a previous process when a
// cache directory is configured) are served from the content-addressed
// result cache instead of being re-simulated.
var (
	engMu   sync.Mutex
	eng     *runner.Engine
	execCtx context.Context
)

// UseEngine routes all experiment drivers through e (cmd/catchexp
// installs the engine built from its -parallel/-cache flags).
func UseEngine(e *runner.Engine) {
	engMu.Lock()
	defer engMu.Unlock()
	eng = e
}

// UseContext makes every experiment driver run its jobs under ctx, so
// a command-line interrupt cancels the sweep instead of orphaning it
// (cmd/catchexp installs its signal context; undone jobs come back
// Canceled and a journaled re-run resumes exactly the remainder).
func UseContext(ctx context.Context) {
	engMu.Lock()
	defer engMu.Unlock()
	execCtx = ctx
}

// execContext returns the installed context, or Background.
func execContext() context.Context {
	engMu.Lock()
	defer engMu.Unlock()
	if execCtx == nil {
		return context.Background()
	}
	return execCtx
}

// Engine returns the active engine, lazily creating a default one
// (GOMAXPROCS workers, in-memory cache) on first use.
func Engine() *runner.Engine {
	engMu.Lock()
	defer engMu.Unlock()
	if eng == nil {
		eng = runner.New(runner.Options{
			Workers: runtime.GOMAXPROCS(0),
			Cache:   runner.NewCache(""),
		})
	}
	return eng
}

// runJobs executes jobs and concatenates their results in job order.
// Drivers construct every job from the static registry, so a failure
// here is a programming error, matching the panics the direct-call
// path used for unknown names.
func runJobs(jobs []runner.Job) []core.Result {
	rs, err := runner.Flatten(Engine().Run(execContext(), jobs))
	if err != nil {
		panic("experiments: " + err.Error())
	}
	return rs
}

// runSys runs every study workload on an explicit configuration.
func runSys(cfg config.SystemConfig, b Budget) []core.Result {
	wls := b.workloads()
	jobs := make([]runner.Job, 0, len(wls))
	for _, w := range wls {
		jobs = append(jobs, runner.STJob(cfg, w.WName, b.Insts, b.Warmup))
	}
	return runJobs(jobs)
}

// runGrid runs every study workload on each configuration through a
// single engine submission and returns per-config result slices. One
// submission (rather than one per config) lets a batching engine group
// the configurations sharing a workload into lock-step units, and gives
// the worker pool the whole grid to spread at once.
func runGrid(cfgs []config.SystemConfig, b Budget) [][]core.Result {
	wls := b.workloads()
	jobs := make([]runner.Job, 0, len(cfgs)*len(wls))
	for _, cfg := range cfgs {
		for _, w := range wls {
			jobs = append(jobs, runner.STJob(cfg, w.WName, b.Insts, b.Warmup))
		}
	}
	flat := runJobs(jobs)
	out := make([][]core.Result, len(cfgs))
	for k := range cfgs {
		out[k] = flat[k*len(wls) : (k+1)*len(wls)]
	}
	return out
}

// runConfig runs every study workload on one named configuration.
func runConfig(cfgName string, b Budget) []core.Result {
	cfg, ok := ConfigByName(cfgName)
	if !ok {
		panic("experiments: unknown config " + cfgName)
	}
	return runSys(cfg, b)
}

// runMixes runs one multi-programmed job per mix on cfg, returning the
// per-core results of each mix in order.
func runMixes(cfg config.SystemConfig, mixes []workloads.Mix, b Budget) [][]core.Result {
	jobs := make([]runner.Job, 0, len(mixes))
	for i := range mixes {
		jobs = append(jobs, runner.MPJob(cfg, mixNames(&mixes[i]), b.Insts, b.Warmup))
	}
	out := Engine().Run(execContext(), jobs)
	if err := runner.FirstError(out); err != nil {
		panic("experiments: " + err.Error())
	}
	rs := make([][]core.Result, len(out))
	for i := range out {
		rs[i] = out[i].Results
	}
	return rs
}

// runAloneIPC measures each named workload alone on cfg and returns
// its IPC (the fixed single-thread reference used by weighted-speedup
// metrics).
func runAloneIPC(cfg config.SystemConfig, names []string, b Budget) map[string]float64 {
	jobs := make([]runner.Job, 0, len(names))
	for _, name := range names {
		jobs = append(jobs, runner.STJob(cfg, name, b.Insts, b.Warmup))
	}
	rs := runJobs(jobs)
	out := make(map[string]float64, len(rs))
	for i, name := range names {
		out[name] = rs[i].IPC
	}
	return out
}

func mixNames(m *workloads.Mix) []string {
	names := make([]string, len(m.Parts))
	for k := range m.Parts {
		names[k] = m.Parts[k].WName
	}
	return names
}
