package experiments

import (
	"fmt"

	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/criticality"
	"catch/internal/stats"
	"catch/internal/workloads"
)

// ExtTableSize reproduces the paper's §VI-D2 sensitivity study: the
// size of the critical-load-PC table. The paper found 32 entries to be
// a sweet spot — larger tables admit loads that are only occasionally
// critical and thrash the L1 with their prefetches, while povray-like
// workloads with many critical PCs want more entries (left as future
// work there; the sweep here quantifies it).
func ExtTableSize(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "ext-tablesize",
		Title:   "CATCH gain vs critical-load table size (§VI-D2)",
		Headers: []string{"entries", "geomean gain", "povray", "hmmer"},
	}
	pick := func(rs []core.Result, name string) float64 {
		for i := range rs {
			if rs[i].Workload == name {
				return rs[i].IPC
			}
		}
		return 0
	}
	for _, entries := range []int{8, 16, 32, 64, 128} {
		cfg := config.WithCATCH(config.BaselineExclusive(), fmt.Sprintf("catch-%dpc", entries))
		cfg.CritTable = criticality.TableConfig{Entries: entries, Ways: 8, ConfSat: 3}
		cfg.Tact.Targets = entries
		rs := runSys(cfg, b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(entries),
			pct(geomeanIPC(rs, ""), geomeanIPC(base, "")),
			pct(pick(rs, "povray"), pick(base, "povray")),
			pct(pick(rs, "hmmer"), pick(base, "hmmer")),
		})
	}
	return []Table{t}
}

// ExtMSHR is an ablation of the fill-buffer (MSHR) count: the paper's
// latency arguments assume bounded memory-level parallelism; this sweep
// shows how the baseline and the two-level CATCH hierarchy respond to
// more or fewer outstanding demand misses.
func ExtMSHR(b Budget) []Table {
	t := Table{
		ID:      "ext-mshr",
		Title:   "Sensitivity to demand-miss MSHR count (ablation)",
		Headers: []string{"MSHRs", "baseline-excl", "nol2-9.5-catch vs that baseline"},
	}
	ref := runConfig("baseline-excl", b)
	for _, n := range []int{4, 10, 16, 32} {
		base := config.BaselineExclusive()
		base.MSHRs = n
		base.Name = fmt.Sprintf("baseline-mshr%d", n)
		catch, _ := ConfigByName("nol2-9.5-catch")
		catch.MSHRs = n
		rb := runSys(base, b)
		rc := runSys(catch, b)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			pct(geomeanIPC(rb, ""), geomeanIPC(ref, "")),
			pct(geomeanIPC(rc, ""), geomeanIPC(rb, "")),
		})
	}
	return []Table{t}
}

// ExtDeepDistance ablates the TACT deep-self distance cap (paper: 16,
// balancing timeliness against L1 pollution). The cap matters most on
// the two-level hierarchy, where prefetches must hide the full LLC
// latency; hmmer is the paper's showcase deep-self workload.
func ExtDeepDistance(b Budget) []Table {
	baseCfg, _ := ConfigByName("nol2-9.5")
	base := runSys(baseCfg, b)
	t := Table{
		ID:      "ext-deepdist",
		Title:   "Two-level CATCH gain vs deep-self max distance (over noL2+9.5)",
		Headers: []string{"max distance", "geomean gain", "hmmer"},
	}
	pick := func(rs []core.Result, name string) float64 {
		for i := range rs {
			if rs[i].Workload == name {
				return rs[i].IPC
			}
		}
		return 0
	}
	for _, d := range []int{1, 2, 4, 8, 16, 32} {
		cfg := config.WithCATCH(baseCfg, fmt.Sprintf("nol2-catch-deep%d", d))
		cfg.Tact.MaxDeepDistance = d
		rs := runSys(cfg, b)
		t.Rows = append(t.Rows, []string{fmt.Sprint(d),
			pct(geomeanIPC(rs, ""), geomeanIPC(base, "")),
			pct(pick(rs, "hmmer"), pick(base, "hmmer"))})
	}
	return []Table{t}
}

// ExtReplacement compares LLC replacement policies under the baseline
// and under two-level CATCH. The paper argues CATCH is orthogonal to
// LLC replacement research (§VII); this sweep checks that the CATCH
// gain survives a change of policy.
func ExtReplacement(b Budget) []Table {
	t := Table{
		ID:      "ext-replacement",
		Title:   "LLC replacement policy vs CATCH gain (orthogonality check)",
		Headers: []string{"LLC policy", "baseline-excl", "nol2-9.5-catch vs that baseline"},
	}
	ref := runConfig("baseline-excl", b)
	for _, pol := range []string{"lru", "srrip", "drrip"} {
		base := config.BaselineExclusive()
		base.LLCPolicy = pol
		base.Name = "baseline-" + pol
		catch, _ := ConfigByName("nol2-9.5-catch")
		catch.LLCPolicy = pol
		rb := runSys(base, b)
		rc := runSys(catch, b)
		t.Rows = append(t.Rows, []string{
			pol,
			pct(geomeanIPC(rb, ""), geomeanIPC(ref, "")),
			pct(geomeanIPC(rc, ""), geomeanIPC(rb, "")),
		})
	}
	return []Table{t}
}

// ExtHeuristics drives CATCH with the literature's heuristic
// criticality predictors instead of the paper's graph detector
// (§IV-A: heuristics "often flag many more PCs than are truly
// critical"). Reported: the CATCH gain each source achieves and how
// many PCs it marks.
func ExtHeuristics(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "ext-heuristics",
		Title:   "CATCH driven by graph detector vs heuristic criticality",
		Headers: []string{"criticality source", "geomean gain", "avg critical PCs"},
	}
	for _, src := range []string{"graph", "feedsbranch", "robstall"} {
		cfg := config.WithCATCH(config.BaselineExclusive(), "catch-"+src)
		cfg.CritSource = src
		rs := runSys(cfg, b)
		t.Rows = append(t.Rows, []string{
			src,
			pct(geomeanIPC(rs, ""), geomeanIPC(base, "")),
			fmt.Sprintf("%.1f", avgOver(rs, "", func(r *core.Result) float64 {
				return float64(r.CriticalPCs)
			})),
		})
	}
	return []Table{t}
}

// ExtBranchPred replaces the trace-encoded misprediction flags with an
// actual gshare predictor, making branch behaviour emergent. Checks
// that the CATCH result survives the change of speculation substrate.
func ExtBranchPred(b Budget) []Table {
	t := Table{
		ID:      "ext-branchpred",
		Title:   "Trace-flagged vs gshare-predicted branches",
		Headers: []string{"speculation", "baseline-excl IPC (geo)", "catch vs that baseline"},
	}
	for _, gbits := range []int{0, 14} {
		label := "trace flags"
		if gbits > 0 {
			label = fmt.Sprintf("gshare 2^%d", gbits)
		}
		base := config.BaselineExclusive()
		base.GsharePredictorBits = gbits
		catch := config.WithCATCH(base, "catch-bp")
		rb := runSys(base, b)
		rc := runSys(catch, b)
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%.3f", geomeanIPC(rb, "")),
			pct(geomeanIPC(rc, ""), geomeanIPC(rb, "")),
		})
	}
	return []Table{t}
}

// ExtSharedCode quantifies the paper's §II code-replication point on
// RATE-4 runs: with private L2s, each core replicates the (identical)
// code; with a shared LLC the lines are shared. Reported: LLC code-line
// footprint per configuration and the weighted-speedup effect of
// sharing.
func ExtSharedCode(b Budget) []Table {
	mixes := workloads.Mixes()[:4] // first RATE-4 mixes
	t := Table{
		ID:      "ext-sharedcode",
		Title:   "Code replication vs sharing in RATE-4 runs (§II)",
		Headers: []string{"config", "avg weighted speedup", "LLC code fetch hit rate"},
	}
	for _, variant := range []struct {
		label  string
		name   string
		shared bool
	}{
		{"baseline, replicated code", "baseline-excl", false},
		{"baseline, shared code", "baseline-excl", true},
		{"nol2-9.5-catch, shared code", "nol2-9.5-catch", true},
	} {
		cfg := mpConfig(variant.name)
		cfg.SharedCode = variant.shared
		var ws []float64
		var fHit, fAll uint64
		for _, rs := range runMixes(cfg, mixes, b) {
			sum := 0.0
			for _, r := range rs {
				sum += r.IPC
				fHit += r.Hier.FetchL1 + r.Hier.FetchL2 + r.Hier.FetchLLC
				fAll += r.Hier.Fetches
			}
			ws = append(ws, sum)
		}
		t.Rows = append(t.Rows, []string{
			variant.label,
			fmt.Sprintf("%.3f", stats.Mean(ws)),
			pctf(stats.Ratio(fHit, fAll)),
		})
	}
	t.Notes = append(t.Notes, "weighted speedup column is the IPC sum across the 4 cores; code hit rate is on-die (L1I+L2+LLC) fetch coverage")
	return []Table{t}
}
