package experiments

import (
	"runtime"
	"testing"

	"catch/internal/runner"
)

// TestBatchSmokeFig13 is the end-to-end gate for the lock-step kernel:
// the full fig13 experiment executed through a batching engine must
// render byte-for-byte the same tables as the scalar golden run — the
// same committed hash — while actually taking the batch path.
func TestBatchSmokeFig13(t *testing.T) {
	eng := runner.New(runner.Options{
		Workers: runtime.GOMAXPROCS(0),
		Cache:   runner.NewCache(""),
		Batch:   true,
	})
	UseEngine(eng)
	defer UseEngine(nil)
	if got := fig13Hash(t, goldenFig13Budget); got != goldenFig13Hash {
		t.Errorf("batched fig13 output hash diverged from the scalar golden run:\n got %s\nwant %s",
			got, goldenFig13Hash)
	}
	if eng.Batched() == 0 {
		t.Error("engine batched no jobs; the smoke test exercised only the scalar path")
	}
	if n := eng.BatchFallbacks(); n != 0 {
		t.Errorf("engine fell back to scalar %d times, want 0", n)
	}
}
