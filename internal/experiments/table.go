package experiments

import (
	"fmt"
	"sort"
	"strings"

	"catch/internal/core"
	"catch/internal/stats"
	"catch/internal/trace"
	"catch/internal/workloads"
)

// Table is a printable experiment result in the paper's row/series
// shape.
type Table struct {
	ID      string // "fig1", "table1", ...
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Print renders the table to a string.
func (t *Table) Print() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Budget controls how much work each experiment does.
type Budget struct {
	Insts     int64 // measured instructions per workload
	Warmup    int64 // warmup instructions per workload
	Workloads int   // number of ST workloads (0 = all 70)
	Mixes     int   // number of MP mixes (0 = all 60)
}

// DefaultBudget is the full-evaluation budget.
func DefaultBudget() Budget {
	return Budget{Insts: 300_000, Warmup: 150_000}
}

// QuickBudget is a reduced budget for tests.
func QuickBudget() Budget {
	return Budget{Insts: 60_000, Warmup: 30_000, Workloads: 10, Mixes: 4}
}

func (b Budget) workloads() []trace.Workload {
	return workloads.StudyList(b.Workloads)
}

// geomeanIPC returns the geometric-mean IPC of results, overall or per
// category.
func geomeanIPC(rs []core.Result, category string) float64 {
	var xs []float64
	for _, r := range rs {
		if category != "" && r.Category != category {
			continue
		}
		xs = append(xs, r.IPC)
	}
	return stats.Geomean(xs)
}

// speedupRow formats the per-category and geomean speedups of rs over
// base.
func speedupRow(label string, rs, base []core.Result) []string {
	row := []string{label}
	for _, cat := range workloads.Categories {
		row = append(row, pct(geomeanIPC(rs, cat), geomeanIPC(base, cat)))
	}
	row = append(row, pct(geomeanIPC(rs, ""), geomeanIPC(base, "")))
	return row
}

func pct(a, b float64) string {
	return stats.FormatPercent(stats.SpeedupPercent(a, b))
}

func pctf(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }

// categoryHeaders is the standard header row of category columns.
func categoryHeaders(first string) []string {
	h := []string{first}
	h = append(h, workloads.Categories...)
	return append(h, "GeoMean")
}

// avgOver averages f(r) over results (optionally one category).
func avgOver(rs []core.Result, category string, f func(*core.Result) float64) float64 {
	var xs []float64
	for i := range rs {
		if category != "" && rs[i].Category != category {
			continue
		}
		xs = append(xs, f(&rs[i]))
	}
	return stats.Mean(xs)
}

// sortedNames returns workload names of rs in stable order.
func sortedNames(rs []core.Result) []string {
	names := make([]string, 0, len(rs))
	for _, r := range rs {
		names = append(names, r.Workload)
	}
	sort.Strings(names)
	return names
}
