package experiments

import "testing"

// TestAllExperimentsQuick smoke-runs every registered experiment driver
// at a tiny budget: every figure must produce a non-empty, well-formed
// table without panicking.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every driver")
	}
	b := Budget{Insts: 20_000, Warmup: 10_000, Workloads: 6, Mixes: 2}
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Run(id, b)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if tb.ID == "" || tb.Title == "" {
					t.Fatalf("missing metadata: %+v", tb)
				}
				if len(tb.Headers) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("%s: empty table", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("%s: ragged row %v vs headers %v", tb.ID, row, tb.Headers)
					}
				}
				if tb.Print() == "" {
					t.Fatalf("%s: empty print", tb.ID)
				}
			}
		})
	}
}
