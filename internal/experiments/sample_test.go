package experiments

import (
	"math"
	"runtime"
	"testing"

	"catch/internal/runner"
)

// Sampling budget for the smoke test: 50 intervals of 600
// instructions, 5 representatives per job — exactly 10x fewer measured
// instructions than the full run. Chosen by scanning the (interval, k)
// tunings that keep the 10x reduction: 600x5 had the lowest worst-case
// normalized-performance error on this grid (~1.1%, vs 1.3% for 1500x2
// and 5% for 1000x3).
const (
	smokeSampleInterval = 600
	smokeSampleK        = 5
	// smokeMaxRelErr bounds the per-workload error of the sampled
	// normalized performance (config IPC / noL2 IPC) against the exact
	// run. Sampling both sides of the ratio with the same
	// representatives cancels much of the raw-IPC error.
	smokeMaxRelErr = 0.02
)

// TestSampleSmokeFig13 is the end-to-end accuracy gate for
// representative-interval sampling: the fig13 grid run through a
// sampling engine must reproduce every per-workload normalized
// performance ratio within smokeMaxRelErr of the exact run while
// measuring at least 10x fewer instructions — and must actually take
// the sampling path (no fallbacks).
func TestSampleSmokeFig13(t *testing.T) {
	b := goldenFig13Budget
	_, cfgs := fig13Configs()

	UseEngine(runner.New(runner.Options{
		Workers: runtime.GOMAXPROCS(0),
		Cache:   runner.NewCache(""),
	}))
	full := runGrid(cfgs, b)

	seng := runner.New(runner.Options{
		Workers: runtime.GOMAXPROCS(0),
		Cache:   runner.NewCache(""),
		Sample:  true, SampleInterval: smokeSampleInterval, SampleK: smokeSampleK,
	})
	UseEngine(seng)
	defer UseEngine(nil)
	sampled := runGrid(cfgs, b)

	jobs := len(cfgs) * len(b.workloads())
	if got := seng.Sampled(); got != uint64(jobs) {
		t.Fatalf("Sampled() = %d, want %d (every job)", got, jobs)
	}
	if n := seng.SampleFallbacks(); n != 0 {
		t.Fatalf("engine fell back to full simulation %d times, want 0", n)
	}

	var fullInsts, measuredInsts int64
	var worst float64
	var worstAt string
	for c := 1; c < len(cfgs); c++ {
		for w := range full[c] {
			fr := ratio(full[c][w].IPC, full[0][w].IPC)
			sr := ratio(sampled[c][w].IPC, sampled[0][w].IPC)
			if fr == 0 {
				t.Fatalf("%s/%s: exact normalized performance is zero", cfgs[c].Name, full[c][w].Workload)
			}
			relErr := math.Abs(sr/fr - 1)
			if relErr > worst {
				worst, worstAt = relErr, cfgs[c].Name+"/"+full[c][w].Workload
			}
			if relErr > smokeMaxRelErr {
				t.Errorf("%s/%s: sampled normalized perf %.4f vs exact %.4f (rel err %.2f%% > %.0f%%)",
					cfgs[c].Name, full[c][w].Workload, sr, fr, 100*relErr, 100*smokeMaxRelErr)
			}
		}
	}
	for c := range sampled {
		for w := range sampled[c] {
			r := &sampled[c][w]
			if r.Sample == nil {
				t.Fatalf("%s/%s: result carries no SampleMeta", cfgs[c].Name, r.Workload)
			}
			measuredInsts += r.Sample.MeasuredInsts
			fullInsts += full[c][w].Insts
		}
	}
	if speedup := float64(fullInsts) / float64(measuredInsts); speedup < 10 {
		t.Errorf("measured-instruction reduction = %.1fx, want >= 10x (%d of %d insts)",
			speedup, measuredInsts, fullInsts)
	}
	t.Logf("sampled fig13: %d jobs, %.1fx fewer measured insts, worst normalized-perf rel err %.3f%% (%s)",
		jobs, float64(fullInsts)/float64(measuredInsts), 100*worst, worstAt)
}

// TestSampleMetaErrorsFinite sanity-checks the error estimates the
// planner attaches: finite, non-negative, and present for every
// sampled result of the smoke grid's first config.
func TestSampleMetaErrorsFinite(t *testing.T) {
	seng := runner.New(runner.Options{
		Workers: 2, Cache: runner.NewCache(""),
		Sample: true, SampleInterval: smokeSampleInterval, SampleK: smokeSampleK,
	})
	UseEngine(seng)
	defer UseEngine(nil)
	b := Budget{Insts: goldenFig13Budget.Insts, Warmup: goldenFig13Budget.Warmup, Workloads: 4}
	rs := runConfig("nol2-6.5", b)
	for i := range rs {
		s := rs[i].Sample
		if s == nil {
			t.Fatalf("%s: no SampleMeta", rs[i].Workload)
		}
		for name, v := range map[string]float64{
			"relErrIPC": s.RelErrIPC, "relErrL1DMiss": s.RelErrL1DMiss, "relErrMemLoads": s.RelErrMemLoads,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Errorf("%s: %s = %v, want finite and >= 0", rs[i].Workload, name, v)
			}
		}
		if s.TotalInsts != b.Insts || s.MeasuredInsts != smokeSampleK*smokeSampleInterval {
			t.Errorf("%s: meta insts = %d/%d, want %d/%d",
				rs[i].Workload, s.MeasuredInsts, s.TotalInsts, smokeSampleK*smokeSampleInterval, b.Insts)
		}
	}
}
