// Package experiments contains one driver per table/figure of the
// paper's evaluation, a config registry, and the table-formatting
// helpers that print the same rows/series the paper reports.
package experiments

import (
	"sort"

	"catch/internal/cache"
	"catch/internal/config"
)

// ConfigByName resolves the named configurations used across the
// evaluation.
func ConfigByName(name string) (config.SystemConfig, bool) {
	base := config.BaselineExclusive()
	incl := config.BaselineInclusive()
	switch name {
	case "baseline-excl":
		return base, true
	case "baseline-incl":
		return incl, true
	case "nol2-6.5":
		return config.NoL2(base, 6656*config.KB, 13, name), true
	case "nol2-9.5":
		return config.NoL2(base, 9728*config.KB, 19, name), true
	case "nol2-6.5-catch":
		return config.WithCATCH(config.NoL2(base, 6656*config.KB, 13, ""), name), true
	case "nol2-9.5-catch":
		return config.WithCATCH(config.NoL2(base, 9728*config.KB, 19, ""), name), true
	case "catch":
		return config.WithCATCH(base, name), true
	case "nol2-incl":
		return config.NoL2(incl, 8*config.MB, 16, name), true
	case "nol2-incl-catch":
		return config.WithCATCH(config.NoL2(incl, 8*config.MB, 16, ""), name), true
	case "nol2-incl-9mb-catch":
		return config.WithCATCH(config.NoL2(incl, 9*config.MB, 18, ""), name), true
	case "catch-incl":
		return config.WithCATCH(incl, name), true
	}
	return config.SystemConfig{}, false
}

// ConfigNames lists the registered configuration names.
func ConfigNames() []string {
	names := []string{
		"baseline-excl", "baseline-incl",
		"nol2-6.5", "nol2-9.5",
		"nol2-6.5-catch", "nol2-9.5-catch",
		"catch",
		"nol2-incl", "nol2-incl-catch", "nol2-incl-9mb-catch", "catch-incl",
	}
	sort.Strings(names)
	return names
}

// levelName maps a HitLevel to the paper's label.
func levelName(l cache.HitLevel) string { return l.String() }
