package experiments

import (
	"fmt"

	"catch/internal/cache"
	"catch/internal/config"
	"catch/internal/core"
	"catch/internal/criticality"
	"catch/internal/stats"
	"catch/internal/workloads"
)

// Fig1 reproduces Figure 1: performance impact of removing the L2
// (iso-capacity 6.5MB and iso-area 9.5MB LLCs) versus the exclusive
// baseline, per category.
func Fig1(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "fig1",
		Title:   "Performance impact of removing L2 (paper: -7.8% / -5.1% geomean)",
		Headers: categoryHeaders("config"),
	}
	for _, name := range []string{"nol2-6.5", "nol2-9.5"} {
		t.Rows = append(t.Rows, speedupRow(name, runConfig(name, b), base))
	}
	return []Table{t}
}

// Fig3 reproduces Figure 3: sensitivity to +1/+2/+3 cycles at each
// cache level (paper: L1 -2.4/-4.8/-7.2%, L2 -0.5/-0.9/-1.4%,
// LLC -0.2/-0.4/-0.6%).
func Fig3(b Budget) []Table {
	baseCfg := config.BaselineExclusive()
	base := runSys(baseCfg, b)
	t := Table{
		ID:      "fig3",
		Title:   "Impact of latency increase at L1, L2 and LLC",
		Headers: []string{"level", "+1 cyc", "+2 cyc", "+3 cyc"},
	}
	for _, lvl := range []cache.HitLevel{cache.HitL1, cache.HitL2, cache.HitLLC} {
		row := []string{lvl.String()}
		for d := int64(1); d <= 3; d++ {
			cfg := config.WithLatencyDelta(baseCfg, lvl, d,
				fmt.Sprintf("%s+%dcyc", lvl, d))
			rs := runSys(cfg, b)
			row = append(row, pct(geomeanIPC(rs, ""), geomeanIPC(base, "")))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig4 reproduces Figure 4: converting ALL versus only non-critical
// hits at one level to the next level's latency, plus the fraction of
// loads converted (paper: L1→L2 -16.1%/-4.9%, L2→LLC -7.8%/-0.8%,
// LLC→mem -7.0%/-1.2%).
func Fig4(b Budget) []Table {
	baseCfg := config.BaselineExclusive()
	base := runSys(baseCfg, b)
	t := Table{
		ID:      "fig4",
		Title:   "Impact of increasing (non-)critical load latency",
		Headers: []string{"conversion", "ALL", "NonCritical", "%loads converted (NonCrit)"},
	}
	cases := []struct {
		name   string
		from   cache.HitLevel
		record criticality.LevelMask
	}{
		{"L1 hits to L2 lat.", cache.HitL1, criticality.MaskL1},
		{"L2 hits to LLC lat.", cache.HitL2, criticality.MaskL2},
		{"LLC hits to Mem lat.", cache.HitLLC, criticality.MaskLLC},
	}
	for _, cs := range cases {
		toLat := nextLevelLat(&baseCfg, cs.from)
		all := runSys(config.WithConvert(baseCfg,
			config.ConvertSpec{From: cs.from, ToLat: toLat}, cs.record, "convert-all"), b)
		ncr := runSys(config.WithConvert(baseCfg,
			config.ConvertSpec{From: cs.from, ToLat: toLat, OnlyNonCritical: true}, cs.record, "convert-noncrit"), b)
		from := cs.from
		t.Rows = append(t.Rows, []string{
			cs.name,
			pct(geomeanIPC(all, ""), geomeanIPC(base, "")),
			pct(geomeanIPC(ncr, ""), geomeanIPC(base, "")),
			// The paper reports the share of that level's hits that the
			// detector deems non-critical (e.g. "33% of all LLC hits").
			pctf(avgOver(ncr, "", func(r *core.Result) float64 {
				var hits uint64
				switch from {
				case cache.HitL1:
					hits = r.Hier.LoadL1
				case cache.HitL2:
					hits = r.Hier.LoadL2
				default:
					hits = r.Hier.LoadLLC
				}
				if hits == 0 {
					return 0
				}
				return float64(r.ConvertedLoads) / float64(hits)
			})),
		})
	}
	return []Table{t}
}

func nextLevelLat(cfg *config.SystemConfig, from cache.HitLevel) int64 {
	switch from {
	case cache.HitL1:
		return cfg.L2Lat
	case cache.HitL2:
		return cfg.LLCLat
	default:
		return config.MemLatApprox
	}
}

// Fig5 reproduces Figure 5: the criticality-aware oracle prefetcher
// versus the number of tracked critical load PCs (paper: 5.5% at 32
// PCs rising to 6.6% for ALL, with 14-17% of L1 load misses converted).
func Fig5(b Budget) []Table {
	baseCfg := config.BaselineExclusive()
	// The oracle study disables the hardware prefetchers in both the
	// baseline and the oracle configurations (paper §III-C).
	noPf := baseCfg
	noPf.BaselineStride = false
	noPf.BaselineStream = false
	base := runSys(noPf, b)

	t := Table{
		ID:      "fig5",
		Title:   "Criticality-aware oracle prefetch vs tracked critical PCs",
		Headers: []string{"tracked PCs", "perf impact", "% L1 misses converted"},
	}
	add := func(label string, cfg config.SystemConfig) {
		rs := runSys(cfg, b)
		conv := avgOver(rs, "", func(r *core.Result) float64 {
			miss := r.Hier.Loads - r.Hier.LoadL1
			den := float64(miss) + float64(r.Hier.OraclePromotions)
			if den == 0 {
				return 0
			}
			return float64(r.Hier.OraclePromotions) / den
		})
		t.Rows = append(t.Rows, []string{
			label,
			pct(geomeanIPC(rs, ""), geomeanIPC(base, "")),
			pctf(conv),
		})
	}
	for _, n := range []int{32, 64, 128, 1024, 2048} {
		add(fmt.Sprintf("%d PC", n), config.WithOraclePrefetch(baseCfg, n, "oracle"))
	}
	add("All PC", config.WithOraclePrefetch(baseCfg, 0, "oracle-all"))
	noL2 := config.NoL2(baseCfg, 6656*config.KB, 13, "nol2")
	add("NoL2 + 2048 PC", config.WithOraclePrefetch(noL2, 2048, "oracle-nol2"))
	return []Table{t}
}

// Fig10 reproduces Figure 10: CATCH on the large-L2 exclusive baseline
// (paper: noL2 -7.8%, noL2+9.5MB -5.1%, noL2+CATCH +4.6%,
// noL2+9.5+CATCH +7.2%, CATCH +8.4%).
func Fig10(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "fig10",
		Title:   "Performance gain on large-L2 exclusive-LLC baseline",
		Headers: categoryHeaders("config"),
	}
	for _, name := range []string{
		"nol2-6.5", "nol2-9.5", "nol2-6.5-catch", "nol2-9.5-catch", "catch",
	} {
		t.Rows = append(t.Rows, speedupRow(name, runConfig(name, b), base))
	}
	return []Table{t}
}

// Fig11 reproduces Figure 11: timeliness of inter-cache TACT
// prefetching (paper: ~88% of TACT prefetches served by the LLC, >85%
// of them saving more than 80% of the LLC latency).
func Fig11(b Budget) []Table {
	rs := runConfig("catch", b)
	t := Table{
		ID:      "fig11",
		Title:   "Timeliness of inter-cache TACT prefetching (three-level CATCH)",
		Headers: []string{"category", "% TACT pf from LLC", "<10% lat saved", "10-80%", ">80% lat saved"},
	}
	row := func(cat, label string) []string {
		hist := stats.NewHistogram(0.10, 0.80)
		var fromLLC, fromAny uint64
		for i := range rs {
			r := &rs[i]
			if cat != "" && r.Category != cat {
				continue
			}
			fromLLC += r.Hier.TactFilledLLC
			fromAny += r.Hier.TactFilledLLC + r.Hier.TactFilledL2
			hist.Merge(r.Hier.TactTimeliness)
		}
		return []string{
			label,
			pctf(stats.Ratio(fromLLC, fromAny)),
			pctf(hist.Fraction(0)), pctf(hist.Fraction(1)), pctf(hist.Fraction(2)),
		}
	}
	for _, cat := range workloads.Categories {
		t.Rows = append(t.Rows, row(cat, cat))
	}
	t.Rows = append(t.Rows, row("", "ALL"))
	return []Table{t}
}

// Fig12 reproduces Figure 12: the per-workload performance ratios of
// the noL2, two-level-CATCH and three-level-CATCH configurations.
func Fig12(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	noL2 := runConfig("nol2-6.5", b)
	catch2 := runConfig("nol2-9.5-catch", b)
	catch3 := runConfig("catch", b)
	t := Table{
		ID:      "fig12",
		Title:   "Per-workload performance ratio vs baseline",
		Headers: []string{"workload", "category", "NoL2+6.5MB", "NoL2+9.5MB+CATCH", "CATCH"},
	}
	for i := range base {
		t.Rows = append(t.Rows, []string{
			base[i].Workload, base[i].Category,
			fmt.Sprintf("%.3f", ratio(noL2[i].IPC, base[i].IPC)),
			fmt.Sprintf("%.3f", ratio(catch2[i].IPC, base[i].IPC)),
			fmt.Sprintf("%.3f", ratio(catch3[i].IPC, base[i].IPC)),
		})
	}
	return []Table{t}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig13 reproduces Figure 13: the cumulative contribution of each TACT
// component over the noL2 baseline (paper: Code +0.75%, +Cross +3.7%,
// +Deep +5.9%, +Feeder +2.7%).
func Fig13(b Budget) []Table {
	t := Table{
		ID:      "fig13",
		Title:   "Performance gain from each TACT component (over noL2)",
		Headers: categoryHeaders("components"),
	}
	labels, cfgs := fig13Configs()
	rs := runGrid(cfgs, b)
	for i, label := range labels {
		t.Rows = append(t.Rows, speedupRow(label, rs[i+1], rs[0]))
	}
	return []Table{t}
}

// fig13Configs builds fig13's configuration ladder: the noL2 reference
// first, then CATCH with the TACT components enabled cumulatively. The
// sampling smoke test reuses it to compare sampled and exact runs of
// the same grid.
func fig13Configs() (labels []string, cfgs []config.SystemConfig) {
	noL2Cfg, _ := ConfigByName("nol2-6.5")
	steps := []struct {
		label                     string
		code, cross, deep, feeder bool
	}{
		{"Code", true, false, false, false},
		{"+CROSS", true, true, false, false},
		{"+Deep", true, true, true, false},
		{"+Feeder", true, true, true, true},
	}
	cfgs = []config.SystemConfig{noL2Cfg}
	for _, s := range steps {
		cfg := config.WithCATCH(noL2Cfg, "nol2-catch-"+s.label)
		cfg.Tact.EnableCode = s.code
		cfg.Tact.EnableCross = s.cross
		cfg.Tact.EnableDeep = s.deep
		cfg.Tact.EnableFeeder = s.feeder
		cfgs = append(cfgs, cfg)
		labels = append(labels, s.label)
	}
	return labels, cfgs
}

// Fig15 reproduces Figure 15: sensitivity of the noL2 and two-level
// CATCH configurations to +6/+12 cycles of LLC latency.
func Fig15(b Budget) []Table {
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "fig15",
		Title:   "Sensitivity to LLC hit latency (vs unmodified baseline)",
		Headers: []string{"config", "base L3 lat", "+6 cyc", "+12 cyc"},
	}
	for _, name := range []string{"nol2-6.5", "nol2-9.5-catch"} {
		cfg, _ := ConfigByName(name)
		row := []string{name}
		for _, d := range []int64{0, 6, 12} {
			c := config.WithLatencyDelta(cfg, cache.HitLLC, d, fmt.Sprintf("%s+%d", name, d))
			rs := runSys(c, b)
			row = append(row, pct(geomeanIPC(rs, ""), geomeanIPC(base, "")))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}
}

// Fig17 reproduces Figure 17: CATCH on the small-L2 inclusive-LLC
// baseline (paper: noL2 -5.7%, noL2+CATCH +6.4%, noL2+CATCH+9MB +7.2%,
// CATCH +10.3%).
func Fig17(b Budget) []Table {
	base := runConfig("baseline-incl", b)
	t := Table{
		ID:      "fig17",
		Title:   "Performance gain on inclusive-LLC baseline (256KB L2 + 8MB LLC)",
		Headers: categoryHeaders("config"),
	}
	for _, name := range []string{
		"nol2-incl", "nol2-incl-catch", "nol2-incl-9mb-catch", "catch-incl",
	} {
		t.Rows = append(t.Rows, speedupRow(name, runConfig(name, b), base))
	}
	return []Table{t}
}
