package experiments

import (
	"fmt"
	"sort"

	"catch/internal/config"
	"catch/internal/criticality"
	"catch/internal/power"
	"catch/internal/stats"
	"catch/internal/tact"
	"catch/internal/workloads"
)

// mpConfig turns an ST configuration into its 4-core variant.
func mpConfig(name string) config.SystemConfig {
	cfg, ok := ConfigByName(name)
	if !ok {
		panic("experiments: unknown config " + name)
	}
	cfg.Cores = 4
	return cfg
}

// Fig14 reproduces Figure 14: weighted speedup of 4-way
// multi-programmed workloads (paper: noL2 -4.1%, noL2+CATCH +8.5%,
// CATCH +9.0%). The weighted speedup of a mix is Σ IPC_together /
// IPC_alone with each workload's alone-IPC measured on the *baseline*,
// so the metric is comparable across configurations.
func Fig14(b Budget) []Table {
	mixes := workloads.Mixes()
	if b.Mixes > 0 && b.Mixes < len(mixes) {
		// Spread the selection over RATE-4 and random mixes.
		sel := make([]workloads.Mix, 0, b.Mixes)
		step := float64(len(mixes)) / float64(b.Mixes)
		for i := 0; i < b.Mixes; i++ {
			sel = append(sel, mixes[int(float64(i)*step)])
		}
		mixes = sel
	}

	configs := []string{"baseline-excl", "nol2-6.5", "nol2-6.5-catch", "catch"}

	// Fixed baseline reference: each distinct workload alone, batched
	// through the engine.
	var parts []string
	seen := map[string]bool{}
	for i := range mixes {
		for _, name := range mixNames(&mixes[i]) {
			if !seen[name] {
				seen[name] = true
				parts = append(parts, name)
			}
		}
	}
	alone := runAloneIPC(mpConfig("baseline-excl"), parts, b)

	ws := make(map[string][]float64)
	for _, name := range configs {
		for i, rs := range runMixes(mpConfig(name), mixes, b) {
			sum := 0.0
			for k, r := range rs {
				if a := alone[mixes[i].Parts[k].WName]; a > 0 {
					sum += r.IPC / a
				}
			}
			ws[name] = append(ws[name], sum)
		}
	}
	t := Table{
		ID:      "fig14",
		Title:   fmt.Sprintf("4-way multi-programmed weighted speedup (%d mixes)", len(mixes)),
		Headers: []string{"config", "perf impact vs baseline"},
	}
	base := stats.Geomean(ws["baseline-excl"])
	for _, name := range configs[1:] {
		t.Rows = append(t.Rows, []string{name, pct(stats.Geomean(ws[name]), base)})
	}
	return []Table{t}
}

// Fig16 reproduces Figure 16: energy savings of the two-level CATCH
// hierarchy versus the three-level baseline (paper: ~11% average, with
// lower cache and memory traffic but far more interconnect traffic).
func Fig16(b Budget) []Table {
	baseCfg, _ := ConfigByName("baseline-excl")
	catchCfg, _ := ConfigByName("nol2-9.5-catch")
	base := runSys(baseCfg, b)
	two := runSys(catchCfg, b)

	em := power.DefaultEnergyModel()
	t := Table{
		ID:      "fig16",
		Title:   "Energy savings with two-level CATCH (NoL2 + 9.5MB LLC)",
		Headers: []string{"category", "energy savings", "L2+LLC traffic", "interconnect flits", "DRAM accesses"},
	}
	row := func(cat, label string) []string {
		var eBase, eTwo float64
		var cB, cT, fB, fT, dB, dT uint64
		for i := range base {
			if cat != "" && base[i].Category != cat {
				continue
			}
			bb := em.Energy(&baseCfg, &base[i])
			bt := em.Energy(&catchCfg, &two[i])
			eBase += bb.TotalUJ
			eTwo += bt.TotalUJ
			cB += base[i].OuterCacheTraffic()
			cT += two[i].OuterCacheTraffic()
			fB += bb.RingFlits
			fT += bt.RingFlits
			dB += bb.DRAMEvents
			dT += bt.DRAMEvents
		}
		sav := 0.0
		if eBase > 0 {
			sav = (1 - eTwo/eBase) * 100
		}
		return []string{
			label,
			fmt.Sprintf("%.2f%%", sav),
			deltaPct(cT, cB), deltaPct(fT, fB), deltaPct(dT, dB),
		}
	}
	for _, cat := range workloads.Categories {
		t.Rows = append(t.Rows, row(cat, cat))
	}
	t.Rows = append(t.Rows, row("", "ALL"))
	am := power.DefaultAreaModel()
	t.Notes = append(t.Notes,
		fmt.Sprintf("cache area: baseline %.1f mm², two-level CATCH %.1f mm² (both 4-core)",
			am.CacheAreaMM2(fourCore(baseCfg)), am.CacheAreaMM2(fourCore(catchCfg))))
	return []Table{t}
}

func fourCore(cfg config.SystemConfig) *config.SystemConfig {
	cfg.Cores = 4
	return &cfg
}

func deltaPct(now, was uint64) string {
	if was == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (float64(now)/float64(was)-1)*100)
}

// Table1 reproduces Table I / Fig 9: the hardware budget of the
// criticality detector graph and the TACT structures.
func Table1(b Budget) []Table {
	a := criticality.ComputeArea(224, 2.5, 32)
	tp := tact.New(tact.DefaultConfig(), nil)
	t := Table{
		ID:      "table1",
		Title:   "Hardware storage budget (paper: ~3KB detector + ~1.2KB TACT)",
		Headers: []string{"structure", "bytes"},
		Rows: [][]string{
			{"DDG graph buffer (2.5×ROB × 38b)", fmt.Sprint(a.GraphBytes)},
			{"hashed PCs (10b × 2.5×ROB)", fmt.Sprint(a.PCBytes)},
			{"critical load table (32 entries)", fmt.Sprint(a.TableBytes)},
			{"criticality total", fmt.Sprint(a.TotalBytes)},
			{"TACT structures (Fig 9)", fmt.Sprint(tp.AreaBytes())},
		},
	}
	return []Table{t}
}

// AreaPerf is an extension experiment: the chip-level area/performance
// trade-off table enabled by CATCH (the paper's §VI-A headline claims:
// two-level CATCH at ~30% less cache area still outperforms).
func AreaPerf(b Budget) []Table {
	am := power.DefaultAreaModel()
	base := runConfig("baseline-excl", b)
	t := Table{
		ID:      "area",
		Title:   "Chip-level cache area vs performance (4-core area, ST perf)",
		Headers: []string{"config", "cache area mm²", "area vs baseline", "perf vs baseline"},
	}
	baseCfg, _ := ConfigByName("baseline-excl")
	baseArea := am.CacheAreaMM2(fourCore(baseCfg))
	for _, name := range []string{"baseline-excl", "nol2-6.5-catch", "nol2-9.5-catch", "catch"} {
		cfg, _ := ConfigByName(name)
		area := am.CacheAreaMM2(fourCore(cfg))
		rs := base
		if name != "baseline-excl" {
			rs = runConfig(name, b)
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprintf("%.1f", area),
			fmt.Sprintf("%+.1f%%", (area/baseArea-1)*100),
			pct(geomeanIPC(rs, ""), geomeanIPC(base, "")),
		})
	}
	return []Table{t}
}

// Experiments maps experiment ids to their drivers.
var Experiments = map[string]func(Budget) []Table{
	"fig1":   Fig1,
	"fig3":   Fig3,
	"fig4":   Fig4,
	"fig5":   Fig5,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
	"fig16":  Fig16,
	"fig17":  Fig17,
	"table1": Table1,
	"area":   AreaPerf,

	// Extensions beyond the paper's figures.
	"ext-tablesize":   ExtTableSize,
	"ext-mshr":        ExtMSHR,
	"ext-deepdist":    ExtDeepDistance,
	"ext-replacement": ExtReplacement,
	"ext-heuristics":  ExtHeuristics,
	"ext-branchpred":  ExtBranchPred,
	"ext-sharedcode":  ExtSharedCode,
}

// IDs returns the experiment ids in order.
func IDs() []string {
	ids := make([]string, 0, len(Experiments))
	for id := range Experiments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, b Budget) ([]Table, error) {
	f, ok := Experiments[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return f(b), nil
}
