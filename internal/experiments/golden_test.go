package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// goldenFig13Hash pins the rendered fig13 tables at goldenFig13Budget.
// The simulator is fully deterministic, so any change to instruction
// timing, cache behaviour, criticality detection or TACT issue order
// shows up as a mismatch against this hash — both in the scalar golden
// test below and in the batch smoke test (batch_test.go), which must
// reproduce the same bytes through the lock-step kernel.
const goldenFig13Hash = "dfdd0ed304d33a0285f989c7ae3a6a65991ef14e59c63d0e15e129fc1ce70d43"

var goldenFig13Budget = Budget{Insts: 30_000, Warmup: 15_000, Workloads: 8}

// fig13Hash runs the fig13 experiment at the given budget and returns
// the SHA-256 of its rendered tables.
func fig13Hash(t *testing.T, b Budget) string {
	t.Helper()
	tables, err := Run("fig13", b)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.Print())
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:])
}

// TestGoldenFig13 pins the scalar path to the committed hash.
// Performance work on the hot path must keep this byte-identical; if an
// intentional model change moves the output, re-record goldenFig13Hash.
func TestGoldenFig13(t *testing.T) {
	if got := fig13Hash(t, goldenFig13Budget); got != goldenFig13Hash {
		t.Errorf("fig13 output hash changed:\n got %s\nwant %s\n"+
			"If the simulation model intentionally changed, update goldenFig13Hash in golden_test.go.",
			got, goldenFig13Hash)
	}
}
