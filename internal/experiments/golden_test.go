package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// TestGoldenFig13 pins the rendered fig13 table at a small budget to a
// committed hash. The simulator is fully deterministic, so any change
// to instruction timing, cache behaviour, criticality detection or
// TACT issue order shows up here as a hash mismatch. Performance work
// on the hot path must keep this byte-identical; if an intentional
// model change moves the output, re-record the hash with the command
// in the failure message.
func TestGoldenFig13(t *testing.T) {
	const want = "dfdd0ed304d33a0285f989c7ae3a6a65991ef14e59c63d0e15e129fc1ce70d43"
	b := Budget{Insts: 30_000, Warmup: 15_000, Workloads: 8}
	tables, err := Run("fig13", b)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tb := range tables {
		sb.WriteString(tb.Print())
	}
	sum := sha256.Sum256([]byte(sb.String()))
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("fig13 output hash changed:\n got %s\nwant %s\n"+
			"output was:\n%s\n"+
			"If the simulation model intentionally changed, update the hash in golden_test.go.",
			got, want, sb.String())
	}
}
