package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestConfigRegistryComplete(t *testing.T) {
	for _, name := range ConfigNames() {
		cfg, ok := ConfigByName(name)
		if !ok {
			t.Fatalf("listed config %q not resolvable", name)
		}
		if cfg.Name != name {
			t.Fatalf("config %q reports name %q", name, cfg.Name)
		}
	}
	if _, ok := ConfigByName("bogus"); ok {
		t.Fatal("bogus config resolved")
	}
}

func TestExperimentIDs(t *testing.T) {
	ids := IDs()
	for _, want := range []string{"fig1", "fig3", "fig4", "fig5", "fig10",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "table1"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("experiment %s not registered", want)
		}
	}
	if _, err := Run("nope", QuickBudget()); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestTablePrint(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	out := tb.Print()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "333") || !strings.Contains(out, "note: n") {
		t.Fatalf("print output wrong:\n%s", out)
	}
}

func TestTable1Area(t *testing.T) {
	tables := Table1(QuickBudget())
	if len(tables) != 1 || len(tables[0].Rows) != 5 {
		t.Fatalf("table1 shape wrong: %+v", tables)
	}
}

// TestFig10Quick runs the headline experiment on a reduced budget and
// checks the paper's qualitative result: noL2 loses, CATCH variants of
// the two-level hierarchy win back most or all of it.
func TestFig10Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	b := Budget{Insts: 60_000, Warmup: 40_000, Workloads: 12}
	tables := Fig10(b)
	tb := tables[0]
	if len(tb.Rows) != 5 {
		t.Fatalf("fig10 rows: %d", len(tb.Rows))
	}
	geo := func(row []string) string { return row[len(row)-1] }
	noL2 := geo(tb.Rows[0])
	catch2 := geo(tb.Rows[3])
	if !strings.HasPrefix(noL2, "-") {
		t.Fatalf("noL2 did not lose performance: %s", noL2)
	}
	if strings.HasPrefix(catch2, "-1") || strings.HasPrefix(catch2, "-2") {
		t.Fatalf("two-level CATCH far below baseline: %s", catch2)
	}
}

// TestFig4Quick checks the central criticality claim: converting only
// non-critical hits costs much less than converting all hits.
func TestFig4Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system experiment")
	}
	b := Budget{Insts: 60_000, Warmup: 40_000, Workloads: 8}
	tb := Fig4(b)[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("fig4 rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		all := parsePct(t, row[1])
		ncr := parsePct(t, row[2])
		if ncr < all-0.3 {
			t.Fatalf("%s: non-critical conversion (%.2f%%) hurt more than ALL (%.2f%%)", row[0], ncr, all)
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad percentage %q: %v", s, err)
	}
	return v
}
